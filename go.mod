module fourindex

go 1.22
