// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Figure benchmarks
// run full cost-mode simulations of the corresponding evaluation points
// and report simulated kiloseconds and speedups as custom metrics;
// scheme benchmarks execute real arithmetic at small extents.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFigure2  # the five sub-figures only
package fourindex

import (
	"fmt"
	"testing"

	"fourindex/internal/cdag"
	"fourindex/internal/experiments"
	ifx "fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/pebble"
	"fourindex/internal/sym"
	"fourindex/internal/tile"
)

// T1: Table 1 — tensor size computation for every catalog molecule.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range Molecules() {
			sz := Sizes(m.Orbitals, experiments.SpatialSymmetry)
			if sz.C >= sz.O1 {
				b.Fatal("Table 1 violated: C must be the smallest 4D tensor")
			}
		}
	}
}

// benchFigure2 runs one sub-figure's simulation per iteration and
// reports the aggregate simulated time and the mean speedup at
// memory-constrained points.
func benchFigure2(b *testing.B, fig string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		outs, err := RunFigure2(fig)
		if err != nil {
			b.Fatal(err)
		}
		var simKs, spdSum float64
		var spdN int
		for _, o := range outs {
			simKs += o.HybridKs
			if o.Speedup > 0 && !o.PaperEqual {
				spdSum += o.Speedup
				spdN++
			}
			if bad := experiments.CheckShape(o); len(bad) != 0 {
				b.Fatalf("%s %s/%d deviates: %v", o.Fig, o.System, o.Cores, bad)
			}
		}
		b.ReportMetric(simKs, "sim-hybrid-ks")
		if spdN > 0 {
			b.ReportMetric(spdSum/float64(spdN), "mean-speedup")
		}
	}
}

// F2a-F2e: Figure 2's five sub-figures.
func BenchmarkFigure2a(b *testing.B) { benchFigure2(b, "2a") }
func BenchmarkFigure2b(b *testing.B) { benchFigure2(b, "2b") }
func BenchmarkFigure2c(b *testing.B) { benchFigure2(b, "2c") }
func BenchmarkFigure2d(b *testing.B) { benchFigure2(b, "2d") }
func BenchmarkFigure2e(b *testing.B) { benchFigure2(b, "2e") }

// S5: the Theorem 5.2 fusion ranking across problem sizes.
func BenchmarkFusionOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range Molecules() {
			ranked := RankFusionConfigs(m.Orbitals, experiments.SpatialSymmetry)
			if ranked[0].Config.String() != "op1234" {
				b.Fatalf("%s: best config %s", m.Name, ranked[0].Config)
			}
		}
	}
}

// S6: the S >= |C| full-reuse threshold, swept empirically on the
// pebble game around |C|.
func BenchmarkFullReuseThreshold(b *testing.B) {
	n := 3
	f := cdag.BuildFourIndex(n)
	order := pebble.OrderFourIndexFullyFused(f)
	n4 := n * n * n * n
	bound := 2*n4 + 4*n*n
	big := n4 + 3*n*n*n + 4*n*n + 2*n + 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		above, err := pebble.Simulate(f.G, big, order)
		if err != nil {
			b.Fatal(err)
		}
		below, err := pebble.Simulate(f.G, n4-1, order)
		if err != nil {
			b.Fatal(err)
		}
		if above.IO() != bound || below.IO() <= bound {
			b.Fatalf("threshold violated: above=%d below=%d bound=%d", above.IO(), below.IO(), bound)
		}
		b.ReportMetric(float64(below.IO())/float64(bound), "spill-factor-below-C")
	}
}

// L5-7: measured I/O of the Listing 5/6/7 schedule family on the pebble
// game versus the unfused order.
func BenchmarkListingIO(b *testing.B) {
	n := 3
	f := cdag.BuildFourIndex(n)
	s := n*n*n*n + 3*n*n*n + 4*n*n + 2*n + 8
	orders := map[string][]cdag.VID{
		"unfused": pebble.OrderFourIndexUnfused(f),
		"pair":    pebble.OrderFourIndexFusedPair(f),
		"full":    pebble.OrderFourIndexFullyFused(f),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io := map[string]int{}
		for name, o := range orders {
			res, err := pebble.Simulate(f.G, s, o)
			if err != nil {
				b.Fatal(err)
			}
			io[name] = res.IO()
		}
		if !(io["full"] <= io["pair"] && io["pair"] <= io["unfused"]) {
			b.Fatalf("fusion I/O not monotone: %v", io)
		}
		b.ReportMetric(float64(io["full"]), "io-fullyfused")
	}
}

// X3 (Section 2.3 / Figure 1): untiled vs tiled matmul I/O.
func BenchmarkMatmulTiling(b *testing.B) {
	n, t := 12, 4
	m := cdag.BuildMatMul(n)
	s := 3*t*t + 3
	untiled := pebble.OrderMatMulUntiled(m)
	tiled := pebble.OrderMatMulTiled(m, t)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ru, err := pebble.Simulate(m.G, s, untiled)
		if err != nil {
			b.Fatal(err)
		}
		rt, err := pebble.Simulate(m.G, s, tiled)
		if err != nil {
			b.Fatal(err)
		}
		if rt.IO() >= ru.IO() {
			b.Fatalf("tiling did not reduce I/O: %d vs %d", rt.IO(), ru.IO())
		}
		b.ReportMetric(float64(ru.IO())/float64(rt.IO()), "untiled/tiled-io")
	}
}

// C12T: the Section 1/8 capacity claim — >12 TB unfused on <9 TB fused.
func BenchmarkCapacityClaim(b *testing.B) {
	mol, err := MoleculeByName("Shell-Mixed")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if mol.UnfusedMemoryBytes() < 12e12 {
			b.Fatal("unfused requirement below 12 TB")
		}
		adv := Advise(mol.Orbitals, experiments.SpatialSymmetry, int64(8.8e12))
		if adv.Scheme != "fused" {
			b.Fatalf("advice = %s", adv.Scheme)
		}
		b.ReportMetric(float64(adv.MemoryBytes)/1e12, "fused-footprint-TB")
	}
}

// X1: the Section 7.4 ~1.5x fused flop overhead, measured from the real
// schedules' counters (cost mode, contraction flops isolated by running
// with free integrals disabled analytically via lb formulas).
func BenchmarkFusedFlopOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := lb.FusedFlopOverhead(1194)
		if r < 1.4 || r > 1.6 {
			b.Fatalf("overhead = %v", r)
		}
		b.ReportMetric(r, "fused/unfused-flops")
	}
}

// X2: load imbalance of the triangular (alpha >= beta) pair space under
// the distribution policies (Section 7.3's imbalance discussion).
func BenchmarkLoadImbalance(b *testing.B) {
	nt := sym.Pairs(48) // pair-blocks of a 48-tile dimension
	for _, pol := range []tile.Policy{tile.RoundRobin, tile.Block, tile.BlockCyclic} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := tile.NewDist(nt, 504, pol, 4)
				b.ReportMetric(d.Imbalance(), "max/mean-tiles")
			}
		})
	}
}

// Scheme execution benchmarks: real arithmetic at a small extent, the
// classical Go benchmark for the library's compute path.
func BenchmarkSchemesExecute(b *testing.B) {
	spec, err := NewSpec(16, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []Scheme{Unfused, Fused1234Pair, FullyFused, FullyFusedInner, NWChemFused, Recompute} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Transform(s, Options{
					Spec: spec, Procs: 2, Mode: ModeExecute, TileN: 8, TileL: 4,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: fused-loop tile width vs communication volume and memory
// (the Eq. 7/8 trade-off).
func BenchmarkTileLSweep(b *testing.B) {
	spec, err := NewSpec(48, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, tl := range []int{2, 6, 12, 24} {
		b.Run(fmt.Sprintf("Tl=%d", tl), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Transform(FullyFusedInner, Options{
					Spec: spec, Procs: 4, Mode: ModeCost, TileN: 12, TileL: tl,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CommVolume+res.IntraVolume), "moved-elements")
				b.ReportMetric(float64(res.PeakGlobalBytes), "peak-bytes")
			}
		})
	}
}

// Ablation: alpha-parallelisation factor vs replicated A traffic
// (Section 7.3).
func BenchmarkAlphaParSweep(b *testing.B) {
	spec, err := NewSpec(48, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, ap := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("alphaPar=%d", ap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Transform(FullyFusedInner, Options{
					Spec: spec, Procs: 8, Mode: ModeCost, TileN: 12, TileL: 12, AlphaPar: ap,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CommVolume+res.IntraVolume), "moved-elements")
			}
		})
	}
}

// Ablation: the inner op12/34 fusion's communication saving at a fixed
// slab width (Listing 8 vs Listing 10).
func BenchmarkInnerFusionSaving(b *testing.B) {
	spec, err := NewSpec(48, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		vol := func(s Scheme) int64 {
			res, err := Transform(s, Options{
				Spec: spec, Procs: 4, Mode: ModeCost, TileN: 12, TileL: 12,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.CommVolume + res.IntraVolume
		}
		plain, inner := vol(FullyFused), vol(FullyFusedInner)
		if inner >= plain {
			b.Fatalf("inner fusion did not reduce traffic: %d vs %d", inner, plain)
		}
		b.ReportMetric(float64(plain)/float64(inner), "traffic-ratio")
	}
}

// Guard: the cost simulator and the execute path agree on accounting —
// benchmarked to keep the invariant cheap to re-verify.
func BenchmarkCostExecuteParity(b *testing.B) {
	spec, err := NewSpec(10, 1, 5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		opts := Options{Spec: spec, Procs: 2, Mode: ga.Execute, TileN: 4, TileL: 2}
		ex, err := ifx.Run(ifx.FullyFusedInner, opts)
		if err != nil {
			b.Fatal(err)
		}
		opts.Mode = ga.Cost
		co, err := ifx.Run(ifx.FullyFusedInner, opts)
		if err != nil {
			b.Fatal(err)
		}
		if ex.Totals.Flops != co.Totals.Flops {
			b.Fatal("cost/execute flop mismatch")
		}
	}
}

// Ablation: the Section 3 zero-spill motivation — out-of-core unfused vs
// in-memory fused under the same memory cap.
func BenchmarkSpillVsZeroSpill(b *testing.B) {
	spec, err := NewSpec(128, 4, 11)
	if err != nil {
		b.Fatal(err)
	}
	machine := SystemA()
	run, err := machine.Configure(64, 8)
	if err != nil {
		b.Fatal(err)
	}
	cap := UnfusedMemoryWords(128, 4) * 8 * 6 / 10
	base := Options{
		Spec: spec, Procs: 64, Mode: ModeCost, Run: &run,
		GlobalMemBytes: cap, TileN: 8, TileL: 8, AlphaPar: 4,
	}
	for i := 0; i < b.N; i++ {
		spillOpts := base
		spillOpts.AllowSpill = true
		spilled, err := Transform(Unfused, spillOpts)
		if err != nil {
			b.Fatal(err)
		}
		fused, err := Transform(FullyFusedInner, base)
		if err != nil {
			b.Fatal(err)
		}
		if fused.DiskVolume != 0 || spilled.DiskVolume == 0 {
			b.Fatal("spill accounting wrong")
		}
		b.ReportMetric(spilled.ElapsedSeconds/fused.ElapsedSeconds, "spill-slowdown")
	}
}

// Ablation: nested l tiling (Section 7.3) — parallelism vs slab memory.
func BenchmarkLParSweep(b *testing.B) {
	spec, err := NewSpec(48, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	machine := SystemB()
	run, err := machine.Configure(224, 28)
	if err != nil {
		b.Fatal(err)
	}
	for _, lp := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("LPar=%d", lp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Transform(FullyFusedInner, Options{
					Spec: spec, Procs: 224, Mode: ModeCost, Run: &run,
					TileN: 8, TileL: 4, LPar: lp,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ElapsedSeconds, "sim-seconds")
				b.ReportMetric(float64(res.PeakGlobalBytes), "peak-bytes")
			}
		})
	}
}

// Ablation: tile distribution policy at scale — the Section 7.3 load
// balance discussion, end to end.
func BenchmarkDistributionPolicy(b *testing.B) {
	spec, err := NewSpec(48, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	machine := SystemB()
	run, err := machine.Configure(112, 28)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []tile.Policy{tile.RoundRobin, tile.Block, tile.BlockCyclic} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Transform(FullyFusedInner, Options{
					Spec: spec, Procs: 112, Mode: ModeCost, Run: &run,
					TileN: 6, TileL: 6, AlphaPar: 2, Policy: pol,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ElapsedSeconds, "sim-seconds")
				b.ReportMetric(res.IdleFraction, "idle-fraction")
			}
		})
	}
}
