// Capacity planning: for each of the paper's cluster models, what is the
// largest four-index transform each schedule can run without disk I/O?
// This walks the Section 7.1 claim — the fully fused schedule executes
// the provably largest problem for a given aggregate memory — across the
// benchmark molecules, reproducing the Section 8 headline: a transform
// needing more than 12 TB unfused runs on a cluster holding less than
// 9 TB. It then walks the capacity-vs-bound frontier for n = 256: every
// capacity S has a data-movement lower bound, and the paper's
// closed-form thresholds are the knees where each schedule's curve
// flattens onto its memory-independent floor.
//
// Tail of the output of `go run ./examples/capacity`:
//
//	Largest disk-free extent on System B (9.9 TB), s = 8:
//	  unfused:      n <= 1132
//	  fully fused:  n <= 2488 (2.2x more orbitals, 23x more tensor elements)
//
//	Capacity-vs-bound frontier knees, n = 256, s = 1:
//	  single contraction tight at S = n^2+n+1  = 65793
//	  pair fusion tight at     S = 3n^2+n+1 = 196865
//	  full reuse possible at   S = |C|      = 1082146816
//	  scheme               config            flat at S    floor (elems)    bound at knee-1
//	  unfused              op1/2/3/4             65793      12952076288          3.146e+10
//	  fused12-34           op12/34              196865       4328587264          8.536e+09
//	  nwchem-fused12-34    op12/34              196865       4328587264          8.536e+09
//	  fused123-4           op123/4               65793       6476038144          2.498e+10
//	  fullyfused           op1234           1082146816       2164293632          4.329e+09
//	  fullyfused-inner     op1234           1082146816       2164293632          4.329e+09
package main

import (
	"fmt"

	"fourindex"
)

func main() {
	const spatial = 8 // the paper's benchmark symmetry (n^4/32 output)

	clusters := []struct {
		name  string
		nodes int
		bytes int64
	}{
		{"System A (64 x 24 GB)", 64, fourindex.SystemA().AggregateMemBytes(0)},
		{"System B (18 x 512 GB)", 18, fourindex.SystemB().AggregateMemBytes(0)},
		{"System C, 128 nodes", 128, fourindex.SystemC().AggregateMemBytes(128)},
	}

	for _, cl := range clusters {
		fmt.Printf("%s — %.1f TB aggregate physical memory\n", cl.name, float64(cl.bytes)/1e12)
		fmt.Printf("  %-12s %8s %12s | %-10s %s\n", "molecule", "orbitals", "unfused TB", "advice", "detail")
		for _, m := range fourindex.Molecules() {
			needTB := float64(m.UnfusedMemoryBytes()) / 1e12
			adv := fourindex.Advise(m.Orbitals, spatial, cl.bytes)
			detail := adv.Reason
			if adv.Scheme == "fused" {
				detail = fmt.Sprintf("fused-loop tile %d, footprint %.2f TB",
					adv.RequiredTileL, float64(adv.MemoryBytes)/1e12)
			}
			fmt.Printf("  %-12s %8d %12.2f | %-10s %s\n",
				m.Name, m.Orbitals, needTB, adv.Scheme, detail)
		}
		fmt.Println()
	}

	// The largest extent each schedule family handles on System B,
	// found by bisection over n.
	sysB := fourindex.SystemB().AggregateMemBytes(0)
	fmt.Printf("Largest disk-free extent on System B (%.1f TB), s = %d:\n", float64(sysB)/1e12, spatial)
	largest := func(fits func(n int) bool) int {
		lo, hi := 1, 20000
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if fits(mid) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	nUnfused := largest(func(n int) bool {
		return fourindex.UnfusedMemoryWords(n, spatial)*8 <= sysB
	})
	nFused := largest(func(n int) bool {
		return fourindex.Advise(n, spatial, sysB).Scheme != "infeasible"
	})
	fmt.Printf("  unfused:      n <= %d\n", nUnfused)
	fmt.Printf("  fully fused:  n <= %d (%.1fx more orbitals, %.0fx more tensor elements)\n\n",
		nFused, float64(nFused)/float64(nUnfused),
		pow4(float64(nFused)/float64(nUnfused)))

	// The knee walk: every capacity S has a data-movement lower bound,
	// and the closed-form thresholds are where each schedule's curve
	// flattens onto its memory-independent floor. Sample each curve at
	// its own knee, plus one grid step below (bound still falling) and
	// well above (flat).
	const n = 256
	knees := fourindex.KneesFor(n, 1)
	fmt.Printf("Capacity-vs-bound frontier knees, n = %d, s = 1:\n", n)
	fmt.Printf("  single contraction tight at S = n^2+n+1  = %d\n", knees.SingleTight)
	fmt.Printf("  pair fusion tight at     S = 3n^2+n+1 = %d\n", knees.PairFusion)
	fmt.Printf("  full reuse possible at   S = |C|      = %d\n", knees.FullReuse)
	rep := fourindex.RunFrontier([]fourindex.FrontierProblem{{Name: "knees", N: n, Sym: 1}})
	fmt.Printf("  %-20s %-12s %14s %16s %18s\n",
		"scheme", "config", "flat at S", "floor (elems)", "bound at knee-1")
	for _, sf := range rep.Problems[0].Schedules {
		var belowKnee float64
		for _, pt := range sf.Points {
			if pt.S < sf.FlatAtS {
				belowKnee = pt.BoundElements
			}
		}
		fmt.Printf("  %-20s %-12s %14d %16d %18.4g\n",
			sf.Scheme, sf.Config, sf.FlatAtS, sf.FloorElements, belowKnee)
	}
}

func pow4(x float64) float64 { return x * x * x * x }
