// Capacity planning: for each of the paper's cluster models, what is the
// largest four-index transform each schedule can run without disk I/O?
// This walks the Section 7.1 claim — the fully fused schedule executes
// the provably largest problem for a given aggregate memory — across the
// benchmark molecules, reproducing the Section 8 headline: a transform
// needing more than 12 TB unfused runs on a cluster holding less than
// 9 TB.
//
//	go run ./examples/capacity
package main

import (
	"fmt"

	"fourindex"
)

func main() {
	const spatial = 8 // the paper's benchmark symmetry (n^4/32 output)

	clusters := []struct {
		name  string
		nodes int
		bytes int64
	}{
		{"System A (64 x 24 GB)", 64, fourindex.SystemA().AggregateMemBytes(0)},
		{"System B (18 x 512 GB)", 18, fourindex.SystemB().AggregateMemBytes(0)},
		{"System C, 128 nodes", 128, fourindex.SystemC().AggregateMemBytes(128)},
	}

	for _, cl := range clusters {
		fmt.Printf("%s — %.1f TB aggregate physical memory\n", cl.name, float64(cl.bytes)/1e12)
		fmt.Printf("  %-12s %8s %12s | %-10s %s\n", "molecule", "orbitals", "unfused TB", "advice", "detail")
		for _, m := range fourindex.Molecules() {
			needTB := float64(m.UnfusedMemoryBytes()) / 1e12
			adv := fourindex.Advise(m.Orbitals, spatial, cl.bytes)
			detail := adv.Reason
			if adv.Scheme == "fused" {
				detail = fmt.Sprintf("fused-loop tile %d, footprint %.2f TB",
					adv.RequiredTileL, float64(adv.MemoryBytes)/1e12)
			}
			fmt.Printf("  %-12s %8d %12.2f | %-10s %s\n",
				m.Name, m.Orbitals, needTB, adv.Scheme, detail)
		}
		fmt.Println()
	}

	// The largest extent each schedule family handles on System B,
	// found by bisection over n.
	sysB := fourindex.SystemB().AggregateMemBytes(0)
	fmt.Printf("Largest disk-free extent on System B (%.1f TB), s = %d:\n", float64(sysB)/1e12, spatial)
	largest := func(fits func(n int) bool) int {
		lo, hi := 1, 20000
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if fits(mid) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	nUnfused := largest(func(n int) bool {
		return fourindex.UnfusedMemoryWords(n, spatial)*8 <= sysB
	})
	nFused := largest(func(n int) bool {
		return fourindex.Advise(n, spatial, sysB).Scheme != "infeasible"
	})
	fmt.Printf("  unfused:      n <= %d\n", nUnfused)
	fmt.Printf("  fully fused:  n <= %d (%.1fx more orbitals, %.0fx more tensor elements)\n",
		nFused, float64(nFused)/float64(nUnfused),
		pow4(float64(nFused)/float64(nUnfused)))
}

func pow4(x float64) float64 { return x * x * x * x }
