// Autotune vs analysis: the paper's central thesis in one program.
//
// Section 1 argues that the space of fusion and tiling configurations is
// so large that "neither analytical model-based optimization, nor any
// successful auto-tuning approach has been previously reported" — and
// that data-movement lower bounds cut through it. Here we run three
// roads on the same problem:
//
//   - the brute-force road: sweep schedules x tile widths x
//     parallelisation knobs through the cost simulator and pick the
//     fastest feasible configuration;
//   - the frontier road: evaluate each schedule's lower bound at the
//     run's capacity, shortlist by the machine-aware time floor, and
//     simulate only the shortlist (TuneFrontier) — same pick, fewer
//     simulations, and provably never worse than the sweep;
//   - the analysis road: one call to the Section 7.4 advisor, which
//     consults the Theorem 5.2/6.2 bounds and needs no search at all.
//
// Output of `go run ./examples/autotune`:
//
//	== ample memory ==
//	brute force: swept 78 configurations (0 infeasible)
//	             best = unfused  tileN=6 tileL=0 alphaPar=1 lPar=1  (0.0 sim-s)
//	frontier:    simulated 78 configurations, same pick: unfused (0.0 sim-s)
//	advisor:     "unfused" — intermediates fit in aggregate memory; unfused does ~1.5x less work
//	agreement:   sweep, frontier shortlist and O(1) analysis all match
//
//	== memory-constrained (70% of unfused need) ==
//	brute force: swept 78 configurations (46 infeasible)
//	             best = fullyfused-inner  tileN=6 tileL=2 alphaPar=1 lPar=2  (0.1 sim-s)
//	frontier:    simulated 72 configurations, same pick: fullyfused-inner (0.1 sim-s)
//	advisor:     "fused" — intermediates overflow memory; fully fused op1234 with inner op12/34 fits
//	agreement:   sweep, frontier shortlist and O(1) analysis all match
//
// Under memory pressure the frontier walk discards every unfused
// configuration from the schedule's memory model alone — brute force
// burned 46 simulations discovering the same thing one comparison
// against the feasibility edge already knew.
package main

import (
	"fmt"
	"log"

	"fourindex"
)

func main() {
	const (
		n     = 48
		procs = 56
	)
	spec, err := fourindex.NewSpec(n, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	run, err := fourindex.SystemB().Configure(procs, 28)
	if err != nil {
		log.Fatal(err)
	}

	space := fourindex.TuneSpace{
		TileNs:    []int{6, 8, 12},
		TileLs:    []int{2, 6, 12},
		AlphaPars: []int{1, 2},
		LPars:     []int{1, 2},
		Overlaps:  []bool{false, true},
	}

	for _, scenario := range []struct {
		name string
		mem  int64
	}{
		{"ample memory", 0},
		{"memory-constrained (70% of unfused need)", fourindex.UnfusedMemoryWords(n, 1) * 8 * 7 / 10},
	} {
		fmt.Printf("== %s ==\n", scenario.name)
		opt := fourindex.Options{
			Spec:           spec,
			Procs:          procs,
			Run:            &run,
			GlobalMemBytes: scenario.mem,
		}

		// Road 1: exhaustive sweep.
		points, err := fourindex.Tune(opt, space)
		if err != nil {
			log.Fatal(err)
		}
		failed := 0
		for _, p := range points {
			if p.Err != "" {
				failed++
			}
		}
		best, _ := fourindex.BestTunePoint(points)
		fmt.Printf("brute force: swept %d configurations (%d infeasible)\n", len(points), failed)
		fmt.Printf("             best = %v  tileN=%d tileL=%d alphaPar=%d lPar=%d  (%.1f sim-s)\n",
			best.Scheme, best.TileN, best.TileL, best.AlphaPar, best.LPar, best.Seconds)

		// Road 2: the frontier tuner — walk the capacity-vs-bound
		// frontier, simulate only the shortlist.
		ft, err := fourindex.TuneFrontier(opt, space, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frontier:    simulated %d configurations, same pick: %v (%.1f sim-s)\n",
			ft.Simulated, ft.Pick.Scheme, ft.Pick.Seconds)
		if ft.Pick.Seconds > best.Seconds*(1+1e-9) {
			log.Fatalf("frontier pick (%.4f s) worse than the sweep best (%.4f s)", ft.Pick.Seconds, best.Seconds)
		}

		// Road 3: the lower-bound advisor.
		mem := scenario.mem
		if mem == 0 {
			mem = 1 << 62 // unlimited
		}
		adv := fourindex.Advise(n, 1, mem)
		fmt.Printf("advisor:     %q — %s\n", adv.Scheme, adv.Reason)

		agree := (adv.Scheme == "unfused" && best.Scheme == fourindex.Unfused) ||
			(adv.Scheme == "fused" && best.Scheme == fourindex.FullyFusedInner)
		if !agree {
			log.Fatalf("the sweep (%v) and the analysis (%s) disagree", best.Scheme, adv.Scheme)
		}
		fmt.Printf("agreement:   sweep, frontier shortlist and O(1) analysis all match\n\n")
	}
}
