// Autotune vs analysis: the paper's central thesis in one program.
//
// Section 1 argues that the space of fusion and tiling configurations is
// so large that "neither analytical model-based optimization, nor any
// successful auto-tuning approach has been previously reported" — and
// that data-movement lower bounds cut through it. Here we run both
// roads on the same problem:
//
//   - the brute-force road: sweep schedules x tile widths x
//     parallelisation knobs through the cost simulator and pick the
//     fastest feasible configuration;
//   - the analysis road: one call to the Section 7.4 advisor, which
//     consults the Theorem 5.2/6.2 bounds.
//
// They agree — and the advisor needed no search at all.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"fourindex"
)

func main() {
	const (
		n     = 48
		procs = 56
	)
	spec, err := fourindex.NewSpec(n, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	run, err := fourindex.SystemB().Configure(procs, 28)
	if err != nil {
		log.Fatal(err)
	}

	for _, scenario := range []struct {
		name string
		mem  int64
	}{
		{"ample memory", 0},
		{"memory-constrained (70% of unfused need)", fourindex.UnfusedMemoryWords(n, 1) * 8 * 7 / 10},
	} {
		fmt.Printf("== %s ==\n", scenario.name)

		// Road 1: exhaustive sweep.
		points, err := fourindex.Tune(fourindex.Options{
			Spec:           spec,
			Procs:          procs,
			Run:            &run,
			GlobalMemBytes: scenario.mem,
		}, fourindex.TuneSpace{
			TileNs:    []int{6, 8, 12},
			TileLs:    []int{2, 6, 12},
			AlphaPars: []int{1, 2},
			LPars:     []int{1, 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		feasible, failed := 0, 0
		for _, p := range points {
			if p.Err == "" {
				feasible++
			} else {
				failed++
			}
		}
		best, _ := fourindex.BestTunePoint(points)
		fmt.Printf("autotuner: swept %d configurations (%d infeasible)\n", len(points), failed)
		fmt.Printf("           best = %v  tileN=%d tileL=%d alphaPar=%d lPar=%d  (%.1f sim-s)\n",
			best.Scheme, best.TileN, best.TileL, best.AlphaPar, best.LPar, best.Seconds)

		// Road 2: the lower-bound advisor.
		mem := scenario.mem
		if mem == 0 {
			mem = 1 << 62 // unlimited
		}
		adv := fourindex.Advise(n, 1, mem)
		fmt.Printf("advisor:   %q — %s\n", adv.Scheme, adv.Reason)

		agree := (adv.Scheme == "unfused" && best.Scheme == fourindex.Unfused) ||
			(adv.Scheme == "fused" && best.Scheme == fourindex.FullyFusedInner)
		if !agree {
			log.Fatalf("the sweep (%v) and the analysis (%s) disagree", best.Scheme, adv.Scheme)
		}
		fmt.Printf("agreement: the O(1) bound analysis matches the exhaustive search\n\n")
	}
}
