// Out-of-core: the road not taken. Section 3 of the paper argues for
// zero-spill schedules because "nodes in supercomputers often do not
// have local disks and the collective bandwidth to the file system
// disks is very low." This example quantifies that: a memory-capped
// unfused transform that spills its intermediates to a shared parallel
// file system, versus the paper's fully fused schedule that never
// leaves memory — same problem, same cap, same machine model.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"

	"fourindex"
)

func main() {
	const n = 368                            // Hyperpolar-sized
	spec, err := fourindex.NewSpec(n, 4, 11) // 4-fold spatial symmetry
	if err != nil {
		log.Fatal(err)
	}
	machine := fourindex.SystemA()
	run, err := machine.Configure(64, 8)
	if err != nil {
		log.Fatal(err)
	}

	// Cap aggregate memory at 60% of the unfused requirement: the
	// intermediates no longer fit.
	cap := fourindex.UnfusedMemoryWords(n, 4) * 8 * 6 / 10
	base := fourindex.Options{
		Spec:           spec,
		Procs:          64,
		Mode:           fourindex.ModeCost,
		Run:            &run,
		GlobalMemBytes: cap,
		TileN:          16,
		TileL:          16,
		AlphaPar:       3, // Section 7.3: enough op12 parallelism for 64 ranks
	}

	fmt.Printf("n = %d on %s, memory cap %.2f GB (unfused needs %.2f GB)\n\n",
		n, run, float64(cap)/1e9, float64(fourindex.UnfusedMemoryWords(n, 4)*8)/1e9)

	// Option 1: spill the unfused intermediates to disk.
	spillOpts := base
	spillOpts.AllowSpill = true
	spilled, err := fourindex.Transform(fourindex.Unfused, spillOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unfused, spilling to disk:\n")
	fmt.Printf("  simulated time: %8.1f s\n", spilled.ElapsedSeconds)
	fmt.Printf("  disk traffic:   %8.3g elements (collective FS bandwidth shared by all 64 ranks)\n",
		float64(spilled.DiskVolume))

	// Option 2: the paper's zero-spill fully fused schedule.
	fused, err := fourindex.Transform(fourindex.FullyFusedInner, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfully fused (Listing 10), zero spill:\n")
	fmt.Printf("  simulated time: %8.1f s\n", fused.ElapsedSeconds)
	fmt.Printf("  disk traffic:   %8.3g elements\n", float64(fused.DiskVolume))
	fmt.Printf("  peak memory:    %8.2f GB (within the cap)\n", float64(fused.PeakGlobalBytes)/1e9)

	fmt.Printf("\nzero-spill advantage: %.1fx — why Section 7.1 maximises the in-memory problem size\n",
		spilled.ElapsedSeconds/fused.ElapsedSeconds)
}
