// RHF pipeline: the complete quantum-chemistry stack this repository
// implements, end to end —
//
//	synthetic AO integrals  →  SCF (DIIS-accelerated Hartree-Fock)
//	                        →  four-index transform (fuse/unfuse hybrid)
//	                        →  MP2 correlation energy
//
// The SCF loop produces the genuinely orthogonal molecular-orbital
// coefficient matrix B and canonical orbital energies that the paper's
// transform consumes; the transform turns the AO integrals into MO
// integrals; MP2 consumes them. Run twice — once with the memory-ample
// unfused schedule, once memory-capped so the hybrid switches to the
// paper's fused algorithm — the correlation energies agree to machine
// precision.
//
//	go run ./examples/rhf
package main

import (
	"fmt"
	"log"
	"math"

	"fourindex"
)

func main() {
	const (
		n    = 16
		nOcc = 5
	)
	spec, err := fourindex.NewSpec(n, 1, 77)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Self-consistent field: the producer of B.
	hf, err := fourindex.RHF(spec, nOcc, fourindex.SCFOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if !hf.Converged {
		log.Fatalf("SCF did not converge in %d iterations", hf.Iterations)
	}
	fmt.Printf("SCF converged in %d iterations, E_elec = %.8f\n", hf.Iterations, hf.Energy)
	fmt.Printf("HOMO-LUMO gap: %.4f\n", hf.OrbitalEnergies[nOcc]-hf.OrbitalEnergies[nOcc-1])

	// 2. Install the converged coefficients as the transform's B.
	moSpec, err := spec.WithB(hf.B)
	if err != nil {
		log.Fatal(err)
	}

	// 3+4. Transform and MP2, with and without memory pressure.
	e2 := func(cap int64) float64 {
		res, err := fourindex.Transform(fourindex.Hybrid, fourindex.Options{
			Spec:           moSpec,
			Procs:          4,
			Mode:           fourindex.ModeExecute,
			GlobalMemBytes: cap,
		})
		if err != nil {
			log.Fatal(err)
		}
		e, err := fourindex.MP2Energy(res.C, hf.OrbitalEnergies, nOcc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18v E2 = %.12f\n", res.ChosenScheme, e)
		return e
	}
	fmt.Println("MP2 through the transform:")
	ample := e2(0)
	capped := e2(fourindex.UnfusedMemoryWords(n, 1) * 8 * 6 / 10)
	if math.Abs(ample-capped) > 1e-10 {
		log.Fatalf("schedules disagree: %v vs %v", ample, capped)
	}
	fmt.Printf("total electronic + MP2 energy: %.8f\n", hf.Energy+ample)
	fmt.Println("the fused schedule is energy-exact — the full pipeline verified")
}
