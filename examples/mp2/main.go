// MP2: the four-index transform's canonical consumer. Second-order
// Moller-Plesset perturbation theory needs molecular-orbital integrals
// (ia|jb) — exactly what the transform produces — to evaluate the
// correlation energy
//
//	E2 = - sum_{i,j occ; a,b virt} (ia|jb) [2 (ia|jb) - (ib|ja)]
//	     / (e_a + e_b - e_i - e_j)
//
// This example transforms a synthetic system, then computes E2 twice —
// from the unfused and from the fully fused schedules — and checks the
// energies agree to near machine precision, demonstrating that the
// memory-saving schedule is a drop-in replacement for a real workload.
//
//	go run ./examples/mp2
package main

import (
	"fmt"
	"log"
	"math"

	"fourindex"
)

func main() {
	const (
		n    = 20 // orbitals
		nOcc = 6  // "occupied" orbitals: indices 0..nOcc-1
	)
	spec, err := fourindex.NewSpec(n, 1, 7)
	if err != nil {
		log.Fatal(err)
	}

	energies := make([]float64, n)
	for p := 0; p < n; p++ {
		energies[p] = spec.OrbitalEnergy(p)
	}

	e2 := func(scheme fourindex.Scheme) float64 {
		res, err := fourindex.Transform(scheme, fourindex.Options{
			Spec:  spec,
			Procs: 4,
			Mode:  fourindex.ModeExecute,
			TileN: 5,
			TileL: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		e2, err := fourindex.MP2Energy(res.C, energies, nOcc)
		if err != nil {
			log.Fatal(err)
		}
		return e2
	}

	eUnfused := e2(fourindex.Unfused)
	eFused := e2(fourindex.FullyFusedInner)
	fmt.Printf("MP2-style correlation energy (synthetic integrals, %d orbitals, %d occupied)\n", n, nOcc)
	fmt.Printf("  from the unfused transform:      %.12f\n", eUnfused)
	fmt.Printf("  from the fully fused transform:  %.12f\n", eFused)
	diff := math.Abs(eUnfused - eFused)
	fmt.Printf("  |difference| = %.3e\n", diff)
	if diff > 1e-9 {
		log.Fatal("schedules disagree — the fused transform is not a faithful replacement")
	}
	fmt.Println("the fused schedule feeds the downstream calculation identically")
}
