// Quickstart: run the four-index integral transform end to end with the
// public API and verify the result against the sequential reference.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fourindex"
	"fourindex/internal/sym"
)

func main() {
	// A synthetic 24-orbital system with C2v-like spatial symmetry
	// (order 4). The generator is deterministic: same seed, same
	// integrals.
	spec, err := fourindex.NewSpec(24, 4, 2024)
	if err != nil {
		log.Fatal(err)
	}

	// Run the paper's fuse/unfuse hybrid on 8 simulated processes with
	// real arithmetic. With no memory cap the hybrid picks the unfused
	// schedule; capping memory below ~3n^4/4 words flips it to the
	// fully fused algorithm of Listing 10.
	res, err := fourindex.Transform(fourindex.Hybrid, fourindex.Options{
		Spec:  spec,
		Procs: 8,
		Mode:  fourindex.ModeExecute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid chose the %v schedule\n", res.ChosenScheme)
	fmt.Printf("flops: %.3g, inter-process traffic: %.3g elements\n",
		float64(res.Totals.Flops), float64(res.CommVolume))
	fmt.Printf("peak aggregate memory: %.1f MB\n", float64(res.PeakGlobalBytes)/1e6)

	// C is returned in packed-symmetric form: C[ab, cd] with a >= b,
	// c >= d. Accessors take arbitrary index order.
	fmt.Printf("C[3,1,2,0] = %.6f (== C[1,3,0,2] = %.6f)\n",
		res.C.At(3, 1, 2, 0), res.C.At(1, 3, 0, 2))

	// Cross-check against the sequential packed reference.
	want := fourindex.ReferencePacked(spec)
	diff := sym.MaxAbsDiffC(res.C, want)
	fmt.Printf("max |C - reference| = %.2e\n", diff)
	if diff > 1e-9 {
		log.Fatal("verification failed")
	}

	// The same transform, memory-capped so only the fused schedule
	// fits (the Section 7.4 decision in action).
	cap := fourindex.UnfusedMemoryWords(24, 4) * 8 / 2
	res2, err := fourindex.Transform(fourindex.Hybrid, fourindex.Options{
		Spec:           spec,
		Procs:          8,
		Mode:           fourindex.ModeExecute,
		GlobalMemBytes: cap,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under a %.1f MB cap the hybrid chose %v (peak %.1f MB)\n",
		float64(cap)/1e6, res2.ChosenScheme, float64(res2.PeakGlobalBytes)/1e6)
	if d := sym.MaxAbsDiffC(res2.C, want); d > 1e-9 {
		log.Fatal("fused result differs from reference")
	}
	fmt.Println("fused result verified — same C, half the memory")
}
