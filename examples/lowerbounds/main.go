// Lowerbounds: walk the paper's Section 4-6 analysis numerically,
// ending with an empirical confirmation on the red-blue pebble game —
// the measured I/O of the fully fused schedule hits the |A|+|B|+|C|
// bound exactly when S >= |C| and exceeds it when S < |C|.
//
//	go run ./examples/lowerbounds
package main

import (
	"fmt"
	"log"

	"fourindex"
	"fourindex/internal/cdag"
	"fourindex/internal/lb"
	"fourindex/internal/pebble"
)

func main() {
	// 1. The Fusion Lemma on the Section 4 examples.
	fmt.Println("1. Fusion Lemma (Lemma 4.2): IO(C12) >= IO(C1) + IO(C2) - 2|O1|")
	nBig, s := int64(4096), int64(4096)
	square := fourindex.DongarraMatmulLB(nBig, nBig, nBig, s)
	fused := fourindex.FusionLemma(square, square, nBig*nBig)
	unfused := 2 * 2 * float64(nBig*nBig*nBig) / 64 // 2 x 2N^3/sqrt(S)
	fmt.Printf("   square N x N chain:      saving <= %.1f%% of one matmul — fusion futile\n",
		100*(unfused-fused)/(unfused/2))
	k := int64(16)
	skinny := fourindex.DongarraMatmulLB(nBig, k, nBig, s)
	fusedSkinny := max(fourindex.FusionLemma(skinny, skinny, nBig*nBig), 0)
	unfusedSkinny := 2*skinny + 2*float64(nBig*nBig)
	fmt.Printf("   tall-skinny (K = %d):    saving <= %.1f%% — fusion very profitable\n",
		k, 100*(unfusedSkinny-fusedSkinny)/unfusedSkinny)

	// 2. The Theorem 5.2 total order for a real molecule size.
	fmt.Println("\n2. Fusion configuration ranking (Theorem 5.2), Uracil n = 698, s = 8:")
	for i, rc := range fourindex.RankFusionConfigs(698, 8) {
		if i >= 4 {
			break
		}
		fmt.Printf("   %d. %-10s I/O >= %.3g elements\n", i+1, rc.Config, float64(rc.IO))
	}

	// 3. The Theorem 6.2 threshold.
	fmt.Println("\n3. Full reuse (Theorem 6.2): IO = |A|+|C| iff S >= |C|")
	sz := fourindex.Sizes(698, 8)
	fmt.Printf("   |C| = %.3g words (%.1f GB): any smaller fast memory forces spills\n",
		float64(sz.C), float64(sz.C)*8/1e9)

	// 4. Empirical check in the red-blue pebble game at n = 3.
	fmt.Println("\n4. Red-blue pebble game check (Appendix A), n = 3:")
	n := 3
	f := cdag.BuildFourIndex(n)
	n4 := n * n * n * n
	order := pebble.OrderFourIndexFullyFused(f)
	bound := n4 + 4*n*n + n4 // |A| + four B matrices + |C|

	big := n4 + 3*n*n*n + 4*n*n + 2*n + 8
	res, err := pebble.Simulate(f.G, big, order)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   S = |C| + slabs = %4d:  measured I/O = %d, bound = %d  (achieved: %v)\n",
		big, res.IO(), bound, res.IO() == bound)

	small := n4 - 1
	res2, err := pebble.Simulate(f.G, small, order)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   S = |C| - 1    = %4d:  measured I/O = %d  (> bound, as Theorem 6.2 requires)\n",
		small, res2.IO())

	// 5. The same threshold drives the production planner.
	fmt.Println("\n5. The fuse/unfuse hybrid planner (Section 7.4) on Shell-Mixed:")
	mol, _ := fourindex.MoleculeByName("Shell-Mixed")
	for _, memTB := range []float64{16, 8.8, 0.3} {
		adv := fourindex.Advise(mol.Orbitals, 8, int64(memTB*1e12))
		fmt.Printf("   %5.1f TB aggregate -> %s\n", memTB, adv.Scheme)
	}
	_ = lb.FusedFlopOverhead // package anchor for the doc reference below
	fmt.Println("\n(the fused choice costs ~1.5x the arithmetic — lb.FusedFlopOverhead — but")
	fmt.Println(" is the only disk-free option once intermediates overflow memory)")
}
