package lb

import (
	"fmt"

	"fourindex/internal/sym"
)

// MemoryUnfused returns the peak live elements of the fully unfused
// schedule (Listing 1): the largest simultaneously live producer/consumer
// pair, |O1| + |O2| = 3n^4/4 to leading order (Section 2.2 quotes this as
// the memory that makes large problems infeasible).
func MemoryUnfused(n, s int) int64 {
	sz := sym.ExactSizes(n, s)
	peak := sz.A + sz.O1 // during op1
	if v := sz.O1 + sz.O2; v > peak {
		peak = v
	}
	if v := sz.O2 + sz.O3; v > peak {
		peak = v
	}
	if v := sz.O3 + sz.C; v > peak {
		peak = v
	}
	return peak
}

// MemoryFused1234 is Equation 7: the global memory of the fully fused
// parallel schedule (Listing 8) with fused-loop tile width tl:
//
//	Ni*Nj*Nk*Tl/2  +  Na*Nb*Nk*Tl/2  +  |C|
//
// (A slab, largest intermediate slab, and the resident output; the paper
// writes the |C| term as n^4/32 for its s = 8 benchmark systems).
func MemoryFused1234(n, s, tl int) int64 {
	if tl <= 0 || tl > n {
		panic(fmt.Sprintf("lb: fused tile width %d out of range (0,%d]", tl, n))
	}
	n64, t64 := int64(n), int64(tl)
	slabA := n64 * n64 * n64 * t64 / 2 // A[(i>j), k, l-tile]
	slabO := n64 * n64 * n64 * t64 / 2 // O1/O2/O3 slabs are n^3*Tl or n^3*Tl/2
	c := sym.ExactSizes(n, s).C
	return slabA + slabO + c
}

// MemoryFused1234Inner is Equation 8: the fully fused schedule with the
// additional inner op12/34 fusion (Listing 10):
//
//	Ni*Nj*Nk*Tl/2 + Na*Nj*Nk*Tl + Na*Nb*Nk*Tl/2 + Na*Nb*Ng*Tl/2 + |C|
func MemoryFused1234Inner(n, s, tl int) int64 {
	if tl <= 0 || tl > n {
		panic(fmt.Sprintf("lb: fused tile width %d out of range (0,%d]", tl, n))
	}
	n64, t64 := int64(n), int64(tl)
	n3t := n64 * n64 * n64 * t64
	c := sym.ExactSizes(n, s).C
	return n3t/2 + n3t + n3t/2 + n3t/2 + c
}

// MemoryFused12_34 returns the peak live elements of the op12/34 schedule
// executed at full problem scale (Listing 2): A and O2 coexist during the
// first fused pair — n^4/2 to leading order.
func MemoryFused12_34(n, s int) int64 {
	sz := sym.ExactSizes(n, s)
	peak := sz.A + sz.O2 // first fused pair: O1 is only an n^2 buffer
	if v := sz.O2 + sz.C; v > peak {
		peak = v
	}
	return peak
}

// FlopsUnfused returns the arithmetic operations (multiply+add counted
// separately) of the unfused symmetric schedule (Listing 1):
//
//	op1: 2 * n^3 * M      (a, i, j, k>=l)
//	op2: 2 * M * n * M    (a>=b, j, k>=l)
//	op3: 2 * M * n * n^2  (a>=b, c, k, l)
//	op4: 2 * M * M * n    (a>=b, c>=d, l)
//
// with M = n(n+1)/2, roughly 3n^5 in total.
func FlopsUnfused(n int) int64 {
	n64 := int64(n)
	m := int64(sym.Pairs(n))
	return 2*n64*n64*n64*m + 2*m*n64*m + 2*m*n64*n64*n64 + 2*m*m*n64
}

// FlopsFused1234 returns the arithmetic operations of the fully fused
// schedule (Listing 7/8). Fusing loop l breaks the (k,l) symmetry, so the
// first two contractions run over all k for every l — doubling their
// work (Section 7.4):
//
//	op1: 2 * n^4 per l            (a, i, j, k)     -> 2n^5 total
//	op2: 2 * M * n * n per l      (a>=b, j, k)     ->  n^5 total
//	op3: 2 * M * n * n per l      (a>=b, c, k)     ->  n^5 total
//	op4: 2 * M * M per l          (a>=b, c>=d)     ->  n^5/2 total
//
// The ratio to FlopsUnfused approaches 1.5 for large n.
func FlopsFused1234(n int) int64 {
	n64 := int64(n)
	m := int64(sym.Pairs(n))
	// Per iteration of l: op1 sums over the full (i, j) space — the
	// (k,l) symmetry is broken and the i-sum cannot exploit the (i,j)
	// packing — giving 2*n^4; op2 over (a>=b, j, k) = 2*M*n*n; op3
	// over (a>=b, c, k) = 2*M*n*n; op4 over (a>=b, c>=d) = 2*M*M.
	perL := 2*n64*n64*n64*n64 + 2*m*n64*n64 + 2*m*n64*n64 + 2*m*m
	return n64 * perL
}

// FusedFlopOverhead returns FlopsFused1234 / FlopsUnfused, which the
// paper quotes as approximately 1.5x (Section 7.4).
func FusedFlopOverhead(n int) float64 {
	return float64(FlopsFused1234(n)) / float64(FlopsUnfused(n))
}

// CommVolumeFused returns the analytic inter-memory traffic (elements) of
// the Listing 10 schedule — outer l fusion with inner op12/34 — at full
// problem scale: per outer l iteration the inner transform moves
// |A_slab| + 2|O2_slab| + |C| (Section 7.2), and the A term grows by the
// alpha-parallelisation replication factor alphaRep (Section 7.3).
func CommVolumeFused(n, s, tl, alphaRep int) int64 {
	if alphaRep < 1 {
		alphaRep = 1
	}
	n64, t64 := int64(n), int64(tl)
	outer := (n64 + t64 - 1) / t64
	m := int64(sym.Pairs(n))
	slabA := m * n64 * t64  // A[(i>=j), k, l-tile]
	slabO2 := m * n64 * t64 // O2[(a>=b), k, l-tile]
	c := sym.ExactSizes(n, s).C
	return outer * (slabA*int64(alphaRep) + 2*slabO2 + c)
}

// Advice is the fuse/unfuse hybrid decision (Section 7.4).
type Advice struct {
	Scheme        string // "unfused", "fused", or "infeasible"
	Config        FusionConfig
	Reason        string
	MemoryBytes   int64 // aggregate memory the chosen scheme needs
	RequiredTileL int   // fused-loop tile width chosen (fused only)
}

// Advise picks between the unfused and fully fused implementations for a
// problem of extent n with spatial symmetry s on a cluster with
// globalBytes of aggregate physical memory: unfused when the
// intermediates fit (it does ~1.5x less work and balances load better),
// fused when only the fused schedule fits, infeasible when even tl = 1
// exceeds memory (by Theorem 6.2, no disk-free schedule exists once
// |C| + working slabs exceed memory).
func Advise(n, s int, globalBytes int64) Advice {
	unfusedBytes := MemoryUnfused(n, s) * 8
	if unfusedBytes <= globalBytes {
		return Advice{
			Scheme:      "unfused",
			Config:      FusionConfig{Groups: [][]int{{1}, {2}, {3}, {4}}},
			Reason:      "intermediates fit in aggregate memory; unfused does ~1.5x less work",
			MemoryBytes: unfusedBytes,
		}
	}
	// Pick the largest tile width whose fused footprint fits.
	for tl := n; tl >= 1; tl-- {
		if b := MemoryFused1234Inner(n, s, tl) * 8; b <= globalBytes {
			return Advice{
				Scheme:        "fused",
				Config:        FusionConfig{Groups: [][]int{{1, 2, 3, 4}}},
				Reason:        "intermediates overflow memory; fully fused op1234 with inner op12/34 fits",
				MemoryBytes:   b,
				RequiredTileL: tl,
			}
		}
	}
	return Advice{
		Scheme: "infeasible",
		Reason: "even the tl=1 fused schedule exceeds aggregate memory (S < |C| + slabs; Theorem 6.2 forbids disk-free execution)",
	}
}

// CommVolumeUnfused returns the analytic inter-memory traffic (elements)
// of the unfused tiled schedule: each intermediate makes one write + one
// read round trip, A is read twice (its (i,j)-symmetric tiles serve two
// column gathers), O2 is read twice (op3's (k,l)-symmetric reads), and C
// is written once.
func CommVolumeUnfused(n, s int) int64 {
	sz := sym.ExactSizes(n, s)
	return 2*sz.A + 2*sz.O1 + 3*sz.O2 + 2*sz.O3 + sz.C
}

// CommVolumeFusedPair returns the analytic traffic of the op12/34
// schedule (Listing 9): A read once per canonical tile (the fused gather
// mirrors symmetric tiles locally), O2's round trip, and C written once.
func CommVolumeFusedPair(n, s int) int64 {
	sz := sym.ExactSizes(n, s)
	return sz.A + 2*sz.O2 + sz.C
}
