package lb

import (
	"fmt"
	"math"
	"sort"

	"fourindex/internal/sym"
)

// The capacity-vs-bound frontier: for every fast-memory capacity S there
// is a data-movement lower bound, and the paper's three thresholds
// (S >= n^2+n+1, S >= 3n^2+n+1, S >= |C|) are the knees where the curve
// flattens onto its memory-independent floor. This file sweeps S over a
// deterministic grid and evaluates each fusion configuration's bound at
// every point, turning the single-point Section 5/6 results into whole
// curves (the Orojenesis-style capacity sweep of ROADMAP item 2).

// Thresholds collects the closed-form capacities (in elements) at which
// the paper's bounds change regime for extent n with spatial symmetry s.
type Thresholds struct {
	// SingleTight is n^2+n+1: above it one contraction attains
	// I/O = |in|+|out| (Listing 5).
	SingleTight int64 `json:"singleTight"`
	// PairUseful is 3n^2: below it the Fusion Lemma makes pair fusion
	// futile (Section 5.1).
	PairUseful int64 `json:"pairUseful"`
	// PairFusion is 3n^2+n+1: above it a fused consecutive pair attains
	// I/O = |in|+|out| (Theorem 5.1, Listing 6).
	PairFusion int64 `json:"pairFusion"`
	// FullReuse is |C|: Theorem 6.2's necessary and sufficient capacity
	// for the full chain to attain I/O = |A|+|C|.
	FullReuse int64 `json:"fullReuse"`
	// FullReuseSufficient is |C| + 2n^3, the capacity at which Listing 7
	// concretely achieves the full-reuse bound.
	FullReuseSufficient int64 `json:"fullReuseSufficient"`
}

// ThresholdsFor returns the closed-form knee capacities for (n, s).
func ThresholdsFor(n, s int) Thresholds {
	n64 := int64(n)
	c := sym.ExactSizes(n, s).C
	return Thresholds{
		SingleTight:         SingleTightThreshold(n64),
		PairUseful:          3 * n64 * n64,
		PairFusion:          PairFusionThreshold(n64),
		FullReuse:           c,
		FullReuseSufficient: FullReuseSufficientS(n64, c),
	}
}

// ConfigBoundAt returns the I/O lower bound (elements moved between slow
// and fast memory) of fusion configuration c at fast-memory capacity S,
// summed over the configuration's fused groups. Each group's bound is
// regime-aware — below the capacity at which the paper proves the
// memory-independent floor attainable, the matmul (Dongarra) and Fusion
// Lemma terms apply; above it the bound is exactly the floor:
//
//   - a single contraction attains |in|+|out| for S >= n^2+n+1
//     (Listing 5); below, max(1.73 n^5/sqrt(S), |in|+|out|);
//   - a fused pair attains |in|+|out| for S >= 3n^2+n+1 (Theorem 5.1);
//     below, the Fusion Lemma bound lb1+lb2-2|mid| applies;
//   - the full op1234 chain attains |A|+|C| iff S >= |C| (Theorem 6.2);
//     below |C| full reuse is impossible and the best achievable
//     decomposition floor is the op12/34 pairing, so the curve jumps by
//     2|O2| at the |C| knee.
//
// The result is monotone non-increasing in S (the frontier property the
// tests pin).
func ConfigBoundAt(c FusionConfig, n, s int, S int64) float64 {
	checkS(S)
	sz := sym.ExactSizes(n, s)
	var total float64
	for _, g := range c.Groups {
		total += groupBoundAt(g, int64(n), sz, S)
	}
	return total
}

// groupBoundAt returns the capacity-S lower bound of one fused group.
func groupBoundAt(g []int, n int64, sz sym.Sizes, S int64) float64 {
	first, last := g[0], g[len(g)-1]
	floor := float64(tensorSize(sz, first-1) + tensorSize(sz, last))
	switch len(g) {
	case 1:
		return singleBoundAt(first, n, sz, S)
	case 2:
		return pairBoundAt(first, n, sz, S)
	case 3:
		// No tight construction exists for a fused triple; the Fusion
		// Lemma chain is the best known bound, and it collapses onto the
		// group floor once the per-contraction bounds are tight.
		return math.Max(floor, lemmaChainAt(g, n, sz, S))
	default: // the full op1234 chain
		if S >= sz.C {
			return floor // Theorem 6.2: full reuse attainable
		}
		// Full reuse impossible: any schedule must at least pay the best
		// partial decomposition, op12/34 (Theorem 5.2).
		pair := pairBoundAt(1, n, sz, S) + pairBoundAt(3, n, sz, S)
		return math.Max(math.Max(floor, pair), lemmaChainAt(g, n, sz, S))
	}
}

// singleBoundAt is the capacity-S bound of contraction op (1-4) alone:
// |in|+|out| above the Listing 5 threshold, ContractionLB below it.
func singleBoundAt(op int, n int64, sz sym.Sizes, S int64) float64 {
	in, out := tensorSize(sz, op-1), tensorSize(sz, op)
	if S >= SingleTightThreshold(n) {
		return float64(in + out)
	}
	return ContractionLB(n, S, in, out)
}

// pairBoundAt is the capacity-S bound of the fused pair (op, op+1):
// |in|+|out| above the Theorem 5.1 threshold; below it, the Section 5.1
// fused bound — the Fusion Lemma over the two raw matmul (Dongarra)
// bounds, 3.46 n^5/sqrt(S) - 2|mid| — which exceeds the floor right up
// to the threshold (this is what makes S = 3n^2+n+1 a knee rather than
// a smooth approach).
func pairBoundAt(op int, n int64, sz sym.Sizes, S int64) float64 {
	floor := float64(tensorSize(sz, op-1) + tensorSize(sz, op+1))
	if S >= PairFusionThreshold(n) {
		return floor
	}
	d := DongarraMatmulLB(n*n*n, n, n, S)
	lemma := FusionLemma(d, d, tensorSize(sz, op))
	return math.Max(floor, lemma)
}

// lemmaChainAt chains the Fusion Lemma over a fused group: the sum of
// per-contraction bounds minus two crossings of every internal
// intermediate.
func lemmaChainAt(g []int, n int64, sz sym.Sizes, S int64) float64 {
	var lemma float64
	for _, op := range g {
		lemma += singleBoundAt(op, n, sz, S)
	}
	for i := 0; i < len(g)-1; i++ {
		lemma -= 2 * float64(tensorSize(sz, g[i]))
	}
	return lemma
}

// ConfigFlatThreshold returns the capacity at which ConfigBoundAt
// flattens onto its memory-independent floor ConfigIO: the largest of
// the per-group tightness thresholds. Beyond it, more fast memory cannot
// reduce the configuration's data movement.
func ConfigFlatThreshold(c FusionConfig, n, s int) int64 {
	n64 := int64(n)
	var t int64
	for _, g := range c.Groups {
		var gt int64
		switch len(g) {
		case 1, 3:
			gt = SingleTightThreshold(n64)
		case 2:
			gt = PairFusionThreshold(n64)
		default:
			gt = sym.ExactSizes(n, s).C
		}
		if gt > t {
			t = gt
		}
	}
	return t
}

// ConfigMinMemory returns the minimum aggregate-memory footprint (in
// elements) at which the schedule family realising fusion configuration
// c can run at all, from the Section 2/7 memory models evaluated at
// their smallest tile widths. Below it the configuration's region of the
// frontier is infeasible (by Theorem 6.2 no amount of scheduling helps).
func ConfigMinMemory(c FusionConfig, n, s int) int64 {
	switch c.String() {
	case "op1/2/3/4":
		return MemoryUnfused(n, s)
	case "op12/34":
		return MemoryFused12_34(n, s)
	case "op123/4":
		return MemoryFused123(n, s, 1)
	case "op1234":
		return MemoryFused1234Inner(n, s, 1)
	default:
		// Configurations without an implemented schedule (op1/23/4, ...)
		// are bounded below by the cheapest implemented one that fuses at
		// least as much: the fully fused minimum.
		return MemoryFused1234Inner(n, s, 1)
	}
}

// CapacityGrid builds the deterministic capacity sweep for (n, s): a
// geometric grid with perDecade points per decade (<= 0 selects 8) from
// half the single-contraction threshold up to twice the unfused memory
// footprint — the span over which every knee and every feasibility edge
// lives — with the closed-form thresholds inserted exactly, so detected
// knees coincide with the paper's formulas rather than landing between
// grid points. The result is strictly increasing, duplicate-free, and a
// pure function of its arguments.
func CapacityGrid(n, s, perDecade int) []int64 {
	if perDecade <= 0 {
		perDecade = 8
	}
	th := ThresholdsFor(n, s)
	lo := th.SingleTight / 2
	if lo < 3 {
		lo = 3
	}
	hi := 2 * MemoryUnfused(n, s)
	ratio := math.Pow(10, 1/float64(perDecade))
	grid := []int64{th.SingleTight, th.PairUseful, th.PairFusion, th.FullReuse, th.FullReuseSufficient}
	for x := float64(lo); x <= float64(hi); x *= ratio {
		grid = append(grid, int64(math.Round(x)))
	}
	grid = append(grid, hi)
	return dedupeSorted(grid)
}

// dedupeSorted sorts capacities ascending and removes duplicates.
func dedupeSorted(grid []int64) []int64 {
	sort.Slice(grid, func(i, j int) bool { return grid[i] < grid[j] })
	out := grid[:0]
	var prev int64 = -1
	for _, v := range grid {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// CurvePoint is one sample of a configuration's frontier curve.
type CurvePoint struct {
	// S is the fast-memory capacity in elements.
	S int64 `json:"s"`
	// BoundElements is the I/O lower bound at S.
	BoundElements float64 `json:"boundElements"`
}

// Curve is one fusion configuration's capacity-vs-bound frontier.
type Curve struct {
	// Config is the fusion configuration in op-notation ("op12/34").
	Config string `json:"config"`
	// FloorElements is the memory-independent floor ConfigIO — the value
	// the curve flattens onto.
	FloorElements int64 `json:"floorElements"`
	// FlatAtS is the smallest grid capacity at which the bound equals
	// the floor (the detected knee; equals ConfigFlatThreshold because
	// the grid contains the closed-form thresholds exactly).
	FlatAtS int64 `json:"flatAtS"`
	// MinMemoryElements is the feasibility edge from ConfigMinMemory.
	MinMemoryElements int64 `json:"minMemoryElements"`
	// Points samples the bound over the capacity grid, ascending in S.
	Points []CurvePoint `json:"points"`
}

// ComputeCurve sweeps fusion configuration c over the capacity grid and
// returns its frontier curve, including the detected flattening knee.
func ComputeCurve(c FusionConfig, n, s int, grid []int64) Curve {
	if len(grid) == 0 {
		grid = CapacityGrid(n, s, 0)
	}
	sz := sym.ExactSizes(n, s)
	cv := Curve{
		Config:            c.String(),
		FloorElements:     ConfigIO(c, sz),
		MinMemoryElements: ConfigMinMemory(c, n, s),
		Points:            make([]CurvePoint, 0, len(grid)),
	}
	floor := float64(cv.FloorElements)
	for _, S := range grid {
		b := ConfigBoundAt(c, n, s, S)
		cv.Points = append(cv.Points, CurvePoint{S: S, BoundElements: b})
		if cv.FlatAtS == 0 && b <= floor {
			cv.FlatAtS = S
		}
	}
	return cv
}

// MemoryFused123 is the memory model of the op123/4 schedule (Fused123):
// the fused first three contractions stream A/O1/O2 slabs of fused-loop
// width tl while materialising the full O3 and the resident output C:
//
//	Ni*Nj*Nk*Tl/2 + Na*Nj*Nk*Tl + Na*Nb*Nk*Tl/2 + |O3| + |C|
func MemoryFused123(n, s, tl int) int64 {
	if tl <= 0 || tl > n {
		panic(fmt.Sprintf("lb: fused tile width %d out of range (0,%d]", tl, n))
	}
	n64, t64 := int64(n), int64(tl)
	n3t := n64 * n64 * n64 * t64
	sz := sym.ExactSizes(n, s)
	return n3t/2 + n3t + n3t/2 + sz.O3 + sz.C
}
