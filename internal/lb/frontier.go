package lb

import (
	"fmt"

	"fourindex/internal/sym"
)

// The capacity-vs-bound frontier: for every fast-memory capacity S there
// is a data-movement lower bound, and the paper's three thresholds
// (S >= n^2+n+1, S >= 3n^2+n+1, S >= |C|) are the knees where the curve
// flattens onto its memory-independent floor. Every quantity in this
// file is derived by the chain engine (internal/lb/chain) from the
// declarative chain.FourIndex(n, s) description; the historical closed
// forms are pinned against the engine's output by golden tests.

// Thresholds collects the closed-form capacities (in elements) at which
// the paper's bounds change regime for extent n with spatial symmetry s.
type Thresholds struct {
	// SingleTight is n^2+n+1: above it one contraction attains
	// I/O = |in|+|out| (Listing 5).
	SingleTight int64 `json:"singleTight"`
	// PairUseful is 3n^2: below it the Fusion Lemma makes pair fusion
	// futile (Section 5.1).
	PairUseful int64 `json:"pairUseful"`
	// PairFusion is 3n^2+n+1: above it a fused consecutive pair attains
	// I/O = |in|+|out| (Theorem 5.1, Listing 6).
	PairFusion int64 `json:"pairFusion"`
	// FullReuse is |C|: Theorem 6.2's necessary and sufficient capacity
	// for the full chain to attain I/O = |A|+|C|.
	FullReuse int64 `json:"fullReuse"`
	// FullReuseSufficient is |C| + 2n^3, the capacity at which Listing 7
	// concretely achieves the full-reuse bound.
	FullReuseSufficient int64 `json:"fullReuseSufficient"`
}

// ThresholdsFor returns the knee capacities for (n, s), derived by the
// chain engine.
func ThresholdsFor(n, s int) Thresholds {
	t := fourIndexChain(n, s).Thresholds()
	return Thresholds{
		SingleTight:         t.SingleTight,
		PairUseful:          t.PairUseful,
		PairFusion:          t.PairFusion,
		FullReuse:           t.FullReuse,
		FullReuseSufficient: t.FullReuseSufficient,
	}
}

// ConfigBoundAt returns the I/O lower bound (elements moved between slow
// and fast memory) of fusion configuration c at fast-memory capacity S,
// summed over the configuration's fused groups. Each group's bound is
// regime-aware — below the capacity at which the paper proves the
// memory-independent floor attainable, the matmul (Dongarra) and Fusion
// Lemma terms apply; above it the bound is exactly the floor:
//
//   - a single contraction attains |in|+|out| for S >= n^2+n+1
//     (Listing 5); below, max(1.73 n^5/sqrt(S), |in|+|out|);
//   - a fused pair attains |in|+|out| for S >= 3n^2+n+1 (Theorem 5.1);
//     below, the Fusion Lemma bound lb1+lb2-2|mid| applies;
//   - the full op1234 chain attains |A|+|C| iff S >= |C| (Theorem 6.2);
//     below |C| full reuse is impossible and the best achievable
//     decomposition floor is the op12/34 pairing, so the curve jumps by
//     2|O2| at the |C| knee.
//
// The result is monotone non-increasing in S (the frontier property the
// tests pin).
func ConfigBoundAt(c FusionConfig, n, s int, S int64) float64 {
	checkS(S)
	b, err := fourIndexChain(n, s).ConfigBoundAt(c.engine(), S)
	if err != nil {
		panic(fmt.Sprintf("lb: bad fusion config %v: %v", c.Groups, err))
	}
	return b
}

// ConfigFlatThreshold returns the capacity at which ConfigBoundAt
// flattens onto its memory-independent floor ConfigIO: the largest of
// the per-group tightness thresholds. Beyond it, more fast memory cannot
// reduce the configuration's data movement.
func ConfigFlatThreshold(c FusionConfig, n, s int) int64 {
	t, err := fourIndexChain(n, s).ConfigFlatThreshold(c.engine())
	if err != nil {
		panic(fmt.Sprintf("lb: bad fusion config %v: %v", c.Groups, err))
	}
	return t
}

// ConfigMinMemory returns the minimum aggregate-memory footprint (in
// elements) at which the schedule family realising fusion configuration
// c can run at all, from the Section 2/7 memory models evaluated at
// their smallest tile widths — derived by the chain engine from the
// four-index chain's declared streaming slabs. Below it the
// configuration's region of the frontier is infeasible (by Theorem 6.2
// no amount of scheduling helps).
func ConfigMinMemory(c FusionConfig, n, s int) int64 {
	v, err := fourIndexChain(n, s).ConfigMinMemory(c.engine())
	if err != nil {
		panic(fmt.Sprintf("lb: bad fusion config %v: %v", c.Groups, err))
	}
	return v
}

// CapacityGrid builds the deterministic capacity sweep for (n, s): a
// geometric grid with perDecade points per decade (<= 0 selects 8) from
// half the single-contraction threshold up to twice the unfused memory
// footprint — the span over which every knee and every feasibility edge
// lives — with the closed-form thresholds inserted exactly, so detected
// knees coincide with the paper's formulas rather than landing between
// grid points. The result is strictly increasing, duplicate-free, and a
// pure function of its arguments.
func CapacityGrid(n, s, perDecade int) []int64 {
	return fourIndexChain(n, s).CapacityGrid(perDecade)
}

// CurvePoint is one sample of a configuration's frontier curve.
type CurvePoint struct {
	// S is the fast-memory capacity in elements.
	S int64 `json:"s"`
	// BoundElements is the I/O lower bound at S.
	BoundElements float64 `json:"boundElements"`
}

// Curve is one fusion configuration's capacity-vs-bound frontier.
type Curve struct {
	// Config is the fusion configuration in op-notation ("op12/34").
	Config string `json:"config"`
	// FloorElements is the memory-independent floor ConfigIO — the value
	// the curve flattens onto.
	FloorElements int64 `json:"floorElements"`
	// FlatAtS is the smallest grid capacity at which the bound equals
	// the floor (the detected knee; equals ConfigFlatThreshold because
	// the grid contains the closed-form thresholds exactly).
	FlatAtS int64 `json:"flatAtS"`
	// MinMemoryElements is the feasibility edge from ConfigMinMemory.
	MinMemoryElements int64 `json:"minMemoryElements"`
	// Points samples the bound over the capacity grid, ascending in S.
	Points []CurvePoint `json:"points"`
}

// ComputeCurve sweeps fusion configuration c over the capacity grid and
// returns its frontier curve, including the detected flattening knee.
func ComputeCurve(c FusionConfig, n, s int, grid []int64) Curve {
	cv, err := fourIndexChain(n, s).ComputeCurve(c.engine(), grid)
	if err != nil {
		panic(fmt.Sprintf("lb: ComputeCurve %v: %v", c.Groups, err))
	}
	out := Curve{
		Config:            cv.Config,
		FloorElements:     cv.FloorElements,
		FlatAtS:           cv.FlatAtS,
		MinMemoryElements: cv.MinMemoryElements,
		Points:            make([]CurvePoint, len(cv.Points)),
	}
	for i, p := range cv.Points {
		out.Points[i] = CurvePoint{S: p.S, BoundElements: p.BoundElements}
	}
	return out
}

// MemoryFused123 is the memory model of the op123/4 schedule (Fused123):
// the fused first three contractions stream A/O1/O2 slabs of fused-loop
// width tl while materialising the full O3 and the resident output C:
//
//	Ni*Nj*Nk*Tl/2 + Na*Nj*Nk*Tl + Na*Nb*Nk*Tl/2 + |O3| + |C|
func MemoryFused123(n, s, tl int) int64 {
	if tl <= 0 || tl > n {
		panic(fmt.Sprintf("lb: fused tile width %d out of range (0,%d]", tl, n))
	}
	n64, t64 := int64(n), int64(tl)
	n3t := n64 * n64 * n64 * t64
	sz := sym.ExactSizes(n, s)
	return n3t/2 + n3t + n3t/2 + sz.O3 + sz.C
}
