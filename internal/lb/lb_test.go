package lb

import (
	"math"
	"strings"
	"testing"

	"fourindex/internal/sym"
)

func TestMatmulBoundsOrdering(t *testing.T) {
	// Dongarra's bound is tighter (larger) than Irony's for the same
	// problem, and both must be positive.
	ni, nj, nk, s := int64(100), int64(100), int64(100), int64(1024)
	irony := IronyMatmulLB(ni, nj, nk, s)
	dongarra := DongarraMatmulLB(ni, nj, nk, s)
	if irony <= 0 || dongarra <= 0 {
		t.Fatal("bounds must be positive")
	}
	if dongarra <= irony {
		t.Errorf("Dongarra %v should exceed Irony %v", dongarra, irony)
	}
	hk := HongKungMatmulLB(100, s)
	if hk <= 0 {
		t.Error("Hong-Kung bound must be positive")
	}
}

func TestBoundsScaleWithS(t *testing.T) {
	// More fast memory => weaker (smaller) lower bound, ~1/sqrt(S).
	b1 := DongarraMatmulLB(64, 64, 64, 256)
	b2 := DongarraMatmulLB(64, 64, 64, 1024)
	if ratio := b1 / b2; math.Abs(ratio-2) > 1e-9 {
		t.Errorf("4x memory should halve the bound; ratio = %v", ratio)
	}
}

func TestBadSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("S = 0 did not panic")
		}
	}()
	DongarraMatmulLB(4, 4, 4, 0)
}

func TestTiledVsUntiledMatmulIO(t *testing.T) {
	// Section 2.3: tiling reduces I/O from ~N^3 to ~2N^3/T.
	n := int64(1024)
	for _, tile := range []int64{8, 32, 128} {
		tiled := TiledMatmulIO(n, tile)
		untiled := UntiledMatmulIO(n)
		if tiled >= untiled && tile > 2 {
			t.Errorf("T=%d: tiled I/O %v should beat untiled %v", tile, tiled, untiled)
		}
	}
	if TiledMatmulIO(n, 1) != 2*UntiledMatmulIO(n) {
		t.Error("T=1 tiled I/O should be 2N^3")
	}
}

func TestFusionLemmaArithmetic(t *testing.T) {
	if got := FusionLemma(100, 200, 40); got != 220 {
		t.Errorf("FusionLemma = %v, want 100+200-80 = 220", got)
	}
}

// Section 4's square example: two chained N x N matmuls, fusion saving
// is bounded by ~27% of the unfused I/O (0.54/2).
func TestFusionFutileForSquareChain(t *testing.T) {
	// The paper's arithmetic: efficiently tiled unfused execution
	// costs 2 * 2N^3/sqrt(S); the Fusion Lemma floor is
	// 2 * 1.73 N^3/sqrt(S) - 2N^2, so the saving is under
	// 0.54 N^3/sqrt(S) + 2N^2 — around 27% of one matmul's I/O.
	n, s := int64(4096), int64(64*64)
	lbOne := DongarraMatmulLB(n, n, n, s)
	fusedLB := FusionLemma(lbOne, lbOne, n*n)
	unfused := 2 * TiledMatmulIO(n, int64(math.Sqrt(float64(s))))
	saving := MaxFusionSaving(unfused, fusedLB)
	perMatmul := TiledMatmulIO(n, int64(math.Sqrt(float64(s))))
	if frac := saving / perMatmul; frac > 0.30 {
		t.Errorf("square-chain fusion saving fraction = %v, paper bounds it near 27%%", frac)
	}
}

// Section 4's non-square example: with N >> K the intermediate (N x N)
// dwarfs the inherent I/O, so fusion can be very beneficial.
func TestFusionBeneficialForOuterProductChain(t *testing.T) {
	n, k, s := int64(10000), int64(16), int64(4096)
	lbOne := DongarraMatmulLB(n, k, n, s)
	inter := n * n
	fusedLB := FusionLemma(lbOne, lbOne, inter)
	// The unfused schedule must at least write and read the
	// intermediate: 2|O1| plus the inherent terms.
	unfusedMin := 2*lbOne + 2*float64(inter)
	saving := MaxFusionSaving(unfusedMin, fusedLB)
	if frac := saving / unfusedMin; frac < 0.5 {
		t.Errorf("tall-skinny fusion saving fraction = %v, want > 0.5", frac)
	}
}

func TestMaxFusionSavingNonNegative(t *testing.T) {
	if MaxFusionSaving(10, 50) != 0 {
		t.Error("saving must clamp at zero")
	}
}

func TestContractionLB(t *testing.T) {
	n := int64(64)
	sz := sym.PaperSizes(int(n), 1)
	// Large S: bound is |in| + |out|.
	bigS := int64(10 * n * n)
	got := ContractionLB(n, bigS, sz.A, sz.O1)
	if got != float64(sz.A+sz.O1) {
		t.Errorf("large-S bound = %v, want %v", got, sz.A+sz.O1)
	}
	// Tiny S: Dongarra term dominates.
	tinyS := int64(16)
	got = ContractionLB(n, tinyS, sz.A, sz.O1)
	want := DongarraMatmulLB(n*n*n, n, n, tinyS)
	if got != want {
		t.Errorf("small-S bound = %v, want Dongarra %v", got, want)
	}
}

func TestThresholds(t *testing.T) {
	n := int64(100)
	if SingleTightThreshold(n) != 10101 {
		t.Errorf("single threshold = %d", SingleTightThreshold(n))
	}
	if PairFusionThreshold(n) != 30101 {
		t.Errorf("pair threshold = %d", PairFusionThreshold(n))
	}
	if PairFusionUseful(n, 2*n*n) {
		t.Error("S = 2n^2 < 3n^2 should make pair fusion futile")
	}
	if !PairFusionUseful(n, 4*n*n) {
		t.Error("S = 4n^2 should allow useful fusion")
	}
}

func TestFullReuseCondition(t *testing.T) {
	sizeC := int64(1000)
	if FullReusePossible(999, sizeC) {
		t.Error("S < |C| must forbid full reuse (Theorem 6.2)")
	}
	if !FullReusePossible(1000, sizeC) {
		t.Error("S = |C| permits full reuse")
	}
	n := int64(10)
	if got := FullReuseSufficientS(n, sizeC); got != 1000+2000 {
		t.Errorf("sufficient S = %d, want |C| + 2n^3", got)
	}
}

func TestAllFusionConfigsComplete(t *testing.T) {
	cfgs := AllFusionConfigs()
	if len(cfgs) != 8 {
		t.Fatalf("got %d configs, want 8", len(cfgs))
	}
	names := make(map[string]bool)
	for _, c := range cfgs {
		names[c.String()] = true
		// Groups must cover 1..4 contiguously.
		next := 1
		for _, g := range c.Groups {
			for _, op := range g {
				if op != next {
					t.Errorf("%v is not a contiguous partition", c)
				}
				next++
			}
		}
		if next != 5 {
			t.Errorf("%v does not cover all four contractions", c)
		}
	}
	for _, want := range []string{"op1/2/3/4", "op12/34", "op123/4", "op1/234", "op1234", "op12/3/4", "op1/23/4", "op1/2/34"} {
		if !names[want] {
			t.Errorf("missing config %s (have %v)", want, names)
		}
	}
}

func TestConfigByName(t *testing.T) {
	c, err := ConfigByName("op12/34")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Groups) != 2 || len(c.Groups[0]) != 2 {
		t.Errorf("op12/34 parsed as %v", c)
	}
	if _, err := ConfigByName("op21/43"); err == nil {
		t.Error("bogus name should error")
	}
}

// Section 5.3's explicit bound expressions.
func TestConfigIOMatchesPaperExpressions(t *testing.T) {
	sz := sym.ExactSizes(40, 1)
	cases := map[string]int64{
		"op1/2/3/4": sz.A + sz.O1 + sz.O1 + sz.O2 + sz.O2 + sz.O3 + sz.O3 + sz.C,
		"op12/34":   sz.A + sz.O2 + sz.O2 + sz.C,
		"op1/23/4":  sz.A + sz.O1 + sz.O1 + sz.O3 + sz.O3 + sz.C,
		"op123/4":   sz.A + sz.O3 + sz.O3 + sz.C,
		"op1234":    sz.A + sz.C,
	}
	for name, want := range cases {
		c, err := ConfigByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := ConfigIO(c, sz); got != want {
			t.Errorf("%s I/O = %d, want %d", name, got, want)
		}
	}
}

// Theorem 5.2: IO(op1234) <= IO(op12/34) < IO(op123/4), the strict
// inequality coming from |O3| > |O2| under symmetry.
func TestTheorem52Order(t *testing.T) {
	for _, n := range []int{10, 50, 200} {
		for _, s := range []int{1, 4, 8} {
			sz := sym.ExactSizes(n, s)
			io1234 := ConfigIO(mustCfg(t, "op1234"), sz)
			io1234p := ConfigIO(mustCfg(t, "op12/34"), sz)
			io123 := ConfigIO(mustCfg(t, "op123/4"), sz)
			if !(io1234 <= io1234p) {
				t.Errorf("n=%d s=%d: IO(op1234)=%d > IO(op12/34)=%d", n, s, io1234, io1234p)
			}
			if !(io1234p < io123) {
				t.Errorf("n=%d s=%d: IO(op12/34)=%d !< IO(op123/4)=%d", n, s, io1234p, io123)
			}
		}
	}
}

func mustCfg(t *testing.T, name string) FusionConfig {
	t.Helper()
	c, err := ConfigByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRankConfigsBestIsFullFusion(t *testing.T) {
	ranked := RankConfigs(sym.ExactSizes(64, 1))
	if ranked[0].Config.String() != "op1234" {
		t.Errorf("best config = %s, want op1234", ranked[0].Config)
	}
	if !ranked[0].Tight {
		t.Error("op1234 bound should be marked tight (Listing 7)")
	}
	// op12/34 must outrank every other partial fusion.
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.Config.String()] = i
	}
	for _, other := range []string{"op1/2/3/4", "op123/4", "op1/234", "op12/3/4", "op1/23/4", "op1/2/34"} {
		if pos["op12/34"] > pos[other] {
			t.Errorf("op12/34 ranked below %s", other)
		}
	}
}

func TestConfigTight(t *testing.T) {
	if !ConfigTight(mustCfg(t, "op12/34")) || !ConfigTight(mustCfg(t, "op1234")) || !ConfigTight(mustCfg(t, "op1/2/3/4")) {
		t.Error("pairs, singletons and full fusion are tight")
	}
	if ConfigTight(mustCfg(t, "op123/4")) || ConfigTight(mustCfg(t, "op1/234")) {
		t.Error("triple fusion bounds are not known tight")
	}
}

func TestBestConfigBySCapacity(t *testing.T) {
	sz := sym.ExactSizes(64, 1)
	if got := BestConfig(sz, sz.C); got.String() != "op1234" {
		t.Errorf("S = |C| should pick op1234, got %s", got)
	}
	if got := BestConfig(sz, sz.C-1); got.String() != "op12/34" {
		t.Errorf("S < |C| should pick op12/34, got %s", got)
	}
}

func TestConfigStringFormat(t *testing.T) {
	c := FusionConfig{Groups: [][]int{{1, 2}, {3}, {4}}}
	if c.String() != "op12/3/4" {
		t.Errorf("String = %q", c.String())
	}
	if !strings.HasPrefix(c.String(), "op") {
		t.Error("notation must start with op")
	}
}
