package chain

import (
	"fmt"
	"math"
)

// ValidationError reports a malformed chain description or fusion
// configuration. It carries the chain name and the offending field so
// serve handlers can surface an actionable 422 body.
type ValidationError struct {
	// Chain is the name of the chain being validated ("" if unnamed).
	Chain string
	// Field locates the offending field ("ops[1].red", "boundaries", ...).
	Field string
	// Reason explains what is wrong with the field.
	Reason string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	name := e.Chain
	if name == "" {
		name = "chain"
	}
	return fmt.Sprintf("chain: invalid %s %s: %s", name, e.Field, e.Reason)
}

// CapacityError reports an unusable fast-memory capacity handed to a
// bound evaluation — the typed replacement for lb's checkS panic on the
// paths reachable from user-supplied job payloads.
type CapacityError struct {
	// S is the rejected capacity in elements.
	S int64
	// Reason explains why S is unusable.
	Reason string
}

// Error implements the error interface.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("chain: bad capacity %d: %s", e.S, e.Reason)
}

// OverflowError reports int64 overflow in tensor-size arithmetic: the
// typed signal that an extent or element count is too large to reason
// about rather than a silently wrapped bound.
type OverflowError struct {
	// Op is the arithmetic operation that overflowed ("mul" or "add").
	Op string
	// A and B are the operands.
	A, B int64
}

// Error implements the error interface.
func (e *OverflowError) Error() string {
	return fmt.Sprintf("chain: int64 overflow in %d %s %d", e.A, e.Op, e.B)
}

// MulInt64 returns a*b, or an *OverflowError when the product does not
// fit in int64.
func MulInt64(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	if (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
		return 0, &OverflowError{Op: "mul", A: a, B: b}
	}
	c := a * b
	if c/a != b {
		return 0, &OverflowError{Op: "mul", A: a, B: b}
	}
	return c, nil
}

// Mul3Int64 returns a*b*c with overflow checking at each step.
func Mul3Int64(a, b, c int64) (int64, error) {
	ab, err := MulInt64(a, b)
	if err != nil {
		return 0, err
	}
	return MulInt64(ab, c)
}

// AddInt64 returns a+b, or an *OverflowError when the sum does not fit
// in int64.
func AddInt64(a, b int64) (int64, error) {
	if (b > 0 && a > math.MaxInt64-b) || (b < 0 && a < math.MinInt64-b) {
		return 0, &OverflowError{Op: "add", A: a, B: b}
	}
	return a + b, nil
}

// satAdd adds non-negative quantities, saturating at MaxInt64. Used for
// capacity thresholds, where saturation means "never attainable" — the
// conservative reading for a bound.
func satAdd(a, b int64) int64 {
	v, err := AddInt64(a, b)
	if err != nil {
		return math.MaxInt64
	}
	return v
}

// satMul multiplies non-negative quantities, saturating at MaxInt64.
func satMul(a, b int64) int64 {
	v, err := MulInt64(a, b)
	if err != nil {
		return math.MaxInt64
	}
	return v
}
