package chain

import (
	"fmt"
	"math"
	"sort"
)

// MaxOps caps the chain length the engine accepts: it bounds the
// 2^(m-1) configuration enumeration and keeps the op-notation strings
// unambiguous (single digits).
const MaxOps = 9

// Thresholds collects the capacities (in elements) at which the chain's
// bounds change regime — the generalization of the paper's closed-form
// knees (lb.Thresholds is produced by this via the FourIndex chain).
type Thresholds struct {
	// SingleTight is the capacity above which every single contraction
	// attains I/O = |in|+|out| (max over ops of operand + red + 1, the
	// Listing 5 working set).
	SingleTight int64 `json:"singleTight"`
	// PairUseful is the capacity below which the Fusion Lemma makes every
	// pair fusion futile (max over adjacent pairs of both operands plus
	// the mid-slab prod_i * red_i+1).
	PairUseful int64 `json:"pairUseful"`
	// PairFusion is the capacity above which every fused consecutive pair
	// attains I/O = |in|+|out| (Theorem 5.1 generalized: PairUseful of
	// the pair plus red_i + 1).
	PairFusion int64 `json:"pairFusion"`
	// FullReuse is the final output size: Theorem 6.2's necessary and
	// sufficient capacity for the full chain to attain I/O = |in|+|out|.
	FullReuse int64 `json:"fullReuse"`
	// FullReuseSufficient is FullReuse plus two row-panels of working
	// space — the capacity at which a Listing 7-style schedule concretely
	// achieves the full-reuse bound.
	FullReuseSufficient int64 `json:"fullReuseSufficient"`
}

// singleTight returns the capacity above which op i (0-based) attains
// its |in|+|out| floor: the contracted operand, one input row, and one
// running scalar (Listing 5 generalized).
func (c *Chain) singleTight(i int) int64 {
	return satAdd(satAdd(c.Ops[i].OperandElements, c.Ops[i].Red), 1)
}

// pairUseful returns the capacity below which fusing ops (i, i+1)
// (0-based) cannot beat their unfused cost: both operands plus the
// prod_i x red_i+1 mid slab (Section 5.1 generalized; 3n^2 for the
// four-index chain).
func (c *Chain) pairUseful(i int) int64 {
	slab := satMul(c.Ops[i].Prod, c.Ops[i+1].Red)
	return satAdd(satAdd(c.Ops[i].OperandElements, c.Ops[i+1].OperandElements), slab)
}

// pairTight returns the capacity above which the fused pair (i, i+1)
// attains its floor: pairUseful plus one input row and a scalar
// (Theorem 5.1 / Listing 6 generalized; 3n^2+n+1 for four-index).
func (c *Chain) pairTight(i int) int64 {
	return satAdd(satAdd(c.pairUseful(i), c.Ops[i].Red), 1)
}

// Thresholds derives the chain's regime-change capacities. For the
// FourIndex chain this reproduces lb.ThresholdsFor bit-exactly; a
// single-op chain has zero pair thresholds (there is no pair).
func (c *Chain) Thresholds() Thresholds {
	var t Thresholds
	var maxRows int64
	for i := range c.Ops {
		if v := c.singleTight(i); v > t.SingleTight {
			t.SingleTight = v
		}
		if op := c.Ops[i]; op.Rows > maxRows {
			maxRows = op.Rows
		}
	}
	for i := 0; i+1 < len(c.Ops); i++ {
		if v := c.pairUseful(i); v > t.PairUseful {
			t.PairUseful = v
		}
		if v := c.pairTight(i); v > t.PairFusion {
			t.PairFusion = v
		}
	}
	t.FullReuse = c.Output().Elements
	t.FullReuseSufficient = satAdd(t.FullReuse, satMul(2, maxRows))
	return t
}

// ConfigIO returns the memory-independent I/O floor of a fusion
// configuration: the sum over fused groups of (group input + group
// output), the Section 5.3 bound generalized to any chain.
func (c *Chain) ConfigIO(cfg Config) (int64, error) {
	if err := c.CheckConfig(cfg); err != nil {
		return 0, err
	}
	bounds := make([]int64, len(c.Boundaries))
	for i, t := range c.Boundaries {
		bounds[i] = t.Elements
	}
	return FloorIO(bounds, cfg)
}

// FloorIO returns the fused-group floor — the sum over groups of (group
// input + group output) — for a configuration over raw boundary sizes
// (len(bounds) must be the op count plus one). Boundary sizes are all
// the floor needs, so callers with sizes but no shapes (lb.ConfigIO over
// sym.Sizes) can use the engine without a full chain description.
func FloorIO(bounds []int64, cfg Config) (int64, error) {
	bad := func(reason string, args ...any) error {
		return &ValidationError{Field: "config", Reason: fmt.Sprintf(reason, args...)}
	}
	if len(cfg.Groups) == 0 {
		return 0, bad("configuration has no groups")
	}
	want := 1
	for _, g := range cfg.Groups {
		if len(g) == 0 {
			return 0, bad("configuration has an empty group")
		}
		for _, op := range g {
			if op != want {
				return 0, bad("groups must partition the ops contiguously; got op %d where %d was expected", op, want)
			}
			want++
		}
	}
	if len(bounds) != want {
		return 0, bad("configuration covers %d ops but %d boundary sizes were given", want-1, len(bounds))
	}
	var total int64
	for _, g := range cfg.Groups {
		total = satAdd(total, satAdd(bounds[g[0]-1], bounds[g[len(g)-1]]))
	}
	return total, nil
}

// ConfigTight reports whether ConfigIO is a tight bound for the
// configuration: every group has at most two contractions (Listings 5
// and 6), or the group is the entire chain (tight at S >= |out| by the
// Listing 7 construction).
func (c *Chain) ConfigTight(cfg Config) bool {
	for _, g := range cfg.Groups {
		if len(g) > 2 && len(g) != len(c.Ops) {
			return false
		}
	}
	return true
}

// ConfigBoundAt returns the I/O lower bound of fusion configuration cfg
// at fast-memory capacity S, summed over fused groups with the same
// regime-aware group rules as lb.ConfigBoundAt (which delegates here).
// It returns a *ValidationError for a bad configuration and a
// *CapacityError for S <= 0 — the serve-reachable replacement for lb's
// checkS panic.
func (c *Chain) ConfigBoundAt(cfg Config, S int64) (float64, error) {
	if err := c.CheckConfig(cfg); err != nil {
		return 0, err
	}
	if err := CheckCapacity(S); err != nil {
		return 0, err
	}
	return c.boundAt(cfg, S), nil
}

// CheckCapacity validates a fast-memory capacity, returning a typed
// *CapacityError for non-positive values.
func CheckCapacity(S int64) error {
	if S <= 0 {
		return &CapacityError{S: S, Reason: "fast-memory capacity must be positive"}
	}
	return nil
}

// boundAt evaluates the configuration bound after validation.
func (c *Chain) boundAt(cfg Config, S int64) float64 {
	var total float64
	for _, g := range cfg.Groups {
		total += c.groupBoundAt(g, S)
	}
	return total
}

// groupBoundAt returns the capacity-S lower bound of one fused group,
// mirroring lb.groupBoundAt's regime cases:
//
//   - single op: |in|+|out| above its tight threshold, else
//     max(Dongarra, |in|+|out|);
//   - pair: the floor above the pair threshold, else the Fusion Lemma
//     over the two Dongarra bounds;
//   - triple: max(floor, chained Fusion Lemma) — no tight construction;
//   - larger groups: the floor once S holds the group output (the
//     Theorem 6.2 condition applied to the group), else the best of the
//     floor, a greedy pairwise decomposition, and the chained lemma.
func (c *Chain) groupBoundAt(g []int, S int64) float64 {
	first, last := g[0], g[len(g)-1]
	floor := float64(c.in(first-1) + c.out(last-1))
	switch len(g) {
	case 1:
		return c.singleBoundAt(first, S)
	case 2:
		return c.pairBoundAt(first, S)
	case 3:
		return math.Max(floor, c.lemmaChainAt(g, S))
	default:
		if S >= c.out(last-1) {
			return floor // full reuse within the group is attainable
		}
		pair := c.greedyPairsAt(g, S)
		return math.Max(math.Max(floor, pair), c.lemmaChainAt(g, S))
	}
}

// singleBoundAt is the capacity-S bound of op (1-based) alone.
func (c *Chain) singleBoundAt(op int, S int64) float64 {
	i := op - 1
	in, out := c.in(i), c.out(i)
	if S >= c.singleTight(i) {
		return float64(in + out)
	}
	o := c.Ops[i]
	return MatmulOpLB(o.Rows, o.Red, o.Prod, S, in, out)
}

// pairBoundAt is the capacity-S bound of the fused pair (op, op+1),
// 1-based: the floor above the pair threshold, else the Fusion Lemma
// over the two raw Dongarra bounds.
func (c *Chain) pairBoundAt(op int, S int64) float64 {
	i := op - 1
	floor := float64(c.in(i) + c.out(i+1))
	if S >= c.pairTight(i) {
		return floor
	}
	o1, o2 := c.Ops[i], c.Ops[i+1]
	d1 := Dongarra(o1.Rows, o1.Red, o1.Prod, S)
	d2 := Dongarra(o2.Rows, o2.Red, o2.Prod, S)
	lemma := FusionLemma(d1, d2, c.out(i))
	return math.Max(floor, lemma)
}

// greedyPairsAt decomposes a fused group into consecutive pairs (plus a
// trailing single for odd lengths) and sums their bounds — the best
// partial decomposition a schedule must at least pay when full reuse is
// impossible (Theorem 5.2's op12/34 term for the four-index chain).
func (c *Chain) greedyPairsAt(g []int, S int64) float64 {
	var total float64
	i := 0
	for ; i+1 < len(g); i += 2 {
		total += c.pairBoundAt(g[i], S)
	}
	if i < len(g) {
		total += c.singleBoundAt(g[i], S)
	}
	return total
}

// lemmaChainAt chains the Fusion Lemma over a fused group: the sum of
// per-contraction bounds minus two crossings of every internal
// intermediate.
func (c *Chain) lemmaChainAt(g []int, S int64) float64 {
	var lemma float64
	for _, op := range g {
		lemma += c.singleBoundAt(op, S)
	}
	for i := 0; i < len(g)-1; i++ {
		lemma -= 2 * float64(c.out(g[i]-1))
	}
	return lemma
}

// ConfigFlatThreshold returns the capacity at which ConfigBoundAt
// flattens onto ConfigIO: the largest per-group tightness threshold.
func (c *Chain) ConfigFlatThreshold(cfg Config) (int64, error) {
	if err := c.CheckConfig(cfg); err != nil {
		return 0, err
	}
	var t int64
	for _, g := range cfg.Groups {
		var gt int64
		switch len(g) {
		case 1:
			gt = c.singleTight(g[0] - 1)
		case 2:
			gt = c.pairTight(g[0] - 1)
		case 3:
			for _, op := range g {
				if v := c.singleTight(op - 1); v > gt {
					gt = v
				}
			}
		default:
			gt = c.out(g[len(g)-1] - 1)
		}
		if gt > t {
			t = gt
		}
	}
	return t, nil
}

// ConfigMinMemory returns the minimum aggregate-memory footprint (in
// elements) at which a schedule family realising cfg can run, from the
// Section 2/7 memory models generalized to the chain's declared slab
// sizes:
//
//   - all-singleton and all-pair configurations run each group at full
//     scale, so the peak is the largest coexisting (group in + group out);
//   - a fully fused chain streams a width-1 slab of every op input while
//     keeping the output resident;
//   - a fused prefix followed by singletons streams the prefix slabs and
//     then pays the largest remaining (in + out) pair;
//   - configurations without an implemented schedule shape are bounded
//     below by the fully fused minimum (the cheapest that fuses at least
//     as much), matching lb.ConfigMinMemory's fallback.
func (c *Chain) ConfigMinMemory(cfg Config) (int64, error) {
	if err := c.CheckConfig(cfg); err != nil {
		return 0, err
	}
	uniformLen := func(n int) bool {
		for _, g := range cfg.Groups {
			if len(g) != n {
				return false
			}
		}
		return true
	}
	switch {
	case uniformLen(1) || uniformLen(2):
		var peak int64
		for _, g := range cfg.Groups {
			v := satAdd(c.in(g[0]-1), c.out(g[len(g)-1]-1))
			if v > peak {
				peak = v
			}
		}
		return peak, nil
	case len(cfg.Groups) > 1 && len(cfg.Groups[0]) >= 3 && c.suffixAllSingles(cfg):
		var mem int64
		for _, op := range cfg.Groups[0] {
			mem = satAdd(mem, c.Boundaries[op-1].SlabElements)
		}
		var peak int64
		for _, g := range cfg.Groups[1:] {
			v := satAdd(c.in(g[0]-1), c.out(g[0]-1))
			if v > peak {
				peak = v
			}
		}
		return satAdd(mem, peak), nil
	default:
		return c.fullyFusedMinMemory(), nil
	}
}

// suffixAllSingles reports whether every group after the first is a
// singleton.
func (c *Chain) suffixAllSingles(cfg Config) bool {
	for _, g := range cfg.Groups[1:] {
		if len(g) != 1 {
			return false
		}
	}
	return true
}

// fullyFusedMinMemory is the footprint of streaming a width-1 slab of
// every op input with the final output resident — the Section 7 Eq. 8
// model at Tl = 1, generalized via the declared slab sizes.
func (c *Chain) fullyFusedMinMemory() int64 {
	var mem int64
	for i := range c.Ops {
		mem = satAdd(mem, c.Boundaries[i].SlabElements)
	}
	return satAdd(mem, c.Output().Elements)
}

// CapacityGrid builds the deterministic capacity sweep for the chain: a
// geometric grid with perDecade points per decade (<= 0 selects 8) from
// half the single-contraction threshold up to twice the unfused
// footprint, with every positive closed-form threshold inserted exactly
// (the same construction as lb.CapacityGrid, which delegates here).
func (c *Chain) CapacityGrid(perDecade int) []int64 {
	if perDecade <= 0 {
		perDecade = 8
	}
	th := c.Thresholds()
	lo := th.SingleTight / 2
	if lo < 3 {
		lo = 3
	}
	var unfusedPeak int64
	for i := range c.Ops {
		if v := satAdd(c.in(i), c.out(i)); v > unfusedPeak {
			unfusedPeak = v
		}
	}
	hi := satMul(2, unfusedPeak)
	ratio := math.Pow(10, 1/float64(perDecade))
	var grid []int64
	for _, t := range []int64{th.SingleTight, th.PairUseful, th.PairFusion, th.FullReuse, th.FullReuseSufficient} {
		if t > 0 {
			grid = append(grid, t)
		}
	}
	for x := float64(lo); x <= float64(hi); x *= ratio {
		grid = append(grid, int64(math.Round(x)))
	}
	grid = append(grid, hi)
	return dedupeSorted(grid)
}

// dedupeSorted sorts capacities ascending and removes duplicates.
func dedupeSorted(grid []int64) []int64 {
	sort.Slice(grid, func(i, j int) bool { return grid[i] < grid[j] })
	out := grid[:0]
	var prev int64 = -1
	for _, v := range grid {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// CurvePoint is one sample of a configuration's frontier curve.
type CurvePoint struct {
	// S is the fast-memory capacity in elements.
	S int64 `json:"s"`
	// BoundElements is the I/O lower bound at S.
	BoundElements float64 `json:"boundElements"`
}

// Curve is one fusion configuration's capacity-vs-bound frontier.
type Curve struct {
	// Config is the fusion configuration in op-notation ("op12/34").
	Config string `json:"config"`
	// FloorElements is the memory-independent floor ConfigIO.
	FloorElements int64 `json:"floorElements"`
	// FlatAtS is the smallest grid capacity at which the bound equals
	// the floor (the detected knee).
	FlatAtS int64 `json:"flatAtS"`
	// MinMemoryElements is the feasibility edge from ConfigMinMemory.
	MinMemoryElements int64 `json:"minMemoryElements"`
	// Points samples the bound over the capacity grid, ascending in S.
	Points []CurvePoint `json:"points"`
}

// ComputeCurve sweeps configuration cfg over the capacity grid (nil or
// empty selects the chain's default grid) and returns its frontier
// curve, including the detected flattening knee.
func (c *Chain) ComputeCurve(cfg Config, grid []int64) (Curve, error) {
	if err := c.CheckConfig(cfg); err != nil {
		return Curve{}, err
	}
	if len(grid) == 0 {
		grid = c.CapacityGrid(0)
	}
	floorInt, err := c.ConfigIO(cfg)
	if err != nil {
		return Curve{}, err
	}
	minMem, err := c.ConfigMinMemory(cfg)
	if err != nil {
		return Curve{}, err
	}
	cv := Curve{
		Config:            cfg.String(),
		FloorElements:     floorInt,
		MinMemoryElements: minMem,
		Points:            make([]CurvePoint, 0, len(grid)),
	}
	floor := float64(cv.FloorElements)
	for _, S := range grid {
		if err := CheckCapacity(S); err != nil {
			return Curve{}, err
		}
		b := c.boundAt(cfg, S)
		cv.Points = append(cv.Points, CurvePoint{S: S, BoundElements: b})
		if cv.FlatAtS == 0 && b <= floor {
			cv.FlatAtS = S
		}
	}
	return cv, nil
}

// RankedConfig pairs a configuration with its derived floor, tightness,
// and feasibility edge.
type RankedConfig struct {
	// Config is the fusion configuration.
	Config Config `json:"-"`
	// Name is the configuration in op-notation.
	Name string `json:"config"`
	// IO is the memory-independent floor ConfigIO.
	IO int64 `json:"ioElements"`
	// Tight reports whether the floor is known attainable (ConfigTight).
	Tight bool `json:"tight"`
	// MinMemory is the feasibility edge ConfigMinMemory.
	MinMemory int64 `json:"minMemoryElements"`
}

// RankConfigs enumerates every fusion configuration of the chain and
// orders them by I/O floor ascending, ties toward fewer groups (more
// fusion) — the same total order as lb.RankConfigs.
func (c *Chain) RankConfigs() ([]RankedConfig, error) {
	cfgs := EnumerateConfigs(len(c.Ops))
	out := make([]RankedConfig, len(cfgs))
	for i, cfg := range cfgs {
		io, err := c.ConfigIO(cfg)
		if err != nil {
			return nil, err
		}
		mm, err := c.ConfigMinMemory(cfg)
		if err != nil {
			return nil, err
		}
		out[i] = RankedConfig{Config: cfg, Name: cfg.String(), IO: io, Tight: c.ConfigTight(cfg), MinMemory: mm}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].IO != out[j].IO {
			return out[i].IO < out[j].IO
		}
		return len(out[i].Config.Groups) < len(out[j].Config.Groups)
	})
	return out, nil
}
