package chain

import "math"

// The published matmul I/O lower bounds, as pure functions of the
// contraction shape. These are the same expressions package lb has
// always used (lb now delegates here); they perform no validation — the
// engine entry points validate S before evaluating them, and lb's
// wrappers keep their historical panic-on-bad-S contract for internal
// programmer errors.

// Dongarra returns the Dongarra et al. constant-factor I/O lower bound
// for an (ni x nj) by (nj x nk) matrix product with fast memory S:
// 1.73 * ni*nj*nk / sqrt(S).
func Dongarra(ni, nj, nk, s int64) float64 {
	return 1.73 * float64(ni) * float64(nj) * float64(nk) / math.Sqrt(float64(s))
}

// Irony returns the Irony/Toledo/Tiskin constant-factor bound:
// ni*nj*nk / (2*sqrt(2*S)).
func Irony(ni, nj, nk, s int64) float64 {
	return float64(ni) * float64(nj) * float64(nk) / (2 * math.Sqrt(2*float64(s)))
}

// HongKung returns the Hong & Kung asymptotic bound for an n x n square
// product with unit constant: n^3 / sqrt(S).
func HongKung(n, s int64) float64 {
	return float64(n) * float64(n) * float64(n) / math.Sqrt(float64(s))
}

// FusionLemma is Lemma 4.2: given I/O lower bounds for producer C1 and
// consumer C2 and the size of the intermediate flowing between them, any
// fused schedule has I/O at least lb1 + lb2 - 2*|mid|.
func FusionLemma(lb1, lb2 float64, mid int64) float64 {
	return lb1 + lb2 - 2*float64(mid)
}

// MatmulOpLB returns the I/O lower bound of one contraction of shape
// (rows x red) by (red x prod) with input and output tensor sizes in and
// out: max(Dongarra(rows, red, prod, S), in + out). This is the
// generalized form of the paper's Section 5.1 per-contraction bound.
func MatmulOpLB(rows, red, prod, s, in, out int64) float64 {
	d := Dongarra(rows, red, prod, s)
	io := float64(in + out)
	if d > io {
		return d
	}
	return io
}
