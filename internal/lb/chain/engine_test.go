package chain_test

import (
	"math"
	"testing"

	"fourindex/internal/lb"
	"fourindex/internal/lb/chain"
	"fourindex/internal/sym"
)

// The golden contract of the refactor: every hand-derived Section 5/6
// quantity must be reproduced bit-exactly by the engine from the
// declarative FourIndex description. The closed forms are written out
// literally here (not via lb, which now delegates) so the engine is
// pinned against the paper, with the independently implemented lb memory
// models as the second anchor.

// benchSizes are the (n, s) pairs of the benchmark systems plus small
// and asymmetric extents.
var benchSizes = []struct{ n, s int }{
	{368, 8}, {580, 8}, {698, 8}, {256, 1}, {100, 4}, {12, 1}, {5, 2},
}

func fourIndex(t *testing.T, n, s int) *chain.Chain {
	t.Helper()
	ch, err := chain.FourIndex(n, s)
	if err != nil {
		t.Fatalf("FourIndex(%d,%d): %v", n, s, err)
	}
	return ch
}

func TestFourIndexBoundariesMatchSymSizes(t *testing.T) {
	for _, bs := range benchSizes {
		ch := fourIndex(t, bs.n, bs.s)
		sz := sym.ExactSizes(bs.n, bs.s)
		want := []int64{sz.A, sz.O1, sz.O2, sz.O3, sz.C}
		for i, w := range want {
			if got := ch.Boundaries[i].Elements; got != w {
				t.Errorf("n=%d s=%d boundary %d = %d, want %d", bs.n, bs.s, i, got, w)
			}
		}
	}
}

func TestThresholdsMatchClosedForms(t *testing.T) {
	for _, bs := range benchSizes {
		n64 := int64(bs.n)
		c := sym.ExactSizes(bs.n, bs.s).C
		got := fourIndex(t, bs.n, bs.s).Thresholds()
		want := chain.Thresholds{
			SingleTight:         n64*n64 + n64 + 1,
			PairUseful:          3 * n64 * n64,
			PairFusion:          3*n64*n64 + n64 + 1,
			FullReuse:           c,
			FullReuseSufficient: c + 2*n64*n64*n64,
		}
		if got != want {
			t.Errorf("n=%d s=%d thresholds = %+v, want %+v", bs.n, bs.s, got, want)
		}
	}
}

func TestOpBoundMatchesContractionLBBitExactly(t *testing.T) {
	for _, bs := range benchSizes {
		ch := fourIndex(t, bs.n, bs.s)
		n64 := int64(bs.n)
		sz := sym.ExactSizes(bs.n, bs.s)
		bounds := []int64{sz.A, sz.O1, sz.O2, sz.O3, sz.C}
		for _, S := range []int64{7, n64 * n64, n64*n64 + n64 + 1, 4 * n64 * n64} {
			for i := 0; i < 4; i++ {
				in, out := bounds[i], bounds[i+1]
				// The paper's closed form, written out literally.
				d := 1.73 * float64(n64*n64*n64) * float64(n64) * float64(n64) / math.Sqrt(float64(S))
				want := float64(in + out)
				if d > want {
					want = d
				}
				if got := chain.MatmulOpLB(ch.Ops[i].Rows, ch.Ops[i].Red, ch.Ops[i].Prod, S, in, out); got != want {
					t.Fatalf("n=%d op%d S=%d: engine %v != closed form %v", bs.n, i+1, S, got, want)
				}
				if got := lb.ContractionLB(n64, S, in, out); got != want {
					t.Fatalf("n=%d op%d S=%d: lb.ContractionLB %v != closed form %v", bs.n, i+1, S, got, want)
				}
			}
		}
	}
}

func TestEnumerationReproducesAllFusionConfigs(t *testing.T) {
	want := lb.AllFusionConfigs()
	got := chain.EnumerateConfigs(4)
	if len(got) != len(want) {
		t.Fatalf("EnumerateConfigs(4) yields %d configs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Errorf("config %d = %s, want %s (order must match)", i, got[i], want[i])
		}
		if len(got[i].Groups) != len(want[i].Groups) {
			t.Errorf("config %d group count mismatch", i)
			continue
		}
		for gi, g := range got[i].Groups {
			wg := want[i].Groups[gi]
			if len(g) != len(wg) {
				t.Errorf("config %d group %d mismatch", i, gi)
				continue
			}
			for oi := range g {
				if g[oi] != wg[oi] {
					t.Errorf("config %d group %d op %d = %d, want %d", i, gi, oi, g[oi], wg[oi])
				}
			}
		}
	}
}

func TestConfigIOMatchesClosedFormSums(t *testing.T) {
	for _, bs := range benchSizes {
		ch := fourIndex(t, bs.n, bs.s)
		sz := sym.ExactSizes(bs.n, bs.s)
		bounds := []int64{sz.A, sz.O1, sz.O2, sz.O3, sz.C}
		for _, cfg := range chain.EnumerateConfigs(4) {
			var want int64
			for _, g := range cfg.Groups {
				want += bounds[g[0]-1] + bounds[g[len(g)-1]]
			}
			got, err := ch.ConfigIO(cfg)
			if err != nil {
				t.Fatalf("ConfigIO(%s): %v", cfg, err)
			}
			if got != want {
				t.Errorf("n=%d s=%d ConfigIO(%s) = %d, want %d", bs.n, bs.s, cfg, got, want)
			}
		}
	}
}

// TestConfigMinMemoryMatchesMemoryModels pins the engine's slab-derived
// feasibility floors against the independently implemented Section 2/7
// memory models in lb.
func TestConfigMinMemoryMatchesMemoryModels(t *testing.T) {
	for _, bs := range benchSizes {
		ch := fourIndex(t, bs.n, bs.s)
		for _, cfg := range chain.EnumerateConfigs(4) {
			var want int64
			switch cfg.String() {
			case "op1/2/3/4":
				want = lb.MemoryUnfused(bs.n, bs.s)
			case "op12/34":
				want = lb.MemoryFused12_34(bs.n, bs.s)
			case "op123/4":
				want = lb.MemoryFused123(bs.n, bs.s, 1)
			default: // op1234 and every unimplemented shape
				want = lb.MemoryFused1234Inner(bs.n, bs.s, 1)
			}
			got, err := ch.ConfigMinMemory(cfg)
			if err != nil {
				t.Fatalf("ConfigMinMemory(%s): %v", cfg, err)
			}
			if got != want {
				t.Errorf("n=%d s=%d ConfigMinMemory(%s) = %d, want %d", bs.n, bs.s, cfg, got, want)
			}
		}
	}
}

// TestCapacityGridMatchesClosedFormConstruction replays the historical
// closed-form grid construction and requires the engine's grid to be
// identical.
func TestCapacityGridMatchesClosedFormConstruction(t *testing.T) {
	for _, bs := range benchSizes {
		n64 := int64(bs.n)
		c := sym.ExactSizes(bs.n, bs.s).C
		lo := (n64*n64 + n64 + 1) / 2
		if lo < 3 {
			lo = 3
		}
		hi := 2 * lb.MemoryUnfused(bs.n, bs.s)
		ratio := math.Pow(10, 1/float64(8))
		want := []int64{n64*n64 + n64 + 1, 3 * n64 * n64, 3*n64*n64 + n64 + 1, c, c + 2*n64*n64*n64}
		for x := float64(lo); x <= float64(hi); x *= ratio {
			want = append(want, int64(math.Round(x)))
		}
		want = append(want, hi)
		// Sort + dedupe as the historical code did.
		for i := 0; i < len(want); i++ {
			for j := i + 1; j < len(want); j++ {
				if want[j] < want[i] {
					want[i], want[j] = want[j], want[i]
				}
			}
		}
		dedup := want[:0]
		var prev int64 = -1
		for _, v := range want {
			if v != prev {
				dedup = append(dedup, v)
				prev = v
			}
		}
		want = dedup
		got := fourIndex(t, bs.n, bs.s).CapacityGrid(0)
		if len(got) != len(want) {
			t.Fatalf("n=%d s=%d grid has %d points, want %d", bs.n, bs.s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d s=%d grid[%d] = %d, want %d", bs.n, bs.s, i, got[i], want[i])
			}
		}
	}
}

// TestConfigBoundMonotoneInS is the frontier property: more fast memory
// never raises a lower bound, on every chain the engine ships.
func TestConfigBoundMonotoneInS(t *testing.T) {
	chains := []*chain.Chain{fourIndex(t, 48, 2)}
	if mp2, err := chain.MP2(8, 24); err != nil {
		t.Fatalf("MP2: %v", err)
	} else {
		chains = append(chains, mp2)
	}
	if rect, err := chain.Rect(64, 6); err != nil {
		t.Fatalf("Rect: %v", err)
	} else {
		chains = append(chains, rect)
	}
	for _, ch := range chains {
		grid := ch.CapacityGrid(16)
		for _, cfg := range chain.EnumerateConfigs(ch.NumOps()) {
			prev := math.Inf(1)
			for _, S := range grid {
				b, err := ch.ConfigBoundAt(cfg, S)
				if err != nil {
					t.Fatalf("%s %s S=%d: %v", ch.Name, cfg, S, err)
				}
				if b > prev*(1+1e-12) {
					t.Fatalf("%s %s: bound rises from %v to %v at S=%d", ch.Name, cfg, prev, b, S)
				}
				prev = b
			}
		}
	}
}

// TestFourIndexCurveMatchesLB pins full curve delegation: lb.ComputeCurve
// and the engine agree point-for-point (bit-exact floats).
func TestFourIndexCurveMatchesLB(t *testing.T) {
	const n, s = 368, 8
	ch := fourIndex(t, n, s)
	grid := lb.CapacityGrid(n, s, 0)
	for _, cfg := range chain.EnumerateConfigs(4) {
		want := lb.ComputeCurve(lb.FusionConfig{Groups: cfg.Groups}, n, s, grid)
		got, err := ch.ComputeCurve(cfg, grid)
		if err != nil {
			t.Fatalf("ComputeCurve(%s): %v", cfg, err)
		}
		if got.Config != want.Config || got.FloorElements != want.FloorElements ||
			got.FlatAtS != want.FlatAtS || got.MinMemoryElements != want.MinMemoryElements {
			t.Fatalf("curve header mismatch for %s: %+v vs %+v", cfg, got, want)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("curve %s has %d points, want %d", cfg, len(got.Points), len(want.Points))
		}
		for i := range got.Points {
			if got.Points[i].S != want.Points[i].S || got.Points[i].BoundElements != want.Points[i].BoundElements {
				t.Fatalf("curve %s point %d: %+v vs %+v", cfg, i, got.Points[i], want.Points[i])
			}
		}
	}
}

// TestRankConfigsTheoremOrder checks Theorem 5.2's total order survives
// the generalization on the four-index chain and that the two-op chains
// rank full fusion first.
func TestRankConfigsTheoremOrder(t *testing.T) {
	ch := fourIndex(t, 368, 8)
	ranked, err := ch.RankConfigs()
	if err != nil {
		t.Fatalf("RankConfigs: %v", err)
	}
	if len(ranked) != 8 {
		t.Fatalf("got %d ranked configs, want 8", len(ranked))
	}
	if ranked[0].Name != "op1234" {
		t.Errorf("best config = %s, want op1234", ranked[0].Name)
	}
	wantLB := lb.RankConfigs(sym.ExactSizes(368, 8))
	for i := range ranked {
		if ranked[i].Name != wantLB[i].Config.String() || ranked[i].IO != wantLB[i].IO || ranked[i].Tight != wantLB[i].Tight {
			t.Errorf("rank %d: engine (%s, %d, %v) vs lb (%s, %d, %v)", i,
				ranked[i].Name, ranked[i].IO, ranked[i].Tight,
				wantLB[i].Config, wantLB[i].IO, wantLB[i].Tight)
		}
	}
}

// TestMP2EndToEnd drives a non-four-index chain through bounds,
// rankings, and curves.
func TestMP2EndToEnd(t *testing.T) {
	ch, err := chain.MP2(16, 48)
	if err != nil {
		t.Fatalf("MP2: %v", err)
	}
	nb := int64(16 + 48)
	ao := nb * nb * nb * nb
	half := 16 * nb * nb * nb
	mo := 16 * 48 * nb * nb
	ranked, err := ch.RankConfigs()
	if err != nil {
		t.Fatalf("RankConfigs: %v", err)
	}
	if len(ranked) != 2 {
		t.Fatalf("got %d configs for a 2-op chain, want 2", len(ranked))
	}
	if ranked[0].Name != "op12" || ranked[0].IO != ao+mo {
		t.Errorf("best = (%s, %d), want (op12, %d)", ranked[0].Name, ranked[0].IO, ao+mo)
	}
	if ranked[1].Name != "op1/2" || ranked[1].IO != (ao+half)+(half+mo) {
		t.Errorf("unfused = (%s, %d), want (op1/2, %d)", ranked[1].Name, ranked[1].IO, (ao+half)+(half+mo))
	}
	cv, err := ch.ComputeCurve(chain.FullyFused(2), nil)
	if err != nil {
		t.Fatalf("ComputeCurve: %v", err)
	}
	if cv.FlatAtS == 0 {
		t.Errorf("fully fused MP2 curve never flattens (FlatAtS = 0)")
	}
	if cv.FloorElements != ao+mo {
		t.Errorf("fused floor = %d, want %d", cv.FloorElements, ao+mo)
	}
	flat, err := ch.ConfigFlatThreshold(chain.FullyFused(2))
	if err != nil {
		t.Fatalf("ConfigFlatThreshold: %v", err)
	}
	// The closed-form threshold guarantees flatness; the detected knee
	// may be earlier when the lemma term never exceeds the floor on the
	// grid, but never later.
	if cv.FlatAtS > flat {
		t.Errorf("detected knee %d is after the closed-form flat threshold %d", cv.FlatAtS, flat)
	}
}

// TestRectEndToEnd checks the rectangular chain: fusion saves nearly the
// whole N x N intermediate (the Section 4 example the chain encodes).
func TestRectEndToEnd(t *testing.T) {
	ch, err := chain.Rect(96, 4)
	if err != nil {
		t.Fatalf("Rect: %v", err)
	}
	nk, n2 := int64(96*4), int64(96*96)
	fusedIO, err := ch.ConfigIO(chain.FullyFused(2))
	if err != nil {
		t.Fatalf("ConfigIO: %v", err)
	}
	unfusedIO, err := ch.ConfigIO(chain.Unfused(2))
	if err != nil {
		t.Fatalf("ConfigIO: %v", err)
	}
	if fusedIO != 2*nk {
		t.Errorf("fused floor = %d, want %d", fusedIO, 2*nk)
	}
	if unfusedIO-fusedIO != 2*n2 {
		t.Errorf("fusion saving = %d, want 2|C| = %d", unfusedIO-fusedIO, 2*n2)
	}
	cv, err := ch.ComputeCurve(chain.FullyFused(2), nil)
	if err != nil {
		t.Fatalf("ComputeCurve: %v", err)
	}
	if cv.FlatAtS == 0 || cv.MinMemoryElements <= 0 {
		t.Errorf("rect curve missing knee or feasibility edge: %+v", cv)
	}
}
