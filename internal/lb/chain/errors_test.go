package chain_test

import (
	"errors"
	"math"
	"testing"

	"fourindex/internal/lb/chain"
)

func TestMulInt64Boundary(t *testing.T) {
	cases := []struct {
		a, b     int64
		want     int64
		overflow bool
	}{
		{0, math.MaxInt64, 0, false},
		{1, math.MaxInt64, math.MaxInt64, false},
		{math.MaxInt64 / 2, 2, math.MaxInt64 - 1, false},
		{math.MaxInt64/2 + 1, 2, 0, true},
		{math.MaxInt64, math.MaxInt64, 0, true},
		{-1, math.MinInt64, 0, true},
		{math.MinInt64, -1, 0, true},
		{-3, 5, -15, false},
		{3037000499, 3037000499, 3037000499 * 3037000499, false}, // floor(sqrt(MaxInt64))^2
		{3037000500, 3037000500, 0, true},
	}
	for _, tc := range cases {
		got, err := chain.MulInt64(tc.a, tc.b)
		if tc.overflow {
			var oe *chain.OverflowError
			if !errors.As(err, &oe) {
				t.Errorf("MulInt64(%d,%d): want *OverflowError, got %v", tc.a, tc.b, err)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("MulInt64(%d,%d) = (%d,%v), want (%d,nil)", tc.a, tc.b, got, err, tc.want)
		}
	}
}

func TestAddInt64Boundary(t *testing.T) {
	if _, err := chain.AddInt64(math.MaxInt64, 1); err == nil {
		t.Error("AddInt64(MaxInt64, 1): want overflow")
	}
	if _, err := chain.AddInt64(math.MinInt64, -1); err == nil {
		t.Error("AddInt64(MinInt64, -1): want overflow")
	}
	if v, err := chain.AddInt64(math.MaxInt64-1, 1); err != nil || v != math.MaxInt64 {
		t.Errorf("AddInt64(MaxInt64-1, 1) = (%d,%v)", v, err)
	}
}

// TestFourIndexOverflowBoundary pins the largest representable four-index
// extent: the op volume n^5 must fit int64, which holds up to n = 6208
// (6208^5 ~ 9.221e18 < 2^63-1) and overflows at 6209.
func TestFourIndexOverflowBoundary(t *testing.T) {
	if _, err := chain.FourIndex(6208, 1); err != nil {
		t.Fatalf("FourIndex(6208): %v", err)
	}
	_, err := chain.FourIndex(6209, 1)
	if err == nil {
		t.Fatal("FourIndex(6209): want overflow error")
	}
	var oe *chain.OverflowError
	var ve *chain.ValidationError
	if !errors.As(err, &oe) && !errors.As(err, &ve) {
		t.Fatalf("FourIndex(6209): want typed overflow/validation error, got %T %v", err, err)
	}
}

func TestBuilderValidation(t *testing.T) {
	var ve *chain.ValidationError
	if _, err := chain.FourIndex(0, 1); !errors.As(err, &ve) {
		t.Errorf("FourIndex(0): want *ValidationError, got %v", err)
	}
	if _, err := chain.MP2(0, 4); !errors.As(err, &ve) {
		t.Errorf("MP2(0,4): want *ValidationError, got %v", err)
	}
	if _, err := chain.Rect(3, 5); !errors.As(err, &ve) {
		t.Errorf("Rect(3,5): want *ValidationError, got %v", err)
	}
	if _, err := chain.ByName("ccsd", 4, 4); !errors.As(err, &ve) {
		t.Errorf(`ByName("ccsd"): want *ValidationError, got %v`, err)
	}
	for _, good := range []struct {
		name string
		a, b int
	}{{"fourindex", 24, 2}, {"mp2", 4, 12}, {"rect", 32, 4}} {
		if _, err := chain.ByName(good.name, good.a, good.b); err != nil {
			t.Errorf("ByName(%q): %v", good.name, err)
		}
	}
}

func TestChainValidate(t *testing.T) {
	var ve *chain.ValidationError
	var nilChain *chain.Chain
	if err := nilChain.Validate(); !errors.As(err, &ve) {
		t.Errorf("nil chain: want *ValidationError, got %v", err)
	}
	cases := []struct {
		name string
		c    chain.Chain
	}{
		{"no ops", chain.Chain{Boundaries: []chain.Tensor{{Name: "A", Elements: 1}}}},
		{"boundary count", chain.Chain{
			Boundaries: []chain.Tensor{{Name: "A", Elements: 1}},
			Ops:        []chain.Contraction{{Rows: 1, Red: 1, Prod: 1, OperandElements: 1}},
		}},
		{"non-positive elements", chain.Chain{
			Boundaries: []chain.Tensor{{Name: "A", Elements: 0}, {Name: "B", Elements: 1}},
			Ops:        []chain.Contraction{{Rows: 1, Red: 1, Prod: 1, OperandElements: 1}},
		}},
		{"slab exceeds elements", chain.Chain{
			Boundaries: []chain.Tensor{{Name: "A", Elements: 4, SlabElements: 9}, {Name: "B", Elements: 1}},
			Ops:        []chain.Contraction{{Rows: 2, Red: 2, Prod: 1, OperandElements: 2}},
		}},
		{"bad shape", chain.Chain{
			Boundaries: []chain.Tensor{{Name: "A", Elements: 4}, {Name: "B", Elements: 1}},
			Ops:        []chain.Contraction{{Rows: -2, Red: 2, Prod: 1, OperandElements: 2}},
		}},
		{"volume overflow", chain.Chain{
			Boundaries: []chain.Tensor{{Name: "A", Elements: 4}, {Name: "B", Elements: 1}},
			Ops:        []chain.Contraction{{Rows: math.MaxInt64 / 2, Red: 4, Prod: 4, OperandElements: 2}},
		}},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); !errors.As(err, &ve) {
			t.Errorf("%s: want *ValidationError, got %v", tc.name, err)
		}
	}
	tooLong := chain.Chain{Name: "long"}
	for i := 0; i <= chain.MaxOps; i++ {
		tooLong.Boundaries = append(tooLong.Boundaries, chain.Tensor{Name: "T", Elements: 2})
		tooLong.Ops = append(tooLong.Ops, chain.Contraction{Rows: 1, Red: 1, Prod: 1, OperandElements: 1})
	}
	tooLong.Boundaries = append(tooLong.Boundaries, chain.Tensor{Name: "T", Elements: 2})
	if err := tooLong.Validate(); !errors.As(err, &ve) {
		t.Errorf("over MaxOps: want *ValidationError, got %v", err)
	}
}

func TestCapacityErrorsInsteadOfPanics(t *testing.T) {
	ch, err := chain.FourIndex(16, 1)
	if err != nil {
		t.Fatalf("FourIndex: %v", err)
	}
	var ce *chain.CapacityError
	for _, S := range []int64{0, -5} {
		if _, err := ch.ConfigBoundAt(chain.FullyFused(4), S); !errors.As(err, &ce) {
			t.Errorf("ConfigBoundAt(S=%d): want *CapacityError, got %v", S, err)
		}
	}
	if _, err := ch.ComputeCurve(chain.FullyFused(4), []int64{100, 0}); !errors.As(err, &ce) {
		t.Errorf("ComputeCurve with S=0 grid point: want *CapacityError, got %v", err)
	}
	var ve *chain.ValidationError
	if _, err := ch.ConfigBoundAt(chain.Config{Groups: [][]int{{1, 3}}}, 100); !errors.As(err, &ve) {
		t.Errorf("non-contiguous config: want *ValidationError, got %v", err)
	}
	if _, err := ch.ConfigIO(chain.Config{}); !errors.As(err, &ve) {
		t.Errorf("empty config: want *ValidationError, got %v", err)
	}
}
