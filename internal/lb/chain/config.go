package chain

import (
	"fmt"
	"strings"
)

// Config is a fusion configuration: a partition of an m-contraction
// chain into contiguous fused groups of 1-based op numbers, e.g.
// {{1,2},{3,4}} is op12/34. It generalizes lb.FusionConfig to chains of
// any length.
type Config struct {
	// Groups lists the fused groups in chain order; each group is a run
	// of consecutive op numbers starting at 1.
	Groups [][]int `json:"groups"`
}

// String renders the paper's notation: op12/34, op1/2/3/4, op1234, ...
// (op numbers are concatenated digit-wise, so the notation is only
// unambiguous for chains of at most 9 contractions — within the engine's
// MaxOps cap).
func (c Config) String() string {
	parts := make([]string, len(c.Groups))
	for i, g := range c.Groups {
		var b strings.Builder
		for _, op := range g {
			fmt.Fprintf(&b, "%d", op)
		}
		parts[i] = b.String()
	}
	return "op" + strings.Join(parts, "/")
}

// EnumerateConfigs enumerates every contiguous grouping of an m-op
// chain — the 2^(m-1) compositions of m — in the same order as
// lb.AllFusionConfigs: each of the m-1 group boundaries (after op 2, 3,
// ...) is cut when its bit is set, with the boundary after op i mapped
// to bit i-2.
func EnumerateConfigs(m int) []Config {
	if m < 1 {
		return nil
	}
	var out []Config
	for mask := 0; mask < 1<<(m-1); mask++ {
		var groups [][]int
		cur := []int{1}
		for op := 2; op <= m; op++ {
			if mask&(1<<(op-2)) != 0 { // boundary cut
				groups = append(groups, cur)
				cur = []int{op}
			} else {
				cur = append(cur, op)
			}
		}
		groups = append(groups, cur)
		out = append(out, Config{Groups: groups})
	}
	return out
}

// ConfigByName finds an m-op fusion configuration from its op-notation
// string, returning a *ValidationError for unknown names.
func ConfigByName(m int, name string) (Config, error) {
	for _, c := range EnumerateConfigs(m) {
		if c.String() == name {
			return c, nil
		}
	}
	return Config{}, &ValidationError{Field: "config", Reason: fmt.Sprintf("unknown fusion config %q for a %d-op chain", name, m)}
}

// Unfused returns the all-singletons configuration of an m-op chain.
func Unfused(m int) Config {
	groups := make([][]int, m)
	for i := range groups {
		groups[i] = []int{i + 1}
	}
	return Config{Groups: groups}
}

// FullyFused returns the single-group configuration of an m-op chain.
func FullyFused(m int) Config {
	g := make([]int, m)
	for i := range g {
		g[i] = i + 1
	}
	return Config{Groups: [][]int{g}}
}

// CheckConfig verifies that cfg is a contiguous partition of the chain's
// ops 1..m, returning a *ValidationError otherwise.
func (c *Chain) CheckConfig(cfg Config) error {
	bad := func(reason string, args ...any) error {
		return &ValidationError{Chain: c.Name, Field: "config", Reason: fmt.Sprintf(reason, args...)}
	}
	if len(cfg.Groups) == 0 {
		return bad("configuration has no groups")
	}
	want := 1
	for _, g := range cfg.Groups {
		if len(g) == 0 {
			return bad("configuration has an empty group")
		}
		for _, op := range g {
			if op != want {
				return bad("groups must partition ops 1..%d contiguously; got op %d where %d was expected", len(c.Ops), op, want)
			}
			want++
		}
	}
	if want != len(c.Ops)+1 {
		return bad("configuration covers %d ops, chain has %d", want-1, len(c.Ops))
	}
	return nil
}
