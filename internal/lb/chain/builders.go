package chain

import "fmt"

// Builders for the chains the repository analyses end to end. Each
// returns a validated chain or a typed error (*ValidationError for bad
// extents, *OverflowError when a tensor size exceeds int64) — never a
// panic, since extents reach these from CLI flags and fouridxd job
// payloads.
//
// FourIndex is the paper's chain; the engine's output on it reproduces
// every hand-derived Section 5/6 quantity in package lb bit-exactly
// (pinned by golden tests there and in this package).

// FourIndex describes the paper's four-index transform chain
// A→O1→O2→O3→C at extent n with spatial symmetry s >= 1 on the output:
// four (n^3 x n) x (n x n) contractions over the packed symmetric sizes
// of Table 1 (M = n(n+1)/2):
//
//	|A| = M^2, |O1| = n^2 M, |O2| = M^2, |O3| = M n^2, |C| = M^2/s
//
// with the Section 7 width-1 streaming slabs n^3/2, n^3, n^3/2, n^3/2.
func FourIndex(n, s int) (*Chain, error) {
	if n <= 0 {
		return nil, &ValidationError{Chain: "fourindex", Field: "n", Reason: fmt.Sprintf("extent must be positive, got %d", n)}
	}
	if s < 1 {
		s = 1 // mirror sym.ExactSizes: no spatial symmetry
	}
	n64 := int64(n)
	np, err := MulInt64(n64, n64+1)
	if err != nil {
		return nil, err
	}
	m := np / 2
	m2, err := MulInt64(m, m)
	if err != nil {
		return nil, err
	}
	nn, err := MulInt64(n64, n64)
	if err != nil {
		return nil, err
	}
	n3, err := MulInt64(nn, n64)
	if err != nil {
		return nil, err
	}
	nnm, err := MulInt64(nn, m)
	if err != nil {
		return nil, err
	}
	op := func(name string) Contraction {
		return Contraction{Name: name, Rows: n3, Red: n64, Prod: n64, OperandElements: nn}
	}
	c := &Chain{
		Name: "fourindex",
		Boundaries: []Tensor{
			{Name: "A", Elements: m2, SlabElements: n3 / 2},
			{Name: "O1", Elements: nnm, SlabElements: n3},
			{Name: "O2", Elements: m2, SlabElements: n3 / 2},
			{Name: "O3", Elements: nnm, SlabElements: n3 / 2},
			{Name: "C", Elements: m2 / int64(s)},
		},
		Ops: []Contraction{op("op1"), op("op2"), op("op3"), op("op4")},
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MP2 describes an MP2-style half transform: the dense AO integral
// tensor (N^4, N = occ+virt) is contracted twice, first projecting one
// index onto the occ occupied orbitals, then one onto the virt virtual
// orbitals:
//
//	AO[N^4] --C_occ[N x occ]--> Half[occ N^3] --C_virt[N x virt]--> MO[occ virt N^2]
//
// No symmetry packing is applied, so the sizes are the dense products;
// streaming slabs are one unit of the outermost AO index.
func MP2(occ, virt int) (*Chain, error) {
	if occ <= 0 || virt <= 0 {
		return nil, &ValidationError{Chain: "mp2", Field: "occ/virt", Reason: fmt.Sprintf("orbital counts must be positive, got (%d,%d)", occ, virt)}
	}
	nb, err := AddInt64(int64(occ), int64(virt))
	if err != nil {
		return nil, err
	}
	n2, err := MulInt64(nb, nb)
	if err != nil {
		return nil, err
	}
	n3, err := MulInt64(n2, nb)
	if err != nil {
		return nil, err
	}
	n4, err := MulInt64(n3, nb)
	if err != nil {
		return nil, err
	}
	half, err := MulInt64(int64(occ), n3)
	if err != nil {
		return nil, err
	}
	halfSlab, err := MulInt64(int64(occ), n2)
	if err != nil {
		return nil, err
	}
	mo, err := Mul3Int64(int64(occ), int64(virt), n2)
	if err != nil {
		return nil, err
	}
	c := &Chain{
		Name: "mp2",
		Boundaries: []Tensor{
			{Name: "AO", Elements: n4, SlabElements: n3},
			{Name: "Half", Elements: half, SlabElements: halfSlab},
			{Name: "MO", Elements: mo},
		},
		Ops: []Contraction{
			{Name: "op1", Rows: n3, Red: nb, Prod: int64(occ), OperandElements: satMul(nb, int64(occ))},
			{Name: "op2", Rows: satMul(int64(occ), n2), Red: nb, Prod: int64(virt), OperandElements: satMul(nb, int64(virt))},
		},
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Rect describes the rectangular two-matmul chain of cdag.BuildRectChain
// (Section 4's second producer-consumer example): E = (A*B)*D with
// A (N x K), B (K x N), D (N x K) and N >= K >= 1 — the regime where the
// N x N intermediate dwarfs both products' inherent I/O and fusion is
// maximally profitable. Streaming slabs are one row of A and of C.
func Rect(n, k int) (*Chain, error) {
	if n < k || k < 1 {
		return nil, &ValidationError{Chain: "rect", Field: "n/k", Reason: fmt.Sprintf("need n >= k >= 1, got (%d,%d)", n, k)}
	}
	n64, k64 := int64(n), int64(k)
	nk, err := MulInt64(n64, k64)
	if err != nil {
		return nil, err
	}
	n2, err := MulInt64(n64, n64)
	if err != nil {
		return nil, err
	}
	c := &Chain{
		Name: "rect",
		Boundaries: []Tensor{
			{Name: "A", Elements: nk, SlabElements: k64},
			{Name: "C", Elements: n2, SlabElements: n64},
			{Name: "E", Elements: nk},
		},
		Ops: []Contraction{
			{Name: "op1", Rows: n64, Red: k64, Prod: n64, OperandElements: nk},
			{Name: "op2", Rows: n64, Red: n64, Prod: k64, OperandElements: nk},
		},
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ByName builds one of the named example chains: "fourindex" (args n, s),
// "mp2" (args occ, virt), "rect" (args n, k). It is the registry behind
// the fouridx chains subcommand.
func ByName(name string, a, b int) (*Chain, error) {
	switch name {
	case "fourindex":
		return FourIndex(a, b)
	case "mp2":
		return MP2(a, b)
	case "rect":
		return Rect(a, b)
	default:
		return nil, &ValidationError{Chain: name, Field: "name", Reason: `unknown chain (want "fourindex", "mp2", or "rect")`}
	}
}
