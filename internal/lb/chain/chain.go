// Package chain is the generalized data-movement bound engine: it
// derives the paper's Section 5/6 quantities — per-contraction I/O lower
// bounds, Fusion-Lemma bounds over fused groups, fusion-configuration
// enumeration and ranking, capacity thresholds, feasibility floors and
// capacity-vs-bound frontier curves — from a declarative description of
// an arbitrary contraction chain instead of the hand-derived four-index
// closed forms (the Olivry et al. direction of ROADMAP item 3).
//
// A Chain declares the boundary tensors (packed element counts with all
// symmetry factors applied, plus per-unit-width slab sizes along the
// streamed fusion index) and the ordered contractions between them, each
// viewed as a (Rows x Red) by (Red x Prod) matrix product against a
// small operand. Everything else — thresholds, bounds, grids, curves —
// is computed by the engine, and package lb's four-index API is a thin
// delegation over FourIndex(n, s); the hand-derived closed forms survive
// only as golden tests of the engine's output.
//
// Unlike package lb's historical API, every user-reachable entry point
// here validates its inputs and returns typed errors (*ValidationError,
// *CapacityError, *OverflowError) instead of panicking: chains and
// capacities arrive from fouridxd job payloads, so malformed input must
// surface as a 422, never as a server crash.
package chain

import "fmt"

// Tensor describes one chain-boundary tensor of the chain: the input,
// the intermediates, and the final output.
type Tensor struct {
	// Name labels the tensor ("A", "O1", ...).
	Name string `json:"name"`
	// Elements is the packed element count with every permutational and
	// spatial symmetry factor applied (the |T| of Section 5).
	Elements int64 `json:"elements"`
	// SlabElements is the element count of a width-1 slab of the tensor
	// along the streamed fusion index — the per-unit working set a fused
	// schedule holds while streaming (Section 7's Tl = 1 slabs). Zero for
	// tensors a fused group never slabs (in particular the final output,
	// which full fusion keeps resident).
	SlabElements int64 `json:"slabElements,omitempty"`
}

// Contraction describes one tensor contraction of the chain: it consumes
// the tensor at its left boundary, reduces one index of length Red
// against an operand of OperandElements entries, and produces the tensor
// at its right boundary. Viewed as a matrix product it is
// (Rows x Red) by (Red x Prod) — the shape the Dongarra et al. bound and
// the tightness thresholds are derived from.
type Contraction struct {
	// Name labels the contraction ("op1", ...).
	Name string `json:"name"`
	// Rows is the product of the input tensor's non-reduced extents (the
	// matmul row count; n^3 for the four-index transform).
	Rows int64 `json:"rows"`
	// Red is the reduced index extent (the matmul inner dimension).
	Red int64 `json:"red"`
	// Prod is the produced index extent (the matmul column count).
	Prod int64 `json:"prod"`
	// OperandElements is the size of the small contracted operand (the
	// |B| = Red*Prod coefficient panel, possibly symmetry-reduced).
	OperandElements int64 `json:"operandElements"`
}

// Chain is a declarative contraction chain: len(Boundaries) tensors
// threaded by len(Ops) = len(Boundaries)-1 contractions, each consuming
// Boundaries[i] and producing Boundaries[i+1].
type Chain struct {
	// Name labels the chain ("fourindex", "mp2", ...).
	Name string `json:"name"`
	// Boundaries lists the tensors in producer order: Boundaries[0] is
	// the chain input, Boundaries[len-1] the final output.
	Boundaries []Tensor `json:"boundaries"`
	// Ops lists the contractions in execution order.
	Ops []Contraction `json:"ops"`
}

// NumOps returns the number of contractions in the chain.
func (c *Chain) NumOps() int { return len(c.Ops) }

// Input returns the chain's input tensor.
func (c *Chain) Input() Tensor { return c.Boundaries[0] }

// Output returns the chain's final output tensor.
func (c *Chain) Output() Tensor { return c.Boundaries[len(c.Boundaries)-1] }

// in returns the element count flowing into op i (0-based).
func (c *Chain) in(i int) int64 { return c.Boundaries[i].Elements }

// out returns the element count flowing out of op i (0-based).
func (c *Chain) out(i int) int64 { return c.Boundaries[i+1].Elements }

// Validate checks the chain description, returning a *ValidationError
// naming the first offending field. A nil error means every engine
// method is safe to call.
func (c *Chain) Validate() error {
	if c == nil {
		return &ValidationError{Chain: "", Field: "chain", Reason: "missing chain description"}
	}
	bad := func(field, reason string, args ...any) error {
		return &ValidationError{Chain: c.Name, Field: field, Reason: fmt.Sprintf(reason, args...)}
	}
	if len(c.Ops) == 0 {
		return bad("ops", "chain needs at least one contraction")
	}
	if len(c.Ops) > MaxOps {
		return bad("ops", "chain has %d contractions, engine cap is %d (2^(m-1) config enumeration)", len(c.Ops), MaxOps)
	}
	if len(c.Boundaries) != len(c.Ops)+1 {
		return bad("boundaries", "chain with %d ops needs %d boundary tensors, got %d",
			len(c.Ops), len(c.Ops)+1, len(c.Boundaries))
	}
	for i, t := range c.Boundaries {
		if t.Elements <= 0 {
			return bad(fmt.Sprintf("boundaries[%d].elements", i), "tensor %q needs a positive element count, got %d", t.Name, t.Elements)
		}
		if t.SlabElements < 0 {
			return bad(fmt.Sprintf("boundaries[%d].slabElements", i), "tensor %q has a negative slab size %d", t.Name, t.SlabElements)
		}
		if t.SlabElements > t.Elements {
			return bad(fmt.Sprintf("boundaries[%d].slabElements", i), "tensor %q slab %d exceeds its %d elements", t.Name, t.SlabElements, t.Elements)
		}
	}
	for i, op := range c.Ops {
		if op.Rows <= 0 || op.Red <= 0 || op.Prod <= 0 {
			return bad(fmt.Sprintf("ops[%d]", i), "contraction %q needs positive Rows/Red/Prod, got (%d,%d,%d)", op.Name, op.Rows, op.Red, op.Prod)
		}
		if op.OperandElements <= 0 {
			return bad(fmt.Sprintf("ops[%d].operandElements", i), "contraction %q needs a positive operand size, got %d", op.Name, op.OperandElements)
		}
		// The matmul volume Rows*Red*Prod feeds the Dongarra bound; it
		// must fit int64 (the typed overflow check the serve path relies
		// on to 422 absurd extents instead of wrapping silently).
		if _, err := Mul3Int64(op.Rows, op.Red, op.Prod); err != nil {
			return bad(fmt.Sprintf("ops[%d]", i), "contraction %q shape (%d,%d,%d): %v", op.Name, op.Rows, op.Red, op.Prod, err)
		}
	}
	// Every fused group's floor sums in+out; the grand total must fit.
	var total int64
	for _, t := range c.Boundaries {
		sum, err := AddInt64(total, t.Elements)
		if err != nil {
			return bad("boundaries", "total tensor size: %v", err)
		}
		total = sum
	}
	return nil
}
