package lb

import (
	"fmt"

	"fourindex/internal/sym"
)

// LevelPlan is the fusion decision at one level of the two-level memory
// abstraction of Section 3.
type LevelPlan struct {
	// Level names the slow<->fast boundary.
	Level string
	// FastBytes is the fast memory capacity at this level.
	FastBytes int64
	// FullReuse reports whether S >= |C| holds (Theorem 6.2), enabling
	// the op1234 full fusion with I/O = |A| + |C|.
	FullReuse bool
	// Config is the chosen fusion configuration.
	Config FusionConfig
	// IOBoundElements is the configuration's I/O lower bound.
	IOBoundElements int64
	// Note explains the decision in the paper's terms.
	Note string
}

// HierarchyPlan is the full Section 3 construction: the outer level
// (disk as slow memory, aggregate global memory as fast) decides whether
// the whole transform can run without disk I/O via op1234; the inner
// level (global memory as slow, process-local memory as fast) decides
// the fusion of the inner per-slab transform, yielding Listing 10's
// outer-1234 / inner-12-34 nesting.
type HierarchyPlan struct {
	N, S         int
	Outer, Inner LevelPlan
	// TileL is the largest fused-loop tile width whose slabs fit the
	// aggregate memory (0 when the outer level cannot run disk-free).
	TileL int
}

// PlanHierarchy applies the paper's analysis at both levels of the
// memory hierarchy for extent n with spatial symmetry s on a machine
// with the given aggregate and per-process memories.
func PlanHierarchy(n, s int, globalBytes, localBytes int64) HierarchyPlan {
	sz := sym.ExactSizes(n, s)
	plan := HierarchyPlan{N: n, S: s}

	// Outer level: disk <-> aggregate global memory.
	globalWords := globalBytes / 8
	outer := LevelPlan{Level: "disk<->global", FastBytes: globalBytes}
	if FullReusePossible(globalWords, sz.C) {
		outer.FullReuse = true
		outer.Config = FusionConfig{Groups: [][]int{{1, 2, 3, 4}}}
		outer.IOBoundElements = sz.A + sz.C
		outer.Note = "S >= |C| (Theorem 6.2): op1234 runs disk-free; with on-the-fly integrals the actual disk I/O is zero (Section 7.1)"
		for tl := n; tl >= 1; tl-- {
			if MemoryFused1234Inner(n, s, tl)*8 <= globalBytes {
				plan.TileL = tl
				break
			}
		}
	} else {
		outer.Config = FusionConfig{Groups: [][]int{{1, 2}, {3, 4}}}
		outer.IOBoundElements = ConfigIO(outer.Config, sz)
		outer.Note = "S < |C|: no schedule avoids disk I/O (Theorem 6.2 necessity); op12/34 minimises it (Theorem 5.2)"
	}
	plan.Outer = outer

	// Inner level: global <-> process-local memory, for the per-slab
	// inner transform whose output is still the full C.
	localWords := localBytes / 8
	inner := LevelPlan{Level: "global<->local", FastBytes: localBytes}
	if FullReusePossible(localWords, sz.C) {
		inner.FullReuse = true
		inner.Config = FusionConfig{Groups: [][]int{{1, 2, 3, 4}}}
		inner.IOBoundElements = sz.A + sz.C
		inner.Note = "local memory holds C: the inner transform needs no communication beyond |A|+|C|"
	} else {
		inner.Config = FusionConfig{Groups: [][]int{{1, 2}, {3, 4}}}
		inner.IOBoundElements = ConfigIO(inner.Config, sz)
		inner.Note = "local memory below |C| (the usual case, Section 7.2): op12/34 minimises communication volume"
	}
	plan.Inner = inner
	return plan
}

// String renders the plan compactly.
func (p HierarchyPlan) String() string {
	return fmt.Sprintf("outer %s -> %s; inner %s -> %s (Tl=%d)",
		p.Outer.Level, p.Outer.Config, p.Inner.Level, p.Inner.Config, p.TileL)
}
