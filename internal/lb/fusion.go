package lb

import (
	"fmt"
	"sort"
	"strings"

	"fourindex/internal/sym"
)

// FusionConfig is a partition of the four-contraction chain into
// contiguous fused groups, e.g. {{1,2},{3,4}} is op12/34.
type FusionConfig struct {
	Groups [][]int
}

// String renders the paper's notation: op12/34, op1/2/3/4, op1234, ...
func (c FusionConfig) String() string {
	parts := make([]string, len(c.Groups))
	for i, g := range c.Groups {
		var b strings.Builder
		for _, op := range g {
			fmt.Fprintf(&b, "%d", op)
		}
		parts[i] = b.String()
	}
	return "op" + strings.Join(parts, "/")
}

// AllFusionConfigs enumerates every contiguous grouping of the four
// contractions: the 2^3 = 8 compositions of 4.
func AllFusionConfigs() []FusionConfig {
	var out []FusionConfig
	// Each of the 3 boundaries (after op1, op2, op3) is cut or fused.
	for mask := 0; mask < 8; mask++ {
		var groups [][]int
		cur := []int{1}
		for op := 2; op <= 4; op++ {
			if mask&(1<<(op-2)) != 0 { // boundary cut
				groups = append(groups, cur)
				cur = []int{op}
			} else {
				cur = append(cur, op)
			}
		}
		groups = append(groups, cur)
		out = append(out, FusionConfig{Groups: groups})
	}
	return out
}

// ConfigByName finds a fusion configuration from its op-notation string.
func ConfigByName(name string) (FusionConfig, error) {
	for _, c := range AllFusionConfigs() {
		if c.String() == name {
			return c, nil
		}
	}
	return FusionConfig{}, fmt.Errorf("lb: unknown fusion config %q", name)
}

// tensorSize returns the size of the tensor flowing between op i and
// op i+1 (0 = A, 4 = C) from the symmetric size table.
func tensorSize(sz sym.Sizes, boundary int) int64 {
	switch boundary {
	case 0:
		return sz.A
	case 1:
		return sz.O1
	case 2:
		return sz.O2
	case 3:
		return sz.O3
	case 4:
		return sz.C
	default:
		panic(fmt.Sprintf("lb: bad tensor boundary %d", boundary))
	}
}

// ConfigIO returns the Section 5.3 I/O lower bound for a fusion
// configuration with the symmetric tensor sizes of Table 1: the sum over
// fused groups of (group input size + group output size). For groups of
// one or two contractions this bound is tight (Listings 5 and 6); for
// three or more it is a valid lower bound.
func ConfigIO(c FusionConfig, sz sym.Sizes) int64 {
	var total int64
	for _, g := range c.Groups {
		first, last := g[0], g[len(g)-1]
		total += tensorSize(sz, first-1) + tensorSize(sz, last)
	}
	return total
}

// ConfigTight reports whether ConfigIO is a tight bound for the
// configuration: every group has at most two contractions, or the group
// is the full op1234 chain (tight by Listing 7 when S >= |C|).
func ConfigTight(c FusionConfig) bool {
	for _, g := range c.Groups {
		if len(g) > 2 && len(g) != 4 {
			return false
		}
	}
	return true
}

// RankedConfig pairs a configuration with its I/O bound.
type RankedConfig struct {
	Config FusionConfig
	IO     int64
	Tight  bool
}

// RankConfigs orders all eight fusion configurations by their I/O bound,
// ascending; ties break toward fewer fused groups (more fusion). The
// result realises Theorem 5.2's total order:
//
//	IO(op1234) <= IO(op12/34) < IO(op123/4)
func RankConfigs(sz sym.Sizes) []RankedConfig {
	cfgs := AllFusionConfigs()
	out := make([]RankedConfig, len(cfgs))
	for i, c := range cfgs {
		out[i] = RankedConfig{Config: c, IO: ConfigIO(c, sz), Tight: ConfigTight(c)}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].IO != out[j].IO {
			return out[i].IO < out[j].IO
		}
		return len(out[i].Config.Groups) < len(out[j].Config.Groups)
	})
	return out
}

// BestConfig returns the minimum-I/O configuration for the given sizes
// and fast-memory capacity: op1234 when full reuse is possible
// (S >= |C|, Theorem 6.2), otherwise op12/34 (Theorem 5.2 shows no other
// partial fusion beats it).
func BestConfig(sz sym.Sizes, s int64) FusionConfig {
	if FullReusePossible(s, sz.C) {
		return FusionConfig{Groups: [][]int{{1, 2, 3, 4}}}
	}
	return FusionConfig{Groups: [][]int{{1, 2}, {3, 4}}}
}
