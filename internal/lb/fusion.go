package lb

import (
	"fmt"
	"sort"

	"fourindex/internal/lb/chain"
	"fourindex/internal/sym"
)

// FusionConfig is a partition of the four-contraction chain into
// contiguous fused groups, e.g. {{1,2},{3,4}} is op12/34. It is the
// four-index view of chain.Config.
type FusionConfig struct {
	Groups [][]int
}

// engine converts to the chain engine's configuration type.
func (c FusionConfig) engine() chain.Config { return chain.Config{Groups: c.Groups} }

// String renders the paper's notation: op12/34, op1/2/3/4, op1234, ...
func (c FusionConfig) String() string { return c.engine().String() }

// AllFusionConfigs enumerates every contiguous grouping of the four
// contractions: the 2^3 = 8 compositions of 4, in the engine's
// enumeration order.
func AllFusionConfigs() []FusionConfig {
	cfgs := chain.EnumerateConfigs(4)
	out := make([]FusionConfig, len(cfgs))
	for i, c := range cfgs {
		out[i] = FusionConfig{Groups: c.Groups}
	}
	return out
}

// ConfigByName finds a fusion configuration from its op-notation string.
func ConfigByName(name string) (FusionConfig, error) {
	c, err := chain.ConfigByName(4, name)
	if err != nil {
		return FusionConfig{}, fmt.Errorf("lb: unknown fusion config %q", name)
	}
	return FusionConfig{Groups: c.Groups}, nil
}

// boundarySizes lists the five tensor sizes in boundary order
// (A, O1, O2, O3, C) for the engine's floor computation.
func boundarySizes(sz sym.Sizes) []int64 {
	return []int64{sz.A, sz.O1, sz.O2, sz.O3, sz.C}
}

// ConfigIO returns the Section 5.3 I/O lower bound for a fusion
// configuration with the symmetric tensor sizes of Table 1: the sum over
// fused groups of (group input size + group output size), derived by the
// chain engine. For groups of one or two contractions this bound is
// tight (Listings 5 and 6); for three or more it is a valid lower bound.
func ConfigIO(c FusionConfig, sz sym.Sizes) int64 {
	v, err := chain.FloorIO(boundarySizes(sz), c.engine())
	if err != nil {
		panic(fmt.Sprintf("lb: bad fusion config %v: %v", c.Groups, err))
	}
	return v
}

// ConfigTight reports whether ConfigIO is a tight bound for the
// configuration: every group has at most two contractions, or the group
// is the full op1234 chain (tight by Listing 7 when S >= |C|).
func ConfigTight(c FusionConfig) bool {
	for _, g := range c.Groups {
		if len(g) > 2 && len(g) != 4 {
			return false
		}
	}
	return true
}

// RankedConfig pairs a configuration with its I/O bound.
type RankedConfig struct {
	Config FusionConfig
	IO     int64
	Tight  bool
}

// RankConfigs orders all eight fusion configurations by their I/O bound,
// ascending; ties break toward fewer fused groups (more fusion). The
// result realises Theorem 5.2's total order:
//
//	IO(op1234) <= IO(op12/34) < IO(op123/4)
func RankConfigs(sz sym.Sizes) []RankedConfig {
	cfgs := AllFusionConfigs()
	out := make([]RankedConfig, len(cfgs))
	for i, c := range cfgs {
		out[i] = RankedConfig{Config: c, IO: ConfigIO(c, sz), Tight: ConfigTight(c)}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].IO != out[j].IO {
			return out[i].IO < out[j].IO
		}
		return len(out[i].Config.Groups) < len(out[j].Config.Groups)
	})
	return out
}

// BestConfig returns the minimum-I/O configuration for the given sizes
// and fast-memory capacity: op1234 when full reuse is possible
// (S >= |C|, Theorem 6.2), otherwise op12/34 (Theorem 5.2 shows no other
// partial fusion beats it).
func BestConfig(sz sym.Sizes, s int64) FusionConfig {
	if FullReusePossible(s, sz.C) {
		return FusionConfig{Groups: [][]int{{1, 2, 3, 4}}}
	}
	return FusionConfig{Groups: [][]int{{1, 2}, {3, 4}}}
}
