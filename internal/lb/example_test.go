package lb_test

import (
	"fmt"

	"fourindex/internal/lb"
	"fourindex/internal/sym"
)

// The Section 5.3 analysis at a glance: rank all eight fusion
// configurations for a molecule-sized transform.
func ExampleRankConfigs() {
	ranked := lb.RankConfigs(sym.ExactSizes(698, 8))
	for _, rc := range ranked[:3] {
		fmt.Println(rc.Config)
	}
	// Output:
	// op1234
	// op12/34
	// op1/234
}

// The fuse/unfuse hybrid decision of Section 7.4.
func ExampleAdvise() {
	need := lb.MemoryUnfused(1194, 8) * 8
	fmt.Println(lb.Advise(1194, 8, need*2).Scheme)
	fmt.Println(lb.Advise(1194, 8, need/2).Scheme)
	fmt.Println(lb.Advise(1194, 8, 1<<20).Scheme)
	// Output:
	// unfused
	// fused
	// infeasible
}

// The two-level construction of Section 3: op1234 against the disk,
// op12/34 against the network.
func ExamplePlanHierarchy() {
	p := lb.PlanHierarchy(698, 8, 2.5e12, 4e9)
	fmt.Println(p.Outer.Config)
	fmt.Println(p.Inner.Config)
	// Output:
	// op1234
	// op12/34
}
