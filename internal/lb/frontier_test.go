package lb

import (
	"math"
	"testing"

	"fourindex/internal/sym"
)

func TestCapacityGridDeterministicAndSorted(t *testing.T) {
	a := CapacityGrid(368, 8, 0)
	b := CapacityGrid(368, 8, 0)
	if len(a) != len(b) {
		t.Fatalf("grid lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grid not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatalf("grid not strictly increasing at %d: %d then %d", i, a[i-1], a[i])
		}
	}
	// The closed-form thresholds must be exact grid points, so detected
	// knees coincide with the formulas.
	th := ThresholdsFor(368, 8)
	for _, want := range []int64{th.SingleTight, th.PairFusion, th.FullReuse} {
		found := false
		for _, s := range a {
			if s == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("threshold %d missing from grid", want)
		}
	}
}

// TestFrontierBoundMonotone is the frontier property: for every fusion
// configuration the I/O lower bound is monotone non-increasing in the
// fast-memory capacity S — more memory never forces more data movement.
func TestFrontierBoundMonotone(t *testing.T) {
	for _, prob := range []struct{ n, s int }{{64, 1}, {256, 1}, {368, 8}, {580, 8}} {
		grid := CapacityGrid(prob.n, prob.s, 16)
		for _, c := range AllFusionConfigs() {
			prev := math.Inf(1)
			for _, S := range grid {
				b := ConfigBoundAt(c, prob.n, prob.s, S)
				if b > prev*(1+1e-12) {
					t.Fatalf("n=%d s=%d %v: bound rose from %g to %g at S=%d",
						prob.n, prob.s, c, prev, b, S)
				}
				prev = b
			}
		}
	}
}

// TestFrontierKneesMatchThresholds checks that each canonical curve
// flattens onto its floor exactly at the paper's closed-form threshold:
// op1/2/3/4 at n^2+n+1, op12/34 at 3n^2+n+1, op1234 at |C|.
func TestFrontierKneesMatchThresholds(t *testing.T) {
	const n, s = 256, 1
	th := ThresholdsFor(n, s)
	grid := CapacityGrid(n, s, 0)
	for _, tc := range []struct {
		config string
		knee   int64
	}{
		{"op1/2/3/4", th.SingleTight},
		{"op12/34", th.PairFusion},
		{"op1234", th.FullReuse},
	} {
		c, err := ConfigByName(tc.config)
		if err != nil {
			t.Fatal(err)
		}
		cv := ComputeCurve(c, n, s, grid)
		if cv.FlatAtS != tc.knee {
			t.Errorf("%s flattens at S=%d, want knee at %d", tc.config, cv.FlatAtS, tc.knee)
		}
		if got := ConfigFlatThreshold(c, n, s); got != tc.knee {
			t.Errorf("%s ConfigFlatThreshold = %d, want %d", tc.config, got, tc.knee)
		}
		// Strictly above the floor just below the knee: the knee is a
		// real regime change, not a smooth approach.
		below := tc.knee - 1
		if b := ConfigBoundAt(c, n, s, below); b <= float64(cv.FloorElements) {
			t.Errorf("%s bound at S=%d is %g, want > floor %d", tc.config, below, b, cv.FloorElements)
		}
		// At and beyond the knee the bound is the floor exactly.
		for _, S := range []int64{tc.knee, tc.knee * 2} {
			if b := ConfigBoundAt(c, n, s, S); b != float64(cv.FloorElements) {
				t.Errorf("%s bound at S=%d is %g, want floor %d", tc.config, S, b, cv.FloorElements)
			}
		}
	}
}

// TestFrontierFullReuseJump pins the Theorem 6.2 discontinuity: crossing
// S = |C| from below drops the op1234 bound by exactly 2|O2| (the
// op12/34 intermediate's round trip that full reuse eliminates).
func TestFrontierFullReuseJump(t *testing.T) {
	const n, s = 368, 8
	sz := sym.ExactSizes(n, s)
	c, err := ConfigByName("op1234")
	if err != nil {
		t.Fatal(err)
	}
	below := ConfigBoundAt(c, n, s, sz.C-1)
	at := ConfigBoundAt(c, n, s, sz.C)
	if at != float64(sz.A+sz.C) {
		t.Fatalf("bound at S=|C| is %g, want |A|+|C| = %d", at, sz.A+sz.C)
	}
	if want := float64(sz.A + 2*sz.O2 + sz.C); below != want {
		t.Fatalf("bound just below |C| is %g, want op12/34 floor %g", below, want)
	}
}

func TestConfigMinMemoryOrdering(t *testing.T) {
	const n, s = 368, 8
	unfused := ConfigMinMemory(FusionConfig{Groups: [][]int{{1}, {2}, {3}, {4}}}, n, s)
	pair := ConfigMinMemory(FusionConfig{Groups: [][]int{{1, 2}, {3, 4}}}, n, s)
	full := ConfigMinMemory(FusionConfig{Groups: [][]int{{1, 2, 3, 4}}}, n, s)
	if !(full < pair && pair < unfused) {
		t.Errorf("memory floors not ordered: full=%d pair=%d unfused=%d", full, pair, unfused)
	}
	// The fully fused floor must sit above |C| (the schedule holds the
	// output resident) but far below the unfused intermediates.
	if c := sym.ExactSizes(n, s).C; full <= c {
		t.Errorf("fully fused floor %d not above |C| = %d", full, c)
	}
}

func TestMemoryFused123(t *testing.T) {
	const n, s = 64, 1
	m1 := MemoryFused123(n, s, 1)
	m4 := MemoryFused123(n, s, 4)
	if m4 <= m1 {
		t.Errorf("op123/4 memory not increasing in tile width: tl=1 %d, tl=4 %d", m1, m4)
	}
	sz := sym.ExactSizes(n, s)
	if m1 <= sz.O3+sz.C {
		t.Errorf("op123/4 memory %d must exceed its resident O3+C = %d", m1, sz.O3+sz.C)
	}
}
