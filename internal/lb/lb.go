// Package lb implements the paper's data-movement lower-bound analysis
// (Sections 4-6) for the four-index transform: published matrix-
// multiplication I/O lower bounds, the Fusion Lemma, per-contraction
// tight bounds, the enumeration and ordering of fusion configurations,
// the necessary/sufficient conditions for full intermediate reuse, and
// the memory/flop formulas behind the fuse/unfuse hybrid driver
// (Section 7.4).
//
// Since the generalized bound engine landed, every Section 5/6 quantity
// here is *derived* by internal/lb/chain from the declarative
// chain.FourIndex(n, s) description; this package is the four-index
// façade over the engine, and the historical closed forms survive as
// golden tests of the engine's output. The panic-on-bad-input contract
// is also historical and kept for internal programmer errors only —
// code paths fed by user input (fouridxd payloads, CLI flags) must call
// the chain engine directly and handle its typed errors.
//
// All bounds are in elements (words) unless named *Bytes.
package lb

import (
	"fmt"
	"math"

	"fourindex/internal/lb/chain"
)

// HongKungMatmulLB returns the Hong & Kung asymptotic I/O lower bound for
// multiplying two n x n matrices with fast memory S: Omega(n^3 / sqrt S).
// The returned value uses unit constant (the original paper's bound is
// asymptotic).
func HongKungMatmulLB(n, s int64) float64 {
	checkS(s)
	return chain.HongKung(n, s)
}

// IronyMatmulLB returns the Irony/Toledo/Tiskin constant-factor bound for
// an (ni x nj) by (nj x nk) product: ni*nj*nk / (2*sqrt(2*S)).
func IronyMatmulLB(ni, nj, nk, s int64) float64 {
	checkS(s)
	return chain.Irony(ni, nj, nk, s)
}

// DongarraMatmulLB returns the tighter Dongarra et al. bound used
// throughout the paper: 1.73 * ni*nj*nk / sqrt(S).
func DongarraMatmulLB(ni, nj, nk, s int64) float64 {
	checkS(s)
	return chain.Dongarra(ni, nj, nk, s)
}

func checkS(s int64) {
	if s <= 0 {
		panic(fmt.Sprintf("lb: non-positive fast memory size %d", s))
	}
}

// fourIndexChain builds the engine description of the four-index chain,
// panicking on invalid extents — lb's internal callers only reach it
// with already-validated benchmark sizes.
func fourIndexChain(n, s int) *chain.Chain {
	ch, err := chain.FourIndex(n, s)
	if err != nil {
		panic(fmt.Sprintf("lb: bad four-index extents (n=%d, s=%d): %v", n, s, err))
	}
	return ch
}

// TiledMatmulIO returns the data movement achieved by a T-tiled classical
// matmul of two n x n matrices (Section 2.3): ~2n^3/T for the dominant
// A/B traffic. Valid for T <= sqrt(S/3).
func TiledMatmulIO(n, t int64) float64 {
	if t <= 0 {
		panic(fmt.Sprintf("lb: non-positive tile size %d", t))
	}
	return 2 * float64(n) * float64(n) * float64(n) / float64(t)
}

// UntiledMatmulIO returns the data movement of the untiled i-j-k matmul
// when B does not fit in fast memory: the entire B is re-read for every i
// (Section 2.3), i.e. n^3 ignoring A and C traffic.
func UntiledMatmulIO(n int64) float64 {
	return float64(n) * float64(n) * float64(n)
}

// FusionLemma is Lemma 4.2: given I/O lower bounds for producer C1 and
// consumer C2 and the size of the intermediate O1 flowing between them,
// any fused schedule has I/O at least lb1 + lb2 - 2*|O1|.
func FusionLemma(lb1, lb2 float64, sizeO1 int64) float64 {
	return chain.FusionLemma(lb1, lb2, sizeO1)
}

// MaxFusionSaving bounds the I/O reduction fusion can deliver: unfused
// tight I/O minus the Fusion-Lemma bound, never negative. When this is a
// small fraction of unfusedIO, fusion is futile (Section 4).
func MaxFusionSaving(unfusedIO, fusedLB float64) float64 {
	if s := unfusedIO - fusedLB; s > 0 {
		return s
	}
	return 0
}

// ContractionLB returns the I/O lower bound for one tensor contraction of
// the transform viewed as an (n^3 x n) x (n x n) matrix product with
// input size in and output size out (Section 5.1):
//
//	max( Dongarra(n^3, n, n, S), in + out )
//
// For S >= n^2 + n + 1 the sum of input and output sizes is tight
// (Listing 5 achieves it).
func ContractionLB(n, s, in, out int64) float64 {
	checkS(s)
	return chain.MatmulOpLB(n*n*n, n, n, s, in, out)
}

// HourglassMatmulLB returns the hourglass-tightened matmul I/O bound of
// Eyraud-Dubois et al. ("Tightening I/O Lower Bounds through the
// Hourglass Dependency Pattern"): partitioning the CDAG by the hourglass
// pattern around each output's reduction tree sharpens the
// Hong-Kung-style constant to the tight
//
//	2 * ni*nj*nk / sqrt(S) - 2S
//
// for an (ni x nj) by (nj x nk) product — strictly above Dongarra's
// 1.73/sqrt(S) form once S is small against the iteration space, and
// matching the best known blocked schedules up to the -2S boundary term.
func HourglassMatmulLB(ni, nj, nk, s int64) float64 {
	checkS(s)
	v := 2*float64(ni)*float64(nj)*float64(nk)/math.Sqrt(float64(s)) - 2*float64(s)
	if v < 0 {
		return 0
	}
	return v
}

// HourglassContractionLB returns the hourglass-tightened I/O lower
// bound for one contraction phase that performed the given flop count
// (2 per elementary product, i.e. blas.GemmFlops accounting) against
// fast memory S, with input size in and output size out:
//
//	max( flops/sqrt(S) - 2S, in + out )
//
// Unlike ContractionLB, which prices the full dense (n^3 x n) x (n x n)
// iteration space, this bound is derived from the arithmetic the phase
// actually executed — flops/2 elementary products — so spatial-symmetry
// packing (which shrinks the iteration space s^2-fold) and fused-
// schedule recomputation are priced in instead of assumed away. That is
// what makes it safe to audit against: the dense ContractionLB can
// exceed a symmetric run's true data movement (attained fractions above
// 1.0), while this bound never can.
func HourglassContractionLB(flops, s, in, out int64) float64 {
	checkS(s)
	floor := float64(in + out)
	v := float64(flops)/math.Sqrt(float64(s)) - 2*float64(s)
	if v < floor {
		return floor
	}
	return v
}

// SingleTightThreshold returns the fast-memory size above which one
// contraction's I/O bound |in|+|out| is achievable: n^2 + n + 1
// (Listing 5: B plus one A-row plus a scalar).
func SingleTightThreshold(n int64) int64 { return n*n + n + 1 }

// PairFusionThreshold returns the fast-memory size above which fusing two
// consecutive contractions achieves I/O = |in|+|out| (Theorem 5.1,
// Listing 6): 3n^2 + n + 1.
func PairFusionThreshold(n int64) int64 { return 3*n*n + n + 1 }

// PairFusionUseful reports whether the Fusion Lemma permits useful fusion
// of a consecutive contraction pair (Section 5.1): below ~3n^2 of fast
// memory the fused bound 3.46 n^5/sqrt(S) exceeds the unfused cost, so
// fusion cannot help.
func PairFusionUseful(n, s int64) bool {
	return s >= 3*n*n
}

// FullReusePossible is Theorem 6.2's necessary (and, by Listing 7,
// sufficient) condition: full reuse of all intermediates — I/O = |A|+|C|
// — is achievable iff the fast memory holds the output tensor.
func FullReusePossible(s, sizeC int64) bool { return s >= sizeC }

// FullReuseSufficientS returns the fast-memory size at which Listing 7
// concretely achieves I/O = |A|+|C|: |C| + 2n^3 working space.
func FullReuseSufficientS(n int64, sizeC int64) int64 {
	return sizeC + 2*n*n*n
}
