package lb

import (
	"math"
	"testing"
)

// TestHourglassMatmulTighterThanDongarra pins the point of the
// hourglass analysis: in the bandwidth-dominated regime its 2/sqrt(S)
// constant strictly exceeds Dongarra's 1.73/sqrt(S), so the bound is
// tighter (larger) wherever the -2S boundary term is negligible.
func TestHourglassMatmulTighterThanDongarra(t *testing.T) {
	var n int64 = 512
	for _, s := range []int64{1 << 10, 1 << 14, 1 << 18} {
		hg := HourglassMatmulLB(n*n*n, n, n, s)
		dg := DongarraMatmulLB(n*n*n, n, n, s)
		if hg <= dg {
			t.Errorf("S=%d: hourglass %g not above Dongarra %g", s, hg, dg)
		}
	}
}

// TestHourglassContractionLB checks the closed form, the in+out floor,
// and the regimes on either side of it.
func TestHourglassContractionLB(t *testing.T) {
	var in, out int64 = 1000, 2000

	// Large S: the -2S term swamps flops/sqrt(S); floor wins.
	if got := HourglassContractionLB(1<<20, 1<<30, in, out); got != float64(in+out) {
		t.Errorf("large-S: got %g, want floor %d", got, in+out)
	}

	// Small S: the bandwidth term dominates and matches the closed form.
	var flops, s int64 = 1 << 30, 1 << 10
	want := float64(flops)/math.Sqrt(float64(s)) - 2*float64(s)
	if got := HourglassContractionLB(flops, s, in, out); got != want {
		t.Errorf("small-S: got %g, want %g", got, want)
	}

	// The bound never drops below the compulsory floor.
	if got := HourglassContractionLB(0, 1, in, out); got < float64(in+out) {
		t.Errorf("floor violated: %g < %d", got, in+out)
	}
}

// TestHourglassFlopsDerivedBelowDense is the audit-safety property: for
// a spatially symmetric problem the executed flops shrink ~s^2-fold
// while the dense ContractionLB keeps pricing the full iteration space,
// so the flops-derived hourglass bound must fall below the dense bound
// in the bandwidth regime — that headroom is exactly why dense-bound
// attained fractions exceeded 1.0.
func TestHourglassFlopsDerivedBelowDense(t *testing.T) {
	var n int64 = 140
	sym := int64(4)
	in, out := n*n*n*n/(2*sym), n*n*n*n/8
	denseFlops := 2 * n * n * n * n * n
	symFlops := denseFlops / (sym * sym)
	for _, s := range []int64{1 << 12, 1 << 16} {
		dense := ContractionLB(n, s, in, out)
		tight := HourglassContractionLB(symFlops, s, in, out)
		if tight >= dense {
			t.Errorf("S=%d: symmetric hourglass bound %g not below dense bound %g", s, tight, dense)
		}
	}
}

// TestHourglassBadSPanics keeps the package's programmer-error contract.
func TestHourglassBadSPanics(t *testing.T) {
	for _, f := range []func(){
		func() { HourglassMatmulLB(8, 8, 8, 0) },
		func() { HourglassContractionLB(1024, -1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for non-positive S")
				}
			}()
			f()
		}()
	}
}
