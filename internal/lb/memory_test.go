package lb

import (
	"math"
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/sym"
)

func TestMemoryUnfusedLeadingOrder(t *testing.T) {
	// Section 2.2: the unfused transform needs more than 3n^4/4 words.
	n := 200
	got := float64(MemoryUnfused(n, 1))
	want := 0.75 * math.Pow(float64(n), 4)
	if got < want {
		t.Errorf("unfused memory %v below 3n^4/4 = %v", got, want)
	}
	if got > want*1.05 {
		t.Errorf("unfused memory %v too far above 3n^4/4 = %v", got, want)
	}
}

func TestMemoryUnfusedMatchesPaperBenchmarks(t *testing.T) {
	// The molecule catalog's published requirements come from the same
	// formula; consistency check across packages.
	for _, m := range chem.Catalog {
		lbBytes := MemoryUnfused(m.Orbitals, 1) * 8
		paper := m.UnfusedMemoryBytes()
		ratio := float64(lbBytes) / float64(paper)
		if ratio < 1.0 || ratio > 1.05 {
			t.Errorf("%s: exact %d vs paper formula %d (ratio %v)", m.Name, lbBytes, paper, ratio)
		}
	}
}

func TestMemoryFused12_34(t *testing.T) {
	// Listing 2 needs ~n^4/2: A and O2 live together.
	n := 100
	got := float64(MemoryFused12_34(n, 1))
	want := 0.5 * math.Pow(float64(n), 4)
	if got < want || got > want*1.05 {
		t.Errorf("fused 12/34 memory = %v, want ~%v", got, want)
	}
	// And it is about 2/3 of the unfused requirement.
	if r := got / float64(MemoryUnfused(n, 1)); math.Abs(r-2.0/3.0) > 0.05 {
		t.Errorf("fused/unfused memory ratio = %v, want ~0.67", r)
	}
}

func TestMemoryFused1234Equation7(t *testing.T) {
	n, s, tl := 64, 8, 4
	n64, t64 := int64(n), int64(tl)
	want := n64*n64*n64*t64/2 + n64*n64*n64*t64/2 + sym.ExactSizes(n, s).C
	if got := MemoryFused1234(n, s, tl); got != want {
		t.Errorf("Eq7 memory = %d, want %d", got, want)
	}
	// Monotone in tile width.
	if MemoryFused1234(n, s, 8) <= MemoryFused1234(n, s, 2) {
		t.Error("memory must grow with fused tile width")
	}
}

func TestMemoryFused1234InnerEquation8(t *testing.T) {
	n, s, tl := 64, 8, 4
	n3t := int64(n) * int64(n) * int64(n) * int64(tl)
	want := n3t/2 + n3t + n3t/2 + n3t/2 + sym.ExactSizes(n, s).C
	if got := MemoryFused1234Inner(n, s, tl); got != want {
		t.Errorf("Eq8 memory = %d, want %d", got, want)
	}
	// Inner fusion keeps an extra O1 slab: more memory than Eq7.
	if MemoryFused1234Inner(n, s, tl) <= MemoryFused1234(n, s, tl) {
		t.Error("Eq8 footprint must exceed Eq7")
	}
}

func TestFusedMemoryFarBelowUnfused(t *testing.T) {
	// The whole point: for realistic n, the fused footprint with small
	// tl is a tiny fraction of the unfused one.
	n := 500
	fused := MemoryFused1234Inner(n, 8, 1)
	unfused := MemoryUnfused(n, 8)
	if frac := float64(fused) / float64(unfused); frac > 0.15 {
		t.Errorf("fused/unfused memory fraction = %v, want well below 0.15", frac)
	}
}

func TestMemoryTilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { MemoryFused1234(10, 1, 0) },
		func() { MemoryFused1234(10, 1, 11) },
		func() { MemoryFused1234Inner(10, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad tile width did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFlopFormulas(t *testing.T) {
	n := 40
	n5 := math.Pow(float64(n), 5)
	unf := float64(FlopsUnfused(n))
	// Unfused with symmetry: ~3n^5 (op1 n^5, op2 n^5/2, op3 n^5, op4 n^5/2).
	if unf < 2.8*n5 || unf > 3.3*n5 {
		t.Errorf("unfused flops = %v, want ~3n^5 = %v", unf, 3*n5)
	}
	fus := float64(FlopsFused1234(n))
	if fus < 4.2*n5 || fus > 4.9*n5 {
		t.Errorf("fused flops = %v, want ~4.5n^5 = %v", fus, 4.5*n5)
	}
}

// Section 7.4: "our fused implementation performs approximately 1.5x
// more computation than the unfused schedule."
func TestFusedFlopOverheadApproaches1p5(t *testing.T) {
	for _, n := range []int{100, 400, 1194} {
		r := FusedFlopOverhead(n)
		if math.Abs(r-1.5) > 0.08 {
			t.Errorf("n=%d: fused/unfused flops = %v, want ~1.5", n, r)
		}
	}
}

func TestCommVolumeFused(t *testing.T) {
	n, s, tl := 64, 1, 4
	vol := CommVolumeFused(n, s, tl, 1)
	if vol <= 0 {
		t.Fatal("volume must be positive")
	}
	// alpha replication only inflates the A term.
	vol2 := CommVolumeFused(n, s, tl, 2)
	extraA := int64(n/tl) * int64(sym.Pairs(n)) * int64(n) * int64(tl)
	if vol2-vol != extraA {
		t.Errorf("alphaRep=2 adds %d, want one extra A slab volume %d", vol2-vol, extraA)
	}
	// Larger tiles amortise the per-iteration C accumulation.
	if CommVolumeFused(n, s, 16, 1) >= CommVolumeFused(n, s, 2, 1) {
		t.Error("larger fused tiles must reduce communication volume")
	}
	// alphaRep < 1 clamps.
	if CommVolumeFused(n, s, tl, 0) != vol {
		t.Error("alphaRep 0 should clamp to 1")
	}
}

func TestAdviseUnfusedWhenItFits(t *testing.T) {
	n := 64
	bytes := MemoryUnfused(n, 1)*8 + 1000
	a := Advise(n, 1, bytes)
	if a.Scheme != "unfused" {
		t.Errorf("scheme = %s, want unfused", a.Scheme)
	}
	if a.Config.String() != "op1/2/3/4" {
		t.Errorf("config = %s", a.Config)
	}
}

func TestAdviseFusedWhenIntermediatesOverflow(t *testing.T) {
	n := 64
	bytes := MemoryUnfused(n, 1) * 8 / 2 // half of what unfused needs
	a := Advise(n, 1, bytes)
	if a.Scheme != "fused" {
		t.Fatalf("scheme = %s, want fused (reason %s)", a.Scheme, a.Reason)
	}
	if a.RequiredTileL < 1 || a.RequiredTileL > n {
		t.Errorf("tile width = %d", a.RequiredTileL)
	}
	if a.MemoryBytes > bytes {
		t.Error("advice must fit in the given memory")
	}
	// Advise maximises the tile width: tl+1 must not fit.
	if a.RequiredTileL < n {
		if MemoryFused1234Inner(n, 1, a.RequiredTileL+1)*8 <= bytes {
			t.Error("a larger tile width would also fit; advice is not maximal")
		}
	}
}

func TestAdviseInfeasibleWhenOutputOverflows(t *testing.T) {
	a := Advise(64, 1, 1024) // 1 KB cannot hold C
	if a.Scheme != "infeasible" {
		t.Errorf("scheme = %s, want infeasible", a.Scheme)
	}
}

// The paper's headline (Sections 1, 8): Shell-Mixed needs > 12 TB
// unfused but runs fused on System B's < 9 TB aggregate.
func TestAdviseShellMixedOnSystemB(t *testing.T) {
	m, err := chem.ByName("Shell-Mixed")
	if err != nil {
		t.Fatal(err)
	}
	aggregate := int64(18) * (512 << 30) // 18 x 512 GiB = 9 TiB
	if m.UnfusedMemoryBytes() < 12e12 {
		t.Fatalf("Shell-Mixed unfused = %d B, paper says > 12 TB", m.UnfusedMemoryBytes())
	}
	a := Advise(m.Orbitals, 8, aggregate)
	if a.Scheme != "fused" {
		t.Errorf("Shell-Mixed on System B should be fused, got %s (%s)", a.Scheme, a.Reason)
	}
	if a.MemoryBytes > aggregate {
		t.Error("fused footprint exceeds System B memory")
	}
}
