package lb

import (
	"strings"
	"testing"

	"fourindex/internal/sym"
)

// The canonical Listing 10 situation: aggregate memory holds C, local
// memory does not — outer op1234, inner op12/34.
func TestPlanHierarchyListing10(t *testing.T) {
	n, s := 698, 8
	sz := sym.ExactSizes(n, s)
	globalBytes := sz.C*8 + 1<<36 // C plus slack
	localBytes := int64(4 << 30)  // 4 GB per process, far below |C|

	p := PlanHierarchy(n, s, globalBytes, localBytes)
	if !p.Outer.FullReuse || p.Outer.Config.String() != "op1234" {
		t.Errorf("outer = %+v, want op1234 full reuse", p.Outer)
	}
	if p.Outer.IOBoundElements != sz.A+sz.C {
		t.Errorf("outer I/O bound = %d, want |A|+|C| = %d", p.Outer.IOBoundElements, sz.A+sz.C)
	}
	if p.Inner.FullReuse || p.Inner.Config.String() != "op12/34" {
		t.Errorf("inner = %+v, want op12/34", p.Inner)
	}
	if p.Inner.IOBoundElements != sz.A+2*sz.O2+sz.C {
		t.Errorf("inner I/O bound = %d, want |A|+2|O2|+|C|", p.Inner.IOBoundElements)
	}
	if p.TileL < 1 || p.TileL > n {
		t.Errorf("TileL = %d out of range", p.TileL)
	}
	// The chosen tile is maximal.
	if p.TileL < n && MemoryFused1234Inner(n, s, p.TileL+1)*8 <= globalBytes {
		t.Error("TileL not maximal")
	}
	if !strings.Contains(p.String(), "op12/34") {
		t.Errorf("String() = %q", p.String())
	}
}

// Tiny problem, huge local memory: both levels fully reuse.
func TestPlanHierarchyAllLocal(t *testing.T) {
	p := PlanHierarchy(32, 1, 1<<40, 1<<40)
	if !p.Outer.FullReuse || !p.Inner.FullReuse {
		t.Errorf("both levels should fully reuse: %+v", p)
	}
	if p.Inner.Config.String() != "op1234" {
		t.Errorf("inner config = %s", p.Inner.Config)
	}
}

// Aggregate memory below |C|: disk I/O unavoidable, op12/34 at the outer
// level.
func TestPlanHierarchyDiskBound(t *testing.T) {
	n, s := 698, 8
	sz := sym.ExactSizes(n, s)
	p := PlanHierarchy(n, s, sz.C*8/2, 1<<30)
	if p.Outer.FullReuse {
		t.Error("outer full reuse claimed below |C|")
	}
	if p.Outer.Config.String() != "op12/34" {
		t.Errorf("outer config = %s", p.Outer.Config)
	}
	if p.TileL != 0 {
		t.Errorf("TileL = %d, want 0 (no disk-free schedule)", p.TileL)
	}
	if !strings.Contains(p.Outer.Note, "Theorem 6.2") {
		t.Errorf("note should cite Theorem 6.2: %q", p.Outer.Note)
	}
}

// The threshold is exactly |C| at the outer level.
func TestPlanHierarchyThresholdExact(t *testing.T) {
	n, s := 64, 1
	sz := sym.ExactSizes(n, s)
	at := PlanHierarchy(n, s, sz.C*8, 1<<20)
	below := PlanHierarchy(n, s, sz.C*8-8, 1<<20)
	if !at.Outer.FullReuse {
		t.Error("S = |C| should permit full reuse")
	}
	if below.Outer.FullReuse {
		t.Error("S = |C| - 1 word must not permit full reuse")
	}
}
