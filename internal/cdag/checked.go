package cdag

import "fourindex/internal/lb/chain"

// Idx4 (fourindex.go) silently wraps for extents where n^4 exceeds the
// int range; graph builders never reach that regime (they cap at toy
// extents), but callers sizing full tensors from user-supplied extents
// must use the checked variant.

// Idx4Checked linearises a 4-tuple at extent n like Idx4, with int64
// arithmetic and a typed *chain.OverflowError instead of silent
// wraparound when ((a*n+b)*n+c)*n+d does not fit. The largest safe
// extent is n = 55108 (55108^4 < 2^63 <= 55109^4).
func Idx4Checked(n, a, b, c, d int64) (int64, error) {
	idx := a
	for _, next := range []int64{b, c, d} {
		v, err := chain.MulInt64(idx, n)
		if err != nil {
			return 0, err
		}
		v, err = chain.AddInt64(v, next)
		if err != nil {
			return 0, err
		}
		idx = v
	}
	return idx, nil
}
