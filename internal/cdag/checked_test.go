package cdag

import (
	"errors"
	"testing"

	"fourindex/internal/lb/chain"
)

// TestIdx4CheckedMatchesIdx4 pins the checked variant against the
// unchecked bijection in the safe range.
func TestIdx4CheckedMatchesIdx4(t *testing.T) {
	const n = 7
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			got, err := Idx4Checked(n, int64(a), int64(b), int64(n-1), int64(a))
			if err != nil {
				t.Fatalf("Idx4Checked: %v", err)
			}
			if want := Idx4(n, a, b, n-1, a); got != int64(want) {
				t.Fatalf("Idx4Checked(%d,%d,%d,%d,%d) = %d, want %d", n, a, b, n-1, a, got, want)
			}
		}
	}
}

// TestIdx4CheckedOverflowBoundary pins the largest safe extent: the top
// linear index n^4-1 fits int64 at n = 55108 and overflows at 55109 —
// where the unchecked Idx4 would wrap silently.
func TestIdx4CheckedOverflowBoundary(t *testing.T) {
	const fits, wraps = 55108, 55109
	if _, err := Idx4Checked(fits, fits-1, fits-1, fits-1, fits-1); err != nil {
		t.Fatalf("Idx4Checked at n=%d: %v", fits, err)
	}
	_, err := Idx4Checked(wraps, wraps-1, wraps-1, wraps-1, wraps-1)
	var oe *chain.OverflowError
	if !errors.As(err, &oe) {
		t.Fatalf("Idx4Checked at n=%d: want *chain.OverflowError, got %v", wraps, err)
	}
}
