package cdag

import (
	"testing"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddOp("c", a, b)
	g.MarkOutput(c)
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if !g.IsInput(a) || g.IsInput(c) {
		t.Error("input flags wrong")
	}
	if !g.IsOutput(c) || g.IsOutput(a) {
		t.Error("output flags wrong")
	}
	if len(g.Preds(c)) != 2 || g.Preds(c)[0] != a {
		t.Error("preds wrong")
	}
	if g.Name(b) != "b" {
		t.Errorf("Name = %q", g.Name(b))
	}
	if len(g.Inputs()) != 2 || len(g.Outputs()) != 1 {
		t.Error("Inputs/Outputs enumeration wrong")
	}
	succs := g.Succs()
	if len(succs[a]) != 1 || succs[a][0] != c {
		t.Error("Succs wrong")
	}
}

func TestAddOpValidation(t *testing.T) {
	g := NewGraph()
	defer func() {
		if recover() == nil {
			t.Error("op without predecessors did not panic")
		}
	}()
	g.AddOp("bad")
}

func TestAddOpBadPredPanics(t *testing.T) {
	g := NewGraph()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range predecessor did not panic")
		}
	}()
	g.AddOp("bad", VID(5))
}

func TestBuildMatMulStructure(t *testing.T) {
	n := 3
	m := BuildMatMul(n)
	// Vertices: 2n^2 inputs + n^3 ops.
	if got := m.G.NumVertices(); got != 2*n*n+n*n*n {
		t.Fatalf("vertices = %d, want %d", got, 2*n*n+n*n*n)
	}
	if got := len(m.G.Outputs()); got != n*n {
		t.Errorf("outputs = %d, want %d", got, n*n)
	}
	// The first partial of C[i][j] depends on A[i][0] and B[0][j].
	p0 := m.Partial[1][2][0]
	preds := m.G.Preds(p0)
	if len(preds) != 2 || preds[0] != m.A[1][0] || preds[1] != m.B[0][2] {
		t.Error("first fma has wrong operands")
	}
	// Later partials chain on the previous one.
	p1 := m.Partial[1][2][1]
	if got := m.G.Preds(p1); len(got) != 3 || got[0] != p0 {
		t.Error("chain structure broken")
	}
	// Final vertex of each chain is the output.
	if m.C[1][2] != m.Partial[1][2][n-1] {
		t.Error("C final vertex mismatch")
	}
}

func TestChainStructure(t *testing.T) {
	n := 2
	ch := BuildMatMulChain(n)
	// Intermediate C vertices are not outputs; E vertices are.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if ch.G.IsOutput(ch.First.C[i][j]) {
				t.Error("intermediate C marked output")
			}
			if !ch.G.IsOutput(ch.Second.C[i][j]) {
				t.Error("E not marked output")
			}
		}
	}
	// Second product's A operand is the first's C.
	if ch.Second.A[0][0] != ch.First.C[0][0] {
		t.Error("chain does not share the intermediate")
	}
	// Inputs: A, B of first (2n^2) and D of second (n^2).
	if got := len(ch.G.Inputs()); got != 3*n*n {
		t.Errorf("chain inputs = %d, want %d", got, 3*n*n)
	}
}

func TestIdx4(t *testing.T) {
	n := 3
	seen := map[int]bool{}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for c := 0; c < n; c++ {
				for d := 0; d < n; d++ {
					i := Idx4(n, a, b, c, d)
					if i < 0 || i >= n*n*n*n || seen[i] {
						t.Fatalf("Idx4 not bijective at (%d,%d,%d,%d)", a, b, c, d)
					}
					seen[i] = true
				}
			}
		}
	}
}

func TestBuildFourIndexStructure(t *testing.T) {
	n := 2
	f := BuildFourIndex(n)
	n4 := n * n * n * n
	// Inputs: A (n^4) + 4 B matrices (4n^2); ops: 4 contractions each
	// n^4 chains of n vertices.
	wantV := n4 + 4*n*n + 4*n4*n
	if got := f.G.NumVertices(); got != wantV {
		t.Fatalf("vertices = %d, want %d", got, wantV)
	}
	if got := len(f.G.Outputs()); got != n4 {
		t.Errorf("outputs = %d, want %d", got, n4)
	}
	// O1[a,j,k,l] first chain element depends on A[0,j,k,l] and B1[a,0].
	v := f.O1[Idx4(n, 1, 0, 1, 0)]
	first := v - VID(n-1)
	preds := f.G.Preds(first)
	if len(preds) != 2 || preds[0] != f.A[Idx4(n, 0, 0, 1, 0)] || preds[1] != f.B[0][1*n+0] {
		t.Errorf("O1 chain head operands wrong: %v", preds)
	}
	// C chains consume O3 at matching l.
	cv := f.C[Idx4(n, 1, 1, 0, 1)]
	cFirst := cv - VID(n-1)
	cp := f.G.Preds(cFirst)
	if len(cp) != 2 || cp[0] != f.O3[Idx4(n, 1, 1, 0, 0)] {
		t.Errorf("C chain head operands wrong: %v", cp)
	}
	// Chains are contiguous VIDs (relied on by pebble order builders).
	for r := 1; r < n; r++ {
		p := f.G.Preds(first + VID(r))
		if p[0] != first+VID(r-1) {
			t.Error("chain vertices not contiguous")
		}
	}
}

func TestBuildRectChain(t *testing.T) {
	rc := BuildRectChain(6, 2)
	// Inputs: A (12) + B (12) + D (12); ops: C chains 36*2 + E chains 12*6.
	if got := rc.G.NumVertices(); got != 36+72+72 {
		t.Fatalf("vertices = %d", got)
	}
	if got := len(rc.G.Outputs()); got != 12 {
		t.Errorf("outputs = %d, want N*K = 12", got)
	}
	// E chains consume C finals.
	p := rc.G.Preds(rc.EPartial[3][1][0])
	if len(p) != 2 || p[0] != rc.C[3][0] {
		t.Errorf("E chain head preds = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("k > n did not panic")
		}
	}()
	BuildRectChain(2, 3)
}

func TestBuildContraction(t *testing.T) {
	c := BuildContraction(2)
	// Inputs: A (16) + B (4); ops: 16 chains of 2.
	if got := c.G.NumVertices(); got != 16+4+32 {
		t.Fatalf("vertices = %d", got)
	}
	if got := len(c.G.Outputs()); got != 16 {
		t.Errorf("outputs = %d", got)
	}
	head := c.O1[Idx4(2, 1, 0, 1, 0)] - 1
	p := c.G.Preds(head)
	if len(p) != 2 || p[0] != c.A[Idx4(2, 0, 0, 1, 0)] || p[1] != c.B[1*2+0] {
		t.Errorf("chain head preds wrong: %v", p)
	}
}
