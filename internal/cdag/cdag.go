// Package cdag builds computational directed acyclic graphs (CDAGs,
// Definition A.1 of the paper): vertices are input values or operations,
// edges carry values between them. CDAGs are the board on which the
// red-blue pebble game (package pebble) is played to measure and validate
// data-movement lower bounds.
//
// Builders are provided for the computations the paper analyses: a single
// matrix multiplication (Section 2.3), a chain of two matmuls
// (Section 4's producer-consumer example), and the four-index transform
// contraction chain at small extents (Sections 5-6).
package cdag

import "fmt"

// VID identifies a vertex.
type VID int32

// Graph is a CDAG per Definition A.1: inputs have no predecessors,
// operations have at least one, and a subset of vertices is marked
// output.
type Graph struct {
	preds    [][]VID
	isInput  []bool
	isOutput []bool
	names    []string
}

// NewGraph returns an empty CDAG.
func NewGraph() *Graph { return &Graph{} }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.preds) }

// AddInput adds an input vertex (no predecessors).
func (g *Graph) AddInput(name string) VID {
	g.preds = append(g.preds, nil)
	g.isInput = append(g.isInput, true)
	g.isOutput = append(g.isOutput, false)
	g.names = append(g.names, name)
	return VID(len(g.preds) - 1)
}

// AddOp adds an operation vertex depending on the given predecessors.
// Operations must have at least one predecessor (Definition A.1(4)).
func (g *Graph) AddOp(name string, preds ...VID) VID {
	if len(preds) == 0 {
		panic(fmt.Sprintf("cdag: operation %q needs at least one predecessor", name))
	}
	for _, p := range preds {
		if int(p) < 0 || int(p) >= len(g.preds) {
			panic(fmt.Sprintf("cdag: predecessor %d of %q out of range", p, name))
		}
	}
	ps := make([]VID, len(preds))
	copy(ps, preds)
	g.preds = append(g.preds, ps)
	g.isInput = append(g.isInput, false)
	g.isOutput = append(g.isOutput, false)
	g.names = append(g.names, name)
	return VID(len(g.preds) - 1)
}

// MarkOutput marks v as an output vertex.
func (g *Graph) MarkOutput(v VID) { g.isOutput[v] = true }

// IsInput reports whether v is an input.
func (g *Graph) IsInput(v VID) bool { return g.isInput[v] }

// IsOutput reports whether v is an output.
func (g *Graph) IsOutput(v VID) bool { return g.isOutput[v] }

// Preds returns v's predecessors (not to be mutated).
func (g *Graph) Preds(v VID) []VID { return g.preds[v] }

// Name returns v's debug name.
func (g *Graph) Name(v VID) string { return g.names[v] }

// Inputs returns all input vertices.
func (g *Graph) Inputs() []VID {
	var out []VID
	for v := range g.preds {
		if g.isInput[v] {
			out = append(out, VID(v))
		}
	}
	return out
}

// Outputs returns all output vertices.
func (g *Graph) Outputs() []VID {
	var out []VID
	for v := range g.preds {
		if g.isOutput[v] {
			out = append(out, VID(v))
		}
	}
	return out
}

// Succs computes the successor lists (the graph stores predecessors).
func (g *Graph) Succs() [][]VID {
	succ := make([][]VID, len(g.preds))
	for v, ps := range g.preds {
		for _, p := range ps {
			succ[p] = append(succ[p], VID(v))
		}
	}
	return succ
}

// MatMul holds the CDAG of C = A*B for n x n matrices together with
// handles to the vertex grids. Each C[i,j] is a chain of n fused
// multiply-add operations over k.
type MatMul struct {
	G *Graph
	N int
	A [][]VID // A[i][k]
	B [][]VID // B[k][j]
	C [][]VID // final vertex of each C[i,j] chain
	// Partial[i][j][k] is the k-th fma of C[i,j]'s chain.
	Partial [][][]VID
}

// BuildMatMul constructs the classical matmul CDAG.
func BuildMatMul(n int) *MatMul {
	return buildMatMulInto(NewGraph(), n, "", nil)
}

// buildMatMulInto adds a matmul to g. If aVerts is non-nil it supplies
// the A operand vertices (for chaining); otherwise fresh inputs are made.
func buildMatMulInto(g *Graph, n int, tag string, aVerts [][]VID) *MatMul {
	m := &MatMul{G: g, N: n}
	if aVerts != nil {
		m.A = aVerts
	} else {
		m.A = grid2(g, n, n, tag+"A")
	}
	m.B = grid2(g, n, n, tag+"B")
	m.C = make([][]VID, n)
	m.Partial = make([][][]VID, n)
	for i := 0; i < n; i++ {
		m.C[i] = make([]VID, n)
		m.Partial[i] = make([][]VID, n)
		for j := 0; j < n; j++ {
			m.Partial[i][j] = make([]VID, n)
			var prev VID = -1
			for k := 0; k < n; k++ {
				name := fmt.Sprintf("%sC[%d,%d]k%d", tag, i, j, k)
				var v VID
				if prev < 0 {
					v = g.AddOp(name, m.A[i][k], m.B[k][j])
				} else {
					v = g.AddOp(name, prev, m.A[i][k], m.B[k][j])
				}
				m.Partial[i][j][k] = v
				prev = v
			}
			m.C[i][j] = prev
			g.MarkOutput(prev)
		}
	}
	return m
}

func grid2(g *Graph, r, c int, tag string) [][]VID {
	out := make([][]VID, r)
	for i := 0; i < r; i++ {
		out[i] = make([]VID, c)
		for j := 0; j < c; j++ {
			out[i][j] = g.AddInput(fmt.Sprintf("%s[%d,%d]", tag, i, j))
		}
	}
	return out
}

// MatMulChain is the CDAG of E = (A*B)*D: the Section 4 producer-consumer
// pair, with the intermediate C = A*B feeding the second product.
type MatMulChain struct {
	G      *Graph
	First  *MatMul // C = A*B; its C vertices are NOT outputs of the chain
	Second *MatMul // E = C*D
}

// BuildMatMulChain constructs the chained CDAG. The intermediate C
// vertices are unmarked as outputs (they are internal), matching the
// fused CDAG of Lemma A.3 where output vertices of C1 merge with input
// vertices of C2.
func BuildMatMulChain(n int) *MatMulChain {
	g := NewGraph()
	first := buildMatMulInto(g, n, "1:", nil)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.isOutput[first.C[i][j]] = false
		}
	}
	second := buildMatMulInto(g, n, "2:", first.C)
	return &MatMulChain{G: g, First: first, Second: second}
}
