package cdag

import "fmt"

// RectChain is the CDAG of Section 4's second producer-consumer example:
// E = (A * B) * D with rectangular shapes A (N x K), B (K x N) and
// D (N x K), N >> K. The intermediate C is a large N x N matrix produced
// by short reduction chains (length K) — the regime where the Fusion
// Lemma says fusion is very profitable, because the intermediate dwarfs
// the inherent I/O of either product.
type RectChain struct {
	G    *Graph
	N, K int
	A    [][]VID // N x K inputs
	B    [][]VID // K x N inputs
	D    [][]VID // N x K inputs
	// CPartial[i][j][k] is the k-th fma of C[i,j] (chain length K).
	CPartial [][][]VID
	C        [][]VID // N x N intermediate finals (not chain outputs)
	// EPartial[i][j][r] is the r-th fma of E[i,j] (chain length N).
	EPartial [][][]VID
	E        [][]VID // N x K outputs
}

// BuildRectChain constructs the chain for given N and K (N >= K >= 1).
func BuildRectChain(n, k int) *RectChain {
	if n < k || k < 1 {
		panic(fmt.Sprintf("cdag: BuildRectChain needs n >= k >= 1, got (%d,%d)", n, k))
	}
	g := NewGraph()
	rc := &RectChain{G: g, N: n, K: k}
	rc.A = inputGrid(g, n, k, "A")
	rc.B = inputGrid(g, k, n, "B")
	rc.D = inputGrid(g, n, k, "D")

	// C[i,j] = sum_k A[i,k] B[k,j], chains of length K.
	rc.C = make([][]VID, n)
	rc.CPartial = make([][][]VID, n)
	for i := 0; i < n; i++ {
		rc.C[i] = make([]VID, n)
		rc.CPartial[i] = make([][]VID, n)
		for j := 0; j < n; j++ {
			rc.CPartial[i][j] = make([]VID, k)
			var prev VID = -1
			for kk := 0; kk < k; kk++ {
				name := fmt.Sprintf("C[%d,%d]k%d", i, j, kk)
				var v VID
				if prev < 0 {
					v = g.AddOp(name, rc.A[i][kk], rc.B[kk][j])
				} else {
					v = g.AddOp(name, prev, rc.A[i][kk], rc.B[kk][j])
				}
				rc.CPartial[i][j][kk] = v
				prev = v
			}
			rc.C[i][j] = prev
		}
	}

	// E[i,j] = sum_r C[i,r] D[r,j], chains of length N.
	rc.E = make([][]VID, n)
	rc.EPartial = make([][][]VID, n)
	for i := 0; i < n; i++ {
		rc.E[i] = make([]VID, k)
		rc.EPartial[i] = make([][]VID, k)
		for j := 0; j < k; j++ {
			rc.EPartial[i][j] = make([]VID, n)
			var prev VID = -1
			for r := 0; r < n; r++ {
				name := fmt.Sprintf("E[%d,%d]r%d", i, j, r)
				var v VID
				if prev < 0 {
					v = g.AddOp(name, rc.C[i][r], rc.D[r][j])
				} else {
					v = g.AddOp(name, prev, rc.C[i][r], rc.D[r][j])
				}
				rc.EPartial[i][j][r] = v
				prev = v
			}
			rc.E[i][j] = prev
			g.MarkOutput(prev)
		}
	}
	return rc
}

func inputGrid(g *Graph, r, c int, tag string) [][]VID {
	out := make([][]VID, r)
	for i := 0; i < r; i++ {
		out[i] = make([]VID, c)
		for j := 0; j < c; j++ {
			out[i][j] = g.AddInput(fmt.Sprintf("%s[%d,%d]", tag, i, j))
		}
	}
	return out
}
