package cdag

import "fmt"

// FourIndex is the CDAG of the complete four-contraction chain of
// Equation 2 at extent n, without symmetry (the form used by the
// Section 5-6 proofs). Tensors are stored row-major as flat vertex
// slices indexed with Idx4.
type FourIndex struct {
	G          *Graph
	N          int
	A          []VID    // inputs, [i,j,k,l]
	B          [4][]VID // inputs, B1..B4, [row,col] = [out,in]
	O1, O2, O3 []VID
	C          []VID // outputs, [a,b,g,d]
}

// Idx4 linearises a 4-tuple at extent n.
func Idx4(n, a, b, c, d int) int { return ((a*n+b)*n+c)*n + d }

// BuildFourIndex constructs the chain
//
//	O1[a,j,k,l] = sum_i A[i,j,k,l]  * B1[a,i]
//	O2[a,b,k,l] = sum_j O1[a,j,k,l] * B2[b,j]
//	O3[a,b,c,l] = sum_k O2[a,b,k,l] * B3[c,k]
//	C [a,b,c,d] = sum_l O3[a,b,c,l] * B4[d,l]
//
// with each reduced element an n-long fused-multiply-add chain.
func BuildFourIndex(n int) *FourIndex {
	g := NewGraph()
	f := &FourIndex{G: g, N: n}
	f.A = make([]VID, n*n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l < n; l++ {
					f.A[Idx4(n, i, j, k, l)] = g.AddInput(fmt.Sprintf("A[%d,%d,%d,%d]", i, j, k, l))
				}
			}
		}
	}
	for m := 0; m < 4; m++ {
		f.B[m] = make([]VID, n*n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				f.B[m][r*n+c] = g.AddInput(fmt.Sprintf("B%d[%d,%d]", m+1, r, c))
			}
		}
	}
	contract := func(src []VID, b []VID, tag string, pos int) []VID {
		// dst[x0..x3] where the reduced index sits at position pos of
		// src and the new index is dst's dimension pos... Contractions
		// replace one index: O1 replaces i (pos 0) with a, O2 replaces
		// j (pos 1) with b, O3 replaces k (pos 2) with c, C replaces l
		// (pos 3) with d.
		dst := make([]VID, n*n*n*n)
		idx := [4]int{}
		for x0 := 0; x0 < n; x0++ {
			for x1 := 0; x1 < n; x1++ {
				for x2 := 0; x2 < n; x2++ {
					for x3 := 0; x3 < n; x3++ {
						idx = [4]int{x0, x1, x2, x3}
						newIdx := idx[pos] // the produced index value
						var prev VID = -1
						for r := 0; r < n; r++ { // reduction index
							sidx := idx
							sidx[pos] = r
							srcV := src[Idx4(n, sidx[0], sidx[1], sidx[2], sidx[3])]
							bV := b[newIdx*n+r]
							name := fmt.Sprintf("%s[%d,%d,%d,%d]r%d", tag, x0, x1, x2, x3, r)
							if prev < 0 {
								prev = g.AddOp(name, srcV, bV)
							} else {
								prev = g.AddOp(name, prev, srcV, bV)
							}
						}
						dst[Idx4(n, x0, x1, x2, x3)] = prev
					}
				}
			}
		}
		return dst
	}
	f.O1 = contract(f.A, f.B[0], "O1", 0)
	f.O2 = contract(f.O1, f.B[1], "O2", 1)
	f.O3 = contract(f.O2, f.B[2], "O3", 2)
	f.C = contract(f.O3, f.B[3], "C", 3)
	for _, v := range f.C {
		g.MarkOutput(v)
	}
	return f
}

// Contraction is the CDAG of ONE tensor contraction of the chain,
// O1[a, j, k, l] = sum_i A[i, j, k, l] * B[a, i], with the O1 elements
// as outputs — the object of the paper's Listing 5, whose schedule
// achieves I/O exactly |A| + |B| + |O1| once S >= n^2 + n + 1.
type Contraction struct {
	G  *Graph
	N  int
	A  []VID // inputs, [i,j,k,l]
	B  []VID // inputs, [a,i]
	O1 []VID // outputs, [a,j,k,l] (chain finals)
}

// BuildContraction constructs the single-contraction CDAG at extent n.
func BuildContraction(n int) *Contraction {
	g := NewGraph()
	c := &Contraction{G: g, N: n}
	c.A = make([]VID, n*n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l < n; l++ {
					c.A[Idx4(n, i, j, k, l)] = g.AddInput(fmt.Sprintf("A[%d,%d,%d,%d]", i, j, k, l))
				}
			}
		}
	}
	c.B = make([]VID, n*n)
	for a := 0; a < n; a++ {
		for i := 0; i < n; i++ {
			c.B[a*n+i] = g.AddInput(fmt.Sprintf("B[%d,%d]", a, i))
		}
	}
	c.O1 = make([]VID, n*n*n*n)
	for a := 0; a < n; a++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l < n; l++ {
					var prev VID = -1
					for i := 0; i < n; i++ {
						name := fmt.Sprintf("O1[%d,%d,%d,%d]i%d", a, j, k, l, i)
						if prev < 0 {
							prev = g.AddOp(name, c.A[Idx4(n, i, j, k, l)], c.B[a*n+i])
						} else {
							prev = g.AddOp(name, prev, c.A[Idx4(n, i, j, k, l)], c.B[a*n+i])
						}
					}
					c.O1[Idx4(n, a, j, k, l)] = prev
					g.MarkOutput(prev)
				}
			}
		}
	}
	return c
}
