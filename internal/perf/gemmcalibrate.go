package perf

import (
	"fmt"
	"strings"
	"time"

	"fourindex/internal/blas"
)

// StrassenPoint is one rung of the Strassen calibration ladder: the
// blocked classical kernel timed against one level of Strassen-Winograd
// recursion at a square n x n x n product.
type StrassenPoint struct {
	// N is the square product dimension.
	N int `json:"n"`
	// ClassicSeconds is the best Dgemm time; StrassenSeconds the best
	// DgemmStrassen time with the crossover forced to n/2 (exactly one
	// recursion level, the marginal decision the crossover makes).
	ClassicSeconds  float64 `json:"classicSeconds"`
	StrassenSeconds float64 `json:"strassenSeconds"`
	// Ratio is ClassicSeconds / StrassenSeconds: above 1.0 the
	// recursion beat the blocked kernel at this size.
	Ratio float64 `json:"ratio"`
}

// StrassenCalibration is the crossover autotune result recorded in the
// benchmark artifact: the full measured ladder plus the picked
// crossover. Timings are machine-dependent; Gate compares only the
// ladder's sizes, never its timings or the pick.
type StrassenCalibration struct {
	Sizes []StrassenPoint `json:"sizes"`
	// Crossover is the smallest ladder size at which Strassen won and
	// kept winning at every larger size, or -1 when the recursion never
	// paid off on this machine. A run wanting the tuned threshold calls
	// blas.SetStrassenCrossover(Crossover - 1) so dimensions >= the
	// winning size recurse.
	Crossover int `json:"crossover"`
}

// DefaultStrassenLadder is the calibration sweep's size ladder. The top
// rung deliberately exceeds the largest gemmbench size so the artifact
// demonstrates the above-crossover win.
func DefaultStrassenLadder() []int { return []int{128, 192, 256, 384, 512, 768} }

// CalibrateStrassen times the classic blocked kernel against one level
// of Strassen-Winograd recursion at each ladder size (best of trials)
// and picks the crossover deterministically from the measurements: the
// smallest size that wins together with every larger size. The
// process-wide crossover is saved and restored around the sweep.
func CalibrateStrassen(sizes []int, trials int) StrassenCalibration {
	if trials <= 0 {
		trials = gemmBenchTrials
	}
	cal := StrassenCalibration{Crossover: -1}
	prev := blas.StrassenCrossover()
	defer blas.SetStrassenCrossover(prev)
	for _, n := range sizes {
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		c := make([]float64, n*n)
		for i := range a {
			a[i] = float64(i%13) - 6
		}
		for i := range b {
			b[i] = float64(i%7) - 3
		}
		classic := func() {
			blas.Dgemm(false, false, n, n, n, 1, a, n, b, n, 0, c, n)
		}
		strassen := func() {
			blas.SetStrassenCrossover(n / 2)
			blas.DgemmStrassen(false, false, n, n, n, 1, a, n, b, n, 0, c, n)
			blas.SetStrassenCrossover(prev)
		}
		timed := func(f func()) float64 {
			start := time.Now()
			f()
			return time.Since(start).Seconds()
		}
		// One untimed warmup each (buffer-pool population, cache state),
		// then interleaved best-of-trials: alternating the variants per
		// round means slow drift in machine load degrades both sides
		// evenly instead of whichever happened to run second.
		classic()
		strassen()
		pt := StrassenPoint{N: n}
		for trial := 0; trial < trials; trial++ {
			if w := timed(classic); trial == 0 || w < pt.ClassicSeconds {
				pt.ClassicSeconds = w
			}
			if w := timed(strassen); trial == 0 || w < pt.StrassenSeconds {
				pt.StrassenSeconds = w
			}
		}
		if pt.StrassenSeconds > 0 {
			pt.Ratio = pt.ClassicSeconds / pt.StrassenSeconds
		}
		cal.Sizes = append(cal.Sizes, pt)
	}
	// Smallest size from which Strassen wins monotonically upward.
	for i := len(cal.Sizes) - 1; i >= 0; i-- {
		if cal.Sizes[i].Ratio <= 1 {
			break
		}
		cal.Crossover = cal.Sizes[i].N
	}
	return cal
}

// String renders the calibration for the bench subcommand's summary.
func (c StrassenCalibration) String() string {
	var sb strings.Builder
	sb.WriteString("strassen crossover sweep (classic/strassen, >1 = strassen wins):\n")
	for _, p := range c.Sizes {
		fmt.Fprintf(&sb, "  n=%-4d classic %8.3fms  strassen %8.3fms  ratio %.3f\n",
			p.N, 1e3*p.ClassicSeconds, 1e3*p.StrassenSeconds, p.Ratio)
	}
	if c.Crossover < 0 {
		sb.WriteString("  picked crossover: none (strassen never won)")
	} else {
		fmt.Fprintf(&sb, "  picked crossover: %d", c.Crossover)
	}
	return sb.String()
}
