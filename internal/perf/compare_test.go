package perf

import (
	"strings"
	"testing"
)

func mkPoint(scheme string, wall float64) Point {
	p := Point{
		Kind: "execute", Scheme: scheme, N: 16, Procs: 2, Gomaxprocs: 1,
		Flops: 1000, BytesMoved: 8000, Messages: 10, PeakGlobalBytes: 4096,
	}
	if wall > 0 {
		p.Measured = &Measured{WallSeconds: wall}
	}
	return p
}

func mkReport(points ...Point) *Report {
	return &Report{SchemaVersion: SchemaVersion, Points: points}
}

func TestGatePassesIdenticalReports(t *testing.T) {
	cur := mkReport(mkPoint("unfused", 0.1), mkPoint("hybrid", 0.2))
	base := mkReport(mkPoint("unfused", 0.1), mkPoint("hybrid", 0.2))
	v, err := Gate(cur, base, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("identical reports gated: %v", v)
	}
}

func TestGateNormalisesMachineSpeed(t *testing.T) {
	// Current machine is uniformly 2x slower: every ratio is 2.0, the
	// median normalisation absorbs it, no violation.
	cur := mkReport(mkPoint("unfused", 0.2), mkPoint("hybrid", 0.4), mkPoint("fullyfused", 0.6))
	base := mkReport(mkPoint("unfused", 0.1), mkPoint("hybrid", 0.2), mkPoint("fullyfused", 0.3))
	v, err := Gate(cur, base, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("uniform slowdown gated: %v", v)
	}
}

func TestGateCatchesSingleRegression(t *testing.T) {
	// One schedule regressed 2x while the others held: the median stays
	// at 1.0 and the regressed point must fail.
	cur := mkReport(mkPoint("unfused", 0.1), mkPoint("hybrid", 0.4), mkPoint("fullyfused", 0.3))
	base := mkReport(mkPoint("unfused", 0.1), mkPoint("hybrid", 0.2), mkPoint("fullyfused", 0.3))
	v, err := Gate(cur, base, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "hybrid") || !strings.Contains(v[0], "wall time regressed") {
		t.Errorf("violations = %v, want one hybrid wall-time regression", v)
	}
}

func TestGateCatchesDeterministicDrift(t *testing.T) {
	reg := mkPoint("unfused", 0.1)
	reg.BytesMoved = 12000 // 50% more movement than baseline
	cur := mkReport(reg)
	base := mkReport(mkPoint("unfused", 0.1))
	v, err := Gate(cur, base, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "bytesMoved") {
		t.Errorf("violations = %v, want one bytesMoved drift", v)
	}
}

func TestGateCatchesExposedCommFractionDrift(t *testing.T) {
	// The overlap pipeline regressed: more transfer time is exposed than
	// the baseline recorded, and the gate must flag it even though every
	// other deterministic field matches.
	reg := mkPoint("fullyfused", 0.1)
	reg.Overlap = true
	reg.ExposedCommFraction = 0.9
	b := mkPoint("fullyfused", 0.1)
	b.Overlap = true
	b.ExposedCommFraction = 0.6
	v, err := Gate(mkReport(reg), mkReport(b), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "exposedCommFraction") {
		t.Errorf("violations = %v, want one exposedCommFraction drift", v)
	}
}

func TestGateKeysOverlapSeparately(t *testing.T) {
	// Overlap on and off are distinct matrix cells: a current overlap
	// point must not match a baseline non-overlap point.
	cur := mkPoint("unfused", 0.1)
	cur.Overlap = true
	if _, err := Gate(mkReport(cur), mkReport(mkPoint("unfused", 0.1)), 0.15); err == nil || !strings.Contains(err.Error(), "no baseline") {
		t.Errorf("err = %v, want missing-baseline error for the overlap cell", err)
	}
}

func TestGateSkipsNoisePoints(t *testing.T) {
	// Sub-minGateWall points regress 10x without tripping the gate.
	cur := mkReport(mkPoint("unfused", 0.04), mkPoint("hybrid", 0.2))
	base := mkReport(mkPoint("unfused", 0.004), mkPoint("hybrid", 0.2))
	v, err := Gate(cur, base, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("noise point gated: %v", v)
	}
}

func TestGateMissingBaselinePointErrors(t *testing.T) {
	cur := mkReport(mkPoint("unfused", 0.1), mkPoint("fused123-4", 0.1))
	base := mkReport(mkPoint("unfused", 0.1))
	if _, err := Gate(cur, base, 0.15); err == nil || !strings.Contains(err.Error(), "no baseline") {
		t.Errorf("err = %v, want missing-baseline error", err)
	}
}

func TestGateSubsetCurrentAllowed(t *testing.T) {
	// A smoke run (subset) gated against the full baseline must pass.
	cur := mkReport(mkPoint("unfused", 0.1))
	base := mkReport(mkPoint("unfused", 0.1), mkPoint("hybrid", 0.2))
	v, err := Gate(cur, base, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("subset current gated: %v", v)
	}
}

func TestGateSchemaMismatchErrors(t *testing.T) {
	cur := mkReport(mkPoint("unfused", 0.1))
	base := mkReport(mkPoint("unfused", 0.1))
	base.SchemaVersion = SchemaVersion + 1
	if _, err := Gate(cur, base, 0.15); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("err = %v, want schema-version error", err)
	}
}
