package perf

import "testing"

// TestNbAllocDeltaBounded is the overlap allocation-regression gate:
// the overlapped nonblocking path may allocate a handle and little else
// per operation beyond the blocking path. The pre-pooling path spawned
// a goroutine, a channel and a closure per operation (≈5-7 extra
// allocations each) and tripped this bound immediately.
func TestNbAllocDeltaBounded(t *testing.T) {
	res, err := BenchNbAlloc(3, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("blocking %d allocs, overlap %d allocs, delta %.2f/op",
		res.BlockingAllocs, res.OverlapAllocs, res.DeltaPerOp)
	if res.DeltaPerOp > 3 {
		t.Errorf("overlap path allocates %.2f more objects per op than blocking (want <= 3): %+v",
			res.DeltaPerOp, res)
	}
}
