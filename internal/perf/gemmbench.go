package perf

import (
	"fmt"
	"time"

	"fourindex/internal/blas"
)

// GemmTransBResult reports the transposed-B GEMM microbenchmark:
// C += A*B with B stored untransposed (the contiguous baseline) versus
// C += A*B^T through the panel-packing path gemmBlocked dispatches to.
// Both products perform identical flop counts, so the ratio isolates
// the cost of the transposed operand layout; before panel packing the
// B^T walk strided by the leading dimension on every inner-loop step
// and this ratio sat far above 1. Wall-clock quantities; Measure only.
type GemmTransBResult struct {
	// M, N, K are the product dimensions (op(A) is M x K, op(B) K x N).
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`
	// NoTransSeconds is the best time of the untransposed-B product;
	// TransBSeconds the best time of the B^T (packed-panel) product.
	NoTransSeconds float64 `json:"noTransSeconds"`
	TransBSeconds  float64 `json:"transBSeconds"`
	// Ratio is TransBSeconds / NoTransSeconds (1.0 = packing fully
	// recovers the contiguous inner loop).
	Ratio float64 `json:"ratio"`
}

// gemmBenchTrials is the best-of count for each variant's timing.
const gemmBenchTrials = 3

// BenchGemmTransB times Dgemm with transB off and on at the given
// dimensions. The matrices are filled deterministically; only timings
// leave the function.
func BenchGemmTransB(m, n, k int) GemmTransBResult {
	a := make([]float64, m*k)
	b := make([]float64, k*n) // also read as the n x k matrix whose transpose is k x n
	c := make([]float64, m*n)
	for i := range a {
		a[i] = float64(i%13) - 6
	}
	for i := range b {
		b[i] = float64(i%7) - 3
	}

	run := func(transB bool, ldb int) float64 {
		best := 0.0
		for trial := 0; trial < gemmBenchTrials; trial++ {
			start := time.Now()
			blas.Dgemm(false, transB, m, n, k, 1, a, k, b, ldb, 0, c, n)
			wall := time.Since(start).Seconds()
			if trial == 0 || wall < best {
				best = wall
			}
		}
		return best
	}

	res := GemmTransBResult{M: m, N: n, K: k}
	res.NoTransSeconds = run(false, n)
	res.TransBSeconds = run(true, k)
	if res.NoTransSeconds > 0 {
		res.Ratio = res.TransBSeconds / res.NoTransSeconds
	}
	return res
}

// String renders the result for the bench subcommand's summary.
func (r GemmTransBResult) String() string {
	return fmt.Sprintf("gemm B^T:  %dx%dx%d: noTrans %.3fms, transB %.3fms (%.2fx)",
		r.M, r.N, r.K, 1e3*r.NoTransSeconds, 1e3*r.TransBSeconds, r.Ratio)
}
