package perf

import (
	"fmt"

	"fourindex/internal/experiments"
	"fourindex/internal/fourindex"
)

// tunerGateSchemes is the schedule set the frontier tuner competes over
// in the gate: every benchmarked schedule with a frontier model. Hybrid
// is a driver over unfused and fullyfused-inner (both present), and
// Recompute is excluded from the cost matrix, so the set dominates every
// cost point's best.
func tunerGateSchemes() []fourindex.Scheme {
	return []fourindex.Scheme{
		fourindex.Unfused, fourindex.Fused1234Pair, fourindex.NWChemFused,
		fourindex.Fused123, fourindex.FullyFused, fourindex.FullyFusedInner,
	}
}

// TunerGateResult records one cost point's frontier-tuner check.
type TunerGateResult struct {
	// Molecule, System and Cores identify the cost point.
	Molecule string
	System   string
	Cores    int
	// BaselineSeconds is the fastest simulated time any benchmarked
	// schedule recorded at the point in the baseline report.
	BaselineSeconds float64
	// BaselineScheme is the schedule that recorded it.
	BaselineScheme string
	// PickSeconds is the frontier tuner's pick at the point.
	PickSeconds float64
	// Pick is the tuner's chosen configuration.
	Pick fourindex.TunePoint
	// Simulated and FullSpace count cost simulations the tuner ran vs
	// what a brute-force sweep of the same space would run.
	Simulated, FullSpace int
}

// TunerGate checks the frontier-driven tuner against the checked-in
// benchmark baseline: for every cost point in the report, the tuner's
// pick must simulate at least as fast as the fastest schedule the
// benchmark matrix recorded there. It returns the per-point results and
// the violations found (empty = pass).
//
// The gate is exact up to floating-point slack: the tuner and the
// benchmark drive the same deterministic cost model, and the tuner's
// candidate space always contains the benchmark's own tiling knobs, so
// a slower pick means the shortlist dropped the winner — a real tuner
// regression, not noise.
func TunerGate(base *Report) ([]TunerGateResult, []string, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("perf: TunerGate needs a baseline report")
	}
	if base.SchemaVersion != SchemaVersion {
		return nil, nil, fmt.Errorf("perf: schema version mismatch: baseline %d, want %d (regenerate with `make bench`)",
			base.SchemaVersion, SchemaVersion)
	}

	// Collect cost points into per-(molecule, system, cores) groups in
	// first-seen report order (deterministic: reports are ordered).
	type groupKey struct {
		molecule, system string
		cores            int
	}
	var order []groupKey
	best := map[groupKey]Point{}
	for _, p := range base.Points {
		if p.Kind != "cost" || p.SimSeconds <= 0 {
			continue
		}
		k := groupKey{p.Molecule, p.System, p.Procs}
		b, seen := best[k]
		if !seen {
			order = append(order, k)
		}
		if !seen || p.SimSeconds < b.SimSeconds {
			best[k] = p
		}
	}
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("perf: baseline has no cost points to gate against")
	}

	var results []TunerGateResult
	var violations []string
	for _, k := range order {
		opt, err := experiments.BenchOptions(k.molecule, k.system, k.cores)
		if err != nil {
			return nil, nil, err
		}
		// The candidate grid is the benchmark's own tiling knobs (the
		// baseline best lives exactly there) — the gate checks schedule
		// selection and pruning, not tile exploration, and stays fast
		// enough for CI.
		space := fourindex.TuneSpace{
			Schemes:   tunerGateSchemes(),
			TileNs:    []int{opt.TileN},
			TileLs:    []int{opt.TileL},
			AlphaPars: []int{opt.AlphaPar},
			LPars:     []int{max(1, opt.LPar)},
		}
		ft, err := fourindex.TuneFrontier(opt, space, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("perf: tuning %s/%s/%d: %w", k.molecule, k.system, k.cores, err)
		}
		b := best[k]
		r := TunerGateResult{
			Molecule:        k.molecule,
			System:          k.system,
			Cores:           k.cores,
			BaselineSeconds: b.SimSeconds,
			BaselineScheme:  b.Scheme,
			PickSeconds:     ft.Pick.Seconds,
			Pick:            ft.Pick,
			Simulated:       ft.Simulated,
			FullSpace:       ft.FullSpace,
		}
		results = append(results, r)
		if r.PickSeconds > r.BaselineSeconds*(1+1e-9) {
			violations = append(violations, fmt.Sprintf(
				"%s/%s/%d: frontier pick %s %.4fs slower than benchmark best %s %.4fs",
				k.molecule, k.system, k.cores, ft.Pick.Scheme, r.PickSeconds,
				r.BaselineScheme, r.BaselineSeconds))
		}
	}
	return results, violations, nil
}
