// Package perf is the reproducible benchmark harness: it runs a fixed
// matrix of {schedule} x {execute-mode sizes, cost-mode molecules} x
// {GOMAXPROCS points}, records the deterministic accounting every run
// produces (flops, elements moved, messages, peak memory, simulated
// seconds, bound attainment from the trace audit) and — optionally —
// measured wall time and allocations, and emits a schema-versioned JSON
// report (BENCH_fouridx.json at the repo root).
//
// The report splits cleanly into two layers:
//
//   - Deterministic fields are identical on every machine and every run
//     (the cost/execute equivalence the runtime's counters guarantee).
//     With Config.Measure off the whole report is byte-stable, which the
//     determinism and golden-file tests pin.
//
//   - The optional "measured" sub-object carries wall-clock quantities.
//     These are machine-dependent; the regression gate (Gate) normalises
//     them by the median ratio across points before applying its
//     tolerance, so a uniformly faster or slower machine does not trip
//     the gate while a single regressed schedule does.
//
// perf is the one non-main package permitted to read the wall clock
// (enforced by the metricsdiscipline analyzer): benchmarking is its
// entire purpose.
package perf

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"fourindex/internal/chem"
	"fourindex/internal/experiments"
	"fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/trace"
)

// SchemaVersion is bumped whenever the JSON report shape changes
// incompatibly; Gate refuses to compare across versions. Version 2
// added the overlap axis (each matrix cell runs with the nonblocking
// communication path off and on) and the exposed-comm fraction.
// Version 3 added the Strassen axis on execute points and the
// crossover-calibration block.
const SchemaVersion = 3

// benchSeed fixes the integral-generator seed for every benchmark run.
const benchSeed = 7

// ExecutePoint is one execute-mode problem size in the matrix.
type ExecutePoint struct {
	// N is the orbital count (real arithmetic, so kept small).
	N int
	// Procs is the number of GA processes.
	Procs int
}

// CostPoint is one cost-mode molecule/machine point in the matrix.
type CostPoint struct {
	// Molecule names a benchmark molecule (chem.Catalog).
	Molecule string
	// System is the cluster model ("A", "B" or "C").
	System string
	// Cores is the simulated core count.
	Cores int
}

// Config selects the benchmark matrix.
type Config struct {
	// Schemes to run at every execute point. Empty selects all eight.
	Schemes []fourindex.Scheme
	// CostSchemes to run at every cost point. Empty selects all but
	// Recompute, whose element-level n^6 loops are prohibitive at
	// molecule scale (the same exclusion Figure 2 makes).
	CostSchemes []fourindex.Scheme
	// ExecutePoints are the execute-mode sizes.
	ExecutePoints []ExecutePoint
	// CostPoints are the cost-mode molecule points.
	CostPoints []CostPoint
	// Gomaxprocs sweeps runtime.GOMAXPROCS over execute points (cost
	// points simulate their own parallelism and run at the ambient
	// setting). Empty selects {1, 4}.
	Gomaxprocs []int
	// Overlap sweeps Options.Overlap over every point: off exercises the
	// blocking verbs, on the nonblocking double-buffered path. Empty
	// selects {false, true}, which pins the overlap win (cost-mode
	// simulated seconds and the exposed-comm fraction) in the baseline.
	Overlap []bool
	// Strassen sweeps Options.Strassen over execute points (cost points
	// charge identical classical flops either way, so the axis would
	// only duplicate them). Empty selects {false, true}.
	Strassen []bool
	// Calibrate runs the Strassen crossover sweep (CalibrateStrassen)
	// and records it in the report. Full benchmark runs only — the
	// sweep's large GEMMs dominate a smoke run's budget.
	Calibrate bool
	// Measure records wall time and allocations (and the read-path and
	// transposed-B GEMM microbenchmarks). Off, the report is fully
	// deterministic.
	Measure bool
	// Repeats is how many timed repetitions each measured point runs;
	// the minimum wall time is reported (default 3).
	Repeats int
}

// DefaultConfig is the full checked-in matrix behind BENCH_fouridx.json.
func DefaultConfig() Config {
	return Config{
		ExecutePoints: []ExecutePoint{{N: 16, Procs: 2}, {N: 24, Procs: 4}, {N: 24, Procs: 8}},
		CostPoints: []CostPoint{
			{Molecule: "Hyperpolar", System: "A", Cores: 32},
			{Molecule: "Hyperpolar", System: "B", Cores: 140},
			{Molecule: "C60H20", System: "B", Cores: 140},
		},
		Gomaxprocs: []int{1, 4},
		Measure:    true,
		Calibrate:  true,
		Repeats:    3,
	}
}

// SmokeConfig is a strict subset of DefaultConfig sized for CI: every
// scheme still runs, at the smallest execute and cost points only, so
// Gate can compare a smoke run against the full checked-in baseline.
// The extra repeats buy a stabler minimum on shared CI machines — the
// smoke points are small, so five repetitions still finish in seconds.
func SmokeConfig() Config {
	return Config{
		ExecutePoints: []ExecutePoint{{N: 16, Procs: 2}},
		CostPoints:    []CostPoint{{Molecule: "Hyperpolar", System: "A", Cores: 32}},
		Gomaxprocs:    []int{1},
		Measure:       true,
		Repeats:       5,
	}
}

// Measured carries the machine-dependent quantities of one point. It is
// present only when Config.Measure was set.
type Measured struct {
	// WallSeconds is the minimum wall time over the configured repeats.
	WallSeconds float64 `json:"wallSeconds"`
	// FlopsPerSec is Flops / WallSeconds (execute points only; cost
	// points count simulated flops the host never performs).
	FlopsPerSec float64 `json:"flopsPerSec,omitempty"`
	// AllocBytes and Allocs are the heap-allocation deltas of one run.
	AllocBytes int64 `json:"allocBytes"`
	Allocs     int64 `json:"allocs"`
}

// Point is one completed cell of the benchmark matrix.
type Point struct {
	// Kind is "execute" or "cost".
	Kind string `json:"kind"`
	// Scheme is the schedule name (fourindex.Scheme.String).
	Scheme string `json:"scheme"`
	// N is the orbital count (execute points).
	N int `json:"n,omitempty"`
	// Molecule and System identify a cost point.
	Molecule string `json:"molecule,omitempty"`
	System   string `json:"system,omitempty"`
	// Procs is the GA process count (simulated cores for cost points).
	Procs int `json:"procs"`
	// Gomaxprocs is the host parallelism the point ran at (execute
	// points; 0 for cost points).
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
	// Overlap reports whether the point ran with the nonblocking
	// communication path (Options.Overlap).
	Overlap bool `json:"overlap,omitempty"`
	// Strassen reports whether the point routed its contraction GEMMs
	// through the Strassen-Winograd path (Options.Strassen; execute
	// points only).
	Strassen bool `json:"strassen,omitempty"`

	// Deterministic accounting, identical across machines and runs.
	Flops           int64   `json:"flops"`
	CommElements    int64   `json:"commElements"`
	IntraElements   int64   `json:"intraElements"`
	DiskElements    int64   `json:"diskElements"`
	Messages        int64   `json:"messages"`
	PeakGlobalBytes int64   `json:"peakGlobalBytes"`
	BytesMoved      int64   `json:"bytesMoved"`
	SimSeconds      float64 `json:"simSeconds,omitempty"`
	// ExposedCommFraction is exposed transfer time over total transfer
	// time (cost points with a machine model; 1 with Overlap off, lower
	// as the nonblocking verbs hide transfers behind compute). Gated
	// deterministically: a drift means the overlap pipeline changed.
	ExposedCommFraction float64 `json:"exposedCommFraction,omitempty"`
	// Attained is the aggregate bound-vs-actual fraction from the trace
	// audit (sum of per-phase lower bounds over actual elements moved,
	// memory-independent floor), 0 when no phase was auditable.
	Attained float64 `json:"attained,omitempty"`

	// Measured is nil unless Config.Measure was set.
	Measured *Measured `json:"measured,omitempty"`
}

// Key identifies a point across reports (for baseline comparison). The
// Strassen suffix appears only on Strassen points, so classic-path keys
// are stable across the schema-2 to schema-3 transition.
func (p Point) Key() string {
	ov := 0
	if p.Overlap {
		ov = 1
	}
	st := ""
	if p.Strassen {
		st = "/st1"
	}
	return fmt.Sprintf("%s/%s/n%d/%s%s/p%d/g%d/o%d%s",
		p.Kind, p.Scheme, p.N, p.Molecule, p.System, p.Procs, p.Gomaxprocs, ov, st)
}

// Report is the schema-versioned benchmark output.
type Report struct {
	SchemaVersion int     `json:"schemaVersion"`
	Points        []Point `json:"points"`
	// ReadPath is the GetT read-path microbenchmark (Measure only).
	ReadPath *ReadPathResult `json:"readPath,omitempty"`
	// GemmTransB is the transposed-B GEMM microbenchmark (Measure only).
	GemmTransB *GemmTransBResult `json:"gemmTransB,omitempty"`
	// Strassen is the crossover calibration sweep (Calibrate only).
	Strassen *StrassenCalibration `json:"strassen,omitempty"`
}

// withDefaults fills the config's empty fields.
func (c Config) withDefaults() Config {
	if len(c.Schemes) == 0 {
		c.Schemes = []fourindex.Scheme{
			fourindex.Unfused, fourindex.Fused1234Pair, fourindex.Recompute,
			fourindex.FullyFused, fourindex.FullyFusedInner, fourindex.Hybrid,
			fourindex.NWChemFused, fourindex.Fused123,
		}
	}
	if len(c.CostSchemes) == 0 {
		for _, s := range c.Schemes {
			if s != fourindex.Recompute {
				c.CostSchemes = append(c.CostSchemes, s)
			}
		}
	}
	if len(c.Gomaxprocs) == 0 {
		c.Gomaxprocs = []int{1, 4}
	}
	if len(c.Overlap) == 0 {
		c.Overlap = []bool{false, true}
	}
	if len(c.Strassen) == 0 {
		c.Strassen = []bool{false, true}
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// Run executes the benchmark matrix and returns the report. The matrix
// order is fixed (gomaxprocs, then point, then scheme, then overlap;
// cost points after execute points) so reports are comparable line by
// line. Run never cancels; RunContext adds cooperative cancellation.
func Run(cfg Config) (*Report, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: ctx is polled before
// every matrix point (and each point's transform polls at its own slab
// boundaries), returning an error wrapping fourindex.ErrCanceled —
// never a partial report — once ctx is done.
func RunContext(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{SchemaVersion: SchemaVersion}

	for _, gmp := range cfg.Gomaxprocs {
		prev := runtime.GOMAXPROCS(gmp)
		for _, ep := range cfg.ExecutePoints {
			for _, s := range cfg.Schemes {
				for _, ov := range cfg.Overlap {
					for _, st := range cfg.Strassen {
						pt, err := runExecutePoint(ctx, s, ep, gmp, ov, st, cfg)
						if err != nil {
							runtime.GOMAXPROCS(prev)
							return nil, err
						}
						rep.Points = append(rep.Points, pt)
					}
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}

	for _, cp := range cfg.CostPoints {
		for _, s := range cfg.CostSchemes {
			for _, ov := range cfg.Overlap {
				pt, err := runCostPoint(ctx, s, cp, ov, cfg)
				if err != nil {
					return nil, err
				}
				rep.Points = append(rep.Points, pt)
			}
		}
	}

	if cfg.Measure {
		// A small tile keeps the copy cheap so the measurement contrasts
		// the lock acquisition itself (the contended cost the frozen fast
		// path removes) rather than memcpy throughput.
		rp, err := BenchReadPath(8, 5000, 8)
		if err != nil {
			return nil, err
		}
		rep.ReadPath = &rp
		gb := BenchGemmTransB(192, 192, 192)
		rep.GemmTransB = &gb
	}
	if cfg.Calibrate {
		cal := CalibrateStrassen(DefaultStrassenLadder(), cfg.Repeats)
		rep.Strassen = &cal
	}
	return rep, nil
}

// executeOptions builds the Options one execute point runs with.
func executeOptions(ep ExecutePoint) (fourindex.Options, error) {
	spec, err := chem.NewSpec(ep.N, 1, benchSeed)
	if err != nil {
		return fourindex.Options{}, err
	}
	return fourindex.Options{Spec: spec, Procs: ep.Procs, Mode: ga.Execute}, nil
}

func runExecutePoint(ctx context.Context, s fourindex.Scheme, ep ExecutePoint, gmp int, overlap, strassen bool, cfg Config) (Point, error) {
	opt, err := executeOptions(ep)
	if err != nil {
		return Point{}, err
	}
	opt.Overlap = overlap
	opt.Strassen = strassen
	pt := Point{Kind: "execute", Scheme: s.String(), N: ep.N, Procs: ep.Procs, Gomaxprocs: gmp, Overlap: overlap, Strassen: strassen}
	if err := fillPoint(ctx, &pt, s, opt, ep.N, 1, cfg); err != nil {
		if errors.Is(err, fourindex.ErrCanceled) {
			return Point{}, err
		}
		return Point{}, fmt.Errorf("perf: execute %s n=%d procs=%d: %w", s, ep.N, ep.Procs, err)
	}
	return pt, nil
}

func runCostPoint(ctx context.Context, s fourindex.Scheme, cp CostPoint, overlap bool, cfg Config) (Point, error) {
	opt, err := experiments.BenchOptions(cp.Molecule, cp.System, cp.Cores)
	if err != nil {
		return Point{}, err
	}
	opt.Overlap = overlap
	pt := Point{Kind: "cost", Scheme: s.String(), Molecule: cp.Molecule, System: cp.System, Procs: cp.Cores, Overlap: overlap}
	if err := fillPoint(ctx, &pt, s, opt, opt.Spec.N, experiments.SpatialSymmetry, cfg); err != nil {
		if errors.Is(err, fourindex.ErrCanceled) {
			return Point{}, err
		}
		return Point{}, fmt.Errorf("perf: cost %s %s/%s/%d: %w", s, cp.Molecule, cp.System, cp.Cores, err)
	}
	return pt, nil
}

// fillPoint runs one traced pass for the deterministic accounting plus,
// under cfg.Measure, untraced timed repetitions for the wall-clock
// fields (tracer overhead stays out of the measurement).
func fillPoint(ctx context.Context, pt *Point, s fourindex.Scheme, opt fourindex.Options, n, symFactor int, cfg Config) error {
	tr := trace.New(0)
	opt.Trace = tr
	res, err := fourindex.RunContext(ctx, s, opt)
	if err != nil {
		return err
	}
	pt.Flops = res.Totals.Flops
	pt.CommElements = res.CommVolume
	pt.IntraElements = res.IntraVolume
	pt.DiskElements = res.DiskVolume
	pt.Messages = res.Totals.CommMessages
	pt.PeakGlobalBytes = res.PeakGlobalBytes
	pt.BytesMoved = 8 * (res.CommVolume + res.IntraVolume + res.DiskVolume)
	pt.SimSeconds = res.ElapsedSeconds
	if total := res.ExposedCommSeconds + res.OverlapCommSeconds; total > 0 {
		pt.ExposedCommFraction = res.ExposedCommSeconds / total
	}
	pt.Attained = aggregateAttained(tr.Audit(n, symFactor, 0))

	if !cfg.Measure {
		return nil
	}
	opt.Trace = nil
	var ms0, ms1 runtime.MemStats
	best := 0.0
	for r := 0; r < cfg.Repeats; r++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if _, err := fourindex.RunContext(ctx, s, opt); err != nil {
			return err
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		if r == 0 || wall < best {
			best = wall
		}
		if r == 0 {
			pt.Measured = &Measured{
				AllocBytes: int64(ms1.TotalAlloc - ms0.TotalAlloc),
				Allocs:     int64(ms1.Mallocs - ms0.Mallocs),
			}
		}
	}
	pt.Measured.WallSeconds = best
	if pt.Kind == "execute" && best > 0 {
		pt.Measured.FlopsPerSec = float64(pt.Flops) / best
	}
	return nil
}

// aggregateAttained collapses the per-phase audit into one fraction:
// total lower-bound elements over total actual elements moved.
func aggregateAttained(rows []trace.AuditRow) float64 {
	var bound, actual float64
	for _, r := range rows {
		if r.ActualElems > 0 {
			bound += r.BoundElems
			actual += float64(r.ActualElems)
		}
	}
	if actual == 0 {
		return 0
	}
	return bound / actual
}
