package perf

import (
	"runtime"

	"fourindex/internal/ga"
	"fourindex/internal/tile"
)

// NbAllocResult reports the nonblocking-verb allocation microbenchmark:
// the heap-allocation cost of issuing and waiting NbAccT/NbGetT pairs
// with overlap off (where the verbs degrade to their blocking
// equivalents) versus on (staging copies plus the per-process apply
// worker). The overlap path's per-operation delta is the quantity the
// staging pools and the single-worker applier exist to keep bounded —
// before them, every operation allocated a goroutine, a channel and a
// closure and the delta sat several times higher.
type NbAllocResult struct {
	// Procs and OpsPerProc size the hammering region; each op is one
	// NbAccT+Wait followed by one NbGetT+Wait on the process's own tile.
	Procs      int `json:"procs"`
	OpsPerProc int `json:"opsPerProc"`
	// TileWords is each tile's element count.
	TileWords int `json:"tileWords"`
	// BlockingAllocs and OverlapAllocs are the measured region's heap
	// allocation counts with Overlap off and on (pools warmed first).
	BlockingAllocs int64 `json:"blockingAllocs"`
	OverlapAllocs  int64 `json:"overlapAllocs"`
	// DeltaPerOp is (OverlapAllocs - BlockingAllocs) per individual
	// verb+Wait pair.
	DeltaPerOp float64 `json:"deltaPerOp"`
}

// BenchNbAlloc measures the allocation delta of the overlapped
// nonblocking path against the blocking one: procs processes each issue
// opsPerProc accumulate+fetch pairs against their own dim x dim tile,
// once per overlap setting, with a warmup region populating the buffer
// pools before each measurement.
func BenchNbAlloc(procs, opsPerProc, dim int) (NbAllocResult, error) {
	res := NbAllocResult{Procs: procs, OpsPerProc: opsPerProc, TileWords: dim * dim}
	for _, overlap := range []bool{false, true} {
		allocs, err := nbAllocRegion(procs, opsPerProc, dim, overlap)
		if err != nil {
			return NbAllocResult{}, err
		}
		if overlap {
			res.OverlapAllocs = allocs
		} else {
			res.BlockingAllocs = allocs
		}
	}
	totalOps := float64(2 * procs * opsPerProc)
	res.DeltaPerOp = float64(res.OverlapAllocs-res.BlockingAllocs) / totalOps
	return res, nil
}

// nbAllocRegion runs the hammering region once for warmup and once
// measured, returning the measured region's Mallocs delta.
func nbAllocRegion(procs, opsPerProc, dim int, overlap bool) (int64, error) {
	rt, err := ga.NewRuntime(ga.Config{Procs: procs, Mode: ga.Execute, Overlap: overlap})
	if err != nil {
		return 0, err
	}
	g := tile.NewGrid(dim*procs, dim)
	h := tile.NewGrid(dim, dim)
	a, err := rt.CreateTiled("nballoc", []tile.Grid{g, h}, nil, tile.RoundRobin)
	if err != nil {
		return 0, err
	}
	defer rt.DestroyTiled(a)

	words := dim * dim
	region := func(ops int) error {
		return rt.Parallel(func(p *ga.Proc) {
			buf := p.MustAllocLocal(int64(words))
			defer p.FreeLocal(buf)
			for i := range buf.Data {
				buf.Data[i] = float64(i + p.ID())
			}
			for r := 0; r < ops; r++ {
				p.NbAccT(a, 1, buf.Data, p.ID(), 0).Wait(p)
				p.NbGetT(a, buf.Data, p.ID(), 0).Wait(p)
			}
		})
	}
	if err := region(opsPerProc); err != nil { // warmup: populate pools
		return 0, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	if err := region(opsPerProc); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&ms1)
	return int64(ms1.Mallocs - ms0.Mallocs), nil
}
