package perf

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fourindex/internal/fourindex"
)

var update = flag.Bool("update", false, "rewrite the golden benchmark report")

// goldenConfig is one tiny fully-deterministic cell: no measurement, so
// the encoded report must be byte-stable across machines and runs.
func goldenConfig() Config {
	return Config{
		Schemes:       []fourindex.Scheme{fourindex.Unfused, fourindex.FullyFusedInner},
		ExecutePoints: []ExecutePoint{{N: 12, Procs: 2}},
		Gomaxprocs:    []int{1},
	}
}

// TestGoldenReportSchema pins the report's JSON shape (field names, key
// order, schema version) and the deterministic accounting of a fixed
// execute point. Regenerate with `go test ./internal/perf -update` only
// when the schema or the schedules change intentionally.
func TestGoldenReportSchema(t *testing.T) {
	rep, err := Run(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Fatalf("SchemaVersion = %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_bench.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/perf -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("benchmark report drifted from golden (%d vs %d bytes); regenerate with -update if the schema or schedules changed intentionally",
			buf.Len(), len(want))
	}
}

// TestCostModeDeterminism runs the same cost-mode matrix twice and
// requires byte-identical reports: the simulated clock, the counters and
// the audit join must not depend on host scheduling.
func TestCostModeDeterminism(t *testing.T) {
	cfg := Config{
		Schemes:    []fourindex.Scheme{fourindex.Unfused, fourindex.Fused1234Pair},
		CostPoints: []CostPoint{{Molecule: "Hyperpolar", System: "A", Cores: 32}},
		Gomaxprocs: []int{1},
	}
	encode := func() []byte {
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Errorf("two cost-mode runs encoded differently (%d vs %d bytes)", len(a), len(b))
	}
}

// TestRoundTrip checks Decode inverts Encode.
func TestRoundTrip(t *testing.T) {
	rep, err := Run(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), buf.Bytes()...)
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, buf2.Bytes()) {
		t.Error("Decode(Encode(r)) re-encoded differently")
	}
}

// TestMeasuredFieldsPresent checks the measured layer appears exactly
// when asked for, and that attainment lands in (0, 1].
func TestMeasuredFieldsPresent(t *testing.T) {
	cfg := goldenConfig()
	cfg.Measure = true
	cfg.Repeats = 1
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReadPath == nil {
		t.Error("Measure run has no readPath result")
	} else if rep.ReadPath.FrozenSeconds <= 0 || rep.ReadPath.LockedSeconds <= 0 {
		t.Errorf("read-path timings not positive: %+v", rep.ReadPath)
	}
	if rep.GemmTransB == nil {
		t.Error("Measure run has no gemmTransB result")
	} else if rep.GemmTransB.NoTransSeconds <= 0 || rep.GemmTransB.TransBSeconds <= 0 {
		t.Errorf("gemm transB timings not positive: %+v", rep.GemmTransB)
	}
	for _, p := range rep.Points {
		if p.Measured == nil {
			t.Errorf("%s: no measured fields on a Measure run", p.Key())
			continue
		}
		if p.Measured.WallSeconds <= 0 {
			t.Errorf("%s: wall %v, want > 0", p.Key(), p.Measured.WallSeconds)
		}
		if p.Attained <= 0 || p.Attained > 1.000001 {
			t.Errorf("%s: attained %v outside (0, 1]", p.Key(), p.Attained)
		}
	}
}

// TestSmokeIsSubsetOfDefault guards the CI contract: every smoke matrix
// cell must exist in the full matrix, or gating a smoke run against the
// checked-in full baseline would fail spuriously.
func TestSmokeIsSubsetOfDefault(t *testing.T) {
	full := DefaultConfig().withDefaults()
	smoke := SmokeConfig().withDefaults()
	inExec := func(e ExecutePoint) bool {
		for _, f := range full.ExecutePoints {
			if f == e {
				return true
			}
		}
		return false
	}
	inCost := func(c CostPoint) bool {
		for _, f := range full.CostPoints {
			if f == c {
				return true
			}
		}
		return false
	}
	inGmp := func(g int) bool {
		for _, f := range full.Gomaxprocs {
			if f == g {
				return true
			}
		}
		return false
	}
	inOverlap := func(o bool) bool {
		for _, f := range full.Overlap {
			if f == o {
				return true
			}
		}
		return false
	}
	for _, e := range smoke.ExecutePoints {
		if !inExec(e) {
			t.Errorf("smoke execute point %+v not in the full matrix", e)
		}
	}
	for _, c := range smoke.CostPoints {
		if !inCost(c) {
			t.Errorf("smoke cost point %+v not in the full matrix", c)
		}
	}
	for _, g := range smoke.Gomaxprocs {
		if !inGmp(g) {
			t.Errorf("smoke gomaxprocs %d not in the full matrix", g)
		}
	}
	for _, o := range smoke.Overlap {
		if !inOverlap(o) {
			t.Errorf("smoke overlap %v not in the full matrix", o)
		}
	}
	if len(smoke.Schemes) != len(full.Schemes) || len(smoke.CostSchemes) != len(full.CostSchemes) {
		t.Error("smoke must run the same scheme set as the full matrix")
	}
}
