package perf

import (
	"os"
	"testing"
)

func TestTunerGateInputChecks(t *testing.T) {
	if _, _, err := TunerGate(nil); err == nil {
		t.Error("nil baseline should error")
	}
	if _, _, err := TunerGate(&Report{SchemaVersion: SchemaVersion - 1}); err == nil {
		t.Error("schema mismatch should error")
	}
	if _, _, err := TunerGate(&Report{SchemaVersion: SchemaVersion}); err == nil {
		t.Error("baseline without cost points should error")
	}
}

// TestTunerGateAgainstBaseline is the CI gate: on every cost point of
// the checked-in benchmark matrix, the frontier tuner's pick must
// simulate at least as fast as the fastest schedule the matrix recorded
// there. Both sides drive the same deterministic cost model, so any
// violation is a real shortlisting regression.
func TestTunerGateAgainstBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale cost simulations; skipped with -short")
	}
	f, err := os.Open("../../BENCH_fouridx.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	results, violations, err := TunerGate(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("gate checked no cost points")
	}
	for _, r := range results {
		t.Logf("%s/%s/%d: baseline %s %.2fs, pick %s %.2fs (%d simulations)",
			r.Molecule, r.System, r.Cores, r.BaselineScheme, r.BaselineSeconds,
			r.Pick.Scheme, r.PickSeconds, r.Simulated)
	}
	for _, v := range violations {
		t.Error(v)
	}
}
