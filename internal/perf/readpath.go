package perf

import (
	"fmt"
	"time"

	"fourindex/internal/ga"
	"fourindex/internal/tile"
)

// ReadPathResult reports the GetT read-path microbenchmark: every
// process hammering one shared tile, first through the per-tile
// RWMutex (the mutable path), then lock-free after Freeze (the
// immutable-after-sync fast path the schedules use for frozen inputs
// and intermediates). Wall-clock quantities; Measure runs only.
type ReadPathResult struct {
	// Procs and ReadsPerProc size the hammering region.
	Procs        int `json:"procs"`
	ReadsPerProc int `json:"readsPerProc"`
	// TileWords is the shared tile's element count.
	TileWords int `json:"tileWords"`
	// LockedSeconds is the mutable (RWMutex) path's best region time;
	// FrozenSeconds the lock-free frozen path's.
	LockedSeconds float64 `json:"lockedSeconds"`
	FrozenSeconds float64 `json:"frozenSeconds"`
	// Speedup is LockedSeconds / FrozenSeconds.
	Speedup float64 `json:"speedup"`
}

// readPathTrials is the best-of count for each path's region timing.
const readPathTrials = 3

// BenchReadPath measures both GetT read paths on one dim x dim tile
// shared by procs processes, each issuing readsPerProc reads per trial.
// The unfrozen path is timed first, the tensor is frozen at a region
// boundary (exactly a schedule's producer -> GA_Sync -> consumers
// shape), and the same loop is timed again.
func BenchReadPath(procs, readsPerProc, dim int) (ReadPathResult, error) {
	rt, err := ga.NewRuntime(ga.Config{Procs: procs, Mode: ga.Execute})
	if err != nil {
		return ReadPathResult{}, err
	}
	g := tile.NewGrid(dim, dim)
	a, err := rt.CreateTiled("readpath", []tile.Grid{g, g}, nil, tile.RoundRobin)
	if err != nil {
		return ReadPathResult{}, err
	}
	defer rt.DestroyTiled(a)

	words := dim * dim
	init := make([]float64, words)
	for i := range init {
		init[i] = float64(i)
	}
	if err := rt.Parallel(func(p *ga.Proc) {
		if p.ID() == 0 {
			p.PutT(a, init, 0, 0)
		}
	}); err != nil {
		return ReadPathResult{}, err
	}

	hammer := func() (float64, error) {
		best := 0.0
		for trial := 0; trial < readPathTrials; trial++ {
			start := time.Now()
			err := rt.Parallel(func(p *ga.Proc) {
				buf := p.MustAllocLocal(int64(words))
				defer p.FreeLocal(buf)
				for r := 0; r < readsPerProc; r++ {
					p.GetT(a, buf.Data, 0, 0)
				}
			})
			wall := time.Since(start).Seconds()
			if err != nil {
				return 0, err
			}
			if trial == 0 || wall < best {
				best = wall
			}
		}
		return best, nil
	}

	res := ReadPathResult{Procs: procs, ReadsPerProc: readsPerProc, TileWords: words}
	if res.LockedSeconds, err = hammer(); err != nil {
		return ReadPathResult{}, err
	}
	a.Freeze()
	if res.FrozenSeconds, err = hammer(); err != nil {
		return ReadPathResult{}, err
	}
	if res.FrozenSeconds > 0 {
		res.Speedup = res.LockedSeconds / res.FrozenSeconds
	}
	return res, nil
}

// String renders the result for the bench subcommand's summary.
func (r ReadPathResult) String() string {
	return fmt.Sprintf("read-path: %d procs x %d reads of a %d-word tile: locked %.3fms, frozen %.3fms (%.2fx)",
		r.Procs, r.ReadsPerProc, r.TileWords, 1e3*r.LockedSeconds, 1e3*r.FrozenSeconds, r.Speedup)
}
