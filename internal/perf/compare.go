package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// minGateWall is the wall time below which a point is too noise-dominated
// to gate: tens-of-milliseconds runs swing well past any sensible
// tolerance under GC and scheduler jitter, so only points that run at
// least this long contribute to (or are checked by) the wall-time gate.
// Their deterministic accounting is still gated regardless.
const minGateWall = 0.05

// Encode writes the report as indented JSON. encoding/json emits struct
// fields in declaration order, so equal reports encode byte-identically
// (the property the determinism and golden tests pin).
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads a report written by Encode.
func Decode(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: decoding report: %w", err)
	}
	return &r, nil
}

// Gate compares a current report against a baseline and returns the
// regressions found (empty = pass).
//
// Deterministic fields (flops, bytes moved, messages, peak memory,
// simulated seconds, exposed-comm fraction) must match the baseline
// within tolerance — they do not vary across machines, so any drift is
// a real accounting change.
//
// Wall times vary with the host, so they are gated relatively: the
// per-point ratio current/baseline is normalised by the median ratio
// across all gated points (a uniformly faster or slower machine shifts
// every ratio equally and cancels out), and a point fails when its
// normalised ratio exceeds 1+tolerance. Points faster than minGateWall
// in either report are skipped as noise.
//
// The current report may be a subset of the baseline (a smoke run gated
// against the full checked-in matrix); a current point missing from the
// baseline is an error.
func Gate(cur, base *Report, tolerance float64) ([]string, error) {
	if cur == nil || base == nil {
		return nil, fmt.Errorf("perf: Gate needs both reports")
	}
	if cur.SchemaVersion != base.SchemaVersion {
		return nil, fmt.Errorf("perf: schema version mismatch: current %d, baseline %d (regenerate the baseline)",
			cur.SchemaVersion, base.SchemaVersion)
	}
	if tolerance <= 0 {
		return nil, fmt.Errorf("perf: non-positive tolerance %v", tolerance)
	}
	byKey := make(map[string]Point, len(base.Points))
	for _, p := range base.Points {
		byKey[p.Key()] = p
	}

	var violations []string
	type walled struct {
		key        string
		cur, ratio float64
	}
	var ratios []walled
	for _, p := range cur.Points {
		b, ok := byKey[p.Key()]
		if !ok {
			return nil, fmt.Errorf("perf: point %s has no baseline (regenerate with `make bench`)", p.Key())
		}
		for _, m := range []struct {
			name      string
			cur, base float64
		}{
			{"flops", float64(p.Flops), float64(b.Flops)},
			{"bytesMoved", float64(p.BytesMoved), float64(b.BytesMoved)},
			{"messages", float64(p.Messages), float64(b.Messages)},
			{"peakGlobalBytes", float64(p.PeakGlobalBytes), float64(b.PeakGlobalBytes)},
			{"simSeconds", p.SimSeconds, b.SimSeconds},
			{"exposedCommFraction", p.ExposedCommFraction, b.ExposedCommFraction},
		} {
			if d := relDiff(m.cur, m.base); d > tolerance {
				violations = append(violations, fmt.Sprintf("%s: %s drifted %.1f%% (%.6g vs baseline %.6g)",
					p.Key(), m.name, 100*d, m.cur, m.base))
			}
		}
		if p.Measured != nil && b.Measured != nil &&
			p.Measured.WallSeconds >= minGateWall && b.Measured.WallSeconds >= minGateWall {
			ratios = append(ratios, walled{p.Key(), p.Measured.WallSeconds,
				p.Measured.WallSeconds / b.Measured.WallSeconds})
		}
	}

	// The Strassen calibration is machine-dependent in its timings and
	// pick, so only its shape is gated: when both reports carry one, the
	// ladders must sweep the same sizes; a current calibration with no
	// baseline counterpart means the baseline predates the sweep. A
	// baseline-only calibration is fine (smoke runs skip the sweep).
	if cur.Strassen != nil {
		if base.Strassen == nil {
			violations = append(violations,
				"strassen calibration present but missing from the baseline (regenerate with `make bench`)")
		} else if !sameLadder(cur.Strassen.Sizes, base.Strassen.Sizes) {
			violations = append(violations, fmt.Sprintf(
				"strassen calibration ladder changed: %v vs baseline %v (regenerate with `make bench`)",
				ladderSizes(cur.Strassen.Sizes), ladderSizes(base.Strassen.Sizes)))
		}
	}

	if len(ratios) > 0 {
		vs := make([]float64, len(ratios))
		for i, r := range ratios {
			vs[i] = r.ratio
		}
		norm := sortedMedian(vs)
		for _, r := range ratios {
			if r.ratio/norm > 1+tolerance {
				violations = append(violations, fmt.Sprintf(
					"%s: wall time regressed %.1f%% after normalisation (%.1fms, machine factor %.2f)",
					r.key, 100*(r.ratio/norm-1), 1e3*r.cur, norm))
			}
		}
	}
	return violations, nil
}

// ladderSizes projects a calibration ladder onto its sizes.
func ladderSizes(pts []StrassenPoint) []int {
	ns := make([]int, len(pts))
	for i, p := range pts {
		ns[i] = p.N
	}
	return ns
}

// sameLadder reports whether two calibration ladders swept the same
// sizes in the same order.
func sameLadder(a, b []StrassenPoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].N != b[i].N {
			return false
		}
	}
	return true
}

// relDiff is |a-b| / max(|a|,|b|), 0 when both are zero.
func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// sortedMedian returns the median of vs (vs is sorted in place).
func sortedMedian(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}
