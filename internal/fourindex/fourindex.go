// Package fourindex implements the four-index integral transform
//
//	C[a,b,c,d] = sum_{i,j,k,l} A[i,j,k,l] B[a,i] B[b,j] B[c,k] B[d,l]
//
// as the paper's executable parallel schedules over the Global Arrays
// runtime (package ga):
//
//	Unfused        - Listing 1/4: four separate tiled contractions with
//	                 full intermediates (the memory-hungry baseline).
//	Fused1234Pair  - Listing 2/9: op12/34, the first two and last two
//	                 contractions fused at full problem size with the
//	                 Section 7.3 communication-avoiding mapping.
//	Recompute      - Listing 3's direct method: slab-local computation
//	                 with on-the-fly integral regeneration, minimal
//	                 memory, redundant work.
//	FullyFused     - Listing 8: loop l fused across all four
//	                 contractions (largest zero-spill problem).
//	FullyFusedInner- Listing 10: outer l fusion plus inner op12/34
//	                 fusion (minimal communication volume) with optional
//	                 alpha-parallelisation and nested l tiling
//	                 (Section 7.3). This is the paper's contributed
//	                 implementation.
//	Hybrid         - Section 7.4: picks Unfused when the intermediates
//	                 fit in aggregate memory, FullyFusedInner otherwise,
//	                 with out-of-memory fallback.
//	NWChemFused    - the production baseline: Listing 2's memory profile
//	                 without the comm-avoiding mapping, per-row DGEMM
//	                 kernel efficiency.
//	Fused123       - the op123/4 configuration, implemented to make
//	                 Theorem 5.2's dominance argument measurable.
//
// Every schedule runs in ga.Execute mode (real arithmetic, small
// extents, verified against dense references) or ga.Cost mode (identical
// control flow and data-movement accounting at molecule scale, no
// element data).
package fourindex

import (
	"context"
	"fmt"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/metrics"
	"fourindex/internal/sym"
	"fourindex/internal/tile"
	"fourindex/internal/trace"
)

// Scheme selects one of the implemented schedules.
type Scheme int

const (
	// Unfused is the Listing 1/4 baseline.
	Unfused Scheme = iota
	// Fused1234Pair is the op12/34 schedule of Listing 2/9.
	Fused1234Pair
	// Recompute is the minimal-memory direct method of Listing 3.
	Recompute
	// FullyFused is the Listing 8 all-four fusion.
	FullyFused
	// FullyFusedInner is Listing 10: the paper's implementation.
	FullyFusedInner
	// Hybrid is the Section 7.4 fuse/unfuse driver.
	Hybrid
	// NWChemFused models NWChem's production fused 12-34 variant:
	// Listing 2's memory profile without the Section 7.3
	// communication-avoiding mapping (O1/O3 chunks round-trip through
	// global memory, chunk-serial parallel structure).
	NWChemFused
	// Fused123 fuses the first three contractions over l and runs op4
	// unfused on the materialised O3 — the op123/4 configuration whose
	// I/O Theorem 5.2 proves strictly worse than op12/34 (|O3| > |O2|).
	// Implemented so the total order is measurable on the simulator.
	Fused123
)

var schemeNames = map[Scheme]string{
	Unfused:         "unfused",
	Fused1234Pair:   "fused12-34",
	Recompute:       "recompute",
	FullyFused:      "fullyfused",
	FullyFusedInner: "fullyfused-inner",
	Hybrid:          "hybrid",
	NWChemFused:     "nwchem-fused12-34",
	Fused123:        "fused123-4",
}

// String names the scheme.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// SchemeByName resolves a scheme from its name. Schemes are scanned in
// declaration order, not map order, so a (hypothetical) duplicate name
// would resolve the same way on every run.
func SchemeByName(name string) (Scheme, error) {
	for s := Unfused; s <= Fused123; s++ {
		if schemeNames[s] == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("fourindex: unknown scheme %q", name)
}

// Options configures a transform run.
type Options struct {
	// Spec supplies extents, spatial symmetry and integral values.
	Spec chem.Spec
	// Procs is the number of parallel processes.
	Procs int
	// Mode selects real execution or cost simulation.
	Mode ga.Mode
	// Run optionally supplies the machine cost model.
	Run *cluster.Run
	// GlobalMemBytes caps aggregate distributed memory (0 unlimited).
	GlobalMemBytes int64
	// LocalMemBytes caps per-process buffers (0 unlimited).
	LocalMemBytes int64
	// TileN is the orbital-dimension data-tile width (default:
	// ~n/6 in Execute mode, ~n/24 in Cost mode).
	TileN int
	// TileL is the fused outer-loop tile width for the fused schedules
	// (default TileN).
	TileL int
	// AlphaPar is the Section 7.3 alpha-parallelisation factor for
	// FullyFusedInner: work for one k-tile splits over AlphaPar
	// processes at the price of replicating A reads (default 1).
	AlphaPar int
	// LPar processes this many outer l-tiles concurrently in
	// FullyFusedInner — Section 7.3's "nested tiling of l" alternative
	// for increasing parallelism. Memory for the A and O2 slabs grows
	// by the same factor (default 1).
	LPar int
	// Policy distributes data tiles over processes.
	Policy tile.Policy
	// Strict enables read-before-write checking in the GA runtime.
	Strict bool
	// AllowSpill runs out-of-core instead of failing when a tensor
	// exceeds GlobalMemBytes: the overflowing tensor becomes
	// disk-resident and its traffic is charged at the shared
	// file-system bandwidth (the spilling alternative the paper's
	// zero-spill schedules avoid, Section 3).
	AllowSpill bool
	// Trace, when non-nil, records the run as spans and events (see
	// internal/trace): a root span per schedule attempt, one span per
	// phase, and per-operation Get/Put/Acc/Barrier events. Nil disables
	// tracing at zero cost.
	Trace *trace.Tracer
	// Strassen routes the contraction GEMMs through the Strassen-Winograd
	// path (blas.DgemmStrassen): recursion above the process-wide
	// crossover, the classic blocked kernel below it. Strassen
	// reassociates additions, so Execute-mode results are no longer
	// bitwise identical to the default path (they differ by O(eps)
	// rounding); a run is still deterministic against itself — the same
	// options and crossover reproduce C bitwise, overlap or faults
	// included. Cost mode is unaffected (the cost model charges classic
	// 2mnk flops either way). Off by default.
	Strassen bool
	// Overlap enables the nonblocking communication path: schedules
	// double-buffer tile gets and pipeline tile writes through
	// ga.NbGetT/NbPutT/NbAccT, so transfer time overlaps compute (the
	// ga package's max-vs-sum clock rule). Execute-mode results are
	// bitwise identical with Overlap on or off; Cost mode reports the
	// exposed/overlapped split per phase. Off by default.
	Overlap bool
	// OverlapEfficiency scales how much in-flight transfer time the
	// overlap cost model may hide, in (0, 1]; zero means 1 (full
	// overlap). See ga.Config.OverlapEfficiency.
	OverlapEfficiency float64
	// Faults, when non-nil, runs the transform under the bundled fault
	// plan with checkpoint-restart (see internal/faults): transient
	// Get/Put/Acc faults are retried with backoff, injected crashes
	// restart the schedule from its last completed l-slab or stage
	// (bounded by Faults.MaxRestarts), and the hybrid driver degrades
	// the fused path to plain fully-fused slabs on terminal faults.
	// Nil runs fault-free.
	Faults *faults.Injection

	// ctx carries RunContext's cooperative-cancellation signal into the
	// schedules; nil (the zero Options, and every plain Run call) never
	// cancels. Unexported so keyed Options literals stay source-compatible
	// and callers cannot smuggle a context past RunContext.
	ctx context.Context
}

// withDefaults validates and fills defaults.
func (o Options) withDefaults() (Options, error) {
	if o.Spec.N <= 0 {
		return o, fmt.Errorf("fourindex: spec has non-positive extent %d", o.Spec.N)
	}
	if o.Procs <= 0 {
		o.Procs = 1
	}
	if o.TileN <= 0 {
		// ~6 tiles per dimension in Execute mode (real data, small n);
		// ~24 at simulation scale, where finer tiling only slows the
		// simulator without changing the accounting materially.
		div := 6
		if o.Mode == ga.Cost && o.Spec.N >= 240 {
			div = 24
		}
		o.TileN = max(1, o.Spec.N/div)
	}
	if o.TileN > o.Spec.N {
		o.TileN = o.Spec.N
	}
	if o.TileL <= 0 {
		o.TileL = o.TileN
	}
	if o.TileL > o.Spec.N {
		o.TileL = o.Spec.N
	}
	if o.AlphaPar <= 0 {
		o.AlphaPar = 1
	}
	if o.LPar <= 0 {
		o.LPar = 1
	}
	return o, nil
}

// Result reports a completed transform.
type Result struct {
	Scheme Scheme
	// C holds the transformed tensor in Execute mode, nil in Cost mode.
	C *sym.PackedC
	// ElapsedSeconds is the simulated wall time (0 without a cost model).
	ElapsedSeconds float64
	// Totals aggregates flops and traffic over all processes.
	Totals metrics.Snapshot
	// CommVolume is the inter-node elements moved (both directions).
	CommVolume int64
	// IntraVolume is same-node get/put elements moved.
	IntraVolume int64
	// DiskVolume is elements moved to/from disk-resident tensors
	// (nonzero only with Options.AllowSpill under memory pressure).
	DiskVolume int64
	// PeakGlobalBytes is the high-water aggregate-memory footprint.
	PeakGlobalBytes int64
	// ChosenScheme reports what Hybrid actually ran (== Scheme otherwise).
	ChosenScheme Scheme
	// Phases breaks the run down by schedule phase (simulated seconds,
	// flops and traffic per named phase, fused slabs accumulated).
	Phases []ga.PhaseStat
	// IdleFraction is the share of total process-time spent waiting at
	// synchronisation points (load imbalance; 0 without a cost model).
	IdleFraction float64
	// ExposedCommSeconds is transfer time processes waited for;
	// OverlapCommSeconds is transfer time the nonblocking verbs hid
	// behind compute (nonzero only with Options.Overlap). Their sum is
	// the run's total transfer time.
	ExposedCommSeconds float64
	OverlapCommSeconds float64
	// Restarts is how many times the driver rebuilt the runtime and
	// resumed from a checkpoint after an injected crash (0 fault-free).
	Restarts int
}

// Run executes the transform with the given scheme. Under
// Options.Faults, restartable (crash) errors trigger a bounded
// rebuild-and-resume loop: the schedule re-runs against a fresh runtime
// and picks up at the last checkpoint its previous attempt recorded.
// Terminal faults (retry exhaustion) and genuine errors return as-is.
// Run never cancels; RunContext adds cooperative cancellation.
func Run(scheme Scheme, opt Options) (*Result, error) {
	return RunContext(context.Background(), scheme, opt)
}

// runScheme dispatches one attempt of the transform.
func runScheme(scheme Scheme, opt Options) (*Result, error) {
	switch scheme {
	case Unfused:
		return runUnfused(opt)
	case Fused1234Pair:
		return runFusedPair(opt)
	case Recompute:
		return runRecompute(opt)
	case FullyFused:
		return runFullyFused(opt, false)
	case FullyFusedInner:
		return runFullyFused(opt, true)
	case Hybrid:
		return runHybrid(opt)
	case NWChemFused:
		return runNWChemFused(opt)
	case Fused123:
		return runFused123(opt)
	}
	return nil, fmt.Errorf("fourindex: unknown scheme %v", scheme)
}

// integralFlops is the arithmetic charged per atomic-orbital integral
// evaluated by ComputeA (real integral codes spend O(100) flops per
// primitive integral).
const integralFlops = 100

// coeffFlops is the arithmetic charged per transformation-matrix element.
const coeffFlops = 1
