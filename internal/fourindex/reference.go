package fourindex

import (
	"fourindex/internal/chem"
	"fourindex/internal/sym"
	"fourindex/internal/tensor"
)

// ReferenceNaive computes C by the direct O(n^8) quadruple transform of
// Equation 1. Only viable for n <= ~8; it is the ground truth everything
// else is verified against.
func ReferenceNaive(sp chem.Spec) *sym.PackedC {
	n := sp.N
	b := sp.BMatrix()
	c := sym.NewPackedC(n)
	for a := 0; a < n; a++ {
		for bb := 0; bb <= a; bb++ {
			for g := 0; g < n; g++ {
				for d := 0; d <= g; d++ {
					var s float64
					for i := 0; i < n; i++ {
						bai := b[a*n+i]
						if bai == 0 {
							continue
						}
						for j := 0; j < n; j++ {
							bbj := b[bb*n+j]
							if bbj == 0 {
								continue
							}
							for k := 0; k < n; k++ {
								bgk := b[g*n+k]
								if bgk == 0 {
									continue
								}
								for l := 0; l < n; l++ {
									s += sp.ComputeA(i, j, k, l) * bai * bbj * bgk * b[d*n+l]
								}
							}
						}
					}
					c.Add(s, a, bb, g, d)
				}
			}
		}
	}
	return c
}

// ReferenceDense computes C by the O(n^5) four-contraction sequence on
// fully expanded dense tensors (no symmetry exploitation). Viable for
// n <= ~40; the second-tier reference.
func ReferenceDense(sp chem.Spec) *sym.PackedC {
	n := sp.N
	b := sp.BMatrix()
	a := tensor.New(n, n, n, n)
	a.Fill(func(idx []int) float64 {
		return sp.ComputeA(idx[0], idx[1], idx[2], idx[3])
	})

	// Each step contracts the leading index with B and rotates it to
	// the back: T'[x1,x2,x3,out] = sum_r B[out,r] T[r,x1,x2,x3].
	cur := a
	for step := 0; step < 4; step++ {
		next := tensor.New(n, n, n, n)
		cd, nd := cur.Data(), next.Data()
		n3 := n * n * n
		for out := 0; out < n; out++ {
			for r := 0; r < n; r++ {
				w := b[out*n+r]
				if w == 0 {
					continue
				}
				src := cd[r*n3 : (r+1)*n3]
				// next[x1,x2,x3,out] += w * cur[r,x1,x2,x3]
				for x := 0; x < n3; x++ {
					nd[x*n+out] += w * src[x]
				}
			}
		}
		cur = next
	}
	// After four rotations the layout is [a,b,g,d] again: step 1
	// produced [j,k,l,a], step 2 [k,l,a,b], step 3 [l,a,b,g],
	// step 4 [a,b,g,d].
	return sym.PackC(cur)
}

// ReferencePacked computes C with the sequential packed-symmetric
// algorithm of Listing 1 (element level, exploiting the Table 1
// symmetries). Viable for n <= ~32 and used to validate that symmetry
// handling preserves values.
func ReferencePacked(sp chem.Spec) *sym.PackedC {
	n := sp.N
	m := sym.Pairs(n)
	b := sp.BMatrix()

	// A[ij, kl] packed.
	a := sym.NewPackedA(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l <= k; l++ {
					a.Set(sp.ComputeA(i, j, k, l), i, j, k, l)
				}
			}
		}
	}

	// op1: O1[al, j, kl] = sum_i A[ij, kl] B[al, i].
	o1 := sym.NewPackedO1(n)
	o1d := o1.Data()
	for al := 0; al < n; al++ {
		for j := 0; j < n; j++ {
			row := o1d[(al*n+j)*m : (al*n+j+1)*m]
			for i := 0; i < n; i++ {
				w := b[al*n+i]
				if w == 0 {
					continue
				}
				ar := a.Row(sym.CanonicalPairIndex(i, j))
				for p := 0; p < m; p++ {
					row[p] += w * ar[p]
				}
			}
		}
	}

	// op2: O2[ab, kl] = sum_j O1[a, j, kl] B[b, j].
	o2 := sym.NewPackedO2(n)
	o2d := o2.Data()
	for al := 0; al < n; al++ {
		for be := 0; be <= al; be++ {
			row := o2d[sym.PairIndex(al, be)*m : (sym.PairIndex(al, be)+1)*m]
			for j := 0; j < n; j++ {
				w := b[be*n+j]
				if w == 0 {
					continue
				}
				src := o1d[(al*n+j)*m : (al*n+j+1)*m]
				for p := 0; p < m; p++ {
					row[p] += w * src[p]
				}
			}
		}
	}

	// op3: O3[ab, c, l] = sum_k O2[ab, kl] B[c, k].
	o3 := sym.NewPackedO3(n)
	o3d := o3.Data()
	for ab := 0; ab < m; ab++ {
		o2row := o2d[ab*m : (ab+1)*m]
		base := ab * n * n
		for c := 0; c < n; c++ {
			for k := 0; k < n; k++ {
				w := b[c*n+k]
				if w == 0 {
					continue
				}
				for l := 0; l < n; l++ {
					o3d[base+c*n+l] += w * o2row[sym.CanonicalPairIndex(k, l)]
				}
			}
		}
	}

	// op4: C[ab, cd] = sum_l O3[ab, c, l] B[d, l].
	c := sym.NewPackedC(n)
	cd := c.Data()
	for ab := 0; ab < m; ab++ {
		base := ab * n * n
		crow := cd[ab*m : (ab+1)*m]
		for g := 0; g < n; g++ {
			for d := 0; d <= g; d++ {
				var s float64
				for l := 0; l < n; l++ {
					s += o3d[base+g*n+l] * b[d*n+l]
				}
				crow[sym.PairIndex(g, d)] += s
			}
		}
	}
	return c
}
