package fourindex

import (
	"fourindex/internal/blas"
	"fourindex/internal/ga"
)

// runRecompute executes the Listing 3 direct method: nothing but the
// output C lives in global memory. Each process computes whole
// C[(ta,tb), *, *] pair-blocks from scratch, regenerating the atomic
// integrals A on the fly for every block (redundant computation) and
// keeping O1/O2/O3 in slab-sized local buffers. This is the
// minimal-memory, maximal-work end of the paper's design space
// (Section 2.2: "lowest memory requirement ... more time consuming").
//
// The schedule takes no checkpoints: its only global state is C, every
// pair-block is written exactly once with PutT, and there is nothing to
// snapshot that is cheaper than recomputing. A restart after a crash
// simply reruns the single region from scratch, which is idempotent.
func runRecompute(opt Options) (*Result, error) {
	c, err := newRunCtx(opt)
	if err != nil {
		return nil, err
	}
	defer c.beginRoot(Recompute)()
	// The schedule is a single idempotent region with no checkpoints, so
	// its only cancellation boundary is before any work starts.
	if err := c.canceled(); err != nil {
		return nil, err
	}
	c.rt.BeginPhase("recompute-blocks")
	cT, err := c.rt.CreateTiledSparse("C", c.grids4(), [][2]int{{0, 1}, {2, 3}}, opt.Policy, c.cSparsity())
	if err != nil {
		return nil, oomWrap(Recompute, err)
	}
	if err := c.rt.Parallel(func(p *ga.Proc) {
		for ta := 0; ta < c.nt; ta++ {
			for tb := 0; tb <= ta; tb++ {
				if workOwner(p.Procs(), 3, ta, tb) != p.ID() {
					continue
				}
				c.recomputeUnit(p, cT, ta, tb)
			}
		}
	}); err != nil {
		return nil, err
	}
	packed := c.extractC(cT)
	c.rt.DestroyTiled(cT)
	return c.result(Recompute, Recompute, packed), nil
}

// recomputeUnit produces all C tiles of one (ta, tb) pair-block with no
// global reads at all.
func (c *runCtx) recomputeUnit(p *ga.Proc, cT *ga.TiledArray, ta, tb int) {
	n := c.n
	n64 := int64(n)
	wa, wb := c.g.Width(ta), c.g.Width(tb)
	a0, _ := c.g.Bounds(ta)
	b0, _ := c.g.Bounds(tb)
	wab := wa * wb
	sp := c.opt.Spec

	// op1 with on-the-fly integrals: O1[a in ta, j, k, l] — the
	// integrals for the full (i, j, k, l) space are regenerated for
	// every ta block, which is the scheme's redundant work.
	o1loc := c.alloc(p, int64(wa)*n64*n64*n64)
	p.Compute(integralFlops * n64 * n64 * n64 * n64)             // regenerate A
	p.Compute(2 * int64(wa) * n64 * n64 * n64 * n64)             // contract over i
	p.Compute(int64(coeffFlops) * (int64(wa) + int64(wb)) * n64) // B rows
	if c.exec {
		ba := make([]float64, wa*n)
		for a := 0; a < wa; a++ {
			for i := 0; i < n; i++ {
				ba[a*n+i] = sp.ComputeB(a0+a, i)
			}
		}
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l < n; l++ {
					for i := 0; i < n; i++ {
						v := sp.ComputeA(i, j, k, l)
						if v == 0 {
							continue
						}
						for a := 0; a < wa; a++ {
							o1loc.Data[((a*n+j)*n+k)*n+l] += ba[a*n+i] * v
						}
					}
				}
			}
		}
	}

	// op2: O2[(a,b), k, l] = sum_j O1[a, j, k, l] B[b, j].
	o2loc := c.alloc(p, int64(wab)*n64*n64)
	p.Compute(2 * int64(wab) * n64 * n64 * n64)
	if c.exec {
		bb := make([]float64, wb*n)
		for b := 0; b < wb; b++ {
			for j := 0; j < n; j++ {
				bb[b*n+j] = sp.ComputeB(b0+b, j)
			}
		}
		for a := 0; a < wa; a++ {
			for b := 0; b < wb; b++ {
				dst := o2loc.Data[(a*wb+b)*n*n : (a*wb+b+1)*n*n]
				for j := 0; j < n; j++ {
					w := bb[b*n+j]
					if w == 0 {
						continue
					}
					src := o1loc.Data[(a*n+j)*n*n : (a*n+j+1)*n*n]
					for kl := 0; kl < n*n; kl++ {
						dst[kl] += w * src[kl]
					}
				}
			}
		}
	}
	p.FreeLocal(o1loc)

	// op3: O3[(a,b), c, l] = sum_k O2[(a,b), k, l] B[c, k].
	o3loc := c.alloc(p, int64(wab)*n64*n64)
	bfull := c.alloc(p, n64*n64)
	p.Compute(int64(coeffFlops) * n64 * n64)
	if c.exec {
		for r := 0; r < n; r++ {
			for s := 0; s < n; s++ {
				bfull.Data[r*n+s] = sp.ComputeB(r, s)
			}
		}
	}
	if c.exec {
		for ab := 0; ab < wab; ab++ {
			c.gemm(p, false, false, n, n, n,
				bfull.Data, n,
				o2loc.Data[ab*n*n:], n,
				o3loc.Data[ab*n*n:], n)
		}
	} else {
		p.ComputeEff(int64(wab)*blas.GemmFlops(n, n, n), c.eff)
	}
	p.FreeLocal(o2loc)

	// op4: C[(a,b), c>=d] = O3[(a,b), c, l] . B[d, l]^T, then Put. The
	// writes ride the nonblocking window so each tile's transfer overlaps
	// the next tile's GEMM.
	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(c.g.T))
	wq := newNbQueue(p)
	for tc := 0; tc < c.nt; tc++ {
		c0, _ := c.g.Bounds(tc)
		wc := c.g.Width(tc)
		for td := 0; td <= tc; td++ {
			if !cT.Stored(ta, tb, tc, td) {
				continue // spatial symmetry forbids this block
			}
			d0, _ := c.g.Bounds(td)
			wd := c.g.Width(td)
			if c.exec {
				zero(out.Data[:wab*wc*wd])
				for ab := 0; ab < wab; ab++ {
					c.gemm(p, false, true, wc, wd, n,
						o3loc.Data[(ab*n+c0)*n:], n,
						bfull.Data[d0*n:], n,
						out.Data[ab*wc*wd:], wd)
				}
			} else {
				p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wd, n), c.eff)
			}
			wq.push(p.NbPutT(cT, out.Data, ta, tb, tc, td))
		}
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bfull)
	p.FreeLocal(o3loc)
}
