package fourindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fourindex/internal/chem"
	"fourindex/internal/ga"
	"fourindex/internal/sym"
	"fourindex/internal/tile"
)

// Property: every scheme matches the packed reference for random small
// configurations (extent, spatial symmetry, process count, tilings,
// distribution policy, alpha-parallelisation).
func TestQuickSchemeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(7) // 4..10
		sOpts := []int{1, 1, 2, 4}
		s := sOpts[rng.Intn(len(sOpts))]
		spec := chem.MustSpec(n, s, uint64(seed)+1)
		want := ReferencePacked(spec)
		opt := Options{
			Spec:     spec,
			Procs:    1 + rng.Intn(4),
			Mode:     ga.Execute,
			TileN:    1 + rng.Intn(n),
			TileL:    1 + rng.Intn(n),
			AlphaPar: 1 + rng.Intn(3),
			Policy:   tile.Policy(rng.Intn(3)),
		}
		scheme := allSchemes[rng.Intn(len(allSchemes))]
		res, err := Run(scheme, opt)
		if err != nil {
			t.Logf("seed %d: %v on %+v: %v", seed, scheme, opt, err)
			return false
		}
		if d := sym.MaxAbsDiffC(res.C, want); d > 1e-9 {
			t.Logf("seed %d: %v diff %v (n=%d s=%d tileN=%d tileL=%d procs=%d pol=%v)",
				seed, scheme, d, n, s, opt.TileN, opt.TileL, opt.Procs, opt.Policy)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: NWChemFused (not in allSchemes' hot path above dominates
// runtime) matches the reference across random configurations too.
func TestQuickNWChemFusedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		spec := chem.MustSpec(n, 1, uint64(seed)+7)
		want := ReferencePacked(spec)
		res, err := Run(NWChemFused, Options{
			Spec:  spec,
			Procs: 1 + rng.Intn(3),
			Mode:  ga.Execute,
			TileN: 1 + rng.Intn(n),
		})
		if err != nil {
			return false
		}
		return sym.MaxAbsDiffC(res.C, want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: cost-mode accounting is invariant to the process count
// (total flops and total data volume depend on the schedule, not on how
// work is spread).
func TestQuickAccountingProcInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		spec := chem.MustSpec(n, 1, 3)
		scheme := allSchemes[rng.Intn(len(allSchemes))]
		run := func(procs int) (int64, int64) {
			res, err := Run(scheme, Options{
				Spec: spec, Procs: procs, Mode: ga.Cost, TileN: 4, TileL: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Totals.Flops, res.CommVolume + res.IntraVolume
		}
		f1, v1 := run(1 + rng.Intn(3))
		f2, v2 := run(4 + rng.Intn(4))
		return f1 == f2 && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: peak memory never exceeds a configured cap for the fused
// schedule (the cap is what the hybrid's guarantee rests on).
func TestQuickFusedRespectsCap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(12)
		spec := chem.MustSpec(n, 1, 5)
		// A cap that certainly admits the fused schedule.
		cap := int64(n)*int64(n)*int64(n)*int64(n)*8 + 1<<20
		res, err := Run(FullyFusedInner, Options{
			Spec: spec, Procs: 2, Mode: ga.Cost,
			TileN: 2 + rng.Intn(6), TileL: 1 + rng.Intn(4),
			GlobalMemBytes: cap,
		})
		if err != nil {
			return false
		}
		return res.PeakGlobalBytes <= cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
