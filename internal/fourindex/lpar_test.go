package fourindex

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/ga"
	"fourindex/internal/sym"
)

// Nested l tiling (Section 7.3's alternative) must preserve results for
// any batch width, including ragged final batches.
func TestLParCorrect(t *testing.T) {
	sp := chem.MustSpec(10, 1, 17)
	want := ReferencePacked(sp)
	for _, lp := range []int{1, 2, 3, 5, 99} {
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 4, TileL: 2, LPar: lp,
		})
		if err != nil {
			t.Fatalf("LPar=%d: %v", lp, err)
		}
		if d := sym.MaxAbsDiffC(res.C, want); d > 1e-9 {
			t.Errorf("LPar=%d: max diff %v", lp, d)
		}
	}
}

// LPar multiplies slab memory: the peak footprint grows with the batch.
func TestLParGrowsMemory(t *testing.T) {
	sp := chem.MustSpec(24, 1, 3)
	peak := func(lp int) int64 {
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 2, Mode: ga.Cost, TileN: 6, TileL: 3, LPar: lp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakGlobalBytes
	}
	p1, p2, p3 := peak(1), peak(2), peak(3)
	if p2 <= p1 || p3 <= p2 {
		t.Errorf("peaks must grow with LPar: %d, %d, %d", p1, p2, p3)
	}
	// Each extra slab in flight adds one slab set: the increments match.
	d12, d23 := float64(p2-p1), float64(p3-p2)
	if d23 < 0.8*d12 || d23 > 1.2*d12 {
		t.Errorf("slab increments inconsistent: %v vs %v", d12, d23)
	}
}

// With more processes than single-slab work units, processing l slabs
// concurrently shortens the simulated time.
func TestLParIncreasesParallelism(t *testing.T) {
	run, err := cluster.SystemB().Configure(224, 28)
	if err != nil {
		t.Fatal(err)
	}
	sp := chem.MustSpec(48, 1, 3)
	elapsed := func(lp int) float64 {
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 224, Mode: ga.Cost, Run: &run,
			TileN: 8, TileL: 4, LPar: lp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedSeconds
	}
	t1, t4 := elapsed(1), elapsed(4)
	if t4 >= t1 {
		t.Errorf("LPar=4 (%v s) should beat LPar=1 (%v s) at 224 procs", t4, t1)
	}
}

// Accounting must not depend on the batch width (same work, same data).
func TestLParAccountingInvariant(t *testing.T) {
	sp := chem.MustSpec(16, 1, 3)
	get := func(lp int) (int64, int64) {
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 2, Mode: ga.Cost, TileN: 4, TileL: 2, LPar: lp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Totals.Flops, res.CommVolume + res.IntraVolume
	}
	f1, v1 := get(1)
	f2, v2 := get(4)
	if f1 != f2 || v1 != v2 {
		t.Errorf("accounting differs with LPar: flops %d vs %d, volume %d vs %d", f1, f2, v1, v2)
	}
}
