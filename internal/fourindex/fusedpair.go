package fourindex

import (
	"fourindex/internal/blas"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
)

// runFusedPair executes op12/34 at full problem size (Listings 2 and 9):
// the first two contractions are fused over (k, l) — O1 lives only in a
// process-local buffer — and the last two are fused over (a, b) — O3
// lives only locally. Peak aggregate memory is |A| + |O2| ~ n^4/2, and
// the global<->local traffic is the Theorem 5.2 optimal
// |A| + 2|O2| + |C| (up to A's symmetric double reads).
//
// Following Section 7.3, work units are (tk, tl) tile pairs for op12 and
// (ta, tb) for op34: all alpha/beta values for a given (k, l) are
// computed by the same process, so O1 and O3 never touch global memory.
func runFusedPair(opt Options) (*Result, error) {
	c, err := newRunCtx(opt)
	if err != nil {
		return nil, err
	}
	defer c.beginRoot(Fused1234Pair)()
	g4 := c.grids4()

	// Single stage checkpoint: once the fused op12 pass has produced the
	// full O2, a restart recreates O2 from the snapshot and runs only the
	// fused op34 pass (idempotent PutT writes into C).
	ckptKey := Fused1234Pair.String()
	rec, resumed := c.ckptResume(ckptKey)
	var o2T *ga.TiledArray
	if resumed {
		if o2T, err = c.rt.CreateTiled("O2", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Fused1234Pair, err)
		}
		o2T.RestoreTiles(rec.State["O2"])
		o2T.Freeze()
		c.ckptRestore(rec, "op34-fused")
	} else {
		c.rt.BeginPhase("generate-A")
		aT, err := c.rt.CreateTiled("A", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy)
		if err != nil {
			return nil, oomWrap(Fused1234Pair, err)
		}
		if err := c.generateA(aT, 0); err != nil {
			return nil, err
		}

		c.rt.BeginPhase("op12-fused")
		if o2T, err = c.rt.CreateTiled("O2", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Fused1234Pair, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) {
			for tk := 0; tk < c.nt; tk++ {
				for tl := 0; tl <= tk; tl++ {
					if workOwner(p.Procs(), 12, tk, tl) != p.ID() {
						continue
					}
					c.op12Unit(p, aT, o2T, tk, tl, c.g.Width(tl), 0, c.nt)
				}
			}
		}); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(aT)
		if c.ckpt() != nil {
			c.ckptSave(faults.Record{
				Scheme:   ckptKey,
				Progress: 1,
				Words:    o2T.Bytes() / 8,
				State:    map[string][]float64{"O2": o2T.SnapshotTiles()},
			})
		}
		// O2 is complete: the op34 pass only reads it.
		o2T.Freeze()
	}

	// Cancellation boundary: the op12 stage above is checkpointed, so a
	// canceled run resumes directly into the op34 pass.
	if err := c.canceled(); err != nil {
		return nil, err
	}
	c.rt.BeginPhase("op34-fused")
	cT, err := c.rt.CreateTiledSparse("C", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy, c.cSparsity())
	if err != nil {
		return nil, oomWrap(Fused1234Pair, err)
	}
	if err := c.rt.Parallel(func(p *ga.Proc) {
		for ta := 0; ta < c.nt; ta++ {
			for tb := 0; tb <= ta; tb++ {
				if workOwner(p.Procs(), 34, ta, tb) != p.ID() {
					continue
				}
				c.op34Unit(p, o2T, cT, ta, tb, c.n, 0, false)
			}
		}
	}); err != nil {
		return nil, err
	}
	c.rt.DestroyTiled(o2T)
	c.ckptDrop(ckptKey)

	packed := c.extractC(cT)
	c.rt.DestroyTiled(cT)
	return c.result(Fused1234Pair, Fused1234Pair, packed), nil
}

// op12Unit computes O2[ta, tb<=ta, tk, lCoord] for every pair with ta in
// [ta0, ta1), fusing op1 and op2 through a process-local O1 buffer. It
// serves both the full-size op12/34 schedule (lCoord is a tile of the
// orbital grid, wl its width) and the Listing 10 inner fusion (aT and
// o2T carry a single slab tile in the l dimension: lCoord = 0, wl = slab
// width).
//
// aT is laid out (i, j, k, l) with symmetric (i, j). The alpha
// restriction [ta0, ta1) implements Section 7.3's alpha-parallelisation:
// splitting one (k, l) unit over several processes multiplies A reads
// but shortens the critical path.
func (c *runCtx) op12Unit(p *ga.Proc, aT, o2T *ga.TiledArray, tk, lCoord, wl, ta0, ta1 int) {
	wk := c.g.Width(tk)
	wkl := wk * wl

	// Gather the full A[., ., k in tk, l window] column block once:
	// each canonical (ti >= tj) tile is read a single time and
	// mirrored locally, so A moves |A| elements per chunk (the
	// Section 7.2 accounting), not 2|A|.
	afull := c.alloc(p, int64(c.n)*int64(c.n)*int64(wkl))
	tileW := c.g.T * c.g.T * wkl
	tmp := c.alloc(p, 2*int64(tileW))
	pairs := triPairs(c.nt)
	prefetch2(p, len(pairs), func(t int) *ga.Handle {
		return p.NbGetT(aT, sl(tmp, (t%2)*tileW), pairs[t][0], pairs[t][1], tk, lCoord)
	}, func(t int) {
		if !c.exec {
			return
		}
		ti, tj := pairs[t][0], pairs[t][1]
		i0, _ := c.g.Bounds(ti)
		wi := c.g.Width(ti)
		j0, _ := c.g.Bounds(tj)
		wj := c.g.Width(tj)
		got := tmp.Data[(t%2)*tileW:]
		for i := 0; i < wi; i++ {
			for j := 0; j < wj; j++ {
				src := got[(i*wj+j)*wkl : (i*wj+j+1)*wkl]
				dst := afull.Data[((i0+i)*c.n+(j0+j))*wkl : ((i0+i)*c.n+(j0+j)+1)*wkl]
				copy(dst, src)
				if ti != tj {
					mir := afull.Data[((j0+j)*c.n+(i0+i))*wkl : ((j0+j)*c.n+(i0+i)+1)*wkl]
					copy(mir, src)
				}
			}
		}
	})
	p.FreeLocal(tmp)

	// op1: O1[a, j, kl] = B[a, i] . A[i, (j, kl)] — one GEMM over the
	// whole (j, kl) column space per a tile.
	a0, _ := c.g.Bounds(ta0)
	_, a1 := c.g.Bounds(ta1 - 1)
	na := a1 - a0
	o1loc := c.alloc(p, int64(na)*int64(c.n)*int64(wkl))
	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	rest := c.n * wkl
	for ta := ta0; ta < ta1; ta++ {
		wa := c.fillBRow(p, bbuf.Data, ta)
		taOff, _ := c.g.Bounds(ta)
		if c.exec {
			c.gemm(p, false, false, wa, rest, c.n,
				bbuf.Data, c.n,
				afull.Data, rest,
				o1loc.Data[(taOff-a0)*rest:], rest)
		} else {
			c.gemm(p, false, false, wa, rest, c.n, nil, c.n, nil, rest, nil, rest)
		}
	}
	p.FreeLocal(afull)

	// op2: O2[a>=b, kl] = sum_j O1[a, j, kl] B[b, j].
	out := c.alloc(p, int64(c.g.T)*int64(c.g.T)*int64(wkl))
	wq := newNbQueue(p)
	for ta := ta0; ta < ta1; ta++ {
		wa := c.g.Width(ta)
		taOff, _ := c.g.Bounds(ta)
		for tb := 0; tb <= ta; tb++ {
			wb := c.fillBRow(p, bbuf.Data, tb)
			if c.exec {
				zero(out.Data[:wa*wb*wkl])
				for a := 0; a < wa; a++ {
					c.gemm(p, false, false, wb, wkl, c.n,
						bbuf.Data, c.n,
						o1loc.Data[(taOff-a0+a)*c.n*wkl:], wkl,
						out.Data[a*wb*wkl:], wkl)
				}
			} else {
				p.ComputeEff(int64(wa)*blas.GemmFlops(wb, wkl, c.n), c.eff)
			}
			wq.push(p.NbPutT(o2T, out.Data, ta, tb, tk, lCoord))
		}
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o1loc)
}

// op34Unit computes the C[(ta, tb), c>=d] tiles from O2[(ta, tb), k, l],
// fusing op3 and op4 through a process-local O3 buffer.
//
// When slab is false, o2T spans all canonical (k >= l) tiles, nl = n,
// lOff = 0, and results overwrite C with PutT. When slab is true, o2T
// carries a single l slab tile (coordinate 0) of width nl at absolute
// offset lOff, and the partial contribution of this outer iteration is
// accumulated into C with AccT.
func (c *runCtx) op34Unit(p *ga.Proc, o2T, cT *ga.TiledArray, ta, tb, nl, lOff int, slab bool) {
	wa, wb := c.g.Width(ta), c.g.Width(tb)
	wab := wa * wb

	// o2loc[(a,b)][k][l]: the full k x l window per (a, b).
	o2loc := c.alloc(p, int64(wab)*int64(c.n)*int64(nl))
	tileW := wab * c.g.T * max(c.g.T, nl)
	tmp := c.alloc(p, 2*int64(tileW))
	if slab {
		prefetch2(p, c.nt, func(tk int) *ga.Handle {
			return p.NbGetT(o2T, sl(tmp, (tk%2)*tileW), ta, tb, tk, 0)
		}, func(tk int) {
			if !c.exec {
				return
			}
			row, _ := c.g.Bounds(tk)
			wk := c.g.Width(tk)
			got := tmp.Data[(tk%2)*tileW:]
			for ab := 0; ab < wab; ab++ { // tile (a, b, k, l-slab)
				src := got[ab*wk*nl : (ab+1)*wk*nl]
				dst := o2loc.Data[(ab*c.n+row)*nl : (ab*c.n+row+wk)*nl]
				copy(dst, src)
			}
		})
	} else {
		// Canonical (tk >= tl) tiles; fill (k,l) and mirror (l,k).
		pairs := triPairs(c.nt)
		prefetch2(p, len(pairs), func(t int) *ga.Handle {
			return p.NbGetT(o2T, sl(tmp, (t%2)*tileW), ta, tb, pairs[t][0], pairs[t][1])
		}, func(t int) {
			if !c.exec {
				return
			}
			tk, tl := pairs[t][0], pairs[t][1]
			k0, _ := c.g.Bounds(tk)
			wk := c.g.Width(tk)
			l0, _ := c.g.Bounds(tl)
			wl := c.g.Width(tl)
			got := tmp.Data[(t%2)*tileW:]
			for ab := 0; ab < wab; ab++ {
				base := ab * c.n * c.n
				for k := 0; k < wk; k++ {
					for l := 0; l < wl; l++ {
						v := got[(ab*wk+k)*wl+l]
						o2loc.Data[base+(k0+k)*c.n+(l0+l)] = v
						o2loc.Data[base+(l0+l)*c.n+(k0+k)] = v
					}
				}
			}
		})
	}
	p.FreeLocal(tmp)

	// op3: O3[(a,b), c, l] = B[c, k] . O2[(a,b), k, l].
	o3loc := c.alloc(p, int64(wab)*int64(c.n)*int64(nl))
	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	for tc := 0; tc < c.nt; tc++ {
		wc := c.fillBRow(p, bbuf.Data, tc)
		c0, _ := c.g.Bounds(tc)
		if c.exec {
			for ab := 0; ab < wab; ab++ {
				c.gemm(p, false, false, wc, nl, c.n,
					bbuf.Data, c.n,
					o2loc.Data[ab*c.n*nl:], nl,
					o3loc.Data[(ab*c.n+c0)*nl:], nl)
			}
		} else {
			p.ComputeEff(int64(wab)*blas.GemmFlops(wc, nl, c.n), c.eff)
		}
	}
	p.FreeLocal(o2loc)

	// op4: C[(a,b), c>=d] (+)= O3[(a,b), c, l] . B[d, lOff+l]^T.
	ball := c.alloc(p, int64(c.n)*int64(nl))
	p.Compute(int64(coeffFlops) * int64(c.n) * int64(nl))
	if c.exec {
		for d := 0; d < c.n; d++ {
			for l := 0; l < nl; l++ {
				ball.Data[d*nl+l] = c.opt.Spec.ComputeB(d, lOff+l)
			}
		}
	}
	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(c.g.T))
	wq := newNbQueue(p)
	for tc := 0; tc < c.nt; tc++ {
		c0, _ := c.g.Bounds(tc)
		wc := c.g.Width(tc)
		for td := 0; td <= tc; td++ {
			if !cT.Stored(ta, tb, tc, td) {
				continue // spatial symmetry forbids this block
			}
			d0, _ := c.g.Bounds(td)
			wd := c.g.Width(td)
			if c.exec {
				zero(out.Data[:wab*wc*wd])
				for ab := 0; ab < wab; ab++ {
					c.gemm(p, false, true, wc, wd, nl,
						o3loc.Data[(ab*c.n+c0)*nl:], nl,
						ball.Data[d0*nl:], nl,
						out.Data[ab*wc*wd:], wd)
				}
			} else {
				p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wd, nl), c.eff)
			}
			if slab {
				wq.push(p.NbAccT(cT, 1, out.Data, ta, tb, tc, td))
			} else {
				wq.push(p.NbPutT(cT, out.Data, ta, tb, tc, td))
			}
		}
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(ball)
	p.FreeLocal(bbuf)
	p.FreeLocal(o3loc)
}
