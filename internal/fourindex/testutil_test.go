package fourindex

import (
	"testing"

	"fourindex/internal/cluster"
)

func mustRun(t *testing.T, procs int) cluster.Run {
	t.Helper()
	run, err := cluster.SystemB().Configure(procs, 28)
	if err != nil {
		t.Fatal(err)
	}
	return run
}
