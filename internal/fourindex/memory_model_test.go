package fourindex

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/sym"
)

// The measured peak footprint of the Listing 8 schedule tracks the
// Equation 7 formula (A slab + intermediate slab + C): block-triangular
// tile storage and the coexistence of O1/O2 slabs cost a bounded
// constant factor.
func TestMeasuredPeakTracksEquation7(t *testing.T) {
	for _, tc := range []struct{ n, tl int }{{24, 2}, {24, 4}, {48, 4}} {
		sp := chem.MustSpec(tc.n, 1, 3)
		res, err := Run(FullyFused, Options{
			Spec: sp, Procs: 2, Mode: ga.Cost, TileN: tc.n / 6, TileL: tc.tl,
		})
		if err != nil {
			t.Fatal(err)
		}
		analytic := float64(lb.MemoryFused1234(tc.n, 1, tc.tl) * 8)
		ratio := float64(res.PeakGlobalBytes) / analytic
		if ratio < 0.8 || ratio > 2.2 {
			t.Errorf("n=%d tl=%d: measured/Eq7 = %v (measured %d, analytic %g)",
				tc.n, tc.tl, ratio, res.PeakGlobalBytes, analytic)
		}
	}
}

// Likewise the Listing 10 schedule against Equation 8.
func TestMeasuredPeakTracksEquation8(t *testing.T) {
	for _, tc := range []struct{ n, tl int }{{24, 2}, {48, 4}} {
		sp := chem.MustSpec(tc.n, 1, 3)
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 2, Mode: ga.Cost, TileN: tc.n / 6, TileL: tc.tl,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Equation 8 includes the O1 slab, which Listing 10 keeps
		// process-local rather than global; the measured global peak
		// therefore sits between Eq 7 and Eq 8.
		lo := float64(lb.MemoryFused1234(tc.n, 1, tc.tl)*8) * 0.8
		hi := float64(lb.MemoryFused1234Inner(tc.n, 1, tc.tl)*8) * 2.2
		got := float64(res.PeakGlobalBytes)
		if got < lo || got > hi {
			t.Errorf("n=%d tl=%d: measured %g outside [%g, %g]", tc.n, tc.tl, got, lo, hi)
		}
	}
}

// Peak memory grows linearly in the fused tile width (the Eq. 7/8 slab
// terms), with the C intercept.
func TestPeakLinearInTileL(t *testing.T) {
	sp := chem.MustSpec(48, 1, 3)
	peak := func(tl int) float64 {
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 2, Mode: ga.Cost, TileN: 8, TileL: tl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.PeakGlobalBytes)
	}
	p2, p4, p8 := peak(2), peak(4), peak(8)
	d1, d2 := p4-p2, p8-p4
	// Doubling the tile roughly doubles the slab increment.
	if d2 < 1.6*d1 || d2 > 2.4*d1 {
		t.Errorf("slab increments not linear: %v then %v", d1, d2)
	}
}

// The communication-volume formula (Section 7.2) follows the 1/Tl decay
// of the per-iteration C accumulation.
func TestCommDecaysWithTileL(t *testing.T) {
	sp := chem.MustSpec(48, 4, 3)
	vol := func(tl int) float64 {
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 4, Mode: ga.Cost, TileN: 8, TileL: tl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.CommVolume + res.IntraVolume)
	}
	v2, v8 := vol(2), vol(8)
	if v8 >= v2 {
		t.Fatalf("volume must fall with larger tiles: %v vs %v", v8, v2)
	}
	// Both measured volumes track the analytic formula within 2.5x.
	for _, tc := range []struct {
		tl int
		v  float64
	}{{2, v2}, {8, v8}} {
		want := float64(lb.CommVolumeFused(48, 4, tc.tl, 1))
		if r := tc.v / want; r < 0.4 || r > 2.5 {
			t.Errorf("tl=%d: measured/analytic = %v", tc.tl, r)
		}
	}
}

// The analytic communication formulas for the unfused and op12/34
// schedules track the simulated traffic. The formulas use the exact
// packed sizes of Table 1; the simulator moves block-triangular tiles
// whose pair dimensions carry a (Pairs(nt) * T^2 / Pairs(n)) inflation,
// so the op12/34 comparison — whose five terms are all M^2-shaped — is
// exact once that factor is applied.
func TestCommFormulasTrackSimulation(t *testing.T) {
	const (
		n  = 32
		tn = 8
		nt = n / tn
	)
	sp := chem.MustSpec(n, 1, 3)
	vol := func(s Scheme) float64 {
		res, err := Run(s, Options{Spec: sp, Procs: 4, Mode: ga.Cost, TileN: tn, TileL: tn})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.CommVolume + res.IntraVolume)
	}
	// Block inflation of one packed pair dimension.
	bf := float64(sym.Pairs(nt)*tn*tn) / float64(sym.Pairs(n))

	// op12/34: generation writes |A|, the schedule reads |A|, round
	// trips |O2| and writes |C| — all M^2 terms.
	pairWant := bf * bf * float64(sym.ExactSizes(n, 1).A+int64(lb.CommVolumeFusedPair(n, 1)))
	pairGot := vol(Fused1234Pair)
	if r := pairGot / pairWant; r < 0.98 || r > 1.02 {
		t.Errorf("fused12-34: measured/block-analytic = %v (measured %g, want %g)", r, pairGot, pairWant)
	}

	// Unfused: mixed tensor shapes make the block factors heterogeneous;
	// the exact-size formula must still be right within the inflation.
	unfGot := vol(Unfused)
	unfWant := float64(lb.CommVolumeUnfused(n, 1))
	if r := unfGot / unfWant; r < 0.9 || r > bf*bf*1.2 {
		t.Errorf("unfused: measured/analytic = %v outside [0.9, %v]", r, bf*bf*1.2)
	}
}
