package fourindex

import (
	"fourindex/internal/blas"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/tile"
)

// runNWChemFused models NWChem's production fused 12-34 variant: the
// memory profile of Listing 2 (peak |A| + |O2| ~ n^4/2) but with
// Listing 4's mapping-agnostic owner-computes structure — the O1 and O3
// chunks round-trip through global memory and work is distributed
// without the Section 7.3 communication-avoiding mapping. It also
// parallelises only within one (k, l) chunk at a time, which limits
// parallelism exactly as Section 7.3 describes.
//
// This is the "NWChem Best" baseline of the evaluation whenever the
// unfused transform does not fit: correct, memory-lean, but moving
// ~2(|O1| + |O3|) more data than the op12/34 mapping of Listing 9 and
// with poorer load balance at scale.
// nwchemKernelEfficiency is the sustained fraction of tuned-GEMM
// throughput attributed to the baseline's per-row DGEMM structure
// (Listing 4: one DGEMM call per i inside the alpha loop).
const nwchemKernelEfficiency = 0.35

func runNWChemFused(opt Options) (*Result, error) {
	c, err := newRunCtx(opt)
	if err != nil {
		return nil, err
	}
	defer c.beginRoot(NWChemFused)()
	c.eff = nwchemKernelEfficiency
	g4 := c.grids4()

	// Single stage checkpoint, as in runFusedPair: a restart after the
	// op12-chunks pass restores O2 and reruns only the op34-chunks pass
	// (idempotent PutT writes into C).
	ckptKey := NWChemFused.String()
	rec, resumed := c.ckptResume(ckptKey)
	var o2T *ga.TiledArray
	if resumed {
		if o2T, err = c.rt.CreateTiled("O2", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(NWChemFused, err)
		}
		o2T.RestoreTiles(rec.State["O2"])
		o2T.Freeze()
		c.ckptRestore(rec, "op34-chunks")
	} else {
		c.rt.BeginPhase("generate-A")
		aT, err := c.rt.CreateTiled("A", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy)
		if err != nil {
			return nil, oomWrap(NWChemFused, err)
		}
		if err := c.generateA(aT, 0); err != nil {
			return nil, err
		}

		c.rt.BeginPhase("op12-chunks")
		if o2T, err = c.rt.CreateTiled("O2", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(NWChemFused, err)
		}

		// Fused op12: one (tk, tl) chunk at a time; the O1 chunk is a
		// distributed array, written by op1 workers and read back by op2
		// workers.
		for tk := 0; tk < c.nt; tk++ {
			for tl := 0; tl <= tk; tl++ {
				wk, wl := c.g.Width(tk), c.g.Width(tl)
				chunkGrids := []tile.Grid{c.g, c.g, tile.NewGrid(wk, wk), tile.NewGrid(wl, wl)}
				o1chunk, err := c.rt.CreateTiled("O1chunk", chunkGrids, nil, opt.Policy)
				if err != nil {
					return nil, oomWrap(NWChemFused, err)
				}
				if err := c.rt.Parallel(func(p *ga.Proc) {
					for tj := 0; tj < c.nt; tj++ {
						if workOwner(p.Procs(), 201, tj, tk, tl) != p.ID() {
							continue
						}
						c.op1Chunk(p, aT, o1chunk, tj, tk, tl)
					}
				}); err != nil {
					return nil, err
				}
				o1chunk.Freeze() // op2 workers only read it back
				if err := c.rt.Parallel(func(p *ga.Proc) {
					for ta := 0; ta < c.nt; ta++ {
						if workOwner(p.Procs(), 202, ta, tk, tl) != p.ID() {
							continue
						}
						c.op2Chunk(p, o1chunk, o2T, ta, tk, tl)
					}
				}); err != nil {
					return nil, err
				}
				c.rt.DestroyTiled(o1chunk)
			}
		}
		c.rt.DestroyTiled(aT)
		if c.ckpt() != nil {
			c.ckptSave(faults.Record{
				Scheme:   ckptKey,
				Progress: 1,
				Words:    o2T.Bytes() / 8,
				State:    map[string][]float64{"O2": o2T.SnapshotTiles()},
			})
		}
		// O2 is complete: the op34 chunk passes only read it.
		o2T.Freeze()
	}

	// Cancellation boundary: the op12 stage above is checkpointed, so a
	// canceled run resumes directly into the op34 chunk passes.
	if err := c.canceled(); err != nil {
		return nil, err
	}
	c.rt.BeginPhase("op34-chunks")
	cT, err := c.rt.CreateTiledSparse("C", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy, c.cSparsity())
	if err != nil {
		return nil, oomWrap(NWChemFused, err)
	}

	// Fused op34: one (ta, tb) chunk at a time with a distributed O3
	// chunk.
	for ta := 0; ta < c.nt; ta++ {
		for tb := 0; tb <= ta; tb++ {
			wa, wb := c.g.Width(ta), c.g.Width(tb)
			chunkGrids := []tile.Grid{tile.NewGrid(wa, wa), tile.NewGrid(wb, wb), c.g, c.g}
			o3chunk, err := c.rt.CreateTiled("O3chunk", chunkGrids, nil, opt.Policy)
			if err != nil {
				return nil, oomWrap(NWChemFused, err)
			}
			if err := c.rt.Parallel(func(p *ga.Proc) {
				for tl := 0; tl < c.nt; tl++ {
					if workOwner(p.Procs(), 203, ta, tb, tl) != p.ID() {
						continue
					}
					c.op3Chunk(p, o2T, o3chunk, ta, tb, tl)
				}
			}); err != nil {
				return nil, err
			}
			o3chunk.Freeze() // op4 workers only read it back
			if err := c.rt.Parallel(func(p *ga.Proc) {
				for tc := 0; tc < c.nt; tc++ {
					if workOwner(p.Procs(), 204, ta, tb, tc) != p.ID() {
						continue
					}
					c.op4Chunk(p, o3chunk, cT, ta, tb, tc)
				}
			}); err != nil {
				return nil, err
			}
			c.rt.DestroyTiled(o3chunk)
		}
	}
	c.rt.DestroyTiled(o2T)
	c.ckptDrop(ckptKey)

	packed := c.extractC(cT)
	c.rt.DestroyTiled(cT)
	return c.result(NWChemFused, NWChemFused, packed), nil
}

// op1Chunk computes O1[all a, tj, chunk (tk, tl)] into the chunk array.
func (c *runCtx) op1Chunk(p *ga.Proc, aT, o1chunk *ga.TiledArray, tj, tk, tl int) {
	wj, wk, wl := c.g.Width(tj), c.g.Width(tk), c.g.Width(tl)
	rest := wj * wk * wl

	abig := c.alloc(p, int64(c.n)*int64(rest))
	tileW := c.g.T * rest
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(ti int) *ga.Handle {
		buf := sl(tmp, (ti%2)*tileW)
		if ti >= tj {
			return p.NbGetT(aT, buf, ti, tj, tk, tl)
		}
		return p.NbGetT(aT, buf, tj, ti, tk, tl)
	}, func(ti int) {
		if !c.exec {
			return
		}
		row, _ := c.g.Bounds(ti)
		wi := c.g.Width(ti)
		got := tmp.Data[(ti%2)*tileW:]
		if ti >= tj { // tile laid out (i, j, k, l): rows i, cols rest
			copy(abig.Data[row*rest:(row+wi)*rest], got[:wi*rest])
		} else { // tile laid out (j, i, k, l): transpose (i, j)
			wkl := wk * wl
			for j := 0; j < wj; j++ {
				for i := 0; i < wi; i++ {
					src := got[(j*wi+i)*wkl : (j*wi+i+1)*wkl]
					dst := abig.Data[((row+i)*wj+j)*wkl : ((row+i)*wj+j+1)*wkl]
					copy(dst, src)
				}
			}
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(c.g.T)*int64(rest))
	wq := newNbQueue(p)
	for ta := 0; ta < c.nt; ta++ {
		wa := c.fillBRow(p, bbuf.Data, ta)
		if c.exec {
			zero(out.Data[:wa*rest])
		}
		c.gemm(p, false, false, wa, rest, c.n, bbuf.Data, c.n, abig.Data, rest, out.Data, rest)
		wq.push(p.NbPutT(o1chunk, out.Data, ta, tj, 0, 0))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(abig)
}

// op2Chunk reads the O1 chunk back from global memory and produces the
// O2 tiles of this (tk, tl) chunk for one ta.
func (c *runCtx) op2Chunk(p *ga.Proc, o1chunk, o2T *ga.TiledArray, ta, tk, tl int) {
	wa, wk, wl := c.g.Width(ta), c.g.Width(tk), c.g.Width(tl)
	wkl := wk * wl

	o1big := c.alloc(p, int64(wa)*int64(c.n)*int64(wkl))
	tileW := wa * c.g.T * wkl
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(tj int) *ga.Handle {
		return p.NbGetT(o1chunk, sl(tmp, (tj%2)*tileW), ta, tj, 0, 0)
	}, func(tj int) {
		if !c.exec {
			return
		}
		col, _ := c.g.Bounds(tj)
		wj := c.g.Width(tj)
		got := tmp.Data[(tj%2)*tileW:]
		for a := 0; a < wa; a++ {
			src := got[a*wj*wkl : (a+1)*wj*wkl]
			dst := o1big.Data[(a*c.n+col)*wkl : (a*c.n+col+wj)*wkl]
			copy(dst, src)
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(wa)*int64(c.g.T)*int64(wkl))
	wq := newNbQueue(p)
	for tb := 0; tb <= ta; tb++ {
		wb := c.fillBRow(p, bbuf.Data, tb)
		if c.exec {
			zero(out.Data[:wa*wb*wkl])
			for a := 0; a < wa; a++ {
				c.gemm(p, false, false, wb, wkl, c.n,
					bbuf.Data, c.n,
					o1big.Data[a*c.n*wkl:], wkl,
					out.Data[a*wb*wkl:], wkl)
			}
		} else {
			p.ComputeEff(int64(wa)*blas.GemmFlops(wb, wkl, c.n), c.eff)
		}
		wq.push(p.NbPutT(o2T, out.Data, ta, tb, tk, tl))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o1big)
}

// op3Chunk computes O3[(ta,tb) chunk, all c, tl] into the chunk array.
func (c *runCtx) op3Chunk(p *ga.Proc, o2T, o3chunk *ga.TiledArray, ta, tb, tl int) {
	wa, wb, wl := c.g.Width(ta), c.g.Width(tb), c.g.Width(tl)
	wab := wa * wb

	o2big := c.alloc(p, int64(wab)*int64(c.n)*int64(wl))
	tileW := wab * c.g.T * c.g.T
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(tk int) *ga.Handle {
		buf := sl(tmp, (tk%2)*tileW)
		if tk >= tl {
			return p.NbGetT(o2T, buf, ta, tb, tk, tl)
		}
		return p.NbGetT(o2T, buf, ta, tb, tl, tk)
	}, func(tk int) {
		if !c.exec {
			return
		}
		row, _ := c.g.Bounds(tk)
		wk := c.g.Width(tk)
		got := tmp.Data[(tk%2)*tileW:]
		if tk >= tl { // tile (a, b, k, l)
			for ab := 0; ab < wab; ab++ {
				src := got[ab*wk*wl : (ab+1)*wk*wl]
				dst := o2big.Data[(ab*c.n+row)*wl : (ab*c.n+row+wk)*wl]
				copy(dst, src)
			}
		} else { // tile (a, b, l, k): transpose (k, l)
			for ab := 0; ab < wab; ab++ {
				for l := 0; l < wl; l++ {
					for k := 0; k < wk; k++ {
						o2big.Data[(ab*c.n+row+k)*wl+l] = got[(ab*wl+l)*wk+k]
					}
				}
			}
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(wl))
	wq := newNbQueue(p)
	for tc := 0; tc < c.nt; tc++ {
		wc := c.fillBRow(p, bbuf.Data, tc)
		if c.exec {
			zero(out.Data[:wab*wc*wl])
			for ab := 0; ab < wab; ab++ {
				c.gemm(p, false, false, wc, wl, c.n,
					bbuf.Data, c.n,
					o2big.Data[ab*c.n*wl:], wl,
					out.Data[ab*wc*wl:], wl)
			}
		} else {
			p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wl, c.n), c.eff)
		}
		// Chunk layout (a, b, c, l): one tile per (tc, tl). The
		// (ab, c, l) -> (a, b, c, l) reorder is the identity because ab
		// is already (a, b) row-major.
		if c.exec {
			wq.push(p.NbPutT(o3chunk, out.Data, 0, 0, tc, tl))
		} else {
			wq.push(p.NbPutT(o3chunk, nil, 0, 0, tc, tl))
		}
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o2big)
}

// op4Chunk reads the O3 chunk back and produces C[(ta,tb), tc, td<=tc].
func (c *runCtx) op4Chunk(p *ga.Proc, o3chunk, cT *ga.TiledArray, ta, tb, tc int) {
	wa, wb, wc := c.g.Width(ta), c.g.Width(tb), c.g.Width(tc)
	wab := wa * wb

	// o3big[(a,b)][c in tc][l] over all l.
	o3big := c.alloc(p, int64(wab)*int64(wc)*int64(c.n))
	tileW := wab * wc * c.g.T
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(tl int) *ga.Handle {
		return p.NbGetT(o3chunk, sl(tmp, (tl%2)*tileW), 0, 0, tc, tl)
	}, func(tl int) {
		if !c.exec {
			return
		}
		col, _ := c.g.Bounds(tl)
		wl := c.g.Width(tl)
		got := tmp.Data[(tl%2)*tileW:]
		for abc := 0; abc < wab*wc; abc++ { // chunk tile (a, b, c, l)
			src := got[abc*wl : (abc+1)*wl]
			dst := o3big.Data[abc*c.n+col:]
			copy(dst[:wl], src)
		}
	})
	p.FreeLocal(tmp)

	ball := c.alloc(p, int64(c.n)*int64(c.n))
	p.Compute(int64(coeffFlops) * int64(c.n) * int64(c.n))
	if c.exec {
		for d := 0; d < c.n; d++ {
			for l := 0; l < c.n; l++ {
				ball.Data[d*c.n+l] = c.opt.Spec.ComputeB(d, l)
			}
		}
	}

	out := c.alloc(p, int64(wab)*int64(wc)*int64(c.g.T))
	wq := newNbQueue(p)
	for td := 0; td <= tc; td++ {
		if !cT.Stored(ta, tb, tc, td) {
			continue // spatial symmetry forbids this block
		}
		d0, _ := c.g.Bounds(td)
		wd := c.g.Width(td)
		if c.exec {
			zero(out.Data[:wab*wc*wd])
			for ab := 0; ab < wab; ab++ {
				c.gemm(p, false, true, wc, wd, c.n,
					o3big.Data[ab*wc*c.n:], c.n,
					ball.Data[d0*c.n:], c.n,
					out.Data[ab*wc*wd:], wd)
			}
		} else {
			p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wd, c.n), c.eff)
		}
		wq.push(p.NbPutT(cT, out.Data, ta, tb, tc, td))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(ball)
	p.FreeLocal(o3big)
}
