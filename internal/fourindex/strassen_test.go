package fourindex

import (
	"testing"

	"fourindex/internal/blas"
	"fourindex/internal/chem"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/sym"
)

// forceCrossover shrinks the process-wide Strassen crossover so the
// recursion engages at test-sized extents, restoring it afterwards.
func forceCrossover(t *testing.T, cut int) {
	t.Helper()
	prev := blas.StrassenCrossover()
	blas.SetStrassenCrossover(cut)
	t.Cleanup(func() { blas.SetStrassenCrossover(prev) })
}

// TestStrassenOffBitwiseStable pins the opt-in contract: with
// Options.Strassen false — and with it true but the crossover above
// every GEMM dimension the run produces, where the path delegates
// entirely — C is bitwise identical to the default path for every
// schedule.
func TestStrassenOffBitwiseStable(t *testing.T) {
	sp := chem.MustSpec(12, 2, 11)
	base := Options{Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 4, TileL: 3}
	for _, scheme := range append(append([]Scheme{}, allSchemes...), NWChemFused, Hybrid) {
		plain, err := Run(scheme, base)
		if err != nil {
			t.Fatalf("%v plain: %v", scheme, err)
		}
		off := base
		off.Strassen = false
		offRes, err := Run(scheme, off)
		if err != nil {
			t.Fatalf("%v strassen off: %v", scheme, err)
		}
		bitwiseEqual(t, scheme.String()+" strassen=false", offRes.C.Data(), plain.C.Data())

		// Default crossover (256) far exceeds any GEMM dimension at
		// n=12, so even Strassen=true must delegate bitwise.
		on := base
		on.Strassen = true
		onRes, err := Run(scheme, on)
		if err != nil {
			t.Fatalf("%v strassen above crossover: %v", scheme, err)
		}
		bitwiseEqual(t, scheme.String()+" strassen above crossover", onRes.C.Data(), plain.C.Data())
	}
}

// TestStrassenSchedulesMatchClassic forces the crossover down so the
// Winograd recursion really engages inside the schedules, then checks
// every schedule's C against the classic path within reassociation
// rounding.
func TestStrassenSchedulesMatchClassic(t *testing.T) {
	forceCrossover(t, 8)
	sp := chem.MustSpec(12, 2, 11)
	base := Options{Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 4, TileL: 3}
	for _, scheme := range append(append([]Scheme{}, allSchemes...), NWChemFused, Hybrid) {
		classic, err := Run(scheme, base)
		if err != nil {
			t.Fatalf("%v classic: %v", scheme, err)
		}
		o := base
		o.Strassen = true
		str, err := Run(scheme, o)
		if err != nil {
			t.Fatalf("%v strassen: %v", scheme, err)
		}
		if d := sym.MaxAbsDiffC(str.C, classic.C); d > 1e-9 {
			t.Errorf("%v: max |classic-strassen| = %g", scheme, d)
		}
	}
}

// TestStrassenSelfDeterministic pins that a Strassen run is
// deterministic against itself: same options, same crossover, bitwise
// identical C — with and without overlap, which must not move a bit
// either way.
func TestStrassenSelfDeterministic(t *testing.T) {
	forceCrossover(t, 8)
	sp := chem.MustSpec(12, 2, 11)
	opt := Options{Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 4, TileL: 3, Strassen: true}
	for _, scheme := range append(append([]Scheme{}, allSchemes...), NWChemFused, Hybrid) {
		first, err := Run(scheme, opt)
		if err != nil {
			t.Fatalf("%v first: %v", scheme, err)
		}
		again, err := Run(scheme, opt)
		if err != nil {
			t.Fatalf("%v again: %v", scheme, err)
		}
		bitwiseEqual(t, scheme.String()+" strassen repeat", again.C.Data(), first.C.Data())

		o := opt
		o.Overlap = true
		overlapped, err := Run(scheme, o)
		if err != nil {
			t.Fatalf("%v strassen overlap: %v", scheme, err)
		}
		bitwiseEqual(t, scheme.String()+" strassen overlap", overlapped.C.Data(), first.C.Data())
	}
}

// TestChaosStrassenDeterministic runs the seeded fault suite with the
// Strassen path engaged: every completed faulty run must reproduce the
// fault-free Strassen C bitwise — checkpoint-restart replays the same
// kernels in the same order, so the reassociated arithmetic is still
// deterministic.
func TestChaosStrassenDeterministic(t *testing.T) {
	forceCrossover(t, 4)
	sp := chem.MustSpec(8, 1, 5)
	opt := Options{Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 3, TileL: 2, Strassen: true}
	seeds := uint64(20)
	if testing.Short() {
		seeds = 5
	}
	for _, scheme := range []Scheme{Unfused, FullyFused, FullyFusedInner, NWChemFused, Hybrid} {
		clean, err := Run(scheme, opt)
		if err != nil {
			t.Fatalf("%v fault-free: %v", scheme, err)
		}
		want := clean.C.Data()
		completed := 0
		for seed := uint64(1); seed <= seeds; seed++ {
			o := opt
			o.Faults = &faults.Injection{
				Plan:       faults.RandomPlan(seed, 0.1, o.Procs),
				Checkpoint: faults.NewMemCheckpoint(),
			}
			res, err := Run(scheme, o)
			if err != nil {
				if !faults.Injected(err) {
					t.Errorf("%v seed %d: failed with a non-injected error: %v", scheme, seed, err)
				}
				continue
			}
			completed++
			bitwiseEqual(t, scheme.String()+" strassen chaos", res.C.Data(), want)
		}
		if completed == 0 {
			t.Errorf("%v: no seed out of %d completed under a 10%% fault rate with strassen on", scheme, seeds)
		}
	}
}
