package fourindex

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/sym"
)

// With AllowSpill, a memory-capped unfused run completes out of core
// instead of failing, producing correct results and nonzero disk
// traffic.
func TestSpillCorrectAndAccounted(t *testing.T) {
	sp := chem.MustSpec(12, 1, 9)
	cap := lb.MemoryUnfused(12, 1) * 8 / 2
	res, err := Run(Unfused, Options{
		Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 4,
		GlobalMemBytes: cap, AllowSpill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DiskVolume == 0 {
		t.Error("capped spilling run should move data through disk")
	}
	if d := sym.MaxAbsDiffC(res.C, ReferencePacked(sp)); d > 1e-9 {
		t.Errorf("out-of-core result wrong by %v", d)
	}
	if res.PeakGlobalBytes > cap {
		t.Errorf("in-memory peak %d exceeds the cap %d", res.PeakGlobalBytes, cap)
	}
}

// Without AllowSpill the same configuration fails; the flag is what
// distinguishes "Failed" from out-of-core in the evaluation.
func TestSpillFlagGatesOOM(t *testing.T) {
	sp := chem.MustSpec(12, 1, 9)
	cap := lb.MemoryUnfused(12, 1) * 8 / 2
	if _, err := Run(Unfused, Options{
		Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 4, GlobalMemBytes: cap,
	}); err == nil {
		t.Error("capped run without AllowSpill should fail")
	}
}

// The paper's Section 3 motivation quantified: on a memory-constrained
// System A slice, the spilling unfused transform is far slower than the
// zero-spill fully fused schedule, because the collective file-system
// bandwidth is shared by every rank.
func TestSpillSlowerThanZeroSpillFused(t *testing.T) {
	run, err := cluster.SystemA().Configure(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	sp := chem.MustSpec(64, 1, 9)
	cap := lb.MemoryUnfused(64, 1) * 8 * 6 / 10
	base := Options{
		Spec: sp, Procs: 64, Mode: ga.Cost, Run: &run,
		TileN: 8, TileL: 8, GlobalMemBytes: cap,
	}

	spillOpts := base
	spillOpts.AllowSpill = true
	spilled, err := Run(Unfused, spillOpts)
	if err != nil {
		t.Fatal(err)
	}
	if spilled.DiskVolume == 0 {
		t.Fatal("expected disk traffic in the spilling run")
	}

	fused, err := Run(FullyFusedInner, base)
	if err != nil {
		t.Fatal(err)
	}
	if fused.DiskVolume != 0 {
		t.Error("zero-spill schedule must not touch disk")
	}
	if fused.ElapsedSeconds >= spilled.ElapsedSeconds {
		t.Errorf("zero-spill fused (%.1f s) should beat spilling unfused (%.1f s)",
			fused.ElapsedSeconds, spilled.ElapsedSeconds)
	}
	slowdown := spilled.ElapsedSeconds / fused.ElapsedSeconds
	t.Logf("spilling unfused is %.1fx slower than zero-spill fused", slowdown)
	if slowdown < 1.5 {
		t.Errorf("spill slowdown %.2fx implausibly small for shared disk bandwidth", slowdown)
	}
}

// Disk traffic must appear in the phase breakdown's totals too.
func TestSpillPhases(t *testing.T) {
	sp := chem.MustSpec(12, 1, 9)
	cap := lb.MemoryUnfused(12, 1) * 8 / 2
	res, err := Run(Unfused, Options{
		Spec: sp, Procs: 2, Mode: ga.Cost, TileN: 4,
		GlobalMemBytes: cap, AllowSpill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) == 0 {
		t.Fatal("phase breakdown missing")
	}
	names := map[string]bool{}
	for _, ph := range res.Phases {
		names[ph.Name] = true
	}
	for _, want := range []string{"generate-A", "op1", "op2", "op3", "op4"} {
		if !names[want] {
			t.Errorf("phase %q missing from breakdown: %v", want, names)
		}
	}
}
