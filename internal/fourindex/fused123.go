package fourindex

import (
	"fmt"

	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/tile"
)

// runFused123 executes the op123/4 configuration: loop l is fused across
// the first THREE contractions (A, O1 and O2 exist only as slabs), but
// O3 is fully materialised and the fourth contraction runs unfused on
// it. Theorem 5.2 proves this strictly worse than op12/34 — |O3| is the
// larger intermediate (n^4/2 vs n^4/4), so its round trip through global
// memory costs more than O2's — and this implementation exists precisely
// so that ordering is measurable on the simulator rather than only on
// the lower-bound formulas.
//
// The fused-loop tiling reuses the data-tile grid (TileL is ignored):
// the O3 slab of each outer iteration lands directly in the full O3
// tensor's matching l tile.
func runFused123(opt Options) (*Result, error) {
	c, err := newRunCtx(opt)
	if err != nil {
		return nil, err
	}
	defer c.beginRoot(Fused123)()
	g4 := c.grids4()

	// Full O3[a>=b, c, l], written slab-by-slab.
	o3T, err := c.rt.CreateTiled("O3", g4, [][2]int{{0, 1}}, opt.Policy)
	if err != nil {
		return nil, oomWrap(Fused123, err)
	}

	// Resume at the slab after the last one a prior attempt completed.
	// The final slab's record has Progress == n, which resolves to
	// startTile == nt: the loop is skipped and only op4 (idempotent
	// PutT writes) re-runs against the restored O3.
	startTile := 0
	ckptKey := Fused123.String()
	if rec, ok := c.ckptResume(ckptKey); ok {
		if t, aligned := tileStartingAt(c.g, rec.Progress); aligned {
			o3T.RestoreTiles(rec.State["O3"])
			startTile = t
			c.ckptRestore(rec, fmt.Sprintf("l-slab %d", t))
		}
	}

	for tlo := startTile; tlo < c.nt; tlo++ {
		// Cancellation boundary: every slab before tlo is checkpointed,
		// so stopping here loses no completed work.
		if err := c.canceled(); err != nil {
			return nil, err
		}
		lOff, lHi := c.g.Bounds(tlo)
		wl := lHi - lOff
		slabGrids := []tile.Grid{c.g, c.g, c.g, tile.NewGrid(wl, wl)}
		if c.rt.Tracing() {
			// Guarded so the disabled path never pays the Sprintf.
			c.rt.TraceMark(fmt.Sprintf("l-slab %d/%d", tlo, c.nt))
		}

		c.rt.BeginPhase("generate-A-slab")
		aT, err := c.rt.CreateTiled("Al", slabGrids, [][2]int{{0, 1}}, opt.Policy)
		if err != nil {
			return nil, oomWrap(Fused123, err)
		}
		if err := c.generateA(aT, lOff); err != nil {
			return nil, err
		}

		// op1 and op2 over the slab, exactly as in Listing 8.
		c.rt.BeginPhase("op1")
		o1T, err := c.rt.CreateTiled("O1l", slabGrids, nil, opt.Policy)
		if err != nil {
			return nil, oomWrap(Fused123, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) {
			for tj := 0; tj < c.nt; tj++ {
				for tk := 0; tk < c.nt; tk++ {
					if workOwner(p.Procs(), 121, tj, tk, tlo) != p.ID() {
						continue
					}
					c.op1Slab(p, aT, o1T, tj, tk, wl)
				}
			}
		}); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(aT)
		o1T.Freeze()

		c.rt.BeginPhase("op2")
		o2T, err := c.rt.CreateTiled("O2l", slabGrids, [][2]int{{0, 1}}, opt.Policy)
		if err != nil {
			return nil, oomWrap(Fused123, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) {
			for ta := 0; ta < c.nt; ta++ {
				for tk := 0; tk < c.nt; tk++ {
					if workOwner(p.Procs(), 122, ta, tk, tlo) != p.ID() {
						continue
					}
					c.op2Slab(p, o1T, o2T, ta, tk, wl)
				}
			}
		}); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(o1T)
		o2T.Freeze()

		// op3 writes this slab's tiles into the FULL O3 tensor.
		c.rt.BeginPhase("op3")
		if err := c.rt.Parallel(func(p *ga.Proc) {
			for ta := 0; ta < c.nt; ta++ {
				for tb := 0; tb <= ta; tb++ {
					if workOwner(p.Procs(), 123, ta, tb, tlo) != p.ID() {
						continue
					}
					c.op3Slab(p, o2T, o3T, ta, tb, wl, tlo)
				}
			}
		}); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(o2T)
		if c.ckpt() != nil {
			c.ckptSave(faults.Record{
				Scheme:   ckptKey,
				Progress: lHi,
				Words:    o3T.Bytes() / 8,
				State:    map[string][]float64{"O3": o3T.SnapshotTiles()},
			})
		}
	}

	// op4 unfused over the materialised O3, now complete and read-only.
	o3T.Freeze()
	c.rt.BeginPhase("op4")
	cT, err := c.rt.CreateTiledSparse("C", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy, c.cSparsity())
	if err != nil {
		return nil, oomWrap(Fused123, err)
	}
	if err := c.rt.Parallel(func(p *ga.Proc) { c.op4Unfused(p, o3T, cT) }); err != nil {
		return nil, err
	}
	c.rt.DestroyTiled(o3T)
	c.ckptDrop(ckptKey)

	packed := c.extractC(cT)
	c.rt.DestroyTiled(cT)
	return c.result(Fused123, Fused123, packed), nil
}
