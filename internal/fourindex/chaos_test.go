package fourindex

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/sym"
	"fourindex/internal/trace"
)

// bitwiseEqual fails the test at the first element where got diverges
// from the fault-free want.
func bitwiseEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: C has %d elements, fault-free has %d", label, len(got), len(want))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: C[%d] = %v, fault-free run has %v", label, i, got[i], want[i])
			return
		}
	}
}

// Every schedule, run under seeded random fault plans with a 10%
// transient rate (half the seeds also inject a process crash), must
// either complete with C bitwise identical to a fault-free run or fail
// with a typed injected error — never return a silently wrong answer.
func TestChaosSchemesDeterministic(t *testing.T) {
	sp := chem.MustSpec(8, 1, 5)
	opt := Options{Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 3, TileL: 2}
	seeds := uint64(50)
	if testing.Short() {
		seeds = 8
	}
	schemes := append(append([]Scheme{}, allSchemes...), NWChemFused, Hybrid)
	for _, scheme := range schemes {
		clean, err := Run(scheme, opt)
		if err != nil {
			t.Fatalf("%v fault-free: %v", scheme, err)
		}
		want := clean.C.Data()
		completed := 0
		for seed := uint64(1); seed <= seeds; seed++ {
			o := opt
			o.Faults = &faults.Injection{
				Plan:       faults.RandomPlan(seed, 0.1, o.Procs),
				Checkpoint: faults.NewMemCheckpoint(),
			}
			res, err := Run(scheme, o)
			if err != nil {
				if !faults.Injected(err) {
					t.Errorf("%v seed %d: failed with a non-injected error: %v", scheme, seed, err)
				}
				continue
			}
			completed++
			bitwiseEqual(t, scheme.String(), res.C.Data(), want)
		}
		if completed == 0 {
			t.Errorf("%v: no seed out of %d completed under a 10%% fault rate", scheme, seeds)
		}
	}
}

// A crash injected after the first l-slab checkpoint must resume from
// that checkpoint (a KindRestart event), not recompute from scratch,
// and still reproduce the fault-free C bitwise. Crash points are scanned
// until one lands past a checkpoint; early points (restart from scratch)
// must recover bitwise too.
func TestChaosCheckpointResume(t *testing.T) {
	sp := chem.MustSpec(8, 1, 3)
	opt := Options{Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 4, TileL: 2}
	clean, err := Run(FullyFused, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.C.Data()

	resumed := false
	for seq := int64(20); seq <= 2000 && !resumed; seq += 20 {
		tr := trace.New(0)
		o := opt
		o.Trace = tr
		o.Faults = &faults.Injection{
			Plan:       &faults.Plan{Crash: &faults.CrashPoint{Run: 1, Proc: 1, Seq: seq}},
			Checkpoint: faults.NewMemCheckpoint(),
		}
		res, err := Run(FullyFused, o)
		if err != nil {
			t.Fatalf("crash at seq %d not recovered: %v", seq, err)
		}
		bitwiseEqual(t, "fullyfused", res.C.Data(), want)
		if s := tr.FaultSummary(); res.Restarts >= 1 && s.Restarts >= 1 {
			resumed = true
		}
	}
	if !resumed {
		t.Error("no scanned crash point produced a checkpoint resume (KindRestart); l-slab restart never exercised")
	}
}

// Under memory pressure the hybrid driver picks the inner-fused path;
// when that path dies mid-run on retry exhaustion the driver must
// degrade to plain fully-fused slabs and still finish with a correct C.
// Fault streams are per run number, so seeds are scanned until one
// kills the inner-fused attempt but lets the degraded attempt finish.
func TestChaosHybridDegrades(t *testing.T) {
	sp := chem.MustSpec(20, 1, 7)
	memCap := int64(float64(lb.MemoryUnfused(20, 1)*8) * 0.75)
	opt := Options{Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 5, GlobalMemBytes: memCap}
	want := ReferencePacked(sp)

	degradedOK := false
	for seed := uint64(1); seed <= 24 && !degradedOK; seed++ {
		tr := trace.New(0)
		o := opt
		o.Trace = tr
		o.Faults = &faults.Injection{
			Plan:       &faults.Plan{Seed: seed, TransientRate: 0.1, MaxRetries: 3},
			Checkpoint: faults.NewMemCheckpoint(),
		}
		res, err := Run(Hybrid, o)
		if err != nil {
			if !faults.Injected(err) {
				t.Fatalf("seed %d: non-injected error: %v", seed, err)
			}
			continue // both attempts exhausted their retries
		}
		s := tr.FaultSummary()
		if s.Degrades == 0 {
			continue // inner-fused attempt survived this seed
		}
		if res.ChosenScheme != FullyFused {
			t.Errorf("seed %d: degraded run reports ChosenScheme %v, want %v", seed, res.ChosenScheme, FullyFused)
		}
		// Inner and plain slab kernels order the partial sums
		// differently, so a degraded run is compared with tolerance,
		// not bitwise.
		if d := sym.MaxAbsDiffC(res.C, want); d > 1e-9 {
			t.Errorf("seed %d: degraded hybrid result off by %v", seed, d)
		}
		degradedOK = true
	}
	if !degradedOK {
		t.Error("no scanned seed produced a completed degraded hybrid run")
	}
}
