package fourindex

import (
	"errors"
	"fmt"

	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
)

// runHybrid implements the Section 7.4 fuse/unfuse driver: when the
// unfused intermediates fit in the configured aggregate memory it runs
// the unfused schedule (about 1.5x less arithmetic and better load
// balance); otherwise it runs the fully fused schedule with inner
// op12/34 fusion (Listing 10), shrinking the fused-loop tile until the
// footprint fits. With no memory cap it always runs unfused.
//
// The lb.Advise decision is made on exact packed sizes; block-triangular
// tile storage carries a small overhead, so a scheme that was advised to
// fit may still hit the capacity. The driver therefore falls back on
// ErrGlobalOOM: unfused -> fused, fused -> halved TileL, down to 1.
//
// Under Options.Faults the driver additionally degrades: when the inner
// fused path dies mid-run on a terminal fault (retry exhaustion) or hits
// late OOM pressure after completing at least one l slab, its checkpoint
// is rekeyed to the plain fully-fused schedule, which resumes at the
// same slab without the inner fusion. Injected crashes are not handled
// here — they propagate to Run's rebuild-and-resume loop.
func runHybrid(opt Options) (*Result, error) {
	chosen := Unfused
	tileL := opt.TileL
	degraded := false
	if opt.GlobalMemBytes > 0 {
		adv := lb.Advise(opt.Spec.N, opt.Spec.S, opt.GlobalMemBytes)
		switch adv.Scheme {
		case "unfused":
			chosen = Unfused
		case "fused":
			chosen = FullyFusedInner
			if adv.RequiredTileL > 0 && (tileL <= 0 || tileL > adv.RequiredTileL) {
				tileL = adv.RequiredTileL
			}
		default:
			return nil, fmt.Errorf("fourindex: hybrid: %s (n=%d, mem=%d B)",
				adv.Reason, opt.Spec.N, opt.GlobalMemBytes)
		}
		if opt.Trace.Enabled() {
			opt.Trace.Note(fmt.Sprintf("hybrid: lb.Advise -> %s (tileL=%d): %s",
				adv.Scheme, tileL, adv.Reason))
		}
	}

	// A previous attempt that degraded before crashing left its progress
	// under the plain fully-fused key; stay degraded on restart rather
	// than discarding those slabs.
	if ck := opt.Faults.Store(); ck != nil && chosen == FullyFusedInner {
		if rec, ok := ck.Latest(FullyFused.String()); ok && rec.N == opt.Spec.N && rec.Progress > 0 {
			chosen = FullyFused
			degraded = true
		}
	}

	for {
		o := opt
		o.TileL = tileL
		var (
			res *Result
			err error
		)
		switch chosen {
		case Unfused:
			res, err = runUnfused(o)
		case FullyFused:
			res, err = runFullyFused(o, false)
		default:
			res, err = runFullyFused(o, true)
		}
		if err == nil {
			res.Scheme = Hybrid
			res.ChosenScheme = chosen
			return res, nil
		}
		if chosen == FullyFusedInner && !degraded && opt.Faults != nil {
			midRunOOM := false
			if ck := opt.Faults.Store(); ck != nil && errors.Is(err, ga.ErrGlobalOOM) {
				rec, ok := ck.Latest(FullyFusedInner.String())
				midRunOOM = ok && rec.N == opt.Spec.N && rec.Progress > 0
			}
			if faults.Terminal(err) || midRunOOM {
				// Degrade: hand the completed slabs to the plain
				// fully-fused schedule and finish without inner fusion.
				if ck := opt.Faults.Store(); ck != nil {
					if rec, ok := ck.Latest(FullyFusedInner.String()); ok && rec.N == opt.Spec.N {
						rec.Scheme = FullyFused.String()
						ck.Save(rec)
					}
					ck.Drop(FullyFusedInner.String())
				}
				chosen = FullyFused
				degraded = true
				if opt.Trace.Enabled() {
					opt.Trace.Note(fmt.Sprintf("hybrid: degrade to fullyfused (plain slabs) for remaining l slabs after %v", err))
				}
				continue
			}
		}
		if !errors.Is(err, ga.ErrGlobalOOM) {
			return nil, err
		}
		// Out of memory: tighten.
		if chosen == Unfused {
			chosen = FullyFusedInner
			if opt.Trace.Enabled() {
				opt.Trace.Note("hybrid: unfused hit ErrGlobalOOM, falling back to fullyfused-inner")
			}
			continue
		}
		cur := tileL
		if cur <= 0 {
			cur = opt.TileN
		}
		if cur <= 1 {
			return nil, fmt.Errorf("fourindex: hybrid: no schedule fits in %d B (Theorem 6.2: S below |C| plus working slabs): %w",
				opt.GlobalMemBytes, err)
		}
		tileL = cur / 2
		if opt.Trace.Enabled() {
			opt.Trace.Note(fmt.Sprintf("hybrid: fused hit ErrGlobalOOM, halving TileL to %d", tileL))
		}
	}
}
