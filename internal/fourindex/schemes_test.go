package fourindex

import (
	"errors"
	"math"
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/sym"
)

var allSchemes = []Scheme{Unfused, Fused1234Pair, Recompute, FullyFused, FullyFusedInner, Fused123}

func TestSchemeNames(t *testing.T) {
	for _, s := range append(allSchemes, Hybrid) {
		name := s.String()
		got, err := SchemeByName(name)
		if err != nil || got != s {
			t.Errorf("SchemeByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Error("unknown scheme should error")
	}
	if Scheme(99).String() != "Scheme(99)" {
		t.Error("unknown scheme String() wrong")
	}
}

// Every scheme must produce bitwise-close results to the packed
// sequential reference across tilings, process counts, spatial symmetry
// and fused tile widths.
func TestAllSchemesMatchReference(t *testing.T) {
	cases := []struct {
		name               string
		n, s, procs, tileN int
		tileL              int
	}{
		{"single-tile", 6, 1, 1, 6, 6},
		{"even", 8, 1, 2, 4, 4},
		{"ragged", 10, 1, 3, 4, 3},
		{"spatial", 8, 2, 2, 3, 2},
		{"tiny-tiles", 7, 1, 4, 2, 2},
		{"tileL-1", 6, 1, 2, 3, 1},
	}
	for _, tc := range cases {
		sp := chem.MustSpec(tc.n, tc.s, 99)
		want := ReferencePacked(sp)
		for _, scheme := range allSchemes {
			res, err := Run(scheme, Options{
				Spec:  sp,
				Procs: tc.procs,
				Mode:  ga.Execute,
				TileN: tc.tileN,
				TileL: tc.tileL,
			})
			if err != nil {
				t.Errorf("%s/%v: %v", tc.name, scheme, err)
				continue
			}
			if d := sym.MaxAbsDiffC(res.C, want); d > 1e-9 {
				t.Errorf("%s/%v: max diff vs reference = %v", tc.name, scheme, d)
			}
		}
	}
}

func TestAllSchemesAgainstNaive(t *testing.T) {
	sp := chem.MustSpec(5, 1, 3)
	want := ReferenceNaive(sp)
	for _, scheme := range allSchemes {
		res, err := Run(scheme, Options{Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 2, TileL: 2})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if d := sym.MaxAbsDiffC(res.C, want); d > 1e-10 {
			t.Errorf("%v vs naive: max diff %v", scheme, d)
		}
	}
}

func TestAlphaParallelisationCorrect(t *testing.T) {
	sp := chem.MustSpec(9, 1, 5)
	want := ReferencePacked(sp)
	for _, apar := range []int{1, 2, 3} {
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 3, TileL: 3, AlphaPar: apar,
		})
		if err != nil {
			t.Fatalf("alphaPar=%d: %v", apar, err)
		}
		if d := sym.MaxAbsDiffC(res.C, want); d > 1e-9 {
			t.Errorf("alphaPar=%d: max diff %v", apar, d)
		}
	}
}

// Section 7.3: parallelising alpha multiplies A's communication.
func TestAlphaParallelisationIncreasesATraffic(t *testing.T) {
	sp := chem.MustSpec(16, 1, 5)
	run := func(apar int) int64 {
		res, err := Run(FullyFusedInner, Options{
			Spec: sp, Procs: 4, Mode: ga.Cost, TileN: 4, TileL: 4, AlphaPar: apar,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.CommVolume + res.IntraVolume
	}
	v1, v2 := run(1), run(2)
	if v2 <= v1 {
		t.Errorf("alphaPar=2 volume %d should exceed alphaPar=1 volume %d", v2, v1)
	}
}

// Cost mode must account exactly the same flops and data movement as
// Execute mode (same control flow, no arithmetic).
func TestCostModeMatchesExecuteAccounting(t *testing.T) {
	sp := chem.MustSpec(8, 1, 13)
	for _, scheme := range allSchemes {
		opts := Options{Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 3, TileL: 2}
		ex, err := Run(scheme, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Mode = ga.Cost
		co, err := Run(scheme, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Totals.Flops != co.Totals.Flops {
			t.Errorf("%v: flops execute %d != cost %d", scheme, ex.Totals.Flops, co.Totals.Flops)
		}
		exVol := ex.CommVolume + ex.IntraVolume
		coVol := co.CommVolume + co.IntraVolume
		if exVol != coVol {
			t.Errorf("%v: volume execute %d != cost %d", scheme, exVol, coVol)
		}
		if ex.PeakGlobalBytes != co.PeakGlobalBytes {
			t.Errorf("%v: peak execute %d != cost %d", scheme, ex.PeakGlobalBytes, co.PeakGlobalBytes)
		}
		if co.C != nil {
			t.Errorf("%v: cost mode must not return C", scheme)
		}
	}
}

// Memory ordering (Table 1 / Section 2.2): recompute < fused-inner <
// fused12-34 < unfused, and unfused ~ 3n^4/4 words.
func TestPeakMemoryOrdering(t *testing.T) {
	// TileL is kept small relative to n: the fused schedules' slabs
	// scale with n^3*Tl and only undercut the n^4-scale alternatives
	// when Tl << n (at molecule scale Tl/n is tiny).
	sp := chem.MustSpec(24, 1, 1)
	peak := map[Scheme]int64{}
	for _, scheme := range allSchemes {
		res, err := Run(scheme, Options{Spec: sp, Procs: 2, Mode: ga.Cost, TileN: 4, TileL: 2})
		if err != nil {
			t.Fatal(err)
		}
		peak[scheme] = res.PeakGlobalBytes
	}
	if !(peak[Recompute] < peak[FullyFusedInner] &&
		peak[FullyFusedInner] <= peak[FullyFused] &&
		peak[FullyFused] < peak[Fused1234Pair] &&
		peak[Fused1234Pair] < peak[Unfused]) {
		t.Errorf("peak memory ordering violated: %v", peak)
	}
	n4 := math.Pow(24, 4)
	got := float64(peak[Unfused]) / 8
	if got < 0.75*n4 || got > 1.0*n4 {
		t.Errorf("unfused peak = %v words, want ~3n^4/4 = %v", got, 0.75*n4)
	}
	fp := float64(peak[Fused1234Pair]) / 8
	if fp < 0.5*n4 || fp > 0.72*n4 {
		t.Errorf("fused12-34 peak = %v words, want ~n^4/2 = %v", fp, 0.5*n4)
	}
}

// Section 7.4: the fused schedule performs ~1.5x the unfused arithmetic
// (symmetry breaking in the first two contractions).
func TestFusedFlopOverhead(t *testing.T) {
	sp := chem.MustSpec(32, 1, 1)
	flops := func(s Scheme) int64 {
		res, err := Run(s, Options{Spec: sp, Procs: 2, Mode: ga.Cost, TileN: 8, TileL: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Exclude integral generation: count contraction arithmetic
		// only, approximated by subtracting nothing — compare totals
		// of schemes that both generate A once... FullyFused
		// regenerates integrals per slab, so compare against the lb
		// formula instead.
		return res.Totals.Flops
	}
	got := float64(flops(FullyFused))
	// Contraction flops only (lb formulas) plus integral regeneration.
	n := 32
	wantContract := float64(lb.FlopsFused1234(n))
	nl := float64(n) / 4 // slabs
	wantIntegrals := nl * math.Pow(float64(n), 3) * 4 / 2 * integralFlops
	want := wantContract + wantIntegrals
	if math.Abs(got-want)/want > 0.35 {
		t.Errorf("fullyfused flops = %v, want ~%v (contractions %v + integrals %v)",
			got, want, wantContract, wantIntegrals)
	}
	ratioVsUnfused := got / float64(flops(Unfused))
	if ratioVsUnfused < 1.1 {
		t.Errorf("fused/unfused flop ratio = %v, want > 1.1 (paper: ~1.5x contraction work)", ratioVsUnfused)
	}
}

// The inner op12/34 fusion eliminates O1 and O3 global traffic: the
// Listing 10 schedule must move significantly less data than Listing 8.
func TestInnerFusionReducesCommunication(t *testing.T) {
	sp := chem.MustSpec(24, 1, 1)
	vol := func(s Scheme) int64 {
		res, err := Run(s, Options{Spec: sp, Procs: 4, Mode: ga.Cost, TileN: 6, TileL: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res.CommVolume + res.IntraVolume
	}
	plain, inner := vol(FullyFused), vol(FullyFusedInner)
	if inner >= plain {
		t.Fatalf("inner fusion volume %d should beat plain %d", inner, plain)
	}
	// The eliminated traffic is O1's and O3's round trips through
	// global memory: 2(|O1l| + |O3l|) per slab ~ 3 n^3 Tl per slab.
	saved := plain - inner
	n, tl := 24.0, 6.0
	wantSaved := (n / tl) * 3 * math.Pow(n, 3) * tl // = 3n^4
	if float64(saved) < 0.6*wantSaved {
		t.Errorf("saved %d, want on the order of %v", saved, wantSaved)
	}
}

// The measured communication volume of the paper's schedule tracks the
// lb.CommVolumeFused analytic formula.
func TestFusedCommMatchesAnalyticFormula(t *testing.T) {
	sp := chem.MustSpec(24, 1, 1)
	res, err := Run(FullyFusedInner, Options{Spec: sp, Procs: 4, Mode: ga.Cost, TileN: 6, TileL: 6})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.CommVolume + res.IntraVolume)
	want := float64(lb.CommVolumeFused(24, 1, 6, 1))
	// Block-triangular storage, A's double reads and ragged tiles cost
	// a constant factor; the formula must be right to within ~2x.
	if got < 0.7*want || got > 2.5*want {
		t.Errorf("measured volume %v vs analytic %v (ratio %v)", got, want, got/want)
	}
}

// Reproducing the paper's headline behaviour in miniature: a problem
// whose unfused intermediates exceed the memory cap still runs fused.
func TestFusedRunsWhereUnfusedOOMs(t *testing.T) {
	sp := chem.MustSpec(20, 1, 7)
	cap := int64(float64(lb.MemoryUnfused(20, 1)*8) * 0.75)
	if _, err := Run(Unfused, Options{
		Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 5, GlobalMemBytes: cap,
	}); !errors.Is(err, ga.ErrGlobalOOM) {
		t.Fatalf("unfused should OOM under cap, got %v", err)
	}
	res, err := Run(FullyFusedInner, Options{
		Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 5, TileL: 2, GlobalMemBytes: cap,
	})
	if err != nil {
		t.Fatalf("fused should fit under cap: %v", err)
	}
	if d := sym.MaxAbsDiffC(res.C, ReferencePacked(sp)); d > 1e-9 {
		t.Errorf("fused-under-cap result wrong: %v", d)
	}
}

func TestHybridPicksUnfusedWhenFits(t *testing.T) {
	sp := chem.MustSpec(10, 1, 1)
	res, err := Run(Hybrid, Options{Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChosenScheme != Unfused || res.Scheme != Hybrid {
		t.Errorf("hybrid chose %v", res.ChosenScheme)
	}
	if d := sym.MaxAbsDiffC(res.C, ReferencePacked(sp)); d > 1e-9 {
		t.Errorf("hybrid result wrong: %v", d)
	}
}

func TestHybridPicksFusedUnderPressure(t *testing.T) {
	sp := chem.MustSpec(20, 1, 7)
	cap := int64(float64(lb.MemoryUnfused(20, 1)*8) * 0.75)
	res, err := Run(Hybrid, Options{
		Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 5, GlobalMemBytes: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ChosenScheme != FullyFusedInner {
		t.Errorf("hybrid chose %v, want fused under memory pressure", res.ChosenScheme)
	}
	if d := sym.MaxAbsDiffC(res.C, ReferencePacked(sp)); d > 1e-9 {
		t.Errorf("hybrid fused result wrong: %v", d)
	}
}

func TestHybridInfeasible(t *testing.T) {
	sp := chem.MustSpec(20, 1, 7)
	if _, err := Run(Hybrid, Options{
		Spec: sp, Procs: 1, Mode: ga.Cost, TileN: 5, GlobalMemBytes: 10_000,
	}); err == nil {
		t.Error("hybrid with absurdly small memory should fail")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(Unfused, Options{}); err == nil {
		t.Error("zero spec should error")
	}
	if _, err := Run(Scheme(42), Options{Spec: chem.MustSpec(4, 1, 0), Mode: ga.Execute}); err == nil {
		t.Error("unknown scheme should error")
	}
	// Defaults: zero procs -> 1, oversize tiles clamp.
	res, err := Run(Unfused, Options{Spec: chem.MustSpec(5, 1, 0), Mode: ga.Execute, TileN: 100})
	if err != nil {
		t.Fatal(err)
	}
	if d := sym.MaxAbsDiffC(res.C, ReferencePacked(chem.MustSpec(5, 1, 0))); d > 1e-10 {
		t.Errorf("defaulted run wrong: %v", d)
	}
}

// Determinism: two runs with identical options give identical counters
// and identical results.
func TestDeterminism(t *testing.T) {
	sp := chem.MustSpec(8, 1, 21)
	opts := Options{Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 3, TileL: 2}
	r1, err := Run(FullyFusedInner, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(FullyFusedInner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sym.MaxAbsDiffC(r1.C, r2.C) != 0 {
		t.Error("results differ between identical runs")
	}
	if r1.Totals.Flops != r2.Totals.Flops || r1.CommVolume != r2.CommVolume {
		t.Error("accounting differs between identical runs")
	}
}

// Simulated time must be populated when a machine model is supplied, and
// more processes must not be slower for a compute-dominated problem.
func TestSimulatedTimeScales(t *testing.T) {
	sp := chem.MustSpec(32, 1, 1)
	elapsed := func(procs int) float64 {
		run := mustRun(t, procs)
		res, err := Run(Unfused, Options{
			Spec: sp, Procs: procs, Mode: ga.Cost, TileN: 4, Run: &run,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ElapsedSeconds <= 0 {
			t.Fatal("no simulated time")
		}
		return res.ElapsedSeconds
	}
	t1, t8 := elapsed(1), elapsed(8)
	if t8 >= t1 {
		t.Errorf("8 procs (%v s) should beat 1 proc (%v s)", t8, t1)
	}
}
