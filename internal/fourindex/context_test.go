package fourindex

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/trace"
)

// A context canceled mid-run must surface as a typed ErrCanceled with no
// partial result, must leave the last checkpoint intact (that record is
// what a draining job server resumes from), and a subsequent run over
// the same store must resume and reproduce the uninterrupted C bitwise.
func TestRunContextCancelMidRun(t *testing.T) {
	sp := chem.MustSpec(8, 1, 3)
	opt := Options{Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 4, TileL: 2}
	clean, err := Run(FullyFused, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := clean.C.Data()

	// Cancel from the progress listener during the second slab's mark:
	// slab 0 is checkpointed by then, and the slab-top cancellation
	// boundary fires before slab 2 starts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := trace.New(0)
	marks := 0
	tr.SetProgressListener(func(ev trace.ProgressEvent) {
		if ev.Kind == "mark" {
			marks++
			if marks == 2 {
				cancel()
			}
		}
	})
	store := faults.NewMemCheckpoint()
	o := opt
	o.Trace = tr
	o.Faults = &faults.Injection{Checkpoint: store}
	res, err := RunContext(ctx, FullyFused, o)
	if err == nil {
		t.Fatal("canceled run completed")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run failed with %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned a partial result")
	}
	rec, ok := store.Latest(FullyFused.String())
	if !ok {
		t.Fatal("cancellation dropped the checkpoint; drained jobs cannot resume")
	}
	if rec.Progress == 0 {
		t.Fatal("checkpoint records no progress despite completed slabs")
	}

	// Resume over the same store: bitwise identical to the clean run.
	o2 := opt
	o2.Faults = &faults.Injection{Checkpoint: store}
	res2, err := RunContext(context.Background(), FullyFused, o2)
	if err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	bitwiseEqual(t, "resumed", res2.C.Data(), want)
	if _, ok := store.Latest(FullyFused.String()); ok {
		t.Error("completed resume left its checkpoint behind")
	}
}

// An already-canceled context must fail before any work starts, and the
// same canceled context must stop Tune's sweep with the typed error.
func TestContextCanceledBeforeStart(t *testing.T) {
	sp := chem.MustSpec(8, 1, 3)
	opt := Options{Spec: sp, Procs: 2, Mode: ga.Cost, TileN: 4, TileL: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Unfused, opt); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunContext on dead context: %v, want ErrCanceled", err)
	}
	run, err := cluster.SystemB().Configure(opt.Procs, 28)
	if err != nil {
		t.Fatal(err)
	}
	opt.Run = &run
	if _, err := TuneContext(ctx, opt, TuneSpace{TileNs: []int{4}, TileLs: []int{2}}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("TuneContext on dead context: %v, want ErrCanceled", err)
	}
}

// Two Runs of the same scheme plus a mix of the other schedules, all in
// flight at once with per-job checkpoint stores, must each reproduce
// their serial result bitwise. Run under -race this is the proof that
// no mutable state is shared across concurrent jobs.
func TestConcurrentRuns(t *testing.T) {
	sp := chem.MustSpec(8, 1, 5)
	opt := Options{Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 3, TileL: 2}
	schemes := []Scheme{FullyFused, FullyFused, Unfused, Fused123, FullyFusedInner, Fused1234Pair}

	want := map[Scheme][]float64{}
	for _, s := range schemes {
		if _, ok := want[s]; ok {
			continue
		}
		res, err := Run(s, opt)
		if err != nil {
			t.Fatalf("%v serial: %v", s, err)
		}
		want[s] = res.C.Data()
	}

	errs := make([]error, len(schemes))
	got := make([][]float64, len(schemes))
	var wg sync.WaitGroup
	for i, s := range schemes {
		wg.Add(1)
		go func(i int, s Scheme) {
			defer wg.Done()
			o := opt
			o.Faults = &faults.Injection{Checkpoint: faults.NewMemCheckpoint()}
			res, err := Run(s, o)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = res.C.Data()
		}(i, s)
	}
	wg.Wait()
	for i, s := range schemes {
		if errs[i] != nil {
			t.Fatalf("concurrent %v #%d: %v", s, i, errs[i])
		}
		bitwiseEqual(t, fmt.Sprintf("concurrent %v #%d", s, i), got[i], want[s])
	}
}
