package fourindex

import (
	"errors"
	"strings"
	"testing"

	"fourindex/internal/lb"
	"fourindex/internal/lb/chain"
	"fourindex/internal/sym"
)

// TestAnalyzeChainFourIndex pins the report for the canonical four-index
// chain against the hand-derived lb package: ranking order, admission
// floor, and the best config at a generous capacity.
func TestAnalyzeChainFourIndex(t *testing.T) {
	c, err := chain.FourIndex(368, 8)
	if err != nil {
		t.Fatalf("FourIndex: %v", err)
	}
	sz := sym.ExactSizes(368, 8)
	wantFloor := lb.ConfigMinMemory(lb.AllFusionConfigs()[0], 368, 8)
	for _, cfg := range lb.AllFusionConfigs() {
		if m := lb.ConfigMinMemory(cfg, 368, 8); m < wantFloor {
			wantFloor = m
		}
	}
	// Price exactly at the admission floor: the cheapest shape (fully
	// fused) just fits, every other shape is infeasible.
	cap := wantFloor
	rep, err := AnalyzeChain(c, cap, 12)
	if err != nil {
		t.Fatalf("AnalyzeChain: %v", err)
	}
	if rep.Ops != 4 || len(rep.Rankings) != 8 {
		t.Fatalf("got %d ops, %d rankings; want 4, 8", rep.Ops, len(rep.Rankings))
	}
	want := lb.RankConfigs(sz)
	for i, rc := range rep.Rankings {
		if rc.Name != want[i].Config.String() || rc.IO != want[i].IO {
			t.Errorf("ranking[%d] = %s/%d, want %s/%d", i, rc.Name, rc.IO, want[i].Config.String(), want[i].IO)
		}
	}
	// Fully fused has the lowest floor, so it is the only feasible shape
	// at the admission floor and must win the at-capacity pricing.
	if rep.BestConfig != "op1234" {
		t.Errorf("BestConfig = %q, want op1234", rep.BestConfig)
	}
	if rep.MinMemoryElements != wantFloor {
		t.Errorf("MinMemoryElements = %d, want %d", rep.MinMemoryElements, wantFloor)
	}
	if len(rep.AtCapacity) != 8 {
		t.Fatalf("got %d at-capacity rows, want 8", len(rep.AtCapacity))
	}
	// Several configs share the fully-fused fallback floor, so assert
	// the feasibility flag against each row's own floor; the unfused
	// shapes (full intermediates resident) must be priced out.
	for _, at := range rep.AtCapacity {
		if want := at.MinMemoryElements <= cap; at.Feasible != want {
			t.Errorf("config %s feasible=%v at capacity %d (floor %d), want %v",
				at.Config, at.Feasible, cap, at.MinMemoryElements, want)
		}
		if at.Config == "op1234" && !at.Feasible {
			t.Errorf("op1234 infeasible at its own floor %d", cap)
		}
		if at.Config == "op1/2/3/4" && at.Feasible {
			t.Errorf("unfused feasible at the fused admission floor %d", cap)
		}
	}
}

// TestAnalyzeChainMP2NoCapacity checks the capacity-free path: no
// at-capacity table, no best config, curves still present.
func TestAnalyzeChainMP2NoCapacity(t *testing.T) {
	c, err := chain.MP2(8, 24)
	if err != nil {
		t.Fatalf("MP2: %v", err)
	}
	rep, err := AnalyzeChain(c, 0, 10)
	if err != nil {
		t.Fatalf("AnalyzeChain: %v", err)
	}
	if rep.Ops != 2 || len(rep.Rankings) != 2 {
		t.Fatalf("got %d ops, %d rankings; want 2, 2", rep.Ops, len(rep.Rankings))
	}
	if rep.CapacityElements != 0 || rep.AtCapacity != nil || rep.BestConfig != "" {
		t.Errorf("capacity-free report carries capacity fields: %+v", rep)
	}
	if len(rep.Curves) != 2 {
		t.Fatalf("got %d curves, want 2", len(rep.Curves))
	}
	for _, cv := range rep.Curves {
		if len(cv.Points) == 0 {
			t.Errorf("curve %s has no points", cv.Config)
		}
	}
}

// TestAnalyzeChainErrors checks the typed-error contract the serve layer
// depends on: invalid chains and capacities return errors, never panic.
func TestAnalyzeChainErrors(t *testing.T) {
	var ve *chain.ValidationError
	if _, err := AnalyzeChain(nil, 0, 10); !errors.As(err, &ve) {
		t.Errorf("nil chain: want *chain.ValidationError, got %v", err)
	}
	bad := &chain.Chain{
		Name:       "bad",
		Boundaries: []chain.Tensor{{Name: "A", Elements: -4}, {Name: "B", Elements: 9}},
		Ops:        []chain.Contraction{{Name: "op", Rows: 3, Red: 3, Prod: 3, OperandElements: 9}},
	}
	if _, err := AnalyzeChain(bad, 0, 10); !errors.As(err, &ve) {
		t.Errorf("negative boundary: want *chain.ValidationError, got %v", err)
	}
	good, err := chain.Rect(32, 4)
	if err != nil {
		t.Fatalf("Rect: %v", err)
	}
	var ce *chain.CapacityError
	if _, err := AnalyzeChain(good, -1, 10); !errors.As(err, &ce) {
		t.Errorf("negative capacity: want *chain.CapacityError, got %v", err)
	}
}

// TestWriteChainReport smoke-tests the text rendering both with and
// without a capacity table.
func TestWriteChainReport(t *testing.T) {
	c, err := chain.Rect(64, 6)
	if err != nil {
		t.Fatalf("Rect: %v", err)
	}
	rep, err := AnalyzeChain(c, 4096, 10)
	if err != nil {
		t.Fatalf("AnalyzeChain: %v", err)
	}
	var b strings.Builder
	if err := WriteChainReport(&b, rep); err != nil {
		t.Fatalf("WriteChainReport: %v", err)
	}
	out := b.String()
	for _, want := range []string{"chain rect", "CONFIG", "IO-FLOOR", "at capacity 4096", "FEASIBLE"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestChainScenarios checks the registry agrees with chain.ByName.
func TestChainScenarios(t *testing.T) {
	for _, sc := range ChainScenarios() {
		got, err := sc.Build(16, 4)
		if err != nil {
			t.Fatalf("%s build: %v", sc.Name, err)
		}
		want, err := chain.ByName(sc.Name, 16, 4)
		if err != nil {
			t.Fatalf("%s ByName: %v", sc.Name, err)
		}
		if got.Name != want.Name || got.NumOps() != want.NumOps() {
			t.Errorf("%s: scenario and ByName disagree", sc.Name)
		}
	}
}
