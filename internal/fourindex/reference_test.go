package fourindex

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/ga"
	"fourindex/internal/sym"
)

func TestReferencesAgree(t *testing.T) {
	for _, s := range []int{1, 2} {
		sp := chem.MustSpec(6, s, 42)
		naive := ReferenceNaive(sp)
		dense := ReferenceDense(sp)
		packed := ReferencePacked(sp)
		if d := sym.MaxAbsDiffC(naive, dense); d > 1e-10 {
			t.Errorf("s=%d: naive vs dense max diff %v", s, d)
		}
		if d := sym.MaxAbsDiffC(naive, packed); d > 1e-10 {
			t.Errorf("s=%d: naive vs packed max diff %v", s, d)
		}
	}
}

func TestReferenceDenseLarger(t *testing.T) {
	sp := chem.MustSpec(13, 1, 7)
	dense := ReferenceDense(sp)
	packed := ReferencePacked(sp)
	if d := sym.MaxAbsDiffC(dense, packed); d > 1e-9 {
		t.Errorf("dense vs packed max diff %v", d)
	}
}

func TestUnfusedMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		n, s, procs, tileN int
	}{
		{6, 1, 1, 6},  // single tile, single proc
		{6, 1, 2, 3},  // even tiling
		{10, 1, 3, 4}, // ragged tiles
		{8, 2, 2, 3},  // spatial symmetry
		{7, 1, 4, 2},  // more procs than some tile counts
	} {
		sp := chem.MustSpec(tc.n, tc.s, 11)
		want := ReferencePacked(sp)
		res, err := Run(Unfused, Options{
			Spec:  sp,
			Procs: tc.procs,
			Mode:  ga.Execute,
			TileN: tc.tileN,
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if res.C == nil {
			t.Fatalf("%+v: execute mode must return C", tc)
		}
		if d := sym.MaxAbsDiffC(res.C, want); d > 1e-9 {
			t.Errorf("%+v: unfused vs reference max diff %v", tc, d)
		}
	}
}
