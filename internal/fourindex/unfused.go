package fourindex

import (
	"fmt"

	"fourindex/internal/blas"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
)

// runUnfused executes the Listing 1/4 baseline: four separate tiled
// contractions with fully materialised intermediates. Peak aggregate
// memory is max(|A|+|O1|, |O1|+|O2|, |O2|+|O3|, |O3|+|C|) ~ 3n^4/4.
//
// The schedule has no l-slab structure, so its checkpoints are per
// stage: completing op1/op2/op3 records Progress 1/2/3 with a snapshot
// of that stage's output intermediate, and a restart resumes at the
// first incomplete contraction. op4 writes C with idempotent PutT and
// simply re-runs.
func runUnfused(opt Options) (*Result, error) {
	c, err := newRunCtx(opt)
	if err != nil {
		return nil, err
	}
	defer c.beginRoot(Unfused)()
	g4 := c.grids4()

	ckptKey := Unfused.String()
	stage := 0
	rec, resumed := c.ckptResume(ckptKey)
	if resumed && rec.Progress >= 1 && rec.Progress <= 3 {
		stage = rec.Progress
	}
	stageSave := func(progress int, name string, t *ga.TiledArray) {
		if c.ckpt() == nil {
			return
		}
		c.ckptSave(faults.Record{
			Scheme:   ckptKey,
			Progress: progress,
			Words:    t.Bytes() / 8,
			State:    map[string][]float64{name: t.SnapshotTiles()},
		})
	}

	// Cancellation boundaries sit between the contraction stages — the
	// same places the stage checkpoints live, so a canceled run resumes
	// at the first stage it did not complete.
	var o1T, o2T, o3T *ga.TiledArray
	if err := c.canceled(); err != nil {
		return nil, err
	}
	if stage < 1 {
		c.rt.BeginPhase("generate-A")
		aT, err := c.rt.CreateTiled("A", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy)
		if err != nil {
			return nil, oomWrap(Unfused, err)
		}
		if err := c.generateA(aT, 0); err != nil {
			return nil, err
		}

		c.rt.BeginPhase("op1")
		if o1T, err = c.rt.CreateTiled("O1", g4, [][2]int{{2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) { c.op1Unfused(p, aT, o1T) }); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(aT)
		stageSave(1, "O1", o1T)
		o1T.Freeze()
	} else if stage == 1 {
		if o1T, err = c.rt.CreateTiled("O1", g4, [][2]int{{2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		o1T.RestoreTiles(rec.State["O1"])
		o1T.Freeze()
		c.ckptRestore(rec, fmt.Sprintf("stage %d", stage+1))
	}

	if err := c.canceled(); err != nil {
		return nil, err
	}
	if stage < 2 {
		c.rt.BeginPhase("op2")
		if o2T, err = c.rt.CreateTiled("O2", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) { c.op2Unfused(p, o1T, o2T) }); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(o1T)
		stageSave(2, "O2", o2T)
		o2T.Freeze()
	} else if stage == 2 {
		if o2T, err = c.rt.CreateTiled("O2", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		o2T.RestoreTiles(rec.State["O2"])
		o2T.Freeze()
		c.ckptRestore(rec, fmt.Sprintf("stage %d", stage+1))
	}

	if err := c.canceled(); err != nil {
		return nil, err
	}
	if stage < 3 {
		c.rt.BeginPhase("op3")
		if o3T, err = c.rt.CreateTiled("O3", g4, [][2]int{{0, 1}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) { c.op3Unfused(p, o2T, o3T) }); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(o2T)
		stageSave(3, "O3", o3T)
		o3T.Freeze()
	} else {
		if o3T, err = c.rt.CreateTiled("O3", g4, [][2]int{{0, 1}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		o3T.RestoreTiles(rec.State["O3"])
		o3T.Freeze()
		c.ckptRestore(rec, fmt.Sprintf("stage %d", stage+1))
	}

	if err := c.canceled(); err != nil {
		return nil, err
	}
	c.rt.BeginPhase("op4")
	cT, err := c.rt.CreateTiledSparse("C", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy, c.cSparsity())
	if err != nil {
		return nil, oomWrap(Unfused, err)
	}
	if err := c.rt.Parallel(func(p *ga.Proc) { c.op4Unfused(p, o3T, cT) }); err != nil {
		return nil, err
	}
	c.rt.DestroyTiled(o3T)
	c.ckptDrop(ckptKey)

	packed := c.extractC(cT)
	c.rt.DestroyTiled(cT)
	return c.result(Unfused, Unfused, packed), nil
}

// op1Unfused computes O1[a, j, k>=l] = sum_i A[ij, kl] B[a, i]. Work
// units are (tj, tk, tl); the owner produces all a tiles, reading A's
// column block once per unit.
func (c *runCtx) op1Unfused(p *ga.Proc, aT, o1T *ga.TiledArray) {
	for tj := 0; tj < c.nt; tj++ {
		for tk := 0; tk < c.nt; tk++ {
			for tl := 0; tl <= tk; tl++ {
				if workOwner(p.Procs(), 1, tj, tk, tl) != p.ID() {
					continue
				}
				c.op1Unit(p, aT, o1T, tj, tk, tl)
			}
		}
	}
}

func (c *runCtx) op1Unit(p *ga.Proc, aT, o1T *ga.TiledArray, tj, tk, tl int) {
	wj, wk, wl := c.g.Width(tj), c.g.Width(tk), c.g.Width(tl)
	rest := wj * wk * wl

	abig := c.alloc(p, int64(c.n)*int64(rest))
	tileW := c.g.T * rest
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(ti int) *ga.Handle {
		buf := sl(tmp, (ti%2)*tileW)
		if ti >= tj {
			return p.NbGetT(aT, buf, ti, tj, tk, tl)
		}
		return p.NbGetT(aT, buf, tj, ti, tk, tl)
	}, func(ti int) {
		if !c.exec {
			return
		}
		row, _ := c.g.Bounds(ti)
		wi := c.g.Width(ti)
		got := tmp.Data[(ti%2)*tileW:]
		if ti >= tj { // tile laid out (i, j, k, l): rows i, cols rest
			copy(abig.Data[row*rest:(row+wi)*rest], got[:wi*rest])
		} else { // tile laid out (j, i, k, l): transpose (i, j)
			for j := 0; j < wj; j++ {
				for i := 0; i < wi; i++ {
					src := got[(j*wi+i)*wk*wl : (j*wi+i+1)*wk*wl]
					dst := abig.Data[((row+i)*wj+j)*wk*wl : ((row+i)*wj+j+1)*wk*wl]
					copy(dst, src)
				}
			}
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(c.g.T)*int64(rest))
	wq := newNbQueue(p)
	for ta := 0; ta < c.nt; ta++ {
		wa := c.fillBRow(p, bbuf.Data, ta)
		if c.exec {
			zero(out.Data[:wa*rest])
		}
		// O1[a, (j,k,l)] = B[a, i] . A[i, (j,k,l)]
		c.gemm(p, false, false, wa, rest, c.n, bbuf.Data, c.n, abig.Data, rest, out.Data, rest)
		wq.push(p.NbPutT(o1T, out.Data, ta, tj, tk, tl))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(abig)
}

// op2Unfused computes O2[a>=b, k>=l] = sum_j O1[a, j, kl] B[b, j]. Work
// units are (ta, tk, tl); the owner produces all b <= a tiles.
func (c *runCtx) op2Unfused(p *ga.Proc, o1T, o2T *ga.TiledArray) {
	for ta := 0; ta < c.nt; ta++ {
		for tk := 0; tk < c.nt; tk++ {
			for tl := 0; tl <= tk; tl++ {
				if workOwner(p.Procs(), 2, ta, tk, tl) != p.ID() {
					continue
				}
				c.op2Unit(p, o1T, o2T, ta, tk, tl)
			}
		}
	}
}

func (c *runCtx) op2Unit(p *ga.Proc, o1T, o2T *ga.TiledArray, ta, tk, tl int) {
	wa, wk, wl := c.g.Width(ta), c.g.Width(tk), c.g.Width(tl)
	wkl := wk * wl

	// o1big[a][j][kl] for all j.
	o1big := c.alloc(p, int64(wa)*int64(c.n)*int64(wkl))
	tileW := wa * c.g.T * wkl
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(tj int) *ga.Handle {
		return p.NbGetT(o1T, sl(tmp, (tj%2)*tileW), ta, tj, tk, tl)
	}, func(tj int) {
		if !c.exec {
			return
		}
		col, _ := c.g.Bounds(tj)
		wj := c.g.Width(tj)
		got := tmp.Data[(tj%2)*tileW:]
		// tile (a, j, k, l)
		for a := 0; a < wa; a++ {
			src := got[a*wj*wkl : (a+1)*wj*wkl]
			dst := o1big.Data[(a*c.n+col)*wkl : (a*c.n+col+wj)*wkl]
			copy(dst, src)
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(wa)*int64(c.g.T)*int64(wkl))
	wq := newNbQueue(p)
	for tb := 0; tb <= ta; tb++ {
		wb := c.fillBRow(p, bbuf.Data, tb)
		if c.exec {
			zero(out.Data[:wa*wb*wkl])
			for a := 0; a < wa; a++ {
				// O2[a, b, (k,l)] = B[b, j] . O1[a, j, (k,l)]
				c.gemm(p, false, false, wb, wkl, c.n,
					bbuf.Data, c.n,
					sl(o1big, a*c.n*wkl), wkl,
					sl(out, a*wb*wkl), wkl)
			}
		} else {
			p.ComputeEff(int64(wa)*blas.GemmFlops(wb, wkl, c.n), c.eff)
		}
		wq.push(p.NbPutT(o2T, out.Data, ta, tb, tk, tl))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o1big)
}

// op3Unfused computes O3[a>=b, c, l] = sum_k O2[ab, kl] B[c, k]. Work
// units are (ta, tb, tl); the owner produces all c tiles.
func (c *runCtx) op3Unfused(p *ga.Proc, o2T, o3T *ga.TiledArray) {
	for ta := 0; ta < c.nt; ta++ {
		for tb := 0; tb <= ta; tb++ {
			for tl := 0; tl < c.nt; tl++ {
				if workOwner(p.Procs(), 3, ta, tb, tl) != p.ID() {
					continue
				}
				c.op3Unit(p, o2T, o3T, ta, tb, tl)
			}
		}
	}
}

func (c *runCtx) op3Unit(p *ga.Proc, o2T, o3T *ga.TiledArray, ta, tb, tl int) {
	wa, wb, wl := c.g.Width(ta), c.g.Width(tb), c.g.Width(tl)
	wab := wa * wb

	// o2big[(a,b)][k][l] for all k.
	o2big := c.alloc(p, int64(wab)*int64(c.n)*int64(wl))
	tileW := wab * c.g.T * wl
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(tk int) *ga.Handle {
		buf := sl(tmp, (tk%2)*tileW)
		if tk >= tl {
			return p.NbGetT(o2T, buf, ta, tb, tk, tl)
		}
		return p.NbGetT(o2T, buf, ta, tb, tl, tk)
	}, func(tk int) {
		if !c.exec {
			return
		}
		row, _ := c.g.Bounds(tk)
		wk := c.g.Width(tk)
		got := tmp.Data[(tk%2)*tileW:]
		if tk >= tl { // tile (a, b, k, l)
			for ab := 0; ab < wab; ab++ {
				src := got[ab*wk*wl : (ab+1)*wk*wl]
				dst := o2big.Data[(ab*c.n+row)*wl : (ab*c.n+row+wk)*wl]
				copy(dst, src)
			}
		} else { // tile (a, b, l, k): transpose (k, l)
			for ab := 0; ab < wab; ab++ {
				for l := 0; l < wl; l++ {
					for k := 0; k < wk; k++ {
						o2big.Data[(ab*c.n+row+k)*wl+l] = got[(ab*wl+l)*wk+k]
					}
				}
			}
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(wl))
	wq := newNbQueue(p)
	for tc := 0; tc < c.nt; tc++ {
		wc := c.fillBRow(p, bbuf.Data, tc)
		if c.exec {
			zero(out.Data[:wab*wc*wl])
			for ab := 0; ab < wab; ab++ {
				// O3[ab, c, l] = B[c, k] . O2[ab, k, l]
				c.gemm(p, false, false, wc, wl, c.n,
					bbuf.Data, c.n,
					sl(o2big, ab*c.n*wl), wl,
					sl(out, ab*wc*wl), wl)
			}
		} else {
			p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wl, c.n), c.eff)
		}
		wq.push(p.NbPutT(o3T, out.Data, ta, tb, tc, tl))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o2big)
}

// op4Unfused computes C[a>=b, c>=d] = sum_l O3[ab, c, l] B[d, l]. Work
// units are (ta, tb); the owner produces all c >= d tiles.
func (c *runCtx) op4Unfused(p *ga.Proc, o3T, cT *ga.TiledArray) {
	for ta := 0; ta < c.nt; ta++ {
		for tb := 0; tb <= ta; tb++ {
			if workOwner(p.Procs(), 4, ta, tb) != p.ID() {
				continue
			}
			c.op4Unit(p, o3T, cT, ta, tb)
		}
	}
}

func (c *runCtx) op4Unit(p *ga.Proc, o3T, cT *ga.TiledArray, ta, tb int) {
	wa, wb := c.g.Width(ta), c.g.Width(tb)
	wab := wa * wb

	// Rather than materialising the full o3big[(a,b)][c][l] plane, gather
	// one c-tile strip [(a,b)][c in tile tc][l] at a time, double-buffered
	// so the gets for strip tc+1 are in flight while strip tc's GEMMs run.
	// Each strip packs its l tiles contiguously (row stride c.n), so the
	// GEMM operands carry exactly the values the full plane held.
	stripW := wab * c.g.T * c.n
	tileW := wab * c.g.T * c.g.T
	o3s := c.alloc(p, 2*int64(stripW))
	tmp := c.alloc(p, 2*int64(c.nt)*int64(tileW))

	issueStrip := func(tc int) []*ga.Handle {
		hs := make([]*ga.Handle, c.nt)
		base := (tc % 2) * c.nt * tileW
		for tl := 0; tl < c.nt; tl++ {
			hs[tl] = p.NbGetT(o3T, sl(tmp, base+tl*tileW), ta, tb, tc, tl)
		}
		return hs
	}
	landStrip := func(tc int, hs []*ga.Handle) {
		p.WaitAll(hs...)
		if !c.exec {
			return
		}
		wc := c.g.Width(tc)
		strip := o3s.Data[(tc%2)*stripW:]
		base := (tc % 2) * c.nt * tileW
		for tl := 0; tl < c.nt; tl++ {
			l0, _ := c.g.Bounds(tl)
			wl := c.g.Width(tl)
			got := tmp.Data[base+tl*tileW:]
			for ab := 0; ab < wab; ab++ { // tile (a, b, c, l)
				for cc := 0; cc < wc; cc++ {
					src := got[(ab*wc+cc)*wl : (ab*wc+cc+1)*wl]
					dst := strip[(ab*wc+cc)*c.n+l0:]
					copy(dst[:wl], src)
				}
			}
		}
	}
	hs := issueStrip(0)

	// Full coefficient matrix rows for the d index; generating them here
	// overlaps strip 0's in-flight gets.
	ball := c.alloc(p, int64(c.n)*int64(c.n))
	for td := 0; td < c.nt; td++ {
		d0, _ := c.g.Bounds(td)
		if c.exec {
			c.fillBRow(p, ball.Data[d0*c.n:], td)
		} else {
			c.fillBRow(p, nil, td)
		}
	}

	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(c.g.T))
	wq := newNbQueue(p)
	for tc := 0; tc < c.nt; tc++ {
		var next []*ga.Handle
		if tc+1 < c.nt {
			next = issueStrip(tc + 1)
		}
		landStrip(tc, hs)
		hs = next
		wc := c.g.Width(tc)
		for td := 0; td <= tc; td++ {
			if !cT.Stored(ta, tb, tc, td) {
				continue // spatial symmetry forbids this block
			}
			d0, _ := c.g.Bounds(td)
			wd := c.g.Width(td)
			if c.exec {
				zero(out.Data[:wab*wc*wd])
				for ab := 0; ab < wab; ab++ {
					// C[ab, c, d] = O3[ab, c, l] . B[d, l]^T
					c.gemm(p, false, true, wc, wd, c.n,
						sl(o3s, (tc%2)*stripW+ab*wc*c.n), c.n,
						sl(ball, d0*c.n), c.n,
						sl(out, ab*wc*wd), wd)
				}
			} else {
				p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wd, c.n), c.eff)
			}
			wq.push(p.NbPutT(cT, out.Data, ta, tb, tc, td))
		}
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(ball)
	p.FreeLocal(tmp)
	p.FreeLocal(o3s)
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
