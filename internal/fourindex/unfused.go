package fourindex

import (
	"fmt"

	"fourindex/internal/blas"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
)

// runUnfused executes the Listing 1/4 baseline: four separate tiled
// contractions with fully materialised intermediates. Peak aggregate
// memory is max(|A|+|O1|, |O1|+|O2|, |O2|+|O3|, |O3|+|C|) ~ 3n^4/4.
//
// The schedule has no l-slab structure, so its checkpoints are per
// stage: completing op1/op2/op3 records Progress 1/2/3 with a snapshot
// of that stage's output intermediate, and a restart resumes at the
// first incomplete contraction. op4 writes C with idempotent PutT and
// simply re-runs.
func runUnfused(opt Options) (*Result, error) {
	c, err := newRunCtx(opt)
	if err != nil {
		return nil, err
	}
	defer c.beginRoot(Unfused)()
	g4 := c.grids4()

	ckptKey := Unfused.String()
	stage := 0
	rec, resumed := c.ckptResume(ckptKey)
	if resumed && rec.Progress >= 1 && rec.Progress <= 3 {
		stage = rec.Progress
	}
	stageSave := func(progress int, name string, t *ga.TiledArray) {
		if c.ckpt() == nil {
			return
		}
		c.ckptSave(faults.Record{
			Scheme:   ckptKey,
			Progress: progress,
			Words:    t.Bytes() / 8,
			State:    map[string][]float64{name: t.SnapshotTiles()},
		})
	}

	var o1T, o2T, o3T *ga.TiledArray
	if stage < 1 {
		c.rt.BeginPhase("generate-A")
		aT, err := c.rt.CreateTiled("A", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy)
		if err != nil {
			return nil, oomWrap(Unfused, err)
		}
		if err := c.generateA(aT, 0); err != nil {
			return nil, err
		}

		c.rt.BeginPhase("op1")
		if o1T, err = c.rt.CreateTiled("O1", g4, [][2]int{{2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) { c.op1Unfused(p, aT, o1T) }); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(aT)
		stageSave(1, "O1", o1T)
		o1T.Freeze()
	} else if stage == 1 {
		if o1T, err = c.rt.CreateTiled("O1", g4, [][2]int{{2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		o1T.RestoreTiles(rec.State["O1"])
		o1T.Freeze()
		c.ckptRestore(rec, fmt.Sprintf("stage %d", stage+1))
	}

	if stage < 2 {
		c.rt.BeginPhase("op2")
		if o2T, err = c.rt.CreateTiled("O2", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) { c.op2Unfused(p, o1T, o2T) }); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(o1T)
		stageSave(2, "O2", o2T)
		o2T.Freeze()
	} else if stage == 2 {
		if o2T, err = c.rt.CreateTiled("O2", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		o2T.RestoreTiles(rec.State["O2"])
		o2T.Freeze()
		c.ckptRestore(rec, fmt.Sprintf("stage %d", stage+1))
	}

	if stage < 3 {
		c.rt.BeginPhase("op3")
		if o3T, err = c.rt.CreateTiled("O3", g4, [][2]int{{0, 1}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		if err := c.rt.Parallel(func(p *ga.Proc) { c.op3Unfused(p, o2T, o3T) }); err != nil {
			return nil, err
		}
		c.rt.DestroyTiled(o2T)
		stageSave(3, "O3", o3T)
		o3T.Freeze()
	} else {
		if o3T, err = c.rt.CreateTiled("O3", g4, [][2]int{{0, 1}}, opt.Policy); err != nil {
			return nil, oomWrap(Unfused, err)
		}
		o3T.RestoreTiles(rec.State["O3"])
		o3T.Freeze()
		c.ckptRestore(rec, fmt.Sprintf("stage %d", stage+1))
	}

	c.rt.BeginPhase("op4")
	cT, err := c.rt.CreateTiledSparse("C", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy, c.cSparsity())
	if err != nil {
		return nil, oomWrap(Unfused, err)
	}
	if err := c.rt.Parallel(func(p *ga.Proc) { c.op4Unfused(p, o3T, cT) }); err != nil {
		return nil, err
	}
	c.rt.DestroyTiled(o3T)
	c.ckptDrop(ckptKey)

	packed := c.extractC(cT)
	c.rt.DestroyTiled(cT)
	return c.result(Unfused, Unfused, packed), nil
}

// op1Unfused computes O1[a, j, k>=l] = sum_i A[ij, kl] B[a, i]. Work
// units are (tj, tk, tl); the owner produces all a tiles, reading A's
// column block once per unit.
func (c *runCtx) op1Unfused(p *ga.Proc, aT, o1T *ga.TiledArray) {
	for tj := 0; tj < c.nt; tj++ {
		for tk := 0; tk < c.nt; tk++ {
			for tl := 0; tl <= tk; tl++ {
				if workOwner(p.Procs(), 1, tj, tk, tl) != p.ID() {
					continue
				}
				c.op1Unit(p, aT, o1T, tj, tk, tl)
			}
		}
	}
}

func (c *runCtx) op1Unit(p *ga.Proc, aT, o1T *ga.TiledArray, tj, tk, tl int) {
	wj, wk, wl := c.g.Width(tj), c.g.Width(tk), c.g.Width(tl)
	rest := wj * wk * wl

	abig := c.alloc(p, int64(c.n)*int64(rest))
	tmp := c.alloc(p, int64(c.g.T)*int64(rest))
	row := 0
	for ti := 0; ti < c.nt; ti++ {
		wi := c.g.Width(ti)
		if ti >= tj {
			p.GetT(aT, tmp.Data, ti, tj, tk, tl)
			if c.exec { // tile laid out (i, j, k, l): rows i, cols rest
				copy(abig.Data[row*rest:(row+wi)*rest], tmp.Data[:wi*rest])
			}
		} else {
			p.GetT(aT, tmp.Data, tj, ti, tk, tl)
			if c.exec { // tile laid out (j, i, k, l): transpose (i, j)
				for j := 0; j < wj; j++ {
					for i := 0; i < wi; i++ {
						src := tmp.Data[(j*wi+i)*wk*wl : (j*wi+i+1)*wk*wl]
						dst := abig.Data[((row+i)*wj+j)*wk*wl : ((row+i)*wj+j+1)*wk*wl]
						copy(dst, src)
					}
				}
			}
		}
		row += wi
	}
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(c.g.T)*int64(rest))
	for ta := 0; ta < c.nt; ta++ {
		wa := c.fillBRow(p, bbuf.Data, ta)
		if c.exec {
			zero(out.Data[:wa*rest])
		}
		// O1[a, (j,k,l)] = B[a, i] . A[i, (j,k,l)]
		c.gemm(p, false, false, wa, rest, c.n, bbuf.Data, c.n, abig.Data, rest, out.Data, rest)
		p.PutT(o1T, out.Data, ta, tj, tk, tl)
	}
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(abig)
}

// op2Unfused computes O2[a>=b, k>=l] = sum_j O1[a, j, kl] B[b, j]. Work
// units are (ta, tk, tl); the owner produces all b <= a tiles.
func (c *runCtx) op2Unfused(p *ga.Proc, o1T, o2T *ga.TiledArray) {
	for ta := 0; ta < c.nt; ta++ {
		for tk := 0; tk < c.nt; tk++ {
			for tl := 0; tl <= tk; tl++ {
				if workOwner(p.Procs(), 2, ta, tk, tl) != p.ID() {
					continue
				}
				c.op2Unit(p, o1T, o2T, ta, tk, tl)
			}
		}
	}
}

func (c *runCtx) op2Unit(p *ga.Proc, o1T, o2T *ga.TiledArray, ta, tk, tl int) {
	wa, wk, wl := c.g.Width(ta), c.g.Width(tk), c.g.Width(tl)
	wkl := wk * wl

	// o1big[a][j][kl] for all j.
	o1big := c.alloc(p, int64(wa)*int64(c.n)*int64(wkl))
	tmp := c.alloc(p, int64(wa)*int64(c.g.T)*int64(wkl))
	col := 0
	for tj := 0; tj < c.nt; tj++ {
		wj := c.g.Width(tj)
		p.GetT(o1T, tmp.Data, ta, tj, tk, tl)
		if c.exec { // tile (a, j, k, l)
			for a := 0; a < wa; a++ {
				src := tmp.Data[a*wj*wkl : (a+1)*wj*wkl]
				dst := o1big.Data[(a*c.n+col)*wkl : (a*c.n+col+wj)*wkl]
				copy(dst, src)
			}
		}
		col += wj
	}
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(wa)*int64(c.g.T)*int64(wkl))
	for tb := 0; tb <= ta; tb++ {
		wb := c.fillBRow(p, bbuf.Data, tb)
		if c.exec {
			zero(out.Data[:wa*wb*wkl])
			for a := 0; a < wa; a++ {
				// O2[a, b, (k,l)] = B[b, j] . O1[a, j, (k,l)]
				c.gemm(p, false, false, wb, wkl, c.n,
					bbuf.Data, c.n,
					sl(o1big, a*c.n*wkl), wkl,
					sl(out, a*wb*wkl), wkl)
			}
		} else {
			p.ComputeEff(int64(wa)*blas.GemmFlops(wb, wkl, c.n), c.eff)
		}
		p.PutT(o2T, out.Data, ta, tb, tk, tl)
	}
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o1big)
}

// op3Unfused computes O3[a>=b, c, l] = sum_k O2[ab, kl] B[c, k]. Work
// units are (ta, tb, tl); the owner produces all c tiles.
func (c *runCtx) op3Unfused(p *ga.Proc, o2T, o3T *ga.TiledArray) {
	for ta := 0; ta < c.nt; ta++ {
		for tb := 0; tb <= ta; tb++ {
			for tl := 0; tl < c.nt; tl++ {
				if workOwner(p.Procs(), 3, ta, tb, tl) != p.ID() {
					continue
				}
				c.op3Unit(p, o2T, o3T, ta, tb, tl)
			}
		}
	}
}

func (c *runCtx) op3Unit(p *ga.Proc, o2T, o3T *ga.TiledArray, ta, tb, tl int) {
	wa, wb, wl := c.g.Width(ta), c.g.Width(tb), c.g.Width(tl)
	wab := wa * wb

	// o2big[(a,b)][k][l] for all k.
	o2big := c.alloc(p, int64(wab)*int64(c.n)*int64(wl))
	tmp := c.alloc(p, int64(wab)*int64(c.g.T)*int64(wl))
	row := 0
	for tk := 0; tk < c.nt; tk++ {
		wk := c.g.Width(tk)
		if tk >= tl {
			p.GetT(o2T, tmp.Data, ta, tb, tk, tl)
			if c.exec { // tile (a, b, k, l)
				for ab := 0; ab < wab; ab++ {
					src := tmp.Data[ab*wk*wl : (ab+1)*wk*wl]
					dst := o2big.Data[(ab*c.n+row)*wl : (ab*c.n+row+wk)*wl]
					copy(dst, src)
				}
			}
		} else {
			p.GetT(o2T, tmp.Data, ta, tb, tl, tk)
			if c.exec { // tile (a, b, l, k): transpose (k, l)
				for ab := 0; ab < wab; ab++ {
					for l := 0; l < wl; l++ {
						for k := 0; k < wk; k++ {
							o2big.Data[(ab*c.n+row+k)*wl+l] = tmp.Data[(ab*wl+l)*wk+k]
						}
					}
				}
			}
		}
		row += wk
	}
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(wl))
	for tc := 0; tc < c.nt; tc++ {
		wc := c.fillBRow(p, bbuf.Data, tc)
		if c.exec {
			zero(out.Data[:wab*wc*wl])
			for ab := 0; ab < wab; ab++ {
				// O3[ab, c, l] = B[c, k] . O2[ab, k, l]
				c.gemm(p, false, false, wc, wl, c.n,
					bbuf.Data, c.n,
					sl(o2big, ab*c.n*wl), wl,
					sl(out, ab*wc*wl), wl)
			}
		} else {
			p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wl, c.n), c.eff)
		}
		p.PutT(o3T, out.Data, ta, tb, tc, tl)
	}
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o2big)
}

// op4Unfused computes C[a>=b, c>=d] = sum_l O3[ab, c, l] B[d, l]. Work
// units are (ta, tb); the owner produces all c >= d tiles.
func (c *runCtx) op4Unfused(p *ga.Proc, o3T, cT *ga.TiledArray) {
	for ta := 0; ta < c.nt; ta++ {
		for tb := 0; tb <= ta; tb++ {
			if workOwner(p.Procs(), 4, ta, tb) != p.ID() {
				continue
			}
			c.op4Unit(p, o3T, cT, ta, tb)
		}
	}
}

func (c *runCtx) op4Unit(p *ga.Proc, o3T, cT *ga.TiledArray, ta, tb int) {
	wa, wb := c.g.Width(ta), c.g.Width(tb)
	wab := wa * wb

	// o3big[(a,b)][c][l] for all c, l.
	o3big := c.alloc(p, int64(wab)*int64(c.n)*int64(c.n))
	tmp := c.alloc(p, int64(wab)*int64(c.g.T)*int64(c.g.T))
	for tc := 0; tc < c.nt; tc++ {
		c0, _ := c.g.Bounds(tc)
		wc := c.g.Width(tc)
		for tl := 0; tl < c.nt; tl++ {
			l0, _ := c.g.Bounds(tl)
			wl := c.g.Width(tl)
			p.GetT(o3T, tmp.Data, ta, tb, tc, tl)
			if c.exec { // tile (a, b, c, l)
				for ab := 0; ab < wab; ab++ {
					for cc := 0; cc < wc; cc++ {
						src := tmp.Data[(ab*wc+cc)*wl : (ab*wc+cc+1)*wl]
						dst := o3big.Data[(ab*c.n+c0+cc)*c.n+l0:]
						copy(dst[:wl], src)
					}
				}
			}
		}
	}
	p.FreeLocal(tmp)

	// Full coefficient matrix rows for the d index.
	ball := c.alloc(p, int64(c.n)*int64(c.n))
	for td := 0; td < c.nt; td++ {
		d0, _ := c.g.Bounds(td)
		if c.exec {
			c.fillBRow(p, ball.Data[d0*c.n:], td)
		} else {
			c.fillBRow(p, nil, td)
		}
	}

	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(c.g.T))
	for tc := 0; tc < c.nt; tc++ {
		c0, _ := c.g.Bounds(tc)
		wc := c.g.Width(tc)
		for td := 0; td <= tc; td++ {
			if !cT.Stored(ta, tb, tc, td) {
				continue // spatial symmetry forbids this block
			}
			d0, _ := c.g.Bounds(td)
			wd := c.g.Width(td)
			if c.exec {
				zero(out.Data[:wab*wc*wd])
				for ab := 0; ab < wab; ab++ {
					// C[ab, c, d] = O3[ab, c, l] . B[d, l]^T
					c.gemm(p, false, true, wc, wd, c.n,
						sl(o3big, (ab*c.n+c0)*c.n), c.n,
						sl(ball, d0*c.n), c.n,
						sl(out, ab*wc*wd), wd)
				}
			} else {
				p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wd, c.n), c.eff)
			}
			p.PutT(cT, out.Data, ta, tb, tc, td)
		}
	}
	p.FreeLocal(out)
	p.FreeLocal(ball)
	p.FreeLocal(o3big)
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
