package fourindex

import (
	"context"
	"errors"
	"fmt"

	"fourindex/internal/faults"
)

// ErrCanceled reports that a transform, tuning sweep or benchmark run
// was stopped cooperatively through its context. Cancellation is
// all-or-nothing: a canceled call never returns a partial Result or a
// partial sweep — callers that need resumability attach a checkpoint
// store (Options.Faults), whose last record survives the cancellation
// and lets a later RunContext pick up at the same l-slab or stage.
var ErrCanceled = errors.New("fourindex: run canceled")

// ctxErr converts a context's termination into the package's typed
// cancellation error. A nil context never cancels, so the zero Options
// keeps its historical fault-free, uncancellable behaviour.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if cause := ctx.Err(); cause != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, cause)
	}
	return nil
}

// canceled is the schedule-side cancellation check, called between
// Parallel regions at the same l-slab and stage boundaries where the
// faults checkpoints live: progress recorded before the boundary is
// already checkpointed, so stopping here never loses completed work.
func (c *runCtx) canceled() error { return ctxErr(c.opt.ctx) }

// RunContext is Run with cooperative cancellation: the schedules poll
// ctx at their l-slab and stage boundaries (where checkpoints are
// taken) and between restart attempts, returning an error wrapping
// ErrCanceled — never a partial Result — once ctx is done. Cancellation
// is not a fault: it does not consume restart budget, does not trigger
// hybrid degradation, and leaves the last checkpoint in place so a
// fresh RunContext against the same store resumes bitwise-identically.
func RunContext(ctx context.Context, scheme Scheme, opt Options) (*Result, error) {
	opt.ctx = ctx
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	restarts := 0
	for {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		res, err := runScheme(scheme, opt)
		if err == nil {
			res.Restarts = restarts
			return res, nil
		}
		if !faults.Restartable(err) || restarts >= opt.Faults.RestartBudget() {
			return nil, err
		}
		restarts++
		opt.Trace.Note(fmt.Sprintf("restart %d/%d of %v after %v",
			restarts, opt.Faults.RestartBudget(), scheme, err))
	}
}

// TuneContext is Tune with cooperative cancellation: the sweep polls
// ctx before each simulated configuration (and each simulation polls at
// its own slab boundaries), returning an error wrapping ErrCanceled —
// never a partial sweep — once ctx is done.
func TuneContext(ctx context.Context, opt Options, space TuneSpace) ([]TunePoint, error) {
	if opt.Run == nil {
		return nil, fmt.Errorf("fourindex: Tune needs a machine model (Options.Run)")
	}
	space = space.withDefaults(opt.Spec.N)
	points, err := sweepConfigs(ctx, opt, space, space.Schemes)
	if err != nil {
		return nil, err
	}
	sortTunePoints(points)
	if len(points) == 0 || points[0].Err != "" {
		return points, fmt.Errorf("fourindex: no feasible configuration in the tuning space")
	}
	return points, nil
}
