package fourindex

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/ga"
	"fourindex/internal/sym"
)

func TestFused123MatchesReference(t *testing.T) {
	for _, tc := range []struct{ n, s, procs, tileN int }{
		{6, 1, 1, 6},
		{10, 1, 3, 4},
		{8, 2, 2, 3},
	} {
		sp := chem.MustSpec(tc.n, tc.s, 99)
		want := ReferencePacked(sp)
		res, err := Run(Fused123, Options{
			Spec: sp, Procs: tc.procs, Mode: ga.Execute, TileN: tc.tileN,
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if d := sym.MaxAbsDiffC(res.C, want); d > 1e-9 {
			t.Errorf("%+v: max diff %v", tc, d)
		}
	}
}

// What the simulator MEASURES for the fusion configurations — and why it
// differs from the raw Theorem 5.2 bound ordering in an instructive way.
//
// The theorem orders idealised I/O lower bounds: op1234 <= op12/34 <
// op123/4 (< unfused). Executable schedules add two real-world effects
// the bounds abstract away:
//
//   - op12/34 (Listing 9) fuses over the (k, l) PAIR, preserving the
//     (k,l) symmetry — it moves the least data of all at full scale.
//   - Any schedule that fuses over the single loop l (op1234's Listing 8
//     and the op123/4 variant here) must break the (k, l) symmetry,
//     doubling A/O1/O2 traffic; for op123/4 that symmetry-breaking cost
//     exceeds what materialising O2 instead of O3 would have saved, so
//     the measured op123/4 traffic lands ABOVE unfused.
//
// That is exactly the paper's design logic: op12/34 for communication
// (Section 7.2), full l fusion only for the memory/disk objective
// (Section 7.1), and nothing in between — op123/4 is dominated both
// analytically (Theorem 5.2) and practically (this measurement).
func TestFusionConfigVolumesMeasured(t *testing.T) {
	sp := chem.MustSpec(32, 1, 3)
	vol := func(s Scheme) int64 {
		res, err := Run(s, Options{
			Spec: sp, Procs: 4, Mode: ga.Cost, TileN: 8, TileL: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.CommVolume + res.IntraVolume
	}
	full := vol(FullyFusedInner)
	pair := vol(Fused1234Pair)
	triple := vol(Fused123)
	unfused := vol(Unfused)
	if !(pair < full) {
		t.Errorf("op12/34 (%d) should move the least data, below l-fused op1234 (%d)", pair, full)
	}
	if !(full < unfused) {
		t.Errorf("l-fused op1234 (%d) should still beat unfused (%d)", full, unfused)
	}
	if !(triple > unfused) {
		t.Errorf("op123/4 (%d) should exceed unfused (%d): symmetry breaking without the payoff", triple, unfused)
	}
}

// The op123/4 peak memory sits between the fully fused footprint and the
// unfused 3n^4/4: the full O3 dominates, and with spatial symmetry the
// resident C is small. (At s = 1 the op4-phase peak O3 + C equals the
// unfused A + O1 to leading order, so spatial symmetry is what separates
// them — another reason the configuration buys nothing.)
func TestFused123MemoryBetween(t *testing.T) {
	sp := chem.MustSpec(24, 8, 3)
	peak := func(s Scheme) int64 {
		res, err := Run(s, Options{
			Spec: sp, Procs: 2, Mode: ga.Cost, TileN: 4, TileL: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakGlobalBytes
	}
	triple := peak(Fused123)
	unfused := peak(Unfused)
	inner := peak(FullyFusedInner)
	if !(inner < triple && triple < unfused) {
		t.Errorf("op123/4 peak %d not between fused %d and unfused %d", triple, inner, unfused)
	}
}

func TestFused123CostExecuteParity(t *testing.T) {
	sp := chem.MustSpec(8, 1, 13)
	opts := Options{Spec: sp, Procs: 2, Mode: ga.Execute, TileN: 3}
	ex, err := Run(Fused123, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Mode = ga.Cost
	co, err := Run(Fused123, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Totals.Flops != co.Totals.Flops {
		t.Errorf("flops %d vs %d", ex.Totals.Flops, co.Totals.Flops)
	}
	if ex.CommVolume+ex.IntraVolume != co.CommVolume+co.IntraVolume {
		t.Error("volume mismatch between modes")
	}
}
