package fourindex

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/lb"
)

func tuneOpts(t *testing.T, n, s, procs int, memBytes int64) Options {
	t.Helper()
	run, err := cluster.SystemB().Configure(procs, 28)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Spec:           chem.MustSpec(n, s, 3),
		Procs:          procs,
		Run:            &run,
		GlobalMemBytes: memBytes,
	}
}

func TestTuneRequiresModel(t *testing.T) {
	if _, err := Tune(Options{Spec: chem.MustSpec(8, 1, 1)}, TuneSpace{}); err == nil {
		t.Error("Tune without a machine model should error")
	}
}

func TestTuneFindsFeasibleFastest(t *testing.T) {
	opt := tuneOpts(t, 48, 1, 28, 0)
	pts, err := Tune(opt, TuneSpace{
		TileNs: []int{6, 12}, TileLs: []int{4, 12}, AlphaPars: []int{1}, LPars: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := Best(pts)
	if !ok {
		t.Fatal("no feasible best")
	}
	if best.Seconds <= 0 {
		t.Error("best has no simulated time")
	}
	// Sorted ascending among feasible points.
	for i := 1; i < len(pts); i++ {
		if pts[i].Err == "" && pts[i-1].Err == "" && pts[i].Seconds < pts[i-1].Seconds {
			t.Fatal("sweep not sorted by time")
		}
		if pts[i-1].Err != "" && pts[i].Err == "" {
			t.Fatal("failed points must sort after feasible ones")
		}
	}
	// With ample memory the unfused scheme (less arithmetic) wins —
	// the Section 7.4 rule, recovered by brute force.
	if best.Scheme != Unfused {
		t.Errorf("ample-memory best = %v, want unfused", best.Scheme)
	}
}

// The paper's thesis, demonstrated: under memory pressure the exhaustive
// sweep lands on the same answer the lower-bound advisor gives instantly.
func TestTuneAgreesWithAdvisor(t *testing.T) {
	n, s := 48, 1
	cap := lb.MemoryUnfused(n, s) * 8 * 7 / 10
	opt := tuneOpts(t, n, s, 28, cap)
	pts, err := Tune(opt, TuneSpace{
		TileNs: []int{6, 12}, TileLs: []int{2, 6, 12}, AlphaPars: []int{1, 2}, LPars: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := Best(pts)
	adv := lb.Advise(n, s, cap)
	if adv.Scheme != "fused" {
		t.Fatalf("advisor says %s, expected fused under pressure", adv.Scheme)
	}
	if best.Scheme != FullyFusedInner {
		t.Errorf("tuner best = %v, advisor (instantly) says fused", best.Scheme)
	}
	// Unfused configurations must all have failed.
	for _, p := range pts {
		if p.Scheme == Unfused && p.Err == "" {
			t.Error("unfused configuration should be infeasible under the cap")
		}
	}
}

func TestTuneAllInfeasible(t *testing.T) {
	opt := tuneOpts(t, 48, 1, 28, 1024) // 1 KB: nothing fits
	pts, err := Tune(opt, TuneSpace{TileNs: []int{12}, TileLs: []int{4}})
	if err == nil {
		t.Error("expected no-feasible-configuration error")
	}
	if _, ok := Best(pts); ok {
		t.Error("Best should report no feasible point")
	}
	for _, p := range pts {
		if p.Err == "" {
			t.Error("every point should carry an error")
		}
	}
}

// Larger fused tiles trade memory for speed: within the sweep, the
// fastest fused point should not use the smallest tile when memory is
// ample.
func TestTuneTileTradeoffVisible(t *testing.T) {
	opt := tuneOpts(t, 48, 1, 28, 0)
	pts, err := Tune(opt, TuneSpace{
		Schemes: []Scheme{FullyFusedInner},
		TileNs:  []int{12}, TileLs: []int{1, 24}, AlphaPars: []int{1}, LPars: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var t1, t24 TunePoint
	for _, p := range pts {
		switch p.TileL {
		case 1:
			t1 = p
		case 24:
			t24 = p
		}
	}
	if t24.Seconds >= t1.Seconds {
		t.Errorf("Tl=24 (%v s) should beat Tl=1 (%v s) with ample memory", t24.Seconds, t1.Seconds)
	}
	if t24.PeakBytes <= t1.PeakBytes {
		t.Error("larger tiles must cost more memory")
	}
}
