package fourindex

import (
	"context"
	"errors"
	"sort"

	"fourindex/internal/ga"
)

// TunePoint is one evaluated configuration of the tuning sweep.
type TunePoint struct {
	Scheme         Scheme
	TileN, TileL   int
	AlphaPar, LPar int
	Overlap        bool    // nonblocking communication path on
	Seconds        float64 // simulated time; +Inf when infeasible
	PeakBytes      int64
	CommElements   int64
	Err            string // nonempty when the configuration failed
}

// TuneSpace bounds the configuration sweep.
type TuneSpace struct {
	// Schemes to consider (default: Unfused and FullyFusedInner —
	// the hybrid's two candidates).
	Schemes []Scheme
	// TileNs and TileLs are the candidate widths (defaults derived
	// from n when empty).
	TileNs []int
	TileLs []int
	// AlphaPars and LPars (defaults {1, 2, 4} and {1, 2}).
	AlphaPars []int
	LPars     []int
	// Overlaps sweeps the nonblocking communication path
	// (Options.Overlap). Empty selects {false}, preserving the
	// historical blocking-only sweep; the frontier tuner defaults to
	// {false, true}.
	Overlaps []bool
}

func (ts TuneSpace) withDefaults(n int) TuneSpace {
	if len(ts.Schemes) == 0 {
		ts.Schemes = []Scheme{Unfused, FullyFusedInner}
	}
	if len(ts.TileNs) == 0 {
		ts.TileNs = []int{max(1, n/32), max(1, n/24), max(1, n/16)}
	}
	if len(ts.TileLs) == 0 {
		ts.TileLs = []int{max(1, n/48), max(1, n/24), max(1, n/12)}
	}
	if len(ts.AlphaPars) == 0 {
		ts.AlphaPars = []int{1, 2, 4}
	}
	if len(ts.LPars) == 0 {
		ts.LPars = []int{1, 2}
	}
	if len(ts.Overlaps) == 0 {
		ts.Overlaps = []bool{false}
	}
	return ts
}

// size returns how many distinct configurations the space enumerates for
// the given schemes — what a brute-force sweep would cost-simulate.
func (ts TuneSpace) size() int {
	total := 0
	for _, scheme := range ts.Schemes {
		if scheme == FullyFused || scheme == FullyFusedInner {
			total += len(ts.TileNs) * len(ts.TileLs) * len(ts.AlphaPars) * len(ts.LPars) * len(ts.Overlaps)
		} else {
			total += len(ts.TileNs) * len(ts.Overlaps)
		}
	}
	return total
}

// Tune sweeps schedule configurations in cost mode — the brute-force
// alternative the paper's Section 1 says is prohibitive on real machines
// ("auto tuning will require execution of thousands of configurations
// for each problem size") but which the simulator makes cheap — and
// returns every evaluated point sorted by simulated time, fastest first.
// Infeasible configurations (out of memory) are kept with their error.
//
// opt supplies the problem, machine model and memory caps; its tiling
// fields are ignored in favour of the sweep. A cost model (opt.Run) is
// required, since "fastest" is meaningless without one.
//
// TuneFrontier walks the capacity-vs-bound frontier first and simulates
// only a bound-shortlisted fraction of the same space; Tune remains as
// the exhaustive reference the frontier gate compares against. Tune
// never cancels; TuneContext adds cooperative cancellation.
func Tune(opt Options, space TuneSpace) ([]TunePoint, error) {
	return TuneContext(context.Background(), opt, space)
}

// sweepConfigs cost-simulates every configuration of the space for the
// given schemes, deduplicating repeats. ctx is polled before every
// simulate point (and inside each simulation at its slab boundaries):
// a canceled sweep returns an error wrapping ErrCanceled and no points.
func sweepConfigs(ctx context.Context, opt Options, space TuneSpace, schemes []Scheme) ([]TunePoint, error) {
	opt.Mode = ga.Cost
	var points []TunePoint
	seen := map[TunePoint]bool{}
	for _, scheme := range schemes {
		fusedKnobs := scheme == FullyFused || scheme == FullyFusedInner
		tileLs, alphaPars, lPars := space.TileLs, space.AlphaPars, space.LPars
		if !fusedKnobs {
			tileLs, alphaPars, lPars = []int{0}, []int{1}, []int{1}
		}
		for _, tn := range space.TileNs {
			for _, tl := range tileLs {
				for _, ap := range alphaPars {
					for _, lp := range lPars {
						for _, ov := range space.Overlaps {
							if err := ctxErr(ctx); err != nil {
								return nil, err
							}
							key := TunePoint{Scheme: scheme, TileN: tn, TileL: tl, AlphaPar: ap, LPar: lp, Overlap: ov}
							if seen[key] {
								continue
							}
							seen[key] = true
							o := opt
							o.TileN, o.TileL, o.AlphaPar, o.LPar, o.Overlap = tn, tl, ap, lp, ov
							pt := key
							res, err := RunContext(ctx, scheme, o)
							switch {
							case errors.Is(err, ErrCanceled):
								return nil, err
							case err != nil:
								pt.Err = err.Error()
							default:
								pt.Seconds = res.ElapsedSeconds
								pt.PeakBytes = res.PeakGlobalBytes
								pt.CommElements = res.CommVolume
							}
							points = append(points, pt)
						}
					}
				}
			}
		}
	}
	return points, nil
}

// sortTunePoints orders a sweep fastest-first with a fully deterministic
// tie-break: feasible before failed, then (Seconds, PeakBytes, Scheme,
// TileN, TileL, AlphaPar, LPar, Overlap, Err). Points with equal
// simulated time no longer order by sweep emission, so the sweep output
// — and every artifact written from it — is a pure function of the
// space (the determinism analyzer's contract).
func sortTunePoints(points []TunePoint) {
	sort.Slice(points, func(i, j int) bool {
		return lessTunePoint(points[i], points[j])
	})
}

// lessTunePoint is the strict total order behind sortTunePoints.
func lessTunePoint(a, b TunePoint) bool {
	fa, fb := a.Err == "", b.Err == ""
	if fa != fb {
		return fa
	}
	if a.Seconds != b.Seconds {
		return a.Seconds < b.Seconds
	}
	if a.PeakBytes != b.PeakBytes {
		return a.PeakBytes < b.PeakBytes
	}
	if a.Scheme != b.Scheme {
		return a.Scheme < b.Scheme
	}
	if a.TileN != b.TileN {
		return a.TileN < b.TileN
	}
	if a.TileL != b.TileL {
		return a.TileL < b.TileL
	}
	if a.AlphaPar != b.AlphaPar {
		return a.AlphaPar < b.AlphaPar
	}
	if a.LPar != b.LPar {
		return a.LPar < b.LPar
	}
	if a.Overlap != b.Overlap {
		return !a.Overlap
	}
	return a.Err < b.Err
}

// Best returns the fastest feasible point of a sorted sweep.
func Best(points []TunePoint) (TunePoint, bool) {
	if len(points) > 0 && points[0].Err == "" {
		return points[0], true
	}
	return TunePoint{}, false
}
