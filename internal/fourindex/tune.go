package fourindex

import (
	"fmt"
	"sort"

	"fourindex/internal/ga"
)

// TunePoint is one evaluated configuration of the tuning sweep.
type TunePoint struct {
	Scheme         Scheme
	TileN, TileL   int
	AlphaPar, LPar int
	Seconds        float64 // simulated time; +Inf when infeasible
	PeakBytes      int64
	CommElements   int64
	Err            string // nonempty when the configuration failed
}

// TuneSpace bounds the configuration sweep.
type TuneSpace struct {
	// Schemes to consider (default: Unfused and FullyFusedInner —
	// the hybrid's two candidates).
	Schemes []Scheme
	// TileNs and TileLs are the candidate widths (defaults derived
	// from n when empty).
	TileNs []int
	TileLs []int
	// AlphaPars and LPars (defaults {1, 2, 4} and {1, 2}).
	AlphaPars []int
	LPars     []int
}

func (ts TuneSpace) withDefaults(n int) TuneSpace {
	if len(ts.Schemes) == 0 {
		ts.Schemes = []Scheme{Unfused, FullyFusedInner}
	}
	if len(ts.TileNs) == 0 {
		ts.TileNs = []int{max(1, n/32), max(1, n/24), max(1, n/16)}
	}
	if len(ts.TileLs) == 0 {
		ts.TileLs = []int{max(1, n/48), max(1, n/24), max(1, n/12)}
	}
	if len(ts.AlphaPars) == 0 {
		ts.AlphaPars = []int{1, 2, 4}
	}
	if len(ts.LPars) == 0 {
		ts.LPars = []int{1, 2}
	}
	return ts
}

// Tune sweeps schedule configurations in cost mode — the brute-force
// alternative the paper's Section 1 says is prohibitive on real machines
// ("auto tuning will require execution of thousands of configurations
// for each problem size") but which the simulator makes cheap — and
// returns every evaluated point sorted by simulated time, fastest first.
// Infeasible configurations (out of memory) are kept with their error.
//
// opt supplies the problem, machine model and memory caps; its tiling
// fields are ignored in favour of the sweep. A cost model (opt.Run) is
// required, since "fastest" is meaningless without one.
func Tune(opt Options, space TuneSpace) ([]TunePoint, error) {
	if opt.Run == nil {
		return nil, fmt.Errorf("fourindex: Tune needs a machine model (Options.Run)")
	}
	opt.Mode = ga.Cost
	space = space.withDefaults(opt.Spec.N)

	var points []TunePoint
	seen := map[TunePoint]bool{}
	for _, scheme := range space.Schemes {
		fusedKnobs := scheme == FullyFused || scheme == FullyFusedInner
		tileLs, alphaPars, lPars := space.TileLs, space.AlphaPars, space.LPars
		if !fusedKnobs {
			tileLs, alphaPars, lPars = []int{0}, []int{1}, []int{1}
		}
		for _, tn := range space.TileNs {
			for _, tl := range tileLs {
				for _, ap := range alphaPars {
					for _, lp := range lPars {
						key := TunePoint{Scheme: scheme, TileN: tn, TileL: tl, AlphaPar: ap, LPar: lp}
						if seen[key] {
							continue
						}
						seen[key] = true
						o := opt
						o.TileN, o.TileL, o.AlphaPar, o.LPar = tn, tl, ap, lp
						pt := key
						res, err := Run(scheme, o)
						if err != nil {
							pt.Err = err.Error()
						} else {
							pt.Seconds = res.ElapsedSeconds
							pt.PeakBytes = res.PeakGlobalBytes
							pt.CommElements = res.CommVolume
						}
						points = append(points, pt)
					}
				}
			}
		}
	}
	sort.SliceStable(points, func(i, j int) bool {
		fi, fj := points[i].Err == "", points[j].Err == ""
		if fi != fj {
			return fi
		}
		return points[i].Seconds < points[j].Seconds
	})
	if len(points) == 0 || points[0].Err != "" {
		return points, fmt.Errorf("fourindex: no feasible configuration in the tuning space")
	}
	return points, nil
}

// Best returns the fastest feasible point of a sorted sweep.
func Best(points []TunePoint) (TunePoint, bool) {
	if len(points) > 0 && points[0].Err == "" {
		return points[0], true
	}
	return TunePoint{}, false
}
