package fourindex

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"fourindex/internal/lb"
	"fourindex/internal/lb/chain"
	"fourindex/internal/sym"
)

// This file bridges the lb capacity-vs-bound frontier (lb.ConfigBoundAt,
// lb.CapacityGrid) to the executable schedules: it names each curve
// after the scheme that realises it, attaches the scheme's own memory
// model as the feasibility edge, emits the whole thing as the
// schema-versioned FRONTIER_fouridx.json artifact, and drives the
// frontier tuner that replaces the brute-force sweep — shortlist by
// machine-aware lower-bound time at the machine's actual capacity,
// cost-simulate only the shortlist.

// FrontierSchemaVersion is bumped whenever the FRONTIER_fouridx.json
// shape changes incompatibly; the golden test refuses stale artifacts
// byte-for-byte regardless.
const FrontierSchemaVersion = 1

// FrontierProblem names one (n, s) problem the frontier artifact covers.
type FrontierProblem struct {
	// Name labels the problem (a molecule name or a synthetic label).
	Name string `json:"name"`
	// N is the orbital count.
	N int `json:"n"`
	// Sym is the spatial-symmetry order applied to the output tensor.
	Sym int `json:"spatialSymmetry"`
}

// DefaultFrontierProblems returns the problems behind the checked-in
// FRONTIER_fouridx.json: the two bench-matrix cost molecules at the
// paper's s = 8 benchmark symmetry, plus the symmetry-free n = 256
// point the overlap work benchmarks on System B.
func DefaultFrontierProblems() []FrontierProblem {
	return []FrontierProblem{
		{Name: "Hyperpolar", N: 368, Sym: 8},
		{Name: "C60H20", N: 580, Sym: 8},
		{Name: "SystemB-n256", N: 256, Sym: 1},
	}
}

// FrontierPoint is one capacity sample of a schedule's frontier.
type FrontierPoint struct {
	// S is the fast-memory capacity in elements.
	S int64 `json:"s"`
	// Feasible reports whether the schedule's memory model fits in S.
	Feasible bool `json:"feasible"`
	// BoundElements is the schedule's I/O lower bound at S.
	BoundElements float64 `json:"boundElements"`
}

// ScheduleFrontier is one schedule's capacity-vs-bound curve: the
// feasible region, the bound at every grid capacity, and the knees.
type ScheduleFrontier struct {
	// Scheme names the schedule ("unfused", "fullyfused-inner", ...).
	Scheme string `json:"scheme"`
	// Config is the fusion configuration the schedule realises.
	Config string `json:"config"`
	// FloorElements is the memory-independent bound floor the curve
	// flattens onto (lb.ConfigIO).
	FloorElements int64 `json:"floorElements"`
	// MinMemoryElements is the schedule's memory model at its smallest
	// tile width — the feasibility edge of the frontier.
	MinMemoryElements int64 `json:"minMemoryElements"`
	// FlatAtS is the smallest grid capacity where the bound equals the
	// floor; it coincides with the paper's closed-form threshold for
	// the schedule's configuration (the knee).
	FlatAtS int64 `json:"flatAtS"`
	// FeasibleAtS is the smallest grid capacity where the schedule fits
	// (== MinMemoryElements, which the grid contains exactly).
	FeasibleAtS int64 `json:"feasibleAtS"`
	// Points samples the frontier over the capacity grid, ascending.
	Points []FrontierPoint `json:"points"`
}

// ProblemFrontier is the full frontier of one problem: the closed-form
// knee capacities and every schedule's curve over a shared grid.
type ProblemFrontier struct {
	FrontierProblem
	// Thresholds are the closed-form knee capacities for (N, Sym).
	Thresholds lb.Thresholds `json:"thresholds"`
	// Grid is the shared capacity grid (elements), strictly increasing.
	Grid []int64 `json:"grid"`
	// Schedules holds one curve per schedule, in frontierSchemes order.
	Schedules []ScheduleFrontier `json:"schedules"`
}

// FrontierReport is the schema-versioned FRONTIER_fouridx.json payload.
// Equal inputs encode byte-identically (struct-order JSON, deterministic
// grid, no map iteration anywhere on the emission path).
type FrontierReport struct {
	// SchemaVersion is FrontierSchemaVersion at write time.
	SchemaVersion int `json:"schemaVersion"`
	// Problems holds one frontier per configured problem.
	Problems []ProblemFrontier `json:"problems"`
}

// Encode writes the report as indented JSON. encoding/json emits struct
// fields in declaration order and formats floats deterministically, so
// equal reports encode byte-identically (the golden test pins this).
func (r *FrontierReport) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeFrontier reads a report written by FrontierReport.Encode.
func DecodeFrontier(rd io.Reader) (*FrontierReport, error) {
	var r FrontierReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("fourindex: decoding frontier report: %w", err)
	}
	return &r, nil
}

// frontierScheme binds a schedule to its fusion configuration and
// minimum-memory model. Hybrid is a driver over unfused and
// fullyfused-inner rather than a schedule of its own, and Recompute
// trades arithmetic for memory rather than moving along the
// data-movement frontier, so neither carries a curve.
type frontierScheme struct {
	scheme Scheme
	config lb.FusionConfig
	// minMemory is the schedule's memory model at its smallest tile
	// width, in elements.
	minMemory func(n, s int) int64
	// memoryAt is the schedule's memory model at fused-loop tile width
	// tl, in elements; nil when the schedule has no tile-width knob.
	memoryAt func(n, s, tl int) int64
}

// frontierSchemes lists the schedules on the frontier, in the fixed
// order the artifact emits them.
func frontierSchemes() []frontierScheme {
	cfg := func(groups ...[]int) lb.FusionConfig { return lb.FusionConfig{Groups: groups} }
	return []frontierScheme{
		{Unfused, cfg([]int{1}, []int{2}, []int{3}, []int{4}),
			lb.MemoryUnfused, nil},
		{Fused1234Pair, cfg([]int{1, 2}, []int{3, 4}),
			lb.MemoryFused12_34, nil},
		{NWChemFused, cfg([]int{1, 2}, []int{3, 4}),
			lb.MemoryFused12_34, nil},
		{Fused123, cfg([]int{1, 2, 3}, []int{4}),
			func(n, s int) int64 { return lb.MemoryFused123(n, s, 1) }, lb.MemoryFused123},
		{FullyFused, cfg([]int{1, 2, 3, 4}),
			func(n, s int) int64 { return lb.MemoryFused1234(n, s, 1) }, lb.MemoryFused1234},
		{FullyFusedInner, cfg([]int{1, 2, 3, 4}),
			func(n, s int) int64 { return lb.MemoryFused1234Inner(n, s, 1) }, lb.MemoryFused1234Inner},
	}
}

// RunFrontier sweeps every schedule's memory model and lower bound over
// a deterministic capacity grid for each problem and returns the
// frontier report. A nil or empty problem list selects
// DefaultFrontierProblems. The grid is lb.CapacityGrid plus every
// schedule's feasibility edge, so both kinds of knee — bound flattening
// and memory fitting — land on exact grid points.
func RunFrontier(problems []FrontierProblem) *FrontierReport {
	if len(problems) == 0 {
		problems = DefaultFrontierProblems()
	}
	rep := &FrontierReport{SchemaVersion: FrontierSchemaVersion}
	for _, p := range problems {
		rep.Problems = append(rep.Problems, computeProblemFrontier(p))
	}
	return rep
}

// computeProblemFrontier builds one problem's frontier.
func computeProblemFrontier(p FrontierProblem) ProblemFrontier {
	schemes := frontierSchemes()
	grid := lb.CapacityGrid(p.N, p.Sym, 0)
	for _, fs := range schemes {
		grid = append(grid, fs.minMemory(p.N, p.Sym))
	}
	sort.Slice(grid, func(i, j int) bool { return grid[i] < grid[j] })
	dedup := grid[:0]
	var prev int64 = -1
	for _, v := range grid {
		if v != prev {
			dedup = append(dedup, v)
			prev = v
		}
	}
	grid = dedup

	pf := ProblemFrontier{
		FrontierProblem: p,
		Thresholds:      lb.ThresholdsFor(p.N, p.Sym),
		Grid:            grid,
	}
	sz := sym.ExactSizes(p.N, p.Sym)
	for _, fs := range schemes {
		sf := ScheduleFrontier{
			Scheme:            fs.scheme.String(),
			Config:            fs.config.String(),
			FloorElements:     lb.ConfigIO(fs.config, sz),
			MinMemoryElements: fs.minMemory(p.N, p.Sym),
			Points:            make([]FrontierPoint, 0, len(grid)),
		}
		floor := float64(sf.FloorElements)
		for _, S := range grid {
			pt := FrontierPoint{
				S:             S,
				Feasible:      S >= sf.MinMemoryElements,
				BoundElements: lb.ConfigBoundAt(fs.config, p.N, p.Sym, S),
			}
			if sf.FlatAtS == 0 && pt.BoundElements <= floor {
				sf.FlatAtS = S
			}
			if sf.FeasibleAtS == 0 && pt.Feasible {
				sf.FeasibleAtS = S
			}
			sf.Points = append(sf.Points, pt)
		}
		pf.Schedules = append(pf.Schedules, sf)
	}
	return pf
}

// FrontierCandidate is one schedule's frontier analysis at the capacity
// the tuner planned for.
type FrontierCandidate struct {
	// Scheme is the analysed schedule.
	Scheme Scheme
	// Config is its fusion configuration in op-notation.
	Config string
	// BoundElements is the I/O lower bound at the planned capacity.
	BoundElements float64
	// MinMemoryElements is the schedule's feasibility edge.
	MinMemoryElements int64
	// Feasible reports whether the schedule fits the memory constraint
	// the run enforces (Options.GlobalMemBytes; always true when the
	// run is uncapped, matching Run's own refusal behaviour).
	Feasible bool
	// LowerBoundSeconds is the machine-aware time floor:
	// max(flop bound / machine flop rate, byte bound / machine injection
	// bandwidth). No configuration of the schedule can simulate faster.
	LowerBoundSeconds float64
	// Shortlisted reports whether the schedule was cost-simulated:
	// either it survived the tolerance cut, or the soundness pass
	// rescued it because its time floor undercut the incumbent's
	// simulated time.
	Shortlisted bool
	// SuggestedTileL is the largest fused-loop tile width the
	// schedule's memory model admits at the planned capacity — where
	// the frontier says the A-slab re-read factor n/Tl is smallest
	// (0 when the schedule has no tile-width knob, or none fits).
	SuggestedTileL int
}

// FrontierTune is the outcome of the frontier-driven tuner.
type FrontierTune struct {
	// CapacityElements is the fast-memory capacity S the tuner planned
	// for (the memory cap, or the machine's aggregate memory).
	CapacityElements int64
	// Tolerance is the shortlist cut actually applied.
	Tolerance float64
	// Candidates holds every analysed schedule in scheme order.
	Candidates []FrontierCandidate
	// Points are the cost-simulated shortlist configurations, sorted
	// fastest-first with the deterministic tie-break.
	Points []TunePoint
	// Pick is the fastest feasible simulated point.
	Pick TunePoint
	// FullSpace is how many configurations a brute-force Tune of the
	// same space would cost-simulate; Simulated is how many the
	// shortlist actually ran (never more, and strictly fewer whenever
	// a schedule is pruned).
	FullSpace, Simulated int
}

// frontierFlops returns the lower bound on arithmetic for a schedule
// family: the fused schedules pay the Section 7.4 ~1.5x redundancy,
// everything else does the unfused work.
func frontierFlops(scheme Scheme, n int) int64 {
	if scheme == FullyFused || scheme == FullyFusedInner {
		return lb.FlopsFused1234(n)
	}
	return lb.FlopsUnfused(n)
}

// defaultFrontierTolerance is the shortlist cut applied when the caller
// passes a non-positive tolerance: generous enough that every schedule
// whose time floor is within 50% of the best attainable gets simulated,
// which is what keeps the tuner's pick at least as good as the
// brute-force sweep's on every benchmarked point (the CI gate).
const defaultFrontierTolerance = 0.5

// TuneFrontier is the frontier-driven autotuner: instead of
// cost-simulating the whole configuration space (Tune), it evaluates
// each schedule's data-movement lower bound at the machine's actual
// capacity S, converts bound and flop floor into a per-schedule
// lower-bound time under the machine model, shortlists the schedules
// within tolerance of the best attainable floor, and cost-simulates
// only the shortlist — Options' own tiling knobs join the candidate
// grid, and each fused candidate additionally reports the largest
// fused-loop width its memory model admits (SuggestedTileL).
//
// A non-positive tolerance selects the default 0.5. The space's Overlaps
// axis defaults to {false, true} here (unlike Tune's historical
// blocking-only default): the frontier pick must beat the benchmark
// matrix's overlap points too.
//
// TuneFrontier never cancels; TuneFrontierContext adds cooperative
// cancellation.
func TuneFrontier(opt Options, space TuneSpace, tolerance float64) (*FrontierTune, error) {
	return TuneFrontierContext(context.Background(), opt, space, tolerance)
}

// TuneFrontierContext is TuneFrontier with cooperative cancellation:
// the shortlist simulation polls ctx before every simulate point,
// returning an error wrapping ErrCanceled — never a partial analysis —
// once ctx is done.
func TuneFrontierContext(ctx context.Context, opt Options, space TuneSpace, tolerance float64) (*FrontierTune, error) {
	if opt.Run == nil {
		return nil, fmt.Errorf("fourindex: TuneFrontier needs a machine model (Options.Run)")
	}
	if tolerance <= 0 {
		tolerance = defaultFrontierTolerance
	}
	n, s := opt.Spec.N, opt.Spec.S
	if len(space.Overlaps) == 0 {
		space.Overlaps = []bool{false, true}
	}
	space = space.withDefaults(n)
	space.TileNs = appendKnob(space.TileNs, opt.TileN)
	space.TileLs = appendKnob(space.TileLs, opt.TileL)
	space.AlphaPars = appendKnob(space.AlphaPars, opt.AlphaPar)
	space.LPars = appendKnob(space.LPars, opt.LPar)

	// Bounds are evaluated at the capacity the run actually has: the
	// explicit cap when one is set, else the machine's aggregate memory.
	// Feasibility pruning honours only the enforced cap — an uncapped
	// run refuses nothing (Run reports oversubscription through
	// PeakGlobalBytes instead), so the tuner must not drop schedules
	// the benchmark would happily simulate.
	capElems := opt.GlobalMemBytes / 8
	enforced := capElems > 0
	if !enforced {
		capElems = opt.Run.AggregateMemBytes() / 8
	}
	// A byte budget under one element, or a machine model with no
	// memory, leaves no capacity to bound against — surface the typed
	// capacity error instead of reaching lb's checkS panic.
	if err := chain.CheckCapacity(capElems); err != nil {
		return nil, fmt.Errorf("fourindex: frontier tuner: %w", err)
	}

	flopRate := opt.Run.FlopsPerSecPerRank() * float64(opt.Run.Ranks)
	netRate := opt.Run.NetBytesPerSecPerRank() * float64(opt.Run.Ranks)

	ft := &FrontierTune{
		CapacityElements: capElems,
		Tolerance:        tolerance,
		FullSpace:        space.size(),
	}

	// Walk the frontier at S: per-schedule bound, feasibility, time floor.
	byScheme := map[Scheme]frontierScheme{}
	bestFloor := math.Inf(1)
	for _, fs := range frontierSchemes() {
		byScheme[fs.scheme] = fs
	}
	for _, scheme := range space.Schemes {
		fs, ok := byScheme[scheme]
		if !ok {
			return nil, fmt.Errorf("fourindex: scheme %v has no frontier model", scheme)
		}
		cand := FrontierCandidate{
			Scheme:            scheme,
			Config:            fs.config.String(),
			BoundElements:     lb.ConfigBoundAt(fs.config, n, s, capElems),
			MinMemoryElements: fs.minMemory(n, s),
		}
		cand.Feasible = !enforced || cand.MinMemoryElements <= capElems
		if fs.memoryAt != nil {
			cand.SuggestedTileL = maxFeasibleTileL(fs.memoryAt, n, s, capElems)
		}
		compute := float64(frontierFlops(scheme, n)) / flopRate
		comm := 8 * cand.BoundElements / netRate
		cand.LowerBoundSeconds = math.Max(compute, comm)
		if cand.Feasible && cand.LowerBoundSeconds < bestFloor {
			bestFloor = cand.LowerBoundSeconds
		}
		ft.Candidates = append(ft.Candidates, cand)
	}
	if math.IsInf(bestFloor, 1) {
		return ft, fmt.Errorf("fourindex: no schedule fits capacity of %d elements (S < |C| + slabs; Theorem 6.2 forbids disk-free execution)", capElems)
	}

	// Initial shortlist: every feasible schedule within tolerance of the
	// best attainable time floor gets simulated.
	var shortlist []Scheme
	for i := range ft.Candidates {
		c := &ft.Candidates[i]
		if c.Feasible && c.LowerBoundSeconds <= bestFloor*(1+tolerance) {
			c.Shortlisted = true
			shortlist = append(shortlist, c.Scheme)
		}
	}

	pts, err := sweepConfigs(ctx, opt, space, shortlist)
	if err != nil {
		return nil, err
	}
	ft.Points = pts

	// Soundness pass (branch and bound): lower bounds flatter fused
	// schedules more than the cost model does, so the tolerance cut
	// alone could drop the true winner. A schedule whose lower-bound
	// time is below the incumbent's *simulated* time could still win —
	// simulate it too, cheapest floor first, until every unsimulated
	// schedule's floor exceeds the incumbent. A pruned schedule provably
	// cannot beat the incumbent (its every configuration simulates no
	// faster than its floor), so the pick is never worse than a full
	// Tune sweep of the same space.
	for {
		incumbent := math.Inf(1)
		for _, p := range ft.Points {
			if p.Err == "" && p.Seconds < incumbent {
				incumbent = p.Seconds
			}
		}
		next := -1
		for i, c := range ft.Candidates {
			if c.Shortlisted || !c.Feasible || c.LowerBoundSeconds > incumbent {
				continue
			}
			if next < 0 || c.LowerBoundSeconds < ft.Candidates[next].LowerBoundSeconds {
				next = i
			}
		}
		if next < 0 {
			break
		}
		ft.Candidates[next].Shortlisted = true
		rescued, err := sweepConfigs(ctx, opt, space, []Scheme{ft.Candidates[next].Scheme})
		if err != nil {
			return nil, err
		}
		ft.Points = append(ft.Points, rescued...)
	}

	ft.Simulated = len(ft.Points)
	sortTunePoints(ft.Points)
	pick, ok := Best(ft.Points)
	if !ok {
		return ft, fmt.Errorf("fourindex: no feasible configuration in the frontier shortlist")
	}
	ft.Pick = pick
	return ft, nil
}

// appendKnob adds the caller's own knob value to a candidate list when
// it is set and not already present.
func appendKnob(vals []int, v int) []int {
	if v <= 0 {
		return vals
	}
	for _, x := range vals {
		if x == v {
			return vals
		}
	}
	return append(vals, v)
}

// maxFeasibleTileL binary-searches the largest fused-loop tile width
// whose memory model fits capElems elements; 0 when even tl = 1 does
// not fit.
func maxFeasibleTileL(model func(n, s, tl int) int64, n, s int, capElems int64) int {
	lo, hi := 1, n
	if model(n, s, 1) > capElems {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if model(n, s, mid) <= capElems {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
