package fourindex

import (
	"fmt"
	"io"

	"fourindex/internal/lb/chain"
)

// This file bridges the generalized bound engine (internal/lb/chain) to
// the façade, the fouridx chains subcommand, and the fouridxd job
// payload: any declarative contraction chain — the built-in fourindex /
// mp2 / rect scenarios or a user-submitted description — gets derived
// bounds, fusion rankings, and frontier curves end to end.

// maxChainCurves caps how many ranked configurations get full frontier
// curves in a report; rankings always cover every configuration.
const maxChainCurves = 16

// ChainAtCapacity is one configuration's analysis at a specific
// fast-memory capacity.
type ChainAtCapacity struct {
	// Config is the fusion configuration in op-notation.
	Config string `json:"config"`
	// BoundElements is the derived I/O lower bound at the capacity.
	BoundElements float64 `json:"boundElements"`
	// MinMemoryElements is the configuration's feasibility floor.
	MinMemoryElements int64 `json:"minMemoryElements"`
	// Feasible reports MinMemoryElements <= capacity.
	Feasible bool `json:"feasible"`
}

// ChainReport is the engine's full analysis of one contraction chain:
// thresholds, a ranking of every fusion configuration, frontier curves
// for the best-ranked configurations, and (when a capacity is given)
// per-configuration bounds at that capacity plus the admission floor.
type ChainReport struct {
	// Chain names the analysed chain.
	Chain string `json:"chain"`
	// Ops is the contraction count.
	Ops int `json:"ops"`
	// Boundaries lists the declared tensors in producer order.
	Boundaries []chain.Tensor `json:"boundaries"`
	// Thresholds are the derived regime-change capacities.
	Thresholds chain.Thresholds `json:"thresholds"`
	// Rankings orders every fusion configuration by I/O floor.
	Rankings []chain.RankedConfig `json:"rankings"`
	// Curves holds frontier curves for the best-ranked configurations
	// (at most maxChainCurves), in ranking order.
	Curves []chain.Curve `json:"curves"`
	// MinMemoryElements is the smallest feasibility floor over all
	// configurations — the analytic admission floor: below it no
	// schedule shape runs the chain at all.
	MinMemoryElements int64 `json:"minMemoryElements"`
	// CapacityElements echoes the capacity the report was priced at
	// (0 when none was given).
	CapacityElements int64 `json:"capacityElements,omitempty"`
	// AtCapacity analyses every configuration at CapacityElements, in
	// ranking order (nil when no capacity was given).
	AtCapacity []ChainAtCapacity `json:"atCapacity,omitempty"`
	// BestConfig is the lowest-bound feasible configuration at
	// CapacityElements ("" when no capacity was given or none fits).
	BestConfig string `json:"bestConfig,omitempty"`
	// BestBoundElements is BestConfig's bound at CapacityElements.
	BestBoundElements float64 `json:"bestBoundElements,omitempty"`
}

// AnalyzeChain runs the bound engine over a chain description:
// validation, thresholds, full configuration ranking, frontier curves,
// and — when capacityElements > 0 — per-configuration bounds at that
// capacity. Errors are typed (*chain.ValidationError,
// *chain.OverflowError, *chain.CapacityError), never panics: this is
// the path fouridxd prices user-submitted chains through.
func AnalyzeChain(c *chain.Chain, capacityElements int64, perDecade int) (*ChainReport, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if capacityElements < 0 {
		return nil, &chain.CapacityError{S: capacityElements, Reason: "fast-memory capacity must be positive (or 0 to skip capacity pricing)"}
	}
	ranked, err := c.RankConfigs()
	if err != nil {
		return nil, err
	}
	rep := &ChainReport{
		Chain:      c.Name,
		Ops:        c.NumOps(),
		Boundaries: c.Boundaries,
		Thresholds: c.Thresholds(),
		Rankings:   ranked,
	}
	rep.MinMemoryElements = ranked[0].MinMemory
	for _, rc := range ranked {
		if rc.MinMemory < rep.MinMemoryElements {
			rep.MinMemoryElements = rc.MinMemory
		}
	}
	grid := c.CapacityGrid(perDecade)
	for i, rc := range ranked {
		if i >= maxChainCurves {
			break
		}
		cv, err := c.ComputeCurve(rc.Config, grid)
		if err != nil {
			return nil, err
		}
		rep.Curves = append(rep.Curves, cv)
	}
	if capacityElements > 0 {
		rep.CapacityElements = capacityElements
		for _, rc := range ranked {
			b, err := c.ConfigBoundAt(rc.Config, capacityElements)
			if err != nil {
				return nil, err
			}
			at := ChainAtCapacity{
				Config:            rc.Name,
				BoundElements:     b,
				MinMemoryElements: rc.MinMemory,
				Feasible:          rc.MinMemory <= capacityElements,
			}
			rep.AtCapacity = append(rep.AtCapacity, at)
			if at.Feasible && (rep.BestConfig == "" || at.BoundElements < rep.BestBoundElements) {
				rep.BestConfig = at.Config
				rep.BestBoundElements = at.BoundElements
			}
		}
	}
	return rep, nil
}

// ChainScenario names one built-in chain of the chains subcommand.
type ChainScenario struct {
	// Name is the registry key ("fourindex", "mp2", "rect").
	Name string
	// ArgNames documents the two extent arguments.
	ArgNames [2]string
	// Build constructs the chain for the two extents.
	Build func(a, b int) (*chain.Chain, error)
}

// ChainScenarios lists the built-in chains in a fixed order.
func ChainScenarios() []ChainScenario {
	return []ChainScenario{
		{Name: "fourindex", ArgNames: [2]string{"n", "s"}, Build: chain.FourIndex},
		{Name: "mp2", ArgNames: [2]string{"occ", "virt"}, Build: chain.MP2},
		{Name: "rect", ArgNames: [2]string{"n", "k"}, Build: chain.Rect},
	}
}

// WriteChainReport renders a report as the aligned tables the chains
// subcommand prints: the ranking table always, the capacity table when
// the report was priced at a capacity.
func WriteChainReport(w io.Writer, rep *ChainReport) error {
	if _, err := fmt.Fprintf(w, "chain %s: %d ops, admission floor %d elements\n",
		rep.Chain, rep.Ops, rep.MinMemoryElements); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "thresholds: single %d, pair-useful %d, pair %d, full-reuse %d (sufficient %d)\n",
		rep.Thresholds.SingleTight, rep.Thresholds.PairUseful, rep.Thresholds.PairFusion,
		rep.Thresholds.FullReuse, rep.Thresholds.FullReuseSufficient); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s %16s %6s %16s %10s\n", "CONFIG", "IO-FLOOR", "TIGHT", "MIN-MEMORY", "KNEE-S"); err != nil {
		return err
	}
	knees := make(map[string]int64, len(rep.Curves))
	for _, cv := range rep.Curves {
		knees[cv.Config] = cv.FlatAtS
	}
	for _, rc := range rep.Rankings {
		knee := "-"
		if s, ok := knees[rc.Name]; ok {
			knee = fmt.Sprintf("%d", s)
		}
		if _, err := fmt.Fprintf(w, "%-14s %16d %6v %16d %10s\n", rc.Name, rc.IO, rc.Tight, rc.MinMemory, knee); err != nil {
			return err
		}
	}
	if rep.CapacityElements > 0 {
		best := "none feasible"
		if rep.BestConfig != "" {
			best = fmt.Sprintf("best %s, bound %.4g", rep.BestConfig, rep.BestBoundElements)
		}
		if _, err := fmt.Fprintf(w, "at capacity %d elements (%s):\n", rep.CapacityElements, best); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-14s %18s %10s\n", "CONFIG", "BOUND", "FEASIBLE"); err != nil {
			return err
		}
		for _, at := range rep.AtCapacity {
			if _, err := fmt.Fprintf(w, "%-14s %18.6g %10v\n", at.Config, at.BoundElements, at.Feasible); err != nil {
				return err
			}
		}
	}
	return nil
}
