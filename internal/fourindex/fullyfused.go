package fourindex

import (
	"fmt"

	"fourindex/internal/blas"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/tile"
)

// runFullyFused executes the paper's new parallel four-index transform:
// loop l is fused across all four contractions with tile width TileL
// (Section 7.1, Listing 8), so only O(n^3 * Tl) slabs of A and the
// intermediates ever exist, plus the resident output C. By Theorem 6.2
// this runs the largest possible problem for a given aggregate memory
// without disk I/O or recomputation of O-intermediates.
//
// With inner = true the inner four-index transform additionally fuses
// op12 and op34 (Section 7.2, Listing 10), eliminating the O1 and O3
// slabs' global traffic and minimising communication volume; AlphaPar
// splits each k work unit over alpha ranges (Section 7.3) at the price
// of replicated A reads.
func runFullyFused(opt Options, inner bool) (*Result, error) {
	scheme := FullyFused
	if inner {
		scheme = FullyFusedInner
	}
	c, err := newRunCtx(opt)
	if err != nil {
		return nil, err
	}
	defer c.beginRoot(scheme)()
	g4 := c.grids4()

	cT, err := c.rt.CreateTiledSparse("C", g4, [][2]int{{0, 1}, {2, 3}}, opt.Policy, c.cSparsity())
	if err != nil {
		return nil, oomWrap(scheme, err)
	}

	alphaPar := opt.AlphaPar
	if alphaPar > c.nt {
		alphaPar = c.nt
	}
	lPar := opt.LPar
	if !inner {
		lPar = 1 // nested l tiling is implemented on the Listing 10 path
	}
	if lPar > c.gl.NumTiles() {
		lPar = c.gl.NumTiles()
	}

	// Resume from the last completed l slab if a prior attempt of this
	// schedule checkpointed one. Progress is an element offset into l so
	// the record stays valid across TileL changes only when a tile
	// boundary still lands there; otherwise it is ignored and the slab
	// loop restarts from zero (correct either way: C is restored only on
	// an aligned hit).
	startTile := 0
	ckptKey := scheme.String()
	if rec, ok := c.ckptResume(ckptKey); ok {
		if t, aligned := tileStartingAt(c.gl, rec.Progress); aligned {
			cT.RestoreTiles(rec.State["C"])
			startTile = t
			c.ckptRestore(rec, fmt.Sprintf("l-slab %d", t))
		}
	}

	for tlo := startTile; tlo < c.gl.NumTiles(); tlo += lPar {
		// Cancellation boundary: every slab before tlo is checkpointed,
		// so stopping here loses no completed work.
		if err := c.canceled(); err != nil {
			return nil, err
		}
		batch := min(lPar, c.gl.NumTiles()-tlo)
		if c.rt.Tracing() {
			// Guarded so the disabled path never pays the Sprintf.
			c.rt.TraceMark(fmt.Sprintf("l-slab %d/%d", tlo, c.gl.NumTiles()))
		}

		// Fusing l breaks the (k, l) symmetry: the A slabs keep only
		// the (i, j) pair symmetry and integrals are regenerated per
		// slab (Section 7.4's symmetry-breaking cost). With lPar > 1
		// several l slabs are in flight together — Section 7.3's
		// "nested tiling of l" alternative — multiplying slab memory
		// and parallelism alike.
		aTs := make([]*ga.TiledArray, batch)
		lOffs := make([]int, batch)
		widths := make([]int, batch)
		slabGridsAll := make([][]tile.Grid, batch)
		c.rt.BeginPhase("generate-A-slab")
		for i := 0; i < batch; i++ {
			lOff, lHi := c.gl.Bounds(tlo + i)
			lOffs[i] = lOff
			widths[i] = lHi - lOff
			slabGridsAll[i] = []tile.Grid{c.g, c.g, c.g, tile.NewGrid(widths[i], widths[i])}
			aT, err := c.rt.CreateTiled("Al", slabGridsAll[i], [][2]int{{0, 1}}, opt.Policy)
			if err != nil {
				return nil, oomWrap(scheme, err)
			}
			aTs[i] = aT
		}
		if err := c.generateABatch(aTs, lOffs); err != nil {
			return nil, err
		}

		if inner {
			if err := c.innerSlabs(aTs, cT, slabGridsAll, widths, lOffs, alphaPar); err != nil {
				return nil, err
			}
		} else {
			if err := c.plainSlab(aTs[0], cT, slabGridsAll[0], widths[0], lOffs[0]); err != nil {
				return nil, err
			}
		}
		for _, aT := range aTs {
			c.rt.DestroyTiled(aT)
		}
		if c.ckpt() != nil {
			// All of C's partial sums through l < done are in place;
			// a restart re-enters the loop at the next slab.
			done := lOffs[batch-1] + widths[batch-1]
			c.ckptSave(faults.Record{
				Scheme:   ckptKey,
				Progress: done,
				Words:    cT.Bytes() / 8,
				State:    map[string][]float64{"C": cT.SnapshotTiles()},
			})
		}
	}
	c.ckptDrop(ckptKey)

	packed := c.extractC(cT)
	c.rt.DestroyTiled(cT)
	return c.result(scheme, scheme, packed), nil
}

// innerSlabs runs the Listing 10 inner transform for a batch of l slabs
// processed concurrently: op12 fused (work units (slab, tk, alpha-chunk))
// producing the O2 slabs, then op34 fused (work units (slab, ta, tb))
// accumulating into C. A batch of one is the plain Listing 10 schedule.
func (c *runCtx) innerSlabs(aTs []*ga.TiledArray, cT *ga.TiledArray, slabGridsAll [][]tile.Grid, widths, lOffs []int, alphaPar int) error {
	batch := len(aTs)
	c.rt.BeginPhase("op12-fused")
	o2Ts := make([]*ga.TiledArray, batch)
	for i := 0; i < batch; i++ {
		o2T, err := c.rt.CreateTiled("O2l", slabGridsAll[i], [][2]int{{0, 1}}, c.opt.Policy)
		if err != nil {
			return oomWrap(FullyFusedInner, err)
		}
		o2Ts[i] = o2T
	}
	if err := c.rt.Parallel(func(p *ga.Proc) {
		for i := 0; i < batch; i++ {
			for tk := 0; tk < c.nt; tk++ {
				for chunk := 0; chunk < alphaPar; chunk++ {
					ta0 := chunk * c.nt / alphaPar
					ta1 := (chunk + 1) * c.nt / alphaPar
					if ta0 >= ta1 {
						continue
					}
					if workOwner(p.Procs(), 112, i, tk, chunk) != p.ID() {
						continue
					}
					c.op12Unit(p, aTs[i], o2Ts[i], tk, 0, widths[i], ta0, ta1)
				}
			}
		}
	}); err != nil {
		return err
	}
	for _, o2T := range o2Ts {
		o2T.Freeze() // op34 only reads the completed O2 slabs
	}
	c.rt.BeginPhase("op34-fused")
	if err := c.rt.Parallel(func(p *ga.Proc) {
		for i := 0; i < batch; i++ {
			for ta := 0; ta < c.nt; ta++ {
				for tb := 0; tb <= ta; tb++ {
					if workOwner(p.Procs(), 134, i, ta, tb) != p.ID() {
						continue
					}
					c.op34Unit(p, o2Ts[i], cT, ta, tb, widths[i], lOffs[i], true)
				}
			}
		}
	}); err != nil {
		return err
	}
	for _, o2T := range o2Ts {
		c.rt.DestroyTiled(o2T)
	}
	return nil
}

// plainSlab runs the Listing 8 inner transform for one l slab: four
// separate contractions over slab tensors, the last accumulating into C.
func (c *runCtx) plainSlab(aT, cT *ga.TiledArray, slabGrids []tile.Grid, wl, lOff int) error {
	// op1: O1[a, j, k, lslab] = sum_i A[ij, k, lslab] B[a, i].
	c.rt.BeginPhase("op1")
	o1T, err := c.rt.CreateTiled("O1l", slabGrids, nil, c.opt.Policy)
	if err != nil {
		return oomWrap(FullyFused, err)
	}
	if err := c.rt.Parallel(func(p *ga.Proc) {
		for tj := 0; tj < c.nt; tj++ {
			for tk := 0; tk < c.nt; tk++ {
				if workOwner(p.Procs(), 81, tj, tk) != p.ID() {
					continue
				}
				c.op1Slab(p, aT, o1T, tj, tk, wl)
			}
		}
	}); err != nil {
		return err
	}
	o1T.Freeze()

	// op2: O2[a>=b, k, lslab] = sum_j O1[a, j, k, lslab] B[b, j].
	c.rt.BeginPhase("op2")
	o2T, err := c.rt.CreateTiled("O2l", slabGrids, [][2]int{{0, 1}}, c.opt.Policy)
	if err != nil {
		return oomWrap(FullyFused, err)
	}
	if err := c.rt.Parallel(func(p *ga.Proc) {
		for ta := 0; ta < c.nt; ta++ {
			for tk := 0; tk < c.nt; tk++ {
				if workOwner(p.Procs(), 82, ta, tk) != p.ID() {
					continue
				}
				c.op2Slab(p, o1T, o2T, ta, tk, wl)
			}
		}
	}); err != nil {
		return err
	}
	c.rt.DestroyTiled(o1T)
	o2T.Freeze()

	// op3: O3[a>=b, c, lslab] = sum_k O2[ab, k, lslab] B[c, k].
	c.rt.BeginPhase("op3")
	o3T, err := c.rt.CreateTiled("O3l", slabGrids, [][2]int{{0, 1}}, c.opt.Policy)
	if err != nil {
		return oomWrap(FullyFused, err)
	}
	if err := c.rt.Parallel(func(p *ga.Proc) {
		for ta := 0; ta < c.nt; ta++ {
			for tb := 0; tb <= ta; tb++ {
				if workOwner(p.Procs(), 83, ta, tb) != p.ID() {
					continue
				}
				c.op3Slab(p, o2T, o3T, ta, tb, wl, 0)
			}
		}
	}); err != nil {
		return err
	}
	c.rt.DestroyTiled(o2T)
	o3T.Freeze()

	// op4: C[a>=b, c>=d] += O3[ab, c, lslab] B[d, lOff+l].
	c.rt.BeginPhase("op4")
	if err := c.rt.Parallel(func(p *ga.Proc) {
		for ta := 0; ta < c.nt; ta++ {
			for tb := 0; tb <= ta; tb++ {
				if workOwner(p.Procs(), 84, ta, tb) != p.ID() {
					continue
				}
				c.op4Slab(p, o3T, cT, ta, tb, wl, lOff)
			}
		}
	}); err != nil {
		return err
	}
	c.rt.DestroyTiled(o3T)
	return nil
}

// op1Slab mirrors op1Unit for a single-l-slab A tensor.
func (c *runCtx) op1Slab(p *ga.Proc, aT, o1T *ga.TiledArray, tj, tk, wl int) {
	wj, wk := c.g.Width(tj), c.g.Width(tk)
	rest := wj * wk * wl

	abig := c.alloc(p, int64(c.n)*int64(rest))
	tileW := c.g.T * rest
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(ti int) *ga.Handle {
		buf := sl(tmp, (ti%2)*tileW)
		if ti >= tj {
			return p.NbGetT(aT, buf, ti, tj, tk, 0)
		}
		return p.NbGetT(aT, buf, tj, ti, tk, 0)
	}, func(ti int) {
		if !c.exec {
			return
		}
		row, _ := c.g.Bounds(ti)
		wi := c.g.Width(ti)
		got := tmp.Data[(ti%2)*tileW:]
		if ti >= tj { // tile laid out (i, j, k, l): rows i, cols rest
			copy(abig.Data[row*rest:(row+wi)*rest], got[:wi*rest])
		} else { // tile laid out (j, i, k, l): transpose (i, j)
			wklw := wk * wl
			for j := 0; j < wj; j++ {
				for i := 0; i < wi; i++ {
					src := got[(j*wi+i)*wklw : (j*wi+i+1)*wklw]
					dst := abig.Data[((row+i)*wj+j)*wklw : ((row+i)*wj+j+1)*wklw]
					copy(dst, src)
				}
			}
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(c.g.T)*int64(rest))
	wq := newNbQueue(p)
	for ta := 0; ta < c.nt; ta++ {
		wa := c.fillBRow(p, bbuf.Data, ta)
		if c.exec {
			zero(out.Data[:wa*rest])
		}
		c.gemm(p, false, false, wa, rest, c.n, bbuf.Data, c.n, abig.Data, rest, out.Data, rest)
		wq.push(p.NbPutT(o1T, out.Data, ta, tj, tk, 0))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(abig)
}

// op2Slab mirrors op2Unit for slab tensors.
func (c *runCtx) op2Slab(p *ga.Proc, o1T, o2T *ga.TiledArray, ta, tk, wl int) {
	wa, wk := c.g.Width(ta), c.g.Width(tk)
	wkl := wk * wl

	o1big := c.alloc(p, int64(wa)*int64(c.n)*int64(wkl))
	tileW := wa * c.g.T * wkl
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(tj int) *ga.Handle {
		return p.NbGetT(o1T, sl(tmp, (tj%2)*tileW), ta, tj, tk, 0)
	}, func(tj int) {
		if !c.exec {
			return
		}
		col, _ := c.g.Bounds(tj)
		wj := c.g.Width(tj)
		got := tmp.Data[(tj%2)*tileW:]
		for a := 0; a < wa; a++ {
			src := got[a*wj*wkl : (a+1)*wj*wkl]
			dst := o1big.Data[(a*c.n+col)*wkl : (a*c.n+col+wj)*wkl]
			copy(dst, src)
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(wa)*int64(c.g.T)*int64(wkl))
	wq := newNbQueue(p)
	for tb := 0; tb <= ta; tb++ {
		wb := c.fillBRow(p, bbuf.Data, tb)
		if c.exec {
			zero(out.Data[:wa*wb*wkl])
			for a := 0; a < wa; a++ {
				c.gemm(p, false, false, wb, wkl, c.n,
					bbuf.Data, c.n,
					o1big.Data[a*c.n*wkl:], wkl,
					out.Data[a*wb*wkl:], wkl)
			}
		} else {
			p.ComputeEff(int64(wa)*blas.GemmFlops(wb, wkl, c.n), c.eff)
		}
		wq.push(p.NbPutT(o2T, out.Data, ta, tb, tk, 0))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o1big)
}

// op3Slab computes O3[(ta,tb), c, lslab] from the O2 slab, writing the
// result tiles at l coordinate lCoord of o3T (0 for slab tensors; the
// outer l-tile index when o3T spans the full l range, as in op123/4).
func (c *runCtx) op3Slab(p *ga.Proc, o2T, o3T *ga.TiledArray, ta, tb, wl, lCoord int) {
	wa, wb := c.g.Width(ta), c.g.Width(tb)
	wab := wa * wb

	o2big := c.alloc(p, int64(wab)*int64(c.n)*int64(wl))
	tileW := wab * c.g.T * wl
	tmp := c.alloc(p, 2*int64(tileW))
	prefetch2(p, c.nt, func(tk int) *ga.Handle {
		return p.NbGetT(o2T, sl(tmp, (tk%2)*tileW), ta, tb, tk, 0)
	}, func(tk int) {
		if !c.exec {
			return
		}
		row, _ := c.g.Bounds(tk)
		wk := c.g.Width(tk)
		got := tmp.Data[(tk%2)*tileW:]
		for ab := 0; ab < wab; ab++ {
			src := got[ab*wk*wl : (ab+1)*wk*wl]
			dst := o2big.Data[(ab*c.n+row)*wl : (ab*c.n+row+wk)*wl]
			copy(dst, src)
		}
	})
	p.FreeLocal(tmp)

	bbuf := c.alloc(p, int64(c.g.T)*int64(c.n))
	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(wl))
	wq := newNbQueue(p)
	for tc := 0; tc < c.nt; tc++ {
		wc := c.fillBRow(p, bbuf.Data, tc)
		if c.exec {
			zero(out.Data[:wab*wc*wl])
			for ab := 0; ab < wab; ab++ {
				c.gemm(p, false, false, wc, wl, c.n,
					bbuf.Data, c.n,
					o2big.Data[ab*c.n*wl:], wl,
					out.Data[ab*wc*wl:], wl)
			}
		} else {
			p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wl, c.n), c.eff)
		}
		wq.push(p.NbPutT(o3T, out.Data, ta, tb, tc, lCoord))
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(bbuf)
	p.FreeLocal(o2big)
}

// op4Slab accumulates this slab's contribution to C.
func (c *runCtx) op4Slab(p *ga.Proc, o3T, cT *ga.TiledArray, ta, tb, wl, lOff int) {
	if c.nt == 0 {
		return // empty grid: nothing to fetch, and the tc loop below assumes one trip
	}
	wa, wb := c.g.Width(ta), c.g.Width(tb)
	wab := wa * wb

	// The O3 slab tile for tc is already laid out [(a,b)][c][l] with row
	// stride wl — exactly the GEMM operand layout — so no packed plane is
	// needed: double-buffer the per-tc tiles and feed GEMM from the tile
	// buffer directly, with the gets for tc+1 in flight during tc's GEMMs.
	tileW := wab * c.g.T * wl
	tmp := c.alloc(p, 2*int64(tileW))
	issue := func(tc int) *ga.Handle {
		return p.NbGetT(o3T, sl(tmp, (tc%2)*tileW), ta, tb, tc, 0)
	}
	h := issue(0)

	// Coefficient rows for the d index; computing them here overlaps
	// tile 0's in-flight get.
	ball := c.alloc(p, int64(c.n)*int64(wl))
	p.Compute(int64(coeffFlops) * int64(c.n) * int64(wl))
	if c.exec {
		for d := 0; d < c.n; d++ {
			for l := 0; l < wl; l++ {
				ball.Data[d*wl+l] = c.opt.Spec.ComputeB(d, lOff+l)
			}
		}
	}

	out := c.alloc(p, int64(wab)*int64(c.g.T)*int64(c.g.T))
	wq := newNbQueue(p)
	// Bottom-tested like prefetch2: tile 0's get is already in flight
	// (issued above so it overlaps the coefficient compute), and every
	// path from an issue reaches its Wait.
	for tc := 0; ; tc++ {
		var next *ga.Handle
		if tc+1 < c.nt {
			next = issue(tc + 1)
		}
		h.Wait(p)
		wc := c.g.Width(tc)
		got := (tc % 2) * tileW
		for td := 0; td <= tc; td++ {
			if !cT.Stored(ta, tb, tc, td) {
				continue // spatial symmetry forbids this block
			}
			d0, _ := c.g.Bounds(td)
			wd := c.g.Width(td)
			if c.exec {
				zero(out.Data[:wab*wc*wd])
				for ab := 0; ab < wab; ab++ {
					c.gemm(p, false, true, wc, wd, wl,
						sl(tmp, got+ab*wc*wl), wl,
						ball.Data[d0*wl:], wl,
						out.Data[ab*wc*wd:], wd)
				}
			} else {
				p.ComputeEff(int64(wab)*blas.GemmFlops(wc, wd, wl), c.eff)
			}
			wq.push(p.NbAccT(cT, 1, out.Data, ta, tb, tc, td))
		}
		h = next
		if tc+1 >= c.nt {
			break
		}
	}
	wq.drain()
	p.FreeLocal(out)
	p.FreeLocal(ball)
	p.FreeLocal(tmp)
}
