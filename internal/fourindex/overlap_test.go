package fourindex

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
)

// TestOverlapBitwiseIdentical is the PR's core execute-mode contract:
// every schedule produces a C bitwise identical with the nonblocking
// path on and off. The double-buffered gets read the same values (tiles
// are frozen or single-writer across the prefetch window) and deferred
// writes land in per-process program order, so not a single bit may
// move.
func TestOverlapBitwiseIdentical(t *testing.T) {
	sp := chem.MustSpec(12, 2, 11)
	base := Options{Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 4, TileL: 3}
	for _, scheme := range append(append([]Scheme{}, allSchemes...), NWChemFused, Hybrid) {
		blocking, err := Run(scheme, base)
		if err != nil {
			t.Fatalf("%v overlap off: %v", scheme, err)
		}
		o := base
		o.Overlap = true
		overlapped, err := Run(scheme, o)
		if err != nil {
			t.Fatalf("%v overlap on: %v", scheme, err)
		}
		bitwiseEqual(t, scheme.String()+" overlap", overlapped.C.Data(), blocking.C.Data())
	}
}

// TestOverlapReducesSimSeconds pins the cost-model win: with a machine
// model attached, the nonblocking pipeline must strictly reduce
// simulated wall time for every schedule (the exposed part of each
// prefetched transfer shrinks, everything else is unchanged), and the
// exposed + overlapped split must cover at least the blocking run's
// total transfer time — overlap hides communication, it never deletes
// it. The sum may exceed the blocking total: a wait on a transfer still
// queued behind earlier ones on the process's comm channel is charged
// the queueing delay too.
func TestOverlapReducesSimSeconds(t *testing.T) {
	const procs = 16
	run := mustRun(t, procs)
	sp := chem.MustSpec(128, 1, 3)
	base := Options{Spec: sp, Procs: procs, Mode: ga.Cost, Run: &run, TileN: 16}
	for _, scheme := range append(append([]Scheme{}, allSchemes...), NWChemFused, Hybrid) {
		blocking, err := Run(scheme, base)
		if err != nil {
			t.Fatalf("%v overlap off: %v", scheme, err)
		}
		o := base
		o.Overlap = true
		overlapped, err := Run(scheme, o)
		if err != nil {
			t.Fatalf("%v overlap on: %v", scheme, err)
		}
		if overlapped.ElapsedSeconds >= blocking.ElapsedSeconds {
			t.Errorf("%v: overlap did not reduce simulated time (%.4f s vs %.4f s)",
				scheme, overlapped.ElapsedSeconds, blocking.ElapsedSeconds)
		}
		if overlapped.OverlapCommSeconds <= 0 {
			t.Errorf("%v: no transfer time hidden (%v s)", scheme, overlapped.OverlapCommSeconds)
		}
		if blocking.OverlapCommSeconds != 0 {
			t.Errorf("%v: blocking run reports %v s hidden, want 0", scheme, blocking.OverlapCommSeconds)
		}
		if overlapped.ExposedCommSeconds >= blocking.ExposedCommSeconds {
			t.Errorf("%v: overlap did not reduce exposed transfer time (%v s vs %v s)",
				scheme, overlapped.ExposedCommSeconds, blocking.ExposedCommSeconds)
		}
		total := overlapped.ExposedCommSeconds + overlapped.OverlapCommSeconds
		if want := blocking.ExposedCommSeconds; total < want*(1-1e-9) {
			t.Errorf("%v: exposed+overlapped = %v s, below the blocking total %v s (communication deleted)",
				scheme, total, want)
		}
	}
}

// TestOverlapEfficiencyMonotone checks the e knob orders runs sensibly:
// lower efficiency hides less and exposes more, approaching the
// blocking sum rule as e -> 0.
func TestOverlapEfficiencyMonotone(t *testing.T) {
	const procs = 8
	run := mustRun(t, procs)
	sp := chem.MustSpec(96, 1, 3)
	base := Options{Spec: sp, Procs: procs, Mode: ga.Cost, Run: &run, TileN: 16, Overlap: true}
	var prevElapsed, prevExposed float64
	for i, eff := range []float64{1, 0.5, 0.1} {
		o := base
		o.OverlapEfficiency = eff
		res, err := Run(FullyFused, o)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if res.ElapsedSeconds < prevElapsed {
				t.Errorf("eff %v: elapsed %v s fell below the higher-efficiency run's %v s", eff, res.ElapsedSeconds, prevElapsed)
			}
			if res.ExposedCommSeconds <= prevExposed {
				t.Errorf("eff %v: exposed %v s not above the higher-efficiency run's %v s", eff, res.ExposedCommSeconds, prevExposed)
			}
		}
		prevElapsed, prevExposed = res.ElapsedSeconds, res.ExposedCommSeconds
	}
}

// TestChaosOverlapDeterministic extends the chaos gate to the
// nonblocking path: faults fire at Wait in per-process program order,
// so a seeded plan must replay identically — every completed run
// bitwise matches the fault-free overlap run (itself bitwise equal to
// blocking), and failures carry the typed injected error.
func TestChaosOverlapDeterministic(t *testing.T) {
	sp := chem.MustSpec(8, 1, 5)
	opt := Options{Spec: sp, Procs: 3, Mode: ga.Execute, TileN: 3, TileL: 2, Overlap: true}
	seeds := uint64(30)
	if testing.Short() {
		seeds = 6
	}
	for _, scheme := range []Scheme{Unfused, FullyFused, FullyFusedInner, NWChemFused, Hybrid} {
		clean, err := Run(scheme, opt)
		if err != nil {
			t.Fatalf("%v fault-free: %v", scheme, err)
		}
		want := clean.C.Data()
		completed := 0
		for seed := uint64(1); seed <= seeds; seed++ {
			o := opt
			o.Faults = &faults.Injection{
				Plan:       faults.RandomPlan(seed, 0.1, o.Procs),
				Checkpoint: faults.NewMemCheckpoint(),
			}
			res, err := Run(scheme, o)
			if err != nil {
				if !faults.Injected(err) {
					t.Errorf("%v seed %d: failed with a non-injected error: %v", scheme, seed, err)
				}
				continue
			}
			completed++
			bitwiseEqual(t, scheme.String()+" overlap", res.C.Data(), want)
		}
		if completed == 0 {
			t.Errorf("%v: no seed out of %d completed under a 10%% fault rate with overlap on", scheme, seeds)
		}
	}
}
