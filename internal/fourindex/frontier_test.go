package fourindex

import (
	"bytes"
	"testing"

	"fourindex/internal/lb"
)

func TestRunFrontierDeterministicBytes(t *testing.T) {
	problems := []FrontierProblem{{Name: "tiny", N: 64, Sym: 1}}
	var a, b bytes.Buffer
	if err := RunFrontier(problems).Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := RunFrontier(problems).Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical frontier runs encoded differently")
	}
	dec, err := DecodeFrontier(&a)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SchemaVersion != FrontierSchemaVersion {
		t.Fatalf("schema version %d, want %d", dec.SchemaVersion, FrontierSchemaVersion)
	}
}

// TestFrontierKneesMatchClosedForm checks that every schedule's detected
// flattening knee coincides with the paper's closed-form threshold for
// its fusion configuration, because the grid contains the thresholds as
// exact points.
func TestFrontierKneesMatchClosedForm(t *testing.T) {
	rep := RunFrontier([]FrontierProblem{{Name: "p", N: 256, Sym: 1}})
	pf := rep.Problems[0]
	if len(pf.Schedules) != 6 {
		t.Fatalf("expected 6 schedules on the frontier, got %d", len(pf.Schedules))
	}
	for _, sf := range pf.Schedules {
		c, err := lb.ConfigByName(sf.Config)
		if err != nil {
			t.Fatal(err)
		}
		want := lb.ConfigFlatThreshold(c, pf.N, pf.Sym)
		if sf.FlatAtS != want {
			t.Errorf("%s (%s): flat at S=%d, closed form says %d", sf.Scheme, sf.Config, sf.FlatAtS, want)
		}
		if sf.FeasibleAtS != sf.MinMemoryElements {
			t.Errorf("%s: feasible at S=%d but memory model needs %d (edge must be a grid point)",
				sf.Scheme, sf.FeasibleAtS, sf.MinMemoryElements)
		}
		// Bound curve monotone non-increasing over the emitted points.
		for i := 1; i < len(sf.Points); i++ {
			if sf.Points[i].BoundElements > sf.Points[i-1].BoundElements*(1+1e-12) {
				t.Errorf("%s: bound rises at S=%d", sf.Scheme, sf.Points[i].S)
			}
		}
	}
}

func TestTuneFrontierRequiresModel(t *testing.T) {
	opt := Options{}
	if _, err := TuneFrontier(opt, TuneSpace{}, 0); err == nil {
		t.Error("TuneFrontier without a machine model should error")
	}
}

// TestTuneFrontierNeverWorseThanTune is the gate in miniature: on the
// same space, the frontier tuner's pick must be at least as fast as the
// exhaustive sweep's best, while simulating no more configurations.
func TestTuneFrontierNeverWorseThanTune(t *testing.T) {
	for _, tc := range []struct {
		name string
		cap  int64
	}{
		{"ample", 0},
		{"pressured", lb.MemoryUnfused(48, 1) * 8 * 7 / 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := tuneOpts(t, 48, 1, 28, tc.cap)
			space := TuneSpace{
				TileNs: []int{6, 12}, TileLs: []int{2, 6, 12},
				AlphaPars: []int{1, 2}, LPars: []int{1},
				Overlaps: []bool{false, true},
			}
			pts, err := Tune(opt, space)
			if err != nil {
				t.Fatal(err)
			}
			bruteBest, _ := Best(pts)
			ft, err := TuneFrontier(opt, space, 0)
			if err != nil {
				t.Fatal(err)
			}
			if ft.Pick.Seconds > bruteBest.Seconds*(1+1e-9) {
				t.Errorf("frontier pick %.4fs slower than brute-force best %.4fs (%+v vs %+v)",
					ft.Pick.Seconds, bruteBest.Seconds, ft.Pick, bruteBest)
			}
			if ft.Simulated > ft.FullSpace {
				t.Errorf("simulated %d > full space %d", ft.Simulated, ft.FullSpace)
			}
			if ft.CapacityElements <= 0 {
				t.Error("planned capacity not recorded")
			}
			// Every shortlisted candidate must be feasible at the planned
			// capacity; every analysed candidate carries a positive floor.
			for _, c := range ft.Candidates {
				if c.Shortlisted && !c.Feasible {
					t.Errorf("%v shortlisted but infeasible", c.Scheme)
				}
				if c.LowerBoundSeconds <= 0 {
					t.Errorf("%v has no lower-bound time", c.Scheme)
				}
			}
		})
	}
}

// TestTuneFrontierPrunes pins the point of the exercise: when the
// capacity makes whole schedule families infeasible, the frontier walk
// prunes them without simulating a single configuration, so the
// shortlist runs strictly fewer configurations than brute force.
func TestTuneFrontierPrunes(t *testing.T) {
	n, s := 48, 1
	// Capacity just above the fully fused feasibility edge: the memory
	// models say every other family cannot fit, so only the two fully
	// fused schedules are simulated.
	cap := (lb.MemoryFused1234Inner(n, s, 1) + lb.MemoryFused1234(n, s, 1)) * 8
	opt := tuneOpts(t, n, s, 28, cap)
	space := TuneSpace{
		Schemes: []Scheme{Unfused, Fused1234Pair, NWChemFused, Fused123, FullyFused, FullyFusedInner},
		TileNs:  []int{6, 12}, TileLs: []int{2, 6, 12},
		AlphaPars: []int{1}, LPars: []int{1},
	}
	ft, err := TuneFrontier(opt, space, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Simulated >= ft.FullSpace {
		t.Errorf("no pruning: simulated %d of %d", ft.Simulated, ft.FullSpace)
	}
	for _, c := range ft.Candidates {
		if c.Shortlisted && !c.Feasible {
			t.Errorf("%v shortlisted despite not fitting the capacity", c.Scheme)
		}
		if !c.Feasible && (c.Scheme == FullyFused || c.Scheme == FullyFusedInner) {
			t.Errorf("%v should fit a capacity above its feasibility edge", c.Scheme)
		}
		if c.Feasible && c.Scheme == Unfused {
			t.Error("unfused should not fit the fused-only capacity")
		}
	}
}

// TestSortTunePointsDeterministicTieBreak feeds equal-Seconds points in
// two different emission orders and expects identical sorted output —
// the satellite fix for the old emission-order tie.
func TestSortTunePointsDeterministicTieBreak(t *testing.T) {
	mk := func(scheme Scheme, tn, tl int, peak int64) TunePoint {
		return TunePoint{Scheme: scheme, TileN: tn, TileL: tl, AlphaPar: 1, LPar: 1, Seconds: 1.0, PeakBytes: peak}
	}
	a := []TunePoint{mk(FullyFusedInner, 12, 6, 100), mk(Unfused, 6, 0, 100), mk(Unfused, 6, 0, 50)}
	b := []TunePoint{a[2], a[0], a[1]}
	sortTunePoints(a)
	sortTunePoints(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tie-break depends on emission order: %+v vs %+v at %d", a[i], b[i], i)
		}
	}
	if a[0].PeakBytes != 50 {
		t.Error("equal-time points must order by PeakBytes first")
	}
	if a[1].Scheme != Unfused {
		t.Error("equal-time equal-peak points must order by Scheme")
	}
}
