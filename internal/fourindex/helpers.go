package fourindex

import (
	"fmt"

	"fourindex/internal/blas"
	"fourindex/internal/faults"
	"fourindex/internal/ga"
	"fourindex/internal/sym"
	"fourindex/internal/tile"
)

// runCtx carries the shared state of one transform run.
type runCtx struct {
	opt  Options
	n    int
	g    tile.Grid // orbital-dimension data-tile grid
	nt   int       // tiles per orbital dimension
	gl   tile.Grid // fused outer-loop grid over l
	rt   *ga.Runtime
	exec bool
	// strassen routes execute-mode GEMMs through blas.DgemmStrassen
	// (Options.Strassen).
	strassen bool
	// eff is the contraction-kernel efficiency used for simulated
	// time (1.0 for this paper's batched-GEMM implementations; lower
	// for the NWChem baseline whose Listing 4 structure issues one
	// DGEMM per row).
	eff float64
}

func newRunCtx(opt Options) (*runCtx, error) {
	rt, err := ga.NewRuntime(ga.Config{
		Procs:             opt.Procs,
		Mode:              opt.Mode,
		Run:               opt.Run,
		GlobalMemBytes:    opt.GlobalMemBytes,
		LocalMemBytes:     opt.LocalMemBytes,
		Strict:            opt.Strict,
		AllowSpill:        opt.AllowSpill,
		Overlap:           opt.Overlap,
		OverlapEfficiency: opt.OverlapEfficiency,
		Tracer:            opt.Trace,
		Faults:            opt.Faults.ActivePlan(),
	})
	if err != nil {
		return nil, err
	}
	g := tile.NewGrid(opt.Spec.N, opt.TileN)
	return &runCtx{
		opt:  opt,
		n:    opt.Spec.N,
		g:    g,
		nt:   g.NumTiles(),
		gl:   tile.NewGrid(opt.Spec.N, opt.TileL),
		rt:   rt,
		exec: opt.Mode == ga.Execute,
		// strassen only changes which kernel computes; cost-mode runs
		// never reach the kernel, so gate it on exec for clarity.
		strassen: opt.Strassen && opt.Mode == ga.Execute,
		eff:      1,
	}, nil
}

// grids4 returns four copies of the orbital grid.
func (c *runCtx) grids4() []tile.Grid { return []tile.Grid{c.g, c.g, c.g, c.g} }

// beginRoot opens the schedule's root trace span (depth 0, named after
// the scheme) and returns the closer, meant to be deferred: it first
// closes any phase span still open (error paths return mid-phase), then
// the root span, so the tracer's span stack stays balanced even when a
// hybrid driver runs several schedules against one tracer.
func (c *runCtx) beginRoot(scheme Scheme) func() {
	c.rt.TraceSpan(scheme.String())
	return func() {
		c.rt.EndPhase()
		c.rt.TraceSpanEnd()
	}
}

// workOwner deterministically assigns a work unit identified by coords to
// a process (FNV-1a over the coordinates).
func workOwner(procs int, coords ...int) int {
	h := uint64(1469598103934665603)
	for _, c := range coords {
		h ^= uint64(uint32(c))
		h *= 1099511628211
	}
	return int(h % uint64(procs))
}

// alloc returns a local buffer of the given size, nil-backed in Cost
// mode. FreeLocal must be called with the returned Buffer.
func (c *runCtx) alloc(p *ga.Proc, words int64) ga.Buffer {
	return p.MustAllocLocal(words)
}

// fillBRow fills buf (row-major wa x n) with B[a, i] for a in tile ta and
// ALL i, charging generation flops.
func (c *runCtx) fillBRow(p *ga.Proc, buf []float64, ta int) (wa int) {
	a0, a1 := c.g.Bounds(ta)
	wa = a1 - a0
	p.Compute(int64(coeffFlops) * int64(wa) * int64(c.n))
	if !c.exec {
		return wa
	}
	for a := a0; a < a1; a++ {
		for i := 0; i < c.n; i++ {
			buf[(a-a0)*c.n+i] = c.opt.Spec.ComputeB(a, i)
		}
	}
	return wa
}

// generateA fills a distributed A tensor (dims i,j,k,l; symmetric pairs
// (0,1) and (2,3); the l dimension may be a slab grid) with on-the-fly
// integrals: each process fills and Puts the tiles it owns. lOff shifts
// the l tile indices into absolute orbital indices (used by per-slab A
// tensors whose l grid covers [lOff, lOff+wl)). The generated tensor is
// frozen: every schedule only reads A after generation, so subsequent
// GetT traffic takes the lock-free read path.
func (c *runCtx) generateA(aT *ga.TiledArray, lOff int) error {
	err := c.rt.Parallel(func(p *ga.Proc) {
		var coordsCopy [4]int
		wq := newNbQueue(p)
		aT.ForEachTile(func(coords []int) {
			copy(coordsCopy[:], coords)
			if aT.Owner(coordsCopy[:]...) != p.ID() {
				return
			}
			words := int64(aT.TileWords(coordsCopy[:]))
			buf := c.alloc(p, words)
			p.Compute(integralFlops * words)
			if c.exec {
				c.fillATile(aT, buf.Data, coordsCopy[:], lOff)
			}
			// NbPutT stages the payload at issue, so buf is free to go
			// while the write is still in flight.
			wq.push(p.NbPutT(aT, buf.Data, coordsCopy[:]...))
			p.FreeLocal(buf)
		})
		wq.drain()
	})
	if err != nil {
		return err
	}
	aT.Freeze()
	return nil
}

// generateABatch fills several slab tensors in one parallel region so
// that integral generation for concurrently processed l slabs overlaps.
// Like generateA it freezes the generated tensors.
func (c *runCtx) generateABatch(aTs []*ga.TiledArray, lOffs []int) error {
	err := c.rt.Parallel(func(p *ga.Proc) {
		var coordsCopy [4]int
		wq := newNbQueue(p)
		for i, aT := range aTs {
			lOff := lOffs[i]
			aT.ForEachTile(func(coords []int) {
				copy(coordsCopy[:], coords)
				if aT.Owner(coordsCopy[:]...) != p.ID() {
					return
				}
				words := int64(aT.TileWords(coordsCopy[:]))
				buf := c.alloc(p, words)
				p.Compute(integralFlops * words)
				if c.exec {
					c.fillATile(aT, buf.Data, coordsCopy[:], lOff)
				}
				wq.push(p.NbPutT(aT, buf.Data, coordsCopy[:]...))
				p.FreeLocal(buf)
			})
		}
		wq.drain()
	})
	if err != nil {
		return err
	}
	for _, aT := range aTs {
		aT.Freeze()
	}
	return nil
}

// fillATile evaluates integrals for one tile (Execute mode).
func (c *runCtx) fillATile(aT *ga.TiledArray, buf []float64, coords []int, lOff int) {
	i0, i1 := aT.Grids[0].Bounds(coords[0])
	j0, j1 := aT.Grids[1].Bounds(coords[1])
	k0, k1 := aT.Grids[2].Bounds(coords[2])
	l0, l1 := aT.Grids[3].Bounds(coords[3])
	pos := 0
	for i := i0; i < i1; i++ {
		for j := j0; j < j1; j++ {
			for k := k0; k < k1; k++ {
				for l := l0; l < l1; l++ {
					buf[pos] = c.opt.Spec.ComputeA(i, j, k, lOff+l)
					pos++
				}
			}
		}
	}
}

// extractC reads a distributed C tensor (dims a,b,c,d with symmetric
// pairs (0,1),(2,3)) into a packed container. Execute mode only.
func (c *runCtx) extractC(cT *ga.TiledArray) *sym.PackedC {
	if !c.exec {
		return nil
	}
	out := sym.NewPackedC(c.n)
	buf := make([]float64, c.g.T*c.g.T*c.g.T*c.g.T)
	var cc [4]int
	cT.ForEachTile(func(coords []int) {
		copy(cc[:], coords)
		cT.ReadTileInto(buf, cc[:]...)
		a0, a1 := c.g.Bounds(cc[0])
		b0, b1 := c.g.Bounds(cc[1])
		g0, g1 := c.g.Bounds(cc[2])
		d0, d1 := c.g.Bounds(cc[3])
		wb, wg, wd := b1-b0, g1-g0, d1-d0
		for a := a0; a < a1; a++ {
			for b := b0; b < b1; b++ {
				if b > a {
					continue
				}
				for g := g0; g < g1; g++ {
					for d := d0; d < d1; d++ {
						if d > g {
							continue
						}
						v := buf[(((a-a0)*wb+(b-b0))*wg+(g-g0))*wd+(d-d0)]
						out.Add(v, a, b, g, d)
					}
				}
			}
		}
	})
	return out
}

// result assembles the Result from the runtime's counters.
func (c *runCtx) result(scheme, chosen Scheme, packed *sym.PackedC) *Result {
	return &Result{
		Scheme:             scheme,
		C:                  packed,
		ElapsedSeconds:     c.rt.Elapsed(),
		Totals:             c.rt.Totals(),
		CommVolume:         c.rt.CommVolume(),
		IntraVolume:        c.rt.IntraVolume(),
		DiskVolume:         c.rt.DiskVolume(),
		PeakGlobalBytes:    c.rt.PeakGlobalBytes(),
		ChosenScheme:       chosen,
		Phases:             c.rt.Phases(),
		IdleFraction:       c.rt.IdleFraction(),
		ExposedCommSeconds: c.rt.CommExposedSeconds(),
		OverlapCommSeconds: c.rt.CommOverlapSeconds(),
	}
}

// cSparsity returns the spatial-symmetry tile filter for the output
// tensor C, or nil when the spec carries no spatial symmetry. A tile is
// stored iff some (a, b, c, d) combination of the irreps present in its
// index ranges multiplies to the totally symmetric irrep (XOR zero in the
// abelian Z2^k model). With irrep-blocked orbital ordering this drops a
// fraction ~(1 - 1/s) of C's tiles (Table 1).
func (c *runCtx) cSparsity() func(coords []int) bool {
	sp := c.opt.Spec
	if sp.S <= 1 {
		return nil
	}
	// Irreps present in each orbital tile (blocked ordering makes
	// these short contiguous runs).
	irreps := make([][]int, c.nt)
	for t := 0; t < c.nt; t++ {
		lo, hi := c.g.Bounds(t)
		var set []int
		last := -1
		for p := lo; p < hi; p++ {
			if ir := sp.Irrep(p); ir != last {
				set = append(set, ir)
				last = ir
			}
		}
		irreps[t] = set
	}
	return func(coords []int) bool {
		for _, x := range irreps[coords[0]] {
			for _, y := range irreps[coords[1]] {
				for _, z := range irreps[coords[2]] {
					for _, w := range irreps[coords[3]] {
						if x^y^z^w == 0 {
							return true
						}
					}
				}
			}
		}
		return false
	}
}

// sl offsets into a local buffer, tolerating the nil backing of Cost
// mode (where only shapes matter).
func sl(b ga.Buffer, off int) []float64 {
	if b.Data == nil {
		return nil
	}
	return b.Data[off:]
}

// gemmInto wraps blas.Dgemm for Execute mode and charges flops in both
// modes: out(mxn) += a(mxk) . b(kxn), row-major with explicit strides.
// With Options.Strassen set the multiply goes through the
// Strassen-Winograd path instead; the flop charge stays the classic
// 2mnk in either case so simulated costs are kernel-independent.
func (c *runCtx) gemm(p *ga.Proc, transA, transB bool, m, n, k int, a []float64, lda int, b []float64, ldb int, out []float64, ldc int) {
	p.ComputeEff(blas.GemmFlops(m, n, k), c.eff)
	if !c.exec {
		return
	}
	if c.strassen {
		blas.DgemmStrassen(transA, transB, m, n, k, 1, a, lda, b, ldb, 1, out, ldc)
		return
	}
	blas.Dgemm(transA, transB, m, n, k, 1, a, lda, b, ldb, 1, out, ldc)
}

// Nonblocking pipeline helpers. Every schedule routes its tile traffic
// through these two shapes so the double-buffered discipline is uniform:
// gathers prefetch the next tile before consuming the current one, and
// writes ride a bounded in-flight window drained before the region's
// barrier. With Options.Overlap off the nonblocking verbs degrade to
// blocking at issue, so these helpers cost nothing on the default path.

// prefetch2 runs a double-buffered gather of n nonblocking fetches: the
// fetch for slot t+1 is issued before slot t's handle is waited, so
// slot t's in-flight transfer (and, in Execute mode, its deferred copy)
// overlaps its neighbour's issue and consumption. issue(t) must target
// the t%2 half of a doubled staging buffer; consume(t) runs after slot
// t's data has landed.
func prefetch2(p *ga.Proc, n int, issue func(t int) *ga.Handle, consume func(t int)) {
	if n <= 0 {
		return
	}
	// Bottom-tested loop: the first handle is issued before the body and
	// every path from an issue reaches its Wait, which the nbdiscipline
	// flow check verifies (a top-tested loop would leave a zero-trip
	// path where cur is never waited).
	cur := issue(0)
	for t := 0; ; t++ {
		var next *ga.Handle
		if t+1 < n {
			next = issue(t + 1)
		}
		cur.Wait(p)
		if consume != nil {
			consume(t)
		}
		cur = next
		if t+1 >= n {
			break
		}
	}
}

// nbQueue is a bounded write pipeline: pushing a nonblocking Put/Acc
// handle first waits the handle pushed two slots earlier, so at most
// two writes are in flight — their staging memory stays at the
// double-buffer level while the transfer time overlaps the compute
// issued between pushes. drain must run before the enclosing region's
// barrier (the schedules call it at the end of each work unit).
type nbQueue struct {
	p  *ga.Proc
	hs [2]*ga.Handle
	i  int
}

func newNbQueue(p *ga.Proc) nbQueue { return nbQueue{p: p} }

// push enqueues h, waiting the write issued two pushes ago.
func (q *nbQueue) push(h *ga.Handle) {
	q.hs[q.i&1].Wait(q.p)
	q.hs[q.i&1] = h
	q.i++
}

// drain waits the outstanding writes in issue order and resets the
// queue for reuse.
func (q *nbQueue) drain() {
	q.hs[q.i&1].Wait(q.p)
	q.hs[(q.i+1)&1].Wait(q.p)
	q.hs[0], q.hs[1] = nil, nil
}

// triPairs enumerates the canonical lower-triangular tile pairs
// (t0 >= t1) in row-major order, flattening the symmetric double loops
// so triangular gathers can run through prefetch2.
func triPairs(nt int) [][2]int {
	pairs := make([][2]int, 0, sym.Pairs(nt))
	for t0 := 0; t0 < nt; t0++ {
		for t1 := 0; t1 <= t0; t1++ {
			pairs = append(pairs, [2]int{t0, t1})
		}
	}
	return pairs
}

// checkOOM converts a global-memory allocation failure into a helpful
// error mentioning the scheme.
func oomWrap(scheme Scheme, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("fourindex: %v failed: %w", scheme, err)
}

// Checkpoint plumbing. Schedules record progress between Parallel
// regions under their scheme name; a restarted attempt resumes from the
// latest record and drops it on success. Checkpoint I/O is charged at
// disk bandwidth through ga.Runtime.ChargeCheckpoint so the fault-sweep
// experiment can measure its overhead, but the tensor payload (Words)
// is charged whether or not Execute-mode data exists — a Cost-mode
// checkpoint moves the same simulated bytes.

// ckpt returns the checkpoint store, nil when checkpointing is off.
func (c *runCtx) ckpt() faults.Checkpoint { return c.opt.Faults.Store() }

// ckptSave records rec (keyed by rec.Scheme) and charges its write.
func (c *runCtx) ckptSave(rec faults.Record) {
	ck := c.ckpt()
	if ck == nil {
		return
	}
	rec.N = c.n
	c.rt.ChargeCheckpoint(rec.Words, false)
	ck.Save(rec)
}

// ckptResume fetches the latest record for key, validating that it
// belongs to the same problem size. Side-effect free: a schedule that
// decides to use the record calls ckptRestore.
func (c *runCtx) ckptResume(key string) (faults.Record, bool) {
	ck := c.ckpt()
	if ck == nil {
		return faults.Record{}, false
	}
	rec, ok := ck.Latest(key)
	if !ok || rec.N != c.n || rec.Progress <= 0 {
		return faults.Record{}, false
	}
	return rec, true
}

// ckptRestore charges the restore read of rec and emits the KindRestart
// trace event; label names what is being resumed ("l-slab 3", "stage 2").
func (c *runCtx) ckptRestore(rec faults.Record, label string) {
	c.rt.ChargeCheckpoint(rec.Words, true)
	c.rt.TraceRestart(fmt.Sprintf("resume %s at %s", rec.Scheme, label))
}

// ckptDrop forgets key's record (called on successful completion).
func (c *runCtx) ckptDrop(key string) {
	if ck := c.ckpt(); ck != nil {
		ck.Drop(key)
	}
}

// tileStartingAt returns the index of the tile whose lower bound is
// exactly the element offset off, or (len, true) when off equals the
// grid's total extent, or (0, false) when off is not a tile boundary —
// a checkpoint from an incompatibly tiled attempt, which the caller
// must ignore (restart from scratch rather than risk a wrong resume).
func tileStartingAt(g tile.Grid, off int) (int, bool) {
	if off == g.N {
		return g.NumTiles(), true
	}
	for t := 0; t < g.NumTiles(); t++ {
		lo, _ := g.Bounds(t)
		if lo == off {
			return t, true
		}
		if lo > off {
			break
		}
	}
	return 0, false
}
