package faults

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck, err := NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.Latest("fullyfused-inner"); ok {
		t.Fatal("empty store reported a record")
	}
	rec := Record{
		Scheme:   "fullyfused-inner",
		N:        12,
		Progress: 4,
		Words:    321,
		State:    map[string][]float64{"C": {1.5, -2.25, 0, 3.125}},
	}
	ck.Save(rec)

	// A fresh store over the same directory — the restarted-process view —
	// must see the record bit-for-bit.
	ck2, err := NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ck2.Latest("fullyfused-inner")
	if !ok {
		t.Fatal("record not found after reopen")
	}
	if got.Scheme != rec.Scheme || got.N != rec.N || got.Progress != rec.Progress || got.Words != rec.Words {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, rec)
	}
	if len(got.State["C"]) != len(rec.State["C"]) {
		t.Fatalf("state length mismatch: %d vs %d", len(got.State["C"]), len(rec.State["C"]))
	}
	for i, v := range rec.State["C"] {
		if got.State["C"][i] != v {
			t.Fatalf("state[%d] = %v, want %v (bitwise)", i, got.State["C"][i], v)
		}
	}

	// Save replaces, Drop forgets.
	rec.Progress = 8
	ck.Save(rec)
	if got, _ := ck.Latest("fullyfused-inner"); got.Progress != 8 {
		t.Fatalf("replace failed: Progress = %d", got.Progress)
	}
	ck.Drop("fullyfused-inner")
	if _, ok := ck.Latest("fullyfused-inner"); ok {
		t.Fatal("record survived Drop")
	}
}

func TestFileCheckpointTornFileIgnored(t *testing.T) {
	dir := t.TempDir()
	ck, err := NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A torn/corrupt record file must read as "no checkpoint", which the
	// restart loop treats as a from-scratch run — never a crash.
	if err := os.WriteFile(filepath.Join(dir, "unfused.ckpt"), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.Latest("unfused"); ok {
		t.Fatal("corrupt record decoded as valid")
	}
}

func TestFileCheckpointKeyMangling(t *testing.T) {
	dir := t.TempDir()
	ck, err := NewFileCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ck.Save(Record{Scheme: "../evil/key", N: 1, Progress: 1})
	if _, ok := ck.Latest("../evil/key"); !ok {
		t.Fatal("mangled key did not round-trip")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].IsDir() {
		t.Fatalf("expected exactly one record file inside the store dir, got %v", entries)
	}
}
