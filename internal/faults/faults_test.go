package faults

import (
	"errors"
	"fmt"
	"testing"
)

// Decide must be a pure function: identical inputs, identical class.
func TestDecideDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, TransientRate: 0.3}
	for run := 1; run <= 3; run++ {
		for proc := 0; proc < 4; proc++ {
			for seq := int64(0); seq < 200; seq++ {
				a := p.Decide(run, proc, seq, 0)
				b := p.Decide(run, proc, seq, 0)
				if a != b {
					t.Fatalf("Decide(%d,%d,%d,0) unstable: %v then %v", run, proc, seq, a, b)
				}
			}
		}
	}
}

// The empirical transient rate over many decisions should track the
// configured probability.
func TestDecideRate(t *testing.T) {
	p := &Plan{Seed: 7, TransientRate: 0.1}
	hits, total := 0, 0
	for proc := 0; proc < 8; proc++ {
		for seq := int64(0); seq < 5000; seq++ {
			total++
			if p.Decide(1, proc, seq, 0) == Transient {
				hits++
			}
		}
	}
	got := float64(hits) / float64(total)
	if got < 0.08 || got > 0.12 {
		t.Fatalf("empirical transient rate %.4f, want ~0.10", got)
	}
}

func TestCrashPointFiresOnceOnExactOp(t *testing.T) {
	p := &Plan{Crash: &CrashPoint{Run: 1, Proc: 2, Seq: 5}}
	if got := p.Decide(1, 2, 5, 0); got != Crash {
		t.Fatalf("exact crash point: got %v, want Crash", got)
	}
	for _, tc := range []struct {
		run, proc int
		seq       int64
		attempt   int
	}{
		{2, 2, 5, 0}, // later run (after restart) — must not re-fire
		{1, 1, 5, 0},
		{1, 2, 4, 0},
		{1, 2, 5, 1}, // retry attempt, not first try
	} {
		if got := p.Decide(tc.run, tc.proc, tc.seq, tc.attempt); got != None {
			t.Fatalf("Decide(%+v) = %v, want None", tc, got)
		}
	}
}

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if got := p.Decide(1, 0, 0, 0); got != None {
		t.Fatalf("nil plan Decide = %v, want None", got)
	}
	if got := p.SlowFactor(0); got != 1 {
		t.Fatalf("nil plan SlowFactor = %v, want 1", got)
	}
	if got := p.RegisterRun(); got != 0 {
		t.Fatalf("nil plan RegisterRun = %d, want 0", got)
	}
	if got := p.MaxAttempts(); got != 1 {
		t.Fatalf("nil plan MaxAttempts = %d, want 1", got)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := &Plan{BackoffBase: 1e-3}
	if got := p.Backoff(0); got != 1e-3 {
		t.Fatalf("Backoff(0) = %v, want 1e-3", got)
	}
	for k := 1; k < maxBackoffDoublings; k++ {
		if p.Backoff(k) != 2*p.Backoff(k-1) {
			t.Fatalf("Backoff(%d) = %v, want double of %v", k, p.Backoff(k), p.Backoff(k-1))
		}
	}
	if p.Backoff(maxBackoffDoublings+5) != p.Backoff(maxBackoffDoublings) {
		t.Fatalf("backoff not capped")
	}
}

func TestRegisterRunMonotonic(t *testing.T) {
	p := &Plan{}
	for want := 1; want <= 3; want++ {
		if got := p.RegisterRun(); got != want {
			t.Fatalf("RegisterRun = %d, want %d", got, want)
		}
	}
}

func TestStragglerFactor(t *testing.T) {
	p := &Plan{Slow: &Straggler{Proc: 1, Factor: 4}}
	if got := p.SlowFactor(1); got != 4 {
		t.Fatalf("SlowFactor(1) = %v, want 4", got)
	}
	if got := p.SlowFactor(0); got != 1 {
		t.Fatalf("SlowFactor(0) = %v, want 1", got)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	crash := fmt.Errorf("ga: process 2 failed: %w", &CrashError{Run: 1, Proc: 2, Seq: 9})
	exhausted := fmt.Errorf("ga: process 0 failed: %w", &RetryExhaustedError{Op: "Get", Array: "C", Proc: 0, Attempts: 9})
	plain := errors.New("shape mismatch")

	if !Restartable(crash) || Terminal(crash) || !Injected(crash) {
		t.Fatalf("crash classification wrong: restartable=%v terminal=%v injected=%v",
			Restartable(crash), Terminal(crash), Injected(crash))
	}
	if Restartable(exhausted) || !Terminal(exhausted) || !Injected(exhausted) {
		t.Fatalf("exhaustion classification wrong: restartable=%v terminal=%v injected=%v",
			Restartable(exhausted), Terminal(exhausted), Injected(exhausted))
	}
	if !errors.Is(exhausted, ErrTransient) {
		t.Fatalf("RetryExhaustedError must unwrap to ErrTransient")
	}
	if Restartable(plain) || Terminal(plain) || Injected(plain) {
		t.Fatalf("plain error misclassified as injected")
	}
}

func TestMemCheckpointLifecycle(t *testing.T) {
	ck := NewMemCheckpoint()
	if _, ok := ck.Latest("unfused"); ok {
		t.Fatalf("empty store returned a record")
	}
	ck.Save(Record{Scheme: "unfused", N: 8, Progress: 1, State: map[string][]float64{"O1": {1, 2}}})
	ck.Save(Record{Scheme: "unfused", N: 8, Progress: 2, State: map[string][]float64{"O2": {3}}})
	rec, ok := ck.Latest("unfused")
	if !ok || rec.Progress != 2 {
		t.Fatalf("Latest = %+v, %v; want Progress 2", rec, ok)
	}
	if _, ok := ck.Latest("fullyfused"); ok {
		t.Fatalf("Latest leaked across schemes")
	}
	ck.Drop("unfused")
	if _, ok := ck.Latest("unfused"); ok {
		t.Fatalf("Drop did not remove the record")
	}
}

func TestInjectionNilSafety(t *testing.T) {
	var inj *Injection
	if inj.ActivePlan() != nil || inj.Store() != nil || inj.RestartBudget() != 0 {
		t.Fatalf("nil injection not inert")
	}
	inj = &Injection{}
	if got := inj.RestartBudget(); got != DefaultMaxRestarts {
		t.Fatalf("RestartBudget = %d, want %d", got, DefaultMaxRestarts)
	}
}

// RandomPlan must be reproducible and only propose crash points on
// valid process ranks.
func TestRandomPlanReproducible(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		a := RandomPlan(seed, 0.05, 3)
		b := RandomPlan(seed, 0.05, 3)
		if (a.Crash == nil) != (b.Crash == nil) {
			t.Fatalf("seed %d: crash presence unstable", seed)
		}
		if a.Crash != nil {
			if *a.Crash != *b.Crash {
				t.Fatalf("seed %d: crash point unstable: %+v vs %+v", seed, *a.Crash, *b.Crash)
			}
			if a.Crash.Proc < 0 || a.Crash.Proc >= 3 {
				t.Fatalf("seed %d: crash proc %d out of range", seed, a.Crash.Proc)
			}
		}
	}
}
