package faults

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// FileCheckpoint is a Checkpoint persisted to a directory, one
// gob-encoded file per scheme key, written atomically (temp file +
// rename) so a crash or SIGKILL mid-save leaves either the previous
// record or the new one, never a torn file. It is what lets a drained
// job server resume its in-flight jobs after a process restart: the
// schedules save through the same interface as MemCheckpoint, and a
// fresh process pointed at the same directory sees their last records.
//
// Like MemCheckpoint it is mutex-guarded; the mutex serialises the
// read-modify-write of the directory, not concurrent stores pointed at
// different directories.
type FileCheckpoint struct {
	mu  sync.Mutex
	dir string
}

// NewFileCheckpoint returns a file-backed checkpoint store rooted at
// dir, creating the directory if needed.
func NewFileCheckpoint(dir string) (*FileCheckpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("faults: checkpoint dir: %w", err)
	}
	return &FileCheckpoint{dir: dir}, nil
}

// Dir returns the store's root directory.
func (f *FileCheckpoint) Dir() string { return f.dir }

// path maps a scheme key to its record file. Keys are scheme names
// ("fullyfused-inner"), already filesystem-safe; anything else is
// defensively mangled.
func (f *FileCheckpoint) path(scheme string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, scheme)
	return filepath.Join(f.dir, safe+".ckpt")
}

// Save replaces the latest record for rec.Scheme on disk. I/O errors
// are swallowed (the Checkpoint interface is fire-and-forget, matching
// the simulator's disk-bandwidth charge model): a failed save costs the
// progress since the previous record, exactly like a lost checkpoint.
func (f *FileCheckpoint) Save(rec Record) {
	f.mu.Lock()
	defer f.mu.Unlock()
	tmp, err := os.CreateTemp(f.dir, "ckpt-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	if err := gob.NewEncoder(tmp).Encode(rec); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, f.path(rec.Scheme)); err != nil {
		os.Remove(name)
	}
}

// Latest returns the record saved for scheme, if a readable one exists.
func (f *FileCheckpoint) Latest(scheme string) (Record, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	file, err := os.Open(f.path(scheme))
	if err != nil {
		return Record{}, false
	}
	defer file.Close()
	var rec Record
	if err := gob.NewDecoder(file).Decode(&rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// Drop forgets the record for scheme.
func (f *FileCheckpoint) Drop(scheme string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	os.Remove(f.path(scheme))
}
