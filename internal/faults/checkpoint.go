package faults

import "sync"

// Record is one checkpoint: the progress of a schedule through its
// restartable structure plus the tensor state needed to resume.
//
// For the slab schedules (fullyfused, fullyfused-inner, fused123-4)
// Progress is the number of l *elements* fully contracted — an element
// offset, not a tile index, so a resume under a halved TileL (the
// hybrid degradation ladder) still lands on a tile boundary. For the
// stage schedules (unfused, fused12-34, nwchem-fused12-34) Progress is
// the index of the last completed stage. State maps tensor names (e.g.
// "C", "O2") to dense snapshots in ForEachTile order; snapshots are nil
// in Cost mode, where only the progress marker matters. Words is the
// simulated checkpoint size in elements, charged to the disk level on
// save and on restore regardless of mode.
type Record struct {
	Scheme   string
	N        int
	Progress int
	Words    int64
	State    map[string][]float64
}

// Checkpoint is the store the schedules record completed l-slabs (or
// stages) through. Implementations must be safe for use from a single
// goroutine between Parallel regions; they are never called from inside
// a region.
type Checkpoint interface {
	// Save replaces the latest record for rec.Scheme.
	Save(rec Record)
	// Latest returns the most recent record saved for scheme, if any.
	Latest(scheme string) (Record, bool)
	// Drop forgets the record for scheme (called on successful
	// completion).
	Drop(scheme string)
}

// MemCheckpoint is the in-memory Checkpoint used by tests, the chaos
// CLI, and the restart loop: latest record per scheme, mutex-guarded.
type MemCheckpoint struct {
	mu   sync.Mutex
	recs map[string]Record
}

// NewMemCheckpoint returns an empty in-memory checkpoint store.
func NewMemCheckpoint() *MemCheckpoint {
	return &MemCheckpoint{recs: make(map[string]Record)}
}

// Save replaces the latest record for rec.Scheme.
func (m *MemCheckpoint) Save(rec Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs[rec.Scheme] = rec
}

// Latest returns the most recent record saved for scheme.
func (m *MemCheckpoint) Latest(scheme string) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[scheme]
	return rec, ok
}

// Drop forgets the record for scheme.
func (m *MemCheckpoint) Drop(scheme string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.recs, scheme)
}

// DefaultMaxRestarts bounds crash-restart attempts per transform when
// Injection.MaxRestarts is zero.
const DefaultMaxRestarts = 4

// Injection bundles everything the fourindex driver needs to run under
// faults: the plan to inject from, the checkpoint store to resume from,
// and the restart budget. A nil *Injection disables all of it.
type Injection struct {
	// Plan is the fault plan the runtime consults (nil injects
	// nothing, but checkpointing still works).
	Plan *Plan
	// Checkpoint, when non-nil, enables l-slab / stage
	// checkpoint-restart.
	Checkpoint Checkpoint
	// MaxRestarts bounds crash-restarts per transform
	// (0 = DefaultMaxRestarts).
	MaxRestarts int
}

// ActivePlan returns the fault plan, nil-safe.
func (inj *Injection) ActivePlan() *Plan {
	if inj == nil {
		return nil
	}
	return inj.Plan
}

// Store returns the checkpoint store, nil-safe.
func (inj *Injection) Store() Checkpoint {
	if inj == nil {
		return nil
	}
	return inj.Checkpoint
}

// RestartBudget returns how many crash-restarts the driver may attempt.
func (inj *Injection) RestartBudget() int {
	if inj == nil {
		return 0
	}
	if inj.MaxRestarts > 0 {
		return inj.MaxRestarts
	}
	return DefaultMaxRestarts
}
