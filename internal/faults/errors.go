package faults

import (
	"errors"
	"fmt"
)

// ErrTransient is the sentinel wrapped by every injected communication
// fault, so errors.Is(err, ErrTransient) identifies injected failures
// even after the runtime wraps them with process context.
var ErrTransient = errors.New("faults: injected transient communication fault")

// CrashError is the terminal-for-this-attempt error of an injected
// process crash. It is restartable: the driver may rebuild the runtime
// and resume from the last checkpoint.
type CrashError struct {
	Run  int
	Proc int
	Seq  int64
}

// Error describes the crash point.
func (e *CrashError) Error() string {
	return fmt.Sprintf("faults: injected crash of process %d at op %d (run %d)", e.Proc, e.Seq, e.Run)
}

// RetryExhaustedError reports an operation that kept failing
// transiently until the retry budget ran out. It is terminal: retrying
// the run against the same plan would exhaust again, so the transform
// fails with this typed error rather than looping.
type RetryExhaustedError struct {
	Op       string
	Array    string
	Proc     int
	Attempts int
}

// Error describes the exhausted operation.
func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("faults: %s on %q by process %d failed %d attempts, retries exhausted", e.Op, e.Array, e.Proc, e.Attempts)
}

// Unwrap ties retry exhaustion back to the transient sentinel: the
// underlying faults were transient, only the budget made them fatal.
func (e *RetryExhaustedError) Unwrap() error { return ErrTransient }

// Restartable reports whether err represents a fault the driver may
// recover from by rebuilding the runtime and resuming from the last
// checkpoint (an injected process crash).
func Restartable(err error) bool {
	var ce *CrashError
	return errors.As(err, &ce)
}

// Terminal reports whether err is a typed terminal fault: restarting
// against the same deterministic plan cannot succeed (retry
// exhaustion). The hybrid driver reacts by degrading the schedule
// rather than restarting it.
func Terminal(err error) bool {
	var re *RetryExhaustedError
	return errors.As(err, &re)
}

// Injected reports whether err originates from the fault plan at all —
// as opposed to a genuine runtime error such as an out-of-memory
// condition or a shape mismatch.
func Injected(err error) bool {
	return Restartable(err) || errors.Is(err, ErrTransient)
}
