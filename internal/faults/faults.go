// Package faults is the deterministic fault-injection subsystem: a
// seeded, reproducible fault plan that the ga runtime consults on every
// Get/Put/Acc operation, plus the typed error taxonomy and the
// checkpoint interface the schedules' l-slab restart is built on.
//
// The design goal is chaos testing that is exactly replayable: every
// fault decision is a pure function of (seed, run, proc, seq, attempt),
// where run is a per-runtime counter owned by the Plan, proc the
// process rank, seq the per-process operation index, and attempt the
// retry attempt. Two executions with the same plan inject the same
// faults at the same operations, so a failing chaos seed is a unit
// test, not a flake.
//
// Four fault classes are modelled (ISSUE 3, after the failure modes of
// production Global Arrays clusters):
//
//   - transient communication faults: a Get/Put/Acc fails with
//     probability TransientRate and is retried with exponential backoff
//     charged on the simulated clock; exhausting the retry budget is a
//     terminal RetryExhaustedError.
//   - process crash: the operation at a chosen (run, proc, seq) point
//     panics with a restartable CrashError, modelling a killed rank.
//   - stragglers: one process's simulated time charges are multiplied
//     by a slowdown factor, modelling a degraded node.
//   - late OOM pressure: after a chosen number of operations the
//     effective aggregate-memory capacity shrinks, so allocations that
//     would have fitted start failing with ga.ErrGlobalOOM mid-run.
package faults

import "sync"

// Class is the outcome of one fault decision.
type Class int

const (
	// None lets the operation proceed.
	None Class = iota
	// Transient fails the operation recoverably; the runtime retries
	// with backoff.
	Transient
	// Crash kills the process at this operation (restartable from the
	// last checkpoint).
	Crash
)

// String names the class.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Crash:
		return "crash"
	default:
		return "class?"
	}
}

// CrashPoint designates one (run, proc, seq) operation to crash at.
// Run is the plan-owned run number (1 for the first runtime registered
// against the plan), so a crash point fires once: the restarted run
// registers a fresh run number and sails past the same seq.
type CrashPoint struct {
	Run  int
	Proc int
	Seq  int64
}

// Straggler slows one process: every simulated-time charge of process
// Proc is multiplied by Factor (> 1 slows it down).
type Straggler struct {
	Proc   int
	Factor float64
}

// LateOOM shrinks the effective aggregate-memory capacity to CapBytes
// once the runtime has performed AfterOps operations in total, modelling
// memory pressure that appears mid-run (e.g. a co-tenant's allocation).
type LateOOM struct {
	AfterOps int64
	CapBytes int64
}

// Default retry/backoff parameters, used when the Plan leaves the
// corresponding field zero.
const (
	// DefaultMaxRetries is the transient-fault retry budget per
	// operation.
	DefaultMaxRetries = 8
	// DefaultBackoffBase is the first retry's backoff in simulated
	// seconds; attempt k waits DefaultBackoffBase * 2^k.
	DefaultBackoffBase = 1e-4
	// maxBackoffDoublings caps the exponential growth.
	maxBackoffDoublings = 10
)

// Plan is a seeded, reproducible fault plan. The zero value (or a nil
// *Plan) injects nothing. A Plan may be shared by several runtimes (a
// hybrid driver or a restart loop); each runtime registers itself with
// RegisterRun and is told apart by its run number.
type Plan struct {
	// Seed drives the per-operation transient-fault hash.
	Seed uint64
	// TransientRate is the per-(operation, attempt) probability of an
	// injected transient fault, in [0, 1).
	TransientRate float64
	// MaxRetries bounds retries per operation (0 = DefaultMaxRetries).
	MaxRetries int
	// BackoffBase is the first backoff in simulated seconds
	// (0 = DefaultBackoffBase).
	BackoffBase float64
	// Crash, when non-nil, kills the designated operation once.
	Crash *CrashPoint
	// Slow, when non-nil, makes one process a straggler.
	Slow *Straggler
	// OOM, when non-nil, applies late memory pressure.
	OOM *LateOOM

	mu   sync.Mutex
	runs int
}

// RegisterRun allocates the next run number for one runtime instance
// (1-based; a restarted schedule gets a fresh number, so one-shot crash
// points do not re-fire after recovery). Nil-safe: a nil plan returns 0.
func (p *Plan) RegisterRun() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runs++
	return p.runs
}

// MaxAttempts returns the total attempts allowed per operation: the
// first try plus the retry budget.
func (p *Plan) MaxAttempts() int {
	if p == nil {
		return 1
	}
	if p.MaxRetries > 0 {
		return p.MaxRetries + 1
	}
	return DefaultMaxRetries + 1
}

// Backoff returns the simulated-seconds backoff before retry attempt
// (0-based): base * 2^attempt, capped.
func (p *Plan) Backoff(attempt int) float64 {
	base := DefaultBackoffBase
	if p != nil && p.BackoffBase > 0 {
		base = p.BackoffBase
	}
	if attempt > maxBackoffDoublings {
		attempt = maxBackoffDoublings
	}
	return base * float64(int64(1)<<uint(attempt))
}

// SlowFactor returns the simulated-time multiplier of process proc
// (1 for non-stragglers and nil plans).
func (p *Plan) SlowFactor(proc int) float64 {
	if p == nil || p.Slow == nil || p.Slow.Proc != proc || p.Slow.Factor <= 0 {
		return 1
	}
	return p.Slow.Factor
}

// Decide classifies operation seq of process proc in run on retry
// attempt (0-based). Pure and deterministic: the same arguments always
// produce the same class.
func (p *Plan) Decide(run, proc int, seq int64, attempt int) Class {
	if p == nil {
		return None
	}
	if c := p.Crash; c != nil && attempt == 0 && run == c.Run && proc == c.Proc && seq == c.Seq {
		return Crash
	}
	if p.TransientRate <= 0 {
		return None
	}
	h := mix(p.Seed ^ mix(uint64(run)<<32|uint64(uint32(proc))) ^ mix(uint64(seq)<<8|uint64(uint32(attempt))))
	// Map the top 53 bits to [0, 1).
	u := float64(h>>11) / float64(1<<53)
	if u < p.TransientRate {
		return Transient
	}
	return None
}

// mix is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// hash used for all fault decisions.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RandomPlan derives a reproducible fault plan from one seed: transient
// faults at the given rate, and for roughly half the seeds a one-shot
// crash point early in the first run (proc and seq derived from the
// seed). Plans whose crash point never matches an executed operation
// simply behave as transient-only plans.
func RandomPlan(seed uint64, rate float64, procs int) *Plan {
	if procs <= 0 {
		procs = 1
	}
	p := &Plan{Seed: seed, TransientRate: rate}
	h := mix(seed ^ 0xc4a5)
	if h&1 == 1 {
		p.Crash = &CrashPoint{
			Run:  1,
			Proc: int((h >> 1) % uint64(procs)),
			Seq:  int64((h >> 17) % 64),
		}
	}
	return p
}
