package trace

import "testing"

// TestDisabledTracerAllocs pins the contract that lets schedules stay
// instrumented unconditionally: every method of the disabled (nil)
// tracer is a zero-allocation no-op.
func TestDisabledTracerAllocs(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	checks := map[string]func(){
		"Emit":      func() { tr.Emit(1, KindGet, 0, 0.5, 0.1, "A", 64, true) },
		"Mark":      func() { tr.Mark(1, 0.5, "slab") },
		"Note":      func() { tr.Note("driver note") },
		"BeginSpan": func() { tr.BeginSpan(1, "op1", 0, Totals{}) },
		"EndSpan":   func() { tr.EndSpan(1, Totals{}) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("disabled tracer %s allocates %.1f times per call, want 0", name, allocs)
		}
	}
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer Spans() = %v, want nil", got)
	}
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events() = %v, want nil", got)
	}
	if tr.Dropped() != 0 || tr.LastRun() != 0 || tr.RegisterRun() != 0 {
		t.Error("nil tracer accessors must return zero values")
	}
}

func TestSpanNestingAndDeltas(t *testing.T) {
	tr := New(16)
	run := tr.RegisterRun()
	if run != 1 {
		t.Fatalf("first run id = %d, want 1", run)
	}
	tr.BeginSpan(run, "root", 0, Totals{})
	tr.BeginSpan(run, "op1", 1, Totals{Flops: 100, CommElements: 10})
	tr.EndSpan(3, Totals{Flops: 400, CommElements: 25, IntraElements: 5})
	tr.EndSpan(7, Totals{Flops: 900, CommElements: 50, IntraElements: 5})

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	root, op1 := spans[0], spans[1]
	if root.Name != "root" || root.Depth != 0 || !root.Done || root.Seconds() != 7 {
		t.Errorf("bad root span: %+v", root)
	}
	if op1.Name != "op1" || op1.Depth != 1 || op1.Seconds() != 2 {
		t.Errorf("bad op1 span: %+v", op1)
	}
	if op1.Totals.Flops != 300 || op1.Totals.CommElements != 15 || op1.Totals.IntraElements != 5 {
		t.Errorf("op1 delta = %+v, want flops 300, comm 15, intra 5", op1.Totals)
	}
	if got := op1.Totals.MovedElements(); got != 20 {
		t.Errorf("op1 MovedElements = %d, want 20", got)
	}
	if root.Totals.Flops != 900 {
		t.Errorf("root delta flops = %d, want 900", root.Totals.Flops)
	}
	// Unbalanced EndSpan must be a safe no-op.
	tr.EndSpan(9, Totals{})
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("extra EndSpan created spans: %d", got)
	}
}

func TestRingKeepsNewestAndCountsDrops(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(1, KindGet, 0, float64(i), 0, "A", int64(i), false)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Elems != want {
			t.Errorf("event %d Elems = %d, want %d (newest survive)", i, ev.Elems, want)
		}
	}
}

func TestEventsDeterministicOrder(t *testing.T) {
	tr := New(64)
	// Interleave procs out of order; Events must sort by (Run, Proc, Seq).
	tr.Emit(2, KindPut, 1, 9, 0, "C", 1, false)
	tr.Emit(1, KindGet, 1, 5, 0, "A", 2, false)
	tr.Emit(1, KindGet, 0, 8, 0, "B", 3, true)
	tr.Emit(1, KindGet, 1, 2, 0, "A", 4, false)
	tr.Emit(1, KindMark, SeqProc, 0, 0, "m", 0, false)

	evs := tr.Events()
	wantElems := []int64{0, 3, 2, 4, 1} // run1: proc -1, 0, 1(seq1), 1(seq2); then run2
	for i, ev := range evs {
		if ev.Elems != wantElems[i] {
			t.Fatalf("position %d: got Elems %d, want %d (order %+v)", i, ev.Elems, wantElems[i], evs)
		}
	}
	if tr.LastRun() != 0 {
		t.Errorf("LastRun with no spans = %d, want 0", tr.LastRun())
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindGet: "get", KindPut: "put", KindAcc: "acc", KindBarrier: "barrier",
		KindCreate: "create", KindDestroy: "destroy", KindMark: "mark", Kind(99): "kind?",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
