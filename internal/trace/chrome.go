package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace_event record. Field order is fixed so
// the golden-file test sees byte-stable output (encoding/json emits
// struct fields in declaration order).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object of the export.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts simulated seconds to trace_event microseconds.
func usec(s float64) float64 { return s * 1e6 }

// WriteChromeTrace exports the recorded trace as Chrome trace_event JSON
// (the format chrome://tracing and Perfetto load). Each runtime run
// becomes a process (pid = run id); within a run, tid 0 carries the
// schedule's span stack and tid p+1 the per-process operation events of
// rank p. Marks and create/destroy become instant events. Output is
// deterministic: spans in begin order, events in (Run, Proc, Seq) order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: cannot export a disabled (nil) tracer")
	}
	spans := t.Spans()
	events := t.Events()

	evs := make([]chromeEvent, 0, len(spans)+len(events)+8)

	// Metadata: name the processes and the schedule-span thread.
	runs := map[int32]bool{}
	for _, sp := range spans {
		runs[sp.Run] = true
	}
	for _, ev := range events {
		runs[ev.Run] = true
	}
	var runIDs []int32
	for r := range runs {
		runIDs = append(runIDs, r)
	}
	sort.Slice(runIDs, func(i, j int) bool { return runIDs[i] < runIDs[j] })
	for _, r := range runIDs {
		evs = append(evs,
			chromeEvent{Name: "process_name", Ph: "M", Pid: r,
				Args: map[string]any{"name": fmt.Sprintf("run %d", r)}},
			chromeEvent{Name: "thread_name", Ph: "M", Pid: r, Tid: 0,
				Args: map[string]any{"name": "schedule"}},
		)
	}

	for _, sp := range spans {
		ce := chromeEvent{
			Name: sp.Name, Ph: "X", Pid: sp.Run, Tid: 0,
			Ts: usec(sp.Start), Dur: usec(sp.Seconds()),
		}
		if sp.Done {
			ce.Args = map[string]any{
				"flops":       sp.Totals.Flops,
				"comm_elems":  sp.Totals.CommElements,
				"intra_elems": sp.Totals.IntraElements,
				"disk_elems":  sp.Totals.DiskElements,
				"messages":    sp.Totals.Messages,
				"depth":       sp.Depth,
			}
		}
		evs = append(evs, ce)
	}

	for _, ev := range events {
		tid := ev.Proc + 1
		switch ev.Kind {
		case KindMark, KindCreate, KindDestroy, KindFault, KindRestart:
			args := map[string]any{"kind": ev.Kind.String()}
			if ev.Elems != 0 {
				args["elems"] = ev.Elems
			}
			evs = append(evs, chromeEvent{
				Name: ev.Name, Ph: "i", Pid: ev.Run, Tid: tid,
				Ts: usec(ev.Start), S: "p", Args: args,
			})
		default:
			evs = append(evs, chromeEvent{
				Name: fmt.Sprintf("%s %s", ev.Kind, ev.Name),
				Ph:   "X", Pid: ev.Run, Tid: tid,
				Ts: usec(ev.Start), Dur: usec(ev.Dur),
				Args: map[string]any{
					"kind":   ev.Kind.String(),
					"elems":  ev.Elems,
					"remote": ev.Remote,
				},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
