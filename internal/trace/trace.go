// Package trace is the execution-trace subsystem: a structured span and
// event recorder threaded through the ga runtime and every schedule in
// internal/fourindex, recording *where inside a schedule* the data moved
// so that measured traffic can be compared phase-by-phase against the
// lower bounds of internal/lb (the comparison the paper's Sections 5-6
// and Figure 2 are built on).
//
// The model has two layers:
//
//   - Spans are named sequential regions — one per schedule phase (the
//     contraction and fusion regions of Listings 1, 8, 9 and 10) plus a
//     root span per schedule run — arranged in a stack. Each span
//     carries the delta of every resource tally (flops, inter-node,
//     intra-node and disk elements, messages) between its begin and end,
//     fed from the ga runtime's counters.
//
//   - Events are individual runtime operations (Get, Put, Acc, Barrier,
//     Create, Destroy, plus free-form marks) with per-process
//     simulated-clock timestamps, kept in a bounded ring buffer that
//     retains the most recent events and counts what it overwrote.
//
// Timestamps are simulated seconds from the cluster cost model, never
// the wall clock, so a trace of a molecule-scale cost-mode replay is
// exactly reproducible.
//
// Two sinks consume a recorded trace: WriteChromeTrace emits Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto, and Audit
// joins each contraction span against its internal/lb prediction to
// report the attained fraction of the lower bound.
//
// Key invariants:
//
//   - A nil *Tracer is the disabled tracer: every method is a nil-safe
//     no-op and the emit fast path performs zero allocations, so
//     schedules are instrumented unconditionally.
//   - Events from concurrent processes are ordered deterministically by
//     (run, process, per-process sequence number); two runs of the same
//     deterministic schedule produce byte-identical exports.
//   - Tracer state is touched only through Tracer methods (enforced by
//     the metricsdiscipline analyzer, exactly like metrics.Counters).
package trace

import "sync"

// Totals is a snapshot (or, on a closed span, a delta) of the resource
// tallies the audit reasons about. Element counts follow the metrics
// package's two-level convention: CommElements is inter-node traffic,
// IntraElements same-node copies, DiskElements out-of-core spill
// traffic; their sum is the two-level-model I/O the paper's bounds are
// stated in.
type Totals struct {
	Flops         int64
	CommElements  int64
	IntraElements int64
	DiskElements  int64
	Messages      int64
	// CommExposedSec is simulated transfer time the issuing process
	// actually waited for; CommOverlapSec is transfer time hidden
	// behind compute by nonblocking operations (see internal/ga's
	// overlap cost model). Blocking transfers are fully exposed.
	CommExposedSec float64
	CommOverlapSec float64
}

// MovedElements returns the total data movement of the two-level model:
// inter-node plus intra-node plus disk elements.
func (t Totals) MovedElements() int64 {
	return t.CommElements + t.IntraElements + t.DiskElements
}

// sub returns the component-wise difference t - u.
func (t Totals) sub(u Totals) Totals {
	return Totals{
		Flops:          t.Flops - u.Flops,
		CommElements:   t.CommElements - u.CommElements,
		IntraElements:  t.IntraElements - u.IntraElements,
		DiskElements:   t.DiskElements - u.DiskElements,
		Messages:       t.Messages - u.Messages,
		CommExposedSec: t.CommExposedSec - u.CommExposedSec,
		CommOverlapSec: t.CommOverlapSec - u.CommOverlapSec,
	}
}

// Kind classifies one traced runtime operation.
type Kind uint8

// The traced operation kinds.
const (
	// KindGet is a Get/GetT read of a distributed array.
	KindGet Kind = iota
	// KindPut is a Put/PutT overwrite of a distributed array.
	KindPut
	// KindAcc is an atomic Acc/AccT accumulation.
	KindAcc
	// KindBarrier is a synchronisation wait (its Dur is the idle time).
	KindBarrier
	// KindCreate is a distributed-array allocation (Elems = words).
	KindCreate
	// KindDestroy is a distributed-array release (Elems = words).
	KindDestroy
	// KindMark is a free-form instant annotation (slab boundaries,
	// hybrid-driver decisions).
	KindMark
	// KindFault is an injected fault that terminated an attempt: a
	// process crash or a retry-budget exhaustion (see internal/faults).
	KindFault
	// KindRetry is a transient injected fault absorbed by the runtime's
	// retry path; Dur is the backoff charged on the simulated clock.
	KindRetry
	// KindRestart is a checkpoint resume: a schedule skipping already
	// completed l-slabs or stages after a crash-restart.
	KindRestart
	// KindNbGet is a nonblocking NbGetT issue; Dur is the transfer's
	// in-flight time on the comm channel, not exposed process time.
	KindNbGet
	// KindNbPut is a nonblocking NbPutT issue (Dur as for KindNbGet).
	KindNbPut
	// KindNbAcc is a nonblocking NbAccT issue (Dur as for KindNbGet).
	KindNbAcc
	// KindWait is a Handle.Wait completion; Dur is the exposed (not
	// hidden behind compute) portion of the transfer's time.
	KindWait
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindGet:
		return "get"
	case KindPut:
		return "put"
	case KindAcc:
		return "acc"
	case KindBarrier:
		return "barrier"
	case KindCreate:
		return "create"
	case KindDestroy:
		return "destroy"
	case KindMark:
		return "mark"
	case KindFault:
		return "fault"
	case KindRetry:
		return "retry"
	case KindRestart:
		return "restart"
	case KindNbGet:
		return "nbget"
	case KindNbPut:
		return "nbput"
	case KindNbAcc:
		return "nbacc"
	case KindWait:
		return "wait"
	default:
		return "kind?"
	}
}

// SeqProc is the pseudo-process id of sequential (between-region) events
// such as Create/Destroy and driver marks.
const SeqProc = -1

// Event is one recorded runtime operation.
type Event struct {
	// Run identifies the runtime instance that emitted the event (a
	// hybrid driver may run several schedules against one tracer).
	Run int32
	// Proc is the emitting process rank, or SeqProc for sequential code.
	Proc int32
	// Seq is the per-(run, proc) emission sequence number; (Run, Proc,
	// Seq) orders events deterministically.
	Seq int32
	// Kind classifies the operation.
	Kind Kind
	// Start is the emitting process's simulated clock at operation
	// start, in seconds; Dur the simulated time the operation took.
	Start, Dur float64
	// Name is the distributed array's name, or the mark label.
	Name string
	// Elems is the elements moved (transfers) or held (create/destroy).
	Elems int64
	// Remote marks a transfer that crossed a node boundary.
	Remote bool
}

// Span is one named sequential region of a schedule.
type Span struct {
	// Run identifies the runtime instance the span belongs to.
	Run int32
	// Name is the phase label ("op1", "op12-fused", ...) or, at depth
	// zero, the schedule name.
	Name string
	// Depth is the span-stack depth at begin (0 = schedule root span).
	Depth int32
	// Start and End are simulated seconds; End is meaningful only when
	// Done.
	Start, End float64
	// Totals is the resource delta consumed inside the span (zero until
	// the span is closed).
	Totals Totals
	// Done reports whether the span was closed.
	Done bool
}

// Seconds returns the span's simulated duration (0 while open).
func (s Span) Seconds() float64 {
	if !s.Done {
		return 0
	}
	return s.End - s.Start
}

// DefaultCapacity is the ring-buffer size used when New is given a
// non-positive capacity.
const DefaultCapacity = 1 << 15

// maxSpans bounds the span list; schedules emit a handful of spans per
// outer slab, so this is far above any realistic run.
const maxSpans = 1 << 14

// openSpan is one span-stack entry: the index of the open span and the
// tally snapshot taken at its begin.
type openSpan struct {
	index int
	begin Totals
}

// Tracer records spans and events. The zero value is not used; construct
// with New. A nil *Tracer is the disabled tracer: all methods are
// nil-safe no-ops and the emit path allocates nothing, which is verified
// by TestDisabledTracerAllocs.
type Tracer struct {
	mu sync.Mutex

	ring    []Event // bounded ring storage
	next    int     // ring index of the next write
	count   int     // events currently held (<= len(ring))
	dropped int64   // events overwritten after the ring filled

	spans        []Span
	stack        []openSpan
	spansDropped int64

	runs int32   // runtime instances registered so far
	seqs []int32 // per-(proc+1) sequence counters, index 0 = SeqProc

	// listener, when non-nil, streams coarse progress (marks, restarts,
	// span begin/end) to an observer as it happens — the job server's
	// per-job event feed. Hot-path events (Get/Put/compute) never reach
	// it, so the fan-out cost stays off the transfer path.
	listener func(ProgressEvent)
}

// ProgressEvent is one coarse progress notification streamed to the
// listener registered with SetProgressListener: schedule marks (l-slab
// boundaries), checkpoint restarts, and phase-span begin/end.
type ProgressEvent struct {
	// Kind is "mark", "restart", "span-begin" or "span-end".
	Kind string
	// Label is the mark label, restart description or span name.
	Label string
	// Clock is the emitting process's simulated time in seconds (0 for
	// driver-level notes that have no runtime).
	Clock float64
}

// New returns an enabled tracer whose ring buffer holds capacity events
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Enabled reports whether the tracer records anything; false for nil.
func (t *Tracer) Enabled() bool { return t != nil }

// SetProgressListener registers fn to receive coarse progress events
// (marks, restarts, span begin/end) as they are recorded; nil removes
// the listener. fn is called synchronously from whichever goroutine
// emitted the event — it must be fast, safe for concurrent calls, and
// must not call back into the tracer. Nil-safe no-op when disabled.
func (t *Tracer) SetProgressListener(fn func(ProgressEvent)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.listener = fn
	t.mu.Unlock()
}

// progress fans one event out to the listener. Callers must NOT hold
// mu (the listener is user code).
func (t *Tracer) progress(kind, label string, clock float64) {
	t.mu.Lock()
	fn := t.listener
	t.mu.Unlock()
	if fn != nil {
		fn(ProgressEvent{Kind: kind, Label: label, Clock: clock})
	}
}

// RegisterRun allocates a fresh run id for one runtime instance.
// Nil-safe; the disabled tracer always returns 0.
func (t *Tracer) RegisterRun() int32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.runs++
	return t.runs
}

// nextSeq returns the next per-process sequence number. Caller holds mu.
func (t *Tracer) nextSeq(proc int32) int32 {
	i := int(proc) + 1
	for len(t.seqs) <= i {
		t.seqs = append(t.seqs, 0)
	}
	t.seqs[i]++
	return t.seqs[i]
}

// Emit records one event. Safe for concurrent use; no-op when disabled.
func (t *Tracer) Emit(run int32, kind Kind, proc int, start, dur float64, name string, elems int64, remote bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev := Event{
		Run: run, Proc: int32(proc), Kind: kind,
		Start: start, Dur: dur, Name: name, Elems: elems, Remote: remote,
	}
	ev.Seq = t.nextSeq(ev.Proc)
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	if t.count < len(t.ring) {
		t.count++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	// Only the coarse kinds reach the progress listener; transfers and
	// barriers are far too hot to fan out.
	if kind == KindMark || kind == KindRestart {
		t.progress(kind.String(), name, start)
	}
}

// Mark records an instant annotation from sequential schedule code.
func (t *Tracer) Mark(run int32, clock float64, label string) {
	t.Emit(run, KindMark, SeqProc, clock, 0, label, 0, false)
}

// Note records an instant annotation from driver code that has no
// runtime (and therefore no run id or simulated clock), such as the
// hybrid fuse/unfuse decision logic.
func (t *Tracer) Note(label string) {
	t.Emit(0, KindMark, SeqProc, 0, 0, label, 0, false)
}

// BeginSpan opens a span at the current stack depth. totals is the
// tally snapshot at the span's start, used to compute the span's delta
// at EndSpan. No-op when disabled.
func (t *Tracer) BeginSpan(run int32, name string, clock float64, totals Totals) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.spansDropped++
		// Keep the stack balanced so EndSpan still pairs up.
		t.stack = append(t.stack, openSpan{index: -1})
		t.mu.Unlock()
		return
	}
	t.spans = append(t.spans, Span{
		Run: run, Name: name, Depth: int32(len(t.stack)), Start: clock,
	})
	t.stack = append(t.stack, openSpan{index: len(t.spans) - 1, begin: totals})
	t.mu.Unlock()
	t.progress("span-begin", name, clock)
}

// EndSpan closes the innermost open span, recording its end time and
// resource delta. No-op when disabled or when no span is open.
func (t *Tracer) EndSpan(clock float64, totals Totals) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.stack) == 0 {
		t.mu.Unlock()
		return
	}
	top := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	if top.index < 0 {
		t.mu.Unlock()
		return // span was dropped at begin
	}
	sp := &t.spans[top.index]
	sp.End = clock
	sp.Totals = totals.sub(top.begin)
	sp.Done = true
	name := sp.Name
	t.mu.Unlock()
	t.progress("span-end", name, clock)
}

// Spans returns a copy of the recorded spans in begin order. Open spans
// have Done == false and zero Totals.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Events returns the surviving ring contents ordered deterministically
// by (Run, Proc, Seq) — an order independent of goroutine scheduling.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, 0, t.count)
	start := t.next - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	t.mu.Unlock()

	sortEvents(out)
	return out
}

// sortEvents orders events by (Run, Proc, Seq) with a simple in-place
// merge-free sort (the comparator is total, so sort.Slice would do; a
// local implementation keeps the hot sink dependency-light).
func sortEvents(evs []Event) {
	less := func(a, b Event) bool {
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Seq < b.Seq
	}
	// Insertion-like shell sort: event batches are near-sorted per
	// process already, and export is off the measurement path.
	for gap := len(evs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(evs); i++ {
			for j := i; j >= gap && less(evs[j], evs[j-gap]); j -= gap {
				evs[j], evs[j-gap] = evs[j-gap], evs[j]
			}
		}
	}
}

// Dropped returns how many events the bounded ring overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// LastRun returns the highest run id that recorded a span (the final
// schedule attempt of a hybrid driver), or 0 when no spans exist.
func (t *Tracer) LastRun() int32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var last int32
	for _, s := range t.spans {
		if s.Run > last {
			last = s.Run
		}
	}
	return last
}
