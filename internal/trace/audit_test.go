package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/trace"
)

// runAudited traces one scheme at a small extent and returns its audit.
func runAudited(t *testing.T, scheme fourindex.Scheme, n, s int) []trace.AuditRow {
	t.Helper()
	spec, err := chem.NewSpec(n, s, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1 << 16)
	opt := fourindex.Options{
		Spec:  spec,
		Procs: 4,
		Mode:  ga.Cost,
		TileN: 4,
		TileL: 4,
		Trace: tr,
	}
	if _, err := fourindex.Run(scheme, opt); err != nil {
		t.Fatal(err)
	}
	return tr.Audit(n, s, 0)
}

// TestAuditBoundsHold is the paper's sanity invariant made executable:
// a lower bound that exceeded the measured movement would be wrong, so
// for every schedule and every bounded phase, actual >= bound and the
// attained fraction lies in (0, 1].
func TestAuditBoundsHold(t *testing.T) {
	schemes := []fourindex.Scheme{
		fourindex.Unfused,
		fourindex.Fused1234Pair,
		fourindex.FullyFused,
		fourindex.FullyFusedInner,
		fourindex.Fused123,
		fourindex.NWChemFused,
	}
	for _, scheme := range schemes {
		rows := runAudited(t, scheme, 16, 1)
		if len(rows) == 0 {
			t.Errorf("%v: empty audit", scheme)
			continue
		}
		bounded := 0
		for _, r := range rows {
			if r.BoundElems == 0 {
				continue
			}
			bounded++
			if float64(r.ActualElems) < r.BoundElems {
				t.Errorf("%v %s: actual %d below lower bound %.6g",
					scheme, r.Phase, r.ActualElems, r.BoundElems)
			}
			if r.Attained <= 0 || r.Attained > 1 {
				t.Errorf("%v %s: attained fraction %v outside (0, 1]", scheme, r.Phase, r.Attained)
			}
		}
		if bounded == 0 {
			t.Errorf("%v: no phase matched a contraction bound", scheme)
		}
	}
}

// TestAuditUsesFinalRunOnly pins the multi-run behaviour a hybrid
// driver relies on: when several runtimes share one tracer (an aborted
// attempt followed by a fallback), only the final run's spans appear in
// the audit.
func TestAuditUsesFinalRunOnly(t *testing.T) {
	spec, err := chem.NewSpec(16, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1 << 16)
	opt := fourindex.Options{
		Spec:  spec,
		Procs: 4,
		Mode:  ga.Cost,
		TileN: 4,
		TileL: 4,
		Trace: tr,
	}
	if _, err := fourindex.Run(fourindex.Unfused, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := fourindex.Run(fourindex.FullyFusedInner, opt); err != nil {
		t.Fatal(err)
	}
	rows := tr.Audit(16, 1, 0)
	if len(rows) == 0 {
		t.Fatal("empty audit")
	}
	for _, r := range rows {
		switch r.Phase {
		case "op1", "op2", "op3", "op4", "generate-A":
			t.Errorf("audit row %q is from the superseded unfused run", r.Phase)
		}
	}
	if tr.LastRun() != 2 {
		t.Errorf("LastRun = %d, want 2", tr.LastRun())
	}
}

// TestHybridFallbackNotes checks that a genuine hybrid fallback chain —
// advised unfused by the paper's exact-size formulas but aborted by the
// block-triangular storage overhead — leaves its decision trail as
// driver notes and audits only the surviving attempt.
func TestHybridFallbackNotes(t *testing.T) {
	n := 16
	spec, err := chem.NewSpec(n, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Advise accepts unfused at exactly its packed-size requirement, but
	// tiled storage carries ~(1+1/nt) overhead, so the real unfused run
	// must hit ErrGlobalOOM and fall back.
	mem := lb.MemoryUnfused(n, 1) * 8
	tr := trace.New(1 << 16)
	opt := fourindex.Options{
		Spec:           spec,
		Procs:          4,
		Mode:           ga.Cost,
		TileN:          4,
		TileL:          4,
		Trace:          tr,
		GlobalMemBytes: mem,
	}
	res, err := fourindex.Run(fourindex.Hybrid, opt)
	if err != nil {
		t.Skipf("hybrid found no feasible schedule at the calibrated cap: %v", err)
	}
	if res.ChosenScheme == fourindex.Unfused {
		t.Skip("unfused fit despite the overhead; no fallback to observe")
	}
	notes := 0
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindMark && ev.Proc == trace.SeqProc && strings.Contains(ev.Name, "hybrid:") {
			notes++
		}
	}
	if notes == 0 {
		t.Error("no hybrid driver notes recorded across the fallback")
	}
	for _, r := range tr.Audit(n, 1, 0) {
		if r.Phase == "op1" && r.BoundElems > 0 && float64(r.ActualElems) < r.BoundElems {
			t.Errorf("fallback audit violates bound: %+v", r)
		}
	}
}

func TestAuditBoundUsesFastMemory(t *testing.T) {
	n := 16
	rows := runAudited(t, fourindex.Unfused, n, 1)
	var floor float64
	for _, r := range rows {
		if r.Phase == "op1" {
			floor = r.BoundElems
		}
	}
	if floor == 0 {
		t.Fatal("no op1 row")
	}
	// A tiny fast memory makes the Dongarra term dominate |in|+|out|.
	spec, err := chem.NewSpec(n, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1 << 16)
	opt := fourindex.Options{Spec: spec, Procs: 4, Mode: ga.Cost, TileN: 4, Trace: tr}
	if _, err := fourindex.Run(fourindex.Unfused, opt); err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Audit(n, 1, 2) {
		if r.Phase == "op1" && r.BoundElems <= floor {
			t.Errorf("op1 bound with S=2 is %.6g, want > memory-independent floor %.6g", r.BoundElems, floor)
		}
	}
}

func TestWriteAuditTable(t *testing.T) {
	rows := []trace.AuditRow{
		{Phase: "generate-A", ActualElems: 100, Flops: 1000, Seconds: 0.5},
		{Phase: "op1", BoundElems: 80, TightBoundElems: 90, ActualElems: 100, Flops: 2000, Seconds: 1.5, Attained: 0.8, TightAttained: 0.9},
	}
	var buf bytes.Buffer
	if err := trace.WriteAuditTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"phase", "lb-elems", "tight-lb", "attained", "tight-att", "generate-A", "op1", "0.800", "0.900"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit table missing %q:\n%s", want, out)
		}
	}
	// Unbounded phases render "-" for bound and attained.
	line := strings.Split(out, "\n")[1]
	if !strings.Contains(line, "-") {
		t.Errorf("unbounded row should show '-': %q", line)
	}
}

// runAuditedAt traces one scheme with a per-process local-memory cap
// and audits it at exactly that capacity — the honest configuration the
// hourglass bound is claimed for (a bound at capacity S is only
// meaningful for an execution that actually fit in S).
func runAuditedAt(t *testing.T, scheme fourindex.Scheme, n, s int, fastWords int64) ([]trace.AuditRow, bool) {
	t.Helper()
	spec, err := chem.NewSpec(n, s, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1 << 16)
	opt := fourindex.Options{
		Spec:          spec,
		Procs:         4,
		Mode:          ga.Cost,
		TileN:         4,
		TileL:         4,
		Trace:         tr,
		LocalMemBytes: fastWords * 8,
	}
	if _, err := fourindex.Run(scheme, opt); err != nil {
		return nil, false // schedule needs more than fastWords; not an audit case
	}
	return tr.Audit(n, s, fastWords), true
}

// TestAuditTightAttainedNeverExceedsOne is the regression the tightened
// bound exists for: across every schedule, symmetry and fast-memory
// capacity the run actually fits in, the hourglass-tightened attained
// fraction stays within ~1.0 — a valid bound never exceeds measured
// movement. (The dense classic bound carries no such guarantee: it
// prices the full n^5 iteration space whether or not packing and
// recomputation changed the arithmetic.)
func TestAuditTightAttainedNeverExceedsOne(t *testing.T) {
	schemes := []fourindex.Scheme{
		fourindex.Unfused,
		fourindex.Fused1234Pair,
		fourindex.FullyFused,
		fourindex.FullyFusedInner,
		fourindex.Fused123,
		fourindex.NWChemFused,
	}
	const slack = 1.0 + 1e-9
	audited := 0
	for _, sym := range []int{1, 2} {
		for _, fastWords := range []int64{1 << 11, 1 << 13, 1 << 15, 1 << 17} {
			for _, scheme := range schemes {
				rows, ok := runAuditedAt(t, scheme, 16, sym, fastWords)
				if !ok {
					continue
				}
				for _, r := range rows {
					if r.BoundElems == 0 {
						continue
					}
					audited++
					if r.TightBoundElems <= 0 {
						t.Errorf("%v s=%d S=%d %s: no tight bound", scheme, sym, fastWords, r.Phase)
					}
					if r.TightAttained > slack {
						t.Errorf("%v s=%d S=%d %s: tight attained %.4f exceeds 1.0 (bound %.6g, actual %d)",
							scheme, sym, fastWords, r.Phase, r.TightAttained, r.TightBoundElems, r.ActualElems)
					}
				}
			}
		}
	}
	if audited == 0 {
		t.Fatal("no bounded phase audited at any capacity")
	}
}

// TestAuditTightBoundSharperThanDense pins the hourglass tightening
// itself: in the bandwidth-dominated regime, for a phase whose measured
// arithmetic matches the dense iteration space, the flops-derived
// 2/sqrt(S) bound must come out strictly above the classic Dongarra
// 1.73/sqrt(S) one — the new column is a tighter yardstick, not a
// relabelling.
func TestAuditTightBoundSharperThanDense(t *testing.T) {
	rows, ok := runAuditedAt(t, fourindex.NWChemFused, 16, 1, 1<<11)
	if !ok {
		t.Skip("nwchem schedule no longer fits in the probe capacity")
	}
	sharper := 0
	for _, r := range rows {
		if r.BoundElems == 0 {
			continue
		}
		if r.TightBoundElems > r.BoundElems {
			sharper++
		}
	}
	if sharper == 0 {
		t.Errorf("no phase had a tight bound above the dense bound: %+v", rows)
	}
}
