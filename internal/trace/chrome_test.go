package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden Chrome trace")

// recordSmallRun traces a fixed small cost-mode schedule. Everything in
// it is deterministic — the work distribution is a hash of tile
// coordinates, simulated clocks come from the machine model, and the
// tracer orders events by (run, proc, seq) — so the export must be
// byte-identical across runs and platforms.
func recordSmallRun(t *testing.T) *trace.Tracer {
	t.Helper()
	machine, err := cluster.ByName("A")
	if err != nil {
		t.Fatal(err)
	}
	run, err := machine.Configure(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := chem.NewSpec(12, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1 << 16)
	opt := fourindex.Options{
		Spec:  spec,
		Procs: 4,
		Mode:  ga.Cost,
		Run:   &run,
		TileN: 4,
		TileL: 4,
		Trace: tr,
	}
	if _, err := fourindex.Run(fourindex.FullyFusedInner, opt); err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; golden run must keep all", tr.Dropped())
	}
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	tr := recordSmallRun(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_fullyfusedinner_n12.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace drifted from golden (%d vs %d bytes); regenerate with -update if the schedule or cost model changed intentionally",
			buf.Len(), len(want))
	}
}

// TestChromeTraceWellFormed checks the structural contract that makes
// the export loadable in chrome://tracing and Perfetto.
func TestChromeTraceWellFormed(t *testing.T) {
	tr := recordSmallRun(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int32   `json:"pid"`
			Tid  int32   `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	sawSpan, sawOp, sawMeta := false, false, false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("negative time on %q: ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
			}
			if ev.Tid == 0 {
				sawSpan = true
			} else {
				sawOp = true
			}
		case "M":
			sawMeta = true
		case "i":
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if !sawSpan || !sawOp || !sawMeta {
		t.Errorf("export missing record types: span=%v op=%v meta=%v", sawSpan, sawOp, sawMeta)
	}
	// The schedule root span must be present and named after the scheme.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Tid == 0 && ev.Name == "fullyfused-inner" {
			found = true
		}
	}
	if !found {
		t.Error("root span \"fullyfused-inner\" missing from export")
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Error("export should be a single JSON document with trailing newline")
	}

	var nilTr *trace.Tracer
	if err := nilTr.WriteChromeTrace(&buf); err == nil {
		t.Error("exporting a nil tracer should error")
	}
}
