package trace

import (
	"fmt"
	"io"
	"strings"

	"fourindex/internal/lb"
	"fourindex/internal/sym"
)

// AuditRow is one line of the bound-vs-actual table: a named schedule
// phase joined against its internal/lb prediction.
type AuditRow struct {
	// Phase is the span name ("op1", "op12-fused", ...).
	Phase string
	// BoundElems is the lb prediction for the phase in elements; zero
	// when the phase has no contraction bound (generate-A, slab setup).
	BoundElems float64
	// ActualElems is the measured two-level-model movement of the phase:
	// inter-node + intra-node + disk elements.
	ActualElems int64
	// Flops is the arithmetic performed inside the phase.
	Flops int64
	// Seconds is the phase's simulated duration.
	Seconds float64
	// ExposedCommSec is transfer time processes waited for inside the
	// phase; OverlapCommSec is transfer time the nonblocking verbs hid
	// behind compute. Their sum is the phase's total transfer time.
	ExposedCommSec float64
	OverlapCommSec float64
	// Attained is BoundElems/ActualElems — the fraction of the lower
	// bound the schedule attains (1.0 = bound-optimal, smaller = more
	// movement than necessary). Zero when no bound applies.
	Attained float64
	// TightBoundElems is the hourglass-tightened prediction
	// (lb.HourglassContractionLB) derived from the phase's measured
	// Flops rather than the dense iteration space, so spatial-symmetry
	// packing and recomputation are priced in. Zero when no bound
	// applies.
	TightBoundElems float64
	// TightAttained is TightBoundElems/ActualElems. Unlike Attained —
	// whose dense bound can exceed a symmetric run's true movement
	// (fractions above 1.0 signalled a loose bound, not a broken
	// schedule) — this fraction never exceeds ~1.0.
	TightAttained float64
}

// auditSpec maps one phase name to the (input, output) tensors of the
// contraction(s) it performs, selected from sym.ExactSizes.
type auditSpec struct {
	in  func(z sym.Sizes) int64
	out func(z sym.Sizes) int64
}

// phaseBounds maps the phase names emitted by the schedules (Listings 1,
// 8, 9, 10) to their contraction bounds. Fused regions take the fused
// region's input and output (Fusion Lemma end-members): op12 moves A in
// and O2 out, op34 moves O2 in and C out.
var phaseBounds = map[string]auditSpec{
	"op1":         {in: func(z sym.Sizes) int64 { return z.A }, out: func(z sym.Sizes) int64 { return z.O1 }},
	"op2":         {in: func(z sym.Sizes) int64 { return z.O1 }, out: func(z sym.Sizes) int64 { return z.O2 }},
	"op3":         {in: func(z sym.Sizes) int64 { return z.O2 }, out: func(z sym.Sizes) int64 { return z.O3 }},
	"op4":         {in: func(z sym.Sizes) int64 { return z.O3 }, out: func(z sym.Sizes) int64 { return z.C }},
	"op12-fused":  {in: func(z sym.Sizes) int64 { return z.A }, out: func(z sym.Sizes) int64 { return z.O2 }},
	"op34-fused":  {in: func(z sym.Sizes) int64 { return z.O2 }, out: func(z sym.Sizes) int64 { return z.C }},
	"op12-chunks": {in: func(z sym.Sizes) int64 { return z.A }, out: func(z sym.Sizes) int64 { return z.O2 }},
	"op34-chunks": {in: func(z sym.Sizes) int64 { return z.O2 }, out: func(z sym.Sizes) int64 { return z.C }},
}

// Audit aggregates the tracer's closed phase spans from its final run
// (a hybrid driver may record aborted attempts under earlier run ids)
// and joins each against its lb.ContractionLB prediction for extent n,
// symmetry factor s and per-process fast memory fastWords (elements).
// Rows appear in first-span order. When fastWords <= 0 the bound falls
// back to the memory-independent floor |in|+|out|.
func (t *Tracer) Audit(n, symFactor int, fastWords int64) []AuditRow {
	if t == nil {
		return nil
	}
	sizes := sym.ExactSizes(n, symFactor)
	run := t.LastRun()
	spans := t.Spans()

	var order []string
	agg := make(map[string]*AuditRow)
	for _, sp := range spans {
		if sp.Run != run || !sp.Done || sp.Depth == 0 {
			continue
		}
		row, ok := agg[sp.Name]
		if !ok {
			row = &AuditRow{Phase: sp.Name}
			agg[sp.Name] = row
			order = append(order, sp.Name)
		}
		row.ActualElems += sp.Totals.MovedElements()
		row.Flops += sp.Totals.Flops
		row.Seconds += sp.Seconds()
		row.ExposedCommSec += sp.Totals.CommExposedSec
		row.OverlapCommSec += sp.Totals.CommOverlapSec
	}

	rows := make([]AuditRow, 0, len(order))
	for _, name := range order {
		row := *agg[name]
		if spec, ok := phaseBounds[name]; ok {
			in, out := spec.in(sizes), spec.out(sizes)
			if fastWords > 0 {
				row.BoundElems = lb.ContractionLB(int64(n), fastWords, in, out)
				row.TightBoundElems = lb.HourglassContractionLB(row.Flops, fastWords, in, out)
			} else {
				row.BoundElems = float64(in + out)
				row.TightBoundElems = row.BoundElems
			}
			if row.ActualElems > 0 {
				row.Attained = row.BoundElems / float64(row.ActualElems)
				row.TightAttained = row.TightBoundElems / float64(row.ActualElems)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FaultSummary aggregates the chaos-related events of a recorded trace:
// how many injected faults terminated an attempt, how many transient
// faults the retry path absorbed, how many checkpoint resumes occurred,
// and how many times the hybrid driver degraded the schedule.
type FaultSummary struct {
	// Faults counts crash and retry-exhaustion events (KindFault).
	Faults int64
	// Retries counts transient faults absorbed by backoff (KindRetry).
	Retries int64
	// Restarts counts checkpoint resumes (KindRestart).
	Restarts int64
	// Degrades counts hybrid degradation decisions ("hybrid: degrade"
	// marks).
	Degrades int64
}

// degradeMarkPrefix is the label prefix the hybrid driver uses for its
// degradation notes; FaultSummary counts marks carrying it.
const degradeMarkPrefix = "hybrid: degrade"

// FaultSummary scans the surviving events and tallies the fault, retry,
// restart and degradation activity of the trace. Nil-safe.
func (t *Tracer) FaultSummary() FaultSummary {
	var s FaultSummary
	for _, ev := range t.Events() {
		switch ev.Kind {
		case KindFault:
			s.Faults++
		case KindRetry:
			s.Retries++
		case KindRestart:
			s.Restarts++
		case KindMark:
			if strings.HasPrefix(ev.Name, degradeMarkPrefix) {
				s.Degrades++
			}
		}
	}
	return s
}

// WriteFaultSummary renders the summary as the short table printed by
// `fouridx chaos`.
func WriteFaultSummary(w io.Writer, s FaultSummary) error {
	_, err := fmt.Fprintf(w,
		"faults (crash/exhausted): %d\nretries (transient, absorbed): %d\ncheckpoint restarts: %d\nhybrid degradations: %d\n",
		s.Faults, s.Retries, s.Restarts, s.Degrades)
	return err
}

// WriteAuditTable renders rows as the aligned text table printed by
// `fouridx trace`. Phases without a bound show "-" in the bound and
// attained columns. The exposed/overlap columns split each phase's
// transfer time into what processes waited for versus what the
// nonblocking verbs hid behind compute (overlap is zero without
// Options.Overlap). The tight-lb/tight-att pair reports the
// hourglass-tightened bound alongside the classic dense one: classic
// attained fractions above 1.0 mean the dense bound is loose for the
// phase, tight fractions stay within ~1.0 by construction.
func WriteAuditTable(w io.Writer, rows []AuditRow) error {
	if _, err := fmt.Fprintf(w, "%-16s %14s %14s %14s %14s %10s %11s %11s %9s %9s\n",
		"phase", "lb-elems", "tight-lb", "actual-elems", "flops", "sim-sec", "exposed-sec", "overlap-sec", "attained", "tight-att"); err != nil {
		return err
	}
	for _, r := range rows {
		bound, tight, att, tatt := "-", "-", "-", "-"
		if r.BoundElems > 0 {
			bound = fmt.Sprintf("%.4g", r.BoundElems)
			tight = fmt.Sprintf("%.4g", r.TightBoundElems)
			att = fmt.Sprintf("%.3f", r.Attained)
			tatt = fmt.Sprintf("%.3f", r.TightAttained)
		}
		if _, err := fmt.Fprintf(w, "%-16s %14s %14s %14d %14d %10.4g %11.4g %11.4g %9s %9s\n",
			r.Phase, bound, tight, r.ActualElems, r.Flops, r.Seconds, r.ExposedCommSec, r.OverlapCommSec, att, tatt); err != nil {
			return err
		}
	}
	return nil
}
