package scf

import (
	"math"
	"testing"

	"fourindex/internal/chem"
)

func converged(t *testing.T, n, nOcc int) Result {
	t.Helper()
	sp := chem.MustSpec(n, 1, 11)
	res, err := RHF(sp, nOcc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SCF did not converge in %d iterations", res.Iterations)
	}
	return res
}

func TestRHFConverges(t *testing.T) {
	res := converged(t, 10, 3)
	if res.Energy >= 0 {
		t.Errorf("electronic energy = %v, expected negative (bound levels)", res.Energy)
	}
	if len(res.OrbitalEnergies) != 10 || len(res.B) != 100 {
		t.Fatalf("result shapes wrong: %d energies, %d coefficients", len(res.OrbitalEnergies), len(res.B))
	}
	for i := 1; i < len(res.OrbitalEnergies); i++ {
		if res.OrbitalEnergies[i] < res.OrbitalEnergies[i-1] {
			t.Fatal("orbital energies not ascending")
		}
	}
}

// The converged coefficient matrix is orthogonal: B B^T = I (orthonormal
// basis, no overlap matrix).
func TestRHFCoefficientsOrthonormal(t *testing.T) {
	n := 12
	res := converged(t, n, 4)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += res.B[a*n+i] * res.B[b*n+i]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("<%d|%d> = %v, want %v", a, b, dot, want)
			}
		}
	}
}

// At convergence the MO-basis Fock matrix is diagonal: transforming the
// two-index Fock with B must reproduce the orbital energies.
func TestRHFFockDiagonalInMOBasis(t *testing.T) {
	n, nOcc := 10, 3
	sp := chem.MustSpec(n, 1, 11)
	res, err := RHF(sp, nOcc, Options{Tol: 1e-11, MaxIter: 300})
	if err != nil || !res.Converged {
		t.Fatalf("convergence: %v (converged=%v)", err, res.Converged)
	}
	// Rebuild F from the converged density.
	c := make([]float64, n*n)
	for ao := 0; ao < n; ao++ {
		for mo := 0; mo < n; mo++ {
			c[ao*n+mo] = res.B[mo*n+ao]
		}
	}
	d := density(c, n, nOcc)
	f := fock(sp, sp.CoreHamiltonian(), d, 0.02)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			var fab float64
			for p := 0; p < n; p++ {
				for q := 0; q < n; q++ {
					fab += res.B[a*n+p] * f[p*n+q] * res.B[b*n+q]
				}
			}
			if a == b {
				if math.Abs(fab-res.OrbitalEnergies[a]) > 1e-6 {
					t.Fatalf("F_mo[%d,%d] = %v, want eps = %v", a, b, fab, res.OrbitalEnergies[a])
				}
			} else if math.Abs(fab) > 1e-6 {
				t.Fatalf("off-diagonal F_mo[%d,%d] = %v", a, b, fab)
			}
		}
	}
}

// The converged density is an idempotent projector: D^2 = D.
func TestRHFDensityIdempotent(t *testing.T) {
	n, nOcc := 10, 3
	res := converged(t, n, nOcc)
	c := make([]float64, n*n)
	for ao := 0; ao < n; ao++ {
		for mo := 0; mo < n; mo++ {
			c[ao*n+mo] = res.B[mo*n+ao]
		}
	}
	d := density(c, n, nOcc)
	for r := 0; r < n; r++ {
		for s := 0; s < n; s++ {
			var dd float64
			for k := 0; k < n; k++ {
				dd += d[r*n+k] * d[k*n+s]
			}
			if math.Abs(dd-d[r*n+s]) > 1e-9 {
				t.Fatalf("D^2 != D at (%d,%d): %v vs %v", r, s, dd, d[r*n+s])
			}
		}
	}
	// Trace of D equals the occupied count.
	var tr float64
	for r := 0; r < n; r++ {
		tr += d[r*n+r]
	}
	if math.Abs(tr-float64(nOcc)) > 1e-9 {
		t.Errorf("tr D = %v, want %d", tr, nOcc)
	}
}

func TestRHFValidation(t *testing.T) {
	sp := chem.MustSpec(8, 1, 1)
	if _, err := RHF(sp, 0, Options{}); err == nil {
		t.Error("nOcc = 0 should error")
	}
	if _, err := RHF(sp, 8, Options{}); err == nil {
		t.Error("nOcc = n should error")
	}
	sym, _ := chem.NewSpec(8, 2, 1)
	if _, err := RHF(sym, 2, Options{}); err == nil {
		t.Error("spatial symmetry should be rejected")
	}
}

func TestRHFDeterministic(t *testing.T) {
	a := converged(t, 8, 2)
	b := converged(t, 8, 2)
	if a.Energy != b.Energy || a.Iterations != b.Iterations {
		t.Error("SCF not deterministic")
	}
}
