// Package scf implements a closed-shell restricted Hartree-Fock solver
// over the synthetic integral engine — the upstream producer of the
// four-index transform's inputs. The paper's transformation matrix B is
// "a two-dimensional transformation matrix" taking atomic orbitals to
// molecular orbitals; in real suites it comes from exactly this
// self-consistent-field loop.
//
// The synthetic basis is orthonormal by construction (overlap S = I), so
// no Löwdin orthogonalisation is needed: iterate
//
//	F = Hcore + lambda * G(D),   F C = C eps,   D = C_occ C_occ^T
//
// to self-consistency, with DIIS (Pulay commutator mixing) accelerating
// the iteration. lambda is the two-electron coupling strength of the
// synthetic model: the hash-based integrals carry random O(1) signs
// (unlike real electron-repulsion integrals, which obey Cauchy-Schwarz
// positivity), so a weak coupling keeps the mean field in the convergent
// closed-shell regime; with DIIS the iteration then converges
// quadratically in a handful of steps.
//
// The converged MO coefficients are returned in the B[mo, ao] layout the
// transform consumes.
package scf

import (
	"fmt"
	"math"

	"fourindex/internal/chem"
	"fourindex/internal/linalg"
)

// Options tunes the SCF iteration.
type Options struct {
	MaxIter int     // default 200
	Tol     float64 // density convergence threshold, default 1e-9
	// Coupling is the two-electron interaction strength lambda
	// (default 0.02; see withDefaults for why it is weak).
	Coupling float64
	// DIISDepth is the Pulay history length (default 6; 1 disables).
	DIISDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.Coupling <= 0 {
		// The hash-based synthetic integrals carry random O(1) signs
		// and do not satisfy the Cauchy-Schwarz structure of real
		// electron-repulsion integrals; couplings much beyond ~0.03
		// push the mean field into a genuinely non-convergent regime.
		o.Coupling = 0.02
	}
	if o.DIISDepth <= 0 {
		o.DIISDepth = 6
	}
	return o
}

// Result is a converged (or abandoned) SCF state.
type Result struct {
	// Energy is the electronic energy sum_rs D_sr (H_rs + F_rs).
	Energy float64
	// B holds the MO coefficients in the transform's layout:
	// B[mo*n + ao], i.e. row a is molecular orbital a.
	B []float64
	// OrbitalEnergies are the converged eigenvalues, ascending.
	OrbitalEnergies []float64
	// Iterations actually performed.
	Iterations int
	// Converged reports whether the DIIS error fell below Tol.
	Converged bool
}

// RHF runs the self-consistent-field loop for nOcc doubly occupied
// orbitals on the spec's synthetic integrals. The spec must carry no
// spatial symmetry (S == 1): symmetry-adapted SCF is out of scope.
func RHF(sp chem.Spec, nOcc int, opt Options) (Result, error) {
	n := sp.N
	if sp.S != 1 {
		return Result{}, fmt.Errorf("scf: spatial symmetry order %d not supported (use s = 1)", sp.S)
	}
	if nOcc <= 0 || nOcc >= n {
		return Result{}, fmt.Errorf("scf: occupied count %d out of (0, %d)", nOcc, n)
	}
	opt = opt.withDefaults()

	h := sp.CoreHamiltonian()

	// Initial guess: the core Hamiltonian's own eigenvectors.
	_, c0, err := linalg.EigSym(h, n)
	if err != nil {
		return Result{}, fmt.Errorf("scf: core guess: %w", err)
	}
	d := density(c0, n, nOcc)

	diis := newDIIS(n, opt.DIISDepth)
	var res Result
	for iter := 1; iter <= opt.MaxIter; iter++ {
		f := fock(sp, h, d, opt.Coupling)

		// DIIS error: the commutator [F, D] (S = I), zero at
		// self-consistency.
		e := commutator(f, d, n)
		errNorm := maxAbs(e)
		fUse, derr := diis.mix(f, e)
		if derr != nil {
			fUse = f // fall back to the raw Fock on a singular system
		}

		vals, c, err := linalg.EigSym(fUse, n)
		if err != nil {
			return Result{}, fmt.Errorf("scf: iteration %d: %w", iter, err)
		}
		d = density(c, n, nOcc)

		res.Iterations = iter
		res.OrbitalEnergies = vals
		res.Energy = electronicEnergy(h, f, d, n)
		res.B = make([]float64, n*n)
		for ao := 0; ao < n; ao++ {
			for mo := 0; mo < n; mo++ {
				res.B[mo*n+ao] = c[ao*n+mo]
			}
		}
		if errNorm < opt.Tol {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// density builds D = C_occ C_occ^T from eigenvector columns.
func density(c []float64, n, nOcc int) []float64 {
	d := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for s := 0; s < n; s++ {
			var v float64
			for k := 0; k < nOcc; k++ {
				v += c[r*n+k] * c[s*n+k]
			}
			d[r*n+s] = v
		}
	}
	return d
}

// fock builds F = H + lambda * sum_rs D_rs [2 (pq|rs) - (pr|qs)].
func fock(sp chem.Spec, h, d []float64, lambda float64) []float64 {
	n := sp.N
	f := make([]float64, n*n)
	copy(f, h)
	for p := 0; p < n; p++ {
		for q := p; q < n; q++ {
			var g float64
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					drs := d[r*n+s]
					if drs == 0 {
						continue
					}
					g += drs * (2*sp.ComputeA(p, q, r, s) - sp.ComputeA(p, r, q, s))
				}
			}
			f[p*n+q] += lambda * g
			if p != q {
				f[q*n+p] += lambda * g
			}
		}
	}
	return f
}

// electronicEnergy is sum_rs D_sr (H_rs + F_rs).
func electronicEnergy(h, f, d []float64, n int) float64 {
	var e float64
	for r := 0; r < n; r++ {
		for s := 0; s < n; s++ {
			e += d[s*n+r] * (h[r*n+s] + f[r*n+s])
		}
	}
	return e
}

// commutator returns F D - D F.
func commutator(f, d []float64, n int) []float64 {
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var fd, df float64
			for k := 0; k < n; k++ {
				fd += f[i*n+k] * d[k*n+j]
				df += d[i*n+k] * f[k*n+j]
			}
			out[i*n+j] = fd - df
		}
	}
	return out
}

func maxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// diisState is Pulay's direct inversion in the iterative subspace: keep
// the last few (Fock, error) pairs and extrapolate the Fock matrix whose
// combined error is minimal.
type diisState struct {
	n, depth int
	focks    [][]float64
	errs     [][]float64
}

func newDIIS(n, depth int) *diisState { return &diisState{n: n, depth: depth} }

func (ds *diisState) mix(f, e []float64) ([]float64, error) {
	fc := make([]float64, len(f))
	copy(fc, f)
	ec := make([]float64, len(e))
	copy(ec, e)
	ds.focks = append(ds.focks, fc)
	ds.errs = append(ds.errs, ec)
	if len(ds.focks) > ds.depth {
		ds.focks = ds.focks[1:]
		ds.errs = ds.errs[1:]
	}
	m := len(ds.focks)
	if m < 2 {
		return f, nil
	}
	// Lagrangian system: [B 1; 1 0] [c; l] = [0; 1] with
	// B_ij = <e_i, e_j>.
	dim := m + 1
	a := make([]float64, dim*dim)
	b := make([]float64, dim)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			var dot float64
			for k := range ds.errs[i] {
				dot += ds.errs[i][k] * ds.errs[j][k]
			}
			a[i*dim+j] = dot
		}
		a[i*dim+m] = 1
		a[m*dim+i] = 1
	}
	b[m] = 1
	coef, err := linalg.SolveLinear(a, b, dim)
	if err != nil {
		return nil, err
	}
	out := make([]float64, ds.n*ds.n)
	for i := 0; i < m; i++ {
		ci := coef[i]
		for k := range out {
			out[k] += ci * ds.focks[i][k]
		}
	}
	return out, nil
}
