package linalg

import (
	"fmt"
	"math"
)

// SolveLinear solves the n x n system a x = b by Gaussian elimination
// with partial pivoting. a and b are not modified.
func SolveLinear(a []float64, b []float64, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: non-positive order %d", n)
	}
	if len(a) < n*n || len(b) < n {
		return nil, fmt.Errorf("linalg: short operands (%d, %d) for order %d", len(a), len(b), n)
	}
	m := make([]float64, n*n)
	copy(m, a[:n*n])
	x := make([]float64, n)
	copy(x, b[:n])

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, best := col, math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r*n+col]); v > best {
				piv, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("linalg: singular system at column %d", col)
		}
		if piv != col {
			for c := 0; c < n; c++ {
				m[col*n+c], m[piv*n+c] = m[piv*n+c], m[col*n+c]
			}
			x[col], x[piv] = x[piv], x[col]
		}
		// Eliminate below.
		inv := 1 / m[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r*n+c] -= f * m[col*n+c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m[r*n+c] * x[c]
		}
		x[r] = s / m[r*n+r]
	}
	return x, nil
}
