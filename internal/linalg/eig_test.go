package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigSymDiagonal(t *testing.T) {
	a := []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	}
	vals, v, err := EigSym(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	// Eigenvectors are permuted unit vectors.
	for col := 0; col < 3; col++ {
		var norm float64
		for r := 0; r < 3; r++ {
			norm += v[r*3+col] * v[r*3+col]
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Errorf("column %d not unit norm: %v", col, norm)
		}
	}
}

func TestEigSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	vals, _, err := EigSym([]float64{2, 1, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Errorf("vals = %v, want [1 3]", vals)
	}
}

func checkEig(t *testing.T, a []float64, n int) {
	t.Helper()
	vals, v, err := EigSym(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// Ascending order.
	for i := 1; i < n; i++ {
		if vals[i] < vals[i-1] {
			t.Fatalf("eigenvalues not ascending: %v", vals)
		}
	}
	// Residuals A v_k = lambda_k v_k and orthonormality.
	for k := 0; k < n; k++ {
		x := make([]float64, n)
		for r := 0; r < n; r++ {
			x[r] = v[r*n+k]
		}
		ax := MatVec(a, x, n)
		for r := 0; r < n; r++ {
			if math.Abs(ax[r]-vals[k]*x[r]) > 1e-8 {
				t.Fatalf("residual %v at (%d,%d)", ax[r]-vals[k]*x[r], r, k)
			}
		}
	}
	for k := 0; k < n; k++ {
		for l := k; l < n; l++ {
			var dot float64
			for r := 0; r < n; r++ {
				dot += v[r*n+k] * v[r*n+l]
			}
			want := 0.0
			if k == l {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("columns %d,%d not orthonormal: %v", k, l, dot)
			}
		}
	}
}

func TestEigSymRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 12, 30} {
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				x := rng.NormFloat64()
				a[i*n+j], a[j*n+i] = x, x
			}
		}
		checkEig(t, a, n)
	}
}

func TestEigSymTraceInvariant(t *testing.T) {
	// Sum of eigenvalues equals the trace.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := make([]float64, n*n)
		var trace float64
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				x := rng.NormFloat64()
				a[i*n+j], a[j*n+i] = x, x
			}
			trace += a[i*n+i]
		}
		vals, _, err := EigSym(a, n)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-trace) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEigSymErrors(t *testing.T) {
	if _, _, err := EigSym(nil, 0); err == nil {
		t.Error("n = 0 should error")
	}
	if _, _, err := EigSym([]float64{1}, 2); err == nil {
		t.Error("short slice should error")
	}
}

func TestMatVec(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	y := MatVec(a, []float64{1, 1}, 2)
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MatVec = %v", y)
	}
}

func TestSolveLinear(t *testing.T) {
	// 2x + y = 5; x - y = 1 -> x = 2, y = 1.
	x, err := SolveLinear([]float64{2, 1, 1, -1}, []float64{5, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Errorf("solution = %v, want [2 1]", x)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	x, err := SolveLinear([]float64{0, 1, 1, 0}, []float64{3, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Errorf("solution = %v, want [7 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	if _, err := SolveLinear([]float64{1, 2, 2, 4}, []float64{1, 2}, 2); err == nil {
		t.Error("singular system should error")
	}
	if _, err := SolveLinear(nil, nil, 0); err == nil {
		t.Error("order 0 should error")
	}
}

func TestSolveLinearRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := make([]float64, n*n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b, n)
		if err != nil {
			continue // unlucky singular draw
		}
		ax := MatVec(a, x, n)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("residual %v", ax[i]-b[i])
			}
		}
	}
}
