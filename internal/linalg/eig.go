// Package linalg provides the dense symmetric eigensolver the SCF
// substrate needs: a cyclic Jacobi diagonalisation, pure Go, adequate
// for the O(n^3)-per-sweep sizes the self-consistent-field loop
// produces (n up to a few hundred).
package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigSym diagonalises the symmetric n x n row-major matrix a (which is
// not modified): it returns the eigenvalues in ascending order and the
// corresponding orthonormal eigenvectors as the COLUMNS of the returned
// row-major matrix v, i.e. a . v[:,k] = vals[k] v[:,k].
func EigSym(a []float64, n int) (vals []float64, v []float64, err error) {
	if n <= 0 {
		return nil, nil, fmt.Errorf("linalg: non-positive order %d", n)
	}
	if len(a) < n*n {
		return nil, nil, fmt.Errorf("linalg: matrix slice %d < %d", len(a), n*n)
	}
	const (
		maxSweeps = 64
		tol       = 1e-13
	)
	// Working copy and accumulated rotations.
	w := make([]float64, n*n)
	copy(w, a[:n*n])
	// Symmetrise defensively (average off-diagonal pairs).
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := 0.5 * (w[i*n+j] + w[j*n+i])
			w[i*n+j], w[j*n+i] = m, m
		}
	}
	v = make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}

	offNorm := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w[i*n+j] * w[i*n+j]
			}
		}
		return math.Sqrt(2 * s)
	}
	scale := 0.0
	for i := 0; i < n*n; i++ {
		if x := math.Abs(w[i]); x > scale {
			scale = x
		}
	}
	if scale == 0 {
		scale = 1
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offNorm() <= tol*scale*float64(n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w[p*n+q]
				if math.Abs(apq) <= tol*scale {
					continue
				}
				app, aqq := w[p*n+p], w[q*n+q]
				// Rotation angle.
				theta := 0.5 * (aqq - app) / apq
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// Apply the rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					akp, akq := w[k*n+p], w[k*n+q]
					w[k*n+p] = c*akp - s*akq
					w[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := w[p*n+k], w[q*n+k]
					w[p*n+k] = c*apk - s*aqk
					w[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors (columns).
				for k := 0; k < n; k++ {
					vkp, vkq := v[k*n+p], v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	if offNorm() > 1e-8*scale*float64(n) {
		return nil, nil, fmt.Errorf("linalg: Jacobi did not converge (off-norm %g)", offNorm())
	}

	// Extract, sort ascending, and permute the eigenvector columns.
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w[i*n+i]
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return vals[perm[i]] < vals[perm[j]] })
	sortedVals := make([]float64, n)
	sortedV := make([]float64, n*n)
	for newCol, oldCol := range perm {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedV[r*n+newCol] = v[r*n+oldCol]
		}
	}
	return sortedVals, sortedV, nil
}

// MatVec computes y = A x for a row-major n x n matrix.
func MatVec(a []float64, x []float64, n int) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		row := a[i*n : (i+1)*n]
		for j, v := range x {
			s += row[j] * v
		}
		y[i] = s
	}
	return y
}
