package cluster

import (
	"strings"
	"testing"
)

func TestPaperSystems(t *testing.T) {
	a, b, c := SystemA(), SystemB(), SystemC()
	if a.MemPerNodeBytes != 24<<30 {
		t.Errorf("System A memory/node = %d, want 24 GiB", a.MemPerNodeBytes)
	}
	if b.MemPerNodeBytes != 512<<30 || b.Nodes != 18 {
		t.Errorf("System B = %+v, want 18 nodes x 512 GiB", b)
	}
	if c.MemPerNodeBytes != 128<<30 || c.Nodes != 1440 {
		t.Errorf("System C = %+v, want 1440 nodes x 128 GiB", c)
	}
	if a.CoresPerNode != 8 || b.CoresPerNode != 28 || c.CoresPerNode != 16 {
		t.Error("core counts do not match the paper's CPU descriptions")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"SystemA", "A", "a", "SystemB", "B", "SystemC", "c"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("SystemD"); err == nil {
		t.Error("unknown system should error")
	}
}

func TestAggregateMem(t *testing.T) {
	b := SystemB()
	// Paper Section 8: System B's 18 x 512 GB nodes hold < 9 TB but the
	// Shell-Mixed unfused transform needs > 12 TB.
	total := b.AggregateMemBytes(0)
	if total != 18*512<<30 {
		t.Errorf("aggregate = %d", total)
	}
	if float64(total) > 12.1e12 {
		t.Errorf("System B aggregate %.3g B should be below the 12.1 TB unfused requirement", float64(total))
	}
	if got := b.AggregateMemBytes(5); got != 5*512<<30 {
		t.Errorf("5-node aggregate = %d", got)
	}
	if got := b.AggregateMemBytes(99); got != total {
		t.Error("node count above cluster size should clamp")
	}
}

func TestConfigure(t *testing.T) {
	r, err := SystemB().Configure(140, 28)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodesUsed != 5 || r.CoresPerRank != 1 {
		t.Errorf("run = %+v, want 5 nodes, 1 core/rank", r)
	}
	// System C with 4 ranks/node: 512 ranks -> 128 nodes, 4 cores/rank.
	rc, err := SystemC().Configure(512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rc.NodesUsed != 128 || rc.CoresPerRank != 4 {
		t.Errorf("run = %+v, want 128 nodes, 4 cores/rank", rc)
	}
}

func TestConfigureErrors(t *testing.T) {
	if _, err := SystemB().Configure(0, 1); err == nil {
		t.Error("zero ranks should error")
	}
	// System B has 18 nodes * 28 cores = 504 max ranks at 28/node.
	if _, err := SystemB().Configure(505, 28); err == nil {
		t.Error("rank count above cluster capacity should error")
	}
	// ranksPerNode above core count clamps to core count.
	r, err := SystemB().Configure(28, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.RanksPerNode != 28 {
		t.Errorf("RanksPerNode = %d, want clamped 28", r.RanksPerNode)
	}
}

func TestRates(t *testing.T) {
	r, _ := SystemB().Configure(56, 28)
	if r.FlopsPerSecPerRank() <= 0 || r.NetBytesPerSecPerRank() <= 0 || r.MemBytesPerSecPerRank() <= 0 {
		t.Error("per-rank rates must be positive")
	}
	if r.MemBytesPerRank() != (512<<30)/28 {
		t.Errorf("memory/rank = %d", r.MemBytesPerRank())
	}
	if r.AggregateMemBytes() != 2*512<<30 {
		t.Errorf("aggregate for 2 nodes = %d", r.AggregateMemBytes())
	}
	if r.ComputeSeconds(0) != 0 {
		t.Error("zero flops should take zero time")
	}
	t1 := r.ComputeSeconds(1e12)
	t2 := r.ComputeSeconds(2e12)
	if t2 <= t1 {
		t.Error("compute time must grow with flops")
	}
	if r.RemoteSeconds(0) != r.Machine.NetLatencySec {
		t.Error("empty remote message should cost exactly latency")
	}
	if r.LocalSeconds(1<<20) >= r.RemoteSeconds(1<<20) {
		t.Error("local copies should be faster than remote transfers")
	}
	if !strings.Contains(r.String(), "SystemB") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestMoreCoresPerRankIsFaster(t *testing.T) {
	dense, _ := SystemC().Configure(16, 16) // 1 core per rank
	sparse, _ := SystemC().Configure(4, 4)  // 4 cores per rank
	if sparse.FlopsPerSecPerRank() <= dense.FlopsPerSecPerRank() {
		t.Error("ranks with more cores must have higher flop rates")
	}
}

func TestDiskSeconds(t *testing.T) {
	r, _ := SystemB().Configure(504, 28)
	// Collective disk bandwidth is shared: more ranks, slower each.
	r2, _ := SystemB().Configure(56, 28)
	if r.DiskSeconds(1<<30) <= r2.DiskSeconds(1<<30) {
		t.Error("per-rank disk time must grow with rank count")
	}
	// Disk is far slower than the network for the same bytes.
	if r.DiskSeconds(1<<30) <= r.RemoteSeconds(1<<30) {
		t.Error("disk should be slower than the network")
	}
}
