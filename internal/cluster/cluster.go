// Package cluster describes distributed-memory machines and provides the
// analytic cost model used to simulate the paper's three evaluation
// platforms (Section 8):
//
//	System A: small Infiniband cluster, 2x4-core 2.53 GHz Xeon E5630,
//	          24 GB/node, QDR Infiniband (40 Gb/s).
//	System B: 18 large-memory nodes, 2x14-core 2.4 GHz Xeon E5-2680v4,
//	          512 GB/node.
//	System C: large supercomputer, dual-socket 8-core 2.6 GHz Xeon
//	          E5-2670, 128 GB/node, FDR Infiniband (14 Gb/s per the
//	          paper's text).
//
// A Run binds a machine to a rank count and derives per-rank resources
// (cores, memory share, network share). The cost model charges each rank
// flop time and communication time (latency + volume/bandwidth) and takes
// the maximum across ranks at barriers, which is how load imbalance shows
// up in simulated wall time.
package cluster

import "fmt"

// Machine is a homogeneous distributed-memory cluster description.
type Machine struct {
	Name            string
	Nodes           int     // nodes available
	CoresPerNode    int     // physical cores per node
	GHz             float64 // nominal core clock
	FlopsPerCycle   float64 // sustained DGEMM flops per cycle per core
	MemPerNodeBytes int64   // physical memory per node
	NetBytesPerSec  float64 // injection bandwidth per node
	NetLatencySec   float64 // per-message network latency
	MemBytesPerSec  float64 // local memory bandwidth per node
	// DiskBytesPerSec is the cluster-wide collective bandwidth to the
	// parallel file system — shared by every rank, and very low
	// relative to memory (the Section 3 motivation for zero-spill
	// schedules).
	DiskBytesPerSec float64
}

// SystemA returns the paper's System A.
func SystemA() Machine {
	return Machine{
		Name:            "SystemA",
		Nodes:           64,
		CoresPerNode:    8, // two 4-core E5630
		GHz:             2.53,
		FlopsPerCycle:   2.0, // conservative sustained DGEMM rate, SSE era
		MemPerNodeBytes: 24 << 30,
		NetBytesPerSec:  40e9 / 8 * 0.8, // QDR 40 Gb/s, 80% efficiency
		NetLatencySec:   2e-6,
		MemBytesPerSec:  20e9,
		DiskBytesPerSec: 1e9, // small-cluster shared NFS/Lustre
	}
}

// SystemB returns the paper's System B.
func SystemB() Machine {
	return Machine{
		Name:            "SystemB",
		Nodes:           18,
		CoresPerNode:    28, // two 14-core E5-2680v4
		GHz:             2.4,
		FlopsPerCycle:   4.0, // AVX2 FMA era, conservative sustained
		MemPerNodeBytes: 512 << 30,
		NetBytesPerSec:  56e9 / 8 * 0.8,
		NetLatencySec:   1.5e-6,
		MemBytesPerSec:  60e9,
		DiskBytesPerSec: 4e9,
	}
}

// SystemC returns the paper's System C.
func SystemC() Machine {
	return Machine{
		Name:            "SystemC",
		Nodes:           1440,
		CoresPerNode:    16, // dual-socket 8-core E5-2670
		GHz:             2.6,
		FlopsPerCycle:   3.0,
		MemPerNodeBytes: 128 << 30,
		NetBytesPerSec:  14e9 / 8 * 0.8, // FDR quoted at 14 Gb/s in the paper
		NetLatencySec:   1.5e-6,
		MemBytesPerSec:  40e9,
		DiskBytesPerSec: 30e9,
	}
}

// ByName returns one of the three paper systems.
func ByName(name string) (Machine, error) {
	switch name {
	case "SystemA", "A", "a":
		return SystemA(), nil
	case "SystemB", "B", "b":
		return SystemB(), nil
	case "SystemC", "C", "c":
		return SystemC(), nil
	}
	return Machine{}, fmt.Errorf("cluster: unknown machine %q", name)
}

// AggregateMemBytes returns total cluster memory over nodes nodes (or all
// nodes when nodes <= 0).
func (m Machine) AggregateMemBytes(nodes int) int64 {
	if nodes <= 0 || nodes > m.Nodes {
		nodes = m.Nodes
	}
	return int64(nodes) * m.MemPerNodeBytes
}

// Run binds a machine to a specific rank layout for one experiment.
type Run struct {
	Machine      Machine
	Ranks        int // total parallel processes
	RanksPerNode int
	CoresPerRank int
	NodesUsed    int
}

// Configure lays out totalCores worth of parallelism as ranks. Following
// the paper's convention, "cores" counts map 1:1 to ranks unless
// ranksPerNode caps density (System C runs used "4 ranks per node");
// remaining node cores are attributed to the rank's compute rate.
func (m Machine) Configure(ranks, ranksPerNode int) (Run, error) {
	if ranks <= 0 {
		return Run{}, fmt.Errorf("cluster: non-positive rank count %d", ranks)
	}
	if ranksPerNode <= 0 || ranksPerNode > m.CoresPerNode {
		ranksPerNode = m.CoresPerNode
	}
	nodes := (ranks + ranksPerNode - 1) / ranksPerNode
	if nodes > m.Nodes {
		return Run{}, fmt.Errorf("cluster: %s has %d nodes, need %d for %d ranks at %d/node",
			m.Name, m.Nodes, nodes, ranks, ranksPerNode)
	}
	return Run{
		Machine:      m,
		Ranks:        ranks,
		RanksPerNode: ranksPerNode,
		CoresPerRank: m.CoresPerNode / ranksPerNode,
		NodesUsed:    nodes,
	}, nil
}

// FlopsPerSecPerRank returns the sustained flop rate attributed to one rank.
func (r Run) FlopsPerSecPerRank() float64 {
	return float64(r.CoresPerRank) * r.Machine.GHz * 1e9 * r.Machine.FlopsPerCycle
}

// NetBytesPerSecPerRank returns the network bandwidth share of one rank.
func (r Run) NetBytesPerSecPerRank() float64 {
	return r.Machine.NetBytesPerSec / float64(r.RanksPerNode)
}

// MemBytesPerSecPerRank returns the local-memory bandwidth share of one rank.
func (r Run) MemBytesPerSecPerRank() float64 {
	return r.Machine.MemBytesPerSec / float64(r.RanksPerNode)
}

// MemBytesPerRank returns the physical memory share of one rank.
func (r Run) MemBytesPerRank() int64 {
	return r.Machine.MemPerNodeBytes / int64(r.RanksPerNode)
}

// AggregateMemBytes returns the aggregate physical memory of the nodes
// this run occupies — the "fast memory" of the disk<->global level.
func (r Run) AggregateMemBytes() int64 {
	return int64(r.NodesUsed) * r.Machine.MemPerNodeBytes
}

// ComputeSeconds returns the time one rank needs for the given flops.
func (r Run) ComputeSeconds(flops int64) float64 {
	return float64(flops) / r.FlopsPerSecPerRank()
}

// RemoteSeconds returns the time for one remote transfer of the given bytes.
func (r Run) RemoteSeconds(bytes int64) float64 {
	return r.Machine.NetLatencySec + float64(bytes)/r.NetBytesPerSecPerRank()
}

// LocalSeconds returns the time for one local-memory transfer.
func (r Run) LocalSeconds(bytes int64) float64 {
	return float64(bytes) / r.MemBytesPerSecPerRank()
}

// DiskSeconds returns the time for one file-system transfer. The
// collective file-system bandwidth is shared across all ranks of the
// run, which is what makes spilling so costly at scale.
func (r Run) DiskSeconds(bytes int64) float64 {
	per := r.Machine.DiskBytesPerSec / float64(r.Ranks)
	return 1e-3 + float64(bytes)/per // ~1 ms per I/O operation
}

// String summarises the run layout.
func (r Run) String() string {
	return fmt.Sprintf("%s ranks=%d (%d/node, %d nodes, %d cores/rank)",
		r.Machine.Name, r.Ranks, r.RanksPerNode, r.NodesUsed, r.CoresPerRank)
}
