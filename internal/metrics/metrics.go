// Package metrics provides thread-safe counters for the quantities the
// paper's analysis reasons about: floating-point operations, bytes moved
// between levels of the memory hierarchy, and memory high-water marks.
//
// Two memory-hierarchy levels matter for the four-index transform
// (Section 3 of the paper):
//
//   - LevelDisk: disk (slow) <-> aggregate global memory (fast),
//   - LevelGlobal: global memory (slow) <-> process-local memory (fast).
//
// Counters are deliberately simple monotonic accumulators so that a
// schedule executed in "cost mode" (no real arithmetic) and in "execute
// mode" (real doubles) report identical data-movement numbers.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Level identifies a boundary in the two-level memory hierarchy
// abstraction used throughout the paper.
type Level int

const (
	// LevelDisk is the disk <-> aggregate-global-memory boundary.
	LevelDisk Level = iota
	// LevelGlobal is the global-memory <-> local-memory boundary,
	// i.e. inter-node communication in a distributed system.
	LevelGlobal
	// LevelIntra records get/put traffic whose source and destination
	// live on the same node (a local copy, not communication). It is
	// kept separate so that LevelGlobal counts true inter-node volume
	// while LevelGlobal+LevelIntra gives the two-level-model I/O that
	// the paper's bounds are stated in.
	LevelIntra
	numLevels
)

// String returns a short human-readable name for the level.
func (l Level) String() string {
	switch l {
	case LevelDisk:
		return "disk<->global"
	case LevelGlobal:
		return "global<->local"
	case LevelIntra:
		return "intra-node"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Counters accumulates flop and data-movement totals. The zero value is
// ready to use. All methods are safe for concurrent use.
type Counters struct {
	flops atomic.Int64

	loads  [numLevels]atomic.Int64 // elements moved fast-ward
	stores [numLevels]atomic.Int64 // elements moved slow-ward
	msgs   [numLevels]atomic.Int64 // discrete transfer operations

	retries atomic.Int64 // fault-injection retries absorbed by backoff

	mu      sync.Mutex
	current int64 // currently allocated elements (ledger)
	peak    int64 // high-water mark of current
}

// AddFlops records n floating-point operations.
func (c *Counters) AddFlops(n int64) { c.flops.Add(n) }

// Flops returns the total recorded floating-point operations.
func (c *Counters) Flops() int64 { return c.flops.Load() }

// AddLoad records a transfer of n elements from the slow side to the
// fast side of level l, as one message.
func (c *Counters) AddLoad(l Level, n int64) {
	c.loads[l].Add(n)
	c.msgs[l].Add(1)
}

// AddStore records a transfer of n elements from the fast side to the
// slow side of level l, as one message.
func (c *Counters) AddStore(l Level, n int64) {
	c.stores[l].Add(n)
	c.msgs[l].Add(1)
}

// Loads returns the elements loaded (slow -> fast) across level l.
func (c *Counters) Loads(l Level) int64 { return c.loads[l].Load() }

// Stores returns the elements stored (fast -> slow) across level l.
func (c *Counters) Stores(l Level) int64 { return c.stores[l].Load() }

// Traffic returns total elements moved in both directions across level l.
func (c *Counters) Traffic(l Level) int64 {
	return c.loads[l].Load() + c.stores[l].Load()
}

// Messages returns the number of discrete transfers across level l.
func (c *Counters) Messages(l Level) int64 { return c.msgs[l].Load() }

// AddRetry records one retried operation: a transient injected fault
// absorbed by the runtime's retry-with-backoff path.
func (c *Counters) AddRetry() { c.retries.Add(1) }

// Retries returns the total operations retried after transient faults.
func (c *Counters) Retries() int64 { return c.retries.Load() }

// Alloc records an allocation of n elements in the tracked memory and
// updates the high-water mark.
func (c *Counters) Alloc(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.current += n
	if c.current > c.peak {
		c.peak = c.current
	}
}

// Free records a release of n elements. It panics if the ledger would go
// negative, which always indicates a double-free bug in a schedule.
func (c *Counters) Free(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.current -= n
	if c.current < 0 {
		panic(fmt.Sprintf("metrics: memory ledger negative (%d after freeing %d)", c.current, n))
	}
}

// Current returns the currently allocated elements.
func (c *Counters) Current() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// Peak returns the high-water mark of allocated elements.
func (c *Counters) Peak() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.flops.Store(0)
	c.retries.Store(0)
	for i := range c.loads {
		c.loads[i].Store(0)
		c.stores[i].Store(0)
		c.msgs[i].Store(0)
	}
	c.mu.Lock()
	c.current = 0
	c.peak = 0
	c.mu.Unlock()
}

// Snapshot is an immutable copy of a Counters state.
type Snapshot struct {
	Flops        int64
	DiskTraffic  int64
	CommTraffic  int64
	DiskMessages int64
	CommMessages int64
	PeakElements int64
	Retries      int64
}

// Snapshot captures the current totals.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Flops:        c.Flops(),
		DiskTraffic:  c.Traffic(LevelDisk),
		CommTraffic:  c.Traffic(LevelGlobal),
		DiskMessages: c.Messages(LevelDisk),
		CommMessages: c.Messages(LevelGlobal),
		PeakElements: c.Peak(),
		Retries:      c.Retries(),
	}
}

// String formats the snapshot compactly.
func (s Snapshot) String() string {
	return fmt.Sprintf("flops=%d disk=%d comm=%d peak=%d", s.Flops, s.DiskTraffic, s.CommTraffic, s.PeakElements)
}
