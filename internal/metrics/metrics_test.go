package metrics

import (
	"sync"
	"testing"
)

func TestFlops(t *testing.T) {
	var c Counters
	c.AddFlops(10)
	c.AddFlops(32)
	if got := c.Flops(); got != 42 {
		t.Errorf("Flops() = %d, want 42", got)
	}
}

func TestLoadsStoresPerLevel(t *testing.T) {
	var c Counters
	c.AddLoad(LevelDisk, 100)
	c.AddLoad(LevelDisk, 50)
	c.AddStore(LevelDisk, 25)
	c.AddLoad(LevelGlobal, 7)

	if got := c.Loads(LevelDisk); got != 150 {
		t.Errorf("Loads(disk) = %d, want 150", got)
	}
	if got := c.Stores(LevelDisk); got != 25 {
		t.Errorf("Stores(disk) = %d, want 25", got)
	}
	if got := c.Traffic(LevelDisk); got != 175 {
		t.Errorf("Traffic(disk) = %d, want 175", got)
	}
	if got := c.Traffic(LevelGlobal); got != 7 {
		t.Errorf("Traffic(global) = %d, want 7", got)
	}
	if got := c.Messages(LevelDisk); got != 3 {
		t.Errorf("Messages(disk) = %d, want 3", got)
	}
	if got := c.Messages(LevelGlobal); got != 1 {
		t.Errorf("Messages(global) = %d, want 1", got)
	}
}

func TestMemoryLedgerPeak(t *testing.T) {
	var c Counters
	c.Alloc(100)
	c.Alloc(200)
	c.Free(150)
	c.Alloc(50)
	if got := c.Current(); got != 200 {
		t.Errorf("Current() = %d, want 200", got)
	}
	if got := c.Peak(); got != 300 {
		t.Errorf("Peak() = %d, want 300", got)
	}
}

func TestFreeNegativePanics(t *testing.T) {
	var c Counters
	c.Alloc(5)
	defer func() {
		if recover() == nil {
			t.Error("Free below zero did not panic")
		}
	}()
	c.Free(6)
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddFlops(5)
	c.AddLoad(LevelDisk, 5)
	c.Alloc(5)
	c.Reset()
	if c.Flops() != 0 || c.Traffic(LevelDisk) != 0 || c.Peak() != 0 || c.Current() != 0 {
		t.Errorf("Reset left state: %+v", c.Snapshot())
	}
}

func TestConcurrentCounting(t *testing.T) {
	var c Counters
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddFlops(1)
				c.AddLoad(LevelGlobal, 2)
				c.Alloc(1)
				c.Free(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Flops(); got != workers*per {
		t.Errorf("Flops() = %d, want %d", got, workers*per)
	}
	if got := c.Loads(LevelGlobal); got != 2*workers*per {
		t.Errorf("Loads = %d, want %d", got, 2*workers*per)
	}
	if got := c.Current(); got != 0 {
		t.Errorf("Current() = %d, want 0", got)
	}
}

func TestLevelString(t *testing.T) {
	if LevelDisk.String() != "disk<->global" {
		t.Errorf("LevelDisk.String() = %q", LevelDisk.String())
	}
	if LevelGlobal.String() != "global<->local" {
		t.Errorf("LevelGlobal.String() = %q", LevelGlobal.String())
	}
	if Level(9).String() != "Level(9)" {
		t.Errorf("Level(9).String() = %q", Level(9).String())
	}
}

func TestSnapshot(t *testing.T) {
	var c Counters
	c.AddFlops(3)
	c.AddLoad(LevelDisk, 10)
	c.AddStore(LevelGlobal, 4)
	c.Alloc(77)
	s := c.Snapshot()
	if s.Flops != 3 || s.DiskTraffic != 10 || s.CommTraffic != 4 || s.PeakElements != 77 {
		t.Errorf("Snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Error("Snapshot.String() empty")
	}
}
