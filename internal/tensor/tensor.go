// Package tensor implements dense row-major multidimensional arrays of
// float64 together with the small set of manipulation utilities the
// four-index transform needs: element access, fixing indices to obtain
// views, filling, and numeric comparison.
//
// The package intentionally stays away from any symmetry handling; packed
// symmetric storage lives in package sym, and tiled/distributed storage in
// packages tile and ga. A Dense tensor is the "fully expanded" reference
// representation used for correctness checks.
package tensor

import (
	"fmt"
	"math"
)

// Dense is a dense row-major tensor. The last index varies fastest.
type Dense struct {
	shape  []int
	stride []int
	data   []float64
}

// New allocates a zeroed dense tensor with the given shape. Every extent
// must be positive.
func New(shape ...int) *Dense {
	t, err := tryNew(shape)
	if err != nil {
		panic(err)
	}
	return t
}

func tryNew(shape []int) (*Dense, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("tensor: empty shape")
	}
	size := 1
	for _, s := range shape {
		if s <= 0 {
			return nil, fmt.Errorf("tensor: non-positive extent %d in shape %v", s, shape)
		}
		if size > (1<<62)/s {
			return nil, fmt.Errorf("tensor: shape %v overflows", shape)
		}
		size *= s
	}
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Dense{shape: sh, stride: strides(sh), data: make([]float64, size)}, nil
}

// FromSlice wraps an existing backing slice as a tensor of the given
// shape. The slice length must match the shape's size exactly. The tensor
// aliases the slice; mutations are visible both ways.
func FromSlice(data []float64, shape ...int) *Dense {
	size := 1
	for _, s := range shape {
		size *= s
	}
	if size != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (size %d)", len(data), shape, size))
	}
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Dense{shape: sh, stride: strides(sh), data: data}
}

func strides(shape []int) []int {
	st := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= shape[i]
	}
	return st
}

// Rank returns the number of dimensions.
func (t *Dense) Rank() int { return len(t.shape) }

// Shape returns the extents. The returned slice must not be mutated.
func (t *Dense) Shape() []int { return t.shape }

// Dim returns the extent of dimension d.
func (t *Dense) Dim(d int) int { return t.shape[d] }

// Size returns the total number of elements.
func (t *Dense) Size() int { return len(t.data) }

// Data returns the backing slice in row-major order.
func (t *Dense) Data() []float64 { return t.data }

// offset computes the linear offset for a full index tuple.
func (t *Dense) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= t.shape[d] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", i, t.shape[d], d))
		}
		off += i * t.stride[d]
	}
	return off
}

// At returns the element at the given index tuple.
func (t *Dense) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given index tuple.
func (t *Dense) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Add accumulates v into the element at the given index tuple.
func (t *Dense) Add(v float64, idx ...int) { t.data[t.offset(idx)] += v }

// Zero resets every element to 0.
func (t *Dense) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to f(index...).
func (t *Dense) Fill(f func(idx []int) float64) {
	idx := make([]int, len(t.shape))
	for off := range t.data {
		t.data[off] = f(idx)
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < t.shape[d] {
				break
			}
			idx[d] = 0
		}
	}
}

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// SubLeading returns a view with the first dimension fixed to i. The view
// aliases the parent's storage.
func (t *Dense) SubLeading(i int) *Dense {
	if t.Rank() < 2 {
		panic("tensor: SubLeading requires rank >= 2")
	}
	if i < 0 || i >= t.shape[0] {
		panic(fmt.Sprintf("tensor: SubLeading index %d out of range [0,%d)", i, t.shape[0]))
	}
	block := t.stride[0]
	return &Dense{
		shape:  t.shape[1:],
		stride: t.stride[1:],
		data:   t.data[i*block : (i+1)*block],
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two same-shaped tensors.
func MaxAbsDiff(a, b *Dense) float64 {
	if !sameShape(a.shape, b.shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
	var m float64
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > m {
			m = d
		}
	}
	return m
}

// MaxAbs returns the largest absolute element.
func (t *Dense) MaxAbs() float64 {
	var m float64
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// EqualApprox reports whether the tensors agree elementwise within tol.
func EqualApprox(a, b *Dense, tol float64) bool {
	return sameShape(a.shape, b.shape) && MaxAbsDiff(a, b) <= tol
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
