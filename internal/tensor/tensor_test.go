package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	d := New(2, 3, 4)
	if d.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", d.Rank())
	}
	if d.Size() != 24 {
		t.Fatalf("Size = %d, want 24", d.Size())
	}
	if d.Dim(1) != 3 {
		t.Fatalf("Dim(1) = %d, want 3", d.Dim(1))
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRowMajorOrder(t *testing.T) {
	d := New(2, 3)
	d.Set(1.5, 1, 2)
	if got := d.At(1, 2); got != 1.5 {
		t.Errorf("At(1,2) = %v, want 1.5", got)
	}
	// Row-major: element (1,2) is at linear offset 1*3+2 = 5.
	if got := d.Data()[5]; got != 1.5 {
		t.Errorf("Data()[5] = %v, want 1.5", got)
	}
}

func TestAddAccumulates(t *testing.T) {
	d := New(2, 2)
	d.Add(1, 0, 1)
	d.Add(2.5, 0, 1)
	if got := d.At(0, 1); got != 3.5 {
		t.Errorf("At = %v, want 3.5", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(2, 2)
	cases := [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}}
	for _, idx := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%v) did not panic", idx)
				}
			}()
			d.At(idx...)
		}()
	}
}

func TestFromSlice(t *testing.T) {
	backing := []float64{1, 2, 3, 4, 5, 6}
	d := FromSlice(backing, 2, 3)
	if d.At(1, 0) != 4 {
		t.Errorf("At(1,0) = %v, want 4", d.At(1, 0))
	}
	d.Set(9, 0, 0)
	if backing[0] != 9 {
		t.Error("FromSlice does not alias the backing slice")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong size did not panic")
		}
	}()
	FromSlice(backing, 2, 2)
}

func TestFillVisitsEveryIndexOnce(t *testing.T) {
	d := New(3, 4, 2)
	count := 0
	d.Fill(func(idx []int) float64 {
		count++
		return float64(idx[0]*100 + idx[1]*10 + idx[2])
	})
	if count != d.Size() {
		t.Fatalf("Fill visited %d indices, want %d", count, d.Size())
	}
	if got := d.At(2, 3, 1); got != 231 {
		t.Errorf("At(2,3,1) = %v, want 231", got)
	}
	if got := d.At(0, 0, 0); got != 0 {
		t.Errorf("At(0,0,0) = %v, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := New(2, 2)
	d.Set(1, 0, 0)
	c := d.Clone()
	c.Set(5, 0, 0)
	if d.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSubLeadingViewAliases(t *testing.T) {
	d := New(3, 2, 2)
	d.Set(7, 1, 0, 1)
	v := d.SubLeading(1)
	if v.Rank() != 2 || v.Dim(0) != 2 {
		t.Fatalf("view shape = %v", v.Shape())
	}
	if got := v.At(0, 1); got != 7 {
		t.Errorf("view At(0,1) = %v, want 7", got)
	}
	v.Set(8, 1, 1)
	if d.At(1, 1, 1) != 8 {
		t.Error("view does not alias parent")
	}
}

func TestSubLeadingBounds(t *testing.T) {
	d := New(3, 2)
	defer func() {
		if recover() == nil {
			t.Error("SubLeading(3) did not panic")
		}
	}()
	d.SubLeading(3)
}

func TestZero(t *testing.T) {
	d := New(2, 2)
	d.Set(3, 1, 1)
	d.Zero()
	if d.MaxAbs() != 0 {
		t.Error("Zero left nonzero elements")
	}
}

func TestMaxAbsDiffAndEqualApprox(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	a.Set(1.0, 0, 1)
	b.Set(1.1, 0, 1)
	if d := MaxAbsDiff(a, b); d < 0.0999 || d > 0.1001 {
		t.Errorf("MaxAbsDiff = %v, want ~0.1", d)
	}
	if !EqualApprox(a, b, 0.2) {
		t.Error("EqualApprox(tol=0.2) = false")
	}
	if EqualApprox(a, b, 0.05) {
		t.Error("EqualApprox(tol=0.05) = true")
	}
	c := New(2, 3)
	if EqualApprox(a, c, 1e9) {
		t.Error("EqualApprox across shapes = true")
	}
}

func TestMaxAbsDiffShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxAbsDiff with shape mismatch did not panic")
		}
	}()
	MaxAbsDiff(New(2, 2), New(2, 3))
}

// Property: At(Set) round trip for random shapes/indices.
func TestQuickSetAtRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rank := 1 + r.Intn(4)
		shape := make([]int, rank)
		idx := make([]int, rank)
		for d := range shape {
			shape[d] = 1 + r.Intn(5)
			idx[d] = r.Intn(shape[d])
		}
		tt := New(shape...)
		v := r.NormFloat64()
		tt.Set(v, idx...)
		return tt.At(idx...) == v
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: linear offsets of distinct indices are distinct (bijectivity
// of the row-major layout).
func TestQuickLayoutBijective(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		shape := []int{1 + r.Intn(4), 1 + r.Intn(4), 1 + r.Intn(4)}
		tt := New(shape...)
		seen := make(map[int]bool)
		n := 0
		tt.Fill(func(idx []int) float64 {
			n++
			return float64(n)
		})
		for _, v := range tt.Data() {
			o := int(v)
			if seen[o] {
				return false
			}
			seen[o] = true
		}
		return len(seen) == tt.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
