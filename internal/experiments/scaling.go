package experiments

import (
	"fmt"

	"fourindex/internal/chem"
)

// Scaling runs a strong-scaling sweep: one molecule on one system across
// several core counts, hybrid vs NWChem Best at each. With constrained
// memory (the interesting regime) the usable aggregate is pinned to 0.80
// of the unfused requirement so the hybrid stays fused throughout;
// otherwise memory is ample and both sides run unfused.
func Scaling(molecule, system string, coreCounts []int, ranksPerNode int, constrained bool) ([]Outcome, error) {
	mol, err := chem.ByName(molecule)
	if err != nil {
		return nil, err
	}
	if len(coreCounts) == 0 {
		return nil, fmt.Errorf("experiments: no core counts given")
	}
	usable := calibrated(mol.Orbitals, !constrained, false)
	var outs []Outcome
	for _, cores := range coreCounts {
		pt := Point{
			Fig:          "scaling",
			Molecule:     molecule,
			System:       system,
			Cores:        cores,
			RanksPerNode: ranksPerNode,
			UsableBytes:  usable,
			PaperEqual:   !constrained,
		}
		o, err := RunPoint(pt)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling at %d cores: %w", cores, err)
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// ParallelEfficiency returns the strong-scaling efficiency of a sweep's
// hybrid times relative to its first point: t1*c1 / (tN*cN).
func ParallelEfficiency(outs []Outcome) []float64 {
	if len(outs) == 0 {
		return nil
	}
	base := outs[0].HybridKs * float64(outs[0].Cores)
	eff := make([]float64, len(outs))
	for i, o := range outs {
		if o.HybridKs > 0 {
			eff[i] = base / (o.HybridKs * float64(o.Cores))
		}
	}
	return eff
}
