package experiments

import (
	"testing"
)

// TestFullFigure2Conformance simulates every bar group of Figure 2 and
// asserts zero shape deviations from the paper's prose-stated outcomes.
// This is the repository's headline integration test (~2 minutes); skip
// it with -short.
func TestFullFigure2Conformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2 simulation (~2 min)")
	}
	outs, err := RunFigure("")
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 17 {
		t.Fatalf("simulated %d points, want 17", len(outs))
	}
	for _, o := range outs {
		if bad := CheckShape(o); len(bad) != 0 {
			t.Errorf("%s %s/%d: %v", o.Fig, o.System, o.Cores, bad)
		}
		t.Logf("%s %-11s %s/%-4d hybrid=%s(%v) nwchem=%s speedup=%.2f",
			o.Fig, o.Molecule, o.System, o.Cores,
			FormatKs(o.HybridKs, false), o.HybridScheme,
			FormatKs(o.NWChemKs, o.NWChemFailed), o.Speedup)
	}
}
