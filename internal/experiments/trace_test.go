package experiments

import (
	"testing"

	"fourindex/internal/fourindex"
	"fourindex/internal/trace"
)

// TestPointOptions checks the options builder the traced and untraced
// runners share.
func TestPointOptions(t *testing.T) {
	pts := Figure2()
	opt, err := PointOptions(pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if opt.Spec.N == 0 || opt.Procs != pts[0].Cores || opt.Run == nil {
		t.Errorf("incomplete options: n=%d procs=%d run=%v", opt.Spec.N, opt.Procs, opt.Run)
	}
	if opt.GlobalMemBytes != pts[0].UsableBytes {
		t.Errorf("GlobalMemBytes = %d, want calibrated %d", opt.GlobalMemBytes, pts[0].UsableBytes)
	}
	if opt.Trace != nil {
		t.Error("options builder must not attach a tracer")
	}
	if _, err := PointOptions(Point{Molecule: "no-such", System: "A", Cores: 1}); err == nil {
		t.Error("unknown molecule should error")
	}
}

// TestRunPointTraced simulates the smallest Figure 2 point with a tracer
// attached and checks the recording covers the hybrid run: a root span
// per attempt, bounded contraction phases that respect their lower
// bounds, and no spans from the untraced NWChem baselines.
func TestRunPointTraced(t *testing.T) {
	if testing.Short() {
		t.Skip("molecule-scale simulation")
	}
	pts := Figure2()
	tr := trace.New(1 << 12)
	o, err := RunPointTraced(pts[0], tr)
	if err != nil {
		t.Fatal(err)
	}
	if o.HybridScheme != fourindex.FullyFusedInner {
		t.Fatalf("hybrid chose %v, want fused (memory-constrained point)", o.HybridScheme)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("tracer recorded no spans")
	}
	sawRoot := false
	for _, sp := range spans {
		if sp.Depth == 0 && sp.Name == o.HybridScheme.String() {
			sawRoot = true
		}
		// The baselines run after the hybrid; had they been traced they
		// would carry higher run ids than the hybrid's spans.
		if sp.Name == "nwchem-fused12-34" {
			t.Error("NWChem baseline leaked into the trace")
		}
	}
	if !sawRoot {
		t.Errorf("no root span named %q", o.HybridScheme)
	}
	mol := mustOrbitals(t, pts[0].Molecule)
	rows := tr.Audit(mol, SpatialSymmetry, pts[0].UsableBytes/8/int64(pts[0].Cores))
	if len(rows) == 0 {
		t.Fatal("empty audit")
	}
	bounded := 0
	for _, r := range rows {
		if r.BoundElems == 0 {
			continue
		}
		bounded++
		if float64(r.ActualElems) < r.BoundElems {
			t.Errorf("%s: actual %d below bound %.6g", r.Phase, r.ActualElems, r.BoundElems)
		}
	}
	if bounded == 0 {
		t.Error("no bounded contraction phases in the audit")
	}
}

func mustOrbitals(t *testing.T, name string) int {
	t.Helper()
	opt, err := PointOptions(Point{Molecule: name, System: "A", Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	return opt.Spec.N
}
