package experiments

import (
	"fmt"
	"io"
	"time"

	"fourindex/internal/chem"
	"fourindex/internal/lb"
	"fourindex/internal/sym"
)

// WriteReport runs the full evaluation and writes a self-contained
// markdown report — Table 1, the capacity claims and all of Figure 2
// with paper-vs-measured columns — to w. It is the machinery behind
// `cmd/figures -report` and exists so that EXPERIMENTS.md-style tables
// can be regenerated from scratch on any machine.
func WriteReport(w io.Writer, now time.Time) error {
	fmt.Fprintf(w, "# Reproduction report\n\nGenerated %s by `cmd/figures -report`.\n\n",
		now.Format("2006-01-02 15:04:05 MST"))

	// Table 1.
	fmt.Fprintf(w, "## Table 1 — tensor sizes (n = 698, s = %d)\n\n", SpatialSymmetry)
	sz := sym.ExactSizes(698, SpatialSymmetry)
	paper := sym.PaperSizes(698, SpatialSymmetry)
	fmt.Fprintf(w, "| tensor | paper form | paper value | exact packed |\n|---|---|---|---|\n")
	for _, r := range []struct {
		name, form    string
		paperV, exact int64
	}{
		{"A", "n^4/4", paper.A, sz.A},
		{"O1", "n^4/2", paper.O1, sz.O1},
		{"O2", "n^4/4", paper.O2, sz.O2},
		{"O3", "n^4/2", paper.O3, sz.O3},
		{"C", "n^4/(4s)", paper.C, sz.C},
	} {
		fmt.Fprintf(w, "| %s | %s | %d | %d |\n", r.name, r.form, r.paperV, r.exact)
	}

	// Capacity claims.
	fmt.Fprintf(w, "\n## Section 8 memory requirements\n\n")
	fmt.Fprintf(w, "| molecule | orbitals | unfused requirement |\n|---|---|---|\n")
	for _, m := range chem.Catalog {
		fmt.Fprintf(w, "| %s | %d | %.2f TB |\n",
			m.Name, m.Orbitals, float64(m.UnfusedMemoryBytes())/1e12)
	}
	mol, _ := chem.ByName("Shell-Mixed")
	adv := lb.Advise(mol.Orbitals, SpatialSymmetry, int64(8.8e12))
	fmt.Fprintf(w, "\nHeadline: Shell-Mixed needs %.1f TB unfused; on 8.8 TB the advisor says %q",
		float64(mol.UnfusedMemoryBytes())/1e12, adv.Scheme)
	if adv.Scheme == "fused" {
		fmt.Fprintf(w, " (footprint %.2f TB, Tl = %d)", float64(adv.MemoryBytes)/1e12, adv.RequiredTileL)
	}
	fmt.Fprintf(w, ".\nFused flop overhead: %.3fx (paper: ~1.5x).\n", lb.FusedFlopOverhead(mol.Orbitals))

	// Figure 2.
	fmt.Fprintf(w, "\n## Figure 2 — simulated vs paper (kiloseconds)\n\n")
	fmt.Fprintf(w, "| fig | molecule | sys/cores | sim hybrid | scheme | sim NWChem | speedup | paper hybrid | paper NWChem | conforms |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|---|\n")
	outs, err := RunFigure("")
	if err != nil {
		return err
	}
	deviations := 0
	for _, o := range outs {
		conforms := "yes"
		if bad := CheckShape(o); len(bad) > 0 {
			conforms = fmt.Sprintf("NO: %v", bad)
			deviations++
		}
		spd := ""
		if o.Speedup > 0 {
			spd = fmt.Sprintf("%.2fx", o.Speedup)
		}
		fmt.Fprintf(w, "| %s | %s | %s/%d | %s | %v | %s | %s | %s | %s | %s |\n",
			o.Fig, o.Molecule, o.System, o.Cores,
			FormatKs(o.HybridKs, false), o.HybridScheme,
			FormatKs(o.NWChemKs, o.NWChemFailed), spd,
			FormatKs(o.PaperHybridKs, false),
			FormatKs(o.PaperNWChemKs, o.PaperNWChemFailed && o.PaperNWChemKs == 0),
			conforms)
	}
	fmt.Fprintf(w, "\n%d of %d points conform to the paper's prose-stated outcomes.\n",
		len(outs)-deviations, len(outs))
	if deviations > 0 {
		return fmt.Errorf("experiments: %d points deviate from the paper's reported shape", deviations)
	}
	return nil
}
