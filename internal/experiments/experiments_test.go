package experiments

import (
	"testing"

	"fourindex/internal/chem"
	"fourindex/internal/fourindex"
	"fourindex/internal/lb"
)

func TestFigure2TableIntegrity(t *testing.T) {
	pts := Figure2()
	if len(pts) != 17 {
		t.Fatalf("Figure 2 has %d points, want 17 bar groups", len(pts))
	}
	figs := map[string]int{}
	for _, p := range pts {
		figs[p.Fig]++
		if _, err := chem.ByName(p.Molecule); err != nil {
			t.Errorf("%s: %v", p.Fig, err)
		}
		if p.Cores <= 0 || p.UsableBytes <= 0 {
			t.Errorf("%s %s/%d: bad cores or memory", p.Fig, p.System, p.Cores)
		}
		if p.PaperEqual && p.PaperNWChemFailed {
			t.Errorf("%s: contradictory flags", p.Fig)
		}
	}
	want := map[string]int{"2a": 5, "2b": 6, "2c": 2, "2d": 2, "2e": 2}
	for f, n := range want {
		if figs[f] != n {
			t.Errorf("figure %s has %d points, want %d", f, figs[f], n)
		}
	}
}

// The calibrated memory must realise the paper's feasibility statements
// against our own lb model: equal => unfused fits; otherwise unfused must
// not fit; NWChem-failed => fused12-34 must not fit either.
func TestCalibrationConsistentWithLB(t *testing.T) {
	for _, p := range Figure2() {
		mol, _ := chem.ByName(p.Molecule)
		unf := unfusedBytes(mol.Orbitals)
		pair := lb.MemoryFused12_34(mol.Orbitals, SpatialSymmetry) * 8
		switch {
		case p.PaperEqual:
			if p.UsableBytes < unf {
				t.Errorf("%s %s/%d: equal point but unfused does not fit", p.Fig, p.System, p.Cores)
			}
		case p.PaperNWChemFailed:
			if p.UsableBytes >= pair {
				t.Errorf("%s %s/%d: NWChem-failed point but fused12-34 fits (%d >= %d)",
					p.Fig, p.System, p.Cores, p.UsableBytes, pair)
			}
		default:
			if p.UsableBytes >= unf {
				t.Errorf("%s %s/%d: constrained point but unfused fits", p.Fig, p.System, p.Cores)
			}
			if p.UsableBytes < pair {
				t.Errorf("%s %s/%d: constrained point but fused12-34 does not fit", p.Fig, p.System, p.Cores)
			}
		}
	}
}

// The headline point uses physical memory, not calibration: Shell-Mixed
// needs > 12 TB unfused, System B holds < 9 TB usable.
func TestHeadlinePointIsPhysical(t *testing.T) {
	for _, p := range Figure2() {
		if p.Fig == "2e" && p.System == "B" {
			if p.UsableBytes > 9e12 {
				t.Errorf("System B usable = %d B, paper says < 9 TB", p.UsableBytes)
			}
			mol, _ := chem.ByName(p.Molecule)
			if unfusedBytes(mol.Orbitals) < 12e12 {
				t.Error("Shell-Mixed unfused requirement should exceed 12 TB")
			}
			return
		}
	}
	t.Fatal("headline point missing")
}

// Simulate the smallest point end to end: Hyperpolar on System A with 32
// cores. The paper reports hybrid 2.27 ks vs NWChem 4.93 ks (2.2x).
func TestRunPointHyperpolarA32(t *testing.T) {
	if testing.Short() {
		t.Skip("molecule-scale simulation")
	}
	pts := Figure2()
	o, err := RunPoint(pts[0])
	if err != nil {
		t.Fatal(err)
	}
	if o.HybridScheme != fourindex.FullyFusedInner {
		t.Errorf("hybrid chose %v, want fused (memory-constrained point)", o.HybridScheme)
	}
	if o.NWChemFailed {
		t.Fatal("NWChem best should run at this point")
	}
	if o.Speedup < 1.0 {
		t.Errorf("hybrid speedup = %.2f, want >= 1", o.Speedup)
	}
	if bad := CheckShape(o); len(bad) != 0 {
		t.Errorf("shape deviations: %v", bad)
	}
	// Order-of-magnitude agreement with the paper's 2.27 ks.
	if o.HybridKs < 0.1 || o.HybridKs > 30 {
		t.Errorf("hybrid simulated %.2f ks, paper 2.27 ks — more than order-of-magnitude off", o.HybridKs)
	}
}

// An "equal" point must pick unfused on both sides.
func TestRunPointEqual(t *testing.T) {
	if testing.Short() {
		t.Skip("molecule-scale simulation")
	}
	var pt Point
	for _, p := range Figure2() {
		if p.Fig == "2a" && p.PaperEqual {
			pt = p
			break
		}
	}
	o, err := RunPoint(pt)
	if err != nil {
		t.Fatal(err)
	}
	if o.HybridScheme != fourindex.Unfused {
		t.Errorf("hybrid chose %v, want unfused", o.HybridScheme)
	}
	if o.NWChemScheme != fourindex.Unfused {
		t.Errorf("NWChem best = %v, want unfused", o.NWChemScheme)
	}
	if bad := CheckShape(o); len(bad) != 0 {
		t.Errorf("shape deviations: %v", bad)
	}
	if o.Speedup < 0.85 || o.Speedup > 1.15 {
		t.Errorf("equal point speedup = %.2f, want ~1", o.Speedup)
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("9z"); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestFormatKs(t *testing.T) {
	if FormatKs(1.234, false) != "1.23" {
		t.Error("FormatKs number wrong")
	}
	if FormatKs(0, true) != "Failed" {
		t.Error("FormatKs failed wrong")
	}
	if FormatKs(0, false) != "n/a" {
		t.Error("FormatKs n/a wrong")
	}
}

func TestPaperSpeedup(t *testing.T) {
	p := Point{PaperHybridKs: 2, PaperNWChemKs: 6}
	if p.PaperSpeedup() != 3 {
		t.Errorf("PaperSpeedup = %v", p.PaperSpeedup())
	}
	if (Point{}).PaperSpeedup() != 0 {
		t.Error("unknown bars should give 0")
	}
}

func TestTiling(t *testing.T) {
	tn, tl, ap := tiling(1194, 504)
	if tn != 50 {
		t.Errorf("tileN = %d, want 50", tn)
	}
	if tl != tn {
		t.Errorf("tileL = %d, want TileN (%d)", tl, tn)
	}
	nt := (1194 + tn - 1) / tn
	if ap*nt < 504 {
		t.Errorf("alphaPar %d x nt %d < 504 procs: not enough op12 parallelism", ap, nt)
	}
	// Tiny problems stay sane.
	tn, tl, ap = tiling(5, 999)
	if tn < 1 || tl < 1 || ap < 1 {
		t.Error("tiling degenerate for tiny n")
	}
}
