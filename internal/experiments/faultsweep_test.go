package experiments

import (
	"testing"

	"fourindex/internal/fourindex"
)

// A small sweep must report sane aggregates: a zero-rate row completes
// every seed with no retries and no checkpoint overhead beyond the
// saves themselves, and a faulted row accounts its retries and I/O
// without ever returning a non-injected error.
func TestFaultSweepAccounting(t *testing.T) {
	rows, err := RunFaultSweep(fourindex.FullyFused, []float64{0, 0.05}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	clean, faulted := rows[0], rows[1]
	if clean.Rate != 0 || clean.Completed != clean.Runs || clean.SuccessRate != 1 {
		t.Errorf("zero-rate row should always complete: %+v", clean)
	}
	if clean.AvgRetries != 0 {
		t.Errorf("zero-rate row reports %v retries", clean.AvgRetries)
	}
	if clean.AvgCheckpointWords <= 0 || clean.IOOverhead <= 0 {
		t.Errorf("checkpoint saves should cost disk words even fault-free: %+v", clean)
	}
	if faulted.Completed > 0 {
		if faulted.AvgRetries <= 0 {
			t.Errorf("faulted row completed %d runs with no retries: %+v", faulted.Completed, faulted)
		}
		if faulted.AvgCheckpointWords < clean.AvgCheckpointWords {
			t.Errorf("faulted runs should move at least the fault-free checkpoint words: %+v vs %+v", faulted, clean)
		}
	}
	for _, row := range rows {
		if row.Scheme != fourindex.FullyFused || row.Runs != 3 {
			t.Errorf("row misattributed: %+v", row)
		}
	}
}
