package experiments

import (
	"fmt"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/faults"
	"fourindex/internal/fourindex"
	"fourindex/internal/ga"
)

// FaultSweepRow reports how one schedule behaves at one transient-fault
// rate over several seeded plans: how often it completed (possibly via
// checkpoint restarts), how much retry work the fault plan induced, and
// the checkpoint I/O the recovery machinery added on top of the
// fault-free run's data movement.
type FaultSweepRow struct {
	Scheme fourindex.Scheme
	// Rate is the per-operation transient fault probability.
	Rate float64
	// Runs and Completed count the seeded plans tried and finished;
	// failures are typed terminal faults (retry exhaustion or an
	// exhausted restart budget), never wrong answers.
	Runs      int
	Completed int
	// SuccessRate is Completed/Runs.
	SuccessRate float64
	// AvgRetries and AvgRestarts average over completed runs.
	AvgRetries  float64
	AvgRestarts float64
	// AvgCheckpointWords is the mean disk elements moved by checkpoint
	// saves and restores per completed run.
	AvgCheckpointWords float64
	// IOOverhead is AvgCheckpointWords relative to the fault-free run's
	// total data movement (remote + local + disk elements).
	IOOverhead float64
}

// sweepSpec is the fixed cost-mode configuration of the fault sweep:
// small enough that fifty seeded runs finish quickly, large enough that
// every schedule has several l slabs to checkpoint.
func sweepOptions() (fourindex.Options, error) {
	machine := cluster.SystemA()
	run, err := machine.Configure(8, 8)
	if err != nil {
		return fourindex.Options{}, err
	}
	spec, err := chem.NewSpec(48, SpatialSymmetry, 7)
	if err != nil {
		return fourindex.Options{}, err
	}
	return fourindex.Options{
		Spec:  spec,
		Procs: 8,
		Mode:  ga.Cost,
		Run:   &run,
		TileN: 8,
	}, nil
}

// RunFaultSweep runs scheme under seeded random fault plans at each
// transient rate (seedsPerRate plans per rate, default 8) in cost mode
// and aggregates success rate, retry/restart counts and checkpoint I/O
// overhead against the fault-free baseline.
func RunFaultSweep(scheme fourindex.Scheme, rates []float64, seedsPerRate int) ([]FaultSweepRow, error) {
	if seedsPerRate <= 0 {
		seedsPerRate = 8
	}
	opt, err := sweepOptions()
	if err != nil {
		return nil, err
	}
	base, err := fourindex.Run(scheme, opt)
	if err != nil {
		return nil, fmt.Errorf("experiments: fault-free baseline for %v: %w", scheme, err)
	}
	baseMoved := base.CommVolume + base.IntraVolume + base.DiskVolume

	rows := make([]FaultSweepRow, 0, len(rates))
	for _, rate := range rates {
		row := FaultSweepRow{Scheme: scheme, Rate: rate, Runs: seedsPerRate}
		var retries, restarts, ckptWords int64
		for seed := 0; seed < seedsPerRate; seed++ {
			o := opt
			o.Faults = &faults.Injection{
				Plan:       faults.RandomPlan(uint64(seed)+1, rate, o.Procs),
				Checkpoint: faults.NewMemCheckpoint(),
			}
			res, err := fourindex.Run(scheme, o)
			if err != nil {
				if !faults.Injected(err) {
					return nil, fmt.Errorf("experiments: %v at rate %g seed %d: %w", scheme, rate, seed, err)
				}
				continue // typed terminal fault: counted as a failure
			}
			row.Completed++
			retries += res.Totals.Retries
			restarts += int64(res.Restarts)
			ckptWords += res.DiskVolume - base.DiskVolume
		}
		row.SuccessRate = float64(row.Completed) / float64(row.Runs)
		if row.Completed > 0 {
			row.AvgRetries = float64(retries) / float64(row.Completed)
			row.AvgRestarts = float64(restarts) / float64(row.Completed)
			row.AvgCheckpointWords = float64(ckptWords) / float64(row.Completed)
			if baseMoved > 0 {
				row.IOOverhead = row.AvgCheckpointWords / float64(baseMoved)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
