package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 2 simulation")
	}
	var sb strings.Builder
	if err := WriteReport(&sb, time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Reproduction report",
		"Table 1",
		"Shell-Mixed",
		"Figure 2",
		"17 of 17 points conform",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
