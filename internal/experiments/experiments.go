// Package experiments encodes and regenerates the paper's evaluation
// (Section 8, Figure 2): five molecules on three clusters, comparing the
// fuse/unfuse hybrid implementation against the best feasible
// NWChem-style baseline.
//
// Reproduction methodology and caveats:
//
//   - Runs execute in ga.Cost mode: the real schedules run tile-by-tile
//     over the simulated Global Arrays runtime with the machine models of
//     package cluster; reported times are simulated wall clock.
//
//   - Bar heights in Figure 2 were extracted from the publicly available
//     text with OCR and are approximate; the prose-stated outcomes
//     (which side won, where results were equal, which configurations
//     failed with out-of-memory) are authoritative and recorded as
//     expectation flags.
//
//   - The usable aggregate memory of each configuration (Global Arrays
//     heap configuration) is not published. Each point carries a
//     UsableBytes derived from the paper's reported feasibility: where
//     the paper says memory was insufficient for the unfused transform,
//     UsableBytes is set just below its requirement; where results were
//     equal (everything fit), comfortably above; where all NWChem
//     implementations failed, below the fused12-34 requirement too. The
//     headline Shell-Mixed point needs no calibration: the paper's
//     "less than 9 TB" cluster genuinely cannot hold the >12 TB unfused
//     or the ~8.9 TB fused12-34 footprints.
//
//   - "NWChem Best" is the faster feasible of the Unfused and
//     NWChemFused schemes (Section 2.2's "most widely used and
//     performant" implementations; NWChemFused carries Listing 2's
//     memory profile without the Section 7.3 communication-avoiding
//     mapping). The Recompute direct method is implemented and
//     benchmarked separately but excluded here, matching the figure's
//     "Failed" markers — with it in the set nothing ever fails, while
//     its n^6-scaling runtime is prohibitive at the failed points.
package experiments

import (
	"fmt"
	"math"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/trace"
)

// SpatialSymmetry is the spatial-symmetry order assumed for all
// benchmark molecules: the paper's memory formulas (Equations 7, 8)
// carry an n^4/32 output term, i.e. s = 8 (D2h-like).
const SpatialSymmetry = 8

// Point is one bar group of Figure 2.
type Point struct {
	Fig          string // "2a".."2e"
	Molecule     string
	System       string // "A", "B", "C"
	Cores        int
	RanksPerNode int // 0: one rank per core

	// UsableBytes is the calibrated usable aggregate memory (see the
	// package comment).
	UsableBytes int64

	// Paper-reported results. Times are kiloseconds; 0 = not legible.
	PaperHybridKs float64
	PaperNWChemKs float64
	// Authoritative prose-derived outcome flags.
	PaperEqual        bool // both sides used the unfused schedule
	PaperNWChemFailed bool // every NWChem implementation ran out of memory
	PaperHybridNA     bool // hybrid not run (no machine allocation)
}

// unfusedBytes returns the unfused schedule's aggregate requirement for
// a molecule (|O1| + |O2| at peak).
func unfusedBytes(orbitals int) int64 {
	return lb.MemoryUnfused(orbitals, SpatialSymmetry) * 8
}

// calibrated returns UsableBytes for a paper outcome: ample for equal
// points, between the fused12-34 and unfused requirements where only
// fusion was feasible, and below fused12-34 where NWChem failed
// entirely.
func calibrated(orbitals int, equal, nwchemFailed bool) int64 {
	unf := float64(unfusedBytes(orbitals))
	switch {
	case equal:
		return int64(2 * unf)
	case nwchemFailed:
		return int64(0.62 * unf) // below the ~0.69*unf fused12-34 peak
	default:
		return int64(0.80 * unf) // unfused fails, fused12-34 fits
	}
}

// Figure2 returns every bar group of Figure 2 with calibrated memory.
func Figure2() []Point {
	type raw struct {
		fig, mol, sys             string
		cores, rpn                int
		hybKs, nwKs               float64
		equal, nwFailed, hybridNA bool
		physicalCapBytes          int64 // 0: no cap beyond calibration
	}
	rows := []raw{
		// (a) Hyperpolar, 368 orbitals (small).
		{"2a", "Hyperpolar", "A", 32, 8, 2.27, 4.93, false, false, false, 0},
		{"2a", "Hyperpolar", "A", 64, 8, 0.92, 1.53, false, false, false, 0},
		{"2a", "Hyperpolar", "A", 128, 8, 0.35, 0.35, true, false, false, 0},
		{"2a", "Hyperpolar", "B", 56, 28, 0.57, 1.58, false, false, false, 0},
		{"2a", "Hyperpolar", "B", 140, 28, 0.18, 0.18, true, false, false, 0},
		// (b) Uracil, 698 orbitals (large).
		{"2b", "Uracil", "A", 512, 8, 5.02, 0, false, true, false, 0},
		{"2b", "Uracil", "B", 140, 28, 2.56, 14.57, false, false, false, 0},
		{"2b", "Uracil", "B", 252, 28, 1.29, 2.83, false, false, false, 0},
		{"2b", "Uracil", "B", 504, 28, 0.39, 0.39, true, false, false, 0},
		{"2b", "Uracil", "C", 512, 4, 1.62, 2.64, false, false, false, 0},
		{"2b", "Uracil", "C", 1024, 4, 1.19, 2.47, false, false, false, 0},
		// (c) C60H20, 580 orbitals (medium).
		{"2c", "C60H20", "B", 140, 28, 1.69, 6.30, false, false, false, 0},
		{"2c", "C60H20", "B", 252, 28, 1.01, 1.01, true, false, false, 0},
		// (d) C40H56, 1023 orbitals (very large).
		{"2d", "C40H56", "B", 504, 28, 5.26, 0, false, true, false, 0},
		{"2d", "C40H56", "C", 1536, 4, 0, 19.71, false, false, true, 0},
		// (e) Shell-Mixed, 1194 orbitals (very large). The B/504 point
		// is the paper's headline: > 12 TB required unfused, run on a
		// cluster with < 9 TB of collective memory. The calibrated
		// value (0.62 x 12.2 TB = 7.6 TB) is consistent with the
		// paper's own "< 9 TB" statement.
		{"2e", "Shell-Mixed", "B", 504, 28, 15.09, 0, false, true, false, 0},
		{"2e", "Shell-Mixed", "C", 4096, 4, 0, 77.92, false, false, true, 0},
	}
	pts := make([]Point, 0, len(rows))
	for _, r := range rows {
		mol, err := chem.ByName(r.mol)
		if err != nil {
			panic(err)
		}
		usable := calibrated(mol.Orbitals, r.equal, r.nwFailed)
		if r.physicalCapBytes > 0 && usable > r.physicalCapBytes {
			usable = r.physicalCapBytes
		}
		pts = append(pts, Point{
			Fig: r.fig, Molecule: r.mol, System: r.sys,
			Cores: r.cores, RanksPerNode: r.rpn,
			UsableBytes:   usable,
			PaperHybridKs: r.hybKs, PaperNWChemKs: r.nwKs,
			PaperEqual: r.equal, PaperNWChemFailed: r.nwFailed,
			PaperHybridNA: r.hybridNA,
		})
	}
	return pts
}

// Outcome is the simulated result of one Figure 2 point.
type Outcome struct {
	Point
	HybridKs     float64 // simulated hybrid time, kiloseconds
	HybridScheme fourindex.Scheme
	NWChemKs     float64 // simulated best NWChem time; 0 when failed
	NWChemScheme fourindex.Scheme
	NWChemFailed bool
	Speedup      float64 // NWChemKs / HybridKs when both ran
}

// tiling picks cost-mode data-tile and fused-loop widths: ~24 tiles per
// orbital dimension bounds simulation event counts while keeping slabs
// thin relative to n.
func tiling(n, procs int) (tileN, tileL, alphaPar int) {
	tileN = max(1, (n+23)/24)
	nt := (n + tileN - 1) / tileN
	tileL = tileN
	alphaPar = max(1, (procs+nt-1)/nt)
	if alphaPar > nt {
		alphaPar = nt
	}
	return tileN, tileL, alphaPar
}

// PointOptions builds the fourindex.Options a Figure 2 point runs with
// (cost mode, calibrated memory, the point's machine model and tiling).
func PointOptions(pt Point) (fourindex.Options, error) {
	mol, err := chem.ByName(pt.Molecule)
	if err != nil {
		return fourindex.Options{}, err
	}
	machine, err := cluster.ByName(pt.System)
	if err != nil {
		return fourindex.Options{}, err
	}
	run, err := machine.Configure(pt.Cores, pt.RanksPerNode)
	if err != nil {
		return fourindex.Options{}, err
	}
	spec, err := chem.NewSpec(mol.Orbitals, SpatialSymmetry, 7)
	if err != nil {
		return fourindex.Options{}, err
	}
	tileN, tileL, alphaPar := tiling(mol.Orbitals, pt.Cores)
	return fourindex.Options{
		Spec:           spec,
		Procs:          pt.Cores,
		Mode:           ga.Cost,
		Run:            &run,
		GlobalMemBytes: pt.UsableBytes,
		TileN:          tileN,
		TileL:          tileL,
		AlphaPar:       alphaPar,
	}, nil
}

// BenchOptions builds cost-mode Options for an arbitrary molecule /
// system / core-count triple outside the Figure 2 calibration: one rank
// per core and unlimited aggregate memory, so every schedule is feasible
// and the benchmark harness (internal/perf) can compare all of them on
// equal footing.
func BenchOptions(molecule, system string, cores int) (fourindex.Options, error) {
	mol, err := chem.ByName(molecule)
	if err != nil {
		return fourindex.Options{}, err
	}
	machine, err := cluster.ByName(system)
	if err != nil {
		return fourindex.Options{}, err
	}
	run, err := machine.Configure(cores, 0)
	if err != nil {
		return fourindex.Options{}, err
	}
	spec, err := chem.NewSpec(mol.Orbitals, SpatialSymmetry, 7)
	if err != nil {
		return fourindex.Options{}, err
	}
	tileN, tileL, alphaPar := tiling(mol.Orbitals, cores)
	return fourindex.Options{
		Spec:     spec,
		Procs:    cores,
		Mode:     ga.Cost,
		Run:      &run,
		TileN:    tileN,
		TileL:    tileL,
		AlphaPar: alphaPar,
	}, nil
}

// RunPoint simulates one Figure 2 point.
func RunPoint(pt Point) (Outcome, error) {
	return runPoint(pt, nil)
}

// RunPointTraced is RunPoint with an execution tracer attached to the
// hybrid run (the Figure 2 bar the paper contributes): the tracer
// records the hybrid's spans, events and any fuse/unfuse fallback notes,
// ready for tr.Audit / tr.WriteChromeTrace. The NWChem baselines run
// untraced so the trace's final run is always the hybrid's last attempt.
func RunPointTraced(pt Point, tr *trace.Tracer) (Outcome, error) {
	return runPoint(pt, tr)
}

func runPoint(pt Point, tr *trace.Tracer) (Outcome, error) {
	base, err := PointOptions(pt)
	if err != nil {
		return Outcome{}, err
	}

	out := Outcome{Point: pt}
	base.Trace = tr

	hyb, err := fourindex.Run(fourindex.Hybrid, base)
	if err != nil {
		return Outcome{}, fmt.Errorf("experiments: hybrid on %s/%s/%d: %w",
			pt.Molecule, pt.System, pt.Cores, err)
	}
	out.HybridKs = hyb.ElapsedSeconds / 1000
	out.HybridScheme = hyb.ChosenScheme
	base.Trace = nil

	// NWChem Best: fastest feasible of the unfused transform and
	// NWChem's production fused 12-34 variant (without the paper's
	// communication-avoiding mapping).
	out.NWChemFailed = true
	for _, s := range []fourindex.Scheme{fourindex.Unfused, fourindex.NWChemFused} {
		res, err := fourindex.Run(s, base)
		if err != nil {
			continue // out of memory: this variant failed
		}
		ks := res.ElapsedSeconds / 1000
		if out.NWChemFailed || ks < out.NWChemKs {
			out.NWChemKs = ks
			out.NWChemScheme = s
			out.NWChemFailed = false
		}
	}
	if !out.NWChemFailed && out.HybridKs > 0 {
		out.Speedup = out.NWChemKs / out.HybridKs
	}
	return out, nil
}

// RunFigure simulates every point of one sub-figure ("2a".."2e"), or all
// of Figure 2 when fig is empty.
func RunFigure(fig string) ([]Outcome, error) {
	var outs []Outcome
	for _, pt := range Figure2() {
		if fig != "" && pt.Fig != fig {
			continue
		}
		o, err := RunPoint(pt)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	if len(outs) == 0 {
		return nil, fmt.Errorf("experiments: no points for figure %q", fig)
	}
	return outs, nil
}

// CheckShape verifies an outcome against the paper's prose-derived
// expectations and returns human-readable deviations (empty = conforms).
func CheckShape(o Outcome) []string {
	var bad []string
	if o.PaperNWChemFailed && !o.NWChemFailed {
		bad = append(bad, fmt.Sprintf("paper: NWChem failed; simulation: %v ran in %.2f ks", o.NWChemScheme, o.NWChemKs))
	}
	if !o.PaperNWChemFailed && !o.PaperHybridNA && o.NWChemFailed {
		bad = append(bad, "paper: NWChem ran; simulation: all NWChem variants out of memory")
	}
	if o.PaperEqual {
		if o.HybridScheme != fourindex.Unfused {
			bad = append(bad, fmt.Sprintf("paper: equal (unfused fits); simulation hybrid chose %v", o.HybridScheme))
		}
		if !o.NWChemFailed && o.Speedup > 1.3 {
			bad = append(bad, fmt.Sprintf("paper: equal; simulated speedup %.2fx", o.Speedup))
		}
	} else if !o.PaperNWChemFailed && !o.PaperHybridNA {
		if o.HybridScheme == fourindex.Unfused {
			bad = append(bad, "paper: memory-constrained (fused); simulation hybrid chose unfused")
		}
		if !o.NWChemFailed && o.Speedup < 1.0 {
			bad = append(bad, fmt.Sprintf("hybrid slower than NWChem best: %.2fx", o.Speedup))
		}
	}
	return bad
}

// PaperSpeedup returns the paper's reported speedup for a point when
// both bars are legible, else 0.
func (p Point) PaperSpeedup() float64 {
	if p.PaperHybridKs > 0 && p.PaperNWChemKs > 0 {
		return p.PaperNWChemKs / p.PaperHybridKs
	}
	return 0
}

// FormatKs renders a time-or-failure cell.
func FormatKs(ks float64, failed bool) string {
	if failed {
		return "Failed"
	}
	if ks == 0 {
		return "n/a"
	}
	if math.IsInf(ks, 0) || math.IsNaN(ks) {
		return "?"
	}
	return fmt.Sprintf("%.2f", ks)
}
