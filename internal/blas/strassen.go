package blas

import "sync/atomic"

// The Strassen-Winograd GEMM path: recursive 7-multiply splitting over
// the blocked kernel as the base case. One recursion level replaces 8
// half-size multiplies with 7 plus 15 half-size elementwise passes, so
// it wins only once the multiplies are large enough for the saved
// quarter-multiply to dominate the extra O(n^2) traffic — the crossover
// threshold below which recursion hands off to Dgemm (and through it to
// gemmBlocked/gemmBlockedTransB and the shared worker pool). The
// schedule is the standard Winograd operand-sharing variant: three
// pooled temporaries per level (S: mh*kh, T: kh*nh, P: mh*nh) with the
// four C quadrants used as accumulators, and odd dimensions peeled as
// rank-updates/border GEMMs around an even core.
//
// Strassen reassociates additions, so results are NOT bitwise identical
// to Dgemm — callers that need bitwise-stable output (the deterministic
// transform modes, by default) stay on Dgemm and opt in explicitly via
// Options.Strassen at the schedule layer.

// DefaultStrassenCrossover is the dimension threshold below which
// DgemmStrassen delegates entirely to the classic blocked kernel. It is
// a conservative portable default; `fouridx bench` runs a calibration
// sweep (internal/perf.CalibrateStrassen) that measures the true
// crossover on the host and records it in the bench artifact.
const DefaultStrassenCrossover = 256

var strassenCrossover atomic.Int64

func init() {
	strassenCrossover.Store(DefaultStrassenCrossover)
}

// SetStrassenCrossover sets the process-wide Strassen crossover: a
// recursion step is taken only while m, n and k all exceed the
// crossover. Values <= 0 disable the Strassen path entirely
// (DgemmStrassen becomes Dgemm). Safe for concurrent use.
func SetStrassenCrossover(v int) {
	strassenCrossover.Store(int64(v))
}

// StrassenCrossover reports the current process-wide crossover.
func StrassenCrossover() int {
	return int(strassenCrossover.Load())
}

// DgemmStrassen computes C = alpha*op(A)*op(B) + beta*C like Dgemm, via
// Strassen-Winograd recursion while m, n, k all exceed the crossover
// (see SetStrassenCrossover). Below the crossover — or when the path is
// disabled — it is exactly Dgemm, bitwise included. Above it the result
// differs from Dgemm only by reassociation rounding (O(eps) relative).
func DgemmStrassen(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	cut := StrassenCrossover()
	if cut <= 0 || m <= cut || n <= cut || k <= cut || alpha == 0 {
		Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	checkMatrix("A", a, lda, rows(transA, m, k), cols(transA, m, k))
	checkMatrix("B", b, ldb, rows(transB, k, n), cols(transB, k, n))
	checkMatrix("C", c, ldc, m, n)

	if beta == 0 {
		strassenRec(transA, transB, m, n, k, a, lda, b, ldb, c, ldc, cut)
		if alpha != 1 {
			for i := 0; i < m; i++ {
				row := c[i*ldc : i*ldc+n]
				for j := range row {
					row[j] *= alpha
				}
			}
		}
		return
	}
	// beta != 0: the recursion overwrites its destination, so form the
	// product in a pooled buffer and fold alpha/beta in one pass.
	p := getBuf(m * n)
	strassenRec(transA, transB, m, n, k, a, lda, b, ldb, p, n, cut)
	for i := 0; i < m; i++ {
		crow := c[i*ldc : i*ldc+n]
		prow := p[i*n : i*n+n]
		if beta == 1 {
			for j, v := range prow {
				crow[j] += alpha * v
			}
		} else {
			for j, v := range prow {
				crow[j] = alpha*v + beta*crow[j]
			}
		}
	}
	putBuf(p)
}

// opOff returns the offset of element (i, j) of op(X) in the stored
// matrix: transposition swaps the roles of the indices, not the stride.
func opOff(ld int, trans bool, i, j int) int {
	if trans {
		return j*ld + i
	}
	return i*ld + j
}

// strides returns the op-space (row, column) strides of a stored matrix
// with leading dimension ld: transposition swaps them.
func strides(ld int, trans bool) (rs, cs int) {
	if trans {
		return 1, ld
	}
	return ld, 1
}

// geComb stores dst = sx*op(X) + sy*op(Y) for r x c op-shaped operands
// into a plain row-major destination.
func geComb(dst []float64, ldd, r, c int, sx float64, x []float64, ldx int, tx bool, sy float64, y []float64, ldy int, ty bool) {
	xr, xc := strides(ldx, tx)
	yr, yc := strides(ldy, ty)
	for i := 0; i < r; i++ {
		drow := dst[i*ldd : i*ldd+c]
		xi, yi := i*xr, i*yr
		for j := range drow {
			drow[j] = sx*x[xi+j*xc] + sy*y[yi+j*yc]
		}
	}
}

// geAcc accumulates dst += sx*op(X) into a plain row-major destination.
func geAcc(dst []float64, ldd, r, c int, sx float64, x []float64, ldx int, tx bool) {
	xr, xc := strides(ldx, tx)
	for i := 0; i < r; i++ {
		drow := dst[i*ldd : i*ldd+c]
		xi := i * xr
		for j := range drow {
			drow[j] += sx * x[xi+j*xc]
		}
	}
}

// geRevSub stores dst = op(Y) - dst in place.
func geRevSub(dst []float64, ldd, r, c int, y []float64, ldy int, ty bool) {
	yr, yc := strides(ldy, ty)
	for i := 0; i < r; i++ {
		drow := dst[i*ldd : i*ldd+c]
		yi := i * yr
		for j := range drow {
			drow[j] = y[yi+j*yc] - drow[j]
		}
	}
}

// mAdd accumulates dst += sign*src over plain r x c strided matrices.
func mAdd(dst []float64, ldd int, src []float64, lds, r, c int, sign float64) {
	for i := 0; i < r; i++ {
		drow := dst[i*ldd : i*ldd+c]
		srow := src[i*lds : i*lds+c]
		if sign == 1 {
			for j, v := range srow {
				drow[j] += v
			}
		} else {
			for j, v := range srow {
				drow[j] -= v
			}
		}
	}
}

// mSum stores dst = x + y over plain r x c strided matrices.
func mSum(dst []float64, ldd int, x []float64, ldx int, y []float64, ldy, r, c int) {
	for i := 0; i < r; i++ {
		drow := dst[i*ldd : i*ldd+c]
		xrow := x[i*ldx : i*ldx+c]
		yrow := y[i*ldy : i*ldy+c]
		for j := range drow {
			drow[j] = xrow[j] + yrow[j]
		}
	}
}

// strassenRec overwrites dst (m x n, row stride ldd) with op(A)*op(B)
// using the Winograd schedule; below the crossover it hands off to the
// blocked kernel (alpha=1, beta=0), which inherits the worker pool's
// parallel row split above parallelThreshold.
//
// The schedule (S1..S4, T1..T4, M1..M7, U1..U7 in the standard Winograd
// naming) is ordered so three temporaries suffice, with the C quadrants
// as accumulators:
//
//	C11 = M1 + M2
//	C12 = M1 + M6 + M5 + M3
//	C21 = M1 + M6 + M7 - M4
//	C22 = M1 + M6 + M7 + M5
func strassenRec(transA, transB bool, m, n, k int, a []float64, lda int, b []float64, ldb int, dst []float64, ldd, cut int) {
	if m <= cut || n <= cut || k <= cut {
		Dgemm(transA, transB, m, n, k, 1, a, lda, b, ldb, 0, dst, ldd)
		return
	}
	m2, n2, k2 := m&^1, n&^1, k&^1
	mh, nh, kh := m2/2, n2/2, k2/2

	a11 := a
	a12 := a[opOff(lda, transA, 0, kh):]
	a21 := a[opOff(lda, transA, mh, 0):]
	a22 := a[opOff(lda, transA, mh, kh):]
	b11 := b
	b12 := b[opOff(ldb, transB, 0, nh):]
	b21 := b[opOff(ldb, transB, kh, 0):]
	b22 := b[opOff(ldb, transB, kh, nh):]
	c11 := dst
	c12 := dst[nh:]
	c21 := dst[mh*ldd:]
	c22 := dst[mh*ldd+nh:]

	s := getBuf(mh * kh)
	t := getBuf(kh * nh)
	p := getBuf(mh * nh)

	// S1 = A21+A22, T1 = B12-B11; C22 = S1*T1 (M5).
	geComb(s, kh, mh, kh, 1, a21, lda, transA, 1, a22, lda, transA)
	geComb(t, nh, kh, nh, 1, b12, ldb, transB, -1, b11, ldb, transB)
	strassenRec(false, false, mh, nh, kh, s, kh, t, nh, c22, ldd, cut)
	// S2 = S1-A11, T2 = B22-T1; C21 = S2*T2 (M6).
	geAcc(s, kh, mh, kh, -1, a11, lda, transA)
	geRevSub(t, nh, kh, nh, b22, ldb, transB)
	strassenRec(false, false, mh, nh, kh, s, kh, t, nh, c21, ldd, cut)
	// C11 = A11*B11 (M1).
	strassenRec(transA, transB, mh, nh, kh, a11, lda, b11, ldb, c11, ldd, cut)
	// C21 += C11 (U2 = M1+M6), C12 = C21+C22 (U4 = U2+M5).
	mAdd(c21, ldd, c11, ldd, mh, nh, 1)
	mSum(c12, ldd, c21, ldd, c22, ldd, mh, nh)
	// S3 = A11-A21, T3 = T2-B11; P = S3*T3 (M7).
	geComb(s, kh, mh, kh, 1, a11, lda, transA, -1, a21, lda, transA)
	geAcc(t, nh, kh, nh, -1, b11, ldb, transB)
	strassenRec(false, false, mh, nh, kh, s, kh, t, nh, p, nh, cut)
	// C21 += P (U3 = U2+M7), C22 += C21 (final C22 = U3+M5).
	mAdd(c21, ldd, p, nh, mh, nh, 1)
	mAdd(c22, ldd, c21, ldd, mh, nh, 1)
	// T4 = T3+B11-B21; P = A22*T4 (M4); C21 -= P (final C21 = U3-M4).
	geAcc(t, nh, kh, nh, 1, b11, ldb, transB)
	geAcc(t, nh, kh, nh, -1, b21, ldb, transB)
	strassenRec(transA, false, mh, nh, kh, a22, lda, t, nh, p, nh, cut)
	mAdd(c21, ldd, p, nh, mh, nh, -1)
	// S4 = S3+A12-A22; P = S4*B22 (M3); C12 += P (final C12 = U4+M3).
	geAcc(s, kh, mh, kh, 1, a12, lda, transA)
	geAcc(s, kh, mh, kh, -1, a22, lda, transA)
	strassenRec(false, transB, mh, nh, kh, s, kh, b22, ldb, p, nh, cut)
	mAdd(c12, ldd, p, nh, mh, nh, 1)
	// P = A12*B21 (M2); C11 += P (final C11 = M1+M2).
	strassenRec(transA, transB, mh, nh, kh, a12, lda, b21, ldb, p, nh, cut)
	mAdd(c11, ldd, p, nh, mh, nh, 1)

	putBuf(s)
	putBuf(t)
	putBuf(p)

	// Odd-dimension peeling around the even core: an odd k contributes a
	// rank-(k-k2) update to the core block; an odd m or n contributes a
	// border row/column strip computed at full depth by the classic
	// kernel. The strips do not overlap (the m-strip spans all n columns,
	// the n-strip only the core's m2 rows).
	if k2 < k {
		Dgemm(transA, transB, m2, n2, k-k2, 1, a[opOff(lda, transA, 0, k2):], lda, b[opOff(ldb, transB, k2, 0):], ldb, 1, dst, ldd)
	}
	if m2 < m {
		Dgemm(transA, transB, m-m2, n, k, 1, a[opOff(lda, transA, m2, 0):], lda, b, ldb, 0, dst[m2*ldd:], ldd)
	}
	if n2 < n {
		Dgemm(transA, transB, m2, n-n2, k, 1, a, lda, b[opOff(ldb, transB, 0, n2):], ldb, 0, dst[n2:], ldd)
	}
}
