// Package blas provides the dense linear-algebra kernels the four-index
// transform schedules are built from: a cache-blocked, goroutine-parallel
// double-precision GEMM plus the level-1 kernels (axpy, dot, scal, ger).
//
// All matrices are row-major with an explicit leading dimension (row
// stride), following the conventions of CBLAS with CblasRowMajor. Only
// the operations the transform needs are implemented; this is a substrate
// for the simulator, not a general BLAS.
package blas

import (
	"fmt"
	"runtime"
	"sync"
)

// Tuning parameters for the blocked GEMM kernel. These are modest values
// chosen for typical L1/L2 sizes; correctness never depends on them.
const (
	blockM = 64
	blockN = 256
	blockK = 64

	// parallelThreshold is the m*n*k product above which Dgemm fans
	// out across goroutines.
	parallelThreshold = 1 << 21
)

// Dgemm computes C = alpha*op(A)*op(B) + beta*C where op(X) is X or X^T
// according to transA/transB. Dimensions: op(A) is m x k, op(B) is k x n,
// C is m x n. lda, ldb, ldc are row strides of the stored (untransposed)
// matrices.
func Dgemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("blas: negative dimension m=%d n=%d k=%d", m, n, k))
	}
	if m == 0 || n == 0 {
		return
	}
	checkMatrix("A", a, lda, rows(transA, m, k), cols(transA, m, k))
	checkMatrix("B", b, ldb, rows(transB, k, n), cols(transB, k, n))
	checkMatrix("C", c, ldc, m, n)

	if alpha == 0 || k == 0 {
		scaleRows(beta, 0, m, n, c, ldc)
		return
	}

	// Beta-scaling is folded into the same row split as the kernel so C
	// is swept once per worker, not serially up front and again in the
	// accumulation. Extra workers come from the process-wide pool (see
	// pool.go): concurrent Dgemm callers share one goroutine budget
	// instead of each fanning out GOMAXPROCS of their own, and a caller
	// that finds the pool drained runs serially rather than blocking.
	if int64(m)*int64(n)*int64(k) >= parallelThreshold && m >= 2 {
		want := runtime.GOMAXPROCS(0)
		if want > m {
			want = m
		}
		if want > 1 {
			pool := getPool()
			if extra := pool.tryAcquire(want - 1); extra > 0 {
				parallelGemm(extra+1, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
				pool.release(extra)
				return
			}
		}
	}
	scaleRows(beta, 0, m, n, c, ldc)
	gemmBlocked(transA, transB, 0, m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// scaleRows applies C[i0:i1, :n] *= beta (beta == 0 stores zeros, so
// uninitialised input never propagates NaNs).
func scaleRows(beta float64, i0, i1, n int, c []float64, ldc int) {
	if beta == 1 {
		return
	}
	for i := i0; i < i1; i++ {
		row := c[i*ldc : i*ldc+n]
		if beta == 0 {
			for j := range row {
				row[j] = 0
			}
		} else {
			for j := range row {
				row[j] *= beta
			}
		}
	}
}

func rows(trans bool, r, c int) int {
	if trans {
		return c
	}
	return r
}

func cols(trans bool, r, c int) int {
	if trans {
		return r
	}
	return c
}

func checkMatrix(name string, x []float64, ld, r, c int) {
	if r == 0 || c == 0 {
		return
	}
	if ld < c {
		panic(fmt.Sprintf("blas: %s leading dimension %d < %d", name, ld, c))
	}
	if len(x) < (r-1)*ld+c {
		panic(fmt.Sprintf("blas: %s slice too short: len %d, need %d", name, len(x), (r-1)*ld+c))
	}
}

// parallelGemm splits the row range of C across workers; each worker
// beta-scales its own rows before accumulating, so the scaling sweep
// parallelises with the kernel instead of serialising before it.
func parallelGemm(workers int, transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scaleRows(beta, lo, hi, n, c, ldc)
			gemmBlocked(transA, transB, lo, hi, n, k, alpha, a, lda, b, ldb, c, ldc)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmBlocked accumulates alpha*op(A)*op(B) into C for C-rows [i0, i1).
func gemmBlocked(transA, transB bool, i0, i1, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if transB {
		gemmBlockedTransB(transA, i0, i1, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	for ib := i0; ib < i1; ib += blockM {
		iMax := min(ib+blockM, i1)
		for kb := 0; kb < k; kb += blockK {
			kMax := min(kb+blockK, k)
			for jb := 0; jb < n; jb += blockN {
				jMax := min(jb+blockN, n)
				gemmKernel(transA, ib, iMax, jb, jMax, kb, kMax, alpha, a, lda, b, ldb, c, ldc)
			}
		}
	}
}

// gemmBlockedTransB handles op(B) = B^T by packing each (kb, jb) panel
// of B^T into a contiguous [kk][j] scratch buffer once, then reusing it
// for every row block of C. The naive kernel's b[j*ldb+kk] walk strides
// by ldb on every inner-loop step, defeating the blockN tiling; the
// packed panel restores the contiguous inner loop of the untransposed
// case at the cost of reading each B block once per (kb, jb) instead of
// once per (ib, kb, jb). Accumulation order per C element is unchanged
// (kb ascending, kk ascending within each block), so results are
// bitwise identical to the unpacked kernel.
func gemmBlockedTransB(transA bool, i0, i1, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	panel := make([]float64, min(blockK, k)*min(blockN, n))
	for kb := 0; kb < k; kb += blockK {
		kMax := min(kb+blockK, k)
		for jb := 0; jb < n; jb += blockN {
			jMax := min(jb+blockN, n)
			w := jMax - jb
			for kk := kb; kk < kMax; kk++ {
				dst := panel[(kk-kb)*w : (kk-kb+1)*w]
				for j := jb; j < jMax; j++ {
					dst[j-jb] = b[j*ldb+kk]
				}
			}
			for ib := i0; ib < i1; ib += blockM {
				iMax := min(ib+blockM, i1)
				gemmPanelKernel(transA, ib, iMax, jb, jMax, kb, kMax, alpha, a, lda, panel, w, c, ldc)
			}
		}
	}
}

// gemmPanelKernel is gemmKernel against a packed [kk-k0][j-j0] panel of
// width w (the B operand addressed block-relative instead of through
// the full matrix).
func gemmPanelKernel(transA bool, i0, i1, j0, j1, k0, k1 int, alpha float64, a []float64, lda int, panel []float64, w int, c []float64, ldc int) {
	for i := i0; i < i1; i++ {
		crow := c[i*ldc+j0 : i*ldc+j1]
		for kk := k0; kk < k1; kk++ {
			var av float64
			if transA {
				av = a[kk*lda+i]
			} else {
				av = a[i*lda+kk]
			}
			av *= alpha
			if av == 0 {
				continue
			}
			brow := panel[(kk-k0)*w : (kk-k0)*w+(j1-j0)]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// gemmKernel is the innermost i-k-j loop over one (i, j, k) block of the
// untransposed-B case: the j loop runs over contiguous rows of B,
// accumulating into a contiguous row of C.
func gemmKernel(transA bool, i0, i1, j0, j1, k0, k1 int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := i0; i < i1; i++ {
		crow := c[i*ldc+j0 : i*ldc+j1]
		for kk := k0; kk < k1; kk++ {
			var av float64
			if transA {
				av = a[kk*lda+i]
			} else {
				av = a[i*lda+kk]
			}
			av *= alpha
			if av == 0 {
				continue
			}
			brow := b[kk*ldb+j0 : kk*ldb+j1]
			for j := range brow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// GemmFlops returns the floating-point operation count of a GEMM with the
// given dimensions (2*m*n*k, counting multiply and add separately).
func GemmFlops(m, n, k int) int64 {
	return 2 * int64(m) * int64(n) * int64(k)
}

// Daxpy computes y += alpha * x elementwise.
func Daxpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: Daxpy length mismatch %d vs %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Ddot returns the inner product of x and y.
func Ddot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("blas: Ddot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Dscal scales x by alpha in place.
func Dscal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Dger performs the rank-1 update A += alpha * x * y^T where A is
// len(x) x len(y) row-major with leading dimension lda.
func Dger(alpha float64, x, y, a []float64, lda int) {
	checkMatrix("A", a, lda, len(x), len(y))
	for i, xv := range x {
		s := alpha * xv
		if s == 0 {
			continue
		}
		row := a[i*lda : i*lda+len(y)]
		for j, yv := range y {
			row[j] += s * yv
		}
	}
}

// Idamax returns the index of the element of x with the largest absolute
// value, or -1 for an empty slice.
func Idamax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := -1.0, -1
	for i, v := range x {
		if v < 0 {
			v = -v
		}
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
