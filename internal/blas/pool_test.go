package blas

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// TestPoolBitwiseIdentical pins the pool's correctness contract: the
// same GEMM computed serially (pool of 1), with a full pool, and with
// contended concurrent callers produces bitwise-identical C. The row
// split assigns whole C rows to workers and each row's accumulation
// order is fixed, so no worker count may change a single bit.
func TestPoolBitwiseIdentical(t *testing.T) {
	defer SetWorkers(runtime.NumCPU()) // restore the default for other tests
	rng := rand.New(rand.NewSource(11))
	// Big enough that m*n*k crosses parallelThreshold.
	m, n, k := 160, 160, 160
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	c0 := randomSlice(rng, m*n)

	run := func() []float64 {
		c := append([]float64(nil), c0...)
		Dgemm(false, false, m, n, k, 1.25, a, k, b, n, 0.5, c, n)
		return c
	}

	SetWorkers(1)
	if got := Workers(); got != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(1)", got)
	}
	serial := run()

	SetWorkers(8)
	if got := Workers(); got != 8 {
		t.Fatalf("Workers() = %d after SetWorkers(8)", got)
	}
	pooled := run()
	for i := range serial {
		if serial[i] != pooled[i] {
			t.Fatalf("pooled result differs from serial at %d: %v vs %v", i, pooled[i], serial[i])
		}
	}

	// Contended: more concurrent callers than the pool has slots, so some
	// calls get partial grants or run serially. Every outcome must still
	// be bitwise identical.
	SetWorkers(2)
	const callers = 6
	results := make([][]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = run()
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		for j := range serial {
			if serial[j] != res[j] {
				t.Fatalf("concurrent caller %d differs from serial at %d: %v vs %v", i, j, res[j], serial[j])
			}
		}
	}
}

// TestPoolAccounting pins the semaphore arithmetic: grants never exceed
// the pool, drain to zero, and come back on release.
func TestPoolAccounting(t *testing.T) {
	p := newWorkerPool(4) // 3 extra slots beyond the caller
	if got := p.tryAcquire(5); got != 3 {
		t.Fatalf("tryAcquire(5) on fresh pool of 4 = %d, want 3", got)
	}
	if got := p.tryAcquire(1); got != 0 {
		t.Fatalf("tryAcquire on drained pool = %d, want 0", got)
	}
	p.release(2)
	if got := p.tryAcquire(3); got != 2 {
		t.Fatalf("tryAcquire(3) after release(2) = %d, want 2", got)
	}
}
