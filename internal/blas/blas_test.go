package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is the reference: C = alpha*op(A)*op(B) + beta*C.
func naiveGemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				var av, bv float64
				if transA {
					av = a[kk*lda+i]
				} else {
					av = a[i*lda+kk]
				}
				if transB {
					bv = b[j*ldb+kk]
				} else {
					bv = b[kk*ldb+j]
				}
				s += av * bv
			}
			c[i*ldc+j] = alpha*s + beta*c[i*ldc+j]
		}
	}
}

func randomSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestDgemmAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			m, n, k := 7, 9, 5
			lda, ldb, ldc := k, n, n
			if ta {
				lda = m
			}
			if tb {
				ldb = k
			}
			a := randomSlice(rng, rows(ta, m, k)*lda)
			b := randomSlice(rng, rows(tb, k, n)*ldb)
			c := randomSlice(rng, m*ldc)
			want := append([]float64(nil), c...)
			naiveGemm(ta, tb, m, n, k, 1.3, a, lda, b, ldb, 0.7, want, ldc)
			Dgemm(ta, tb, m, n, k, 1.3, a, lda, b, ldb, 0.7, c, ldc)
			if d := maxAbsDiff(c, want); d > 1e-12 {
				t.Errorf("transA=%v transB=%v: max diff %v", ta, tb, d)
			}
		}
	}
}

func TestDgemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta == 0 must overwrite C even when it holds NaN.
	m, n, k := 2, 2, 2
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	Dgemm(false, false, m, n, k, 1, a, k, b, n, 0, c, n)
	want := []float64{19, 22, 43, 50}
	if d := maxAbsDiff(c, want); d > 1e-13 {
		t.Errorf("C = %v, want %v", c, want)
	}
}

func TestDgemmAlphaZeroOnlyScales(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	Dgemm(false, false, 2, 2, 2, 0, []float64{9, 9, 9, 9}, 2, []float64{9, 9, 9, 9}, 2, 2, c, 2)
	want := []float64{2, 4, 6, 8}
	if maxAbsDiff(c, want) != 0 {
		t.Errorf("C = %v, want %v", c, want)
	}
}

func TestDgemmZeroK(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	Dgemm(false, false, 2, 2, 0, 1, nil, 1, nil, 1, 1, c, 2)
	want := []float64{1, 2, 3, 4}
	if maxAbsDiff(c, want) != 0 {
		t.Errorf("k=0 modified C: %v", c)
	}
}

func TestDgemmZeroMN(t *testing.T) {
	// Must be a no-op, not a panic.
	Dgemm(false, false, 0, 5, 3, 1, nil, 3, make([]float64, 15), 5, 1, nil, 5)
	Dgemm(false, false, 5, 0, 3, 1, make([]float64, 15), 3, nil, 1, 1, nil, 1)
}

func TestDgemmLeadingDimensions(t *testing.T) {
	// Submatrix multiply inside larger arrays (lda/ldb/ldc > logical cols).
	rng := rand.New(rand.NewSource(3))
	m, n, k := 3, 4, 5
	lda, ldb, ldc := 9, 11, 13
	a := randomSlice(rng, m*lda)
	b := randomSlice(rng, k*ldb)
	c := randomSlice(rng, m*ldc)
	want := append([]float64(nil), c...)
	naiveGemm(false, false, m, n, k, 2, a, lda, b, ldb, 1, want, ldc)
	Dgemm(false, false, m, n, k, 2, a, lda, b, ldb, 1, c, ldc)
	if d := maxAbsDiff(c, want); d > 1e-12 {
		t.Errorf("strided GEMM diff %v", d)
	}
}

func TestDgemmLargeCrossesBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n, k := blockM+13, blockN+17, blockK+7
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	c := make([]float64, m*n)
	want := make([]float64, m*n)
	naiveGemm(false, false, m, n, k, 1, a, k, b, n, 0, want, n)
	Dgemm(false, false, m, n, k, 1, a, k, b, n, 0, c, n)
	if d := maxAbsDiff(c, want); d > 1e-10 {
		t.Errorf("blocked GEMM diff %v", d)
	}
}

func TestDgemmParallelPathMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Force the parallel path by exceeding parallelThreshold.
	m, k := 160, 160
	n := parallelThreshold/(m*k) + 8
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	c1 := make([]float64, m*n)
	c2 := make([]float64, m*n)
	gemmBlocked(false, false, 0, m, n, k, 1, a, k, b, n, c1, n)
	Dgemm(false, false, m, n, k, 1, a, k, b, n, 0, c2, n)
	if d := maxAbsDiff(c1, c2); d > 1e-10 {
		t.Errorf("parallel vs serial diff %v", d)
	}
}

func TestDgemmParallelBetaFold(t *testing.T) {
	// Beta scaling is folded into the row-split workers rather than run
	// as a serial pre-pass; every beta class must still match the naive
	// reference above the parallel threshold.
	rng := rand.New(rand.NewSource(7))
	m, k := 160, 160
	n := parallelThreshold/(m*k) + 8
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	for _, beta := range []float64{0, 0.5, 1} {
		c := randomSlice(rng, m*n)
		want := append([]float64(nil), c...)
		naiveGemm(false, false, m, n, k, 1.1, a, k, b, n, beta, want, n)
		Dgemm(false, false, m, n, k, 1.1, a, k, b, n, beta, c, n)
		if d := maxAbsDiff(c, want); d > 1e-10 {
			t.Errorf("beta=%v: parallel beta fold diff %v", beta, d)
		}
	}
}

func TestDgemmAlphaZeroLargeOnlyScales(t *testing.T) {
	// alpha == 0 short-circuits to a pure beta scale even at sizes that
	// would otherwise take the parallel path.
	m, k := 160, 160
	n := parallelThreshold/(m*k) + 8
	c := make([]float64, m*n)
	for i := range c {
		c[i] = 2
	}
	Dgemm(false, false, m, n, k, 0, make([]float64, m*k), k, make([]float64, k*n), n, 0.5, c, n)
	for i, v := range c {
		if v != 1 {
			t.Fatalf("element %d = %v, want 1", i, v)
		}
	}
}

func TestDgemmNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dimension did not panic")
		}
	}()
	Dgemm(false, false, -1, 2, 2, 1, nil, 2, nil, 2, 1, nil, 2)
}

func TestDgemmShortSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short A slice did not panic")
		}
	}()
	Dgemm(false, false, 2, 2, 2, 1, []float64{1, 2, 3}, 2, make([]float64, 4), 2, 0, make([]float64, 4), 2)
}

func TestGemmFlops(t *testing.T) {
	if got := GemmFlops(3, 4, 5); got != 120 {
		t.Errorf("GemmFlops = %d, want 120", got)
	}
	big := GemmFlops(100000, 100000, 100000)
	if big != 2e15 {
		t.Errorf("GemmFlops large = %d", big)
	}
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(2, x, y)
	want := []float64{12, 24, 36}
	if maxAbsDiff(y, want) != 0 {
		t.Errorf("Daxpy: %v", y)
	}
	Daxpy(0, x, y) // no-op
	if maxAbsDiff(y, want) != 0 {
		t.Errorf("Daxpy alpha=0 modified y: %v", y)
	}
}

func TestDaxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Daxpy(1, []float64{1}, []float64{1, 2})
}

func TestDdot(t *testing.T) {
	if got := Ddot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Ddot = %v, want 32", got)
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, -2, 3}
	Dscal(-2, x)
	want := []float64{-2, 4, -6}
	if maxAbsDiff(x, want) != 0 {
		t.Errorf("Dscal: %v", x)
	}
}

func TestDger(t *testing.T) {
	a := make([]float64, 6)
	Dger(2, []float64{1, 2}, []float64{3, 4, 5}, a, 3)
	want := []float64{6, 8, 10, 12, 16, 20}
	if maxAbsDiff(a, want) != 0 {
		t.Errorf("Dger: %v", a)
	}
}

func TestIdamax(t *testing.T) {
	if got := Idamax([]float64{1, -5, 3}); got != 1 {
		t.Errorf("Idamax = %d, want 1", got)
	}
	if got := Idamax(nil); got != -1 {
		t.Errorf("Idamax(nil) = %d, want -1", got)
	}
}

// Property test: Dgemm agrees with the naive reference on random sizes
// and parameters.
func TestQuickDgemmMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		ta, tb := rng.Intn(2) == 1, rng.Intn(2) == 1
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		lda, ldb, ldc := cols(ta, m, k)+rng.Intn(3), cols(tb, k, n)+rng.Intn(3), n+rng.Intn(3)
		a := randomSlice(rng, rows(ta, m, k)*lda)
		b := randomSlice(rng, rows(tb, k, n)*ldb)
		c := randomSlice(rng, m*ldc)
		want := append([]float64(nil), c...)
		naiveGemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
		Dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return maxAbsDiff(c, want) <= 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDgemm128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 128
	a := randomSlice(rng, n*n)
	bb := randomSlice(rng, n*n)
	c := make([]float64, n*n)
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dgemm(false, false, n, n, n, 1, a, n, bb, n, 0, c, n)
	}
}
