package blas

import (
	"math"
	"math/rand"
	"testing"
)

// withCrossover runs f with the process-wide crossover forced to cut,
// restoring the previous value afterwards.
func withCrossover(t *testing.T, cut int, f func()) {
	t.Helper()
	prev := StrassenCrossover()
	SetStrassenCrossover(cut)
	defer SetStrassenCrossover(prev)
	f()
}

// TestDgemmStrassenMatchesClassic pins the Strassen path against the
// classic kernel over a size/transpose/alpha-beta grid with a small
// forced crossover so several recursion levels engage, including odd
// dimensions at every level. Strassen reassociates additions, so the
// comparison is a tight elementwise tolerance, not bitwise.
func TestDgemmStrassenMatchesClassic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []struct{ m, n, k int }{
		{16, 16, 16},
		{17, 19, 23}, // odd everywhere, multiple levels
		{32, 32, 32},
		{33, 31, 35},
		{48, 12, 40}, // n below the crossover: recursion must hand off
		{40, 48, 9},  // k below the crossover
		{64, 33, 47},
	}
	scales := []struct{ alpha, beta float64 }{
		{1, 0}, {1, 1}, {2, 0}, {-1, 1}, {0.5, -2}, {0, 3},
	}
	withCrossover(t, 8, func() {
		for _, d := range dims {
			for _, ta := range []bool{false, true} {
				for _, tb := range []bool{false, true} {
					lda := cols(ta, d.m, d.k)
					ldb := cols(tb, d.k, d.n)
					a := randomSlice(rng, rows(ta, d.m, d.k)*lda)
					b := randomSlice(rng, rows(tb, d.k, d.n)*ldb)
					c0 := randomSlice(rng, d.m*d.n)
					for _, sc := range scales {
						want := append([]float64(nil), c0...)
						got := append([]float64(nil), c0...)
						Dgemm(ta, tb, d.m, d.n, d.k, sc.alpha, a, lda, b, ldb, sc.beta, want, d.n)
						DgemmStrassen(ta, tb, d.m, d.n, d.k, sc.alpha, a, lda, b, ldb, sc.beta, got, d.n)
						// Entries are O(1) normals summed over k<=64
						// products: 1e-11 is ~1e5 ulps of headroom yet
						// catches any schedule error (which is O(1)).
						if diff := maxAbsDiff(want, got); diff > 1e-11 {
							t.Fatalf("m=%d n=%d k=%d ta=%v tb=%v alpha=%g beta=%g: max |classic-strassen| = %g",
								d.m, d.n, d.k, ta, tb, sc.alpha, sc.beta, diff)
						}
					}
				}
			}
		}
	})
}

// TestDgemmStrassenBelowCrossoverBitwise verifies the delegation
// contract: with every dimension at or below the crossover (or the path
// disabled), DgemmStrassen is Dgemm, bitwise included.
func TestDgemmStrassenBelowCrossoverBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, n, k := 24, 24, 24
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	c0 := randomSlice(rng, m*n)
	for _, cut := range []int{0, -1, 24, 1024} {
		withCrossover(t, cut, func() {
			want := append([]float64(nil), c0...)
			got := append([]float64(nil), c0...)
			Dgemm(false, false, m, n, k, 1.5, a, k, b, n, 0.5, want, n)
			DgemmStrassen(false, false, m, n, k, 1.5, a, k, b, n, 0.5, got, n)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("cut=%d: element %d differs bitwise: %v vs %v", cut, i, want[i], got[i])
				}
			}
		})
	}
}

// TestDgemmStrassenPooledBuffersClean runs the recursion repeatedly so
// every temporary is a pool reuse, checking results stay exact: a
// recycled buffer must be indistinguishable from a fresh one.
func TestDgemmStrassenPooledBuffersClean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 33, 29, 31
	a := randomSlice(rng, m*k)
	b := randomSlice(rng, k*n)
	want := make([]float64, m*n)
	naiveGemm(false, false, m, n, k, 1, a, k, b, n, 0, want, n)
	withCrossover(t, 8, func() {
		for iter := 0; iter < 5; iter++ {
			got := make([]float64, m*n)
			DgemmStrassen(false, false, m, n, k, 1, a, k, b, n, 0, got, n)
			if diff := maxAbsDiff(want, got); diff > 1e-11 {
				t.Fatalf("iter %d: max |naive-strassen| = %g", iter, diff)
			}
		}
	})
}

// TestStrassenWorkspacePool covers the bucketed buffer pool directly:
// reuse returns zeroed slices of the requested length.
func TestStrassenWorkspacePool(t *testing.T) {
	s := getBuf(100)
	if len(s) != 100 || cap(s) != 128 {
		t.Fatalf("getBuf(100): len=%d cap=%d, want 100/128", len(s), cap(s))
	}
	for i := range s {
		s[i] = math.NaN()
	}
	putBuf(s)
	r := getBuf(80)
	if len(r) != 80 {
		t.Fatalf("getBuf(80) after put: len=%d", len(r))
	}
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	if getBuf(0) != nil {
		t.Fatal("getBuf(0) should be nil")
	}
	putBuf(nil) // must not panic
}
