package blas

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// The GEMM worker pool bounds the total number of extra goroutines
// Dgemm may have in flight at any instant, process-wide. Without it
// every concurrent Dgemm call fanned out up to GOMAXPROCS goroutines of
// its own, so J concurrent transform jobs oversubscribed the machine
// J-fold; a job server sizes the pool once at startup (SetWorkers) and
// every concurrent Run then shares the one budget.
//
// The calling goroutine always computes, so Dgemm never blocks on the
// pool: it try-acquires extra slots and runs with whatever it got (down
// to fully serial). Row-split boundaries only change which goroutine
// computes a row — each C row's accumulation order is fixed — so
// results are bitwise identical at any worker count.

// workerPool is a counting semaphore of extra-worker slots. It is
// immutable after construction; SetWorkers swaps in a fresh pool and
// in-flight acquisitions drain back to the pool they came from.
type workerPool struct {
	slots chan struct{}
}

func newWorkerPool(workers int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	p := &workerPool{slots: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// tryAcquire claims up to want extra-worker slots without blocking and
// returns how many it got.
func (p *workerPool) tryAcquire(want int) int {
	got := 0
	for got < want {
		select {
		case <-p.slots:
			got++
		default:
			return got
		}
	}
	return got
}

// release returns n slots to the pool.
func (p *workerPool) release(n int) {
	for i := 0; i < n; i++ {
		p.slots <- struct{}{}
	}
}

// gemmPool holds the process-wide pool, lazily sized to runtime.NumCPU
// (not GOMAXPROCS, which benchmarks mutate mid-process) on first use.
var gemmPool atomic.Pointer[workerPool]

func getPool() *workerPool {
	for {
		if p := gemmPool.Load(); p != nil {
			return p
		}
		gemmPool.CompareAndSwap(nil, newWorkerPool(runtime.NumCPU()))
	}
}

// SetWorkers sizes the process-wide GEMM worker pool: at most workers
// goroutines (including each caller's own) compute GEMMs concurrently
// across ALL Dgemm calls in the process. Values below 1 are treated as
// 1 (fully serial). Call once at process startup — a long-running
// server sets its compute budget here; library use without a call gets
// a runtime.NumCPU-sized default. Safe for concurrent use; Dgemm calls
// already holding slots of the previous pool finish undisturbed.
func SetWorkers(workers int) {
	gemmPool.Store(newWorkerPool(workers))
}

// Workers reports the pool's size (the maximum concurrent GEMM
// goroutines, including callers' own).
func Workers() int {
	return cap(getPool().slots) + 1
}

// The float64 workspace pool recycles the quadrant temporaries the
// Strassen path allocates at every recursion level (see strassen.go).
// Buffers are bucketed by power-of-two capacity like the ga runtime's
// tile-staging pool, and re-zeroed on reuse so a recycled buffer is
// indistinguishable from a fresh make: the Strassen schedule only ever
// overwrites its temporaries, but zeroing keeps the pool's contract
// independent of that discipline.

// bufBuckets covers capacities up to 2^39 elements — far beyond any
// matrix this package is asked to multiply.
const bufBuckets = 40

var bufPools [bufBuckets]sync.Pool

// bufBucket returns the smallest b with 1<<b >= n (n > 0).
func bufBucket(n int) int {
	return bits.Len(uint(n - 1))
}

// getBuf returns a zeroed length-n buffer, recycled when the bucket has
// one free.
func getBuf(n int) []float64 {
	if n <= 0 {
		return nil
	}
	bkt := bufBucket(n)
	if bkt >= bufBuckets {
		return make([]float64, n)
	}
	if v := bufPools[bkt].Get(); v != nil {
		s := (*v.(*[]float64))[:n]
		clear(s)
		return s
	}
	return make([]float64, n, 1<<bkt)
}

// putBuf recycles a buffer obtained from getBuf. Buffers whose capacity
// is not an exact bucket size (never produced by getBuf) are dropped.
func putBuf(s []float64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	bkt := bufBucket(c)
	if bkt >= bufBuckets {
		return
	}
	s = s[:0]
	bufPools[bkt].Put(&s)
}
