package pebble

import (
	"container/heap"
	"fmt"

	"fourindex/internal/cdag"
)

// Result summarises a simulated schedule.
type Result struct {
	Loads   int
	Stores  int
	PeakRed int
}

// IO returns the total data movement of the schedule.
func (r Result) IO() int { return r.Loads + r.Stores }

const never = int(^uint(0) >> 1) // sentinel next-use for dead values

// evictEntry is a lazy max-heap entry ordered by next use position.
type evictEntry struct {
	v       cdag.VID
	nextUse int
}

// evictHeap implements heap.Interface over evictEntry values. Less
// orders by *descending* next use, so the heap root is always Belady's
// victim: the resident value referenced furthest in the future.
type evictHeap []evictEntry

// Len reports the number of resident candidates.
func (h evictHeap) Len() int { return len(h) }

// Less ranks later next use as higher priority (a max-heap on nextUse).
func (h evictHeap) Less(i, j int) bool { return h[i].nextUse > h[j].nextUse }

// Swap exchanges two entries; required by heap.Interface.
func (h evictHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push appends an entry; called only through heap.Push.
func (h *evictHeap) Push(x any) { *h = append(*h, x.(evictEntry)) }

// Pop removes and returns the last entry; called only through heap.Pop,
// which has already moved the victim there.
func (h *evictHeap) Pop() any { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Simulate plays the red-blue pebble game on g with S red pebbles,
// computing operations in the given topological order. Operand loads are
// inserted on demand; eviction is Belady (furthest next use), spilling
// (Store before Delete) any victim whose value is still needed or is an
// unsaved output. It returns the schedule's I/O or an error when S is too
// small to compute some operation at all.
//
// The compute order fully determines the schedule's data movement (up to
// the eviction policy), which is exactly how the paper compares fusion
// and tiling choices.
func Simulate(g *cdag.Graph, s int, order []cdag.VID) (Result, error) {
	return simulate(g, s, order, nil)
}

// simulate is Simulate with an optional move recorder.
func simulate(g *cdag.Graph, s int, order []cdag.VID, rec *recorder) (Result, error) {
	gm := NewGame(g, s)

	// Validate the order covers each non-input exactly once.
	n := g.NumVertices()
	seen := make([]bool, n)
	ops := 0
	for _, v := range order {
		if g.IsInput(v) {
			return Result{}, fmt.Errorf("pebble: order contains input %q", g.Name(v))
		}
		if seen[v] {
			return Result{}, fmt.Errorf("pebble: order computes %q twice", g.Name(v))
		}
		seen[v] = true
		ops++
	}
	for v := 0; v < n; v++ {
		if !g.IsInput(cdag.VID(v)) && !seen[v] {
			return Result{}, fmt.Errorf("pebble: order misses operation %q", g.Name(cdag.VID(v)))
		}
	}

	// useQueue[v] holds the order positions at which v is consumed,
	// ascending. Position of computing v itself is not a use.
	useQueue := make([][]int, n)
	for t, v := range order {
		for _, p := range g.Preds(v) {
			useQueue[p] = append(useQueue[p], t)
		}
	}
	nextUse := func(v cdag.VID) int {
		if q := useQueue[v]; len(q) > 0 {
			return q[0]
		}
		return never
	}
	popUse := func(v cdag.VID) {
		useQueue[v] = useQueue[v][1:]
	}

	h := &evictHeap{}
	inRed := make([]bool, n) // tracks our view of red set for lazy heap
	peak := 0

	push := func(v cdag.VID) {
		inRed[v] = true
		heap.Push(h, evictEntry{v: v, nextUse: nextUse(v)})
		if gm.RedCount() > peak {
			peak = gm.RedCount()
		}
	}

	// makeRoom evicts victims until a red pebble is free, never touching
	// pinned vertices (operands of the in-flight operation).
	makeRoom := func(pinned map[cdag.VID]bool) error {
		for gm.RedCount() >= s {
			// Pop until a live, unpinned, current entry surfaces.
			var victim cdag.VID = -1
			var stash []evictEntry
			for h.Len() > 0 {
				e := heap.Pop(h).(evictEntry)
				if !inRed[e.v] || e.nextUse != nextUse(e.v) {
					continue // stale
				}
				if pinned[e.v] {
					stash = append(stash, e)
					continue
				}
				victim = e.v
				break
			}
			for _, e := range stash {
				heap.Push(h, e)
			}
			if victim < 0 {
				return fmt.Errorf("pebble: S=%d too small: all %d red pebbles pinned", s, gm.RedCount())
			}
			// Spill if the value is still needed, or is an output
			// not yet saved.
			if (nextUse(victim) != never || g.IsOutput(victim)) && !gm.blue[victim] {
				if err := gm.Store(victim); err != nil {
					return err
				}
				rec.add(MoveStore, victim)
			}
			if err := gm.Delete(victim); err != nil {
				return err
			}
			rec.add(MoveDelete, victim)
			inRed[victim] = false
		}
		return nil
	}

	pinned := make(map[cdag.VID]bool, 4)
	for _, v := range order {
		// Pin and materialise operands.
		clear(pinned)
		for _, p := range g.Preds(v) {
			pinned[p] = true
		}
		for _, p := range g.Preds(v) {
			if inRed[p] {
				continue
			}
			if !gm.blue[p] {
				return Result{}, fmt.Errorf("pebble: operand %q of %q lost (evicted without store?)", g.Name(p), g.Name(v))
			}
			if err := makeRoom(pinned); err != nil {
				return Result{}, err
			}
			if err := gm.Load(p); err != nil {
				return Result{}, err
			}
			rec.add(MoveLoad, p)
			push(p)
		}
		if err := makeRoom(pinned); err != nil {
			return Result{}, err
		}
		if err := gm.Compute(v); err != nil {
			return Result{}, err
		}
		rec.add(MoveCompute, v)
		push(v)

		// Consume this use of each operand; drop dead values.
		for _, p := range g.Preds(v) {
			popUse(p)
			if nextUse(p) == never && inRed[p] {
				if g.IsOutput(p) && !gm.blue[p] {
					if err := gm.Store(p); err != nil {
						return Result{}, err
					}
					rec.add(MoveStore, p)
				}
				if err := gm.Delete(p); err != nil {
					return Result{}, err
				}
				rec.add(MoveDelete, p)
				inRed[p] = false
			} else if inRed[p] {
				heap.Push(h, evictEntry{v: p, nextUse: nextUse(p)})
			}
		}
		// The freshly computed value may itself be dead (an output
		// with no consumers): save and release it eagerly.
		if nextUse(v) == never {
			if g.IsOutput(v) && !gm.blue[v] {
				if err := gm.Store(v); err != nil {
					return Result{}, err
				}
				rec.add(MoveStore, v)
			}
			if err := gm.Delete(v); err != nil {
				return Result{}, err
			}
			rec.add(MoveDelete, v)
			inRed[v] = false
		}
	}

	// Save any outputs still only in red.
	for _, v := range g.Outputs() {
		if inRed[v] && !gm.blue[v] {
			if err := gm.Store(v); err != nil {
				return Result{}, err
			}
			rec.add(MoveStore, v)
		}
	}
	if !gm.Complete() {
		return Result{}, fmt.Errorf("pebble: schedule did not blue-pebble all outputs")
	}
	return Result{Loads: gm.Loads(), Stores: gm.Stores(), PeakRed: peak}, nil
}
