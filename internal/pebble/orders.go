package pebble

import "fourindex/internal/cdag"

// OrderMatMulUntiled returns the compute order of the untiled i-j-k
// matmul loop nest of Figure 1 (left): for each (i, j), the whole k
// reduction chain.
func OrderMatMulUntiled(m *cdag.MatMul) []cdag.VID {
	var order []cdag.VID
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			for k := 0; k < m.N; k++ {
				order = append(order, m.Partial[i][j][k])
			}
		}
	}
	return order
}

// OrderMatMulTiled returns the compute order of the T-tiled matmul loop
// nest of Figure 1 (right).
func OrderMatMulTiled(m *cdag.MatMul, t int) []cdag.VID {
	var order []cdag.VID
	n := m.N
	for ti := 0; ti < n; ti += t {
		for tj := 0; tj < n; tj += t {
			for tk := 0; tk < n; tk += t {
				for i := ti; i < min(ti+t, n); i++ {
					for j := tj; j < min(tj+t, n); j++ {
						for k := tk; k < min(tk+t, n); k++ {
							order = append(order, m.Partial[i][j][k])
						}
					}
				}
			}
		}
	}
	return order
}

// OrderChainUnfused computes the first product entirely, then the second
// (Definition 4.1's non-fused schedule).
func OrderChainUnfused(ch *cdag.MatMulChain) []cdag.VID {
	return append(OrderMatMulUntiled(ch.First), OrderMatMulUntiled(ch.Second)...)
}

// OrderChainFused interleaves the two products row-wise: row i of the
// intermediate C is computed and immediately consumed by row i of E,
// so C never needs to be stored (a fused schedule per Definition 4.1).
func OrderChainFused(ch *cdag.MatMulChain) []cdag.VID {
	var order []cdag.VID
	n := ch.First.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				order = append(order, ch.First.Partial[i][j][k])
			}
		}
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				order = append(order, ch.Second.Partial[i][j][k])
			}
		}
	}
	return order
}

// contractionOrder emits one contraction of the four-index chain in the
// I/O-optimal Listing 5 order: for each macro-column (the three
// non-contracted source indices), all produced elements' reduction
// chains. pos is the replaced index position as in cdag.BuildFourIndex.
func contractionOrder(f *cdag.FourIndex, dst []cdag.VID, pos int) []cdag.VID {
	// Reconstructing chain vertices: dst holds only final vertices;
	// chains are contiguous VIDs ending at the final vertex (each
	// reduction chain is built consecutively), so chain vertex r is
	// final - (n-1) + r.
	n := f.N
	var order []cdag.VID
	emit := func(a, b, c, d int) {
		final := dst[cdag.Idx4(n, a, b, c, d)]
		for r := 0; r < n; r++ {
			order = append(order, final-cdag.VID(n-1)+cdag.VID(r))
		}
	}
	idx := [4]int{}
	// Loop the three fixed indices outermost, the produced index next.
	fixed := make([]int, 0, 3)
	for p := 0; p < 4; p++ {
		if p != pos {
			fixed = append(fixed, p)
		}
	}
	for x0 := 0; x0 < n; x0++ {
		for x1 := 0; x1 < n; x1++ {
			for x2 := 0; x2 < n; x2++ {
				for out := 0; out < n; out++ {
					idx[fixed[0]], idx[fixed[1]], idx[fixed[2]] = x0, x1, x2
					idx[pos] = out
					emit(idx[0], idx[1], idx[2], idx[3])
				}
			}
		}
	}
	return order
}

// OrderFourIndexUnfused runs the four contractions one after another
// (Listing 1), each in its Listing 5 internal order. Intermediates are
// spilled between contractions when S is small.
func OrderFourIndexUnfused(f *cdag.FourIndex) []cdag.VID {
	var order []cdag.VID
	order = append(order, contractionOrder(f, f.O1, 0)...)
	order = append(order, contractionOrder(f, f.O2, 1)...)
	order = append(order, contractionOrder(f, f.O3, 2)...)
	order = append(order, contractionOrder(f, f.C, 3)...)
	return order
}

// OrderFourIndexFusedPair fuses the first two contractions (the fused
// pair of Theorem 5.1 / Listing 6) and then the last two: for each
// (k, l), the O1 slice O1[*,*,k,l] is produced and immediately consumed
// into O2[*,*,k,l]; afterwards, for each (a, b), O3[a,b,*,*] feeds
// C[a,b,*,*] (Listing 9's op12/34 schedule).
func OrderFourIndexFusedPair(f *cdag.FourIndex) []cdag.VID {
	n := f.N
	var order []cdag.VID
	chain := func(final cdag.VID) {
		for r := 0; r < n; r++ {
			order = append(order, final-cdag.VID(n-1)+cdag.VID(r))
		}
	}
	for k := 0; k < n; k++ {
		for l := 0; l < n; l++ {
			for j := 0; j < n; j++ {
				for a := 0; a < n; a++ {
					chain(f.O1[cdag.Idx4(n, a, j, k, l)])
				}
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					chain(f.O2[cdag.Idx4(n, a, b, k, l)])
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			// O3[a,b,*,*] is produced and immediately consumed into
			// C[a,b,*,*], so it never leaves fast memory.
			for c := 0; c < n; c++ {
				for l := 0; l < n; l++ {
					chain(f.O3[cdag.Idx4(n, a, b, c, l)])
				}
			}
			for c := 0; c < n; c++ {
				for d := 0; d < n; d++ {
					chain(f.C[cdag.Idx4(n, a, b, c, d)])
				}
			}
		}
	}
	return order
}

// OrderFourIndexFullyFused is the Listing 7 schedule: loop l outermost;
// for each l produce the O1, O2, O3 slices for that l and accumulate the
// l-th layer of every C reduction chain. C's partials stay in fast
// memory across l iterations, which is why S >= |C| is required.
func OrderFourIndexFullyFused(f *cdag.FourIndex) []cdag.VID {
	n := f.N
	var order []cdag.VID
	chain := func(final cdag.VID) {
		for r := 0; r < n; r++ {
			order = append(order, final-cdag.VID(n-1)+cdag.VID(r))
		}
	}
	for l := 0; l < n; l++ {
		// O1[a,j,k,l] for all a,j,k.
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for a := 0; a < n; a++ {
					chain(f.O1[cdag.Idx4(n, a, j, k, l)])
				}
			}
		}
		// O2[a,b,k,l].
		for k := 0; k < n; k++ {
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					chain(f.O2[cdag.Idx4(n, a, b, k, l)])
				}
			}
		}
		// O3[a,b,c,l].
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					chain(f.O3[cdag.Idx4(n, a, b, c, l)])
				}
			}
		}
		// C partial layer r = l for every output element.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				for c := 0; c < n; c++ {
					for d := 0; d < n; d++ {
						final := f.C[cdag.Idx4(n, a, b, c, d)]
						order = append(order, final-cdag.VID(n-1)+cdag.VID(l))
					}
				}
			}
		}
	}
	return order
}

// OrderRectChainUnfused computes the full intermediate C, then E
// (Definition 4.1's non-fused schedule for the Section 4 tall-skinny
// example).
func OrderRectChainUnfused(rc *cdag.RectChain) []cdag.VID {
	var order []cdag.VID
	for i := 0; i < rc.N; i++ {
		for j := 0; j < rc.N; j++ {
			order = append(order, rc.CPartial[i][j]...)
		}
	}
	for i := 0; i < rc.N; i++ {
		for j := 0; j < rc.K; j++ {
			order = append(order, rc.EPartial[i][j]...)
		}
	}
	return order
}

// OrderRectChainFused interleaves per row: row i of the intermediate is
// produced and immediately consumed by row i of E, so the N x N
// intermediate never leaves fast memory — the profitable fusion of
// Section 4's second example.
func OrderRectChainFused(rc *cdag.RectChain) []cdag.VID {
	var order []cdag.VID
	for i := 0; i < rc.N; i++ {
		for j := 0; j < rc.N; j++ {
			order = append(order, rc.CPartial[i][j]...)
		}
		for j := 0; j < rc.K; j++ {
			order = append(order, rc.EPartial[i][j]...)
		}
	}
	return order
}

// OrderListing5 is the paper's Listing 5 schedule for a single
// contraction: load B once (it stays resident), then for each macro
// column (j, k, l) stream the n values of A[*, j, k, l] and produce all
// n outputs O1[*, j, k, l]. With S >= n^2 + n + 2 its I/O is exactly
// |A| + |B| + |O1|.
func OrderListing5(c *cdag.Contraction) []cdag.VID {
	n := c.N
	var order []cdag.VID
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			for l := 0; l < n; l++ {
				for a := 0; a < n; a++ {
					final := c.O1[cdag.Idx4(n, a, j, k, l)]
					for i := 0; i < n; i++ {
						order = append(order, final-cdag.VID(n-1)+cdag.VID(i))
					}
				}
			}
		}
	}
	return order
}
