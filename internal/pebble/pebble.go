// Package pebble implements the red-blue pebble game of Hong & Kung
// (Definition A.2 of the paper, no recomputation): S red pebbles model
// fast memory, unbounded blue pebbles model slow memory, and the I/O cost
// of a complete calculation is the number of Load (R1) and Store (R2)
// moves.
//
// Besides the raw game (move-by-move with full rule validation), the
// package provides a schedule simulator: given a topological compute
// order for a CDAG, it plays the game with Belady (furthest-next-use)
// eviction, spilling still-needed values to blue pebbles when red
// capacity runs out. The measured I/O of concrete schedules — untiled
// vs tiled matmul (Section 2.3), unfused vs fused contraction chains
// (Sections 5-6) — is what the tests compare against the analytic lower
// bounds of package lb.
package pebble

import (
	"fmt"

	"fourindex/internal/cdag"
)

// Game is a raw red-blue pebble game with rule checking.
type Game struct {
	g        *cdag.Graph
	s        int
	red      []bool
	blue     []bool
	computed []bool
	redCount int
	loads    int
	stores   int
}

// NewGame starts a game on g with S red pebbles; blue pebbles sit on all
// inputs (Definition A.2).
func NewGame(g *cdag.Graph, s int) *Game {
	if s <= 0 {
		panic(fmt.Sprintf("pebble: non-positive red pebble count %d", s))
	}
	n := g.NumVertices()
	gm := &Game{
		g:        g,
		s:        s,
		red:      make([]bool, n),
		blue:     make([]bool, n),
		computed: make([]bool, n),
	}
	for _, v := range g.Inputs() {
		gm.blue[v] = true
		gm.computed[v] = true // inputs carry their value from the start
	}
	return gm
}

// Load is rule R1: place a red pebble on a vertex holding a blue pebble.
func (gm *Game) Load(v cdag.VID) error {
	if !gm.blue[v] {
		return fmt.Errorf("pebble: R1 on %q without a blue pebble", gm.g.Name(v))
	}
	if gm.red[v] {
		return fmt.Errorf("pebble: R1 on %q which is already red", gm.g.Name(v))
	}
	if gm.redCount >= gm.s {
		return fmt.Errorf("pebble: R1 on %q exceeds %d red pebbles", gm.g.Name(v), gm.s)
	}
	gm.red[v] = true
	gm.redCount++
	gm.loads++
	return nil
}

// Store is rule R2: place a blue pebble on a vertex holding a red pebble.
func (gm *Game) Store(v cdag.VID) error {
	if !gm.red[v] {
		return fmt.Errorf("pebble: R2 on %q without a red pebble", gm.g.Name(v))
	}
	if !gm.blue[v] {
		gm.blue[v] = true
	}
	gm.stores++
	return nil
}

// Compute is rule R3: place a red pebble on an operation whose
// predecessors are all red. Recomputation is disallowed.
func (gm *Game) Compute(v cdag.VID) error {
	if gm.g.IsInput(v) {
		return fmt.Errorf("pebble: R3 on input %q", gm.g.Name(v))
	}
	if gm.computed[v] {
		return fmt.Errorf("pebble: R3 recomputation of %q", gm.g.Name(v))
	}
	for _, p := range gm.g.Preds(v) {
		if !gm.red[p] {
			return fmt.Errorf("pebble: R3 on %q with non-red predecessor %q", gm.g.Name(v), gm.g.Name(p))
		}
	}
	if gm.redCount >= gm.s {
		return fmt.Errorf("pebble: R3 on %q exceeds %d red pebbles", gm.g.Name(v), gm.s)
	}
	gm.red[v] = true
	gm.redCount++
	gm.computed[v] = true
	return nil
}

// Delete is rule R4: remove a red pebble.
func (gm *Game) Delete(v cdag.VID) error {
	if !gm.red[v] {
		return fmt.Errorf("pebble: R4 on %q without a red pebble", gm.g.Name(v))
	}
	gm.red[v] = false
	gm.redCount--
	return nil
}

// IO returns loads + stores so far.
func (gm *Game) IO() int { return gm.loads + gm.stores }

// Loads returns the R1 count.
func (gm *Game) Loads() int { return gm.loads }

// Stores returns the R2 count.
func (gm *Game) Stores() int { return gm.stores }

// RedCount returns the number of red pebbles in use.
func (gm *Game) RedCount() int { return gm.redCount }

// Complete reports whether every output holds a blue pebble.
func (gm *Game) Complete() bool {
	for _, v := range gm.g.Outputs() {
		if !gm.blue[v] {
			return false
		}
	}
	return true
}
