package pebble

import (
	"testing"

	"fourindex/internal/cdag"
)

func BenchmarkSimulateMatmul(b *testing.B) {
	m := cdag.BuildMatMul(10)
	order := OrderMatMulTiled(m, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m.G, 60, order); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateFourIndexFused(b *testing.B) {
	f := cdag.BuildFourIndex(3)
	order := OrderFourIndexFullyFused(f)
	n4 := 81
	s := n4 + 3*27 + 4*9 + 14
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(f.G, s, order); err != nil {
			b.Fatal(err)
		}
	}
}
