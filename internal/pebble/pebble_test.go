package pebble

import (
	"testing"

	"fourindex/internal/cdag"
	"fourindex/internal/lb"
)

func TestGameRules(t *testing.T) {
	g := cdag.NewGraph()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddOp("c", a, b)
	g.MarkOutput(c)

	gm := NewGame(g, 3)
	if err := gm.Compute(c); err == nil {
		t.Error("compute with non-red predecessors should fail")
	}
	if err := gm.Load(a); err != nil {
		t.Fatal(err)
	}
	if err := gm.Load(a); err == nil {
		t.Error("double load should fail")
	}
	if err := gm.Load(b); err != nil {
		t.Fatal(err)
	}
	if err := gm.Compute(c); err != nil {
		t.Fatal(err)
	}
	if gm.RedCount() != 3 {
		t.Errorf("red count = %d", gm.RedCount())
	}
	if err := gm.Compute(c); err == nil {
		t.Error("recomputation should fail (no-repebbling variant)")
	}
	if gm.Complete() {
		t.Error("output not yet blue")
	}
	if err := gm.Store(c); err != nil {
		t.Fatal(err)
	}
	if !gm.Complete() {
		t.Error("output stored; game should be complete")
	}
	if gm.IO() != 3 || gm.Loads() != 2 || gm.Stores() != 1 {
		t.Errorf("IO=%d loads=%d stores=%d", gm.IO(), gm.Loads(), gm.Stores())
	}
	if err := gm.Delete(c); err != nil {
		t.Fatal(err)
	}
	if err := gm.Delete(c); err == nil {
		t.Error("deleting a non-red pebble should fail")
	}
}

func TestGameCapacity(t *testing.T) {
	g := cdag.NewGraph()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddOp("c", a, b)
	g.MarkOutput(c)
	gm := NewGame(g, 2)
	if err := gm.Load(a); err != nil {
		t.Fatal(err)
	}
	if err := gm.Load(b); err != nil {
		t.Fatal(err)
	}
	if err := gm.Compute(c); err == nil {
		t.Error("compute beyond red capacity should fail")
	}
	if err := gm.Store(a); err != nil { // a back to blue
		t.Fatal(err)
	}
	if err := gm.Delete(a); err != nil {
		t.Fatal(err)
	}
	// Still cannot compute: a is no longer red.
	if err := gm.Compute(c); err == nil {
		t.Error("compute with evicted operand should fail")
	}
}

func TestGameInvalidMoves(t *testing.T) {
	g := cdag.NewGraph()
	a := g.AddInput("a")
	op := g.AddOp("op", a)
	g.MarkOutput(op)
	gm := NewGame(g, 2)
	if err := gm.Store(a); err == nil {
		t.Error("store without red pebble should fail")
	}
	if err := gm.Load(op); err == nil {
		t.Error("load without blue pebble should fail")
	}
	if err := gm.Compute(a); err == nil {
		t.Error("compute on an input should fail")
	}
}

func TestNewGamePanicsOnBadS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("S = 0 did not panic")
		}
	}()
	NewGame(cdag.NewGraph(), 0)
}

func TestSimulateTinyGraph(t *testing.T) {
	g := cdag.NewGraph()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddOp("c", a, b)
	g.MarkOutput(c)
	res, err := Simulate(g, 3, []cdag.VID{c})
	if err != nil {
		t.Fatal(err)
	}
	// 2 loads + 1 output store.
	if res.Loads != 2 || res.Stores != 1 || res.IO() != 3 {
		t.Errorf("result = %+v", res)
	}
	if res.PeakRed != 3 {
		t.Errorf("peak red = %d", res.PeakRed)
	}
}

func TestSimulateOrderValidation(t *testing.T) {
	g := cdag.NewGraph()
	a := g.AddInput("a")
	c := g.AddOp("c", a)
	d := g.AddOp("d", c)
	g.MarkOutput(d)
	if _, err := Simulate(g, 4, []cdag.VID{a, c, d}); err == nil {
		t.Error("order containing an input should fail")
	}
	if _, err := Simulate(g, 4, []cdag.VID{c, c, d}); err == nil {
		t.Error("order computing a vertex twice should fail")
	}
	if _, err := Simulate(g, 4, []cdag.VID{c}); err == nil {
		t.Error("order missing an op should fail")
	}
}

func TestSimulateTooSmallS(t *testing.T) {
	g := cdag.NewGraph()
	a := g.AddInput("a")
	b := g.AddInput("b")
	c := g.AddInput("c")
	op := g.AddOp("op", a, b, c)
	g.MarkOutput(op)
	if _, err := Simulate(g, 3, []cdag.VID{op}); err == nil {
		t.Error("S=3 cannot hold 3 operands plus the result")
	}
	if _, err := Simulate(g, 4, []cdag.VID{op}); err != nil {
		t.Errorf("S=4 should succeed: %v", err)
	}
}

func TestSimulateSpillRoundTrip(t *testing.T) {
	// x is produced, then many unrelated values flood the cache before
	// x is consumed: x must be spilled and reloaded exactly once.
	g := cdag.NewGraph()
	src := g.AddInput("src")
	x := g.AddOp("x", src)
	var noise []cdag.VID
	for i := 0; i < 6; i++ {
		in := g.AddInput("nin")
		v := g.AddOp("noise", in)
		g.MarkOutput(v)
		noise = append(noise, v)
	}
	y := g.AddOp("y", x)
	g.MarkOutput(y)
	order := append([]cdag.VID{x}, noise...)
	order = append(order, y)
	res, err := Simulate(g, 2, order)
	if err != nil {
		t.Fatal(err)
	}
	// Loads: src, 6 noise inputs, x reload = 8.
	// Stores: x spill, 6 noise outputs, y = 8.
	if res.Loads != 8 || res.Stores != 8 {
		t.Errorf("loads=%d stores=%d, want 8/8", res.Loads, res.Stores)
	}
}

// Section 2.3 (Figure 1): with fast memory too small for B, the untiled
// matmul moves ~N^3 elements while the tiled version moves ~2N^3/T.
func TestMatmulTilingReducesIO(t *testing.T) {
	n := 12
	m := cdag.BuildMatMul(n)
	tSize := 4
	s := 3*tSize*tSize + 3 // room for one tile of each matrix
	untiled, err := Simulate(m.G, s, OrderMatMulUntiled(m))
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := Simulate(m.G, s, OrderMatMulTiled(m, tSize))
	if err != nil {
		t.Fatal(err)
	}
	if tiled.IO() >= untiled.IO() {
		t.Errorf("tiled I/O %d should beat untiled %d", tiled.IO(), untiled.IO())
	}
	// Both measured I/Os dominate the scaled Hong-Kung bound and the
	// trivial bound (inputs + outputs).
	trivial := 3 * n * n
	for name, r := range map[string]Result{"tiled": tiled, "untiled": untiled} {
		if r.IO() < trivial {
			t.Errorf("%s I/O %d below trivial bound %d", name, r.IO(), trivial)
		}
	}
}

// Any valid schedule's measured I/O must dominate the Irony et al.
// lower bound (measured >= LB is the defining property of a bound).
func TestMeasuredIODominatesLowerBounds(t *testing.T) {
	n := 10
	m := cdag.BuildMatMul(n)
	for _, s := range []int{8, 16, 64, 256} {
		for name, order := range map[string][]cdag.VID{
			"untiled": OrderMatMulUntiled(m),
			"tiled2":  OrderMatMulTiled(m, 2),
			"tiled4":  OrderMatMulTiled(m, 4),
		} {
			res, err := Simulate(m.G, s, order)
			if err != nil {
				continue // S too small for this order's working set
			}
			irony := lb.IronyMatmulLB(int64(n), int64(n), int64(n), int64(s))
			if float64(res.IO()) < irony {
				t.Errorf("S=%d %s: measured %d < Irony bound %v", s, name, res.IO(), irony)
			}
		}
	}
}

// Section 4's square-chain example: for two chained N x N products,
// fusion is close to futile — the Fusion Lemma caps the saving near 27%
// of one matmul's I/O. With memory for both operand matrices, measured
// fused and unfused I/O are essentially identical, and the Fusion Lemma
// bound holds for the fused schedule.
func TestChainFusionNearFutileForSquare(t *testing.T) {
	n := 8
	ch := cdag.BuildMatMulChain(n)
	s := 2*n*n + 2*n + 4 // both resident matrices + a row + chains
	unfused, err := Simulate(ch.G, s, OrderChainUnfused(ch))
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Simulate(ch.G, s, OrderChainFused(ch))
	if err != nil {
		t.Fatal(err)
	}
	if fused.IO() > unfused.IO() {
		t.Errorf("fused chain I/O %d should not exceed unfused %d at this S", fused.IO(), unfused.IO())
	}
	saving := unfused.IO() - fused.IO()
	perMatmul := unfused.IO() / 2
	if saving > perMatmul*30/100 {
		t.Errorf("square-chain fusion saved %d (>30%% of one matmul's %d); Section 4 rules that out", saving, perMatmul)
	}
	// Fusion Lemma: fused I/O >= LB(C1) + LB(C2) - 2|O1| with the
	// trivial per-matmul bound |in|+|out| = 3n^2.
	lemma := lb.FusionLemma(float64(3*n*n), float64(3*n*n), int64(n*n))
	if float64(fused.IO()) < lemma {
		t.Errorf("fused I/O %d violates Fusion Lemma bound %v", fused.IO(), lemma)
	}
}

// Theorem 5.1 empirically: fusing the first two contractions with
// S >= 3n^2 + n + O(1) achieves I/O = |A| + |O2| (+ B traffic + the
// later contractions' traffic). We isolate the fused pair by comparing
// against the unfused schedule: the pair fusion eliminates exactly O1's
// round trip, 2|O1| = 2n^4.
func TestTheorem51FusedPairEliminatesO1(t *testing.T) {
	n := 4
	f := cdag.BuildFourIndex(n)
	s := 3*n*n + 2*n + 8
	unfused, err := Simulate(f.G, s, OrderFourIndexUnfused(f))
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Simulate(f.G, s, OrderFourIndexFusedPair(f))
	if err != nil {
		t.Fatal(err)
	}
	n4 := n * n * n * n
	saving := unfused.IO() - fused.IO()
	// op12 fusion kills O1's 2n^4 round trip and op34 fusion kills
	// O3's; edge effects (B reloads, slab spills at this modest S) eat
	// a little of it, so require most of O1's round trip plus O3's.
	if saving < 3*n4 {
		t.Errorf("pair fusion saved %d, want at least 3n^4 = %d (toward 2|O1|+2|O3| = %d)", saving, 3*n4, 4*n4)
	}
	if fused.IO() >= unfused.IO() {
		t.Error("pair fusion must strictly reduce I/O")
	}
}

// Theorem 6.1/6.2 and Listing 7 empirically: with S >= |C| + working
// slabs, the fully fused schedule's I/O is exactly
// |A| + |B1..B4| + |C| — full reuse of all intermediates. With S < |C|
// the same schedule is forced to spill.
func TestListing7AchievesFullReuseBound(t *testing.T) {
	n := 3
	f := cdag.BuildFourIndex(n)
	n4 := n * n * n * n
	sBig := n4 + 3*n*n*n + 4*n*n + 2*n + 8
	res, err := Simulate(f.G, sBig, OrderFourIndexFullyFused(f))
	if err != nil {
		t.Fatal(err)
	}
	want := n4 + 4*n*n + n4 // load A + load Bs + store C
	if res.IO() != want {
		t.Errorf("fully fused I/O = %d, want exactly |A|+|B|+|C| = %d", res.IO(), want)
	}

	// Necessary condition: with S below |C| the C partials cannot all
	// stay resident, so I/O must exceed the full-reuse bound.
	sSmall := n4 - 1 // below |C|, still enough to compute
	res2, err := Simulate(f.G, sSmall, OrderFourIndexFullyFused(f))
	if err != nil {
		t.Fatal(err)
	}
	if res2.IO() <= want {
		t.Errorf("S < |C| gave I/O %d, must exceed full-reuse bound %d (Theorem 6.2)", res2.IO(), want)
	}
}

// The measured peak red count of the fully fused schedule confirms the
// S >= |C| requirement: the resident set genuinely contains all of C.
func TestFullyFusedPeakRedAtLeastC(t *testing.T) {
	n := 3
	f := cdag.BuildFourIndex(n)
	n4 := n * n * n * n
	res, err := Simulate(f.G, 4*n4, OrderFourIndexFullyFused(f))
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakRed < n4 {
		t.Errorf("peak red %d < |C| = %d", res.PeakRed, n4)
	}
}

// Sanity: the unfused four-index I/O approximates the Section 5.3
// op1/2/3/4 bound |A| + 2|O1| + 2|O2| + 2|O3| + |C| (plus B traffic)
// when each contraction runs in its Listing 5 order with adequate S.
func TestUnfusedIOMatchesSection53(t *testing.T) {
	n := 4
	f := cdag.BuildFourIndex(n)
	s := n*n + 2*n + 6
	res, err := Simulate(f.G, s, OrderFourIndexUnfused(f))
	if err != nil {
		t.Fatal(err)
	}
	n4 := n * n * n * n
	lower := 7 * n4           // |A| + 2(|O1|+|O2|+|O3|) + |C| without symmetry
	upper := lower + 10*n*n*n // slack for B reloads and edge effects
	if res.IO() < lower || res.IO() > upper {
		t.Errorf("unfused I/O = %d, want in [%d, %d]", res.IO(), lower, upper)
	}
}

// The symmetric-size analytic ordering (Theorem 5.2) and the measured
// non-symmetric schedules must agree on direction: more fusion, less I/O.
func TestFusionMonotonicity(t *testing.T) {
	n := 3
	f := cdag.BuildFourIndex(n)
	s := n*n*n*n + 3*n*n*n + 4*n*n + 2*n + 8
	ioUnfused := mustIO(t, f, s, OrderFourIndexUnfused(f))
	ioPair := mustIO(t, f, s, OrderFourIndexFusedPair(f))
	ioFull := mustIO(t, f, s, OrderFourIndexFullyFused(f))
	if !(ioFull <= ioPair && ioPair <= ioUnfused) {
		t.Errorf("I/O not monotone in fusion: full=%d pair=%d unfused=%d", ioFull, ioPair, ioUnfused)
	}
}

func mustIO(t *testing.T, f *cdag.FourIndex, s int, order []cdag.VID) int {
	t.Helper()
	res, err := Simulate(f.G, s, order)
	if err != nil {
		t.Fatal(err)
	}
	return res.IO()
}
