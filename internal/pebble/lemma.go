package pebble

import (
	"fmt"

	"fourindex/internal/cdag"
)

// MoveKind enumerates the red-blue pebble game rules R1-R4.
type MoveKind int

const (
	// MoveLoad is rule R1.
	MoveLoad MoveKind = iota
	// MoveStore is rule R2.
	MoveStore
	// MoveCompute is rule R3.
	MoveCompute
	// MoveDelete is rule R4.
	MoveDelete
)

// String names the move kind.
func (k MoveKind) String() string {
	switch k {
	case MoveLoad:
		return "load"
	case MoveStore:
		return "store"
	case MoveCompute:
		return "compute"
	case MoveDelete:
		return "delete"
	default:
		return fmt.Sprintf("MoveKind(%d)", int(k))
	}
}

// Move is one step of a complete calculation.
type Move struct {
	Kind MoveKind
	V    cdag.VID
}

// SimulateTrace is Simulate with full move recording: it returns the
// schedule's complete calculation as a move sequence, suitable for the
// Appendix A schedule-splitting construction.
func SimulateTrace(g *cdag.Graph, s int, order []cdag.VID) (Result, []Move, error) {
	rec := &recorder{}
	res, err := simulate(g, s, order, rec)
	return res, rec.moves, err
}

// recorder captures moves during simulation.
type recorder struct{ moves []Move }

func (r *recorder) add(k MoveKind, v cdag.VID) {
	if r != nil {
		r.moves = append(r.moves, Move{Kind: k, V: v})
	}
}

// Replay validates a move sequence as a complete calculation on g with
// s red pebbles (Definition A.2) and returns its I/O. Any rule violation
// or incompleteness is an error.
func Replay(g *cdag.Graph, s int, moves []Move) (Result, error) {
	gm := NewGame(g, s)
	peak := 0
	for i, m := range moves {
		var err error
		switch m.Kind {
		case MoveLoad:
			err = gm.Load(m.V)
		case MoveStore:
			err = gm.Store(m.V)
		case MoveCompute:
			err = gm.Compute(m.V)
		case MoveDelete:
			err = gm.Delete(m.V)
		default:
			err = fmt.Errorf("pebble: unknown move kind %v", m.Kind)
		}
		if err != nil {
			return Result{}, fmt.Errorf("pebble: move %d (%v %q): %w", i, m.Kind, g.Name(m.V), err)
		}
		if gm.RedCount() > peak {
			peak = gm.RedCount()
		}
	}
	if !gm.Complete() {
		return Result{}, fmt.Errorf("pebble: replay did not blue-pebble all outputs")
	}
	return Result{Loads: gm.Loads(), Stores: gm.Stores(), PeakRed: peak}, nil
}

// LemmaSplit is the result of the Appendix A construction: the augmented
// schedule S12+ and the two extracted schedules S1 (producer) and S2
// (consumer), with their verified I/O counts.
type LemmaSplit struct {
	IOFused     int // IO(S12), the original fused schedule
	IOAugmented int // IO(S12+) = IO(S12) + 2|O1|
	IOProducer  int // IO(S1), valid for the producer sub-CDAG
	IOConsumer  int // IO(S2), valid for the consumer sub-CDAG
	Interface   int // |O1|, the merged producer-output/consumer-input set
}

// Identity reports whether the Fusion Lemma bookkeeping holds exactly:
// IO(S1) + IO(S2) == IO(S12) + 2|O1|.
func (ls LemmaSplit) Identity() bool {
	return ls.IOProducer+ls.IOConsumer == ls.IOFused+2*ls.Interface
}

// SplitFusedSchedule performs the constructive proof of the Fusion Lemma
// (Lemma A.3) on a concrete fused schedule for a producer-consumer CDAG:
//
//  1. From the fused move sequence S12, build the augmented S12+ by
//     inserting a Store immediately after each interface vertex's
//     Compute, and a Delete+Load immediately before its first consumer
//     use.
//  2. Tag the producer's moves (operations on producer-only vertices,
//     plus interface Computes and the inserted Stores) as S1; everything
//     else, minus the inserted Deletes, forms S2.
//  3. Replay S1 against the producer sub-CDAG (interface vertices as
//     outputs) and S2 against the consumer sub-CDAG (interface vertices
//     as inputs), validating every rule.
//
// producerVerts must contain every vertex of the producer computation;
// interfaceVerts are the producer outputs consumed by the consumer. The
// fused schedule must not itself Load or Store interface vertices (a
// genuinely fused schedule keeps the intermediate in fast memory; run
// with sufficient S to guarantee this).
func SplitFusedSchedule(g *cdag.Graph, s int, moves []Move, producerVerts, interfaceVerts map[cdag.VID]bool) (LemmaSplit, error) {
	for _, m := range moves {
		if interfaceVerts[m.V] && (m.Kind == MoveLoad || m.Kind == MoveStore) {
			return LemmaSplit{}, fmt.Errorf("pebble: fused schedule spills interface vertex %q; increase S", g.Name(m.V))
		}
	}

	// First consumer use of each interface vertex: the first Compute of
	// a non-producer vertex having it as a predecessor. dlAt inverts the
	// relation (move index -> vertices first used there) in discovery
	// order, so the inserted Delete+Load pairs below come out in the
	// same sequence on every run.
	firstUse := map[cdag.VID]int{}
	dlAt := map[int][]cdag.VID{}
	for i, m := range moves {
		if m.Kind != MoveCompute || producerVerts[m.V] {
			continue
		}
		for _, p := range g.Preds(m.V) {
			if interfaceVerts[p] {
				if _, seen := firstUse[p]; !seen {
					firstUse[p] = i
					dlAt[i] = append(dlAt[i], p)
				}
			}
		}
	}

	// Build S12+ with tags. Inserted Stores are tagged producer;
	// inserted Delete+Load pairs are marked for later removal from S2.
	type tagged struct {
		m          Move
		producer   bool
		insertedDL bool // inserted Delete or Load before first use
	}
	var aug []tagged
	ioFused := 0
	for i, m := range moves {
		// Inserted Delete+Load immediately before the first use.
		for _, v := range dlAt[i] {
			aug = append(aug,
				tagged{m: Move{Kind: MoveDelete, V: v}, insertedDL: true},
				tagged{m: Move{Kind: MoveLoad, V: v}, insertedDL: true})
		}
		isProducerOp := producerVerts[m.V]
		if interfaceVerts[m.V] && m.Kind != MoveCompute {
			// Deletes of interface values after their last use belong
			// to the consumer side (the producer already stored them).
			isProducerOp = false
		}
		aug = append(aug, tagged{m: m, producer: isProducerOp})
		if m.Kind == MoveLoad || m.Kind == MoveStore {
			ioFused++
		}
		// Inserted Store immediately after an interface Compute.
		if m.Kind == MoveCompute && interfaceVerts[m.V] {
			aug = append(aug, tagged{m: Move{Kind: MoveStore, V: m.V}, producer: true})
		}
	}

	// Extract S1 and S2.
	var s1, s2 []Move
	ioAug := 0
	for _, t := range aug {
		if t.m.Kind == MoveLoad || t.m.Kind == MoveStore {
			ioAug++
		}
		switch {
		case t.producer:
			s1 = append(s1, t.m)
		case t.insertedDL && t.m.Kind == MoveDelete:
			// Removed in constructing S2 (the value is an input there,
			// never computed, so the Delete has nothing to free).
		default:
			s2 = append(s2, t.m)
		}
	}
	// S1 must end with the interface values deleted or not — either way
	// its outputs are blue via the inserted Stores. S2's inserted Loads
	// read the interface values as inputs (blue from the start in the
	// consumer sub-CDAG).

	prodG, prodMap := subgraph(g, producerVerts, interfaceVerts, nil)
	consG, consMap := subgraph(g, complement(g, producerVerts, interfaceVerts), nil, interfaceVerts)

	r1, err := Replay(prodG, s, remap(s1, prodMap))
	if err != nil {
		return LemmaSplit{}, fmt.Errorf("pebble: producer schedule invalid: %w", err)
	}
	r2, err := Replay(consG, s, remap(s2, consMap))
	if err != nil {
		return LemmaSplit{}, fmt.Errorf("pebble: consumer schedule invalid: %w", err)
	}

	return LemmaSplit{
		IOFused:     ioFused,
		IOAugmented: ioAug,
		IOProducer:  r1.IO(),
		IOConsumer:  r2.IO(),
		Interface:   len(interfaceVerts),
	}, nil
}

// complement returns the consumer vertex set: everything outside the
// producer, plus the interface (which the consumer sees as inputs).
func complement(g *cdag.Graph, producer, iface map[cdag.VID]bool) map[cdag.VID]bool {
	out := map[cdag.VID]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		if !producer[cdag.VID(v)] || iface[cdag.VID(v)] {
			out[cdag.VID(v)] = true
		}
	}
	return out
}

// subgraph builds the sub-CDAG induced by keep. Vertices in forceOutputs
// become outputs; vertices in forceInputs become inputs (their
// predecessors are dropped). Returns the graph and the old->new id map.
func subgraph(g *cdag.Graph, keep, forceOutputs, forceInputs map[cdag.VID]bool) (*cdag.Graph, map[cdag.VID]cdag.VID) {
	ng := cdag.NewGraph()
	idx := map[cdag.VID]cdag.VID{}
	for v := 0; v < g.NumVertices(); v++ {
		vid := cdag.VID(v)
		if !keep[vid] {
			continue
		}
		if g.IsInput(vid) || forceInputs[vid] {
			idx[vid] = ng.AddInput(g.Name(vid))
			continue
		}
		var preds []cdag.VID
		for _, p := range g.Preds(vid) {
			np, ok := idx[p]
			if !ok {
				panic(fmt.Sprintf("pebble: subgraph predecessor %q outside kept set", g.Name(p)))
			}
			preds = append(preds, np)
		}
		idx[vid] = ng.AddOp(g.Name(vid), preds...)
	}
	for v, nv := range idx {
		if forceOutputs[v] || (g.IsOutput(v) && keep[v]) {
			ng.MarkOutput(nv)
		}
	}
	return ng, idx
}

// remap translates a move sequence into sub-CDAG vertex ids, dropping
// moves on vertices outside the map.
func remap(moves []Move, idx map[cdag.VID]cdag.VID) []Move {
	out := make([]Move, 0, len(moves))
	for _, m := range moves {
		if nv, ok := idx[m.V]; ok {
			out = append(out, Move{Kind: m.Kind, V: nv})
		}
	}
	return out
}
