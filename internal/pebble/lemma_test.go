package pebble

import (
	"testing"

	"fourindex/internal/cdag"
)

// chainSets returns the producer/interface vertex sets of a two-matmul
// chain: the producer is C = A*B (all its inputs and partials), the
// interface is the C result vertices.
func chainSets(ch *cdag.MatMulChain) (producer, iface map[cdag.VID]bool) {
	producer = map[cdag.VID]bool{}
	iface = map[cdag.VID]bool{}
	n := ch.First.N
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			producer[ch.First.A[i][k]] = true
			producer[ch.First.B[i][k]] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				producer[ch.First.Partial[i][j][k]] = true
			}
			iface[ch.First.C[i][j]] = true
		}
	}
	return producer, iface
}

// The Appendix A construction, executed: record a fused schedule, build
// S12+, split into S1/S2, replay both against their sub-CDAGs, and check
// the exact bookkeeping identity IO(S1)+IO(S2) = IO(S12) + 2|O1|.
func TestFusionLemmaConstructionOnChain(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		ch := cdag.BuildMatMulChain(n)
		s := 3*n*n + 2*n + 6 // ample: the interface is never spilled
		res, moves, err := SimulateTrace(ch.G, s, OrderChainFused(ch))
		if err != nil {
			t.Fatal(err)
		}
		producer, iface := chainSets(ch)
		split, err := SplitFusedSchedule(ch.G, s, moves, producer, iface)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if split.IOFused != res.IO() {
			t.Errorf("n=%d: traced I/O %d != simulated %d", n, split.IOFused, res.IO())
		}
		if split.Interface != n*n {
			t.Errorf("n=%d: interface size %d, want %d", n, split.Interface, n*n)
		}
		if split.IOAugmented != split.IOFused+2*split.Interface {
			t.Errorf("n=%d: IO(S12+) = %d, want IO(S12)+2|O1| = %d",
				n, split.IOAugmented, split.IOFused+2*split.Interface)
		}
		if !split.Identity() {
			t.Errorf("n=%d: lemma identity violated: IO(S1)=%d IO(S2)=%d IO(S12)=%d |O1|=%d",
				n, split.IOProducer, split.IOConsumer, split.IOFused, split.Interface)
		}
		// And therefore IO(S12) >= LB(C1) + LB(C2) - 2|O1| for the
		// trivial per-matmul bounds (3n^2 each: inputs once, outputs
		// once).
		trivial := 3 * n * n
		if split.IOProducer < trivial || split.IOConsumer < trivial {
			t.Errorf("n=%d: split schedules beat the trivial lower bound: %d, %d < %d",
				n, split.IOProducer, split.IOConsumer, trivial)
		}
	}
}

// The same construction on an unfused schedule order: the lemma identity
// holds for ANY valid S12, fused or not, as long as the interface is not
// spilled (with ample S the unfused order keeps C resident too).
func TestFusionLemmaConstructionUnfusedOrder(t *testing.T) {
	n := 4
	ch := cdag.BuildMatMulChain(n)
	s := 4 * n * n // holds A/B plus all of C at once
	_, moves, err := SimulateTrace(ch.G, s, OrderChainUnfused(ch))
	if err != nil {
		t.Fatal(err)
	}
	producer, iface := chainSets(ch)
	split, err := SplitFusedSchedule(ch.G, s, moves, producer, iface)
	if err != nil {
		t.Fatal(err)
	}
	if !split.Identity() {
		t.Errorf("lemma identity violated on unfused order: %+v", split)
	}
}

// A schedule that spills the interface is rejected: the construction
// requires a genuinely fused schedule.
func TestFusionLemmaRejectsSpilledInterface(t *testing.T) {
	n := 6
	ch := cdag.BuildMatMulChain(n)
	// Tight memory with the unfused order forces C through blue pebbles.
	s := n*n + 3*n + 6
	_, moves, err := SimulateTrace(ch.G, s, OrderChainUnfused(ch))
	if err != nil {
		t.Skip("order infeasible at this S; not the point of this test")
	}
	producer, iface := chainSets(ch)
	if _, err := SplitFusedSchedule(ch.G, s, moves, producer, iface); err == nil {
		t.Error("spilled-interface schedule should be rejected")
	}
}

func TestReplayValidatesRules(t *testing.T) {
	g := cdag.NewGraph()
	a := g.AddInput("a")
	op := g.AddOp("op", a)
	g.MarkOutput(op)
	good := []Move{{MoveLoad, a}, {MoveCompute, op}, {MoveStore, op}}
	res, err := Replay(g, 3, good)
	if err != nil {
		t.Fatal(err)
	}
	if res.IO() != 2 {
		t.Errorf("replay I/O = %d, want 2", res.IO())
	}
	// Compute before load: invalid.
	if _, err := Replay(g, 3, []Move{{MoveCompute, op}}); err == nil {
		t.Error("invalid replay accepted")
	}
	// Missing final store: incomplete.
	if _, err := Replay(g, 3, []Move{{MoveLoad, a}, {MoveCompute, op}}); err == nil {
		t.Error("incomplete replay accepted")
	}
}

func TestSimulateTraceMatchesSimulate(t *testing.T) {
	m := cdag.BuildMatMul(5)
	order := OrderMatMulTiled(m, 2)
	s := 30
	plain, err := Simulate(m.G, s, order)
	if err != nil {
		t.Fatal(err)
	}
	traced, moves, err := SimulateTrace(m.G, s, order)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Errorf("traced result %+v != plain %+v", traced, plain)
	}
	// The trace replays to the identical I/O.
	rep, err := Replay(m.G, s, moves)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loads != plain.Loads || rep.Stores != plain.Stores {
		t.Errorf("replay I/O %d/%d != %d/%d", rep.Loads, rep.Stores, plain.Loads, plain.Stores)
	}
	if MoveLoad.String() != "load" || MoveKind(9).String() == "" {
		t.Error("MoveKind.String broken")
	}
}

// Section 4's second example, measured: with N >> K the fused schedule
// avoids the N x N intermediate's round trip entirely, a saving far
// beyond the ~27% cap of the square case.
func TestRectChainFusionProfitable(t *testing.T) {
	n, k := 16, 2
	rc := cdag.BuildRectChain(n, k)
	s := 2*n*k + n + k + 6 // B and D resident + a C row + chains
	unfused, err := Simulate(rc.G, s, OrderRectChainUnfused(rc))
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Simulate(rc.G, s, OrderRectChainFused(rc))
	if err != nil {
		t.Fatal(err)
	}
	if fused.IO() >= unfused.IO() {
		t.Fatalf("fused %d should beat unfused %d", fused.IO(), unfused.IO())
	}
	// The saving is most of the intermediate's round trip (Belady keeps
	// a slice of C cached, so slightly under 2N^2).
	saving := unfused.IO() - fused.IO()
	if saving < n*n {
		t.Errorf("saving %d, want at least N^2 = %d", saving, n*n)
	}
	// Fused I/O approaches the inputs+outputs floor.
	floor := 2*n*k + k*n + n*k // A, B, D inputs + E outputs
	if fused.IO() > floor+n {
		t.Errorf("fused I/O %d far above the floor %d", fused.IO(), floor)
	}
	t.Logf("unfused=%d fused=%d saving=%.0f%%", unfused.IO(), fused.IO(),
		100*float64(saving)/float64(unfused.IO()))
}

// The Fusion Lemma bookkeeping holds on the rectangular chain too.
func TestFusionLemmaConstructionRectChain(t *testing.T) {
	n, k := 8, 2
	rc := cdag.BuildRectChain(n, k)
	s := n*n + 2*n*k + n + 8 // ample: no interface spills
	_, moves, err := SimulateTrace(rc.G, s, OrderRectChainFused(rc))
	if err != nil {
		t.Fatal(err)
	}
	producer := map[cdag.VID]bool{}
	iface := map[cdag.VID]bool{}
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			producer[rc.A[i][j]] = true
			producer[rc.B[j][i]] = true
		}
		for j := 0; j < n; j++ {
			for kk := 0; kk < k; kk++ {
				producer[rc.CPartial[i][j][kk]] = true
			}
			iface[rc.C[i][j]] = true
		}
	}
	split, err := SplitFusedSchedule(rc.G, s, moves, producer, iface)
	if err != nil {
		t.Fatal(err)
	}
	if !split.Identity() {
		t.Errorf("lemma identity violated: %+v", split)
	}
	if split.Interface != n*n {
		t.Errorf("interface = %d, want %d", split.Interface, n*n)
	}
}

// Listing 5's exact claim, verified to the element: "Does I/O equal to
// |C|+|A|+|B| if S >= n^2 + n + 1". (The pebble game needs one extra
// pebble for the in-flight chain transition.)
func TestListing5ExactIO(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		c := cdag.BuildContraction(n)
		n4 := n * n * n * n
		s := n*n + n + 2
		res, err := Simulate(c.G, s, OrderListing5(c))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := n4 + n*n + n4 // |A| + |B| + |O1|
		if res.IO() != want {
			t.Errorf("n=%d: I/O = %d, want exactly |A|+|B|+|O1| = %d", n, res.IO(), want)
		}
		// One pebble less and the bound is no longer achievable.
		res2, err := Simulate(c.G, s-n, OrderListing5(c))
		if err == nil && res2.IO() <= want {
			t.Errorf("n=%d: S below threshold still achieved the bound (%d)", n, res2.IO())
		}
	}
}
