package pebble

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fourindex/internal/cdag"
)

// randomTopoOrder produces a random valid topological compute order of
// all operation vertices of g.
func randomTopoOrder(g *cdag.Graph, rng *rand.Rand) []cdag.VID {
	n := g.NumVertices()
	indeg := make([]int, n)
	succs := g.Succs()
	var ready []cdag.VID
	for v := 0; v < n; v++ {
		indeg[v] = len(g.Preds(cdag.VID(v)))
		if indeg[v] == 0 && !g.IsInput(cdag.VID(v)) {
			ready = append(ready, cdag.VID(v))
		}
	}
	// Inputs are immediately available.
	for _, in := range g.Inputs() {
		for _, s := range succs[in] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	var order []cdag.VID
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		v := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, s := range succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// Property: any random valid schedule completes under ample S with I/O
// at least the trivial bound |inputs| + |outputs|, and never below any
// more refined measured optimum.
func TestQuickRandomOrdersDominateTrivialBound(t *testing.T) {
	m := cdag.BuildMatMul(5)
	trivial := len(m.G.Inputs()) + len(m.G.Outputs())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := randomTopoOrder(m.G, rng)
		res, err := Simulate(m.G, m.G.NumVertices(), order)
		if err != nil {
			return false
		}
		return res.IO() >= trivial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: shrinking S never reduces a schedule's measured I/O
// (monotonicity of the memory-I/O trade-off).
func TestQuickIOMonotoneInS(t *testing.T) {
	m := cdag.BuildMatMul(4)
	order := OrderMatMulUntiled(m)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s1 := 8 + rng.Intn(40)
		s2 := s1 + 1 + rng.Intn(40)
		r1, err1 := Simulate(m.G, s1, order)
		r2, err2 := Simulate(m.G, s2, order)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 == nil || err1 != nil && err2 != nil // smaller S may fail
		}
		return r1.IO() >= r2.IO()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the Belady simulator's loads never exceed what a
// load-everything-per-use schedule would do (each use = one load), and
// stores never exceed computes + outputs.
func TestQuickResourceSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		m := cdag.BuildMatMul(n)
		order := randomTopoOrder(m.G, rng)
		s := 3*n + 4 + rng.Intn(n*n)
		res, err := Simulate(m.G, s, order)
		if err != nil {
			return true // S too small for some op is acceptable
		}
		uses := 0
		for _, v := range order {
			uses += len(m.G.Preds(v))
		}
		if res.Loads > uses {
			return false
		}
		maxStores := len(order) + len(m.G.Outputs())
		return res.Stores <= maxStores
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: with S large enough to hold everything, I/O equals exactly
// inputs + outputs for any valid order (no spills possible).
func TestQuickAmpleSGivesMinimalIO(t *testing.T) {
	m := cdag.BuildMatMul(4)
	want := len(m.G.Inputs()) + len(m.G.Outputs())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := randomTopoOrder(m.G, rng)
		res, err := Simulate(m.G, m.G.NumVertices()+1, order)
		if err != nil {
			return false
		}
		return res.IO() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
