package tile

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(10, 3)
	if g.NumTiles() != 4 {
		t.Fatalf("NumTiles = %d, want 4", g.NumTiles())
	}
	lo, hi := g.Bounds(0)
	if lo != 0 || hi != 3 {
		t.Errorf("Bounds(0) = (%d,%d), want (0,3)", lo, hi)
	}
	lo, hi = g.Bounds(3)
	if lo != 9 || hi != 10 {
		t.Errorf("Bounds(3) = (%d,%d), want (9,10) ragged tail", lo, hi)
	}
	if g.Width(3) != 1 {
		t.Errorf("Width(3) = %d, want 1", g.Width(3))
	}
	if g.TileOf(9) != 3 || g.TileOf(2) != 0 || g.TileOf(3) != 1 {
		t.Error("TileOf misassigns indices")
	}
}

func TestGridClampsWideTile(t *testing.T) {
	g := NewGrid(5, 100)
	if g.T != 5 || g.NumTiles() != 1 {
		t.Errorf("grid = %+v, want single tile of width 5", g)
	}
}

func TestGridEmpty(t *testing.T) {
	g := NewGrid(0, 4)
	if g.NumTiles() != 0 {
		t.Errorf("NumTiles = %d, want 0", g.NumTiles())
	}
}

func TestGridPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative extent": func() { NewGrid(-1, 2) },
		"zero tile":       func() { NewGrid(5, 0) },
		"bounds range":    func() { NewGrid(10, 3).Bounds(4) },
		"tileof range":    func() { NewGrid(10, 3).TileOf(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: bounds partition [0, N) exactly, and TileOf is consistent.
func TestQuickGridPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		tw := 1 + rng.Intn(50)
		g := NewGrid(n, tw)
		next := 0
		for tt := 0; tt < g.NumTiles(); tt++ {
			lo, hi := g.Bounds(tt)
			if lo != next || hi <= lo {
				return false
			}
			for i := lo; i < hi; i++ {
				if g.TileOf(i) != tt {
					return false
				}
			}
			next = hi
		}
		return next == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDistRoundRobin(t *testing.T) {
	d := NewDist(10, 3, RoundRobin, 0)
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	for tt, w := range want {
		if got := d.Owner(tt); got != w {
			t.Errorf("Owner(%d) = %d, want %d", tt, got, w)
		}
	}
	counts := d.Counts()
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Errorf("Counts = %v", counts)
	}
}

func TestDistBlock(t *testing.T) {
	d := NewDist(10, 3, Block, 0)
	// per = ceil(10/3) = 4 => tiles 0-3 -> 0, 4-7 -> 1, 8-9 -> 2.
	if d.Owner(0) != 0 || d.Owner(3) != 0 || d.Owner(4) != 1 || d.Owner(8) != 2 {
		t.Errorf("Block owners wrong: %v", d.Counts())
	}
}

func TestDistBlockCyclic(t *testing.T) {
	d := NewDist(12, 2, BlockCyclic, 3)
	// blocks of 3: [0-2]->0, [3-5]->1, [6-8]->0, [9-11]->1.
	for tt := 0; tt < 12; tt++ {
		want := (tt / 3) % 2
		if got := d.Owner(tt); got != want {
			t.Errorf("Owner(%d) = %d, want %d", tt, got, want)
		}
	}
}

func TestDistDefaultsBlockSize(t *testing.T) {
	d := NewDist(4, 2, BlockCyclic, 0)
	// blockSize defaults to 1 => round robin behaviour.
	if d.Owner(0) != 0 || d.Owner(1) != 1 || d.Owner(2) != 0 {
		t.Error("BlockCyclic with default block size should be cyclic")
	}
}

func TestImbalance(t *testing.T) {
	d := NewDist(9, 3, RoundRobin, 0)
	if got := d.Imbalance(); got != 1 {
		t.Errorf("Imbalance = %v, want 1 (perfectly divisible)", got)
	}
	d2 := NewDist(10, 3, Block, 0)
	// Block: counts 4,4,2 -> 4 / (10/3) = 1.2.
	if got := d2.Imbalance(); got < 1.19 || got > 1.21 {
		t.Errorf("Imbalance = %v, want 1.2", got)
	}
	empty := NewDist(0, 3, RoundRobin, 0)
	if empty.Imbalance() != 1 {
		t.Error("empty distribution imbalance should be 1")
	}
}

func TestDistPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero procs":     func() { NewDist(4, 0, RoundRobin, 0) },
		"negative tiles": func() { NewDist(-1, 2, RoundRobin, 0) },
		"owner range":    func() { NewDist(4, 2, RoundRobin, 0).Owner(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || Block.String() != "block" || BlockCyclic.String() != "block-cyclic" {
		t.Error("Policy.String() wrong")
	}
	if Policy(7).String() != "Policy(7)" {
		t.Error("unknown policy String() wrong")
	}
}

// Property: every tile has exactly one owner in range, for all policies.
func TestQuickOwnersInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nt := rng.Intn(100)
		p := 1 + rng.Intn(10)
		pol := Policy(rng.Intn(3))
		d := NewDist(nt, p, pol, 1+rng.Intn(4))
		total := 0
		for _, c := range d.Counts() {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == nt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
