// Package tile provides one-dimensional tilings of index ranges and
// ownership (distribution) policies for mapping tiles to processes.
//
// NWChem blocks every tensor dimension into data-tiles and distributes
// the linearised tiles with Global Arrays (Section 2.1 of the paper).
// The same machinery is reused here: a Grid splits [0, n) into tiles of a
// chosen width, and a Dist assigns each linearised tile to an owning
// process. Distribution policy is one of the ablation knobs called out in
// DESIGN.md (round-robin vs block vs block-cyclic).
package tile

import "fmt"

// Grid is a tiling of the index range [0, N) into tiles of width T; the
// final tile may be narrower when T does not divide N.
type Grid struct {
	N int // extent of the index range
	T int // tile width
}

// NewGrid returns a grid over [0, n) with tile width t, clamped to n.
func NewGrid(n, t int) Grid {
	if n < 0 {
		panic(fmt.Sprintf("tile: negative extent %d", n))
	}
	if t <= 0 {
		panic(fmt.Sprintf("tile: non-positive tile width %d", t))
	}
	if t > n && n > 0 {
		t = n
	}
	return Grid{N: n, T: t}
}

// NumTiles returns the number of tiles.
func (g Grid) NumTiles() int {
	if g.N == 0 {
		return 0
	}
	return (g.N + g.T - 1) / g.T
}

// Bounds returns the half-open index range [lo, hi) covered by tile t.
func (g Grid) Bounds(t int) (lo, hi int) {
	if t < 0 || t >= g.NumTiles() {
		panic(fmt.Sprintf("tile: tile %d out of range [0,%d)", t, g.NumTiles()))
	}
	lo = t * g.T
	hi = lo + g.T
	if hi > g.N {
		hi = g.N
	}
	return lo, hi
}

// Width returns the number of indices in tile t.
func (g Grid) Width(t int) int {
	lo, hi := g.Bounds(t)
	return hi - lo
}

// TileOf returns the tile containing index i.
func (g Grid) TileOf(i int) int {
	if i < 0 || i >= g.N {
		panic(fmt.Sprintf("tile: index %d out of range [0,%d)", i, g.N))
	}
	return i / g.T
}

// Policy selects how linearised tiles map to owning processes.
type Policy int

const (
	// RoundRobin assigns tile t to process t mod P. This is the
	// default: consecutive tiles land on different processes, which
	// balances triangular (a >= b) iteration spaces well.
	RoundRobin Policy = iota
	// Block assigns contiguous runs of tiles to each process.
	Block
	// BlockCyclic assigns blocks of blockSize tiles round-robin.
	BlockCyclic
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case Block:
		return "block"
	case BlockCyclic:
		return "block-cyclic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Dist maps linearised tile IDs in [0, NumTiles) to owners in [0, Procs).
type Dist struct {
	Procs     int
	NumTiles  int
	Pol       Policy
	BlockSize int // used by BlockCyclic; defaults to 1
}

// NewDist builds a distribution of numTiles tiles over procs processes.
func NewDist(numTiles, procs int, pol Policy, blockSize int) Dist {
	if procs <= 0 {
		panic(fmt.Sprintf("tile: non-positive process count %d", procs))
	}
	if numTiles < 0 {
		panic(fmt.Sprintf("tile: negative tile count %d", numTiles))
	}
	if blockSize <= 0 {
		blockSize = 1
	}
	return Dist{Procs: procs, NumTiles: numTiles, Pol: pol, BlockSize: blockSize}
}

// Owner returns the process owning tile t.
func (d Dist) Owner(t int) int {
	if t < 0 || t >= d.NumTiles {
		panic(fmt.Sprintf("tile: tile %d out of range [0,%d)", t, d.NumTiles))
	}
	switch d.Pol {
	case RoundRobin:
		return t % d.Procs
	case Block:
		per := (d.NumTiles + d.Procs - 1) / d.Procs
		return t / per
	case BlockCyclic:
		return (t / d.BlockSize) % d.Procs
	default:
		panic(fmt.Sprintf("tile: unknown policy %v", d.Pol))
	}
}

// Counts returns how many tiles each process owns.
func (d Dist) Counts() []int {
	c := make([]int, d.Procs)
	for t := 0; t < d.NumTiles; t++ {
		c[d.Owner(t)]++
	}
	return c
}

// Imbalance returns max/mean ownership counts, a load-imbalance measure
// (1.0 is perfectly balanced). Returns 1 for empty distributions.
func (d Dist) Imbalance() float64 {
	if d.NumTiles == 0 {
		return 1
	}
	counts := d.Counts()
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(d.NumTiles) / float64(d.Procs)
	return float64(maxC) / mean
}
