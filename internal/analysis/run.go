package analysis

import (
	"fmt"
	"io"
	"sort"
)

// Run loads the packages matched by patterns (resolved relative to dir)
// and applies every analyzer to every matched package. Diagnostics come
// back sorted by file, line, and column.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package.
func RunPackage(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	return diags, nil
}

// Print writes diagnostics one per line and returns how many there were.
func Print(w io.Writer, diags []Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
	return len(diags)
}
