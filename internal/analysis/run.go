package analysis

import (
	"fmt"
	"io"
	"sort"
)

// Run loads the packages matched by patterns (resolved relative to dir)
// and applies every analyzer to every matched package. Diagnostics come
// back sorted by file, line, and column.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(analyzers, pkgs)
}

// RunTests is Run with _test.go files and external test packages
// included in the analyzed set (see LoadTests).
func RunTests(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := LoadTests(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(analyzers, pkgs)
}

// RunPackages applies the analyzers to every package and returns the
// combined diagnostics sorted by file, line, and column.
func RunPackages(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(analyzers, pkg)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package, then filters
// the diagnostics through any //lint:ignore suppression directives in
// the package's files (see suppress.go).
func RunPackage(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	return applySuppressions(pkg, diags), nil
}

// Print writes diagnostics one per line and returns how many there were.
func Print(w io.Writer, diags []Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
	return len(diags)
}
