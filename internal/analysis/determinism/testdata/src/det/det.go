// Package det is the determinism fixture: order-dependent map-range
// effects and wall-clock/randomness outside the measured layer are
// flagged; the collect-then-sort idiom, keyed stores, integer
// accumulation, and seeded generators stay clean.
package det

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fourindex/internal/trace"
)

// wallClockRead reads the process clock in simulated-time code.
func wallClockRead() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now outside the /perf measured layer`
}

// wallClockSleep stalls on real time.
func wallClockSleep() {
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep outside the /perf measured layer`
}

// processSeededRand draws from the process-seeded global generator.
func processSeededRand() int {
	return rand.Int() // want `process-seeded rand\.Int outside the /perf measured layer`
}

// cleanSeededRand builds an explicitly seeded generator: deterministic.
func cleanSeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// unsortedAppend collects map keys and uses them unsorted.
func unsortedAppend(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a map range without sorting it afterwards`
	}
	return keys
}

// cleanCollectThenSort is the canonical deterministic iteration idiom.
func cleanCollectThenSort(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// floatAccumulation sums floats in map order: rounding is order-dependent.
func floatAccumulation(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into "sum" inside a map range`
	}
	return sum
}

// stringConcat builds a string in map order.
func stringConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation into "s" inside a map range`
	}
	return s
}

// cleanIntAccumulation is commutative: order cannot change the result.
func cleanIntAccumulation(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// lastWriterWins keeps whichever key the iterator happened to visit last.
func lastWriterWins(m map[int]string) int {
	var picked int
	for k := range m {
		picked = k // want `assignment of a map range's key or value to "picked"`
	}
	return picked
}

// returnInRange returns the first matching key the iterator visits.
func returnInRange(m map[int]string, want string) int {
	for k, v := range m {
		if v == want {
			return k // want `returning the key or value of a map range`
		}
	}
	return -1
}

// cleanExistenceCheck returns a constant: any visit order gives the same
// answer.
func cleanExistenceCheck(m map[int]string, want string) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// emissionInRange prints in map order.
func emissionInRange(m map[int]float64) {
	for k, v := range m {
		fmt.Printf("%d=%v\n", k, v) // want `emission call inside a map range`
	}
}

// traceInRange emits trace events in map order.
func traceInRange(t *trace.Tracer, m map[int]float64) {
	for k := range m {
		t.Note(fmt.Sprintf("tile %d", k)) // want `emission call inside a map range`
	}
}

// sendInRange forwards elements in map order.
func sendInRange(m map[int]float64, out chan<- int) {
	for k := range m {
		out <- k // want `channel send inside a map range`
	}
}

// cleanKeyedStore re-keys into another map: order-independent.
func cleanKeyedStore(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}

// fixedIndexStore funnels values into one slot.
func fixedIndexStore(m map[int]float64, out []float64) {
	for _, v := range m {
		out[0] = v // want `store of a map range's key or value at a fixed index`
	}
}

// cleanSliceRange is not a map: nothing to check.
func cleanSliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}
