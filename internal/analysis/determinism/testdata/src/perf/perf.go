// Package perf stands in for the measured layer: its import path ends
// in /perf, so wall-clock readings and randomness are its business and
// the determinism analyzer leaves them alone. Map-range discipline
// still applies.
package perf

import (
	"math/rand"
	"time"
)

// measure times a real operation; exempt in the measured layer.
func measure(op func()) float64 {
	start := time.Now()
	op()
	return time.Since(start).Seconds()
}

// jitter draws process-seeded randomness; exempt in the measured layer.
func jitter() float64 {
	return rand.Float64()
}

// keysUnsorted is still order-dependent even here: the exemption is for
// clocks, not for map iteration.
func keysUnsorted(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside a map range without sorting it afterwards`
	}
	return keys
}
