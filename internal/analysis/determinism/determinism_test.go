package determinism_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "./testdata/src/det")
}

// TestPerfExemption checks the measured-layer carve-out: a package whose
// import path ends in /perf may read clocks and draw randomness, but map
// iteration order still may not reach its outputs.
func TestPerfExemption(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "./testdata/src/perf")
}
