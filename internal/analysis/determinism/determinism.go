// Package determinism guards the repo's bitwise-reproducibility
// contract. Execute mode, the trace subsystem, and the
// BENCH_fouridx.json emission are all gated on runs being byte-stable;
// the two classic ways Go code silently breaks that are map iteration
// order reaching an output and wall-clock or process-seeded randomness
// leaking into results. Both are flagged statically:
//
// Map ranges: a `for ... range m` over a map is fine while its body is
// order-independent. The analyzer flags bodies whose effects depend on
// iteration order — appends into an outer slice that is not sorted
// afterwards (the collect-then-sort idiom is recognized), float or
// string accumulation (rounding and concatenation do not commute),
// last-writer-wins assignments of the key or value into outer
// variables, returns of the key or value, channel sends, and emission
// calls (fmt printing, Write*/Encode* methods, trace.Tracer methods).
// Integer accumulation, keyed stores (m2[k] = v), and existence checks
// remain clean.
//
// Wall clock and randomness: time.Now and friends, plus the
// process-seeded package-level math/rand functions, are flagged
// everywhere outside the /perf measured layer and the experiments
// harness (generalizing metricsdiscipline's rule, which only covers
// scopes holding metrics.Counters or trace.Tracer). Explicitly seeded
// generators (rand.New(rand.NewSource(seed))) are deterministic and
// stay clean.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fourindex/internal/analysis"
)

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "map iteration order and wall-clock/random values must not reach results, trace events, or benchmark emission",
	Run:  run,
}

// wallClock lists the time package's nondeterministic entry points.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// seededConstructors are the math/rand functions that build explicitly
// seeded (hence deterministic) generators.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	exempt := clockExempt(pass.Pkg.Path())
	for _, file := range pass.Files {
		if !exempt {
			checkClock(pass, file)
		}
		for _, scope := range analysis.FuncScopes(file) {
			checkMapRanges(pass, scope)
		}
	}
	return nil
}

// clockExempt reports whether the package is part of the measured layer,
// where wall-clock readings are the entire point.
func clockExempt(path string) bool {
	return strings.HasSuffix(path, "/perf") || strings.Contains(path, "experiments")
}

// checkClock flags wall-clock and process-seeded randomness calls.
func checkClock(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() != nil {
			return true // methods (e.g. on a seeded *rand.Rand) are fine
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClock[fn.Name()] {
				pass.Reportf(call.Pos(), "wall-clock time.%s outside the /perf measured layer; results and traces must be bit-reproducible", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !seededConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "process-seeded rand.%s outside the /perf measured layer; use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Name())
			}
		}
		return true
	})
}

// checkMapRanges inspects every map range in scope's own statements.
func checkMapRanges(pass *analysis.Pass, scope analysis.FuncScope) {
	scope.InspectOwn(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			checkMapBody(pass, scope, rng)
		}
		return true
	})
}

// checkMapBody flags order-dependent effects in one map-range body.
func checkMapBody(pass *analysis.Pass, scope analysis.FuncScope, rng *ast.RangeStmt) {
	info := pass.TypesInfo

	kv := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if e == nil {
			continue
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				kv[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				kv[obj] = true
			}
		}
	}
	mentionsKV := func(e ast.Node) bool {
		found := false
		ast.Inspect(e, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && kv[obj] {
					found = true
				}
			}
			return true
		})
		return found
	}
	outer := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rng.Pos() || obj.Pos() > rng.End())
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			checkAssign(pass, scope, rng, s, outer, mentionsKV)
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send inside a map range; receive order depends on map iteration order")
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if mentionsKV(res) {
					pass.Reportf(s.Pos(), "returning the key or value of a map range; which element wins depends on iteration order — iterate sorted keys")
					break
				}
			}
		case *ast.CallExpr:
			if emits(info, s) {
				pass.Reportf(s.Pos(), "emission call inside a map range; output order depends on map iteration order — iterate sorted keys")
			}
		}
		return true
	})
}

// checkAssign classifies one assignment inside a map-range body.
func checkAssign(pass *analysis.Pass, scope analysis.FuncScope, rng *ast.RangeStmt, s *ast.AssignStmt, outer func(types.Object) bool, mentionsKV func(ast.Node) bool) {
	info := pass.TypesInfo
	if len(s.Lhs) != len(s.Rhs) && len(s.Rhs) != 1 {
		return
	}
	for i, lhs := range s.Lhs {
		rhs := s.Rhs[0]
		if len(s.Lhs) == len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := info.Uses[l]
			if obj == nil || !outer(obj) {
				continue
			}
			// collect-then-sort: append into an outer slice
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppendTo(info, call, obj) {
				if !sortedAfter(info, scope, rng, obj) {
					pass.Reportf(s.Pos(), "append to %q inside a map range without sorting it afterwards; element order depends on map iteration order", obj.Name())
				}
				continue
			}
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				// compound accumulation: x op= e
				reportNoncommutative(pass, s, obj, s.Tok)
				continue
			}
			if bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok && rootIs(info, bin.X, obj) {
				// spelled-out accumulation: x = x op e
				reportNoncommutative(pass, s, obj, assignTokFor(bin.Op))
				continue
			}
			if mentionsKV(rhs) {
				pass.Reportf(s.Pos(), "assignment of a map range's key or value to %q; the last iteration wins, which depends on iteration order", obj.Name())
			}
		case *ast.IndexExpr:
			// keyed stores (out[k] = v) are order-independent; an index
			// that does not involve the key is a last-writer-wins slot
			if !mentionsKV(l.Index) && mentionsKV(rhs) {
				pass.Reportf(s.Pos(), "store of a map range's key or value at a fixed index; the last iteration wins, which depends on iteration order")
			}
		}
	}
}

// reportNoncommutative flags accumulation whose result depends on
// evaluation order: floating-point rounding and string concatenation.
// Integer and bitwise accumulation with commutative operators is clean.
func reportNoncommutative(pass *analysis.Pass, s *ast.AssignStmt, obj types.Object, tok token.Token) {
	commutative := tok == token.ADD_ASSIGN || tok == token.MUL_ASSIGN ||
		tok == token.OR_ASSIGN || tok == token.AND_ASSIGN || tok == token.XOR_ASSIGN
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch {
	case basic.Info()&types.IsFloat != 0 || basic.Info()&types.IsComplex != 0:
		pass.Reportf(s.Pos(), "floating-point accumulation into %q inside a map range; rounding depends on iteration order — accumulate over sorted keys", obj.Name())
	case basic.Info()&types.IsString != 0:
		pass.Reportf(s.Pos(), "string concatenation into %q inside a map range; the result depends on iteration order — iterate sorted keys", obj.Name())
	case !commutative && basic.Info()&types.IsInteger != 0:
		pass.Reportf(s.Pos(), "non-commutative accumulation into %q inside a map range; the result depends on iteration order", obj.Name())
	}
}

// assignTokFor maps a binary operator to its compound-assign token.
func assignTokFor(op token.Token) token.Token {
	switch op {
	case token.ADD:
		return token.ADD_ASSIGN
	case token.SUB:
		return token.SUB_ASSIGN
	case token.MUL:
		return token.MUL_ASSIGN
	case token.QUO:
		return token.QUO_ASSIGN
	case token.OR:
		return token.OR_ASSIGN
	case token.AND:
		return token.AND_ASSIGN
	case token.XOR:
		return token.XOR_ASSIGN
	}
	return token.ASSIGN
}

// isAppendTo matches append(obj, ...) growing the same variable.
func isAppendTo(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[first] == obj
}

// sortedAfter recognizes the collect-then-sort idiom: a call into the
// sort or slices package mentioning obj somewhere after the range
// statement in the same function body.
func sortedAfter(info *types.Info, scope analysis.FuncScope, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	scope.InspectOwn(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesObj(info, arg, obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// emits matches calls that push bytes or events toward an output:
// fmt printing, Write*/Encode*/Marshal* methods, and trace.Tracer
// methods.
func emits(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	if sig.Recv() == nil {
		return fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint"))
	}
	if analysis.NamedTypeIs(sig.Recv().Type(), "trace", "Tracer") {
		return true
	}
	name := fn.Name()
	return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "Marshal")
}

// rootIs reports whether e is (a parenthesization of) the identifier
// bound to obj.
func rootIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// usesObj reports whether n mentions obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
