package retrydiscipline_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/retrydiscipline"
)

func TestRetryDiscipline(t *testing.T) {
	analysistest.Run(t, retrydiscipline.Analyzer, "./testdata/src/retry")
}
