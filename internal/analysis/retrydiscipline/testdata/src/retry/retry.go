// Package retry is a retrydiscipline fixture built against the real ga
// runtime: every way of swallowing an operation error inside a Parallel
// region, next to the handled forms that must stay clean.
package retry

import (
	"fmt"

	"fourindex/internal/ga"
	"fourindex/internal/tile"
)

// dropExpr discards the error-returning call outright.
func dropExpr(rt *ga.Runtime) error {
	return rt.Parallel(func(p *ga.Proc) {
		p.AllocLocal(8) // want `error from ga\.AllocLocal inside a Parallel region is discarded`
	})
}

// blankInRegion keeps the buffer but blanks the error.
func blankInRegion(rt *ga.Runtime) error {
	return rt.Parallel(func(p *ga.Proc) {
		b, _ := p.AllocLocal(8) // want `error from ga\.AllocLocal inside a Parallel region is assigned to the blank identifier`
		p.FreeLocal(b)
	})
}

// neverConsumed binds the error but only ever compares it to nil: the
// faulted process returns early and the region still reports success.
func neverConsumed(rt *ga.Runtime) error {
	return rt.Parallel(func(p *ga.Proc) {
		b, err := p.AllocLocal(8) // want `error from ga\.AllocLocal inside a Parallel region is never consumed`
		if err != nil {
			return
		}
		p.FreeLocal(b)
	})
}

// cleanFatal hands the error to Proc.Fatal, poisoning the barrier.
func cleanFatal(rt *ga.Runtime) error {
	return rt.Parallel(func(p *ga.Proc) {
		b, err := p.AllocLocal(8)
		if err != nil {
			p.Fatal(fmt.Errorf("alloc: %w", err))
		}
		p.FreeLocal(b)
	})
}

// cleanPanic propagates through the region's panic recovery.
func cleanPanic(rt *ga.Runtime) error {
	return rt.Parallel(func(p *ga.Proc) {
		b, err := p.AllocLocal(8)
		if err != nil {
			panic(err)
		}
		p.FreeLocal(b)
	})
}

// cleanRetry retries the operation and marks the final failure fatal;
// Fatal(nil) on the success path is a no-op.
func cleanRetry(rt *ga.Runtime) error {
	return rt.Parallel(func(p *ga.Proc) {
		var b ga.Buffer
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if b, err = p.AllocLocal(8); err == nil {
				break
			}
		}
		p.Fatal(err)
		p.FreeLocal(b)
	})
}

// cleanOutsideRegion: errors outside Parallel regions are errflow's
// business, not this analyzer's.
func cleanOutsideRegion(rt *ga.Runtime) {
	_, _ = rt.Create("a", 4, 4, 2, 2, tile.RoundRobin)
}
