// Package retrydiscipline flags ga operation errors that are swallowed
// inside Parallel regions. With fault injection enabled (internal/faults)
// an error inside a region is the recovery path: a process that observes
// one must retry the operation, hand the error to Proc.Fatal (poisoning
// the barrier so the region fails as a unit), or propagate it out —
// discarding it lets a faulted process sail on with missing data and
// turns an injected fault into a silently wrong answer. The analyzer
// inspects every function literal passed to (ga.Runtime).Parallel and
// reports error results of ga-package calls that are dropped, blanked,
// or bound but only ever compared against nil.
package retrydiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"fourindex/internal/analysis"
)

// Analyzer is the retrydiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "retrydiscipline",
	Doc:  "ga operation errors inside Parallel regions must be retried, propagated with Proc.Fatal, or returned — never swallowed",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !analysis.IsMethodCall(pass.TypesInfo, call, "ga", "Runtime", "Parallel") {
				return true
			}
			if len(call.Args) == 1 {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
					checkRegion(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkRegion inspects one Parallel region body for swallowed ga errors.
func checkRegion(pass *analysis.Pass, region *ast.FuncLit) {
	ast.Inspect(region.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
				if name, watched := gaErrorCall(pass.TypesInfo, call); watched {
					pass.Reportf(call.Pos(), "error from %s inside a Parallel region is discarded; retry the operation, propagate with Proc.Fatal, or return it", name)
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, region, stmt)
		}
		return true
	})
}

// checkAssign flags the error slot of a ga call bound to the blank
// identifier or to a variable that is never meaningfully consumed.
func checkAssign(pass *analysis.Pass, region *ast.FuncLit, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, watched := gaErrorCall(pass.TypesInfo, call)
	if !watched {
		return
	}
	idx := errorResultIndex(pass.TypesInfo, call)
	if idx >= len(stmt.Lhs) {
		return
	}
	id, ok := ast.Unparen(stmt.Lhs[idx]).(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(id.Pos(), "error from %s inside a Parallel region is assigned to the blank identifier; retry the operation, propagate with Proc.Fatal, or return it", name)
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil || consumed(pass.TypesInfo, region, obj) {
		return
	}
	pass.Reportf(id.Pos(), "error from %s inside a Parallel region is never consumed; retry the operation, propagate with Proc.Fatal, or return it", name)
}

// consumed reports whether obj has a meaningful use inside the region:
// any appearance other than assignment targets, `_ = err` discards, and
// bare nil comparisons (which check without acting) counts.
func consumed(info *types.Info, region *ast.FuncLit, obj types.Object) bool {
	benign := map[token.Pos]bool{}
	markIdent := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			benign[id.Pos()] = true
		}
	}
	ast.Inspect(region.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			allBlank := true
			for _, l := range x.Lhs {
				markIdent(l)
				if id, ok := ast.Unparen(l).(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank {
				for _, r := range x.Rhs {
					markIdent(r)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if isNil(info, x.Y) {
					markIdent(x.X)
				}
				if isNil(info, x.X) {
					markIdent(x.Y)
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(region.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || benign[id.Pos()] || info.ObjectOf(id) != obj {
			return true
		}
		found = true
		return false
	})
	return found
}

// isNil reports whether e is the predeclared nil.
func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// gaErrorCall reports whether call invokes a ga-package function whose
// results include an error, returning a printable name for diagnostics.
func gaErrorCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "ga" {
		return "", false
	}
	if errorResultIndex(info, call) < 0 {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// errorResultIndex returns the index of the (last) error result of the
// call's signature, or -1.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if types.Implements(res.At(i).Type(), errorType) {
			return i
		}
	}
	return -1
}
