package gadiscipline_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/gadiscipline"
)

func TestGADiscipline(t *testing.T) {
	analysistest.Run(t, gadiscipline.Analyzer, "./testdata/src/buf")
}
