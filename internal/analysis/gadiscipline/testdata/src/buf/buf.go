// Package buf is a gadiscipline fixture: it exercises the allocation
// discipline checks against the real ga runtime API. Lines carrying a
// "want" comment are true positives; the rest must stay clean.
package buf

import (
	"fourindex/internal/ga"
	"fourindex/internal/tile"
)

// leakNoFree never releases its buffer.
func leakNoFree(p *ga.Proc) {
	b := p.MustAllocLocal(8) // want `ga\.Buffer "b" is never released`
	_ = b.Words()
}

// leakBeforeReturn frees on the fall-through path but not before the
// early return.
func leakBeforeReturn(p *ga.Proc, cond bool) int {
	b := p.MustAllocLocal(8) // want `not released with FreeLocal before the return on line \d+`
	if cond {
		return 0
	}
	p.FreeLocal(b)
	return 1
}

// discardResult drops the buffer on the floor.
func discardResult(p *ga.Proc) {
	p.MustAllocLocal(8) // want `ga\.Buffer.*discarded`
}

// discardBlank binds the buffer to the blank identifier.
func discardBlank(p *ga.Proc) {
	_, _ = p.AllocLocal(8) // want `ga\.Buffer.*discarded`
}

// cleanStraightLine allocates and frees in order.
func cleanStraightLine(p *ga.Proc) {
	b := p.MustAllocLocal(8)
	_ = b.Words()
	p.FreeLocal(b)
}

// cleanDefer uses a deferred release, covering the early return.
func cleanDefer(p *ga.Proc, cond bool) int {
	b := p.MustAllocLocal(8)
	defer p.FreeLocal(b)
	if cond {
		return 0
	}
	return 1
}

// cleanBothPaths frees on the early-return branch and at the end.
func cleanBothPaths(p *ga.Proc, cond bool) int {
	b := p.MustAllocLocal(8)
	if cond {
		p.FreeLocal(b)
		return 0
	}
	p.FreeLocal(b)
	return 1
}

// cleanWrapper transfers ownership to the caller, like the schedule
// helpers in internal/fourindex.
func cleanWrapper(p *ga.Proc, words int64) ga.Buffer {
	return p.MustAllocLocal(words)
}

// cleanLoop allocates and frees each iteration.
func cleanLoop(p *ga.Proc, iters int) {
	for i := 0; i < iters; i++ {
		b := p.MustAllocLocal(8)
		p.FreeLocal(b)
	}
}

// leakArray creates a distributed array and never destroys it.
func leakArray(rt *ga.Runtime) {
	a, err := rt.Create("leak", 4, 4, 2, 2, tile.RoundRobin) // want `distributed array "a" is neither destroyed`
	if err != nil {
		return
	}
	_ = a.Bytes()
}

// cleanArray destroys what it creates.
func cleanArray(rt *ga.Runtime) error {
	a, err := rt.Create("ok", 4, 4, 2, 2, tile.RoundRobin)
	if err != nil {
		return err
	}
	rt.Destroy(a)
	return nil
}

// cleanArrayStored hands the array off by storing it, the slab pattern
// of the fused schedules.
func cleanArrayStored(rt *ga.Runtime, out []*ga.Array) error {
	a, err := rt.Create("stored", 4, 4, 2, 2, tile.RoundRobin)
	if err != nil {
		return err
	}
	out[0] = a
	return nil
}

// cleanArrayReturned transfers ownership to the caller.
func cleanArrayReturned(rt *ga.Runtime) (*ga.Array, error) {
	return rt.Create("ret", 4, 4, 2, 2, tile.RoundRobin)
}

// collectiveInRegion calls collectives from inside a Parallel body.
func collectiveInRegion(rt *ga.Runtime, a *ga.Array) error {
	return rt.Parallel(func(p *ga.Proc) {
		b, err := rt.Create("inner", 4, 4, 2, 2, tile.RoundRobin) // want `collective ga\.Runtime\.Create called inside a Parallel region`
		if err != nil {
			return
		}
		rt.Destroy(b) // want `collective ga\.Runtime\.Destroy called inside a Parallel region`
	})
}

// regionEscape leaks a per-process buffer out of its region.
func regionEscape(rt *ga.Runtime) error {
	var leak ga.Buffer
	err := rt.Parallel(func(p *ga.Proc) {
		leak = p.MustAllocLocal(8) // want `declared outside the Parallel region`
		p.FreeLocal(leak)
	})
	_ = leak
	return err
}

// cleanRegion allocates, uses, and frees inside the region.
func cleanRegion(rt *ga.Runtime, a *ga.Array) error {
	return rt.Parallel(func(p *ga.Proc) {
		b := p.MustAllocLocal(16)
		p.Get(a, 0, 4, 0, 4, b.Data, 4)
		p.FreeLocal(b)
	})
}
