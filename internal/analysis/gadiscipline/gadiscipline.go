// Package gadiscipline enforces the resource discipline of the ga
// runtime. The paper's capacity results (Section 5: every schedule fits
// in S >= n^2 + n + 1 words of process-local memory) are statements
// about high-water marks, and the runtime measures those with a ledger:
// an AllocLocal that never reaches FreeLocal inflates the measured peak
// and silently invalidates the comparison against the analytical bound.
// The same holds for distributed arrays and the aggregate-memory ledger.
//
// Checks, in the spirit of x/tools' lostcancel:
//
//  1. Every call producing a ga.Buffer (AllocLocal, MustAllocLocal, and
//     any wrapper returning ga.Buffer) must be released with FreeLocal
//     on every path out of the function: before the function body ends
//     and before every lexically later return. Deferred frees and
//     buffers returned to the caller are fine. Discarding the result
//     outright is always an error.
//  2. Every distributed-array handle obtained from Runtime.Create,
//     CreateTiled, or CreateTiledSparse must reach Runtime.Destroy /
//     DestroyTiled in the same function unless the handle escapes
//     (returned, stored into a slice, map, struct field, or variable
//     alias, or placed in a composite literal).
//  3. Collective operations (Create*, Destroy*, Parallel) must not be
//     called inside a Parallel region body: they are documented as
//     sequential, between-region operations, and nesting Parallel
//     deadlocks the clock barrier.
//  4. A ga.Buffer allocated inside a Parallel region must not be
//     assigned to a variable declared outside the region: per-process
//     local memory must not outlive its process.
//
// Path sensitivity is lexical: a free "covers" an exit when it appears
// between the allocation and that exit in source order. For the
// straight-line schedule code this runtime hosts, that approximation is
// exact in practice and keeps the checker dependency-free.
package gadiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"fourindex/internal/analysis"
)

// Analyzer is the gadiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "gadiscipline",
	Doc:  "ga.Buffer and distributed-array handles must be released on all paths; collectives must stay out of Parallel regions",
	Run:  run,
}

var createMethods = map[string]bool{
	"Create":            true,
	"CreateTiled":       true,
	"CreateTiledSparse": true,
}

var destroyMethods = map[string]bool{
	"Destroy":      true,
	"DestroyTiled": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, scope := range analysis.FuncScopes(file) {
			checkBuffers(pass, scope)
			checkArrays(pass, scope)
		}
		checkParallelRegions(pass, file)
	}
	return nil
}

// returnsBuffer reports whether call produces a ga.Buffer as its first
// result. This covers Proc.AllocLocal, Proc.MustAllocLocal, and any
// project-local wrapper around them.
func returnsBuffer(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, isTuple := t.(*types.Tuple); isTuple {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	return analysis.NamedTypeIs(t, "ga", "Buffer")
}

// checkBuffers enforces check 1 for one function scope.
func checkBuffers(pass *analysis.Pass, scope analysis.FuncScope) {
	type allocSite struct {
		call *ast.CallExpr
		obj  types.Object // bound variable, nil if unbound
	}
	var allocs []allocSite

	scope.InspectOwn(func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 {
				if call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr); ok && returnsBuffer(pass.TypesInfo, call) {
					if obj := lhsObject(pass.TypesInfo, stmt.Lhs[0]); obj != nil {
						allocs = append(allocs, allocSite{call: call, obj: obj})
					} else {
						pass.Reportf(call.Pos(), "result of %s (a ga.Buffer) is discarded; the local-memory ledger can never be balanced", callName(pass.TypesInfo, call))
					}
					return true
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok && returnsBuffer(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(), "result of %s (a ga.Buffer) is discarded; the local-memory ledger can never be balanced", callName(pass.TypesInfo, call))
				return true
			}
		case *ast.ValueSpec:
			if len(stmt.Values) == 1 {
				if call, ok := ast.Unparen(stmt.Values[0]).(*ast.CallExpr); ok && returnsBuffer(pass.TypesInfo, call) {
					if obj := pass.TypesInfo.Defs[stmt.Names[0]]; obj != nil && stmt.Names[0].Name != "_" {
						allocs = append(allocs, allocSite{call: call, obj: obj})
					} else {
						pass.Reportf(call.Pos(), "result of %s (a ga.Buffer) is discarded; the local-memory ledger can never be balanced", callName(pass.TypesInfo, call))
					}
					return true
				}
			}
		case *ast.CallExpr:
			// A buffer-producing call nested in a larger expression:
			// fine inside a return (ownership transfers to the
			// caller), unreleasable anywhere else.
			if returnsBuffer(pass.TypesInfo, stmt) && !isBound(pass.TypesInfo, scope, stmt) {
				if !enclosedByReturn(scope, stmt) {
					pass.Reportf(stmt.Pos(), "ga.Buffer from %s is not bound to a variable and can never be released", callName(pass.TypesInfo, stmt))
				}
			}
		}
		return true
	})

	for _, a := range allocs {
		checkAllocReleased(pass, scope, a.call, a.obj)
	}
}

// checkAllocReleased verifies one bound allocation against every exit.
func checkAllocReleased(pass *analysis.Pass, scope analysis.FuncScope, call *ast.CallExpr, obj types.Object) {
	allocPos := call.Pos()
	if escapesViaReturn(pass.TypesInfo, scope, obj) {
		return
	}
	var frees []token.Pos
	deferred := false
	ast.Inspect(scope.Body, func(n ast.Node) bool {
		if def, ok := n.(*ast.DeferStmt); ok {
			if isFreeOf(pass.TypesInfo, def.Call, obj) && def.Pos() > allocPos {
				deferred = true
			}
			return true
		}
		if c, ok := n.(*ast.CallExpr); ok && isFreeOf(pass.TypesInfo, c, obj) {
			frees = append(frees, c.Pos())
		}
		return true
	})
	if deferred {
		return
	}
	freedBetween := func(lo, hi token.Pos) bool {
		for _, f := range frees {
			if f > lo && f < hi {
				return true
			}
		}
		return false
	}
	if !freedBetween(allocPos, scope.Body.End()+1) {
		pass.Reportf(allocPos, "ga.Buffer %q is never released with FreeLocal in this function", obj.Name())
		return
	}
	for _, ret := range ownReturns(scope) {
		if ret.Pos() > allocPos && !freedBetween(allocPos, ret.Pos()) {
			pass.Reportf(allocPos, "ga.Buffer %q is not released with FreeLocal before the return on line %d",
				obj.Name(), pass.Fset.Position(ret.Pos()).Line)
			return
		}
	}
}

// checkArrays enforces check 2 for one function scope.
func checkArrays(pass *analysis.Pass, scope analysis.FuncScope) {
	scope.InspectOwn(func(n ast.Node) bool {
		stmt, ok := n.(*ast.AssignStmt)
		if !ok {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, isCall := ast.Unparen(s.X).(*ast.CallExpr); isCall && isCreateCall(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "distributed-array handle from %s is discarded; the array can never be destroyed", callName(pass.TypesInfo, call))
				}
			}
			return true
		}
		if len(stmt.Rhs) != 1 {
			return true
		}
		call, isCall := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !isCall || !isCreateCall(pass.TypesInfo, call) {
			return true
		}
		obj := lhsObject(pass.TypesInfo, stmt.Lhs[0])
		if obj == nil {
			pass.Reportf(call.Pos(), "distributed-array handle from %s is discarded; the array can never be destroyed", callName(pass.TypesInfo, call))
			return true
		}
		if !handleEscapes(pass.TypesInfo, scope, obj) && !handleDestroyed(pass.TypesInfo, scope, obj, call.Pos()) {
			pass.Reportf(call.Pos(), "distributed array %q is neither destroyed in this function nor stored or returned; its aggregate memory stays charged", obj.Name())
		}
		return true
	})
}

// checkParallelRegions enforces checks 3 and 4 across a file.
func checkParallelRegions(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !analysis.IsMethodCall(pass.TypesInfo, call, "ga", "Runtime", "Parallel") || len(call.Args) != 1 {
			return true
		}
		body, ok := call.Args[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(body.Body, func(m ast.Node) bool {
			inner, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := analysis.CalleeFunc(pass.TypesInfo, inner); fn != nil {
				if sig, okSig := fn.Type().(*types.Signature); okSig && sig.Recv() != nil && analysis.NamedTypeIs(sig.Recv().Type(), "ga", "Runtime") {
					if createMethods[fn.Name()] || destroyMethods[fn.Name()] || fn.Name() == "Parallel" {
						pass.Reportf(inner.Pos(), "collective ga.Runtime.%s called inside a Parallel region; collectives are sequential between-region operations", fn.Name())
					}
				}
			}
			return true
		})
		// Check 4: buffers allocated in the region must not be bound to
		// variables declared outside it.
		ast.Inspect(body.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Rhs) != 1 {
				return true
			}
			rhs, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !isCall || !returnsBuffer(pass.TypesInfo, rhs) {
				return true
			}
			id, isIdent := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !isIdent {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj != nil && (obj.Pos() < body.Pos() || obj.Pos() > body.End()) {
				pass.Reportf(as.Pos(), "ga.Buffer assigned to %q, declared outside the Parallel region; process-local memory must not outlive its process", id.Name)
			}
			return true
		})
		return true
	})
}

// --- helpers ---

// lhsObject returns the variable object a define/assign binds, or nil
// for blank or non-ident targets.
func lhsObject(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isBound reports whether call is the sole RHS of a binding handled by
// the assignment cases above.
func isBound(info *types.Info, scope analysis.FuncScope, call *ast.CallExpr) bool {
	bound := false
	scope.InspectOwn(func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 && ast.Unparen(stmt.Rhs[0]) == ast.Expr(call) {
				bound = true
			}
		case *ast.ValueSpec:
			if len(stmt.Values) == 1 && ast.Unparen(stmt.Values[0]) == ast.Expr(call) {
				bound = true
			}
		case *ast.ExprStmt:
			if ast.Unparen(stmt.X) == ast.Expr(call) {
				bound = true // reported as discarded, not as unbound
			}
		}
		return true
	})
	return bound
}

// ownReturns lists this scope's own return statements.
func ownReturns(scope analysis.FuncScope) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	scope.InspectOwn(func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, r)
		}
		return true
	})
	return out
}

// enclosedByReturn reports whether expr sits inside one of the scope's
// own return statements.
func enclosedByReturn(scope analysis.FuncScope, expr ast.Expr) bool {
	enclosed := false
	for _, r := range ownReturns(scope) {
		if r.Pos() <= expr.Pos() && expr.End() <= r.End() {
			enclosed = true
		}
	}
	return enclosed
}

// escapesViaReturn reports whether obj is used in any return result in
// the scope subtree (ownership transferred to the caller).
func escapesViaReturn(info *types.Info, scope analysis.FuncScope, obj types.Object) bool {
	escapes := false
	for _, r := range ownReturns(scope) {
		for _, res := range r.Results {
			ast.Inspect(res, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
					escapes = true
				}
				return true
			})
		}
	}
	return escapes
}

// isFreeOf reports whether call is Proc.FreeLocal(obj).
func isFreeOf(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	if !analysis.IsMethodCall(info, call, "ga", "Proc", "FreeLocal") || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// isCreateCall reports whether call is one of the Runtime array
// constructors.
func isCreateCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || !createMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && analysis.NamedTypeIs(sig.Recv().Type(), "ga", "Runtime")
}

// handleDestroyed reports whether obj reaches a Destroy/DestroyTiled
// call after pos anywhere in the scope subtree.
func handleDestroyed(info *types.Info, scope analysis.FuncScope, obj types.Object, pos token.Pos) bool {
	destroyed := false
	ast.Inspect(scope.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) != 1 {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || !destroyMethods[fn.Name()] {
			return true
		}
		sig, okSig := fn.Type().(*types.Signature)
		if !okSig || sig.Recv() == nil || !analysis.NamedTypeIs(sig.Recv().Type(), "ga", "Runtime") {
			return true
		}
		if id, okID := ast.Unparen(call.Args[0]).(*ast.Ident); okID && info.Uses[id] == obj {
			destroyed = true
		}
		return true
	})
	return destroyed
}

// handleEscapes reports whether the handle is returned, stored, aliased,
// or placed in a composite literal anywhere in the scope subtree.
func handleEscapes(info *types.Info, scope analysis.FuncScope, obj types.Object) bool {
	if escapesViaReturn(info, scope, obj) {
		return true
	}
	escapes := false
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return true
		})
		return found
	}
	ast.Inspect(scope.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// A store of the handle transfers ownership — except into
			// the blank identifier, which stores nothing.
			for i, rhs := range s.Rhs {
				if len(s.Lhs) == len(s.Rhs) {
					if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && info.Uses[id] == obj {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				if usesObj(elt) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if usesObj(s.Value) {
				escapes = true
			}
		}
		return true
	})
	return escapes
}

// callName renders the called expression for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return "call"
}
