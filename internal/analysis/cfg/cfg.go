// Package cfg builds per-function control-flow graphs over the Go AST.
// It is the flow-sensitive foundation of the fouridxlint analyzers: the
// purely lexical checks in the original suite treat "a Wait appears
// later in the source" as "the Wait runs", which is exact for
// straight-line schedule code but blind to early returns, error
// branches, and loops — exactly the paths the runtime's dynamic checks
// (race detector, chaos seeds) only see when a test happens to take
// them. A CFG makes "on every path" and "on some path" mechanical.
//
// The graph is statement-granular: each Block holds a straight-line
// sequence of atomic nodes (simple statements, plus the Init/Cond/Tag
// parts of control statements), and control transfer is expressed only
// through Succs edges. Function literals are not descended into — each
// function body is its own graph — and a node sequence therefore never
// spans scopes. panic calls and os.Exit terminate their block without
// an edge to Exit, so path queries naturally treat dying paths as
// requiring nothing further.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one straight-line run of nodes with a single entry point.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, dense).
	Index int
	// Nodes are the block's statements and control-statement parts, in
	// execution order. Nested function literals appear inside nodes but
	// their bodies belong to their own graphs.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Preds are the possible predecessor blocks.
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, entry first; unreachable blocks (dead
	// code after a return) are retained so analyses can still inspect
	// their nodes.
	Blocks []*Block
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the single synthetic exit: every return and the fall-off
	// end of the body edge here. It holds no nodes.
	Exit *Block
	// Defers lists the defer statements encountered anywhere in the
	// body, in source order. Deferred calls run at every exit that the
	// defer statement precedes; analyses that care (a deferred Wait
	// covers all later exits) consult this list.
	Defers []*ast.DeferStmt
}

// Pos identifies a node position inside a graph: the node at
// Block.Nodes[Index]. An Index equal to len(Nodes) denotes the end of
// the block (used as a search start meaning "after the last node").
type Pos struct {
	Block *Block
	Index int
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit)
	b.resolveGotos()
	return g
}

// PosOf locates n among the graph's block nodes. The match is by node
// identity; n must be one of the atomic nodes the builder recorded (a
// statement, or the Init/Cond/Tag part of a control statement), not a
// nested expression.
func (g *Graph) PosOf(n ast.Node) (Pos, bool) {
	for _, blk := range g.Blocks {
		for i, node := range blk.Nodes {
			if node == n {
				return Pos{Block: blk, Index: i}, true
			}
		}
	}
	return Pos{}, false
}

// PathResult is the outcome of a Search call.
type PathResult struct {
	// Found is the first node satisfying the target predicate on some
	// stop-free path, or nil.
	Found ast.Node
	// ReachedExit reports whether some stop-free path reached the
	// graph's Exit without encountering a target node.
	ReachedExit bool
}

// Search explores every path forward from start (exclusive: scanning
// begins at the node after start.Index). A node satisfying stop ends
// its path; a node satisfying target is returned as a witness. Paths
// that reach Exit without a stop or target set ReachedExit. Either
// predicate may be nil. Search visits each block at most once per entry
// mode, so it terminates on cyclic graphs.
func (g *Graph) Search(start Pos, target, stop func(ast.Node) bool) PathResult {
	var res PathResult
	visited := make([]bool, len(g.Blocks))
	type item struct {
		blk  *Block
		from int
	}
	// The initial visit is partial (it starts after start.Index) and
	// does not mark the block visited: a loop that re-enters the start
	// block must still scan its earlier nodes once, via a full visit.
	work := []item{{start.Block, start.Index + 1}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if it.from == 0 {
			if visited[it.blk.Index] {
				continue
			}
			visited[it.blk.Index] = true
		}
		stopped := false
		for i := it.from; i < len(it.blk.Nodes); i++ {
			n := it.blk.Nodes[i]
			if stop != nil && stop(n) {
				stopped = true
				break
			}
			if target != nil && target(n) {
				res.Found = n
				return res
			}
		}
		if stopped {
			continue
		}
		for _, s := range it.blk.Succs {
			if s == g.Exit {
				res.ReachedExit = true
				continue
			}
			if !visited[s.Index] {
				work = append(work, item{s, 0})
			}
		}
	}
	return res
}

// builder incrementally grows a graph. cur is the block under
// construction; a terminated flow (return, panic, break) replaces cur
// with a fresh unreachable block so trailing dead code still lands in
// the graph.
type builder struct {
	g   *Graph
	cur *Block
	// targets stacks the enclosing breakable/continuable statements.
	targets []*target
	// labels maps label names to the block starting the labeled
	// statement, for goto resolution.
	labels map[string]*Block
	// pendingGotos are forward gotos awaiting their label's block.
	pendingGotos []pendingGoto
	// nextLabel is the label attached to the statement about to be
	// built (consumed by the loop/switch builders).
	nextLabel string
}

// target is one enclosing statement break/continue can address.
type target struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to blk and continues there.
func (b *builder) jump(blk *Block) {
	b.edge(b.cur, blk)
	b.cur = blk
}

// terminate ends the current flow: subsequent statements are dead code
// collected in a fresh, unreachable block.
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the statement being built.
func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.terminate()
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // labels on if are only goto targets; labeledStmt recorded it
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur
	join := b.newBlock()
	b.edge(thenEnd, join)
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.jump(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock()
	done := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, done)
	}
	continueTo := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		continueTo = post
	}
	b.targets = append(b.targets, &target{label: label, breakTo: done, continueTo: continueTo})
	b.cur = body
	b.stmt(s.Body)
	if post != nil {
		b.jump(post)
		b.add(s.Post)
	}
	b.edge(b.cur, head)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.jump(head)
	// The whole RangeStmt is the head node: analyses read X and the
	// per-iteration Key/Value definitions from it.
	b.add(s)
	body := b.newBlock()
	done := b.newBlock()
	b.edge(head, body)
	b.edge(head, done)
	b.targets = append(b.targets, &target{label: label, breakTo: done, continueTo: head})
	b.cur = body
	b.stmt(s.Body)
	b.edge(b.cur, head)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	cond := b.cur
	done := b.newBlock()
	b.targets = append(b.targets, &target{label: label, breakTo: done})
	b.caseClauses(s.Body, cond, done, func(cc *ast.CaseClause) ([]ast.Stmt, bool) {
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		return cc.Body, cc.List == nil
	})
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	cond := b.cur
	done := b.newBlock()
	b.targets = append(b.targets, &target{label: label, breakTo: done})
	b.caseClauses(s.Body, cond, done, func(cc *ast.CaseClause) ([]ast.Stmt, bool) {
		return cc.Body, cc.List == nil
	})
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// caseClauses wires the clause bodies of a (type) switch: every clause
// is entered from cond, every clause end reaches done, and fallthrough
// edges into the next clause's body. bodyOf extracts a clause's
// statements and reports whether it is the default clause.
func (b *builder) caseClauses(body *ast.BlockStmt, cond, done *Block, bodyOf func(*ast.CaseClause) ([]ast.Stmt, bool)) {
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		b.edge(cond, bodies[i])
	}
	hasDefault := false
	for i, cc := range clauses {
		b.cur = bodies[i]
		stmts, isDefault := bodyOf(cc)
		if isDefault {
			hasDefault = true
		}
		fellThrough := false
		for _, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1])
				b.terminate()
				fellThrough = true
				continue
			}
			b.stmt(st)
			fellThrough = false
		}
		if !fellThrough {
			b.edge(b.cur, done)
		}
	}
	if !hasDefault {
		b.edge(cond, done)
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	b.takeLabel()
	cond := b.cur
	done := b.newBlock()
	b.targets = append(b.targets, &target{breakTo: done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock()
		b.edge(cond, body)
		b.cur = body
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(s.Label, false); t != nil {
			b.edge(b.cur, t.breakTo)
		}
		b.terminate()
	case token.CONTINUE:
		if t := b.findTarget(s.Label, true); t != nil {
			b.edge(b.cur, t.continueTo)
		}
		b.terminate()
	case token.GOTO:
		if s.Label != nil {
			if blk, ok := b.labels[s.Label.Name]; ok {
				b.edge(b.cur, blk)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
		}
		b.terminate()
	case token.FALLTHROUGH:
		// Only reachable here for a fallthrough outside caseClauses
		// handling (ill-formed code); drop the flow.
		b.terminate()
	}
}

// findTarget resolves a break/continue to its enclosing statement.
func (b *builder) findTarget(label *ast.Ident, needContinue bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if needContinue && t.continueTo == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	start := b.newBlock()
	b.jump(start)
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	b.labels[s.Label.Name] = start
	b.nextLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.nextLabel = ""
}

func (b *builder) resolveGotos() {
	for _, pg := range b.pendingGotos {
		if blk, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, blk)
		}
	}
}

// ScanOwn visits the parts of a block node that execute when control
// reaches that node. Two subtrees are skipped: the body of a RangeStmt
// (the head node evaluates only the range operand and the key/value
// bindings; the body belongs to other blocks) and nested function
// literals (defining a closure runs no code). visit returning false
// prunes the walk below the current node, as with ast.Inspect.
// Analyzers should use ScanOwn instead of ast.Inspect when matching
// block nodes against predicates, or a loop body's contents leak into
// its head.
func ScanOwn(n ast.Node, visit func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		for _, part := range []ast.Expr{rs.Key, rs.Value, rs.X} {
			if part != nil {
				ScanOwn(part, visit)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}

// isTerminalCall reports whether the expression statement is a call
// that never returns: the panic builtin, or os.Exit / log.Fatal-style
// process exits matched by name.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if pkg.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal") {
				return true
			}
		}
	}
	return false
}

// String renders the graph for debugging and golden tests: one line per
// block with its node kinds and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", blk.Index)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " %T", n)
		}
		fmt.Fprintf(&sb, " ->")
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		if blk == g.Exit {
			fmt.Fprintf(&sb, " (exit)")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
