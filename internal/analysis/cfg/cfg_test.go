package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"fourindex/internal/analysis/cfg"
)

// buildFunc parses a function body and builds its graph.
func buildFunc(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(f.Decls[0].(*ast.FuncDecl).Body)
}

// mentions matches any node whose own code (per cfg.ScanOwn: not a
// range head's body, not nested function literals) contains an
// identifier called name.
func mentions(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		cfg.ScanOwn(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && id.Name == name {
				found = true
			}
			return true
		})
		return found
	}
}

// startAt locates the first node mentioning name, as a search start.
func startAt(t *testing.T, g *cfg.Graph, name string) cfg.Pos {
	t.Helper()
	pred := mentions(name)
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if pred(n) {
				return cfg.Pos{Block: blk, Index: i}
			}
		}
	}
	t.Fatalf("no node mentions %q in\n%s", name, g)
	return cfg.Pos{}
}

func TestLinearSearch(t *testing.T) {
	g := buildFunc(t, "a(); b(); c()")
	res := g.Search(startAt(t, g, "a"), mentions("c"), nil)
	if res.Found == nil {
		t.Fatalf("c not found after a:\n%s", g)
	}
	res = g.Search(startAt(t, g, "a"), mentions("zzz"), nil)
	if res.Found != nil || !res.ReachedExit {
		t.Fatalf("expected exit without witness, got %+v", res)
	}
	// stop before target ends the (only) path
	res = g.Search(startAt(t, g, "a"), mentions("c"), mentions("b"))
	if res.Found != nil || res.ReachedExit {
		t.Fatalf("stop at b should end the path, got %+v", res)
	}
}

func TestEarlyReturnPath(t *testing.T) {
	g := buildFunc(t, "h(); if cond() {\nreturn\n}\nw()")
	isReturn := func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok }
	res := g.Search(startAt(t, g, "h"), isReturn, mentions("w"))
	if res.Found == nil {
		t.Fatalf("early return not witnessed past the w-stop:\n%s", g)
	}
	// on the other path, w is reachable
	res = g.Search(startAt(t, g, "h"), mentions("w"), nil)
	if res.Found == nil {
		t.Fatalf("w unreachable from h:\n%s", g)
	}
}

func TestBothBranchesStop(t *testing.T) {
	g := buildFunc(t, "h(); if cond() {\nw1()\n} else {\nw2()\n}\nend()")
	stop := func(n ast.Node) bool { return mentions("w1")(n) || mentions("w2")(n) }
	res := g.Search(startAt(t, g, "h"), nil, stop)
	if res.ReachedExit {
		t.Fatalf("every path should hit a stop:\n%s", g)
	}
}

func TestZeroTripLoop(t *testing.T) {
	g := buildFunc(t, "x(); for i := 0; i < n; i++ {\ny()\n}\nz()")
	// the zero-trip path skips the body entirely
	res := g.Search(startAt(t, g, "x"), mentions("z"), mentions("y"))
	if res.Found == nil {
		t.Fatalf("zero-trip path to z not found:\n%s", g)
	}
	// the loop body is also reachable
	res = g.Search(startAt(t, g, "x"), mentions("y"), nil)
	if res.Found == nil {
		t.Fatalf("loop body unreachable:\n%s", g)
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := buildFunc(t, "for {\na()\nif cond() {\nbreak\n}\n}\nc()")
	res := g.Search(startAt(t, g, "a"), mentions("c"), nil)
	if res.Found == nil {
		t.Fatalf("break edge missing:\n%s", g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, "for k := range m {\nuse(k)\n}\nafter()")
	res := g.Search(cfg.Pos{Block: g.Entry, Index: -1}, mentions("after"), mentions("use"))
	if res.Found == nil {
		t.Fatalf("zero-iteration range path missing:\n%s", g)
	}
	isRange := func(n ast.Node) bool { _, ok := n.(*ast.RangeStmt); return ok }
	res = g.Search(cfg.Pos{Block: g.Entry, Index: -1}, isRange, nil)
	if res.Found == nil {
		t.Fatalf("range head node missing:\n%s", g)
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	g := buildFunc(t, "a(); if bad() {\npanic(\"x\")\n}\nb()")
	// the panic path dies; the other path stops at b, so exit is unreachable
	res := g.Search(startAt(t, g, "a"), nil, mentions("b"))
	if res.ReachedExit {
		t.Fatalf("panic path should not reach exit:\n%s", g)
	}
}

func TestOsExitTerminates(t *testing.T) {
	g := buildFunc(t, "a(); os.Exit(1); b()")
	res := g.Search(startAt(t, g, "a"), mentions("b"), nil)
	if res.Found != nil || res.ReachedExit {
		t.Fatalf("os.Exit should end the path, got %+v\n%s", res, g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, "switch x {\ncase 1:\na()\nfallthrough\ncase 2:\nb()\ndefault:\nc()\n}")
	res := g.Search(startAt(t, g, "a"), mentions("b"), nil)
	if res.Found == nil {
		t.Fatalf("fallthrough edge missing:\n%s", g)
	}
	// case 1 does not flow into default
	res = g.Search(startAt(t, g, "a"), mentions("c"), mentions("b"))
	if res.Found != nil {
		t.Fatalf("case 1 should not reach default:\n%s", g)
	}
}

func TestSwitchWithDefaultCoversAllPaths(t *testing.T) {
	g := buildFunc(t, "h(); switch x {\ncase 1:\nw()\ndefault:\nw()\n}\nend()")
	res := g.Search(startAt(t, g, "h"), mentions("end"), mentions("w"))
	if res.Found != nil {
		t.Fatalf("all switch paths hit w, end should be unreachable:\n%s", g)
	}
}

func TestGoto(t *testing.T) {
	g := buildFunc(t, "a()\ngoto L\nb()\nL:\nc()")
	res := g.Search(startAt(t, g, "a"), mentions("c"), mentions("b"))
	if res.Found == nil {
		t.Fatalf("goto edge to label missing:\n%s", g)
	}
}

func TestLabeledContinueTerminates(t *testing.T) {
	// must build and search without hanging
	g := buildFunc(t, "outer:\nfor {\nfor {\na()\ncontinue outer\n}\n}\nend()")
	res := g.Search(startAt(t, g, "a"), mentions("end"), nil)
	if res.Found != nil {
		t.Fatalf("continue outer cannot reach end (no break):\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, "sel()\nselect {\ncase <-ch1:\na()\ncase <-ch2:\nb()\n}\nend()")
	res := g.Search(startAt(t, g, "sel"), mentions("end"), mentions("a"))
	if res.Found == nil {
		t.Fatalf("second select clause path missing:\n%s", g)
	}
}

func TestDefersRecorded(t *testing.T) {
	g := buildFunc(t, "defer h.Wait(p)\nwork()")
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(g.Defers))
	}
}

func TestPosOf(t *testing.T) {
	g := buildFunc(t, "a(); b()")
	var target ast.Node
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if mentions("b")(n) {
				target = n
			}
		}
	}
	pos, ok := g.PosOf(target)
	if !ok || pos.Block.Nodes[pos.Index] != target {
		t.Fatalf("PosOf failed to locate node")
	}
	if _, ok := g.PosOf(&ast.BadStmt{}); ok {
		t.Fatalf("PosOf matched a foreign node")
	}
}

func TestLoopReentersStartBlock(t *testing.T) {
	// the wait before the issue in the same loop body must be seen when
	// the back edge re-enters the block
	g := buildFunc(t, "for {\nw()\nh()\n}")
	res := g.Search(startAt(t, g, "h"), mentions("w"), nil)
	if res.Found == nil {
		t.Fatalf("back edge should re-scan earlier nodes once:\n%s", g)
	}
}
