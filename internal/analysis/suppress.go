package analysis

import (
	"go/token"
	"regexp"
	"strings"
)

// Suppression directives let a human override an analyzer where the
// code is intentionally outside the discipline, but only with a
// recorded justification:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses matching diagnostics reported on its own
// line (trailing comment) or on the line directly below (preceding
// comment). A directive without a reason suppresses nothing and is
// itself reported as a finding, so an unjustified ignore fails the lint
// run instead of silently widening a hole.
var ignoreRE = regexp.MustCompile(`^//lint:ignore\b[ \t]*(\S*)[ \t]*(.*)$`)

// SuppressionAnalyzer is the reporting name for malformed directives.
// It is not a runnable analyzer; it exists so directive problems carry
// a name in diagnostics and can themselves never be suppressed.
const SuppressionAnalyzer = "lintignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos       token.Position
	analyzers map[string]bool
	justified bool
	malformed string // non-empty: why the directive is unusable
}

// collectDirectives parses every //lint:ignore comment in the package.
func collectDirectives(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				d := directive{pos: pkg.Fset.Position(c.Pos())}
				if m[1] == "" {
					d.malformed = "missing analyzer name"
				} else {
					d.analyzers = make(map[string]bool)
					for _, name := range strings.Split(m[1], ",") {
						d.analyzers[strings.TrimSpace(name)] = true
					}
				}
				reason := strings.TrimSpace(m[2])
				d.justified = reason != ""
				if d.malformed == "" && !d.justified {
					d.malformed = "missing justification"
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by a justified
// //lint:ignore directive and reports unjustified or malformed
// directives as findings of their own. Directives can never suppress
// SuppressionAnalyzer findings.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	dirs := collectDirectives(pkg)
	if len(dirs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(dirs, d) {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if dir.malformed != "" {
			kept = append(kept, Diagnostic{
				Analyzer: SuppressionAnalyzer,
				Pos:      dir.pos,
				Message:  "unjustified //lint:ignore directive (" + dir.malformed + "): write //lint:ignore <analyzer> <reason>",
			})
		}
	}
	return kept
}

// suppressed reports whether a justified directive covers d.
func suppressed(dirs []directive, d Diagnostic) bool {
	if d.Analyzer == SuppressionAnalyzer {
		return false
	}
	for _, dir := range dirs {
		if dir.malformed != "" || !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if d.Pos.Line == dir.pos.Line || d.Pos.Line == dir.pos.Line+1 {
			return true
		}
	}
	return false
}
