// Package perf is a metricsdiscipline fixture: the benchmark harness
// (import path ending in /perf) may read the wall clock — measuring
// wall time is its purpose — so nothing in this package is flagged.
package perf

import "time"

// Wall times one benchmark repetition.
func Wall(run func()) float64 {
	start := time.Now()
	run()
	return time.Since(start).Seconds()
}
