// Package trace is a metricsdiscipline fixture: a miniature of the real
// execution tracer, with in-package code that both respects and violates
// the accessor discipline. The analyzer matches guarded types by
// (package name, type name), so this self-contained stub exercises the
// same code paths as the real fourindex/internal/trace.
package trace

import "sync"

// Tracer is the fixture twin of the real trace.Tracer.
type Tracer struct {
	mu      sync.Mutex
	ring    []int64
	dropped int64
}

// Emit is a proper accessor: methods may touch fields under the lock.
func (t *Tracer) Emit(elems int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == cap(t.ring) {
		t.dropped++
		return
	}
	t.ring = append(t.ring, elems)
}

// Dropped is the mutex-guarded read accessor.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// sneakyDrops reads tracer state without the mutex.
func sneakyDrops(t *Tracer) int64 {
	return t.dropped // want `direct access to trace\.Tracer field "dropped"`
}

// sink holds a tracer; its methods also must not reach in.
type sink struct{ t *Tracer }

func (s *sink) flush() []int64 {
	buf := s.t.ring // want `direct access to trace\.Tracer field "ring"`
	return buf
}

// cleanUse goes through accessors only.
func cleanUse(t *Tracer) int64 {
	t.Emit(8)
	return t.Dropped()
}
