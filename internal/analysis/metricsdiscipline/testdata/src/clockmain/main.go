// Package main is a metricsdiscipline fixture: driver binaries may read
// the wall clock (report timestamps, progress logging), so nothing in
// this package is flagged.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
