// Package metrics is a metricsdiscipline fixture: a miniature of the
// real counters package, with in-package code that both respects and
// violates the accessor discipline. The analyzer matches the type by
// (package name, type name), so this self-contained stub exercises the
// same code paths as the real fourindex/internal/metrics.
package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counters is the fixture twin of the real metrics.Counters.
type Counters struct {
	flops atomic.Int64

	mu      sync.Mutex
	current int64
	peak    int64
}

// AddFlops is a proper accessor: methods may touch fields.
func (c *Counters) AddFlops(n int64) { c.flops.Add(n) }

// Alloc is a proper mutex-guarded accessor.
func (c *Counters) Alloc(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.current += n
	if c.current > c.peak {
		c.peak = c.current
	}
}

// sneakyRead bypasses the accessors from a plain function.
func sneakyRead(c *Counters) int64 {
	return c.current // want `direct access to metrics\.Counters field "current"`
}

// sneakyReset pokes the atomic field without the accessor.
func sneakyReset(c *Counters) {
	c.flops.Store(0) // want `direct access to metrics\.Counters field "flops"`
}

// aggregator is a different type whose method also must not reach in.
type aggregator struct{ c *Counters }

func (a *aggregator) peakOf() int64 {
	return a.c.peak // want `direct access to metrics\.Counters field "peak"`
}

// cleanUse goes through accessors only.
func cleanUse(c *Counters) {
	c.AddFlops(1)
	c.Alloc(2)
}

// stamp reads the wall clock from simulated-time code.
func stamp() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now in simulated-time code`
}

// nap schedules against the real clock.
func nap() {
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in simulated-time code`
}

// cleanDuration manipulates time values without reading the clock.
func cleanDuration(d time.Duration) time.Duration {
	return d * 2
}
