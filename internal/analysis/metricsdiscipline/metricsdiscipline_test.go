package metricsdiscipline_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/metricsdiscipline"
)

func TestCountersAndClockDiscipline(t *testing.T) {
	analysistest.Run(t, metricsdiscipline.Analyzer, "./testdata/src/metrics")
}

func TestTracerFieldsGuarded(t *testing.T) {
	analysistest.Run(t, metricsdiscipline.Analyzer, "./testdata/src/trace")
}

func TestPackageMainMayUseWallClock(t *testing.T) {
	analysistest.Run(t, metricsdiscipline.Analyzer, "./testdata/src/clockmain")
}

func TestPerfHarnessMayUseWallClock(t *testing.T) {
	analysistest.Run(t, metricsdiscipline.Analyzer, "./testdata/src/perf")
}
