// Package metricsdiscipline enforces the accounting discipline of the
// metrics package and the cost model.
//
// Check 1: fields of the guarded accounting types — metrics.Counters
// and trace.Tracer — may be touched only by methods of the type itself.
// The counters mix atomics and a mutex-guarded ledger; the tracer's
// ring buffer, span stack, and per-process sequence counters are all
// protected by its mutex. Any access outside the accessor methods
// either races or reads a torn view, and cost-mode/execute-mode runs
// then stop reporting identical data-movement numbers (the property
// the whole evaluation rests on).
//
// Check 2: simulated-time code must not consult the wall clock. All
// timing inside the runtime and the schedules comes from the machine
// cost model (cluster.Run); a time.Now in a cost path makes the
// replayed molecule-scale experiments nondeterministic. Wall-clock use
// is allowed only in package main (drivers, figure generation), in the
// experiments reporting package, and in the perf benchmark harness —
// measuring wall time is perf's entire purpose, and its deterministic
// report layer is pinned separately by its own golden and determinism
// tests.
package metricsdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"fourindex/internal/analysis"
)

// Analyzer is the metricsdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "metricsdiscipline",
	Doc:  "metrics.Counters and trace.Tracer state only via accessor methods; no wall-clock reads in simulated-time code",
	Run:  run,
}

// guardedTypes lists the (package name, type name) pairs whose fields
// are off limits outside their own methods. Matching is by package name
// (see analysis.IsMethodCall) so the self-contained test fixtures
// exercise the same paths as the real packages.
var guardedTypes = [...][2]string{
	{"metrics", "Counters"},
	{"trace", "Tracer"},
}

// wallClock lists the time-package functions that read or schedule
// against the real clock.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *analysis.Pass) error {
	clockAllowed := pass.Pkg.Name() == "main" ||
		strings.Contains(pass.Pkg.Path(), "experiments") ||
		strings.HasSuffix(pass.Pkg.Path(), "/perf")
	for _, file := range pass.Files {
		checkCounterFields(pass, file)
		if !clockAllowed {
			checkWallClock(pass, file)
		}
	}
	return nil
}

// checkCounterFields flags selector accesses to guarded-type fields
// from anywhere but a method of that same type.
func checkCounterFields(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			for _, gt := range guardedTypes {
				if analysis.NamedTypeIs(s.Recv(), gt[0], gt[1]) && !isMethodOf(pass.TypesInfo, fn, gt[0], gt[1]) {
					pass.Reportf(sel.Pos(), "direct access to %s.%s field %q bypasses its mutex/atomic accessors; cost-mode and execute-mode accounting diverge under races", gt[0], gt[1], sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// isMethodOf reports whether fn is declared with a pkgName.typeName (or
// pointer-to) receiver.
func isMethodOf(info *types.Info, fn *ast.FuncDecl, pkgName, typeName string) bool {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	t := info.Types[fn.Recv.List[0].Type].Type
	return t != nil && analysis.NamedTypeIs(t, pkgName, typeName)
}

// checkWallClock flags uses of real-clock functions from package time.
func checkWallClock(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !wallClock[id.Name] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return true
		}
		pass.Reportf(id.Pos(), "wall-clock time.%s in simulated-time code; use the cluster.Run cost model (Proc.Clock) so cost-mode replays stay deterministic", id.Name)
		return true
	})
}
