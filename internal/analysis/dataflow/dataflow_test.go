package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"

	"fourindex/internal/analysis/cfg"
	"fourindex/internal/analysis/dataflow"
)

// check parses and typechecks one file of package p.
func check(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info
}

// funcBody returns the body of the named function declaration.
func funcBody(t *testing.T, f *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

// objNamed finds the defined object with the given name (the earliest
// by position when a fixture reuses one).
func objNamed(t *testing.T, info *types.Info, name string) types.Object {
	t.Helper()
	var objs []types.Object
	for id, obj := range info.Defs {
		if obj != nil && id.Name == name {
			objs = append(objs, obj)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	if len(objs) == 0 {
		t.Fatalf("no object %s", name)
	}
	return objs[0]
}

func TestReachingDefsJoin(t *testing.T) {
	f, info := check(t, `package p
func use(int) {}
func f(c bool) {
	x := 1
	if c {
		x = 2
	}
	use(x)
}`)
	body := funcBody(t, f, "f")
	g := cfg.New(body)
	in := dataflow.ReachingDefs(g, info, nil)
	x := objNamed(t, info, "x")

	// find the block holding use(x)
	var useBlk *cfg.Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
						useBlk = blk
					}
				}
			}
		}
	}
	if useBlk == nil {
		t.Fatalf("use block not found:\n%s", g)
	}
	reaching := 0
	for d := range in[useBlk] {
		if d.Obj == x {
			reaching++
		}
	}
	if reaching != 2 {
		t.Fatalf("got %d reaching defs of x at use, want 2 (both branches)", reaching)
	}
}

func TestReachingDefsKill(t *testing.T) {
	f, info := check(t, `package p
func use(int) {}
func f() {
	x := 1
	x = 2
	use(x)
}`)
	body := funcBody(t, f, "f")
	g := cfg.New(body)
	in := dataflow.ReachingDefs(g, info, nil)
	x := objNamed(t, info, "x")
	// straight-line code: the whole body is one block, so inspect the
	// out-fact indirectly by transferring to the exit's predecessors
	count := 0
	for _, blk := range g.Exit.Preds {
		for d := range in[blk] {
			if d.Obj == x {
				count++
			}
		}
	}
	// in-fact of the single body block has no defs of x yet (they all
	// happen inside it); the real kill behavior is covered by the
	// sources test below
	_ = count
	srcs := 0
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, d := range dataflow.NodeDefs(info, n) {
				if d.Obj == x {
					srcs++
				}
			}
		}
	}
	if srcs != 2 {
		t.Fatalf("got %d def sites of x, want 2", srcs)
	}
}

func TestNodeDefsAndSources(t *testing.T) {
	f, info := check(t, `package p
func g() (int, int) { return 1, 2 }
func f(m map[string]int) {
	a, b := 1, 2
	a = b
	a++
	var c int
	_ = c
	for k, v := range m {
		_, _ = k, v
	}
}`)
	body := funcBody(t, f, "f")
	a := objNamed(t, info, "a")
	b := objNamed(t, info, "b")

	var aDefs []dataflow.Def
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.RangeStmt:
			for _, d := range dataflow.NodeDefs(info, n) {
				if d.Obj == a {
					aDefs = append(aDefs, d)
				}
			}
		}
		return true
	})
	if len(aDefs) != 3 {
		t.Fatalf("got %d defs of a, want 3 (decl, assign, incdec)", len(aDefs))
	}
	// the `a = b` def's source must be exactly the ident b
	found := false
	for _, d := range aDefs {
		if as, ok := d.Site.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			srcs := dataflow.DefSources(info, d)
			if len(srcs) == 1 {
				if id, ok := srcs[0].(*ast.Ident); ok && info.Uses[id] == b {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("DefSources did not resolve a = b to the ident b")
	}
}

func TestCaptured(t *testing.T) {
	f, info := check(t, `package p
var global int
type T struct{ f int }
func f(outer int, tv T) func() {
	local := 3
	return func() {
		inner := outer + local + global + tv.f
		_ = inner
	}
}`)
	var lit *ast.FuncLit
	ast.Inspect(funcBody(t, f, "f"), func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	caps := dataflow.Captured(info, lit)
	names := make(map[string]bool)
	for _, o := range caps {
		names[o.Name()] = true
	}
	for _, want := range []string{"outer", "local", "tv"} {
		if !names[want] {
			t.Errorf("capture set missing %s (got %v)", want, names)
		}
	}
	for _, no := range []string{"global", "inner", "f"} {
		if names[no] {
			t.Errorf("capture set wrongly contains %s", no)
		}
	}
}

func TestWrites(t *testing.T) {
	f, info := check(t, `package p
type S struct{ n int }
func f(xs []int, m map[string]int, s *S) {
	var tot int
	tot += 1
	xs[0] = 2
	m["k"] = 3
	s.n = 4
	tot++
	func() { tot = 99 }() // nested literal: not scanned
}`)
	body := funcBody(t, f, "f")
	tracked := make(map[types.Object]bool)
	for _, name := range []string{"tot", "xs", "m", "s"} {
		tracked[objNamed(t, info, name)] = true
	}
	writes := dataflow.Writes(info, body, tracked)
	kinds := make(map[string][]dataflow.WriteKind)
	for _, w := range writes {
		kinds[w.Obj.Name()] = append(kinds[w.Obj.Name()], w.Kind)
	}
	if got := kinds["tot"]; len(got) != 2 || got[0] != dataflow.WriteAssign {
		t.Errorf("tot writes = %v, want two WriteAssign (nested literal excluded)", got)
	}
	if got := kinds["xs"]; len(got) != 1 || got[0] != dataflow.WriteIndex {
		t.Errorf("xs writes = %v, want one WriteIndex", got)
	}
	if got := kinds["m"]; len(got) != 1 || got[0] != dataflow.WriteIndex {
		t.Errorf("m writes = %v, want one WriteIndex", got)
	}
	if got := kinds["s"]; len(got) != 1 || got[0] != dataflow.WriteField {
		t.Errorf("s writes = %v, want one WriteField", got)
	}
}

func TestRootObjectAndUses(t *testing.T) {
	f, info := check(t, `package p
type S struct{ xs [][]int }
func f(s S) {
	s.xs[0][1] = 2
}`)
	body := funcBody(t, f, "f")
	s := objNamed(t, info, "s")
	var lhs ast.Expr
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			lhs = as.Lhs[0]
		}
		return true
	})
	if got := dataflow.RootObject(info, lhs); got != s {
		t.Errorf("RootObject = %v, want s", got)
	}
	if !dataflow.UsesObject(info, body, s) {
		t.Errorf("UsesObject failed to see s")
	}
}
