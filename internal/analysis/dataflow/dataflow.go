// Package dataflow is a small forward-dataflow engine over the cfg
// package's graphs, plus the two fact families the fouridxlint
// analyzers need: reaching definitions and escape/capture facts for
// closures. Like the rest of internal/analysis it is built on the
// standard library only.
//
// The engine is deliberately minimal: a worklist iteration to fixpoint
// with caller-supplied join and transfer functions. The lattices the
// analyzers use (sets of definition sites, sets of tainted objects) are
// finite per function, so termination needs only monotone transfers.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"fourindex/internal/analysis/cfg"
)

// Forward iterates a forward dataflow analysis to fixpoint and returns
// the in-fact of every block. entry seeds the graph entry; join merges
// two facts (must be commutative and monotone); transfer pushes a fact
// through one block; equal detects the fixpoint. Facts must be treated
// as immutable by transfer and join.
func Forward[T any](g *cfg.Graph, entry T, join func(a, b T) T, transfer func(b *cfg.Block, in T) T, equal func(a, b T) bool) map[*cfg.Block]T {
	in := make(map[*cfg.Block]T, len(g.Blocks))
	out := make(map[*cfg.Block]T, len(g.Blocks))
	seeded := make(map[*cfg.Block]bool, len(g.Blocks))
	in[g.Entry] = entry
	seeded[g.Entry] = true

	work := []*cfg.Block{g.Entry}
	queued := make(map[*cfg.Block]bool)
	queued[g.Entry] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		o := transfer(blk, in[blk])
		if prev, ok := out[blk]; ok && equal(prev, o) {
			continue
		}
		out[blk] = o
		for _, s := range blk.Succs {
			var ni T
			if !seeded[s] {
				ni = o
				seeded[s] = true
			} else {
				ni = join(in[s], o)
			}
			if !seeded[s] || !equal(ni, in[s]) {
				in[s] = ni
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return in
}

// Def is one definition site of a variable: the node that assigns it.
type Def struct {
	Obj  types.Object
	Site ast.Node
}

// DefSet is an immutable-by-convention set of definitions.
type DefSet map[Def]bool

// Equal reports set equality.
func (s DefSet) Equal(o DefSet) bool {
	if len(s) != len(o) {
		return false
	}
	for d := range s {
		if !o[d] {
			return false
		}
	}
	return true
}

// union returns s ∪ o, sharing the larger input when possible.
func union(s, o DefSet) DefSet {
	if len(o) > len(s) {
		s, o = o, s
	}
	grown := s
	copied := false
	for d := range o {
		if !grown[d] {
			if !copied {
				g := make(DefSet, len(s)+len(o))
				for k := range s {
					g[k] = true
				}
				grown, copied = g, true
			}
			grown[d] = true
		}
	}
	return grown
}

// ReachingDefs computes, for every block, the set of definitions that
// reach its entry: the classic gen/kill analysis with defs gathered
// from assignments, declarations, inc/dec statements, and range-clause
// key/value bindings. params seeds the entry block (function parameters
// are definitions at Entry).
func ReachingDefs(g *cfg.Graph, info *types.Info, params []types.Object) map[*cfg.Block]DefSet {
	entry := make(DefSet, len(params))
	for _, p := range params {
		entry[Def{Obj: p, Site: nil}] = true
	}
	transfer := func(blk *cfg.Block, in DefSet) DefSet {
		cur := in
		for _, n := range blk.Nodes {
			defs := NodeDefs(info, n)
			if len(defs) == 0 {
				continue
			}
			next := make(DefSet, len(cur)+len(defs))
			killed := make(map[types.Object]bool, len(defs))
			for _, d := range defs {
				killed[d.Obj] = true
			}
			for d := range cur {
				if !killed[d.Obj] {
					next[d] = true
				}
			}
			for _, d := range defs {
				next[d] = true
			}
			cur = next
		}
		return cur
	}
	return Forward(g, entry, union, transfer, DefSet.Equal)
}

// NodeDefs lists the variables a single CFG node defines (assigns), as
// Def facts whose Site is the node. Nested function literals are not
// descended into.
func NodeDefs(info *types.Info, n ast.Node) []Def {
	var out []Def
	record := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			out = append(out, Def{Obj: obj, Site: n})
		}
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			record(lhs)
		}
	case *ast.IncDecStmt:
		record(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						record(name)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if s.Key != nil {
			record(s.Key)
		}
		if s.Value != nil {
			record(s.Value)
		}
	case *ast.TypeSwitchStmt:
		// handled via its Assign node when present in a block
	}
	return out
}

// DefSources returns the expressions a definition site reads to produce
// the defined object's new value: the matching RHS of an assignment,
// the range operand for range-bound keys/values, or the spec values of
// a declaration. A nil Site (parameter) returns nil.
func DefSources(info *types.Info, d Def) []ast.Expr {
	switch s := d.Site.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && useOrDef(info, id) == d.Obj {
					return []ast.Expr{s.Rhs[i]}
				}
			}
		}
		return s.Rhs
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.RangeStmt:
		return []ast.Expr{s.X}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			var out []ast.Expr
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
			return out
		}
	}
	return nil
}

// Captured lists the free variables of a function literal: objects used
// inside lit that are declared in an enclosing function scope. Package-
// level objects and fields are not captures. The result preserves first-
// use order.
func Captured(info *types.Info, lit *ast.FuncLit) []types.Object {
	inside := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				inside[obj] = true
			}
		}
		return true
	})
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || inside[obj] || seen[obj] {
			return true
		}
		if obj.Parent() == nil || obj.Parent() == types.Universe {
			return true
		}
		// Package-scope variables are shared state but not captures of
		// this literal; the analyzers treat them separately.
		if pkgScope(obj) {
			return true
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// pkgScope reports whether v is declared at package scope.
func pkgScope(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// WriteKind classifies how a node writes an object.
type WriteKind int

// Write kinds, from most to least direct.
const (
	// WriteAssign is a direct assignment or inc/dec of the variable
	// itself (x = v, x += v, x++, x = append(x, ...)).
	WriteAssign WriteKind = iota
	// WriteIndex stores through an index of the variable (x[i] = v),
	// covering both slice elements and map keys.
	WriteIndex
	// WriteField stores into a field of the variable (x.f = v).
	WriteField
)

// Write is one write to a tracked object found inside a scanned region.
type Write struct {
	Obj  types.Object
	Kind WriteKind
	// Node is the assignment or inc/dec statement performing the write.
	Node ast.Node
	// Index is the index expression for WriteIndex writes, nil
	// otherwise.
	Index ast.Expr
}

// Writes scans root (without descending into nested function literals
// other than root itself when root is one) and returns the writes to
// any object in tracked. The scan covers assignment statements, inc/dec
// statements, and range statements that bind into tracked variables.
func Writes(info *types.Info, root ast.Node, tracked map[types.Object]bool) []Write {
	body := root
	if lit, ok := root.(*ast.FuncLit); ok {
		body = lit.Body
	}
	var out []Write
	classify := func(stmt ast.Node, e ast.Expr) {
		e = ast.Unparen(e)
		switch t := e.(type) {
		case *ast.Ident:
			if obj := useOrDef(info, t); obj != nil && tracked[obj] {
				out = append(out, Write{Obj: obj, Kind: WriteAssign, Node: stmt})
			}
		case *ast.IndexExpr:
			if obj := rootObject(info, t.X); obj != nil && tracked[obj] {
				out = append(out, Write{Obj: obj, Kind: WriteIndex, Node: stmt, Index: t.Index})
			}
		case *ast.SelectorExpr:
			if obj := rootObject(info, t.X); obj != nil && tracked[obj] {
				out = append(out, Write{Obj: obj, Kind: WriteField, Node: stmt})
			}
		case *ast.StarExpr:
			if obj := rootObject(info, t.X); obj != nil && tracked[obj] {
				out = append(out, Write{Obj: obj, Kind: WriteAssign, Node: stmt})
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				classify(s, lhs)
			}
		case *ast.IncDecStmt:
			classify(s, s.X)
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				if s.Key != nil {
					classify(s, s.Key)
				}
				if s.Value != nil {
					classify(s, s.Value)
				}
			}
		}
		return true
	})
	return out
}

// useOrDef resolves an identifier to its object through either map.
func useOrDef(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// rootObject walks to the base identifier of a selector/index/star
// chain (a.b[i].c → a) and resolves it.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return useOrDef(info, t)
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// RootObject is the exported form of rootObject for analyzers.
func RootObject(info *types.Info, e ast.Expr) types.Object {
	return rootObject(info, e)
}

// UsesObject reports whether expr mentions obj outside nested function
// literals.
func UsesObject(info *types.Info, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return true
	})
	return found
}
