package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// packages pulled in only as dependencies).
	Target bool
}

// LoadError is the typed error returned when a listed package cannot be
// loaded: the go tool reported an error for it (missing dependency,
// broken source) or parsing/typechecking failed. Callers distinguish it
// from loader-internal failures with errors.As.
type LoadError struct {
	// ImportPath is the package the failure was reported against.
	ImportPath string
	// Reason is the underlying go list / parser / typechecker message.
	Reason string
}

// Error formats the failure with its package context.
func (e *LoadError) Error() string {
	return fmt.Sprintf("analysis: %s: %s", e.ImportPath, e.Reason)
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool (run in dir, "" for the
// current directory), parses and typechecks the matched packages and
// their dependencies from source, and returns the matched packages.
// It is a deliberately small stand-in for golang.org/x/tools/go/packages
// that works without network access: `go list -deps` emits packages in
// dependency order, so a single pass with a map-backed importer
// typechecks everything. Packages with cgo files are skipped: the
// loader has no C toolchain, and the analyzers' disciplines are about
// pure-Go runtime code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, false, patterns)
}

// LoadTests is Load with `go list -test`: each matched package that has
// tests is returned as its test-augmented variant (regular files plus
// _test.go files, each file exactly once), external _test packages are
// returned as their own targets, and the synthesized ".test" main
// packages are dropped.
func LoadTests(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, true, patterns)
}

func load(dir string, tests bool, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := []string{"list", "-e", "-deps"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, "-json=Dir,ImportPath,Name,Standard,DepOnly,ForTest,GoFiles,CgoFiles,Imports,ImportMap,Error")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Resolve the dependency closure without cgo: packages like net then
	// list their pure-Go fallback files, so the whole closure typechecks
	// in one universe. With cgo on, net would be skipped (no C toolchain
	// here) and its importers would resolve it through the fallback
	// source importer's separate universe, breaking type identity (two
	// distinct time.Time inside crypto/tls, say).
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	// In test mode a package with tests is listed twice: plain and as
	// the augmented "pkg [pkg.test]" variant whose GoFiles already
	// include the _test.go files. Analyze only the variant so every
	// file is seen exactly once; the plain package stays loaded as a
	// dependency for non-test importers.
	augmented := make(map[string]bool)
	if tests {
		for _, lp := range listed {
			if lp.ForTest != "" && !strings.HasSuffix(lp.Name, "_test") {
				augmented[lp.ForTest] = true
			}
		}
	}

	fset := token.NewFileSet()
	byPath := make(map[string]*Package, len(listed))
	var targets []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = &Package{ImportPath: "unsafe", Pkg: types.Unsafe}
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue // synthesized test-main package; nothing imports it
		}
		if lp.Error != nil {
			return nil, &LoadError{ImportPath: lp.ImportPath, Reason: lp.Error.Err}
		}
		if len(lp.CgoFiles) > 0 {
			continue // no C toolchain here; see Load doc comment
		}
		pkg, err := typecheck(fset, lp, byPath)
		if err != nil {
			return nil, err
		}
		byPath[lp.ImportPath] = pkg
		if !lp.DepOnly && !augmented[lp.ImportPath] {
			pkg.Target = true
			targets = append(targets, pkg)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}
	return targets, nil
}

// typecheck parses and typechecks one listed package against the
// already-loaded dependency map.
func typecheck(fset *token.FileSet, lp *listedPackage, byPath map[string]*Package) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, &LoadError{ImportPath: lp.ImportPath, Reason: fmt.Sprintf("parsing %s: %v", name, err)}
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &mapImporter{byPath: byPath, importMap: lp.ImportMap},
		Sizes:    types.SizesFor("gc", "amd64"),
		Error:    func(error) {}, // collect the first hard error below instead
	}
	// Typecheck test-augmented variants ("pkg [pkg.test]") under the
	// plain path so analyzers that inspect Pkg.Path() (e.g. the /perf
	// wall-clock exemption) see the real import path.
	checkPath := lp.ImportPath
	if i := strings.Index(checkPath, " ["); i >= 0 {
		checkPath = checkPath[:i]
	}
	tpkg, err := conf.Check(checkPath, fset, files, info)
	if err != nil {
		return nil, &LoadError{ImportPath: lp.ImportPath, Reason: fmt.Sprintf("typechecking: %v", err)}
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
	}, nil
}

// mapImporter resolves imports from the packages typechecked so far,
// applying the package's vendor import map first. Because `go list
// -deps` is topologically ordered, every import of a package appears in
// the map before the package itself is checked. The source fallback
// importer is only consulted for oddities like implicit runtime deps.
type mapImporter struct {
	byPath    map[string]*Package
	importMap map[string]string
	fallback  types.Importer
}

// Import resolves path through the vendor import map and the
// already-typechecked package set, falling back to the source importer
// for packages outside the dependency closure.
func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if p, ok := m.byPath[path]; ok {
		return p.Pkg, nil
	}
	if m.fallback == nil {
		m.fallback = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	pkg, err := m.fallback.Import(path)
	if err != nil {
		return nil, fmt.Errorf("package %q not in dependency set: %v", path, err)
	}
	return pkg, nil
}
