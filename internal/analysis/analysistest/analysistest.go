// Package analysistest runs an analyzer over fixture packages under a
// testdata directory and checks its diagnostics against expectations
// written in the fixture source, in the style of
// golang.org/x/tools/go/analysis/analysistest (which is unavailable in
// this offline build).
//
// An expectation is a trailing comment of the form
//
//	code() // want "regexp" "another regexp"
//
// Each quoted regexp must match the message of exactly one diagnostic
// reported on that line, and every diagnostic must be matched by an
// expectation. Lines without a want comment assert the absence of
// diagnostics, so fixtures naturally express clean cases too.
package analysistest

import (
	"regexp"
	"strconv"
	"testing"

	"fourindex/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture package at dir (an absolute or test-relative
// path to one package directory), applies the analyzer, and reports any
// mismatch between expectations and diagnostics as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load("", dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage([]*analysis.Analyzer{a}, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		checkExpectations(t, pkg, diags)
	}
}

// expectation is one "want" regexp at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos.String(), m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches the message.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// splitQuoted parses a sequence of Go-quoted strings, in either
// interpreted ("a\\.b") or raw (backtick) form.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	for i := 0; i < len(s); {
		q := s[i]
		if q != '"' && q != '`' {
			i++
			continue
		}
		j := i + 1
		for j < len(s) && (s[j] != q || (q == '"' && s[j-1] == '\\')) {
			j++
		}
		if j >= len(s) {
			t.Fatalf("%s: unterminated want pattern in %q", pos, s)
		}
		unq, err := strconv.Unquote(s[i : j+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[i:j+1], err)
		}
		out = append(out, unq)
		i = j + 1
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no quoted patterns: %q", pos, s)
	}
	return out
}
