// Package nbsuppress is the //lint:ignore fixture: a justified
// directive silences the finding on the next line, an unjustified one
// suppresses nothing and is itself reported, and a directive naming the
// wrong analyzer does not apply. Expectations are asserted
// programmatically in TestSuppression (directives are line comments, so
// a want comment cannot share their line).
package nbsuppress

import "fourindex/internal/ga"

// justified: the reason makes the suppression stick; no diagnostics.
func justified(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	//lint:ignore nbdiscipline fire-and-forget put: the region barrier completes it in this bench-only helper
	p.NbPutT(a, buf, 0, 0)
}

// unjustified: no reason, so the discard is still reported and the
// directive itself becomes a lintignore finding.
func unjustified(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	//lint:ignore nbdiscipline
	p.NbPutT(a, buf, 0, 1)
}

// wrongAnalyzer: a justified directive for a different analyzer does
// not cover an nbdiscipline finding.
func wrongAnalyzer(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	//lint:ignore docstring misdirected directive must not suppress nbdiscipline
	p.NbPutT(a, buf, 0, 2)
}
