// Package nbflow is the flow-sensitive nbdiscipline fixture: every case
// here needs the control-flow graph to judge correctly. The first two
// (early-return leak, use-before-wait) are invisible to the legacy
// lexical analyzer — a regression test asserts that difference.
package nbflow

import (
	"errors"

	"fourindex/internal/ga"
)

// earlyReturnLeak waits at the end of the function, but the error
// branch returns first: on that path the handle leaks. The legacy
// analyzer sees a Wait later in the source and stays silent.
func earlyReturnLeak(p *ga.Proc, a *ga.TiledArray, buf []float64, bad bool) error {
	h := p.NbGetT(a, buf, 0, 0) // want `nonblocking handle "h" does not reach Wait or WaitAll on the path returning at line \d+`
	if bad {
		return errors.New("bailed before wait")
	}
	h.Wait(p)
	return nil
}

// useBeforeWait reads the destination buffer while the get is still in
// flight. Lexically the Wait is present, so the legacy analyzer stays
// silent; only path order exposes the undefined read.
func useBeforeWait(p *ga.Proc, a *ga.TiledArray, buf []float64) float64 {
	h := p.NbGetT(a, buf, 0, 0) // want `buffer "buf" filled by NbGetT is read on line \d+ before the handle's Wait`
	v := buf[0]
	h.Wait(p)
	return v
}

// condWaitFallsOff waits on only one branch; the other falls off the
// end of the function with the handle pending.
func condWaitFallsOff(p *ga.Proc, a *ga.TiledArray, buf []float64, c bool) {
	h := p.NbPutT(a, buf, 0, 0) // want `nonblocking handle "h" does not reach Wait or WaitAll on a path falling off the end of the function`
	if c {
		h.Wait(p)
	}
}

// barrierOnOnePath crosses a barrier before the wait on the true
// branch only; flow sensitivity pins the offending line.
func barrierOnOnePath(p *ga.Proc, a *ga.TiledArray, buf []float64, c bool) {
	h := p.NbPutT(a, buf, 0, 0) // want `nonblocking handle "h" crosses a barrier on line \d+ before its Wait`
	if c {
		p.Barrier()
	}
	h.Wait(p)
}

// loopLeak issues inside the loop but waits only outside: the back edge
// re-issues over a pending handle and the final iteration's wait is
// fine, but an early continue path skips it.
func loopLeak(p *ga.Proc, a *ga.TiledArray, buf []float64, n int) error {
	for t := 0; t < n; t++ {
		h := p.NbGetT(a, buf, 0, t) // want `nonblocking handle "h" does not reach Wait or WaitAll on the path returning at line \d+`
		if t == 13 {
			return errors.New("unlucky tile")
		}
		h.Wait(p)
	}
	return nil
}

// cleanBranchWaits waits on every branch.
func cleanBranchWaits(p *ga.Proc, a *ga.TiledArray, buf []float64, c bool) {
	h := p.NbGetT(a, buf, 0, 0)
	if c {
		h.Wait(p)
	} else {
		h.Wait(p)
	}
	_ = buf[0]
}

// cleanDeferWait arms the wait before the early return, so every later
// exit completes the handle.
func cleanDeferWait(p *ga.Proc, a *ga.TiledArray, buf []float64, bad bool) error {
	h := p.NbGetT(a, buf, 0, 0)
	defer h.Wait(p)
	if bad {
		return errors.New("covered by the deferred wait")
	}
	return nil
}

// cleanPanicPath dies on the error branch: a dying path owes no wait.
func cleanPanicPath(p *ga.Proc, a *ga.TiledArray, buf []float64, bad bool) {
	h := p.NbGetT(a, buf, 0, 0)
	if bad {
		panic("dead path")
	}
	h.Wait(p)
}

// cleanEscapeOnErrorPath hands the handle to the caller on the error
// branch and waits on the normal one.
func cleanEscapeOnErrorPath(p *ga.Proc, a *ga.TiledArray, buf []float64, bad bool) *ga.Handle {
	h := p.NbPutT(a, buf, 0, 0)
	if bad {
		return h
	}
	h.Wait(p)
	return nil
}

// cleanLoopIssueWait pairs issue and wait inside the same iteration.
func cleanLoopIssueWait(p *ga.Proc, a *ga.TiledArray, buf []float64, n int) {
	for t := 0; t < n; t++ {
		h := p.NbGetT(a, buf, 0, t)
		h.Wait(p)
		_ = buf[0]
	}
}

// cleanClosureCapture gives the handle to a closure; the closure owns
// the wait, which is an ownership escape.
func cleanClosureCapture(p *ga.Proc, a *ga.TiledArray, buf []float64) func() {
	h := p.NbPutT(a, buf, 0, 0)
	return func() { h.Wait(p) }
}

// cleanSwitchWaits waits in every case including default.
func cleanSwitchWaits(p *ga.Proc, a *ga.TiledArray, buf []float64, k int) {
	h := p.NbGetT(a, buf, 0, 0)
	switch k {
	case 0:
		h.Wait(p)
	default:
		p.WaitAll(h)
	}
}
