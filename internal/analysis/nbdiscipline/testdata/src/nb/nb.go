// Package nb is an nbdiscipline fixture: it exercises the nonblocking
// handle discipline checks against the real ga runtime API. Lines
// carrying a "want" comment are true positives; the rest must stay
// clean.
package nb

import (
	"fourindex/internal/ga"
)

// discardResult drops the handle on the floor: nothing can ever wait it.
func discardResult(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	p.NbGetT(a, buf, 0, 0) // want `nonblocking handle from NbGetT is discarded`
}

// discardBlank binds the handle to the blank identifier.
func discardBlank(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	_ = p.NbPutT(a, buf, 0, 0) // want `nonblocking handle from NbPutT is discarded`
}

// neverWaited binds the handle but forgets the wait.
func neverWaited(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	h := p.NbGetT(a, buf, 0, 0) // want `nonblocking handle "h" never reaches Wait or WaitAll`
	_ = buf[0]
	_ = h
}

// barrierBeforeWait lets deferred work cross a synchronisation point.
func barrierBeforeWait(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	h := p.NbPutT(a, buf, 0, 0) // want `nonblocking handle "h" crosses a barrier on line \d+ before its Wait`
	p.Barrier()
	h.Wait(p)
}

// cleanWait is the straight-line issue/wait pair.
func cleanWait(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	h := p.NbGetT(a, buf, 0, 0)
	h.Wait(p)
	_ = buf[0]
}

// cleanWaitAll completes several handles through WaitAll, including a
// variadic spread.
func cleanWaitAll(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	h1 := p.NbPutT(a, buf, 0, 0)
	h2 := p.NbAccT(a, 1, buf, 0, 1)
	var hs []*ga.Handle
	h3 := p.NbPutT(a, buf, 0, 2)
	hs = append(hs, h3)
	p.WaitAll(h1, h2)
	p.WaitAll(hs...)
}

// cleanWaitBeforeBarrier waits before the barrier, the legal order.
func cleanWaitBeforeBarrier(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	h := p.NbGetT(a, buf, 0, 0)
	h.Wait(p)
	p.Barrier()
}

// cleanReturn hands the handle to the caller, who owns the wait.
func cleanReturn(p *ga.Proc, a *ga.TiledArray, buf []float64) *ga.Handle {
	return p.NbGetT(a, buf, 0, 0)
}

// cleanBoundReturn binds first, then returns.
func cleanBoundReturn(p *ga.Proc, a *ga.TiledArray, buf []float64) *ga.Handle {
	h := p.NbGetT(a, buf, 0, 0)
	return h
}

// waiter consumes a handle; used by the escape cases below.
func waiter(p *ga.Proc, h *ga.Handle) {
	if h != nil {
		h.Wait(p)
	}
}

// cleanCallEscape passes the handle to a helper (the nbQueue push
// pattern in the schedules); the callee owns the wait.
func cleanCallEscape(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	waiter(p, p.NbPutT(a, buf, 0, 0))
	h := p.NbPutT(a, buf, 0, 1)
	waiter(p, h)
}

// cleanFieldEscape stores the handle in a struct (the double-buffer
// window pattern); the struct owner drains it.
type window struct {
	hs [2]*ga.Handle
}

func cleanFieldEscape(p *ga.Proc, a *ga.TiledArray, buf []float64, w *window) {
	h := p.NbPutT(a, buf, 0, 0)
	w.hs[0] = h
}

// cleanAliasEscape rotates buffers prefetch2-style: next is aliased
// into cur, whose wait covers both.
func cleanAliasEscape(p *ga.Proc, a *ga.TiledArray, buf []float64, n int) {
	cur := p.NbGetT(a, buf, 0, 0)
	for t := 1; t <= n; t++ {
		next := p.NbGetT(a, buf, 0, t)
		cur.Wait(p)
		cur = next
	}
	cur.Wait(p)
}

// cleanBarrierBeforeIssue: a barrier before the issue is irrelevant.
func cleanBarrierBeforeIssue(p *ga.Proc, a *ga.TiledArray, buf []float64) {
	p.Barrier()
	h := p.NbGetT(a, buf, 0, 0)
	h.Wait(p)
}

// barrierBeforeEscapeIsStillCleanish: ownership moves to the slice
// before the barrier, so the storing code is responsible.
func cleanEscapeBeforeBarrier(p *ga.Proc, a *ga.TiledArray, buf []float64) []*ga.Handle {
	var hs []*ga.Handle
	h := p.NbPutT(a, buf, 0, 0)
	hs = append(hs, h)
	p.Barrier()
	return hs
}
