package nbdiscipline_test

import (
	"strings"
	"testing"

	"fourindex/internal/analysis"
	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/nbdiscipline"
)

func TestNbDiscipline(t *testing.T) {
	analysistest.Run(t, nbdiscipline.Analyzer, "./testdata/src/nb")
}

func TestNbFlow(t *testing.T) {
	analysistest.Run(t, nbdiscipline.Analyzer, "./testdata/src/nbflow")
}

// TestLegacyMissesFlowCases proves the flow-sensitive rewrite is a
// strict improvement: the lexical LegacyAnalyzer reports neither the
// early-return leak nor the use-before-wait in the nbflow fixture,
// because in source order every handle has a Wait somewhere below it.
func TestLegacyMissesFlowCases(t *testing.T) {
	legacy := diagsFor(t, nbdiscipline.LegacyAnalyzer, "./testdata/src/nbflow")
	for _, d := range legacy {
		if strings.Contains(d.Message, "does not reach Wait") ||
			strings.Contains(d.Message, "before the handle's Wait") {
			t.Errorf("legacy analyzer unexpectedly caught a flow-only case: %s", d)
		}
	}

	flow := diagsFor(t, nbdiscipline.Analyzer, "./testdata/src/nbflow")
	leaks, bufReads := 0, 0
	for _, d := range flow {
		if strings.Contains(d.Message, "does not reach Wait") {
			leaks++
		}
		if strings.Contains(d.Message, "before the handle's Wait") {
			bufReads++
		}
	}
	if leaks < 2 || bufReads < 1 {
		t.Errorf("flow analyzer found %d path leaks and %d in-flight buffer reads; want >=2 and >=1", leaks, bufReads)
	}
}

// TestSuppression checks the //lint:ignore contract on the nbsuppress
// fixture: a justified directive suppresses, an unjustified one fails
// loudly, and a directive for another analyzer does not apply.
func TestSuppression(t *testing.T) {
	diags := diagsFor(t, nbdiscipline.Analyzer, "./testdata/src/nbsuppress")

	// The justified call must produce nothing, so only two nbdiscipline
	// discards may survive (unjustified + wrong-analyzer).
	var unjustifiedDir int
	discards, ignores := 0, 0
	for _, d := range diags {
		switch d.Analyzer {
		case "nbdiscipline":
			discards++
		case analysis.SuppressionAnalyzer:
			ignores++
			unjustifiedDir = d.Pos.Line
		}
	}
	if discards != 2 {
		t.Errorf("got %d nbdiscipline findings, want 2 (unjustified + wrong-analyzer; justified suppressed): %v", discards, diags)
	}
	if ignores != 1 {
		t.Errorf("got %d lintignore findings, want 1 for the unjustified directive: %v", ignores, diags)
	}
	// The unjustified directive's finding must sit directly above a
	// surviving discard: suppression failed loudly, not silently.
	foundPair := false
	for _, d := range diags {
		if d.Analyzer == "nbdiscipline" && d.Pos.Line == unjustifiedDir+1 {
			foundPair = true
		}
	}
	if !foundPair {
		t.Errorf("unjustified directive at line %d did not leave the next-line finding in place: %v", unjustifiedDir, diags)
	}
}

// diagsFor loads one fixture package and runs a single analyzer.
func diagsFor(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	pkgs, err := analysis.Load("", dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	var out []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.RunPackage([]*analysis.Analyzer{a}, pkg)
		if err != nil {
			t.Fatalf("running on %s: %v", pkg.ImportPath, err)
		}
		out = append(out, ds...)
	}
	return out
}
