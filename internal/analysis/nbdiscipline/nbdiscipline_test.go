package nbdiscipline_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/nbdiscipline"
)

func TestNbDiscipline(t *testing.T) {
	analysistest.Run(t, nbdiscipline.Analyzer, "./testdata/src/nb")
}
