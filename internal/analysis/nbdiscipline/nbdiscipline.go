// Package nbdiscipline enforces the completion discipline of the ga
// runtime's nonblocking verbs. A *ga.Handle from NbGetT/NbPutT/NbAccT
// carries deferred work and a staging-memory charge that only Wait (or
// WaitAll) releases; a handle that never reaches a wait leaks staging
// memory, and one that crosses a barrier lets deferred work move past a
// synchronisation point — both are runtime panics, but only on paths a
// test happens to execute.
//
// The analyzer is flow-sensitive: each function body is lowered to a
// control-flow graph (internal/analysis/cfg) and each check is a path
// query from the handle's issue site. Checks:
//
//  1. A call producing a *ga.Handle must not discard its result: an
//     unwaitable handle can never be completed.
//  2. A handle bound to a variable must reach Handle.Wait, Proc.WaitAll,
//     or an ownership escape (returned, stored, aliased, sent, passed to
//     another function, or captured by a closure) on EVERY path out of
//     the function — an early return or error branch that skips the wait
//     is reported with the line the leaking path exits on.
//  3. No Proc.Barrier may be reachable between a handle's issue and its
//     first wait on any path: region exit is itself a barrier, so a
//     handle must complete before any barrier the process crosses.
//  4. The destination buffer of a direct NbGetT must not be read on any
//     path before the handle's Wait: until then its contents are
//     undefined in-flight data. (Only whole-buffer arguments are
//     tracked; sub-slices of a shared staging block, the double-buffer
//     idiom, cannot be proven to overlap and are left to the runtime's
//     own checks.)
//
// A deferred Wait counts as a wait for every path that passes the defer
// statement. The purely lexical predecessor of this check is kept as
// LegacyAnalyzer for regression comparison.
package nbdiscipline

import (
	"go/ast"
	"go/types"

	"fourindex/internal/analysis"
	"fourindex/internal/analysis/cfg"
)

// Analyzer is the flow-sensitive nbdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nbdiscipline",
	Doc:  "nonblocking *ga.Handle values must reach Wait/WaitAll on every path, before any barrier, and their get-buffers must not be read in flight",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, scope := range analysis.FuncScopes(file) {
			checkScope(pass, scope)
		}
	}
	return nil
}

// issueSite is one collected handle-producing call bound to a variable.
type issueSite struct {
	pos  cfg.Pos
	call *ast.CallExpr
	obj  types.Object
	// buf is the destination buffer of a direct NbGetT when it is a
	// plain identifier, nil otherwise.
	buf types.Object
}

// checkScope runs the flow-sensitive checks over one function body.
func checkScope(pass *analysis.Pass, scope analysis.FuncScope) {
	info := pass.TypesInfo
	g := cfg.New(scope.Body)

	var issues []issueSite
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			call, obj, discarded := bindingForm(info, n)
			if call == nil {
				continue
			}
			if discarded {
				pass.Reportf(call.Pos(), "nonblocking handle from %s is discarded; it can never reach Wait", callName(info, call))
				continue
			}
			is := issueSite{pos: cfg.Pos{Block: blk, Index: i}, call: call, obj: obj}
			if analysis.IsMethodCall(info, call, "ga", "Proc", "NbGetT") && len(call.Args) >= 2 {
				if id, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
					is.buf = info.Uses[id]
				}
			}
			issues = append(issues, is)
		}
	}

	for _, is := range issues {
		checkIssue(pass, g, is)
	}
}

// bindingForm matches the three statement shapes that bind or discard a
// handle-producing call: h := f(...) / h = f(...), _ = f(...) or a bare
// f(...), and var h = f(...). Any other context (return f(...), g(f(...)),
// append(hs, f(...))) escapes the handle at the issue itself and needs
// no tracking.
func bindingForm(info *types.Info, n ast.Node) (call *ast.CallExpr, obj types.Object, discarded bool) {
	switch stmt := n.(type) {
	case *ast.AssignStmt:
		if len(stmt.Rhs) != 1 {
			return nil, nil, false
		}
		c, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok || !returnsHandle(info, c) {
			return nil, nil, false
		}
		if o := lhsObject(info, stmt.Lhs[0]); o != nil {
			return c, o, false
		}
		if id, ok := ast.Unparen(stmt.Lhs[0]).(*ast.Ident); ok && id.Name == "_" {
			return c, nil, true
		}
	case *ast.ExprStmt:
		if c, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok && returnsHandle(info, c) {
			return c, nil, true
		}
	case *ast.DeclStmt:
		gd, ok := stmt.Decl.(*ast.GenDecl)
		if !ok {
			return nil, nil, false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 1 {
				continue
			}
			c, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
			if !ok || !returnsHandle(info, c) {
				continue
			}
			if o := info.Defs[vs.Names[0]]; o != nil && vs.Names[0].Name != "_" {
				return c, o, false
			}
			return c, nil, true
		}
	}
	return nil, nil, false
}

// checkIssue runs the path queries for one bound handle.
func checkIssue(pass *analysis.Pass, g *cfg.Graph, is issueSite) {
	info := pass.TypesInfo
	obj := is.obj

	waits := func(n ast.Node) bool { return nodeWaits(info, n, obj) }
	escapes := func(n ast.Node) bool { return nodeEscapes(info, n, obj, is.call) }
	settled := func(n ast.Node) bool { return waits(n) || escapes(n) }

	// Check 2: every path from the issue must settle the handle.
	anyWait, anyEscape := false, false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if waits(n) {
				anyWait = true
			}
			if escapes(n) {
				anyEscape = true
			}
		}
	}
	if !anyWait && !anyEscape {
		pass.Reportf(is.call.Pos(), "nonblocking handle %q never reaches Wait or WaitAll in this function", obj.Name())
		return
	}
	isReturn := func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok }
	leak := g.Search(is.pos, isReturn, settled)
	switch {
	case leak.Found != nil:
		pass.Reportf(is.call.Pos(), "nonblocking handle %q does not reach Wait or WaitAll on the path returning at line %d",
			obj.Name(), pass.Fset.Position(leak.Found.Pos()).Line)
		return
	case leak.ReachedExit:
		pass.Reportf(is.call.Pos(), "nonblocking handle %q does not reach Wait or WaitAll on a path falling off the end of the function", obj.Name())
		return
	}

	// Check 3: no barrier reachable before the first wait/escape.
	isBarrier := func(n ast.Node) bool {
		found := false
		cfg.ScanOwn(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && analysis.IsMethodCall(info, c, "ga", "Proc", "Barrier") {
				found = true
			}
			return true
		})
		return found
	}
	if res := g.Search(is.pos, isBarrier, settled); res.Found != nil {
		pass.Reportf(is.call.Pos(), "nonblocking handle %q crosses a barrier on line %d before its Wait; deferred work must not pass a synchronisation point",
			obj.Name(), pass.Fset.Position(res.Found.Pos()).Line)
		return
	}

	// Check 4: the get-buffer must not be read before the wait.
	if is.buf == nil {
		return
	}
	usesBuf := func(n ast.Node) bool {
		// A mention inside another handle-producing call is a re-issue
		// into the buffer, not a read of in-flight data.
		var reissues []*ast.CallExpr
		cfg.ScanOwn(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && returnsHandle(info, c) {
				reissues = append(reissues, c)
			}
			return true
		})
		found := false
		cfg.ScanOwn(n, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok || info.Uses[id] != is.buf {
				return true
			}
			for _, c := range reissues {
				if id.Pos() >= c.Pos() && id.End() <= c.End() {
					return true
				}
			}
			found = true
			return true
		})
		return found
	}
	if res := g.Search(is.pos, usesBuf, settled); res.Found != nil {
		pass.Reportf(is.call.Pos(), "buffer %q filled by %s is read on line %d before the handle's Wait; its contents are undefined until the transfer completes",
			is.buf.Name(), callName(info, is.call), pass.Fset.Position(res.Found.Pos()).Line)
	}
}

// nodeWaits reports whether executing n completes the handle: a
// Handle.Wait on obj, a Proc.WaitAll mentioning obj (including a
// variadic spread), or a defer of either (which covers every later
// exit).
func nodeWaits(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	cfg.ScanOwn(n, func(m ast.Node) bool {
		c, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsMethodCall(info, c, "ga", "Handle", "Wait") {
			if sel, isSel := ast.Unparen(c.Fun).(*ast.SelectorExpr); isSel {
				if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent && info.Uses[id] == obj {
					found = true
				}
			}
			return true
		}
		if analysis.IsMethodCall(info, c, "ga", "Proc", "WaitAll") {
			for _, arg := range c.Args {
				if usesObject(info, arg, obj) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// nodeEscapes reports whether executing n moves the handle's ownership
// out of this function's straight-line view: returning it, assigning it
// to another variable/field/element, placing it in a composite literal,
// sending it, passing it to a call other than Wait/WaitAll, or
// capturing it in a function literal.
func nodeEscapes(info *types.Info, n ast.Node, obj types.Object, issue *ast.CallExpr) bool {
	found := false
	cfg.ScanOwn(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if usesObject(info, res, obj) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || info.Uses[id] != obj {
					continue
				}
				// A blank assignment discards rather than transfers.
				if len(s.Lhs) == len(s.Rhs) {
					if lid, isIdent := ast.Unparen(s.Lhs[i]).(*ast.Ident); isIdent && lid.Name == "_" {
						continue
					}
				}
				found = true
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				if usesObject(info, elt, obj) {
					found = true
				}
			}
		case *ast.SendStmt:
			if usesObject(info, s.Value, obj) {
				found = true
			}
		case *ast.CallExpr:
			if s == issue ||
				analysis.IsMethodCall(info, s, "ga", "Handle", "Wait") ||
				analysis.IsMethodCall(info, s, "ga", "Proc", "WaitAll") {
				return true
			}
			for _, arg := range s.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
			}
		}
		return true
	})
	if found {
		return true
	}
	// ScanOwn skips nested literals; a closure capturing the handle is
	// an escape (the closure owns the wait).
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && m != n {
			if usesObject(info, lit.Body, obj) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}
