package nbdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"fourindex/internal/analysis"
)

// LegacyAnalyzer is the original, purely lexical form of the check: a
// wait covers an issue when it appears later in source order. It is
// retained (unregistered) so the regression tests can prove which
// findings only the flow-sensitive Analyzer catches — early-return
// leaks and use-before-wait are invisible to source order.
var LegacyAnalyzer = &analysis.Analyzer{
	Name: "nbdiscipline",
	Doc:  "lexical predecessor of the flow-sensitive nbdiscipline check",
	Run:  legacyRun,
}

func legacyRun(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, scope := range analysis.FuncScopes(file) {
			legacyCheckHandles(pass, scope)
		}
	}
	return nil
}

// legacyCheckHandles enforces the lexical checks for one function scope.
func legacyCheckHandles(pass *analysis.Pass, scope analysis.FuncScope) {
	type issueSite struct {
		call *ast.CallExpr
		obj  types.Object
	}
	var issues []issueSite

	scope.InspectOwn(func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 {
				if call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr); ok && returnsHandle(pass.TypesInfo, call) {
					if obj := lhsObject(pass.TypesInfo, stmt.Lhs[0]); obj != nil {
						issues = append(issues, issueSite{call: call, obj: obj})
					} else if id, isIdent := ast.Unparen(stmt.Lhs[0]).(*ast.Ident); isIdent && id.Name == "_" {
						pass.Reportf(call.Pos(), "nonblocking handle from %s is discarded; it can never reach Wait", callName(pass.TypesInfo, call))
					}
					return true
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok && returnsHandle(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(), "nonblocking handle from %s is discarded; it can never reach Wait", callName(pass.TypesInfo, call))
				return true
			}
		case *ast.ValueSpec:
			if len(stmt.Values) == 1 {
				if call, ok := ast.Unparen(stmt.Values[0]).(*ast.CallExpr); ok && returnsHandle(pass.TypesInfo, call) {
					if obj := pass.TypesInfo.Defs[stmt.Names[0]]; obj != nil && stmt.Names[0].Name != "_" {
						issues = append(issues, issueSite{call: call, obj: obj})
					} else {
						pass.Reportf(call.Pos(), "nonblocking handle from %s is discarded; it can never reach Wait", callName(pass.TypesInfo, call))
					}
					return true
				}
			}
		}
		return true
	})

	for _, is := range issues {
		legacyCheckIssueWaited(pass, scope, is.call, is.obj)
	}
}

// legacyCheckIssueWaited verifies one bound handle lexically: it must
// reach a wait or escape somewhere later in the source, and no barrier
// may sit between issue and the first wait.
func legacyCheckIssueWaited(pass *analysis.Pass, scope analysis.FuncScope, call *ast.CallExpr, obj types.Object) {
	issuePos := call.Pos()
	waits := waitPositions(pass.TypesInfo, scope, obj, issuePos)
	escape := escapePos(pass.TypesInfo, scope, obj, call)

	if len(waits) == 0 {
		if escape == token.NoPos {
			pass.Reportf(issuePos, "nonblocking handle %q never reaches Wait or WaitAll in this function", obj.Name())
		}
		return
	}
	first := waits[0]
	for _, w := range waits {
		if w < first {
			first = w
		}
	}
	if escape != token.NoPos && escape < first {
		// Ownership moved before the first wait; the receiver's
		// discipline applies from there.
		first = escape
	}
	for _, b := range barrierPositions(pass.TypesInfo, scope) {
		if b > issuePos && b < first {
			pass.Reportf(issuePos, "nonblocking handle %q crosses a barrier on line %d before its Wait; deferred work must not pass a synchronisation point",
				obj.Name(), pass.Fset.Position(b).Line)
			return
		}
	}
}

// returnsHandle reports whether call produces a *ga.Handle as its first
// result — the nonblocking verbs themselves or any wrapper around them.
func returnsHandle(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, isTuple := t.(*types.Tuple); isTuple {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	ptr, isPtr := t.(*types.Pointer)
	return isPtr && analysis.NamedTypeIs(ptr.Elem(), "ga", "Handle")
}

// waitPositions lists positions after pos where obj reaches
// Handle.Wait or appears in a Proc.WaitAll argument list (including a
// variadic hs... spread).
func waitPositions(info *types.Info, scope analysis.FuncScope, obj types.Object, pos token.Pos) []token.Pos {
	var out []token.Pos
	ast.Inspect(scope.Body, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < pos {
			return true
		}
		if analysis.IsMethodCall(info, c, "ga", "Handle", "Wait") {
			if sel, isSel := ast.Unparen(c.Fun).(*ast.SelectorExpr); isSel {
				if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent && info.Uses[id] == obj {
					out = append(out, c.Pos())
				}
			}
			return true
		}
		if analysis.IsMethodCall(info, c, "ga", "Proc", "WaitAll") {
			for _, arg := range c.Args {
				if usesObject(info, arg, obj) {
					out = append(out, c.Pos())
					break
				}
			}
		}
		return true
	})
	return out
}

// barrierPositions lists the scope's own Proc.Barrier calls.
func barrierPositions(info *types.Info, scope analysis.FuncScope) []token.Pos {
	var out []token.Pos
	scope.InspectOwn(func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && analysis.IsMethodCall(info, c, "ga", "Proc", "Barrier") {
			out = append(out, c.Pos())
		}
		return true
	})
	return out
}

// escapePos returns the earliest position where the handle's ownership
// leaves this function — returned, assigned to another variable or
// field, placed in a composite literal, sent on a channel, or passed as
// an argument to a call other than Wait/WaitAll — or NoPos if it never
// escapes.
func escapePos(info *types.Info, scope analysis.FuncScope, obj types.Object, issue *ast.CallExpr) token.Pos {
	earliest := token.NoPos
	record := func(p token.Pos) {
		if earliest == token.NoPos || p < earliest {
			earliest = p
		}
	}
	ast.Inspect(scope.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if usesObject(info, res, obj) {
					record(s.Pos())
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || info.Uses[id] != obj {
					continue
				}
				// A blank assignment discards the handle rather than
				// transferring ownership.
				if len(s.Lhs) == len(s.Rhs) {
					if lid, isIdent := ast.Unparen(s.Lhs[i]).(*ast.Ident); isIdent && lid.Name == "_" {
						continue
					}
				}
				record(s.Pos())
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				if usesObject(info, elt, obj) {
					record(s.Pos())
				}
			}
		case *ast.SendStmt:
			if usesObject(info, s.Value, obj) {
				record(s.Pos())
			}
		case *ast.CallExpr:
			if s == issue ||
				analysis.IsMethodCall(info, s, "ga", "Handle", "Wait") ||
				analysis.IsMethodCall(info, s, "ga", "Proc", "WaitAll") {
				return true
			}
			for _, arg := range s.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
					record(s.Pos())
				}
			}
		}
		return true
	})
	return earliest
}

// usesObject reports whether expr mentions obj.
func usesObject(info *types.Info, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// lhsObject returns the variable a define/assign binds, or nil for
// blank or non-ident targets.
func lhsObject(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// callName renders the called expression for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return "call"
}
