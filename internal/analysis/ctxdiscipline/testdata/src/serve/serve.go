// Package serve is a ctxdiscipline fixture: its import path contains
// "serve", so both rules apply — context parameters come first, and
// polled ctx.Err() results are never discarded.
package serve

import "context"

// submitLate buries the context behind the payload.
func submitLate(name string, ctx context.Context) error { // want `context.Context is parameter 2 of submitLate`
	return ctx.Err()
}

// submitGrouped hides the context in a grouped trailing declaration.
func submitGrouped(a, b int, ctx context.Context) error { // want `context.Context is parameter 3 of submitGrouped`
	_ = a
	_ = b
	return ctx.Err()
}

// submitFirst is the required shape.
func submitFirst(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// methodFirst is fine: the receiver does not count as a parameter.
type server struct{}

// run takes its context first, as required.
func (s *server) run(ctx context.Context, job string) error {
	_ = job
	return ctx.Err()
}

// lateLiteral pushes the context to the back of a function literal.
var lateLiteral = func(job string, ctx context.Context) { // want `context.Context is parameter 2 of function literal`
	_ = job
}

// dropErrStmt polls cancellation and ignores the answer.
func dropErrStmt(ctx context.Context) {
	ctx.Err() // want `ctx\.Err\(\) result is discarded`
}

// dropErrBlank blanks the polled signal.
func dropErrBlank(ctx context.Context) {
	_ = ctx.Err() // want `ctx\.Err\(\) result is assigned to the blank identifier`
}

// dropErrGo loses the signal in a goroutine.
func dropErrGo(ctx context.Context) {
	go ctx.Err() // want `ctx\.Err\(\) result is lost in a go statement`
}

// dropErrDefer loses the signal in a defer.
func dropErrDefer(ctx context.Context) {
	defer ctx.Err() // want `ctx\.Err\(\) result is lost in a defer statement`
}

// handledErr returns the polled signal: clean.
func handledErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// doneChannel consumes cancellation through Done: clean, Err is only
// read once the channel fires.
func doneChannel(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
