// Package ctxdiscipline enforces context hygiene in the serving layer.
// The job server's cancellation story — deadlines, DELETE, graceful
// drain — works only if contexts thread through every call and
// cancellation signals are acted on, so in packages whose import path
// contains "serve" two rules hold:
//
//  1. A function taking a context.Context takes it as its first
//     parameter (after the receiver). Trailing contexts are how a call
//     chain quietly forks into context-free paths that outlive a drain.
//
//  2. The result of ctx.Err() is never discarded — not dropped as a
//     bare statement, not assigned to the blank identifier, not lost in
//     a go or defer statement. Polling cancellation and ignoring the
//     answer turns a checkpoint boundary into dead code.
//
// Elsewhere in the repository the rules do not apply: schedules receive
// their context through Options and the trace/metrics layers are
// context-free by design.
package ctxdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"fourindex/internal/analysis"
)

// Analyzer is the ctxdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc:  "in serve packages, context.Context must be the first parameter and ctx.Err() results must be handled",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "serve") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkParamOrder(pass, node.Name.Name, node.Type)
			case *ast.FuncLit:
				checkParamOrder(pass, "function literal", node.Type)
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(node.X).(*ast.CallExpr); ok && isCtxErrCall(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(), "ctx.Err() result is discarded; a polled cancellation signal must be returned or acted on")
				}
			case *ast.GoStmt:
				if isCtxErrCall(pass.TypesInfo, node.Call) {
					pass.Reportf(node.Call.Pos(), "ctx.Err() result is lost in a go statement")
				}
			case *ast.DeferStmt:
				if isCtxErrCall(pass.TypesInfo, node.Call) {
					pass.Reportf(node.Call.Pos(), "ctx.Err() result is lost in a defer statement")
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkParamOrder reports a context.Context parameter that is not the
// function's first parameter.
func checkParamOrder(pass *analysis.Pass, name string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	// Walk declared parameters in order, tracking the flat index across
	// grouped declarations like (a, b int).
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context is parameter %d of %s; it must come first so cancellation threads through the whole call chain", idx+1, name)
			return
		}
		idx += n
	}
}

// checkBlankAssign reports `_ = ctx.Err()`.
func checkBlankAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	for i, rhs := range stmt.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isCtxErrCall(pass.TypesInfo, call) {
			continue
		}
		// With one call on the right, the matching Lhs position is i for
		// parallel assignment and 0 for a single multi-value spread.
		lhsIdx := i
		if len(stmt.Rhs) == 1 {
			lhsIdx = 0
		}
		if lhsIdx >= len(stmt.Lhs) {
			continue
		}
		if id, isIdent := ast.Unparen(stmt.Lhs[lhsIdx]).(*ast.Ident); isIdent && id.Name == "_" {
			pass.Reportf(stmt.Lhs[lhsIdx].Pos(), "ctx.Err() result is assigned to the blank identifier; a polled cancellation signal must be returned or acted on")
		}
	}
}

// isCtxErrCall reports whether call is context.Context.Err.
func isCtxErrCall(info *types.Info, call *ast.CallExpr) bool {
	return analysis.IsMethodCall(info, call, "context", "Context", "Err")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && analysis.NamedTypeIs(t, "context", "Context")
}
