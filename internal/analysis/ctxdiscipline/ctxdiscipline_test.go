package ctxdiscipline_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/ctxdiscipline"
)

func TestCtxDiscipline(t *testing.T) {
	analysistest.Run(t, ctxdiscipline.Analyzer, "./testdata/src/serve")
}
