// Package docstring enforces the documentation contract of the module:
// every package under internal/ (and the root fourindex package) must
// carry a package comment, and every exported package-level identifier
// in those packages must carry a doc comment.
//
// The repository reproduces a paper, so the documentation is not an
// optional nicety: each package comment states which section, listing,
// or figure the code models, and the exported-identifier comments are
// where formulas (packed sizes, lower bounds, cost-model parameters)
// are tied back to their source. An undocumented export breaks that
// chain of provenance.
//
// Scope and exemptions:
//
//   - Only packages under an internal/ directory and the module root
//     are checked; commands (package main) document themselves through
//     their usage text and are skipped.
//   - A doc comment on a grouped const/var/type declaration covers
//     every spec in the group, as does a per-spec doc comment. Trailing
//     line comments do not count (go/doc ignores them). An undocumented
//     group is reported once, at its first exported name.
//   - Methods are checked only when the receiver type is itself
//     exported: an exported method on an unexported type is not
//     reachable from outside the package.
//   - Test files and external test packages are skipped: TestXxx
//     functions are exported by convention, not API surface. The
//     standalone runner never sees them (go list GoFiles), but the
//     `go vet -vettool` path analyzes test files too.
package docstring

import (
	"go/ast"
	"go/token"
	"strings"

	"fourindex/internal/analysis"
)

// Analyzer is the docstring analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "docstring",
	Doc:  "packages under internal/ and the root must have package comments and documented exports",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" || strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil
	}
	path := pass.Pkg.Path()
	if !strings.Contains(path, "/internal/") && strings.Contains(path, "/") {
		return nil
	}
	var files []*ast.File
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil
	}
	if !hasPackageDoc(files) {
		pass.Reportf(files[0].Name.Pos(),
			"package %s has no package comment; say what it models and where it sits in the paper's pipeline", pass.Pkg.Name())
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGenDecl(pass, d)
			}
		}
	}
	return nil
}

// hasPackageDoc reports whether any file of the package carries a
// package comment.
func hasPackageDoc(files []*ast.File) bool {
	for _, f := range files {
		if f.Doc != nil {
			return true
		}
	}
	return false
}

// checkFunc flags exported functions, and exported methods on exported
// receivers, that lack a doc comment.
func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if d.Doc != nil || !d.Name.IsExported() {
		return
	}
	kind := "function"
	if d.Recv != nil {
		if !exportedReceiver(d.Recv) {
			return
		}
		kind = "method"
	}
	pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
}

// exportedReceiver reports whether the method receiver names an
// exported type, unwrapping pointers, parens, and generic instantiation.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	expr := recv.List[0].Type
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.IsExported()
		default:
			return false
		}
	}
}

// checkGenDecl flags undocumented exported types, consts, and vars. A
// doc comment on the declaration group covers all its specs; an
// undocumented group is reported once.
func checkGenDecl(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Doc != nil || d.Tok == token.IMPORT {
		return
	}
	grouped := d.Lparen.IsValid()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() || s.Doc != nil {
				continue
			}
			pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			if grouped {
				return
			}
		case *ast.ValueSpec:
			if s.Doc != nil {
				continue
			}
			name := firstExported(s.Names)
			if name == nil {
				continue
			}
			what := "var"
			if d.Tok == token.CONST {
				what = "const"
			}
			if grouped {
				pass.Reportf(name.Pos(), "exported %s %s has no doc comment (a comment on the group also counts)", what, name.Name)
				return
			}
			pass.Reportf(name.Pos(), "exported %s %s has no doc comment", what, name.Name)
		}
	}
}

// firstExported returns the first exported identifier, or nil.
func firstExported(names []*ast.Ident) *ast.Ident {
	for _, id := range names {
		if id.IsExported() {
			return id
		}
	}
	return nil
}
