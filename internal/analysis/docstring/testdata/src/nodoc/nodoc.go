package nodoc // want `package nodoc has no package comment`

// Value is documented, so the only finding is the missing package
// comment above.
const Value = 1
