// Package docs is a docstring fixture: a package comment is present, so
// only the undocumented exported identifiers below are flagged.
package docs

import "time"

// Documented is a properly commented type.
type Documented struct{}

type Naked struct{} // want `exported type Naked has no doc comment`

type hidden struct{}

// Size has a doc comment.
const Size = 8

const Bare = 1 // want `exported const Bare has no doc comment`

const internalOnly = 2

// Grouped constants covered by this group comment.
const (
	GroupedA = iota
	GroupedB
)

const (
	LooseA = iota // want `exported const LooseA has no doc comment \(a comment on the group also counts\)`
	LooseB        // only the first name of an undocumented group is reported
)

const (
	// PerSpecA carries its own comment.
	PerSpecA = iota
	perSpecHidden
	PerSpecC // want `exported const PerSpecC has no doc comment \(a comment on the group also counts\)`
)

// Timeout is a documented var.
var Timeout = time.Second

var Limit = 4 // want `exported var Limit has no doc comment`

// Do is a documented function.
func Do() {}

func Undone() {} // want `exported function Undone has no doc comment`

func helper() {}

// Reset is a documented method.
func (*Documented) Reset() {}

func (d *Documented) Flush() {} // want `exported method Flush has no doc comment`

// Exported methods on unexported receivers are out of reach and skipped.
func (hidden) Touch() {}

// generic receivers unwrap to their base identifier.
type Box[T any] struct{ v T }

func (b *Box[T]) Get() T { return b.v } // want `exported method Get has no doc comment`
