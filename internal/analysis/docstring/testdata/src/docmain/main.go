package main

// Commands are exempt: no package comment and an undocumented export,
// yet nothing is flagged.

func Undocumented() {}

func main() { Undocumented() }
