package docstring_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/docstring"
)

func TestExportedIdentifiers(t *testing.T) {
	analysistest.Run(t, docstring.Analyzer, "./testdata/src/docs")
}

func TestMissingPackageComment(t *testing.T) {
	analysistest.Run(t, docstring.Analyzer, "./testdata/src/nodoc")
}

func TestPackageMainExempt(t *testing.T) {
	analysistest.Run(t, docstring.Analyzer, "./testdata/src/docmain")
}
