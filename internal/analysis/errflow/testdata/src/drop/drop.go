// Package drop is an errflow fixture built against the real ga runtime:
// every way of losing an OOM error, next to the handled forms that must
// stay clean.
package drop

import (
	"fmt"

	"fourindex/internal/ga"
	"fourindex/internal/lb/chain"
	"fourindex/internal/tile"
)

// dropExprStmt discards both results of an error-returning collective.
func dropExprStmt(rt *ga.Runtime) {
	rt.Create("a", 4, 4, 2, 2, tile.RoundRobin) // want `error from ga\.Create is discarded`
}

// dropBlank keeps the handle but blanks the error.
func dropBlank(rt *ga.Runtime) *ga.Array {
	a, _ := rt.Create("a", 4, 4, 2, 2, tile.RoundRobin) // want `error from ga\.Create is assigned to the blank identifier`
	return a
}

// dropParallel ignores a poisoned region.
func dropParallel(rt *ga.Runtime) {
	rt.Parallel(func(p *ga.Proc) {}) // want `error from ga\.Parallel is discarded`
}

// dropGo loses the region error in a goroutine.
func dropGo(rt *ga.Runtime) {
	go rt.Parallel(func(p *ga.Proc) {}) // want `error from ga\.Parallel is lost in a go statement`
}

// dropAllocLocal blanks the local-OOM signal.
func dropAllocLocal(p *ga.Proc) ga.Buffer {
	b, _ := p.AllocLocal(8) // want `error from ga\.AllocLocal is assigned to the blank identifier`
	return b
}

// cleanHandled checks and propagates.
func cleanHandled(rt *ga.Runtime) error {
	a, err := rt.Create("a", 4, 4, 2, 2, tile.RoundRobin)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	if err := rt.Destroy(a); err != nil {
		return fmt.Errorf("destroy: %w", err)
	}
	return nil
}

// dropDestroy discards the typed double-destroy error.
func dropDestroy(rt *ga.Runtime, a *ga.Array) {
	rt.Destroy(a) // want `error from ga\.Destroy is discarded`
}

// cleanErrorOnly binds a single error result.
func cleanErrorOnly(rt *ga.Runtime) {
	err := rt.Parallel(func(p *ga.Proc) {})
	if err != nil {
		panic(err)
	}
}

// cleanNoError calls ga APIs without error results; nothing to check.
func cleanNoError(a *ga.Array) {
	a.Bytes()
}

// dropChainBuilder discards a chain builder's validation error.
func dropChainBuilder() {
	chain.FourIndex(24, 2) // want `error from chain\.FourIndex is discarded`
}

// dropChainBound blanks the bound engine's capacity error.
func dropChainBound(c *chain.Chain, cfg chain.Config) float64 {
	b, _ := c.ConfigBoundAt(cfg, 0) // want `error from chain\.ConfigBoundAt is assigned to the blank identifier`
	return b
}

// cleanChain propagates the engine's typed errors.
func cleanChain() (*chain.Chain, error) {
	c, err := chain.MP2(4, 12)
	if err != nil {
		return nil, fmt.Errorf("mp2: %w", err)
	}
	return c, nil
}
