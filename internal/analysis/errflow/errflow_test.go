package errflow_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/errflow"
)

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, errflow.Analyzer, "./testdata/src/drop")
}
