// Package errflow flags discarded errors from the runtime packages (ga,
// tensor, lb, chain). The evaluation reproduces the paper's "Failed"
// configurations by observing ErrGlobalOOM / ErrLocalOOM from exactly
// these APIs: a swallowed error does not just hide a bug, it silently
// converts a "Failed" data point into a bogus success. Errors must be
// bound to a variable (the compiler's unused-variable check then takes
// over) — dropping a call's results on the floor, assigning the error
// position to the blank identifier, or launching the call with go/defer
// all lose the signal.
package errflow

import (
	"go/ast"
	"go/types"

	"fourindex/internal/analysis"
)

// Analyzer is the errflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "errors from ga/tensor/lb/chain APIs (notably ErrGlobalOOM/ErrLocalOOM and the bound engine's typed errors) must not be discarded",
	Run:  run,
}

// watchedPackages names the packages whose errors carry the paper's
// failure semantics.
var watchedPackages = map[string]bool{
	"ga":     true,
	"tensor": true,
	"lb":     true,
	// The bound engine's typed errors (*ValidationError, *CapacityError,
	// *OverflowError) are fouridxd's 422 responses; a dropped one turns a
	// semantic rejection into a silently wrong bound.
	"chain": true,
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
					if name, watched := watchedErrorCall(pass.TypesInfo, call); watched {
						pass.Reportf(call.Pos(), "error from %s is discarded; ErrGlobalOOM/ErrLocalOOM signal the paper's \"Failed\" configurations and must be handled", name)
					}
				}
			case *ast.GoStmt:
				if name, watched := watchedErrorCall(pass.TypesInfo, stmt.Call); watched {
					pass.Reportf(stmt.Call.Pos(), "error from %s is lost in a go statement", name)
				}
			case *ast.DeferStmt:
				if name, watched := watchedErrorCall(pass.TypesInfo, stmt.Call); watched {
					pass.Reportf(stmt.Call.Pos(), "error from %s is lost in a defer statement", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags x, _ := watched() where the blank slot is the error.
func checkAssign(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, watched := watchedErrorCall(pass.TypesInfo, call)
	if !watched {
		return
	}
	idx := errorResultIndex(pass.TypesInfo, call)
	if idx < 0 || idx >= len(stmt.Lhs) {
		return
	}
	if id, isIdent := ast.Unparen(stmt.Lhs[idx]).(*ast.Ident); isIdent && id.Name == "_" {
		pass.Reportf(stmt.Lhs[idx].Pos(), "error from %s is assigned to the blank identifier; ErrGlobalOOM/ErrLocalOOM signal the paper's \"Failed\" configurations and must be handled", name)
	}
}

// watchedErrorCall reports whether call invokes a function from a
// watched runtime package whose results include an error, returning a
// printable name for diagnostics.
func watchedErrorCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !watchedPackages[fn.Pkg().Name()] {
		return "", false
	}
	if errorResultIndex(info, call) < 0 {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// errorResultIndex returns the index of the (last) error result of the
// call's signature, or -1.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if types.Implements(res.At(i).Type(), errorType) {
			return i
		}
	}
	return -1
}
