package freezediscipline_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/freezediscipline"
)

func TestFreezeDiscipline(t *testing.T) {
	analysistest.Run(t, freezediscipline.Analyzer, "./testdata/src/freeze")
}
