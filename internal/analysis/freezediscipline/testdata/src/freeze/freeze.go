// Package freeze is the freezediscipline fixture: writes reachable
// after a Freeze() are flagged on every path the CFG exposes, and a
// Parallel region reading a tensor another region wrote wants a Freeze
// at the boundary. The checkpoint-restore idiom, rebinding, rewrite
// pipelines, and opaque helpers stay clean.
package freeze

import (
	"fourindex/internal/ga"
	"fourindex/internal/tile"
)

// putAfterFreeze writes directly after the freeze: the runtime panic
// made static.
func putAfterFreeze(rt *ga.Runtime, a *ga.TiledArray, buf []float64) {
	a.Freeze()
	rt.Parallel(func(p *ga.Proc) {
		p.PutT(a, buf, 0, 0) // want `write to tensor "a" on line \d+ is reachable after its Freeze on line \d+`
	})
}

// restoreAfterFreeze restores tile data into a frozen tensor.
func restoreAfterFreeze(a *ga.TiledArray) {
	snap := a.SnapshotTiles()
	a.Freeze()
	a.RestoreTiles(snap) // want `write to tensor "a" on line \d+ is reachable after its Freeze on line \d+`
}

// freezeOnBranchThenWrite freezes on one branch only; the write after
// the join is reachable from it.
func freezeOnBranchThenWrite(rt *ga.Runtime, a *ga.TiledArray, buf []float64, done bool) {
	if done {
		a.Freeze()
	}
	rt.Parallel(func(p *ga.Proc) {
		p.AccT(a, 1.0, buf, 0, 0) // want `write to tensor "a" on line \d+ is reachable after its Freeze on line \d+`
	})
}

// lockFreeReadNoFreeze reads in a second region what the first region
// wrote, with no Freeze between them: the reads take tile locks they
// were promised not to need.
func lockFreeReadNoFreeze(rt *ga.Runtime, a *ga.TiledArray, buf []float64) {
	rt.Parallel(func(p *ga.Proc) {
		p.PutT(a, buf, 0, 0)
	})
	rt.Parallel(func(p *ga.Proc) { // want `Parallel region reads tensor "a" written by the region on line \d+ without an intervening Freeze`
		p.GetT(a, buf, 0, 0)
	})
}

// cleanFreezeBetweenRegions is the intended protocol: write, freeze,
// read lock-free.
func cleanFreezeBetweenRegions(rt *ga.Runtime, a *ga.TiledArray, buf []float64) {
	rt.Parallel(func(p *ga.Proc) {
		p.PutT(a, buf, 0, 0)
	})
	a.Freeze()
	rt.Parallel(func(p *ga.Proc) {
		p.GetT(a, buf, 0, 0)
	})
}

// cleanCheckpointRestore mirrors the driver's restart path: the fresh
// branch freezes after writing, the resume branch restores and then
// freezes. The branches are exclusive, so no write follows a freeze.
func cleanCheckpointRestore(rt *ga.Runtime, a *ga.TiledArray, buf []float64, resume bool, saved []float64) {
	if !resume {
		rt.Parallel(func(p *ga.Proc) {
			p.PutT(a, buf, 0, 0)
		})
		a.Freeze()
	} else {
		a.RestoreTiles(saved)
		a.Freeze()
	}
	rt.Parallel(func(p *ga.Proc) {
		p.GetT(a, buf, 0, 0)
	})
}

// cleanRebind freezes one tensor, then rebinds the variable to a fresh
// one: the write targets the new tensor.
func cleanRebind(rt *ga.Runtime, a *ga.TiledArray, buf []float64, grids []tile.Grid) {
	a.Freeze()
	a, _ = rt.CreateTiled("fresh", grids, nil, tile.Policy(0))
	rt.Parallel(func(p *ga.Proc) {
		p.PutT(a, buf, 0, 0)
	})
}

// cleanRewritePipeline keeps mutating the tensor across iterations: the
// reads are mid-pipeline, not lock-free-phase reads, and freezing would
// break the next sweep.
func cleanRewritePipeline(rt *ga.Runtime, a *ga.TiledArray, buf []float64, sweeps int) {
	for s := 0; s < sweeps; s++ {
		rt.Parallel(func(p *ga.Proc) {
			p.PutT(a, buf, 0, 0)
		})
		rt.Parallel(func(p *ga.Proc) {
			p.GetT(a, buf, 0, 0)
		})
	}
}

// cleanOpaqueHelper hands the tensor to a helper: the region is
// unclassified and never flagged.
func cleanOpaqueHelper(rt *ga.Runtime, a *ga.TiledArray) {
	rt.Parallel(func(p *ga.Proc) {
		fill(p, a)
	})
	rt.Parallel(func(p *ga.Proc) {
		drain(p, a)
	})
}

// fill stands in for an opaque write helper.
func fill(p *ga.Proc, a *ga.TiledArray) {}

// drain stands in for an opaque read helper.
func drain(p *ga.Proc, a *ga.TiledArray) {}
