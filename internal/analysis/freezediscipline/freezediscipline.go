// Package freezediscipline enforces the ga runtime's freeze protocol
// for tiled tensors. Freeze() is the write/read phase boundary: it is
// permanent, writes (PutT, AccT, NbPutT, NbAccT, RestoreTiles) to a
// frozen tensor panic at runtime, and in exchange reads skip tile
// locking. The analyzer makes both directions of the contract static,
// using path queries over the function's control-flow graph
// (internal/analysis/cfg):
//
//  1. No write to a tensor may be reachable after a Freeze() on it.
//     The runtime panic fires only on the path a run happens to take;
//     the path query covers the branches the tests never execute. A
//     rebinding of the variable (t, err = rt.CreateTiled(...)) starts a
//     new tensor and ends the frozen region.
//
//  2. A Parallel region that reads a tensor written by an earlier
//     Parallel region should be separated from it by a Freeze(): the
//     write-complete tensor is read lock-free only after the boundary.
//     Regions are classified by the direct verbs in their closure
//     (GetT/NbGetT/ReadTileInto read; PutT/AccT/NbPutT/NbAccT/
//     RestoreTiles write); a region that only hands the tensor to an
//     opaque helper stays unclassified and is never flagged. Pipelines
//     that keep rewriting the tensor (a write is reachable from the
//     reading region, or the reading region itself writes) are exempt —
//     freezing there would be wrong.
//
// Writes hidden behind helper functions are invisible to both checks;
// the runtime's own panics still cover those.
package freezediscipline

import (
	"go/ast"
	"go/types"
	"sort"

	"fourindex/internal/analysis"
	"fourindex/internal/analysis/cfg"
	"fourindex/internal/analysis/dataflow"
)

// Analyzer is the freezediscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "freezediscipline",
	Doc:  "no tensor writes may be reachable after its Freeze(), and cross-region lock-free reads should be dominated by one",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, scope := range analysis.FuncScopes(file) {
			checkScope(pass, scope)
		}
	}
	return nil
}

// tensorVerbs classifies the direct calls that touch a tensor.
const (
	opNone = iota
	opWrite
	opRead
	opFreeze
)

// tensorOp resolves one call expression to (tensor object, operation).
func tensorOp(info *types.Info, call *ast.CallExpr) (types.Object, int) {
	// TiledArray methods: receiver is the tensor.
	for _, m := range []struct {
		name string
		op   int
	}{{"Freeze", opFreeze}, {"RestoreTiles", opWrite}} {
		if analysis.IsMethodCall(info, call, "ga", "TiledArray", m.name) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if obj := dataflow.RootObject(info, sel.X); obj != nil {
					return obj, m.op
				}
			}
			return nil, opNone
		}
	}
	// Proc verbs: the tensor is the first argument.
	proc := []struct {
		name string
		op   int
	}{
		{"PutT", opWrite}, {"AccT", opWrite}, {"NbPutT", opWrite}, {"NbAccT", opWrite},
		{"GetT", opRead}, {"NbGetT", opRead},
	}
	for _, m := range proc {
		if analysis.IsMethodCall(info, call, "ga", "Proc", m.name) && len(call.Args) > 0 {
			if obj := dataflow.RootObject(info, call.Args[0]); obj != nil {
				return obj, m.op
			}
			return nil, opNone
		}
	}
	// Runtime sequential helper.
	if analysis.IsMethodCall(info, call, "ga", "Runtime", "ReadTileInto") && len(call.Args) > 0 {
		if obj := dataflow.RootObject(info, call.Args[0]); obj != nil {
			return obj, opRead
		}
	}
	return nil, opNone
}

// nodeOps collects the tensor operations a block node performs directly
// (not inside nested function literals).
func nodeOps(info *types.Info, n ast.Node) map[types.Object]int {
	var out map[types.Object]int
	cfg.ScanOwn(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if obj, op := tensorOp(info, call); op != opNone {
				if out == nil {
					out = make(map[types.Object]int)
				}
				out[obj] |= 1 << op
			}
		}
		return true
	})
	return out
}

// regionOps classifies a Parallel region's closure by the direct verbs
// anywhere inside it (including nested literals: the closure is one
// concurrent phase).
func regionOps(info *types.Info, lit *ast.FuncLit) map[types.Object]int {
	out := make(map[types.Object]int)
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if obj, op := tensorOp(info, call); op != opNone {
				out[obj] |= 1 << op
			}
		}
		return true
	})
	return out
}

// parallelLit returns the closure of a rt.Parallel(...) call found
// directly in node n, if any.
func parallelLit(info *types.Info, n ast.Node) *ast.FuncLit {
	var lit *ast.FuncLit
	cfg.ScanOwn(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok &&
			analysis.IsMethodCall(info, call, "ga", "Runtime", "Parallel") && len(call.Args) == 1 {
			if l, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				lit = l
			}
		}
		return true
	})
	return lit
}

// writeCall pins down the actual write call on obj inside node n — in
// the node's own code or inside its Parallel closure — so the
// diagnostic lands on the offending line rather than on the statement
// that encloses it. Falls back to n itself.
func writeCall(info *types.Info, n ast.Node, obj types.Object) ast.Node {
	var found ast.Node
	match := func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && found == nil {
			if o, op := tensorOp(info, call); o == obj && op == opWrite {
				found = call
			}
		}
		return true
	}
	cfg.ScanOwn(n, match)
	if found == nil {
		if lit := parallelLit(info, n); lit != nil {
			ast.Inspect(lit.Body, match)
		}
	}
	if found == nil {
		return n
	}
	return found
}

// checkScope runs both freeze checks over one function body.
func checkScope(pass *analysis.Pass, scope analysis.FuncScope) {
	info := pass.TypesInfo
	g := cfg.New(scope.Body)

	hasOp := func(ops map[types.Object]int, obj types.Object, op int) bool {
		return ops != nil && ops[obj]&(1<<op) != 0
	}
	rebinds := func(n ast.Node, obj types.Object) bool {
		for _, d := range dataflow.NodeDefs(info, n) {
			if d.Obj == obj {
				return true
			}
		}
		return false
	}

	// Pass over all nodes: record freeze sites and write regions.
	type site struct {
		pos  cfg.Pos
		node ast.Node
		obj  types.Object
	}
	var freezes, writeRegions []site
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			ops := nodeOps(info, n)
			for obj, mask := range ops {
				if mask&(1<<opFreeze) != 0 {
					freezes = append(freezes, site{pos: cfg.Pos{Block: blk, Index: i}, node: n, obj: obj})
				}
			}
			if lit := parallelLit(info, n); lit != nil {
				for obj, mask := range regionOps(info, lit) {
					if mask&(1<<opWrite) != 0 {
						writeRegions = append(writeRegions, site{pos: cfg.Pos{Block: blk, Index: i}, node: n, obj: obj})
					}
				}
			}
		}
	}
	// The op maps iterate in random order; sort the collected sites so
	// diagnostics come out in a reproducible order.
	sort.Slice(freezes, func(i, j int) bool {
		if freezes[i].node.Pos() != freezes[j].node.Pos() {
			return freezes[i].node.Pos() < freezes[j].node.Pos()
		}
		return freezes[i].obj.Pos() < freezes[j].obj.Pos()
	})
	sort.Slice(writeRegions, func(i, j int) bool {
		if writeRegions[i].node.Pos() != writeRegions[j].node.Pos() {
			return writeRegions[i].node.Pos() < writeRegions[j].node.Pos()
		}
		return writeRegions[i].obj.Pos() < writeRegions[j].obj.Pos()
	})

	// Check 1: no write reachable after a freeze of the same tensor.
	for _, fz := range freezes {
		obj := fz.obj
		writesObj := func(n ast.Node) bool {
			if hasOp(nodeOps(info, n), obj, opWrite) {
				return true
			}
			if lit := parallelLit(info, n); lit != nil {
				return hasOp(regionOps(info, lit), obj, opWrite)
			}
			return false
		}
		stop := func(n ast.Node) bool { return rebinds(n, obj) }
		if res := g.Search(fz.pos, writesObj, stop); res.Found != nil {
			at := writeCall(info, res.Found, obj)
			pass.Reportf(at.Pos(), "write to tensor %q on line %d is reachable after its Freeze on line %d; writes to frozen tensors panic",
				obj.Name(), pass.Fset.Position(at.Pos()).Line, pass.Fset.Position(fz.node.Pos()).Line)
		}
	}

	// Check 2: a reading region downstream of a write region wants an
	// intervening Freeze for its lock-free reads.
	for _, wr := range writeRegions {
		obj := wr.obj
		readRegion := func(n ast.Node) bool {
			lit := parallelLit(info, n)
			if lit == nil {
				return false
			}
			ops := regionOps(info, lit)
			// a region that also writes the tensor is a rewrite phase
			return hasOp(ops, obj, opRead) && !hasOp(ops, obj, opWrite)
		}
		stop := func(n ast.Node) bool {
			if rebinds(n, obj) || hasOp(nodeOps(info, n), obj, opFreeze) {
				return true
			}
			// another write region restarts the question there
			if lit := parallelLit(info, n); lit != nil && n != wr.node {
				if hasOp(regionOps(info, lit), obj, opWrite) {
					return true
				}
			}
			return false
		}
		res := g.Search(wr.pos, readRegion, stop)
		if res.Found == nil {
			continue
		}
		// Rewrite-pipeline exemption: a write on the tensor reachable
		// from the reading region means it is not write-complete yet.
		readPos, ok := g.PosOf(res.Found)
		if !ok {
			continue
		}
		laterWrite := func(n ast.Node) bool {
			if hasOp(nodeOps(info, n), obj, opWrite) {
				return true
			}
			if lit := parallelLit(info, n); lit != nil {
				return hasOp(regionOps(info, lit), obj, opWrite)
			}
			return false
		}
		if later := g.Search(readPos, laterWrite, func(n ast.Node) bool { return rebinds(n, obj) }); later.Found != nil {
			continue
		}
		pass.Reportf(res.Found.Pos(), "Parallel region reads tensor %q written by the region on line %d without an intervening Freeze; freeze write-complete tensors at the region boundary for lock-free reads",
			obj.Name(), pass.Fset.Position(wr.node.Pos()).Line)
	}
}
