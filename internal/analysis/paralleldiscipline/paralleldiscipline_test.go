package paralleldiscipline_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/paralleldiscipline"
)

func TestParallelDiscipline(t *testing.T) {
	analysistest.Run(t, paralleldiscipline.Analyzer, "./testdata/src/par")
}
