// Package paralleldiscipline is a static race checker for the closures
// the ga runtime executes concurrently. Every process of a Runtime runs
// the body passed to Parallel, so a variable captured from the enclosing
// scope is shared state: writing it without a guard races on every
// schedule, not just the ones a -race test happens to execute. The
// analyzer complements the race detector the way the data-movement
// bounds complement measurement — it covers the paths no run exercises.
//
// For each ga.Parallel region (and each goroutine launched with a
// closure) the analyzer computes the capture set (internal/analysis/
// dataflow), classifies every write to a captured variable, and accepts
// the three safe disciplines the schedules use:
//
//   - writes holding a mutex: a Lock (or RLock) lexically precedes the
//     write with no intervening Unlock, including the defer-Unlock idiom;
//   - per-process slice indexing: the index expression derives from the
//     *ga.Proc parameter (p.ID() arithmetic), so processes touch
//     disjoint elements;
//   - channel communication: sends are synchronisation, not shared
//     writes, and are never flagged.
//
// Everything else — direct assignment, field stores, map stores (which
// panic under concurrency even with disjoint keys), slice stores at a
// rank-independent index — is reported. Writes through method calls on
// captured receivers are invisible to this analyzer; the runtime's
// types guard themselves internally.
package paralleldiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"fourindex/internal/analysis"
	"fourindex/internal/analysis/dataflow"
)

// Analyzer is the paralleldiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "paralleldiscipline",
	Doc:  "variables captured by ga.Parallel or goroutine closures must not be written without a mutex, per-process indexing, or channels",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.CallExpr:
				if analysis.IsMethodCall(pass.TypesInfo, s, "ga", "Runtime", "Parallel") && len(s.Args) == 1 {
					if lit, ok := ast.Unparen(s.Args[0]).(*ast.FuncLit); ok {
						checkRegion(pass, lit, true)
					}
				}
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
					checkRegion(pass, lit, false)
				}
			}
			return true
		})
	}
	return nil
}

// checkRegion analyzes one concurrently-executed closure. parallel
// distinguishes ga.Parallel bodies (which have a *ga.Proc parameter and
// the per-process indexing discipline) from plain goroutines.
func checkRegion(pass *analysis.Pass, lit *ast.FuncLit, parallel bool) {
	info := pass.TypesInfo
	caps := dataflow.Captured(info, lit)
	if len(caps) == 0 {
		return
	}
	tracked := make(map[types.Object]bool, len(caps))
	for _, o := range caps {
		tracked[o] = true
	}
	writes := dataflow.Writes(info, lit, tracked)
	if len(writes) == 0 {
		return
	}

	guards := guardEvents(lit)
	derived := derivedObjects(info, lit, parallel)

	region := "the Parallel region"
	if !parallel {
		region = "a goroutine closure"
	}

	reported := make(map[types.Object]bool)
	for _, w := range writes {
		if reported[w.Obj] {
			continue
		}
		if guardedAt(guards, w.Node.Pos()) {
			continue
		}
		t := w.Obj.Type().Underlying()
		switch w.Kind {
		case dataflow.WriteIndex:
			if _, isMap := t.(*types.Map); isMap {
				reported[w.Obj] = true
				pass.Reportf(w.Node.Pos(), "captured map %q is written inside %s without a guard; concurrent map writes panic even with disjoint keys", w.Obj.Name(), region)
				continue
			}
			if !parallel {
				// Goroutine fan-outs index disjoint slice chunks by
				// convention; the race detector owns that proof.
				continue
			}
			if indexDerived(info, w.Index, derived) {
				continue
			}
			reported[w.Obj] = true
			pass.Reportf(w.Node.Pos(), "captured slice %q is written inside %s at an index not derived from the process rank; processes collide — derive the index from p.ID() or guard with a mutex", w.Obj.Name(), region)
		default:
			reported[w.Obj] = true
			pass.Reportf(w.Node.Pos(), "captured variable %q is written inside %s without a guard; every process runs this closure concurrently — use a mutex, a channel, or per-process state", w.Obj.Name(), region)
		}
	}
}

// guardEvent is one lexical mutex transition inside the closure body.
type guardEvent struct {
	pos   token.Pos
	delta int
}

// guardEvents collects Lock/RLock (+1) and non-deferred Unlock/RUnlock
// (-1) calls in the closure's own scope, in source order. A deferred
// Unlock keeps the guard held for the rest of the body, matching the
// lock-then-defer idiom.
func guardEvents(lit *ast.FuncLit) []guardEvent {
	var out []guardEvent
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return s == lit
		case *ast.DeferStmt:
			return false // a deferred Unlock does not end the guard
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					out = append(out, guardEvent{pos: s.Pos(), delta: +1})
				case "Unlock", "RUnlock":
					out = append(out, guardEvent{pos: s.Pos(), delta: -1})
				}
			}
		}
		return true
	})
	return out
}

// guardedAt reports whether a mutex is lexically held at pos.
func guardedAt(events []guardEvent, pos token.Pos) bool {
	depth := 0
	for _, e := range events {
		if e.pos < pos {
			depth += e.delta
		}
	}
	return depth > 0
}

// derivedObjects computes the set of variables whose values derive from
// the region's *ga.Proc parameter — the rank-dependent coordinates the
// per-process indexing discipline is built on. The fixpoint follows
// assignments: a variable becomes derived when any of its definition
// sources mentions a derived object.
func derivedObjects(info *types.Info, lit *ast.FuncLit, parallel bool) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	if !parallel || lit.Type.Params == nil || len(lit.Type.Params.List) == 0 {
		return derived
	}
	for _, name := range lit.Type.Params.List[0].Names {
		if obj := info.Defs[name]; obj != nil {
			derived[obj] = true
		}
	}

	// Collect the closure's own definition sites once.
	var defs []dataflow.Def
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok && l != lit {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.RangeStmt:
			defs = append(defs, dataflow.NodeDefs(info, n)...)
		}
		return true
	})

	for changed := true; changed; {
		changed = false
		for _, d := range defs {
			if derived[d.Obj] {
				continue
			}
			for _, src := range dataflow.DefSources(info, d) {
				if usesAny(info, src, derived) {
					derived[d.Obj] = true
					changed = true
					break
				}
			}
		}
	}
	return derived
}

// indexDerived reports whether the index expression mentions a
// rank-derived object.
func indexDerived(info *types.Info, index ast.Expr, derived map[types.Object]bool) bool {
	return index != nil && usesAny(info, index, derived)
}

// usesAny reports whether n mentions any object in set.
func usesAny(info *types.Info, n ast.Node, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && set[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
