// Package par is the paralleldiscipline fixture: closures run by
// ga.Parallel (and goroutines) writing captured state, with and without
// the three accepted disciplines (mutex, per-process indexing,
// channels).
package par

import (
	"sync"

	"fourindex/internal/ga"
)

// racyCounter increments a captured int from every process.
func racyCounter(rt *ga.Runtime) {
	total := 0
	_ = rt.Parallel(func(p *ga.Proc) {
		total++ // want `captured variable "total" is written inside the Parallel region without a guard`
	})
	_ = total
}

// racyAssign reassigns a captured error from every process.
func racyAssign(rt *ga.Runtime) error {
	var firstErr error
	_ = rt.Parallel(func(p *ga.Proc) {
		firstErr = nil // want `captured variable "firstErr" is written inside the Parallel region without a guard`
	})
	return firstErr
}

// racyMap writes a captured map; disjoint keys do not save a Go map.
func racyMap(rt *ga.Runtime) {
	seen := map[int]bool{}
	_ = rt.Parallel(func(p *ga.Proc) {
		seen[p.ID()] = true // want `captured map "seen" is written inside the Parallel region without a guard`
	})
	_ = seen
}

// racySharedIndex writes every process to the same slice slot.
func racySharedIndex(rt *ga.Runtime, out []float64) {
	_ = rt.Parallel(func(p *ga.Proc) {
		out[0] = 1.0 // want `captured slice "out" is written inside the Parallel region at an index not derived from the process rank`
	})
}

// racyField stores into a field of a captured struct pointer.
type acc struct{ n int }

func racyField(rt *ga.Runtime, a *acc) {
	_ = rt.Parallel(func(p *ga.Proc) {
		a.n = p.ID() // want `captured variable "a" is written inside the Parallel region without a guard`
	})
}

// cleanPerProcIndex writes disjoint elements indexed by rank.
func cleanPerProcIndex(rt *ga.Runtime, out []float64) {
	_ = rt.Parallel(func(p *ga.Proc) {
		out[p.ID()] = 1.0
	})
}

// cleanDerivedIndex derives loop bounds from the rank; the index
// variable inherits the taint.
func cleanDerivedIndex(rt *ga.Runtime, out []float64, chunk int) {
	_ = rt.Parallel(func(p *ga.Proc) {
		lo := p.ID() * chunk
		for i := lo; i < lo+chunk; i++ {
			out[i] = float64(i)
		}
	})
}

// cleanMutex guards the shared accumulator with a lock.
func cleanMutex(rt *ga.Runtime) {
	var mu sync.Mutex
	total := 0
	_ = rt.Parallel(func(p *ga.Proc) {
		mu.Lock()
		total += p.ID()
		mu.Unlock()
	})
	_ = total
}

// cleanDeferUnlock uses the lock-then-defer idiom; the guard holds for
// the rest of the body.
func cleanDeferUnlock(rt *ga.Runtime) {
	var mu sync.Mutex
	total := 0
	_ = rt.Parallel(func(p *ga.Proc) {
		mu.Lock()
		defer mu.Unlock()
		total += p.ID()
	})
	_ = total
}

// racyAfterUnlock releases the lock before the second write.
func racyAfterUnlock(rt *ga.Runtime) {
	var mu sync.Mutex
	total := 0
	_ = rt.Parallel(func(p *ga.Proc) {
		mu.Lock()
		total += p.ID()
		mu.Unlock()
		total++ // want `captured variable "total" is written inside the Parallel region without a guard`
	})
	_ = total
}

// cleanLocal writes only process-local state.
func cleanLocal(rt *ga.Runtime, out []float64) {
	_ = rt.Parallel(func(p *ga.Proc) {
		local := make([]float64, 4)
		for i := range local {
			local[i] = float64(p.ID())
		}
		out[p.ID()] = local[0]
	})
}

// cleanChannel communicates instead of sharing; sends are not writes.
func cleanChannel(rt *ga.Runtime) {
	results := make(chan int, 8)
	_ = rt.Parallel(func(p *ga.Proc) {
		results <- p.ID()
	})
	close(results)
}

// racyGoroutine writes a captured variable from a plain goroutine.
func racyGoroutine(done chan struct{}) {
	count := 0
	go func() {
		count++ // want `captured variable "count" is written inside a goroutine closure without a guard`
		done <- struct{}{}
	}()
}

// cleanGoroutineChunk indexes a disjoint chunk from a goroutine; the
// convention is left to the race detector, not flagged statically.
func cleanGoroutineChunk(out []float64, i int, done chan struct{}) {
	go func() {
		out[i] = 1.0
		done <- struct{}{}
	}()
}

// cleanReadOnly only reads captured state.
func cleanReadOnly(rt *ga.Runtime, in []float64, out []float64) {
	_ = rt.Parallel(func(p *ga.Proc) {
		out[p.ID()] = in[0] + in[1]
	})
}
