package analysis

import (
	"go/token"
	"testing"
)

// TestLoadTypechecksModulePackage exercises the go-list-backed loader on
// a real runtime package, including its stdlib dependency closure.
func TestLoadTypechecksModulePackage(t *testing.T) {
	pkgs, err := Load("", "fourindex/internal/sym")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Pkg.Name() != "sym" {
		t.Errorf("package name = %q, want sym", p.Pkg.Name())
	}
	if !p.Target {
		t.Errorf("matched package not marked Target")
	}
	if p.Pkg.Scope().Lookup("PairIndex") == nil {
		t.Errorf("type info missing PairIndex")
	}
}

// TestRunReportsSortedDiagnostics checks the driver plumbing with a
// trivial analyzer that flags every file's package clause.
func TestRunReportsSortedDiagnostics(t *testing.T) {
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every file",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				pass.Reportf(f.Name.Pos(), "package %s", f.Name.Name)
			}
			return nil
		},
	}
	diags, err := Run("", []*Analyzer{probe}, "fourindex/internal/units")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatalf("probe analyzer reported nothing")
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Filename < diags[i-1].Pos.Filename {
			t.Errorf("diagnostics not sorted: %v before %v", diags[i-1].Pos, diags[i].Pos)
		}
	}
	if diags[0].Pos == (token.Position{}) {
		t.Errorf("diagnostic missing position")
	}
}
