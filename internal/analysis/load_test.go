package analysis

import (
	"errors"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadTypechecksModulePackage exercises the go-list-backed loader on
// a real runtime package, including its stdlib dependency closure.
func TestLoadTypechecksModulePackage(t *testing.T) {
	pkgs, err := Load("", "fourindex/internal/sym")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Pkg.Name() != "sym" {
		t.Errorf("package name = %q, want sym", p.Pkg.Name())
	}
	if !p.Target {
		t.Errorf("matched package not marked Target")
	}
	if p.Pkg.Scope().Lookup("PairIndex") == nil {
		t.Errorf("type info missing PairIndex")
	}
}

// TestRunReportsSortedDiagnostics checks the driver plumbing with a
// trivial analyzer that flags every file's package clause.
func TestRunReportsSortedDiagnostics(t *testing.T) {
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every file",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				pass.Reportf(f.Name.Pos(), "package %s", f.Name.Name)
			}
			return nil
		},
	}
	diags, err := Run("", []*Analyzer{probe}, "fourindex/internal/units")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatalf("probe analyzer reported nothing")
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos.Filename < diags[i-1].Pos.Filename {
			t.Errorf("diagnostics not sorted: %v before %v", diags[i-1].Pos, diags[i].Pos)
		}
	}
	if diags[0].Pos == (token.Position{}) {
		t.Errorf("diagnostic missing position")
	}
}

// writeModule lays out a throwaway module under t.TempDir and returns
// its root. Keys are slash-relative paths, values are file contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const tmpGoMod = "module tmpmod\n\ngo 1.22\n"

// TestLoadSkipsCgoPackages checks that a package with cgo files is
// silently dropped while its pure-Go sibling still loads: the loader
// has no C toolchain and must not fail the whole pattern over one cgo
// package.
func TestLoadSkipsCgoPackages(t *testing.T) {
	t.Setenv("CGO_ENABLED", "1") // make go list classify the import "C" file as a CgoFile
	root := writeModule(t, map[string]string{
		"go.mod":        tmpGoMod,
		"native/nat.go": "package native\n\nimport \"C\"\n\nfunc Nat() {}\n",
		"pure/pure.go":  "package pure\n\nfunc Pure() int { return 1 }\n",
	})
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "tmpmod/pure" {
		t.Fatalf("want exactly [tmpmod/pure], got %v", targetPaths(pkgs))
	}
}

// TestLoadMissingDependency checks that an unresolvable import surfaces
// as a typed *LoadError naming the broken package, not as a panic or an
// anonymous failure.
func TestLoadMissingDependency(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":      tmpGoMod,
		"broken/b.go": "package broken\n\nimport \"tmpmod/nope\"\n\nvar _ = nope.Missing\n",
	})
	_, err := Load(root, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a missing dependency")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("want *LoadError, got %T: %v", err, err)
	}
	if le.ImportPath == "" || le.Reason == "" {
		t.Fatalf("LoadError missing context: %+v", le)
	}
}

// TestLoadTestsFilesExactlyOnce checks the augmented-variant demotion:
// in -test mode a package with tests is listed both plain and as the
// "pkg [pkg.test]" variant, and naive target selection would analyze
// its regular files twice. Every file — regular, internal test,
// external test — must be analyzed exactly once.
func TestLoadTestsFilesExactlyOnce(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":              tmpGoMod,
		"thing/thing.go":      "package thing\n\nfunc Val() int { return 7 }\n",
		"thing/inner_test.go": "package thing\n\nfunc helper() int { return Val() }\n",
		"thing/outer_test.go": "package thing_test\n\nimport \"tmpmod/thing\"\n\nvar _ = thing.Val\n",
	})
	pkgs, err := LoadTests(root, "./...")
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	seen := make(map[string]int)
	for _, p := range pkgs {
		for _, f := range p.Files {
			seen[filepath.Base(p.Fset.Position(f.Pos()).Filename)]++
		}
	}
	for _, name := range []string{"thing.go", "inner_test.go", "outer_test.go"} {
		if seen[name] != 1 {
			t.Errorf("file %s analyzed %d times, want exactly once (targets: %v)", name, seen[name], targetPaths(pkgs))
		}
	}
}

func targetPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.ImportPath)
	}
	return out
}
