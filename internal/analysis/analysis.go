// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that the fouridxlint analyzers
// need. The container this repository is developed in has no module
// proxy access, so instead of vendoring x/tools the framework is built
// directly on the standard library: go/ast + go/types for the analyses
// themselves and `go list -json -deps` for package loading (see load.go).
//
// The analyzers enforce disciplines the Go compiler cannot see but the
// paper's data-movement accounting depends on:
//
//   - gadiscipline: local buffers and distributed arrays of the ga
//     runtime must be released, so per-process high-water marks match
//     the S >= n^2 + n + 1 capacity analysis of Section 5.
//   - symindex: packed triangular indexing must go through internal/sym,
//     so the |in| + |out| accounting has a single source of truth.
//   - metricsdiscipline: metrics.Counters and trace.Tracer state must
//     be touched only through their accessor methods, and
//     simulated-time code must not read wall clocks.
//   - errflow: errors from the runtime (notably ErrGlobalOOM and
//     ErrLocalOOM, which reproduce the paper's "Failed" configurations)
//     must not be silently discarded.
//   - docstring: packages under internal/ and the root package must
//     carry package comments and documented exports, keeping formulas
//     and schedules tied to the paper sections they reproduce.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package and reports findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function values, type conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsMethodCall reports whether call invokes the method recvType.method
// where recvType is a named type declared in a package named pkgName.
// Matching is by package *name* rather than full import path so that the
// same analyzers work against both the real runtime packages and
// self-contained test fixtures.
func IsMethodCall(info *types.Info, call *ast.CallExpr, pkgName, recvType, method string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeIs(sig.Recv().Type(), pkgName, recvType)
}

// namedTypeIs reports whether t (possibly behind a pointer) is the named
// type pkgName.typeName.
func namedTypeIs(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// NamedTypeIs is the exported form of namedTypeIs for analyzers.
func NamedTypeIs(t types.Type, pkgName, typeName string) bool {
	return namedTypeIs(t, pkgName, typeName)
}

// FuncScopes returns every function body in file paired with its
// enclosing function node (FuncDecl or FuncLit), outermost first.
func FuncScopes(file *ast.File) []FuncScope {
	var out []FuncScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, FuncScope{Node: fn, Body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, FuncScope{Node: fn, Body: fn.Body})
		}
		return true
	})
	return out
}

// FuncScope is one function body (declaration or literal).
type FuncScope struct {
	Node ast.Node       // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt // never nil
}

// InspectOwn walks the statements of scope's body but does not descend
// into nested function literals: those are separate scopes.
func (s FuncScope) InspectOwn(f func(n ast.Node) bool) {
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if n == ast.Node(s.Body) {
			return f(n)
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return f(n)
	})
}
