// Package tri is a symindex fixture: hand-rolled triangular index
// arithmetic in its common spellings, plus arithmetic that must not be
// flagged.
package tri

// pairIndex is the canonical offender.
func pairIndex(i, j int) int {
	return i*(i+1)/2 + j // want `hand-rolled triangular pair-index arithmetic`
}

// strictTriangle is the off-by-one variant.
func strictTriangle(i int) int {
	return i * (i - 1) / 2 // want `hand-rolled triangular pair-index arithmetic`
}

// expanded spells the product out.
func expanded(k int) int {
	return (k*k + k) / 2 // want `hand-rolled triangular pair-index arithmetic`
}

// reversed puts the increment first.
func reversed(n int) int {
	return (n + 1) * n / 2 // want `hand-rolled triangular pair-index arithmetic`
}

// selectorOperand uses a field expression as the index.
type grid struct{ n int }

func selectorOperand(g grid) int {
	return g.n * (g.n + 1) / 2 // want `hand-rolled triangular pair-index arithmetic`
}

// cleanHalving is ordinary arithmetic, not a pair index.
func cleanHalving(total int) int {
	return total / 2
}

// cleanMixed multiplies two different variables.
func cleanMixed(i, j int) int {
	return i * (j + 1) / 2
}

// cleanConst is compile-time arithmetic: a constant triangular number
// is a size, not an index bijection.
const cleanConst = 4 * (4 + 1) / 2

// cleanAverage divides a sum by two.
func cleanAverage(a, b int) int {
	return (a + b) / 2
}
