package symindex_test

import (
	"testing"

	"fourindex/internal/analysis/analysistest"
	"fourindex/internal/analysis/symindex"
)

func TestSymIndex(t *testing.T) {
	analysistest.Run(t, symindex.Analyzer, "./testdata/src/tri")
}
