// Package symindex flags hand-rolled triangular pair-index arithmetic
// outside internal/sym. The packed-symmetric layouts of Table 1 are the
// reason the transform moves |in| + |out| = n^4/4 + ... words rather
// than multiples of n^4; every schedule and bound computation must agree
// on one pair-index bijection for that accounting to hold. A literal
// i*(i+1)/2 + j scattered through a schedule silently diverges from
// sym.PairIndex the moment the canonical ordering changes (and the
// strict-triangle variant i*(i-1)/2 is a classic off-by-one).
//
// Flagged forms (modulo parentheses and operand order, with E any
// non-constant expression):
//
//	E*(E+1)/2    E*(E-1)/2    (E*E+E)/2    (E*E-E)/2
//
// The analyzer skips the sym package itself, the single place the
// bijection is allowed to live.
package symindex

import (
	"go/ast"
	"go/token"
	"go/types"

	"fourindex/internal/analysis"
)

// Analyzer is the symindex analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "symindex",
	Doc:  "triangular pair-index arithmetic must go through internal/sym (sym.PairIndex, sym.Pairs)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "sym" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			div, ok := n.(*ast.BinaryExpr)
			if !ok || div.Op != token.QUO || !isIntLiteral(div.Y, "2") {
				return true
			}
			num := ast.Unparen(div.X)
			if matchTriangular(pass.TypesInfo, num) {
				pass.Reportf(div.Pos(), "hand-rolled triangular pair-index arithmetic %q; use sym.PairIndex / sym.Pairs so packed-size accounting has one source of truth",
					types.ExprString(div))
				return false // do not re-flag sub-expressions
			}
			return true
		})
	}
	return nil
}

// matchTriangular recognises E*(E±1) and E*E±E for non-constant E.
func matchTriangular(info *types.Info, e ast.Expr) bool {
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.MUL:
		// E*(E±1) or (E±1)*E
		x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
		return mulMatches(info, x, y) || mulMatches(info, y, x)
	case token.ADD, token.SUB:
		// E*E ± E
		x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
		if mul, ok := x.(*ast.BinaryExpr); ok && mul.Op == token.MUL {
			return !isConst(info, y) && sameExpr(ast.Unparen(mul.X), y) && sameExpr(ast.Unparen(mul.Y), y)
		}
	}
	return false
}

// mulMatches reports whether the pair (e, offset) forms E*(E±1).
func mulMatches(info *types.Info, e, offset ast.Expr) bool {
	off, ok := offset.(*ast.BinaryExpr)
	if !ok || (off.Op != token.ADD && off.Op != token.SUB) || !isIntLiteral(off.Y, "1") {
		return false
	}
	return !isConst(info, e) && sameExpr(e, ast.Unparen(off.X))
}

// sameExpr compares two expressions by their printed form, which is
// exact for the identifier/selector/index shapes pair indices use.
func sameExpr(a, b ast.Expr) bool {
	return types.ExprString(a) == types.ExprString(b)
}

// isConst reports whether e is a compile-time constant: constant
// triangular numbers (sizes, test fixtures) are arithmetic, not index
// bijections.
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// isIntLiteral reports whether e is the basic literal lit.
func isIntLiteral(e ast.Expr, lit string) bool {
	b, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && b.Kind == token.INT && b.Value == lit
}
