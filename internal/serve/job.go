package serve

import (
	"context"
	"fmt"

	"fourindex/internal/chem"
	ifx "fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/lb/chain"
)

// JobSpec is the client-facing description of one transform request,
// the JSON body of POST /jobs.
type JobSpec struct {
	// Tenant identifies the submitting tenant; required. Quotas and
	// metrics are per tenant.
	Tenant string `json:"tenant"`
	// Priority orders the queue: higher runs first, ties run in
	// submission order.
	Priority int `json:"priority,omitempty"`
	// Molecule names a catalog benchmark system; it implies cost mode
	// and overrides N.
	Molecule string `json:"molecule,omitempty"`
	// N is the orbital count for synthetic problems (ignored when
	// Molecule is set).
	N int `json:"n,omitempty"`
	// Sym is the spatial symmetry order, a power of two (0 = 1).
	Sym int `json:"sym,omitempty"`
	// Seed seeds the synthetic integral generator (0 = 42).
	Seed uint64 `json:"seed,omitempty"`
	// Scheme is a schedule name ("unfused", "fullyfused-inner", ...)
	// or "auto" to let the frontier tuner choose (default "auto").
	Scheme string `json:"scheme,omitempty"`
	// Mode is "execute" or "cost" (default: cost for molecules and
	// n >= 128, execute otherwise).
	Mode string `json:"mode,omitempty"`
	// Procs overrides the server's default per-job process count.
	Procs int `json:"procs,omitempty"`
	// TileN and TileL override the planner's tile widths.
	TileN int `json:"tileN,omitempty"`
	TileL int `json:"tileL,omitempty"`
	// Strassen routes the job's contraction GEMMs above the crossover
	// through the Strassen-Winograd path (execute mode; cost mode
	// charges classical flops and ignores it).
	Strassen bool `json:"strassen,omitempty"`
	// DeadlineSeconds cancels the job if it runs longer (0 = none).
	DeadlineSeconds float64 `json:"deadlineSeconds,omitempty"`
	// Chain submits a chain-analysis job instead of a transform: the
	// generalized bound engine derives thresholds, fusion rankings and
	// frontier curves for the described contraction chain, and admission
	// prices the job by the chain's derived minimum-memory floor.
	// Mutually exclusive with Molecule/N/Scheme.
	Chain *chain.Chain `json:"chain,omitempty"`
	// CapacityElements prices the chain at a specific fast-memory
	// capacity (0 = the server's memory budget in elements). Only
	// meaningful with Chain.
	CapacityElements int64 `json:"capacityElements,omitempty"`
}

// Job states, as reported by the status API.
const (
	// StateQueued is waiting for a run slot and a memory reservation.
	StateQueued = "queued"
	// StateRunning is executing.
	StateRunning = "running"
	// StateDone completed successfully.
	StateDone = "done"
	// StateFailed hit a non-cancellation error.
	StateFailed = "failed"
	// StateCanceled was canceled by DELETE or its deadline.
	StateCanceled = "canceled"
	// StateInterrupted was stopped mid-run by a drain; its checkpoint
	// is on disk and a restarted server re-queues and resumes it.
	StateInterrupted = "interrupted"
)

// JobResult is the outcome of a completed job.
type JobResult struct {
	// Scheme is the schedule that ran; ChosenScheme differs only for
	// the hybrid driver.
	Scheme       string `json:"scheme"`
	ChosenScheme string `json:"chosenScheme"`
	// SimSeconds is the machine model's simulated wall time.
	SimSeconds float64 `json:"simSeconds"`
	// PeakBytes is the high-water aggregate-memory footprint the run
	// actually reached (always <= the job's admission reservation).
	PeakBytes int64 `json:"peakBytes"`
	// CommElements is the inter-node data movement in elements.
	CommElements int64 `json:"commElements"`
	// Flops is the arithmetic performed (execute) or charged (cost).
	Flops int64 `json:"flops"`
	// Restarts counts in-run checkpoint restarts after injected or
	// real crashes (drain/resume does not increment it).
	Restarts int `json:"restarts"`
	// ChecksumSHA256 fingerprints the packed C tensor bit-for-bit
	// (execute mode only): equal checksums mean bitwise-equal results,
	// which is how the drain test proves resume fidelity.
	ChecksumSHA256 string `json:"checksumSha256,omitempty"`
	// FrobeniusSq is |C|_F^2, a humanly comparable summary of the same
	// tensor (execute mode only).
	FrobeniusSq float64 `json:"frobeniusSq,omitempty"`
	// ChainReport is the bound engine's analysis (chain jobs only).
	ChainReport *ifx.ChainReport `json:"chainReport,omitempty"`
}

// Job is one submitted transform request and its lifecycle state.
// Fields other than ID and Seq are guarded by the server mutex.
type Job struct {
	// ID is the server-assigned job identifier ("j17").
	ID string
	// Seq is the submission sequence number (the queue tie-break).
	Seq int
	// Spec is the validated client request.
	Spec JobSpec
	// State is one of the State* constants.
	State string
	// Error carries the failure reason in StateFailed/StateCanceled.
	Error string
	// Resumed records that the job found a checkpoint from a previous
	// (drained) process and continued from it.
	Resumed bool
	// Result is set in StateDone.
	Result *JobResult

	plan   jobPlan
	cancel context.CancelFunc
	// chainReport carries a chain job's engine analysis from executeJob
	// to runJob's result recording.
	chainReport *ifx.ChainReport
}

// jobPlan is the admission-time resolution of a JobSpec: the concrete
// schedule, tiling, mode and — centrally — the memory reservation the
// job runs under.
type jobPlan struct {
	spec     chem.Spec
	scheme   ifx.Scheme
	mode     ga.Mode
	procs    int
	tileN    int
	tileL    int
	strassen bool
	// reservedBytes is the admission reservation: the exact peak
	// footprint of a cost-mode dry run of this schedule, clamped up to
	// the ConfigMinMemory floor. It becomes the job's
	// Options.GlobalMemBytes.
	reservedBytes int64
	// minBytes is the ConfigMinMemory feasibility floor the
	// reservation is cross-checked against (reservedBytes >= minBytes
	// always; the admission property test pins this).
	minBytes int64
	// chainSpec marks a chain-analysis job (nil for transforms); the
	// reservation then derives from the chain's minimum-memory floor and
	// capacityElements is the capacity the report prices at.
	chainSpec        *chain.Chain
	capacityElements int64
}

// maxExecuteOrbitals bounds execute-mode problems: beyond this the
// O(n^5) arithmetic makes an in-process job unreasonable, and cost
// mode models the same data movement exactly.
const maxExecuteOrbitals = 96

// normalize validates sp and fills defaults, returning the resolved
// orbital count, symmetry and mode.
func (sp JobSpec) normalize() (JobSpec, error) {
	if sp.Tenant == "" {
		return sp, fmt.Errorf("serve: job needs a tenant")
	}
	if sp.Chain != nil {
		// Chain-analysis job: the chain description is the whole problem,
		// so the transform knobs must be absent. Validation errors are
		// typed (the HTTP layer maps them to 422, never a panic).
		if sp.Molecule != "" || sp.N != 0 || sp.Scheme != "" || sp.Mode != "" {
			return sp, fmt.Errorf("serve: chain jobs take no molecule, n, scheme or mode")
		}
		if err := sp.Chain.Validate(); err != nil {
			return sp, err
		}
		if sp.CapacityElements < 0 {
			return sp, &chain.CapacityError{S: sp.CapacityElements, Reason: "capacityElements must be positive (or 0 for the server budget)"}
		}
		if sp.DeadlineSeconds < 0 {
			return sp, fmt.Errorf("serve: negative deadline")
		}
		return sp, nil
	}
	if sp.CapacityElements != 0 {
		return sp, fmt.Errorf("serve: capacityElements only applies to chain jobs")
	}
	if sp.Molecule != "" {
		m, err := chem.ByName(sp.Molecule)
		if err != nil {
			return sp, fmt.Errorf("serve: %w", err)
		}
		sp.N = m.Orbitals
		if sp.Mode == "" {
			sp.Mode = "cost"
		}
		if sp.Mode != "cost" {
			return sp, fmt.Errorf("serve: molecule %s (n=%d) requires cost mode", sp.Molecule, sp.N)
		}
	}
	if sp.N <= 0 {
		return sp, fmt.Errorf("serve: job needs a positive orbital count n or a molecule")
	}
	if sp.Sym == 0 {
		sp.Sym = 1
	}
	if sp.Seed == 0 {
		sp.Seed = 42
	}
	if sp.Scheme == "" {
		sp.Scheme = "auto"
	}
	switch sp.Mode {
	case "":
		if sp.N >= 128 {
			sp.Mode = "cost"
		} else {
			sp.Mode = "execute"
		}
	case "execute", "cost":
	default:
		return sp, fmt.Errorf("serve: unknown mode %q (want execute or cost)", sp.Mode)
	}
	if sp.Mode == "execute" && sp.N > maxExecuteOrbitals {
		return sp, fmt.Errorf("serve: execute mode caps at n=%d (got %d); submit cost mode for molecule-scale problems", maxExecuteOrbitals, sp.N)
	}
	if sp.DeadlineSeconds < 0 {
		return sp, fmt.Errorf("serve: negative deadline")
	}
	return sp, nil
}

// statusJSON is the wire shape of a job's status.
type statusJSON struct {
	ID            string     `json:"id"`
	Tenant        string     `json:"tenant"`
	State         string     `json:"state"`
	Priority      int        `json:"priority"`
	Chain         string     `json:"chain,omitempty"`
	N             int        `json:"n"`
	Sym           int        `json:"sym"`
	Scheme        string     `json:"scheme"`
	Mode          string     `json:"mode"`
	TileN         int        `json:"tileN"`
	TileL         int        `json:"tileL"`
	Strassen      bool       `json:"strassen,omitempty"`
	ReservedBytes int64      `json:"reservedBytes"`
	Resumed       bool       `json:"resumed,omitempty"`
	Error         string     `json:"error,omitempty"`
	Result        *JobResult `json:"result,omitempty"`
}

// status renders the job for the API. Caller holds the server mutex.
func (j *Job) status() statusJSON {
	if c := j.plan.chainSpec; c != nil {
		return statusJSON{
			ID:            j.ID,
			Tenant:        j.Spec.Tenant,
			State:         j.State,
			Priority:      j.Spec.Priority,
			Chain:         c.Name,
			ReservedBytes: j.plan.reservedBytes,
			Error:         j.Error,
			Result:        j.Result,
		}
	}
	return statusJSON{
		ID:            j.ID,
		Tenant:        j.Spec.Tenant,
		State:         j.State,
		Priority:      j.Spec.Priority,
		N:             j.plan.spec.N,
		Sym:           j.plan.spec.S,
		Scheme:        j.plan.scheme.String(),
		Mode:          j.Spec.Mode,
		TileN:         j.plan.tileN,
		TileL:         j.plan.tileL,
		Strassen:      j.plan.strassen,
		ReservedBytes: j.plan.reservedBytes,
		Resumed:       j.Resumed,
		Error:         j.Error,
		Result:        j.Result,
	}
}
