package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"math"
	"path/filepath"
	"time"

	"fourindex/internal/faults"
	ifx "fourindex/internal/fourindex"
	"fourindex/internal/sym"
	"fourindex/internal/trace"
)

// runJob executes one admitted job: transform under the job's context
// with its checkpoint store and progress tracer, then record the
// outcome and release the reservation. Runs on its own goroutine; the
// dispatch loop incremented s.running and s.wg before launching it.
func (s *Server) runJob(j *Job) {
	defer s.wg.Done()
	res, resumed, err := s.executeJob(j)

	s.mu.Lock()
	j.Resumed = resumed
	switch {
	case err == nil:
		j.State = StateDone
		if j.plan.chainSpec != nil {
			j.Result = &JobResult{ChainReport: j.chainReport}
		} else {
			j.Result = buildResult(res)
		}
	case errors.Is(err, ifx.ErrCanceled) && s.draining:
		// Drain interruption: the schedule stopped at a slab boundary
		// with its checkpoint on disk. The restarted server re-queues
		// and resumes this job.
		j.State = StateInterrupted
		j.Error = ""
	case errors.Is(err, ifx.ErrCanceled):
		j.State = StateCanceled
		j.Error = err.Error()
	default:
		j.State = StateFailed
		j.Error = err.Error()
	}
	s.adm.release(j.plan.reservedBytes)
	s.queue.release(j.Spec.Tenant)
	s.running--
	s.tenant(j.Spec.Tenant).finished(j.State)
	if err := s.persistLocked(); err != nil {
		// Persistence outside Drain is best-effort (a failed write
		// costs restart visibility of this one transition); the error
		// is surfaced on /healthz rather than dropped.
		s.persistErr = err
	}
	s.mu.Unlock()

	s.events.finish(j.ID)
	s.nudge()
}

// chainGridPerDecade is the frontier-curve resolution for chain jobs.
const chainGridPerDecade = 10

// executeJob builds the transform options for j and runs it. It
// returns whether the run resumed from a pre-existing checkpoint (a
// drained predecessor's work). Chain-analysis jobs instead run the
// bound engine and return the report inside a synthetic result-free
// path (see chainResult).
func (s *Server) executeJob(j *Job) (res *ifx.Result, resumed bool, err error) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	if j.Spec.DeadlineSeconds > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(j.Spec.DeadlineSeconds*float64(time.Second)))
	}
	defer cancel()
	s.mu.Lock()
	j.cancel = cancel
	s.mu.Unlock()

	if j.plan.chainSpec != nil {
		rep, err := ifx.AnalyzeChain(j.plan.chainSpec, j.plan.capacityElements, chainGridPerDecade)
		if err != nil {
			return nil, false, err
		}
		j.chainReport = rep
		return nil, false, ctx.Err()
	}

	ckpt, err := faults.NewFileCheckpoint(filepath.Join(s.cfg.StateDir, "ckpt", j.ID))
	if err != nil {
		return nil, false, err
	}
	_, resumed = ckpt.Latest(j.plan.scheme.String())

	tr := trace.New(0)
	tr.SetProgressListener(func(ev trace.ProgressEvent) {
		s.events.publish(j.ID, ev)
		if hook := s.progressHook; hook != nil {
			hook(j.ID, ev)
		}
	})

	opt := ifx.Options{
		Spec:           j.plan.spec,
		Procs:          j.plan.procs,
		Mode:           j.plan.mode,
		Run:            s.run,
		GlobalMemBytes: j.plan.reservedBytes,
		TileN:          j.plan.tileN,
		TileL:          j.plan.tileL,
		Strassen:       j.plan.strassen,
		Trace:          tr,
		Faults:         &faults.Injection{Checkpoint: ckpt},
	}
	res, err = ifx.RunContext(ctx, j.plan.scheme, opt)
	return res, resumed, err
}

// buildResult converts a transform result to the wire shape,
// fingerprinting the output tensor when one exists.
func buildResult(res *ifx.Result) *JobResult {
	jr := &JobResult{
		Scheme:       res.Scheme.String(),
		ChosenScheme: res.ChosenScheme.String(),
		SimSeconds:   res.ElapsedSeconds,
		PeakBytes:    res.PeakGlobalBytes,
		CommElements: res.CommVolume,
		Flops:        res.Totals.Flops,
		Restarts:     res.Restarts,
	}
	if res.C != nil {
		jr.ChecksumSHA256, jr.FrobeniusSq = checksumC(res.C)
	}
	return jr
}

// checksumC fingerprints the packed output tensor: a SHA-256 over the
// raw float64 bit patterns in packed order (bitwise-equal tensors, and
// only those, hash equal) plus the squared Frobenius norm.
func checksumC(c *sym.PackedC) (string, float64) {
	h := sha256.New()
	var buf [8]byte
	var frob float64
	for _, v := range c.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
		frob += v * v
	}
	return hex.EncodeToString(h.Sum(nil)), frob
}
