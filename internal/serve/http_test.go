package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fourindex/internal/trace"
)

// postJob submits spec to the test server, returning the HTTP response
// and decoded body.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (*http.Response, statusJSON) {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var st statusJSON
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, st
}

// TestSubmitRunStatus walks the happy path over HTTP: submit, run to
// completion, read back the terminal status with its result
// fingerprint, and see the job in the listing, the metrics, and its
// event stream.
func TestSubmitRunStatus(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, smallExecuteSpec("alice"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("submitted job in state %q", st.State)
	}
	final := waitJob(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("job finished in state %q (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.ChecksumSHA256 == "" || final.Result.FrobeniusSq == 0 {
		t.Fatalf("done job missing result fingerprint: %+v", final.Result)
	}
	if final.ReservedBytes <= 0 {
		t.Fatalf("job ran without a reservation")
	}
	if final.Result.PeakBytes > final.ReservedBytes {
		t.Fatalf("actual peak %d exceeded admission reservation %d", final.Result.PeakBytes, final.ReservedBytes)
	}

	// Status endpoint agrees.
	resp2, err := http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", st.ID, err)
	}
	var got statusJSON
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	resp2.Body.Close()
	if got.State != StateDone || got.Result == nil || got.Result.ChecksumSHA256 != final.Result.ChecksumSHA256 {
		t.Fatalf("GET status disagrees with internal state: %+v", got)
	}

	// The event stream replays history for a finished job and ends.
	resp3, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	marks := 0
	sc := bufio.NewScanner(resp3.Body)
	for sc.Scan() {
		var ev trace.ProgressEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "mark" {
			marks++
		}
	}
	resp3.Body.Close()
	if marks < 2 {
		t.Fatalf("event stream replayed %d slab marks, want >= 2", marks)
	}

	// Metrics include the gauges and alice's counters.
	resp4, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp4.Body); err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	resp4.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		fmt.Sprintf("fouridxd_mem_budget_bytes %d", s.cfg.MemBudgetBytes),
		`fouridxd_tenant_jobs_submitted{tenant="alice"}`,
		`fouridxd_tenant_jobs_done{tenant="alice"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Healthz is green.
	resp5, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp5.StatusCode)
	}
}

// blockFirstMark installs a progress hook that blocks the first job
// reaching a slab mark until release is closed, reporting the blocked
// job's ID. It must be installed before any submit.
func blockFirstMark(s *Server) (blocked chan string, release chan struct{}) {
	blocked = make(chan string, 1)
	release = make(chan struct{})
	var once sync.Once
	s.progressHook = func(id string, ev trace.ProgressEvent) {
		if ev.Kind != "mark" {
			return
		}
		once.Do(func() {
			blocked <- id
			<-release
		})
	}
	return blocked, release
}

// TestBackpressure fills the run slot, the tenant quota, and the
// queue, checking each rejection: 429 + Retry-After for full queue and
// quota, with the running job held at a slab boundary so the scenario
// is deterministic.
func TestBackpressure(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxRunning = 1
	cfg.MaxQueue = 2
	cfg.TenantQuota = 2
	s := newTestServer(t, cfg)
	blocked, release := blockFirstMark(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// j1 (alice) takes the run slot and parks at its first slab mark.
	resp1, st1 := postJob(t, ts, smallExecuteSpec("alice"))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("j1: status %d", resp1.StatusCode)
	}
	if got := <-blocked; got != st1.ID {
		t.Fatalf("blocked job %s, want %s", got, st1.ID)
	}

	// j2 (alice) queues: alice is now at her quota of 2 (1 running + 1
	// queued).
	resp2, st2 := postJob(t, ts, smallExecuteSpec("alice"))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("j2: status %d", resp2.StatusCode)
	}

	// j3 (alice) trips the tenant quota.
	resp3, _ := postJob(t, ts, smallExecuteSpec("alice"))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("j3 over quota: status %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") != retryAfterSeconds {
		t.Fatalf("j3: Retry-After %q, want %q", resp3.Header.Get("Retry-After"), retryAfterSeconds)
	}

	// j4 (bob) still fits: the queue has one free slot.
	resp4, st4 := postJob(t, ts, smallExecuteSpec("bob"))
	if resp4.StatusCode != http.StatusAccepted {
		t.Fatalf("j4: status %d", resp4.StatusCode)
	}

	// j5 (bob) trips the global queue bound.
	resp5, _ := postJob(t, ts, smallExecuteSpec("bob"))
	if resp5.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("j5 over queue: status %d, want 429", resp5.StatusCode)
	}
	if resp5.Header.Get("Retry-After") == "" {
		t.Fatalf("j5: 429 without Retry-After")
	}

	// Release the slot; everything admitted drains to done.
	close(release)
	for _, id := range []string{st1.ID, st2.ID, st4.ID} {
		if final := waitJob(t, s, id); final.State != StateDone {
			t.Fatalf("job %s: state %q (%s), want done", id, final.State, final.Error)
		}
	}
}

// TestOverBudgetRejects submits a job whose cheapest schedule cannot
// fit the server budget and expects an immediate 422.
func TestOverBudgetRejects(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemBudgetBytes = 4 << 10
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJob(t, ts, JobSpec{Tenant: "alice", N: 128, Scheme: "unfused", Mode: "cost"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget submit: status %d, want 422", resp.StatusCode)
	}
}

// TestCancel covers DELETE for both queued and running jobs: the
// queued job dies immediately, the running one is canceled
// cooperatively at its next slab boundary and never reports a result.
func TestCancel(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxRunning = 1
	s := newTestServer(t, cfg)
	blocked, release := blockFirstMark(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st1 := postJob(t, ts, smallExecuteSpec("alice"))
	<-blocked
	_, st2 := postJob(t, ts, smallExecuteSpec("alice"))

	doDelete := func(id string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
		if err != nil {
			t.Fatalf("build DELETE: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", id, err)
		}
		resp.Body.Close()
		return resp
	}

	// Queued job: canceled synchronously.
	if resp := doDelete(st2.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE queued: status %d, want 200", resp.StatusCode)
	}
	if final := waitJob(t, s, st2.ID); final.State != StateCanceled {
		t.Fatalf("queued job after DELETE: state %q, want canceled", final.State)
	}

	// Running job: cancellation is cooperative (202, then canceled).
	if resp := doDelete(st1.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running: status %d, want 202", resp.StatusCode)
	}
	close(release)
	final := waitJob(t, s, st1.ID)
	if final.State != StateCanceled {
		t.Fatalf("running job after DELETE: state %q (%s), want canceled", final.State, final.Error)
	}
	if final.Result != nil {
		t.Fatalf("canceled job reported a partial result: %+v", final.Result)
	}

	// Unknown job: 404 on both verbs.
	if resp := doDelete("j999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
}

// TestSubmitValidation exercises the 400 family: bad JSON, missing
// tenant, unknown scheme and mode, and the execute-mode orbital cap.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := []JobSpec{
		{N: 8},                             // no tenant
		{Tenant: "a"},                      // no extent
		{Tenant: "a", N: 8, Scheme: "zig"}, // unknown scheme
		{Tenant: "a", N: 8, Mode: "warp"},  // unknown mode
		{Tenant: "a", N: 4096, Mode: "execute"},
		{Tenant: "a", Molecule: "no-such-molecule"},
	}
	for i, spec := range bad {
		resp, _ := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d: status %d, want 400", i, resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	if resp, err := http.Get(ts.URL + "/jobs/nope"); err != nil {
		t.Fatalf("GET unknown: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET unknown job: status %d, want 404", resp.StatusCode)
		}
	}
}
