package serve

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	ifx "fourindex/internal/fourindex"
	"fourindex/internal/lb"
)

// TestAdmissionLedgerInvariant hammers the reservation ledger with a
// seeded random reserve/release schedule and checks its single
// invariant — 0 <= reserved <= budget, and reserved always equals the
// sum of outstanding reservations — after every operation.
func TestAdmissionLedgerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		budget := int64(1+rng.Intn(1<<20)) * 64
		a := &admission{budget: budget}
		var outstanding []int64
		var sum int64
		for op := 0; op < 400; op++ {
			if len(outstanding) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(outstanding))
				b := outstanding[i]
				outstanding = append(outstanding[:i], outstanding[i+1:]...)
				a.release(b)
				sum -= b
			} else {
				b := int64(rng.Intn(int(budget+budget/2))) - 8
				ok := a.tryReserve(b)
				fits := b > 0 && b <= budget-sum
				if ok != fits {
					t.Fatalf("trial %d op %d: tryReserve(%d) = %v with %d/%d reserved",
						trial, op, b, ok, sum, budget)
				}
				if ok {
					outstanding = append(outstanding, b)
					sum += b
				}
			}
			gotBudget, reserved := a.usage()
			if gotBudget != budget || reserved != sum || reserved < 0 || reserved > budget {
				t.Fatalf("trial %d op %d: ledger (%d, %d), want (%d, %d) within [0, budget]",
					trial, op, gotBudget, reserved, budget, sum)
			}
		}
	}
}

// TestPlanReservationBounds cross-checks planJob's pricing against the
// lb layer directly for every schedule: the reservation never
// undercuts the fusion configuration's ConfigMinMemory feasibility
// floor, stays within a small factor of the closed-form memory model
// (the models assume ideal tilings; the dry-run pricing sees real tile
// rounding), and a job that cannot fit the whole budget is rejected
// with ErrOverBudget instead of queuing forever.
func TestPlanReservationBounds(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemBudgetBytes = 1 << 30
	s := newTestServer(t, cfg)

	schemes := []string{
		"unfused", "fused12-34", "nwchem-fused12-34", "fused123-4",
		"fullyfused", "fullyfused-inner", "recompute", "hybrid",
	}
	for _, name := range schemes {
		for _, n := range []int{16, 32, 64} {
			for _, sym := range []int{1, 2} {
				sp := JobSpec{Tenant: "t", N: n, Sym: sym, Scheme: name, Mode: "cost"}
				sp, err := sp.normalize()
				if err != nil {
					t.Fatalf("%s n=%d: normalize: %v", name, n, err)
				}
				plan, err := s.planJob(context.Background(), sp)
				if err != nil {
					t.Fatalf("%s n=%d sym=%d: planJob: %v", name, n, sym, err)
				}
				modeled, err := ModeledPeakBytes(plan.scheme, n, sym, plan.tileL, cfg.MemBudgetBytes)
				if err != nil {
					t.Fatalf("%s: ModeledPeakBytes: %v", name, err)
				}
				if plan.reservedBytes < modeled/2 || plan.reservedBytes > modeled*3 {
					t.Errorf("%s n=%d sym=%d: reservation %d far from modeled peak %d",
						name, n, sym, plan.reservedBytes, modeled)
				}
				floor := lb.ConfigMinMemory(fusionConfigOf(plan.scheme), n, sym) * 8
				if plan.minBytes != floor {
					t.Errorf("%s n=%d sym=%d: minBytes %d, lb floor %d", name, n, sym, plan.minBytes, floor)
				}
				if plan.reservedBytes < floor {
					t.Errorf("%s n=%d sym=%d: reservation %d under ConfigMinMemory floor %d",
						name, n, sym, plan.reservedBytes, floor)
				}
			}
		}
	}

	// A job whose cheapest tiling exceeds the whole budget rejects
	// immediately at plan time.
	tiny := testConfig(t)
	tiny.MemBudgetBytes = 4 << 10
	st := newTestServer(t, tiny)
	sp, err := JobSpec{Tenant: "t", N: 128, Scheme: "unfused", Mode: "cost"}.normalize()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if _, err := st.planJob(context.Background(), sp); !errors.Is(err, ErrOverBudget) {
		t.Fatalf("planJob at 4KB budget: err = %v, want ErrOverBudget", err)
	}
}

// TestAdmittedPeaksWithinBudget is the admission property proof: for
// seeded random mixes of real planned jobs admitted and released in
// random order against random budgets, the sum of the admitted jobs'
// peaks never exceeds the server budget. Each plan's reservation IS
// its dry-run peak (cost and execute mode share the allocation
// sequence), so summing reservations sums the peaks the runs will
// actually reach.
func TestAdmittedPeaksWithinBudget(t *testing.T) {
	cfg := testConfig(t)
	cfg.MemBudgetBytes = 1 << 30
	s := newTestServer(t, cfg)

	// A pool of real plans at assorted shapes.
	var pool []jobPlan
	for _, name := range []string{"unfused", "fullyfused", "fullyfused-inner", "fused12-34"} {
		for _, n := range []int{16, 24, 32, 48} {
			sp, err := JobSpec{Tenant: "t", N: n, Scheme: name, Mode: "cost"}.normalize()
			if err != nil {
				t.Fatalf("normalize: %v", err)
			}
			plan, err := s.planJob(context.Background(), sp)
			if err != nil {
				t.Fatalf("planJob %s n=%d: %v", name, n, err)
			}
			if plan.reservedBytes < plan.minBytes {
				t.Fatalf("planJob %s n=%d: reservation %d under floor %d", name, n, plan.reservedBytes, plan.minBytes)
			}
			pool = append(pool, plan)
		}
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		budget := pool[rng.Intn(len(pool))].reservedBytes * int64(1+rng.Intn(4))
		a := &admission{budget: budget}
		var admitted []jobPlan
		var peakSum int64
		for op := 0; op < 200; op++ {
			if len(admitted) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(admitted))
				a.release(admitted[i].reservedBytes)
				peakSum -= admitted[i].reservedBytes
				admitted = append(admitted[:i], admitted[i+1:]...)
			} else {
				p := pool[rng.Intn(len(pool))]
				if a.tryReserve(p.reservedBytes) {
					admitted = append(admitted, p)
					peakSum += p.reservedBytes
				}
			}
			_, reserved := a.usage()
			if reserved > budget {
				t.Fatalf("trial %d: reserved %d exceeds budget %d", trial, reserved, budget)
			}
			if peakSum != reserved {
				t.Fatalf("trial %d: admitted peaks %d disagree with ledger %d", trial, peakSum, reserved)
			}
		}
	}
}

// TestModeledPeakOrdering pins the paper's memory hierarchy at the
// admission layer: fully fused schedules are priced under the pairwise
// fusion, which is priced under unfused — the ordering that makes
// fusion worth admitting.
func TestModeledPeakOrdering(t *testing.T) {
	const n, sym = 64, 1
	budget := int64(1 << 30)
	price := func(s ifx.Scheme, tileL int) int64 {
		t.Helper()
		b, err := ModeledPeakBytes(s, n, sym, tileL, budget)
		if err != nil {
			t.Fatalf("ModeledPeakBytes(%v): %v", s, err)
		}
		return b
	}
	ff := price(ifx.FullyFused, 4)
	pair := price(ifx.Fused1234Pair, 4)
	unfused := price(ifx.Unfused, 4)
	if !(ff < pair && pair < unfused) {
		t.Fatalf("memory ordering violated: fullyfused %d, fused12-34 %d, unfused %d", ff, pair, unfused)
	}
}
