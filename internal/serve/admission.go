package serve

import (
	"context"
	"fmt"
	"sync"

	"fourindex/internal/chem"
	ifx "fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/lb/chain"
	"fourindex/internal/sym"
)

// ModeledPeakBytes prices scheme at extent n, symmetry s and fused
// tile width tileL using the paper's memory models (Section 2/7): the
// peak live elements converted to bytes. The closed forms assume ideal
// tilings, so real runs land within a small factor of them (tile
// rounding, per-slab intermediates); admission therefore uses them as
// the analytic cross-check and fast-reject, while the binding
// reservation comes from an exact cost-mode dry run (see planJob).
// Hybrid is priced via lb.Advise at the given budget — what the driver
// would actually pick.
func ModeledPeakBytes(scheme ifx.Scheme, n, s, tileL int, budget int64) (int64, error) {
	if tileL <= 0 || tileL > n {
		tileL = max(1, min(tileL, n))
	}
	var words int64
	switch scheme {
	case ifx.Unfused:
		words = lb.MemoryUnfused(n, s)
	case ifx.Fused1234Pair, ifx.NWChemFused:
		words = lb.MemoryFused12_34(n, s)
	case ifx.FullyFused:
		words = lb.MemoryFused1234(n, s, tileL)
	case ifx.FullyFusedInner:
		words = lb.MemoryFused1234Inner(n, s, tileL)
	case ifx.Fused123:
		words = lb.MemoryFused123(n, s, tileL)
	case ifx.Recompute:
		// Listing 3 keeps only the output resident and regenerates
		// everything else per slab: |C| plus an n^2 coefficient panel.
		words = sym.ExactSizes(n, s).C + int64(n)*int64(n)
	case ifx.Hybrid:
		adv := lb.Advise(n, s, budget)
		if adv.Scheme == "infeasible" {
			return 0, fmt.Errorf("serve: hybrid is infeasible at this budget: %s", adv.Reason)
		}
		return adv.MemoryBytes, nil
	default:
		return 0, fmt.Errorf("serve: no memory model for scheme %v", scheme)
	}
	return words * 8, nil
}

// fusionConfigOf maps a schedule to the fusion configuration whose
// ConfigMinMemory is its feasibility floor.
func fusionConfigOf(scheme ifx.Scheme) lb.FusionConfig {
	switch scheme {
	case ifx.Unfused:
		return lb.FusionConfig{Groups: [][]int{{1}, {2}, {3}, {4}}}
	case ifx.Fused1234Pair, ifx.NWChemFused:
		return lb.FusionConfig{Groups: [][]int{{1, 2}, {3, 4}}}
	case ifx.Fused123:
		return lb.FusionConfig{Groups: [][]int{{1, 2, 3}, {4}}}
	default:
		// FullyFused, FullyFusedInner, Recompute — and Hybrid, whose
		// floor is the minimum over configurations (the fully fused
		// one), matching whatever Advise picks at a tight budget.
		return lb.FusionConfig{Groups: [][]int{{1, 2, 3, 4}}}
	}
}

// planJob resolves a normalized JobSpec into a concrete schedule,
// tiling and admission reservation. ctx bounds the "auto" frontier
// tune; ctx.Err() is surfaced, never swallowed. Jobs whose reservation
// exceeds the whole budget fail with ErrOverBudget.
func (s *Server) planJob(ctx context.Context, sp JobSpec) (jobPlan, error) {
	if sp.Chain != nil {
		return s.planChainJob(sp)
	}
	spec, err := chemSpec(sp)
	if err != nil {
		return jobPlan{}, err
	}
	p := jobPlan{spec: spec, procs: sp.Procs, strassen: sp.Strassen}
	if p.procs <= 0 {
		p.procs = s.cfg.Procs
	}
	if sp.Mode == "cost" {
		p.mode = ga.Cost
	} else {
		p.mode = ga.Execute
	}
	p.tileN = sp.TileN
	if p.tileN <= 0 {
		div := 6
		if p.mode == ga.Cost && spec.N >= 240 {
			div = 24
		}
		p.tileN = max(1, spec.N/div)
	}
	p.tileN = min(p.tileN, spec.N)
	p.tileL = sp.TileL
	if p.tileL <= 0 {
		p.tileL = p.tileN
	}
	p.tileL = min(p.tileL, spec.N)

	if sp.Scheme == "auto" {
		scheme, tileN, tileL, err := s.autoPlan(ctx, p)
		if err != nil {
			return jobPlan{}, err
		}
		p.scheme, p.tileN, p.tileL = scheme, tileN, tileL
	} else {
		p.scheme, err = ifx.SchemeByName(sp.Scheme)
		if err != nil {
			return jobPlan{}, fmt.Errorf("serve: %w", err)
		}
	}

	// Fast reject on the analytic floor: ConfigMinMemory is the least
	// memory the scheme's fusion configuration can run in under any
	// tiling, so a budget below it can never admit this job.
	p.minBytes = lb.ConfigMinMemory(fusionConfigOf(p.scheme), spec.N, spec.S) * 8
	if p.minBytes > s.cfg.MemBudgetBytes {
		return jobPlan{}, fmt.Errorf("%w: %s needs at least %d bytes (ConfigMinMemory), budget is %d",
			ErrOverBudget, p.scheme, p.minBytes, s.cfg.MemBudgetBytes)
	}

	// Binding reservation: a cost-mode dry run of the exact schedule.
	// The simulator performs the same allocation sequence as execution
	// (GA accounting is mode-independent), so its peak is the job's
	// peak, not a model of it — admitted under this reservation, the
	// run cannot trip its own GlobalMemBytes cap.
	peak, err := s.dryRunPeakBytes(ctx, p)
	if err != nil {
		return jobPlan{}, err
	}
	p.reservedBytes = max(peak, p.minBytes)
	if p.reservedBytes > s.cfg.MemBudgetBytes {
		return jobPlan{}, fmt.Errorf("%w: %s at tileN=%d tileL=%d peaks at %d bytes, budget is %d",
			ErrOverBudget, p.scheme, p.tileN, p.tileL, p.reservedBytes, s.cfg.MemBudgetBytes)
	}
	return p, nil
}

// planChainJob prices a chain-analysis job by its derived bounds: the
// engine's minimum-memory floor over all fusion configurations — the
// least fast memory any schedule shape needs for this chain — becomes
// the admission reservation, exactly as ConfigMinMemory does for the
// built-in transform. Engine errors are typed and surface as 422s.
func (s *Server) planChainJob(sp JobSpec) (jobPlan, error) {
	p := jobPlan{chainSpec: sp.Chain, mode: ga.Cost, capacityElements: sp.CapacityElements}
	if p.capacityElements == 0 {
		p.capacityElements = s.cfg.MemBudgetBytes / 8
	}
	ranked, err := sp.Chain.RankConfigs()
	if err != nil {
		return jobPlan{}, fmt.Errorf("serve: price chain %s: %w", sp.Chain.Name, err)
	}
	minElems := ranked[0].MinMemory
	for _, rc := range ranked {
		if rc.MinMemory < minElems {
			minElems = rc.MinMemory
		}
	}
	// The floor can sit near MaxInt64 for saturating chains; an
	// overflowing byte conversion is by definition over any budget.
	minBytes, err := chain.MulInt64(minElems, 8)
	if err != nil {
		return jobPlan{}, fmt.Errorf("%w: chain %s: minimum-memory floor %d elements overflows the byte ledger",
			ErrOverBudget, sp.Chain.Name, minElems)
	}
	p.minBytes = minBytes
	p.reservedBytes = p.minBytes
	if p.reservedBytes > s.cfg.MemBudgetBytes {
		return jobPlan{}, fmt.Errorf("%w: chain %s needs at least %d bytes (derived minimum-memory floor), budget is %d",
			ErrOverBudget, sp.Chain.Name, p.reservedBytes, s.cfg.MemBudgetBytes)
	}
	return p, nil
}

// dryRunPeakBytes simulates p's schedule in cost mode with no memory
// cap and returns the peak aggregate footprint it reached. Hybrid gets
// the whole server budget to advise against — the most any single job
// could be granted. ctx bounds the simulation.
func (s *Server) dryRunPeakBytes(ctx context.Context, p jobPlan) (int64, error) {
	opt := ifx.Options{
		Spec:  p.spec,
		Procs: p.procs,
		Mode:  ga.Cost,
		Run:   s.run,
		TileN: p.tileN,
		TileL: p.tileL,
	}
	if p.scheme == ifx.Hybrid {
		opt.GlobalMemBytes = s.cfg.MemBudgetBytes
	}
	res, err := ifx.RunContext(ctx, p.scheme, opt)
	if err != nil {
		return 0, fmt.Errorf("serve: price %s: %w", p.scheme, err)
	}
	return res.PeakGlobalBytes, nil
}

// autoPlan resolves scheme "auto" with the frontier-driven tuner: the
// capacity analysed is the server budget, so the pick is a schedule
// the server can actually admit.
func (s *Server) autoPlan(ctx context.Context, p jobPlan) (ifx.Scheme, int, int, error) {
	opt := ifx.Options{
		Spec:           p.spec,
		Procs:          p.procs,
		Run:            s.run,
		GlobalMemBytes: s.cfg.MemBudgetBytes,
	}
	ft, err := ifx.TuneFrontierContext(ctx, opt, autoTuneSpace(p.spec.N, p.tileN), 0)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("serve: auto plan: %w", err)
	}
	pick := ft.Pick
	tileL := pick.TileL
	if tileL <= 0 {
		tileL = pick.TileN
	}
	return pick.Scheme, pick.TileN, tileL, nil
}

// autoTuneSpace is the lean sweep behind scheme "auto": the planner's
// tile heuristic and a 2x coarser alternative, both parallelisation
// settings — small enough to stay interactive at submit time.
func autoTuneSpace(n, tileN int) ifx.TuneSpace {
	tiles := []int{tileN}
	if 2*tileN <= n {
		tiles = append(tiles, 2*tileN)
	}
	return ifx.TuneSpace{
		TileNs:    tiles,
		TileLs:    tiles,
		AlphaPars: []int{1, 2},
		LPars:     []int{1},
	}
}

// chemSpec builds the chem.Spec for a normalized JobSpec.
func chemSpec(sp JobSpec) (chem.Spec, error) {
	return chem.NewSpec(sp.N, sp.Sym, sp.Seed)
}

// admission is the server-wide memory-reservation ledger. Its single
// invariant — reserved never exceeds budget — is what makes "the sum
// of admitted jobs' modeled peaks stays within capacity" true, and the
// property test in admission_test.go hammers exactly this type.
type admission struct {
	mu       sync.Mutex
	budget   int64
	reserved int64
}

// tryReserve atomically reserves b bytes if they fit, reporting
// success. b must be positive.
func (a *admission) tryReserve(b int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b <= 0 || b > a.budget-a.reserved {
		return false
	}
	a.reserved += b
	return true
}

// release returns b bytes to the budget.
func (a *admission) release(b int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reserved -= b
	if a.reserved < 0 {
		// A release without a matching reserve is a server bug; clamp
		// so the ledger never reports phantom capacity beyond budget.
		a.reserved = 0
	}
}

// usage returns the current (budget, reserved) pair.
func (a *admission) usage() (budget, reserved int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget, a.reserved
}
