package serve

import (
	"sync"

	"fourindex/internal/trace"
)

// eventHub fans each job's coarse progress events (slab marks,
// checkpoint restarts, phase spans — see trace.ProgressEvent) out to
// any number of streaming subscribers, keeping the full history so a
// late subscriber sees the job from the start. Publishers never block:
// a slow subscriber loses live events beyond its buffer rather than
// stalling the transform's progress listener.
type eventHub struct {
	mu   sync.Mutex
	jobs map[string]*jobEvents
}

// jobEvents is one job's event history and live subscribers, fanned
// out in subscription order.
type jobEvents struct {
	history []trace.ProgressEvent
	subs    []chan trace.ProgressEvent
	closed  bool
}

// maxEventHistory bounds a job's retained history; a multi-thousand
// slab cost run keeps its most recent events, like the tracer's ring.
const maxEventHistory = 4096

// newEventHub builds an empty hub.
func newEventHub() *eventHub {
	return &eventHub{jobs: make(map[string]*jobEvents)}
}

// job returns (creating if needed) the entry for jobID. Caller holds
// the hub mutex.
func (h *eventHub) job(jobID string) *jobEvents {
	je := h.jobs[jobID]
	if je == nil {
		je = &jobEvents{}
		h.jobs[jobID] = je
	}
	return je
}

// publish records ev for jobID and offers it to every live subscriber.
func (h *eventHub) publish(jobID string, ev trace.ProgressEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	je := h.job(jobID)
	if len(je.history) >= maxEventHistory {
		je.history = append(je.history[:0], je.history[1:]...)
	}
	je.history = append(je.history, ev)
	for _, ch := range je.subs {
		select {
		case ch <- ev:
		default: // subscriber is slow; it keeps the history it has
		}
	}
}

// subscribe returns the job's history so far plus a channel of live
// events. The channel is closed when the job ends. Call the returned
// cancel function when done reading.
func (h *eventHub) subscribe(jobID string) (history []trace.ProgressEvent, live chan trace.ProgressEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	je := h.job(jobID)
	history = append([]trace.ProgressEvent(nil), je.history...)
	live = make(chan trace.ProgressEvent, 64)
	if je.closed {
		close(live)
		return history, live, func() {}
	}
	je.subs = append(je.subs, live)
	return history, live, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		for i, ch := range je.subs {
			if ch == live {
				je.subs = append(je.subs[:i], je.subs[i+1:]...)
				close(live)
				return
			}
		}
	}
}

// finish marks the job's stream complete, closing live subscriptions.
// The history stays readable for later subscribers.
func (h *eventHub) finish(jobID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	je := h.job(jobID)
	je.closed = true
	for _, ch := range je.subs {
		close(ch)
	}
	je.subs = nil
}
