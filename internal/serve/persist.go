package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fourindex/internal/chem"
	ifx "fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/lb/chain"
)

// stateFile is the queue snapshot inside Config.StateDir. Together
// with the per-job checkpoint directories under ckpt/, it is the whole
// of the server's durable state: a restarted process reconstructs its
// queue from this file and resumes interrupted transforms from their
// checkpoints.
const stateFile = "jobs.json"

// persistedState is the on-disk shape of the server's job table.
type persistedState struct {
	// NextSeq continues the job ID sequence across restarts so resumed
	// and new jobs never collide.
	NextSeq int `json:"nextSeq"`
	// Jobs is every job the server knows about, in submission order.
	Jobs []persistedJob `json:"jobs"`
}

// persistedJob is one job's durable record.
type persistedJob struct {
	// ID, Seq, Spec, State, Error, Resumed and Result mirror Job.
	ID      string     `json:"id"`
	Seq     int        `json:"seq"`
	Spec    JobSpec    `json:"spec"`
	State   string     `json:"state"`
	Error   string     `json:"error,omitempty"`
	Resumed bool       `json:"resumed,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
	// Plan is the admission-time resolution, persisted so a restarted
	// server re-admits the job under the exact reservation (and tiling —
	// checkpoint offsets are tile-aligned) it was planned with.
	Plan persistedPlan `json:"plan"`
}

// persistedPlan is the serializable form of jobPlan.
type persistedPlan struct {
	// N, Sym and Seed reconstruct the chem.Spec.
	N   int    `json:"n"`
	Sym int    `json:"sym"`
	// Seed seeds the synthetic integral generator; persisting it is
	// what makes a resumed run operate on bitwise-identical inputs.
	Seed uint64 `json:"seed"`
	// Scheme and Mode are the canonical names (SchemeByName /
	// ga.Mode.String round-trip).
	Scheme string `json:"scheme"`
	Mode   string `json:"mode"`
	// Procs, TileN and TileL pin the parallelisation and tiling.
	Procs int `json:"procs"`
	TileN int `json:"tileN"`
	TileL int `json:"tileL"`
	// Strassen pins the GEMM path, so a resumed execute-mode run keeps
	// the arithmetic (and hence the checksum) of the run it continues.
	Strassen bool `json:"strassen,omitempty"`
	// ReservedBytes and MinBytes pin the admission reservation.
	ReservedBytes int64 `json:"reservedBytes"`
	MinBytes      int64 `json:"minBytes"`
	// Chain and CapacityElements persist a chain-analysis job's problem
	// (chain jobs have no chem.Spec to reconstruct).
	Chain            *chain.Chain `json:"chain,omitempty"`
	CapacityElements int64        `json:"capacityElements,omitempty"`
}

// persistJob renders a Job durable. Caller holds the server mutex.
func persistJob(j *Job) persistedJob {
	mode := "execute"
	if j.plan.mode == ga.Cost {
		mode = "cost"
	}
	if c := j.plan.chainSpec; c != nil {
		return persistedJob{
			ID:      j.ID,
			Seq:     j.Seq,
			Spec:    j.Spec,
			State:   j.State,
			Error:   j.Error,
			Resumed: j.Resumed,
			Result:  j.Result,
			Plan: persistedPlan{
				Mode:             mode,
				ReservedBytes:    j.plan.reservedBytes,
				MinBytes:         j.plan.minBytes,
				Chain:            c,
				CapacityElements: j.plan.capacityElements,
			},
		}
	}
	return persistedJob{
		ID:      j.ID,
		Seq:     j.Seq,
		Spec:    j.Spec,
		State:   j.State,
		Error:   j.Error,
		Resumed: j.Resumed,
		Result:  j.Result,
		Plan: persistedPlan{
			N:             j.plan.spec.N,
			Sym:           j.plan.spec.S,
			Seed:          j.plan.spec.Seed,
			Scheme:        j.plan.scheme.String(),
			Mode:          mode,
			Procs:         j.plan.procs,
			TileN:         j.plan.tileN,
			TileL:         j.plan.tileL,
			Strassen:      j.plan.strassen,
			ReservedBytes: j.plan.reservedBytes,
			MinBytes:      j.plan.minBytes,
		},
	}
}

// restore rebuilds the in-memory Job from its durable record.
func (pj persistedJob) restore() (*Job, error) {
	if c := pj.Plan.Chain; c != nil {
		// Chain jobs carry no chem.Spec; re-validate the persisted chain
		// so a hand-edited state file cannot smuggle a bad description
		// past admission.
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("serve: restore job %s: %w", pj.ID, err)
		}
		return &Job{
			ID:      pj.ID,
			Seq:     pj.Seq,
			Spec:    pj.Spec,
			State:   pj.State,
			Error:   pj.Error,
			Resumed: pj.Resumed,
			Result:  pj.Result,
			plan: jobPlan{
				mode:             ga.Cost,
				reservedBytes:    pj.Plan.ReservedBytes,
				minBytes:         pj.Plan.MinBytes,
				chainSpec:        c,
				capacityElements: pj.Plan.CapacityElements,
			},
		}, nil
	}
	spec, err := chem.NewSpec(pj.Plan.N, pj.Plan.Sym, pj.Plan.Seed)
	if err != nil {
		return nil, fmt.Errorf("serve: restore job %s: %w", pj.ID, err)
	}
	scheme, err := ifx.SchemeByName(pj.Plan.Scheme)
	if err != nil {
		return nil, fmt.Errorf("serve: restore job %s: %w", pj.ID, err)
	}
	mode := ga.Execute
	if pj.Plan.Mode == "cost" {
		mode = ga.Cost
	}
	return &Job{
		ID:      pj.ID,
		Seq:     pj.Seq,
		Spec:    pj.Spec,
		State:   pj.State,
		Error:   pj.Error,
		Resumed: pj.Resumed,
		Result:  pj.Result,
		plan: jobPlan{
			spec:          spec,
			scheme:        scheme,
			mode:          mode,
			procs:         pj.Plan.Procs,
			tileN:         pj.Plan.TileN,
			tileL:         pj.Plan.TileL,
			strassen:      pj.Plan.Strassen,
			reservedBytes: pj.Plan.ReservedBytes,
			minBytes:      pj.Plan.MinBytes,
		},
	}, nil
}

// persistLocked writes the job table to StateDir/jobs.json atomically
// (temp file + rename), jobs sorted by sequence so the snapshot is a
// deterministic function of the job table. Caller holds the server
// mutex.
func (s *Server) persistLocked() error {
	st := persistedState{NextSeq: s.nextSeq}
	for _, j := range s.jobs {
		st.Jobs = append(st.Jobs, persistJob(j))
	}
	sort.Slice(st.Jobs, func(i, k int) bool { return st.Jobs[i].Seq < st.Jobs[k].Seq })
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: encode state: %w", err)
	}
	path := filepath.Join(s.cfg.StateDir, stateFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("serve: write state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("serve: commit state: %w", err)
	}
	return nil
}

// loadState reads a previous process's job table, keeping terminal
// jobs for status queries and re-queuing the rest: queued jobs simply
// wait again, and running/interrupted jobs re-dispatch and resume from
// the checkpoint their previous run left under ckpt/<jobID>. Called
// from New before the dispatch loop starts.
func (s *Server) loadState() error {
	raw, err := os.ReadFile(filepath.Join(s.cfg.StateDir, stateFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: read state: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("serve: corrupt state file: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq = st.NextSeq
	for i := range st.Jobs {
		j, err := st.Jobs[i].restore()
		if err != nil {
			return err
		}
		switch j.State {
		case StateDone, StateFailed, StateCanceled:
			// Terminal: status stays queryable, nothing to run.
		default:
			j.State = StateQueued
			if err := s.queue.push(j); err != nil {
				return fmt.Errorf("serve: re-queue job %s: %w", j.ID, err)
			}
		}
		s.jobs[j.ID] = j
		if j.Seq > s.nextSeq {
			s.nextSeq = j.Seq
		}
	}
	return nil
}
