package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"fourindex/internal/trace"
)

// TestDrainResumeBitwiseIdentical is the drain chaos proof: a job is
// drained mid-run (after its second slab, held there deterministically
// by the progress hook), the server persists its queue and exits, and
// a new server on the same state directory resumes the job from its
// checkpoint — producing a result bitwise identical (same SHA-256 over
// the raw float64 bit patterns of C) to an uninterrupted run.
func TestDrainResumeBitwiseIdentical(t *testing.T) {
	spec := smallExecuteSpec("alice")

	// Reference: the same job uninterrupted on a throwaway server.
	ref := newTestServer(t, testConfig(t))
	refJob, err := ref.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	refFinal := waitJob(t, ref, refJob.ID)
	if refFinal.State != StateDone || refFinal.Result == nil {
		t.Fatalf("reference job: state %q (%s)", refFinal.State, refFinal.Error)
	}

	// First server: hold the job at its second slab mark, so at least
	// one slab is checkpointed and most of the work remains.
	cfg := testConfig(t)
	s1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reached := make(chan struct{})
	release := make(chan struct{})
	marks := 0
	s1.progressHook = func(id string, ev trace.ProgressEvent) {
		if ev.Kind != "mark" {
			return
		}
		marks++
		if marks == 2 {
			close(reached)
			<-release
		}
	}
	j1, err := s1.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-reached

	// Drain while the job is provably mid-run. The hook releases the
	// schedule only after the server context is canceled, so the job
	// cannot finish before the drain reaches it: it must observe the
	// cancellation at its next slab boundary.
	drainErr := make(chan error, 1)
	go func() { drainErr <- s1.Drain(context.Background()) }()
	<-s1.baseCtx.Done()
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s1.mu.Lock()
	state := s1.jobs[j1.ID].State
	s1.mu.Unlock()
	if state != StateInterrupted {
		t.Fatalf("drained job in state %q, want interrupted", state)
	}

	// Drain left durable state behind: the queue snapshot and the
	// job's slab checkpoint.
	if _, err := os.Stat(filepath.Join(cfg.StateDir, stateFile)); err != nil {
		t.Fatalf("queue snapshot missing after drain: %v", err)
	}
	ckptPath := filepath.Join(cfg.StateDir, "ckpt", j1.ID, "fullyfused.ckpt")
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("slab checkpoint missing after drain: %v", err)
	}

	// Second server on the same state dir: the interrupted job is
	// re-queued, resumes from its checkpoint, and completes.
	s2 := newTestServer(t, cfg)
	final := waitJob(t, s2, j1.ID)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("resumed job: state %q (%s)", final.State, final.Error)
	}
	if !final.Resumed {
		t.Fatalf("resumed job did not report finding its predecessor's checkpoint")
	}
	if final.Result.ChecksumSHA256 != refFinal.Result.ChecksumSHA256 {
		t.Fatalf("drain/resume broke bitwise reproducibility:\n  resumed   %s\n  reference %s",
			final.Result.ChecksumSHA256, refFinal.Result.ChecksumSHA256)
	}
	if final.Result.FrobeniusSq != refFinal.Result.FrobeniusSq {
		t.Fatalf("Frobenius norms differ: %v vs %v", final.Result.FrobeniusSq, refFinal.Result.FrobeniusSq)
	}

	// The completed run dropped its checkpoint.
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not dropped after successful resume (stat err: %v)", err)
	}
}

// TestDrainPersistsQueuedJobs drains a server whose queue still holds
// a never-started job and checks the restarted server runs it.
func TestDrainPersistsQueuedJobs(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxRunning = 1
	s1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	blocked, release := blockFirstMark(s1)
	running, err := s1.Submit(context.Background(), smallExecuteSpec("alice"))
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	<-blocked
	queued, err := s1.Submit(context.Background(), smallExecuteSpec("bob"))
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	drainErr := make(chan error, 1)
	go func() { drainErr <- s1.Drain(context.Background()) }()
	<-s1.baseCtx.Done()
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Submits during/after drain are refused.
	if _, err := s1.Submit(context.Background(), smallExecuteSpec("carol")); err != ErrDraining {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}

	s2 := newTestServer(t, cfg)
	for _, id := range []string{running.ID, queued.ID} {
		if final := waitJob(t, s2, id); final.State != StateDone {
			t.Fatalf("job %s after restart: state %q (%s), want done", id, final.State, final.Error)
		}
	}
	// The interrupted job resumed; the queued one started fresh.
	if st := waitJob(t, s2, running.ID); !st.Resumed {
		t.Fatalf("interrupted job did not resume from checkpoint")
	}
	if st := waitJob(t, s2, queued.ID); st.Resumed {
		t.Fatalf("never-started job claims to have resumed")
	}
}
