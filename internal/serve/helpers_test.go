package serve

import (
	"testing"
)

// testConfig is a small-footprint server config rooted in a fresh
// temp state dir.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		MemBudgetBytes: 64 << 20,
		StateDir:       t.TempDir(),
		Procs:          2,
		Workers:        2,
	}
}

// newTestServer builds a Server from cfg and closes it with the test.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// waitJob blocks until the job's event stream finishes (runJob calls
// events.finish strictly after the terminal state is recorded) and
// returns the final status. Event-driven, so tests never poll or
// sleep.
func waitJob(t *testing.T, s *Server, id string) statusJSON {
	t.Helper()
	_, live, cancel := s.events.subscribe(id)
	defer cancel()
	for range live {
		// Drain until the hub closes the stream.
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		t.Fatalf("job %s vanished", id)
	}
	return j.status()
}

// smallExecuteSpec is a quick multi-slab execute-mode job: n=8 with
// TileL=2 gives the fullyfused schedule 4 l-slabs, so there are
// several checkpoint boundaries to cancel or drain at.
func smallExecuteSpec(tenant string) JobSpec {
	return JobSpec{
		Tenant: tenant,
		N:      8,
		Scheme: "fullyfused",
		Mode:   "execute",
		TileN:  4,
		TileL:  2,
	}
}
