package serve

import (
	"container/heap"
	"errors"
)

// ErrQueueFull rejects a submit when the server-wide queue bound is
// reached; the HTTP layer maps it to 429 with a Retry-After hint.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrTenantQuota rejects a submit when the tenant already has its
// quota of queued-or-running jobs; also a 429.
var ErrTenantQuota = errors.New("serve: tenant quota exhausted")

// ErrOverBudget rejects a job whose modeled memory footprint exceeds
// the server's whole budget — it could never be admitted, so rejecting
// at submit (422) beats queuing it forever.
var ErrOverBudget = errors.New("serve: job cannot fit the server memory budget")

// jobQueue is the bounded priority queue of jobs awaiting dispatch:
// higher Spec.Priority first, submission order within a priority.
// Tenant accounting covers queued AND running jobs, so a tenant cannot
// monopolise the run slots by keeping its queue footprint at zero.
// Not safe for concurrent use; the server mutex guards it.
type jobQueue struct {
	heap        jobHeap
	maxQueue    int
	tenantQuota int
	// perTenant counts queued + running jobs per tenant; entries are
	// removed at zero so the map does not grow with tenant churn.
	perTenant map[string]int
}

// newJobQueue builds an empty queue with the given bounds.
func newJobQueue(maxQueue, tenantQuota int) *jobQueue {
	return &jobQueue{maxQueue: maxQueue, tenantQuota: tenantQuota, perTenant: make(map[string]int)}
}

// push enqueues j, enforcing the global bound and the tenant quota.
func (q *jobQueue) push(j *Job) error {
	if len(q.heap) >= q.maxQueue {
		return ErrQueueFull
	}
	if q.perTenant[j.Spec.Tenant] >= q.tenantQuota {
		return ErrTenantQuota
	}
	q.perTenant[j.Spec.Tenant]++
	heap.Push(&q.heap, j)
	return nil
}

// popWhere removes and returns the highest-priority job for which fit
// returns true, or nil if none does. Jobs that fail the fit check stay
// queued in order — first-fit by priority: a large job that does not
// fit the remaining budget is skipped, not blocking smaller ones, and
// is retried on the next dispatch. fit runs at most once per job and
// its side effects (a reservation) are kept only for the returned job.
func (q *jobQueue) popWhere(fit func(*Job) bool) *Job {
	var skipped []*Job
	var picked *Job
	for q.heap.Len() > 0 {
		j := heap.Pop(&q.heap).(*Job)
		if fit(j) {
			picked = j
			break
		}
		skipped = append(skipped, j)
	}
	for _, j := range skipped {
		heap.Push(&q.heap, j)
	}
	// The popped job stays in perTenant: it is about to run, and the
	// quota covers running jobs. release() decrements when it ends.
	return picked
}

// release decrements the tenant's queued-or-running count after a job
// leaves the system (completed, failed, canceled, or interrupted).
func (q *jobQueue) release(tenant string) {
	if n := q.perTenant[tenant]; n > 1 {
		q.perTenant[tenant] = n - 1
	} else {
		delete(q.perTenant, tenant)
	}
}

// remove deletes a still-queued job (DELETE on a queued job), fixing
// the tenant count. Returns false when j is not in the queue.
func (q *jobQueue) remove(j *Job) bool {
	for i, h := range q.heap {
		if h == j {
			heap.Remove(&q.heap, i)
			q.release(j.Spec.Tenant)
			return true
		}
	}
	return false
}

// depth returns how many jobs are waiting.
func (q *jobQueue) depth() int { return q.heap.Len() }

// jobHeap implements container/heap ordering: priority descending,
// then submission sequence ascending.
type jobHeap []*Job

// Len reports the heap size.
func (h jobHeap) Len() int { return len(h) }

// Less orders by (priority desc, seq asc).
func (h jobHeap) Less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].Seq < h[j].Seq
}

// Swap exchanges two entries.
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push appends x (heap.Interface contract).
func (h *jobHeap) Push(x any) { *h = append(*h, x.(*Job)) }

// Pop removes and returns the last entry (heap.Interface contract).
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
