package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"fourindex/internal/lb/chain"
)

// retryAfterSeconds is the fixed backpressure hint returned with every
// 429. A constant (rather than a queue-derived estimate) keeps the
// handler clock-free; clients treat it as a floor, not a promise.
const retryAfterSeconds = "5"

// Handler returns the server's HTTP API:
//
//	POST   /jobs             submit (202; 429 full/quota; 422 over budget)
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job's status
//	DELETE /jobs/{id}        cancel a queued or running job
//	GET    /jobs/{id}/events stream progress events as JSON lines
//	GET    /metrics          admission gauges and per-tenant counters
//	GET    /healthz          200 serving / 503 draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// httpError is the JSON error body.
type httpError struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The response is already committed; nothing to recover.
		return
	}
}

// handleSubmit admits one job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad job spec: %v", err)})
		return
	}
	j, err := s.Submit(r.Context(), spec)
	switch {
	case err == nil:
		s.mu.Lock()
		st := j.status()
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQuota):
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	case errors.Is(err, ErrOverBudget):
		writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error()})
	case isChainError(err):
		// The bound engine's typed errors — malformed chain description,
		// non-positive capacity, size-arithmetic overflow — are semantic
		// rejections of a well-formed request: 422, never a panic.
		writeJSON(w, http.StatusUnprocessableEntity, httpError{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
	}
}

// isChainError reports whether err is one of the bound engine's typed
// errors.
func isChainError(err error) bool {
	var ve *chain.ValidationError
	var ce *chain.CapacityError
	var oe *chain.OverflowError
	return errors.As(err, &ve) || errors.As(err, &ce) || errors.As(err, &oe)
}

// ErrDraining rejects submits while the server drains.
var ErrDraining = errors.New("serve: server is draining")

// Submit validates, plans and enqueues a job, returning it in
// StateQueued (the dispatcher may flip it to StateRunning at any
// moment after). ctx bounds only the planning step ("auto" tuning);
// the job itself runs under the server's context.
func (s *Server) Submit(ctx context.Context, spec JobSpec) (*Job, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.mu.Unlock()

	// Planning happens outside the lock: "auto" cost-simulates a
	// shortlist, which must not block status queries.
	plan, err := s.planJob(ctx, spec)
	if err != nil {
		s.mu.Lock()
		s.tenant(spec.Tenant).Rejected++
		s.mu.Unlock()
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.nextSeq++
	j := &Job{
		ID:    fmt.Sprintf("j%d", s.nextSeq),
		Seq:   s.nextSeq,
		Spec:  spec,
		State: StateQueued,
		plan:  plan,
	}
	if err := s.queue.push(j); err != nil {
		s.tenant(spec.Tenant).Rejected++
		return nil, err
	}
	s.jobs[j.ID] = j
	s.tenant(spec.Tenant).Submitted++
	s.nudge()
	return j, nil
}

// handleList returns every job, newest first.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]statusJSON, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	writeJSON(w, http.StatusOK, out)
}

// handleStatus returns one job.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var st statusJSON
	if ok {
		st = j.status()
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, httpError{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleCancel cancels a queued or running job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusNotFound, httpError{Error: "no such job"})
		return
	}
	switch j.State {
	case StateQueued:
		if s.queue.remove(j) {
			j.State = StateCanceled
			j.Error = "canceled before start"
			s.tenant(j.Spec.Tenant).finished(StateCanceled)
		}
		st := j.status()
		s.mu.Unlock()
		s.events.finish(j.ID)
		writeJSON(w, http.StatusOK, st)
	case StateRunning:
		cancel := j.cancel
		st := j.status()
		s.mu.Unlock()
		if cancel != nil {
			// The schedule stops at its next slab/stage boundary; the
			// job transitions to StateCanceled when RunContext returns.
			cancel()
		}
		writeJSON(w, http.StatusAccepted, st)
	default:
		st := j.status()
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, st)
	}
}

// handleEvents streams a job's progress events as newline-delimited
// JSON: the history so far, then live events until the job finishes or
// the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, known := s.jobs[id]
	s.mu.Unlock()
	if !known {
		writeJSON(w, http.StatusNotFound, httpError{Error: "no such job"})
		return
	}
	history, live, cancel := s.events.subscribe(id)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, ev := range history {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// tenantCounters is one tenant's lifetime counters, reported on
// /metrics. Guarded by the server mutex.
type tenantCounters struct {
	Submitted int64
	Rejected  int64
	Done      int64
	Failed    int64
	Canceled  int64
}

// finished bumps the counter matching a terminal state.
func (c *tenantCounters) finished(state string) {
	switch state {
	case StateDone:
		c.Done++
	case StateFailed:
		c.Failed++
	case StateCanceled:
		c.Canceled++
	}
	// StateInterrupted is not terminal: the job resumes after restart.
}

// tenant returns (creating if needed) the counters for a tenant.
// Caller holds the server mutex.
func (s *Server) tenant(name string) *tenantCounters {
	c := s.tenants[name]
	if c == nil {
		c = &tenantCounters{}
		s.tenants[name] = c
	}
	return c
}

// handleMetrics writes the admission gauges and per-tenant counters in
// a flat, Prometheus-style text format, tenants sorted by name so the
// output is deterministic.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	budget, reserved := s.adm.usage()
	s.mu.Lock()
	running := s.running
	depth := s.queue.depth()
	draining := 0
	if s.draining {
		draining = 1
	}
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	type namedCounters struct {
		name string
		c    tenantCounters
	}
	counters := make([]namedCounters, 0, len(names))
	for _, name := range names {
		counters = append(counters, namedCounters{name: name, c: *s.tenants[name]})
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "fouridxd_mem_budget_bytes %d\n", budget)
	fmt.Fprintf(w, "fouridxd_mem_reserved_bytes %d\n", reserved)
	fmt.Fprintf(w, "fouridxd_jobs_running %d\n", running)
	fmt.Fprintf(w, "fouridxd_queue_depth %d\n", depth)
	fmt.Fprintf(w, "fouridxd_draining %d\n", draining)
	for _, nc := range counters {
		fmt.Fprintf(w, "fouridxd_tenant_jobs_submitted{tenant=%q} %d\n", nc.name, nc.c.Submitted)
		fmt.Fprintf(w, "fouridxd_tenant_jobs_rejected{tenant=%q} %d\n", nc.name, nc.c.Rejected)
		fmt.Fprintf(w, "fouridxd_tenant_jobs_done{tenant=%q} %d\n", nc.name, nc.c.Done)
		fmt.Fprintf(w, "fouridxd_tenant_jobs_failed{tenant=%q} %d\n", nc.name, nc.c.Failed)
		fmt.Fprintf(w, "fouridxd_tenant_jobs_canceled{tenant=%q} %d\n", nc.name, nc.c.Canceled)
	}
}

// handleHealthz reports liveness: 200 while serving, 503 during drain
// (load balancers stop routing new submits), plus the last background
// persistence error if one occurred.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	persistErr := s.persistErr
	s.mu.Unlock()
	status := http.StatusOK
	body := "ok"
	if draining {
		status = http.StatusServiceUnavailable
		body = "draining"
	}
	if persistErr != nil {
		body += fmt.Sprintf(" (state persistence degraded: %v)", persistErr)
	}
	w.WriteHeader(status)
	fmt.Fprintln(w, body)
}
